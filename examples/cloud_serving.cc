/**
 * @file
 * Cloud-serving scenario (§7.2.1): one simulated Llama2-7B serving
 * node on an A100. Compares the three cloud stacks the paper
 * integrates SpecEE into — HuggingFace, vllm (PagedAttention) and
 * AWQ (W4 quantization) — with and without SpecEE, on a mixed
 * request stream (chat + summarization + QA), and reports
 * throughput, energy and memory per configuration.
 *
 *   $ ./cloud_serving [model]     (default llama2-7b)
 */

#include <cstdio>
#include <string>

#include "engines/pipeline.hh"
#include "metrics/stats.hh"
#include "metrics/table.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    engines::PipelineOptions popts;
    popts.model = model;
    std::printf("Preparing %s serving node (training predictors)...\n",
                model.c_str());
    engines::Pipeline pipe(popts);

    // Mixed request stream.
    const std::vector<std::string> request_mix = {"MT-Bench", "SUM",
                                                  "QA"};
    workload::GenOptions gen;
    gen.n_instances = 2;
    gen.gen_len = 32;
    gen.seed = 555;

    const auto spec = model == "llama2-70b" ? hw::HardwareSpec::a100x4()
                                            : hw::HardwareSpec::a100();
    const EngineConfig stacks[] = {
        EngineConfig::huggingFace(), EngineConfig::huggingFace().withSpecEE(),
        EngineConfig::vllm(),        EngineConfig::vllm().withSpecEE(),
        EngineConfig::awq(),         EngineConfig::awq().withSpecEE(),
    };

    metrics::Table t("Cloud serving: " + model + " @ " + spec.name);
    t.header({"stack", "tok/s", "avg layers", "power (W)", "J/token",
              "mem (GiB)", "match rate"});
    for (const auto &cfg : stacks) {
        std::vector<double> tps;
        double layers = 0, power = 0, joules = 0, mem = 0, match = 0;
        for (const auto &ds : request_mix) {
            auto w = pipe.makeWorkload(ds, gen, cfg.q4Calibrated());
            auto engine = pipe.makeEngine(cfg, spec);
            auto r = engine->run(w, 42);
            auto ev = workload::Evaluator::evaluate(w, r.emissions,
                                                    pipe.corpus());
            tps.push_back(r.stats.tokens_per_s);
            layers += r.stats.avg_forward_layers;
            power += r.stats.avg_power_w;
            joules += r.stats.energy_per_token_j;
            mem = r.stats.peak_mem_gb;
            match += ev.token_match_rate;
        }
        const double n = static_cast<double>(request_mix.size());
        t.row({cfg.name, metrics::Table::num(metrics::geomean(tps), 1),
               metrics::Table::num(layers / n, 1),
               metrics::Table::num(power / n, 0),
               metrics::Table::num(joules / n, 2),
               metrics::Table::num(mem, 1),
               metrics::Table::num(100.0 * match / n, 1) + "%"});
    }
    t.print();
    std::printf("\nSpecEE composes with every stack (it is orthogonal "
                "to paged attention and\nquantization, §6.3) and cuts "
                "both latency and energy at matched output quality.\n");
    return 0;
}
