/**
 * @file
 * Minimal serving-API walkthrough: train one pipeline, stand up a
 * multi-worker server with continuous batching, submit a Poisson
 * request stream, and read the fleet metrics.
 *
 *   $ ./cloud_server [model]     (default llama2-7b)
 */

#include <cstdio>
#include <string>

#include "metrics/table.hh"
#include "serve/server.hh"

using namespace specee;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    std::printf("Training %s pipeline (one-time, offline)...\n",
                model.c_str());
    engines::Pipeline pipe({.model = model});

    // A serving node: 2 workers, SpecEE on the HF stack, decode
    // batches of up to 8 requests with continuous batching.
    serve::ServerOptions sopts;
    sopts.engine = engines::EngineConfig::huggingFace().withSpecEE();
    sopts.spec = hw::HardwareSpec::a100();
    sopts.workers = 2;
    sopts.sched.max_batch = 8;
    serve::Server server(pipe, sopts);

    // 12 requests, chat/summarization/QA mix, Poisson arrivals at
    // 8 requests/s.
    serve::StreamOptions so;
    so.n_requests = 12;
    so.gen_len = 24;
    so.rate_rps = 8.0;
    server.submit(serve::synthesizeStream(so));

    auto report = server.drain();

    metrics::Table t("Per-request timeline (" + sopts.engine.name +
                     " @ " + sopts.spec.name + ")");
    t.header({"id", "dataset", "arrival", "admit", "finish", "latency",
              "tokens"});
    for (const auto &o : report.outcomes) {
        t.row({std::to_string(o.request.id), o.request.dataset,
               metrics::Table::num(o.request.arrival_s, 2),
               metrics::Table::num(o.admit_s, 2),
               metrics::Table::num(o.finish_s, 2),
               metrics::Table::num(o.latency_s, 2),
               std::to_string(o.result.stats.tokens)});
    }
    t.print();

    const auto &f = report.fleet;
    std::printf("\nfleet: %ld requests, %ld tokens in %.2f s -> %.1f "
                "tok/s aggregate\n",
                f.requests, f.tokens, f.makespan_s, f.tokens_per_s);
    std::printf("latency p50 %.2f s, p99 %.2f s; mean queue wait %.2f "
                "s; batch occupancy %.1f\n",
                f.p50_latency_s, f.p99_latency_s, f.mean_queue_s,
                f.mean_batch_occupancy);
    std::printf("energy %.1f J (%.2f J/token), avg power %.0f W\n",
                f.energy_j, f.energy_per_token_j, f.avg_power_w);
    return 0;
}
