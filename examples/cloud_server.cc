/**
 * @file
 * Minimal serving-API walkthrough: train one pipeline, stand up a
 * multi-worker server with live iteration-level continuous batching,
 * submit a Poisson request stream with per-request deadlines, stream
 * tokens as they are emitted, and read the fleet metrics (including
 * TTFT, inter-token latency and KV-pressure preemptions).
 *
 *   $ ./cloud_server [model]     (default llama2-7b)
 */

#include <cstdio>
#include <string>

#include "metrics/table.hh"
#include "serve/server.hh"

using namespace specee;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    std::printf("Training %s pipeline (one-time, offline)...\n",
                model.c_str());
    engines::Pipeline pipe({.model = model});

    // A serving node: 2 workers, SpecEE on the HF stack, decode
    // batches of up to 8 requests with live continuous batching and
    // a fleet KV budget the scheduler preempts against.
    serve::ServerOptions sopts;
    sopts.engine = engines::EngineConfig::huggingFace().withSpecEE();
    sopts.spec = hw::HardwareSpec::a100();
    sopts.workers = 2;
    sopts.sched.max_batch = 8;
    sopts.sched.kv_budget_blocks =
        6 * pipe.modelConfig().n_layers *
        ((workload::kSimPromptLen + 24) / model::kKvBlockSize + 1);

    // Streaming: tokens arrive per scheduler iteration, tagged with
    // the fleet clock (this is where a real server would flush SSE).
    long streamed = 0;
    double first_emit_s = -1.0;
    sopts.on_token = [&](const serve::TokenEvent &ev) {
        ++streamed;
        if (first_emit_s < 0.0)
            first_emit_s = ev.emit_s;
        return true; // false would cancel the request (backpressure)
    };
    serve::Server server(pipe, sopts);

    // 12 requests, chat/summarization/QA mix, Poisson arrivals at
    // 8 requests/s, each cancelled if not done within 30 s.
    serve::StreamOptions so;
    so.n_requests = 12;
    so.gen_len = 24;
    so.rate_rps = 8.0;
    so.deadline_s = 30.0;
    server.submit(serve::synthesizeStream(so));

    auto report = server.drain();

    metrics::Table t("Per-request timeline (" + sopts.engine.name +
                     " @ " + sopts.spec.name + ")");
    t.header({"id", "dataset", "arrival", "admit", "TTFT", "finish",
              "latency", "tokens", "preempt"});
    for (const auto &o : report.outcomes) {
        t.row({std::to_string(o.request.id), o.request.dataset,
               metrics::Table::num(o.request.arrival_s, 2),
               metrics::Table::num(o.admit_s, 2),
               metrics::Table::num(o.ttft_s, 2),
               metrics::Table::num(o.finish_s, 2),
               metrics::Table::num(o.latency_s, 2),
               std::to_string(o.result.stats.tokens),
               std::to_string(o.preemptions)});
    }
    t.print();

    const auto &f = report.fleet;
    std::printf("\nfleet: %ld requests, %ld tokens in %.2f s -> %.1f "
                "tok/s aggregate\n",
                f.requests, f.tokens, f.makespan_s, f.tokens_per_s);
    std::printf("latency p50 %.2f s, p99 %.2f s; TTFT p50 %.2f s, "
                "p99 %.2f s; ITL %.1f ms\n",
                f.p50_latency_s, f.p99_latency_s, f.p50_ttft_s,
                f.p99_ttft_s, f.mean_itl_s * 1e3);
    std::printf("batch occupancy %.1f; %ld preemptions, %ld dropped, "
                "peak KV %ld blocks (%.1f GiB fleet)\n",
                f.mean_batch_occupancy, f.preemptions, f.dropped,
                f.peak_kv_blocks, f.peak_fleet_mem_gb);
    std::printf("energy %.1f J (%.2f J/token), avg power %.0f W\n",
                f.energy_j, f.energy_per_token_j, f.avg_power_w);
    std::printf("streamed %ld tokens live; first token at t=%.2f s\n",
                streamed, first_emit_s);
    return 0;
}
