/**
 * @file
 * PC scenario (§7.2.2): a local assistant on the simulated Lenovo
 * PC (RTX 4060 Laptop 8GB + i7-13650HX). The fp16 Llama2-7B does not
 * fit in VRAM, so weights are split between GPU and host — the
 * regime where llama.cpp-style offload and PowerInfer-style sparse
 * activation live. Shows how SpecEE stacks on both, and the full
 * SpecEE system (T1+T2+T3) reaching the paper's ~2.4x.
 *
 *   $ ./pc_assistant
 */

#include <cstdio>

#include "engines/pipeline.hh"
#include "metrics/table.hh"
#include "model/tokenizer.hh"

using namespace specee;
using engines::EngineConfig;

int
main()
{
    std::printf("Preparing the PC assistant (llama2-7b)...\n");
    engines::PipelineOptions popts;
    popts.model = "llama2-7b";
    engines::Pipeline pipe(popts);
    const auto pc = hw::HardwareSpec::pc4060();

    // A summarization request, the paper's PC headline workload.
    workload::GenOptions gen;
    gen.n_instances = 2;
    gen.gen_len = 32;
    gen.seed = 777;
    auto w = pipe.makeWorkload("SUM", gen);

    struct Entry
    {
        const char *label;
        EngineConfig cfg;
    };
    const Entry entries[] = {
        {"llama.cpp (fp16 + offload)", EngineConfig::llamaCpp()},
        {"llama.cpp + SpecEE (T1+T2)",
         EngineConfig::llamaCpp().withSpecEE()},
        {"llama.cpp + SpecEE (T1+T2+T3)",
         EngineConfig::llamaCpp().withSpecEE().withSpecDecode()},
        {"PowerInfer (sparse FFN)", EngineConfig::powerInfer()},
        {"PowerInfer + SpecEE",
         EngineConfig::powerInfer().withSpecEE()},
    };

    metrics::Table t("PC assistant: Llama2-7B @ RTX 4060 Laptop 8GB");
    t.header({"engine", "tok/s", "GPU-resident weights", "avg layers",
              "power (W)"});
    double base_tps = 0.0;
    for (const auto &e : entries) {
        auto engine = pipe.makeEngine(e.cfg, pc);
        auto r = engine->run(w, 9);
        if (base_tps == 0.0)
            base_tps = r.stats.tokens_per_s;
        t.row({e.label, metrics::Table::num(r.stats.tokens_per_s, 2),
               metrics::Table::num(100.0 * engine->deviceWeightFrac(),
                                   0) +
                   "%",
               metrics::Table::num(r.stats.avg_forward_layers, 1),
               metrics::Table::num(r.stats.avg_power_w, 0)});
    }
    t.print();

    auto full = pipe.makeEngine(
        EngineConfig::llamaCpp().withSpecEE().withSpecDecode(), pc);
    auto r = full->run(w, 9);
    std::printf("\nfull SpecEE vs llama.cpp: %.2fx (paper: 2.43x)\n",
                r.stats.tokens_per_s / base_tps);

    model::Tokenizer tok(pipe.modelConfig().sim.vocab);
    std::printf("\nsample summary tokens: %s\n",
                tok.decode(r.emissions[0].tokens).c_str());
    return 0;
}
