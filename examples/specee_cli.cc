/**
 * @file
 * specee_cli — command-line front end to the library.
 *
 * Subcommands:
 *   train   <model> <bank.bin>          train + save a predictor bank
 *   run     <model> <dataset> [bank]    run SpecEE vs dense, print stats
 *   inspect <model>                     model/profile/scheduling info
 *   compare <model> <dataset>           all engines side by side
 *
 *   $ ./specee_cli train llama2-7b /tmp/bank.bin
 *   $ ./specee_cli run llama2-7b MT-Bench /tmp/bank.bin
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "engines/pipeline.hh"
#include "metrics/table.hh"
#include "oracle/profiles.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: specee_cli <command> [args]\n"
                 "  train   <model> <bank.bin>\n"
                 "  run     <model> <dataset> [bank.bin]\n"
                 "  inspect <model>\n"
                 "  compare <model> <dataset>\n"
                 "models: llama2-7b llama2-13b llama2-70b vicuna-7b tiny\n"
                 "datasets: MT-Bench SUM QA Alpaca GSM8K HumanEval MMLU "
                 "CommonsenseQA SST2\n");
    return 2;
}

engines::Pipeline
makePipeline(const std::string &model)
{
    engines::PipelineOptions o;
    o.model = model;
    std::fprintf(stderr, "[specee] preparing pipeline for %s...\n",
                 model.c_str());
    return engines::Pipeline(o);
}

int
cmdTrain(const std::string &model, const std::string &path)
{
    auto pipe = makePipeline(model);
    pipe.predictors().save(path);
    std::printf("trained %d predictors (held-out accuracy %.1f%%), "
                "saved to %s\n",
                pipe.predictors().nExitLayers(),
                100.0 * pipe.trainReport().mean_test_accuracy,
                path.c_str());
    return 0;
}

int
cmdRun(const std::string &model, const std::string &dataset,
       const char *bank_path)
{
    auto pipe = makePipeline(model);
    core::ExitPredictor loaded =
        bank_path != nullptr
            ? core::ExitPredictor::load(bank_path)
            : core::ExitPredictor(1, 12); // placeholder, unused

    workload::GenOptions gen;
    gen.n_instances = 2;
    gen.gen_len = 32;
    auto w = pipe.makeWorkload(dataset, gen);
    const auto spec = model == "llama2-70b" ? hw::HardwareSpec::a100x4()
                                            : hw::HardwareSpec::a100();

    auto dense = pipe.makeEngine(EngineConfig::huggingFace(), spec);
    auto ee =
        pipe.makeEngine(EngineConfig::huggingFace().withSpecEE(), spec);
    if (bank_path != nullptr)
        ee->setPredictors(&loaded);
    auto rd = dense->run(w, 1);
    auto rs = ee->run(w, 1);
    auto ev = workload::Evaluator::evaluate(w, rs.emissions,
                                            pipe.corpus());

    metrics::Table t("specee run: " + model + " on " + dataset + " @ " +
                     spec.name);
    t.header({"engine", "tok/s", "avg layers", "power W", "match"});
    t.row({"dense", metrics::Table::num(rd.stats.tokens_per_s, 1),
           metrics::Table::num(rd.stats.avg_forward_layers, 1),
           metrics::Table::num(rd.stats.avg_power_w, 0), "100.0%"});
    t.row({"SpecEE", metrics::Table::num(rs.stats.tokens_per_s, 1),
           metrics::Table::num(rs.stats.avg_forward_layers, 1),
           metrics::Table::num(rs.stats.avg_power_w, 0),
           metrics::Table::num(100.0 * ev.token_match_rate, 1) + "%"});
    t.print();
    std::printf("speedup: %.2fx\n",
                rs.stats.tokens_per_s / rd.stats.tokens_per_s);
    return 0;
}

int
cmdInspect(const std::string &model)
{
    auto pipe = makePipeline(model);
    const auto &cfg = pipe.modelConfig();
    std::printf("model %s: %d layers, true dims (h=%d ffn=%d heads=%d "
                "vocab=%d), sim dims (h=%d vocab=%d)\n",
                cfg.name.c_str(), cfg.n_layers, cfg.truth.hidden,
                cfg.truth.ffn, cfg.truth.heads, cfg.truth.vocab,
                cfg.sim.hidden, cfg.sim.vocab);
    std::printf("fp16 weights: %.1f GB; KV: %.0f KB/token\n",
                cfg.truthWeightBytes() / 1e9,
                cfg.truthKvBytesPerToken() / 1024.0);
    std::printf("predictor bank: %d MLPs x %zu params, held-out "
                "accuracy %.1f%%\n",
                pipe.predictors().nExitLayers(),
                pipe.predictors().paramsPerPredictor(),
                100.0 * pipe.trainReport().mean_test_accuracy);
    std::printf("offline hot layers:");
    for (int l : pipe.offlineHotLayers())
        std::printf(" %d", l);
    std::printf("\nRAEE index: %d entries (%.1f KB functional)\n",
                pipe.raeeIndex().size(),
                pipe.raeeIndex().byteSize() / 1024.0);
    return 0;
}

int
cmdCompare(const std::string &model, const std::string &dataset)
{
    auto pipe = makePipeline(model);
    const auto spec = model == "llama2-70b" ? hw::HardwareSpec::a100x4()
                                            : hw::HardwareSpec::a100();
    workload::GenOptions gen;
    gen.n_instances = 2;
    gen.gen_len = 24;

    metrics::Table t("engine comparison: " + model + " on " + dataset);
    t.header({"engine", "tok/s", "avg layers", "match", "mem GiB"});
    const EngineConfig configs[] = {
        EngineConfig::huggingFace(),
        EngineConfig::adaInfer(),
        EngineConfig::raeeBaseline(),
        EngineConfig::huggingFace().withSpecEE(false),
        EngineConfig::huggingFace().withSpecEE(),
        EngineConfig::vllm(),
        EngineConfig::vllm().withSpecEE(),
        EngineConfig::awq(),
        EngineConfig::awq().withSpecEE(),
        EngineConfig::eagle(),
        EngineConfig::eagle().withSpecEE(),
    };
    for (const auto &cfg : configs) {
        auto w = pipe.makeWorkload(dataset, gen, cfg.q4Calibrated());
        auto engine = pipe.makeEngine(cfg, spec);
        auto r = engine->run(w, 11);
        auto ev = workload::Evaluator::evaluate(w, r.emissions,
                                                pipe.corpus());
        std::string label = cfg.name;
        if (cfg.name == "SpecEE+HuggingFace" && !cfg.offline_sched)
            label += " (T1 only)";
        t.row({label, metrics::Table::num(r.stats.tokens_per_s, 1),
               metrics::Table::num(r.stats.avg_forward_layers, 1),
               metrics::Table::num(100.0 * ev.token_match_rate, 1) + "%",
               metrics::Table::num(r.stats.peak_mem_gb, 1)});
    }
    t.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "train" && argc == 4)
        return cmdTrain(argv[2], argv[3]);
    if (cmd == "run" && (argc == 4 || argc == 5))
        return cmdRun(argv[2], argv[3], argc == 5 ? argv[4] : nullptr);
    if (cmd == "inspect" && argc == 3)
        return cmdInspect(argv[2]);
    if (cmd == "compare" && argc == 4)
        return cmdCompare(argv[2], argv[3]);
    return usage();
}
