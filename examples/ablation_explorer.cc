/**
 * @file
 * Ablation explorer: an interactive-style command-line tool for
 * poking at SpecEE's design space — toggle T1/T2/T3, sweep the exit
 * threshold, the online window/radius and the offline coverage, and
 * watch speed vs fidelity move. Useful for reproducing the paper's
 * design arguments beyond the fixed figures.
 *
 *   $ ./ablation_explorer [dataset]   (default MT-Bench)
 */

#include <cstdio>
#include <string>

#include "core/offline_scheduler.hh"
#include "engines/pipeline.hh"
#include "metrics/table.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

struct Probe
{
    const engines::Pipeline &pipe;
    const workload::Workload &w;
    double base_tps;

    void
    row(metrics::Table &t, const std::string &label,
        const EngineConfig &cfg) const
    {
        auto engine = pipe.makeEngine(cfg, hw::HardwareSpec::a100());
        auto r = engine->run(w, 4);
        auto ev = workload::Evaluator::evaluate(w, r.emissions,
                                                pipe.corpus());
        t.row({label,
               metrics::Table::num(r.stats.tokens_per_s, 1),
               metrics::Table::num(
                   r.stats.tokens_per_s / base_tps, 2) + "x",
               metrics::Table::num(r.stats.avg_forward_layers, 1),
               metrics::Table::num(r.stats.avg_active_predictors, 1),
               metrics::Table::num(100.0 * ev.token_match_rate, 1) +
                   "%"});
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string dataset = argc > 1 ? argv[1] : "MT-Bench";
    std::printf("Ablation explorer on %s (llama2-7b @ A100)\n",
                dataset.c_str());
    engines::PipelineOptions popts;
    popts.model = "llama2-7b";
    engines::Pipeline pipe(popts);

    workload::GenOptions gen;
    gen.n_instances = 2;
    gen.gen_len = 28;
    gen.seed = 31337;
    auto w = pipe.makeWorkload(dataset, gen);

    auto base = pipe.makeEngine(EngineConfig::huggingFace(),
                                hw::HardwareSpec::a100())
                    ->run(w, 4);
    Probe probe{pipe, w, base.stats.tokens_per_s};

    {
        metrics::Table t("Technique toggles");
        t.header({"config", "tok/s", "speedup", "avg layers",
                  "act. preds", "match"});
        t.row({"dense (HF)",
               metrics::Table::num(base.stats.tokens_per_s, 1), "1.00x",
               metrics::Table::num(base.stats.avg_forward_layers, 1),
               "0", "100.0%"});
        probe.row(t, "T1", EngineConfig::huggingFace().withSpecEE(false));
        probe.row(t, "T1+T2", EngineConfig::huggingFace().withSpecEE());
        probe.row(t, "T1+T2+T3",
                  EngineConfig::huggingFace().withSpecEE()
                      .withSpecDecode());
        t.print();
    }

    {
        metrics::Table t("Exit threshold sweep (T1+T2)");
        t.header({"threshold", "tok/s", "speedup", "avg layers",
                  "act. preds", "match"});
        for (float th : {0.2f, 0.35f, 0.5f, 0.65f, 0.8f}) {
            auto cfg = EngineConfig::huggingFace().withSpecEE();
            cfg.exit_threshold = th;
            probe.row(t, metrics::Table::num(th, 2), cfg);
        }
        t.print();
        std::printf("lower thresholds exit earlier but lean harder on "
                    "verification;\nthe paper uses 0.5 (§4.3.2).\n");
    }

    {
        metrics::Table t("Online window/radius sweep (T1+T2)");
        t.header({"window/radius", "tok/s", "speedup", "avg layers",
                  "act. preds", "match"});
        for (auto [win, rad] : {std::pair{1, 2}, std::pair{3, 2},
                                std::pair{5, 2}, std::pair{5, 1},
                                std::pair{5, 4}, std::pair{8, 2}}) {
            auto cfg = EngineConfig::huggingFace().withSpecEE();
            cfg.online_window = win;
            cfg.online_radius = rad;
            probe.row(t,
                      "N=" + std::to_string(win) + ", r=" +
                          std::to_string(rad),
                      cfg);
        }
        t.print();
        std::printf("the paper's N=5, r=2 balances coverage (hit "
                    "ratio) against active predictors (Fig. 11).\n");
    }

    {
        metrics::Table t("Offline coverage sweep (T1+T2)");
        t.header({"offline mass", "tok/s", "speedup", "avg layers",
                  "act. preds", "match"});
        for (double mass : {0.25, 0.4, 0.55, 0.7, 0.9}) {
            // Rebuild the hot set at a different coverage by
            // re-deriving from the profile histogram.
            core::OfflineScheduler off(pipe.modelConfig().n_layers - 1);
            const auto &hist = pipe.profileData().oracle_exit_hist;
            for (size_t l = 0; l < hist.size(); ++l)
                for (long c = 0; c < hist[l]; ++c)
                    off.recordExit(static_cast<int>(l));
            auto cfg = EngineConfig::huggingFace().withSpecEE();
            auto engine = pipe.makeEngine(cfg, hw::HardwareSpec::a100());
            engine->setOfflineHotLayers(off.hotLayers(mass));
            auto r = engine->run(w, 4);
            auto ev = workload::Evaluator::evaluate(w, r.emissions,
                                                    pipe.corpus());
            t.row({metrics::Table::num(mass, 2),
                   metrics::Table::num(r.stats.tokens_per_s, 1),
                   metrics::Table::num(r.stats.tokens_per_s /
                                           probe.base_tps,
                                       2) +
                       "x",
                   metrics::Table::num(r.stats.avg_forward_layers, 1),
                   metrics::Table::num(r.stats.avg_active_predictors,
                                       1),
                   metrics::Table::num(100.0 * ev.token_match_rate, 1) +
                       "%"});
        }
        t.print();
    }
    return 0;
}
