/**
 * @file
 * Quickstart: train a SpecEE deployment for a (simulated) Llama2-7B,
 * generate text with and without speculative early exiting, and
 * print the per-token exit layers — the Fig. 1(c) picture.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "engines/pipeline.hh"
#include "model/tokenizer.hh"
#include "workload/evaluator.hh"

using namespace specee;

int
main()
{
    // 1. Build the pipeline: synthetic corpus, predictor training
    //    (§7.4.4) and offline scheduling (§5.3) happen here.
    std::printf("Training SpecEE predictors for llama2-7b (one-time, "
                "~seconds)...\n");
    engines::PipelineOptions popts;
    popts.model = "llama2-7b";
    engines::Pipeline pipe(popts);
    std::printf("predictor bank: %d MLPs, held-out accuracy %.1f%%, "
                "offline hot layers: %zu\n\n",
                pipe.predictors().nExitLayers(),
                100.0 * pipe.trainReport().mean_test_accuracy,
                pipe.offlineHotLayers().size());

    // 2. A small chat-style workload.
    workload::GenOptions gen;
    gen.n_instances = 1;
    gen.gen_len = 24;
    gen.seed = 2024;
    auto w = pipe.makeWorkload("MT-Bench", gen);

    // 3. Dense baseline vs SpecEE.
    auto dense = pipe.makeEngine(engines::EngineConfig::huggingFace(),
                                 hw::HardwareSpec::a100());
    auto specee = pipe.makeEngine(
        engines::EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());

    auto rd = dense->run(w, 1);
    auto rs = specee->run(w, 1);

    model::Tokenizer tok(pipe.modelConfig().sim.vocab);
    std::printf("prompt : %s\n", tok.decode(w.instances[0].prompt).c_str());
    std::printf("dense  : %s\n",
                tok.decode(rd.emissions[0].tokens).c_str());
    std::printf("SpecEE : %s\n\n",
                tok.decode(rs.emissions[0].tokens).c_str());

    std::printf("per-token forward layers (of %d):\n  dense : ",
                pipe.modelConfig().n_layers);
    for (int l : rd.emissions[0].exit_layers)
        std::printf("%2d ", l);
    std::printf("\n  SpecEE: ");
    for (int l : rs.emissions[0].exit_layers)
        std::printf("%2d ", l);
    std::printf("\n\n");

    std::printf("modeled throughput @A100: dense %.1f tok/s, SpecEE "
                "%.1f tok/s (%.2fx)\n",
                rd.stats.tokens_per_s, rs.stats.tokens_per_s,
                rs.stats.tokens_per_s / rd.stats.tokens_per_s);
    std::printf("average forward layers: %.1f -> %.1f\n",
                rd.stats.avg_forward_layers,
                rs.stats.avg_forward_layers);
    return 0;
}
