/**
 * @file
 * Figure 2(c)/(d): headline technique stacking.
 *
 * Cloud: Llama2-7B on A100, MT-Bench — HuggingFace 42.32 tok/s,
 * +T1 47.39 (1.12x), +T2 57.35 (1.21x), +T3 95.21 (1.66x) = 2.25x.
 * PC: Llama2-7B on the Lenovo PC, SUM — llama.cpp 5.63 tok/s,
 * +T1 6.64 (1.18x), +T2 8.29 (1.25x), +T3 13.70 (1.65x) = 2.43x.
 * Also prints the T1 predictor param/FLOP reduction (~100x) and the
 * §7.4.4 predictor runtime share.
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

void
scenario(const char *title, const char *model,
         const hw::HardwareSpec &spec, const EngineConfig &base,
         const char *dataset, const double paper_tps[4])
{
    auto gen = benchGen(2, 32);
    auto b = runOn(model, base, spec, dataset, gen);
    auto t1 = runOn(model, base.withSpecEE(false), spec, dataset, gen);
    auto t12 = runOn(model, base.withSpecEE(true), spec, dataset, gen);
    auto t123 = runOn(model, base.withSpecEE(true).withSpecDecode(),
                      spec, dataset, gen);

    metrics::Table t(title);
    t.header({"configuration", "paper tok/s", "measured tok/s",
              "paper step", "measured step"});
    const engines::RunStats *stats[4] = {&b.stats, &t1.stats,
                                         &t12.stats, &t123.stats};
    const char *names[4] = {"baseline", "+T1 lightweight predictor",
                            "+T2 heuristic scheduling",
                            "+T3 merged mapping (spec. decoding)"};
    const char *paper_step[4] = {"-", "1.12x", "1.21x", "1.66x"};
    for (int i = 0; i < 4; ++i) {
        const double step =
            i == 0 ? 1.0
                   : stats[i]->tokens_per_s / stats[i - 1]->tokens_per_s;
        t.row({names[i], metrics::Table::num(paper_tps[i], 2),
               metrics::Table::num(stats[i]->tokens_per_s, 2),
               paper_step[i], i == 0 ? "-" : mult(step)});
    }
    t.print();
    std::printf("total: paper %.2fx, measured %.2fx\n",
                paper_tps[3] / paper_tps[0],
                speedup(t123.stats, b.stats));
    std::printf("predictor runtime share (paper ~5.6%%): %.1f%%\n",
                100.0 *
                    (t12.stats.oplog.totals(hw::OpClass::Predictor).time_s +
                     t12.stats.oplog.totals(hw::OpClass::LmHeadSliced)
                         .time_s) /
                    t12.stats.oplog.grand().time_s);
}

} // namespace

int
main()
{
    // T1 predictor weight reduction (Fig. 2c): baseline predictors
    // consume the raw hidden state (~6.7M params); SpecEE's 12-dim
    // MLP needs ~0.07M.
    {
        const auto &preds = pipeline("llama2-7b").predictors();
        metrics::Table t("Figure 2(c)-T1: predictor lightweighting");
        t.header({"design", "params/FLOPs", "vs baseline"});
        t.row({"baseline (raw hidden input)", "~6.7M", "1x"});
        const double p =
            static_cast<double>(preds.paramsPerPredictor());
        t.row({"SpecEE lightweight MLP",
               metrics::Table::num(p / 1e6, 3) + "M",
               metrics::Table::num(6.7e6 / p, 0) + "x smaller"});
        t.print();
    }

    const double cloud_paper[4] = {42.32, 47.39, 57.35, 95.21};
    scenario("Figure 2(d) cloud: Llama2-7B @ A100, MT-Bench",
             "llama2-7b", hw::HardwareSpec::a100(),
             EngineConfig::huggingFace(), "MT-Bench", cloud_paper);

    const double pc_paper[4] = {5.63, 6.64, 8.29, 13.70};
    scenario("Figure 2(d) PC: Llama2-7B @ RTX4060 Laptop, SUM",
             "llama2-7b", hw::HardwareSpec::pc4060(),
             EngineConfig::llamaCpp(), "SUM", pc_paper);
    return 0;
}
