/**
 * @file
 * Shared helpers for the benchmark harnesses: cached pipelines (one
 * training run per model per binary), standard run options, speedup
 * helpers and paper-vs-measured table shorthands.
 */

#ifndef SPECEE_BENCH_BENCH_COMMON_HH
#define SPECEE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "engines/pipeline.hh"
#include "metrics/stats.hh"
#include "metrics/table.hh"
#include "oracle/profiles.hh"
#include "workload/evaluator.hh"

namespace specee::benchutil {

/** One trained pipeline per model, cached for the binary's lifetime. */
inline engines::Pipeline &
pipeline(const std::string &model)
{
    static std::map<std::string, std::unique_ptr<engines::Pipeline>> cache;
    auto it = cache.find(model);
    if (it == cache.end()) {
        engines::PipelineOptions o;
        o.model = model;
        // 80-layer models profile fewer tokens to keep benches quick;
        // accuracy of the bank is asserted in tests, not here.
        if (model == "llama2-70b") {
            o.train_instances = 4;
            o.train_gen_len = 30;
        } else {
            o.train_instances = 6;
            o.train_gen_len = 36;
        }
        o.seed = 42;
        std::fprintf(stderr, "[bench] training pipeline for %s ...\n",
                     model.c_str());
        it = cache.emplace(model,
                           std::make_unique<engines::Pipeline>(o))
                 .first;
    }
    return *it->second;
}

/** Standard small workload for throughput benches. */
inline workload::GenOptions
benchGen(int instances = 2, int gen_len = 24, uint64_t seed = 1234)
{
    workload::GenOptions g;
    g.n_instances = instances;
    g.gen_len = gen_len;
    g.seed = seed;
    return g;
}

/** Run one engine config over one dataset; returns the run result. */
inline engines::RunResult
runOn(const std::string &model, const engines::EngineConfig &cfg,
      const hw::HardwareSpec &spec, const std::string &dataset,
      const workload::GenOptions &gen, uint64_t seed = 7)
{
    auto &pipe = pipeline(model);
    auto w = pipe.makeWorkload(dataset, gen, cfg.q4Calibrated());
    auto engine = pipe.makeEngine(cfg, spec);
    return engine->run(w, seed);
}

inline double
speedup(const engines::RunStats &fast, const engines::RunStats &base)
{
    return fast.tokens_per_s / base.tokens_per_s;
}

/** "x.xx" multiplier formatting. */
inline std::string
mult(double v)
{
    return metrics::Table::num(v, 2) + "x";
}

} // namespace specee::benchutil

#endif // SPECEE_BENCH_BENCH_COMMON_HH
