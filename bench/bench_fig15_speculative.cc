/**
 * @file
 * Figure 15: speculative decoding in the cloud scenario — EAGLE vs
 * SpecEE+EAGLE on Llama2-7B and Llama2-13B @ A100 over 8 datasets.
 * Paper geomean: 1.05x (7B, SpecEE+EAGLE TPOT 124.66 tok/s) and
 * 1.06x (13B, 120.8 tok/s).
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

void
panel(const char *title, const char *model, double paper_geo,
      double paper_tpot)
{
    const auto datasets = oracle::throughputDatasets();
    auto gen = benchGen(2, 24);

    metrics::Table t(title);
    t.header({"dataset", "EAGLE tok/s", "SpecEE+EAGLE tok/s", "speedup",
              "accept/pass", "pass layers saved"});
    std::vector<double> speedups, tpots;
    for (const auto &ds : datasets) {
        auto eagle = runOn(model, EngineConfig::eagle(),
                           hw::HardwareSpec::a100(), ds, gen);
        auto both = runOn(model, EngineConfig::eagle().withSpecEE(),
                          hw::HardwareSpec::a100(), ds, gen);
        const double s = speedup(both.stats, eagle.stats);
        speedups.push_back(s);
        tpots.push_back(both.stats.tokens_per_s);
        t.row({ds, metrics::Table::num(eagle.stats.tokens_per_s, 1),
               metrics::Table::num(both.stats.tokens_per_s, 1), mult(s),
               metrics::Table::num(both.stats.avg_commit_per_pass, 2),
               metrics::Table::num(eagle.stats.avg_forward_layers -
                                       both.stats.avg_forward_layers,
                                   1)});
    }
    t.row({"Geo.Mean", "-", metrics::Table::num(metrics::geomean(tpots), 1),
           mult(metrics::geomean(speedups)), "-", "-"});
    t.print();
    std::printf("paper: %.2fx geomean, %.1f tok/s TPOT; measured: "
                "%.2fx, %.1f tok/s\n",
                paper_geo, paper_tpot, metrics::geomean(speedups),
                metrics::geomean(tpots));
}

} // namespace

int
main()
{
    panel("Figure 15(a): Llama2-7B @ A100, speculative decoding",
          "llama2-7b", 1.05, 124.66);
    panel("Figure 15(b): Llama2-13B @ A100, speculative decoding",
          "llama2-13b", 1.06, 120.8);
    return 0;
}
