/**
 * @file
 * Figure 8: design-space exploration of the predictor configuration.
 * (a) accuracy & execution time vs MLP depth (hidden fixed at 512);
 * (b) accuracy & execution time vs hidden dimension (depth fixed 2).
 * The paper's optimum is depth 2, hidden 512 at ~93-94% accuracy and
 * ~0.1 ms; execution time here is real wall-clock of the C++ kernel
 * (relative shape is what matters).
 */

#include "bench_common.hh"
#include "core/predictor_trainer.hh"
#include "util/stopwatch.hh"

using namespace specee;
using namespace specee::benchutil;

namespace {

/** Train a bank with the given architecture; return held-out accuracy. */
double
accuracyFor(int depth, int hidden, const core::ProfileData &data)
{
    core::ExitPredictor bank(static_cast<int>(data.specee.size()), 12,
                             hidden, depth, 0x5eed);
    core::TrainerOptions opts;
    opts.train.epochs = 15;
    auto rep = core::PredictorTrainer::train(bank, data, opts);
    return rep.mean_test_accuracy;
}

/**
 * Wall-clock microseconds per prediction: min over repetitions to
 * shed scheduler noise.
 */
double
timeFor(int depth, int hidden)
{
    core::ExitPredictor bank(1, 12, hidden, depth, 1);
    tensor::Vec f(12, 0.25f);
    for (int i = 0; i < 200; ++i)
        bank.score(0, f);
    double best = 1e30;
    float acc = 0;
    for (int rep = 0; rep < 5; ++rep) {
        Stopwatch sw;
        const int iters = 2000;
        for (int i = 0; i < iters; ++i)
            acc += bank.score(0, f);
        best = std::min(best, sw.micros() / iters);
    }
    return best + (acc < -1 ? 1 : 0); // keep `acc` alive
}

} // namespace

int
main()
{
    const auto &data = pipeline("llama2-7b").profileData();

    metrics::Table ta("Figure 8(a): predictor depth sweep (hidden 512)");
    ta.header({"layers", "accuracy (paper ~90-94%)", "time/pred (us)"});
    for (int depth : {1, 2, 3, 4}) {
        ta.row({std::to_string(depth),
                metrics::Table::num(100.0 * accuracyFor(depth, 512, data),
                                    1) +
                    "%",
                metrics::Table::num(timeFor(depth, 512), 2)});
    }
    ta.print();

    metrics::Table tb("Figure 8(b): hidden-dimension sweep (depth 2)");
    tb.header({"hidden", "accuracy (paper ~93-93.5%)", "time/pred (us)"});
    for (int hidden : {64, 128, 256, 512, 1024}) {
        tb.row({std::to_string(hidden),
                metrics::Table::num(
                    100.0 * accuracyFor(2, hidden, data), 1) +
                    "%",
                metrics::Table::num(timeFor(2, hidden), 2)});
    }
    tb.print();

    std::printf("\nOptimal configuration (paper): 2-layer MLP, hidden "
                "512 — accuracy saturates\nwhile execution time keeps "
                "growing with depth and width.\n");
    return 0;
}
