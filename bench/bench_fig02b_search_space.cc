/**
 * @file
 * Figure 2(b) / §3.1: the vocabulary is the predictor's search
 * space. Compares (a) the full-vocabulary LM head traversal an
 * AdaInfer-style predictor needs per layer against (b) SpecEE's
 * sliced speculative LM head — the ~10^4x search-space reduction —
 * and shows the resulting share of end-to-end latency (~20% for the
 * full-vocab predictor, ~5.6% for SpecEE's, §7.4.4).
 */

#include "bench_common.hh"
#include "hw/cost_model.hh"

using namespace specee;
using namespace specee::benchutil;

int
main()
{
    const auto cfg7b = model::ModelConfig::llama2_7b();

    metrics::Table t("Figure 2(b): predictor search-space reduction");
    t.header({"quantity", "full vocab (AdaInfer)",
              "reduced (SpecEE)", "reduction"});
    const double full = cfg7b.truth.vocab;
    const double reduced = cfg7b.num_spec_tokens;
    t.row({"search space (tokens)", metrics::Table::num(full, 0),
           metrics::Table::num(reduced, 0),
           metrics::Table::num(full / reduced, 0) + "x"});
    const double full_macs =
        static_cast<double>(cfg7b.truth.hidden) * cfg7b.truth.vocab;
    const double red_macs =
        static_cast<double>(cfg7b.truth.hidden) * cfg7b.num_spec_tokens;
    t.row({"per-layer head MACs", metrics::Table::num(full_macs / 1e6, 1) + "M",
           metrics::Table::num(red_macs / 1e6, 4) + "M",
           metrics::Table::num(full_macs / red_macs, 0) + "x"});
    t.print();

    // Predictor share of end-to-end latency.
    auto ada = runOn("llama2-7b", engines::EngineConfig::adaInfer(),
                     hw::HardwareSpec::a100(), "MT-Bench", benchGen());
    auto ee = runOn("llama2-7b",
                    engines::EngineConfig::huggingFace().withSpecEE(),
                    hw::HardwareSpec::a100(), "MT-Bench", benchGen());

    auto pred_share = [](const engines::RunStats &st, bool full_head) {
        const auto &log = st.oplog;
        double pred = log.totals(hw::OpClass::Predictor).time_s +
                      log.totals(hw::OpClass::LmHeadSliced).time_s;
        if (full_head) {
            // AdaInfer's feature fetch is the per-layer full head; all
            // but one head application per token serve the predictor.
            const auto &head = log.totals(hw::OpClass::LmHeadFull);
            pred += head.time_s * (1.0 - 1.0 / (head.count > 0
                                                     ? head.count
                                                     : 1));
        }
        return pred / log.grand().time_s;
    };

    metrics::Table t2("Prediction share of end-to-end latency");
    t2.header({"predictor", "paper", "measured"});
    t2.row({"AdaInfer (full-vocab features + SVM)", "~20%",
            metrics::Table::num(100.0 * pred_share(ada.stats, true), 1) +
                "%"});
    t2.row({"SpecEE (speculative features + MLP)", "~5.6%",
            metrics::Table::num(100.0 * pred_share(ee.stats, false), 1) +
                "%"});
    t2.print();
    return 0;
}
