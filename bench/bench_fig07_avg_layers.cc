/**
 * @file
 * Figure 7: gap between actual and theoretical average forward
 * layers for SpecEE and AdaInfer on Llama2-7B and Llama2-13B across
 * the evaluation datasets. "Normalized" = theoretical / actual; the
 * paper reports 93-99% for SpecEE and 62-75% for AdaInfer (AdaInfer
 * numbers exist only for MMLU/CSQA).
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

/**
 * Theoretical lower bound: exit exactly at the oracle convergence
 * layer (+1 because layer indices are 0-based counts of executed
 * layers); hard tokens run the full stack.
 */
double
theoreticalLayers(const workload::Workload &w, int n_layers)
{
    double sum = 0;
    long n = 0;
    for (const auto &inst : w.instances) {
        for (const auto &s : inst.steps) {
            sum += std::min(s.conv_layer + 1, n_layers);
            ++n;
        }
    }
    return sum / static_cast<double>(n);
}

} // namespace

int
main()
{
    for (const char *model : {"llama2-7b", "llama2-13b"}) {
        auto &pipe = pipeline(model);
        const int n_layers = pipe.modelConfig().n_layers;
        metrics::Table t(
            std::string("Figure 7: normalized average forward layers, ") +
            model);
        t.header({"dataset", "theoretical", "SpecEE actual",
                  "SpecEE norm. (paper 93-99%)", "AdaInfer actual",
                  "AdaInfer norm. (paper 62-75%)"});

        for (const auto &ds : oracle::accuracyDatasets()) {
            auto gen = benchGen(2, 24);
            auto w = pipe.makeWorkload(ds, gen);
            const double theo = theoreticalLayers(w, n_layers);

            auto ee = runOn(model,
                            EngineConfig::huggingFace().withSpecEE(),
                            hw::HardwareSpec::a100(), ds, gen);
            auto ada = runOn(model, EngineConfig::adaInfer(),
                             hw::HardwareSpec::a100(), ds, gen);

            t.row({ds, metrics::Table::num(theo, 2),
                   metrics::Table::num(ee.stats.avg_forward_layers, 2),
                   metrics::Table::num(
                       100.0 * theo / ee.stats.avg_forward_layers, 1) +
                       "%",
                   metrics::Table::num(ada.stats.avg_forward_layers, 2),
                   metrics::Table::num(
                       100.0 * theo / ada.stats.avg_forward_layers, 1) +
                       "%"});
        }
        t.print();
    }
    std::printf("\nSpecEE tracks the theoretical earliest exit closely; "
                "the verification-free,\nconservatively-thresholded "
                "AdaInfer baseline exits later (Fig. 7).\n");
    return 0;
}
