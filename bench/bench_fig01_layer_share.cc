/**
 * @file
 * Figure 1(b): fraction of end-to-end decode time spent inside the
 * decoder layers for Llama2-7B/13B/70B under autoregressive
 * (HuggingFace) and speculative (EAGLE) decoding. The paper reports
 * 70-95% across models — the bottleneck SpecEE attacks.
 */

#include "bench_common.hh"
#include "hw/cost_model.hh"

using namespace specee;
using namespace specee::benchutil;

namespace {

double
layerShare(const engines::RunStats &st)
{
    const auto &log = st.oplog;
    const double layer_t =
        log.totals(hw::OpClass::DecoderLayer).time_s +
        log.totals(hw::OpClass::KvRead).time_s +
        log.totals(hw::OpClass::Sync).time_s; // TP all-reduce is part
                                              // of the layer on 4xA100
    return layer_t / log.grand().time_s;
}

} // namespace

int
main()
{
    metrics::Table t(
        "Figure 1(b): decoder-layer share of end-to-end time");
    t.header({"model", "decoding", "paper", "measured"});

    struct Row
    {
        const char *model;
        bool spec;
        const char *paper;
    };
    const Row rows[] = {
        {"llama2-7b", false, "~84%"},  {"llama2-13b", false, "~87%"},
        {"llama2-70b", false, "~95%"}, {"llama2-7b", true, "~70%"},
        {"llama2-13b", true, "~75%"},  {"llama2-70b", true, "~90%"},
    };

    for (const auto &row : rows) {
        const auto spec = std::string(row.model) == "llama2-70b"
                              ? hw::HardwareSpec::a100x4()
                              : hw::HardwareSpec::a100();
        auto cfg = row.spec ? engines::EngineConfig::eagle()
                            : engines::EngineConfig::huggingFace();
        auto r = runOn(row.model, cfg, spec, "MT-Bench", benchGen());
        t.row({row.model, row.spec ? "speculative" : "autoregressive",
               row.paper,
               metrics::Table::num(100.0 * layerShare(r.stats), 1) + "%"});
    }
    t.print();
    std::printf("\nThe cascaded decoder layers dominate decode time in "
                "every configuration,\nwhich is the bottleneck early "
                "exiting attacks (Fig. 1b).\n");
    return 0;
}
