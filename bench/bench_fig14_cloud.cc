/**
 * @file
 * Figure 14: cloud-scenario autoregressive speedup and throughput.
 * Panels: (a) Llama2-7B @ RTX4090, (b) Llama2-7B @ A100, (c)
 * Llama2-13B @ A100, (d) Llama2-70B @ 4xA100. Baselines HuggingFace /
 * vllm / AWQ, each with and without SpecEE, over the 8 throughput
 * datasets plus the geometric mean.
 *
 * Paper geomean speedups: (a) 1.43/1.12/1.13x, (b) 1.27/1.12/1.09x,
 * (c) 1.43/1.14/1.12x, (d) 1.23/1.12/1.12x (HF/vllm/AWQ).
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

void
panel(const char *title, const char *model, const hw::HardwareSpec &spec,
      const double paper_geo[3])
{
    const auto datasets = oracle::throughputDatasets();
    auto gen = benchGen(2, 16);

    const EngineConfig bases[3] = {EngineConfig::huggingFace(),
                                   EngineConfig::vllm(),
                                   EngineConfig::awq()};

    metrics::Table t(title);
    t.header({"dataset", "HF tok/s", "+SpecEE", "speedup", "vllm tok/s",
              "+SpecEE", "speedup", "AWQ tok/s", "+SpecEE", "speedup"});

    std::vector<std::vector<double>> speedups(3);
    std::vector<double> ee_tps0;
    for (const auto &ds : datasets) {
        std::vector<std::string> row = {ds};
        for (int b = 0; b < 3; ++b) {
            auto base = runOn(model, bases[b], spec, ds, gen);
            auto ee = runOn(model, bases[b].withSpecEE(), spec, ds, gen);
            const double s = speedup(ee.stats, base.stats);
            speedups[static_cast<size_t>(b)].push_back(s);
            if (b == 0)
                ee_tps0.push_back(ee.stats.tokens_per_s);
            row.push_back(metrics::Table::num(base.stats.tokens_per_s, 1));
            row.push_back(metrics::Table::num(ee.stats.tokens_per_s, 1));
            row.push_back(mult(s));
        }
        t.row(row);
    }
    t.row({"Geo.Mean", "-", metrics::Table::num(
                                 metrics::geomean(ee_tps0), 1),
           mult(metrics::geomean(speedups[0])), "-", "-",
           mult(metrics::geomean(speedups[1])), "-", "-",
           mult(metrics::geomean(speedups[2]))});
    t.print();
    std::printf("paper geomean speedups: HF %.2fx, vllm %.2fx, AWQ "
                "%.2fx; measured: %.2fx, %.2fx, %.2fx\n",
                paper_geo[0], paper_geo[1], paper_geo[2],
                metrics::geomean(speedups[0]),
                metrics::geomean(speedups[1]),
                metrics::geomean(speedups[2]));
}

} // namespace

int
main()
{
    const double a[3] = {1.43, 1.12, 1.13};
    panel("Figure 14(a): Llama2-7B @ RTX 4090", "llama2-7b",
          hw::HardwareSpec::rtx4090(), a);

    const double b[3] = {1.27, 1.12, 1.09};
    panel("Figure 14(b): Llama2-7B @ A100-80GB", "llama2-7b",
          hw::HardwareSpec::a100(), b);

    const double c[3] = {1.43, 1.14, 1.12};
    panel("Figure 14(c): Llama2-13B @ A100-80GB", "llama2-13b",
          hw::HardwareSpec::a100(), c);

    const double d[3] = {1.23, 1.12, 1.12};
    panel("Figure 14(d): Llama2-70B @ 4x A100-80GB", "llama2-70b",
          hw::HardwareSpec::a100x4(), d);
    return 0;
}
