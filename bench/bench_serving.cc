/**
 * @file
 * Serving-layer benchmark: offered-load sweep of the live
 * continuous-batching server vs. sequential one-request-at-a-time
 * serving for the HuggingFace dense baseline, HF+SpecEE, and
 * AdaInfer on one A100 node, now with streaming latency (TTFT and
 * inter-token latency) from the iteration-level scheduler. Extends
 * Fig. 14's cloud scenario to real serving load: continuous batching
 * amortizes weight reads across the decode batch, and SpecEE's early
 * exits compound with it (shorter forwards shrink the shared read
 * the whole batch waits on).
 *
 * A second sweep squeezes the fleet KV budget until the scheduler
 * preempts (evict-KV, re-enqueue, recompute), showing how throughput
 * and tail latency degrade under memory pressure — the regime
 * long-generation workloads (SpecExit, arXiv:2509.24248) live in.
 *
 *   $ ./bench_serving [model]     (default llama2-7b)
 */

#include "bench_common.hh"
#include "serve/server.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    auto &pipe = pipeline(model);
    const auto spec = hw::HardwareSpec::a100();

    struct Entry
    {
        const char *label;
        EngineConfig cfg;
    };
    const Entry entries[] = {
        {"HF dense", EngineConfig::huggingFace()},
        {"HF+SpecEE", EngineConfig::huggingFace().withSpecEE()},
        {"AdaInfer", EngineConfig::adaInfer()},
    };
    const double loads_rps[] = {2.0, 8.0, 32.0};

    metrics::Table t("Serving sweep: " + model + " @ " + spec.name +
                     " (10 requests, chat/sum/QA mix)");
    t.header({"engine", "load (rps)", "seq tok/s", "batch tok/s",
              "speedup", "batch occ", "p50 TTFT (s)", "ITL (ms)",
              "p99 lat (s)"});

    double specee_batch_tps = 0.0, specee_seq_tps = 0.0;
    for (const auto &e : entries) {
        for (double rps : loads_rps) {
            serve::StreamOptions so;
            so.n_requests = 10;
            so.gen_len = 16;
            so.rate_rps = rps;
            so.seed = 0xca11 + static_cast<uint64_t>(rps * 10);
            auto stream = serve::synthesizeStream(so);

            serve::ServerOptions sopts;
            sopts.engine = e.cfg;
            sopts.spec = spec;
            sopts.workers = 2;

            sopts.sched.max_batch = 1;
            serve::Server seq(pipe, sopts);
            seq.submit(stream);
            auto rs = seq.drain();

            sopts.sched.max_batch = 8;
            serve::Server batched(pipe, sopts);
            batched.submit(stream);
            auto rb = batched.drain();

            if (std::string(e.label) == "HF+SpecEE") {
                specee_batch_tps += rb.fleet.tokens_per_s;
                specee_seq_tps += rs.fleet.tokens_per_s;
            }
            t.row({e.label, metrics::Table::num(rps, 0),
                   metrics::Table::num(rs.fleet.tokens_per_s, 1),
                   metrics::Table::num(rb.fleet.tokens_per_s, 1),
                   mult(rb.fleet.tokens_per_s / rs.fleet.tokens_per_s),
                   metrics::Table::num(rb.fleet.mean_batch_occupancy, 1),
                   metrics::Table::num(rb.fleet.p50_ttft_s, 2),
                   metrics::Table::num(rb.fleet.mean_itl_s * 1e3, 1),
                   metrics::Table::num(rb.fleet.p99_latency_s, 2)});
        }
    }
    t.print();

    // --- KV-pressure sweep: pool sized to force preemption ---------
    const auto &mcfg = pipe.modelConfig();
    const int gen_len = 16;
    const int per_seq_blocks =
        mcfg.n_layers * ((workload::kSimPromptLen + gen_len +
                          model::kKvBlockSize - 1) /
                         model::kKvBlockSize);
    const int budgets[] = {0, 4 * per_seq_blocks,
                           5 * per_seq_blocks / 2};

    metrics::Table kt("KV-pressure sweep: HF+SpecEE, max_batch 8, 12 "
                      "requests (budget in paged-KV blocks)");
    kt.header({"KV budget", "tok/s", "preempt", "peak blocks",
               "p50 TTFT (s)", "p99 lat (s)", "fleet mem (GiB)"});

    double unbounded_ttft = 0.0, pressed_ttft = 0.0;
    for (int budget : budgets) {
        serve::StreamOptions so;
        so.n_requests = 12;
        so.gen_len = gen_len;
        so.rate_rps = 0.0; // closed-loop burst: worst KV pressure
        so.seed = 0x6e0;
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.kv_budget_blocks = budget;
        serve::Server server(pipe, sopts);
        server.submit(serve::synthesizeStream(so));
        auto rep = server.drain();

        if (budget == 0)
            unbounded_ttft = rep.fleet.p50_ttft_s;
        else
            pressed_ttft = rep.fleet.p50_ttft_s;
        kt.row({budget == 0 ? std::string("unbounded")
                            : std::to_string(budget),
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                std::to_string(rep.fleet.preemptions),
                std::to_string(rep.fleet.peak_kv_blocks),
                metrics::Table::num(rep.fleet.p50_ttft_s, 2),
                metrics::Table::num(rep.fleet.p99_latency_s, 2),
                metrics::Table::num(rep.fleet.peak_fleet_mem_gb, 1)});
    }
    kt.print();
    std::printf("\nPreemption trades recompute time for a bounded KV "
                "pool; queued requests see\nlater first tokens as the "
                "budget tightens (p50 TTFT %s -> %s s).\n",
                metrics::Table::num(unbounded_ttft, 2).c_str(),
                metrics::Table::num(pressed_ttft, 2).c_str());

    std::printf("\nbatched SpecEE serving vs sequential: %s aggregate "
                "tokens/s (%s)\n",
                specee_batch_tps > specee_seq_tps ? "HIGHER" : "LOWER",
                mult(specee_batch_tps / specee_seq_tps).c_str());
    std::printf("Continuous batching amortizes the weight stream over "
                "the decode batch; early\nexiting shortens the shared "
                "read itself, so the two multiply under load.\n");
    return specee_batch_tps > specee_seq_tps ? 0 : 1;
}
