/**
 * @file
 * Serving-layer benchmark: offered-load sweep of the live
 * continuous-batching server vs. sequential one-request-at-a-time
 * serving for the HuggingFace dense baseline, HF+SpecEE, and
 * AdaInfer on one A100 node, now with streaming latency (TTFT and
 * inter-token latency) from the iteration-level scheduler. Extends
 * Fig. 14's cloud scenario to real serving load: continuous batching
 * amortizes weight reads across the decode batch, and SpecEE's early
 * exits compound with it (shorter forwards shrink the shared read
 * the whole batch waits on).
 *
 * A second sweep squeezes the fleet KV budget until the scheduler
 * preempts (evict-KV, re-enqueue, recompute), showing how throughput
 * and tail latency degrade under memory pressure — the regime
 * long-generation workloads (SpecExit, arXiv:2509.24248) live in.
 *
 * A fourth sweep pits the two preemption mechanisms against each
 * other on a long-sequence stream under a tight KV budget:
 * recompute-only eviction re-ingests every evicted prompt's chunks
 * (wasted priced work that balloons tail TTFT), swap-to-host moves
 * the KV over the host link and resumes where it left off, and auto
 * picks per victim from the modeled costs. The prefill-aware
 * admission watermark rides along on a fifth point, bounding the
 * thrash at its source.
 *
 * A fifth sweep measures the radix prefix cache on a shared-template
 * stream (chat traffic where most prompts start with the same system
 * prompt / few-shot header): with chunked prefill pricing on, a
 * cache hit adopts the template's KV blocks at admission and only
 * ingests its private suffix, so TTFT collapses toward the suffix's
 * chunk time. The sweep varies the fraction of requests sharing the
 * template and pins the cache-off baseline on the same stream.
 *
 * A third sweep exercises the chunked-prefill subsystem on a mixed
 * long-prompt (batch tier) + short-prompt (interactive tier) stream:
 * prompt ingestion is priced and split into token-budgeted chunks
 * that share iterations with decode. Small chunks keep decode ITL
 * flat and let short interactive requests land their first token
 * fast; one monolithic chunk (the unchunked-but-priced baseline)
 * stalls every peer for the whole prompt. The sweep quantifies the
 * TTFT-vs-ITL tradeoff the chunk size buys.
 *
 * A sixth sweep shards the fleet: the engine's step is priced as a
 * DAG of layer-range stages (pipeline parallelism assigns contiguous
 * layer ranges to stages with activation handoffs over the
 * interconnect; tensor parallelism splits each stage's weight stream
 * and pays a per-layer all-reduce). Early exit at layer k releases
 * the stages past k, and the scheduler backfills queued prefill
 * chunks into the stages the previous iteration left idle. The sweep
 * compares backfill on/off per sharding and gates on the pipeline
 * utilization win; a deployment-arithmetic point shows the 70B-class
 * model that overflows one device fitting a tp2 x pp2 fleet.
 *
 * A seventh sweep disaggregates the fleet: a unified two-device
 * fleet (every device decodes and chunk-ingests) against a
 * 1-prefill + 1-decode split at matched hardware — same device
 * count, same interconnect. Prefill workers ingest prompts on their
 * own timelines and stream finished KV to the decode side over the
 * priced peer link, overlapped with the decode batch via per-device
 * DMA channels, so decode iterations never share a boundary with a
 * prompt chunk and interactive ITL flattens to pure decode time.
 *
 * An eighth sweep de-degenerates the preempt-mode comparison: a
 * mixed short/long-prompt stream under pressure hands the auto
 * policy victims whose modeled swap and recompute costs straddle the
 * break-even, so it provably mixes both mechanisms (diverging from
 * either pure mode) instead of collapsing onto swap.
 *
 * A ninth sweep closes the loop: a shifting workload mix (an
 * interactive burst, then a flood of 4096-token batch prompts) under
 * per-tier promises that reward opposite prefill chunk sizes. Each
 * static chunk choice is tuned for one phase and pays in the other;
 * the adaptive controller re-tunes the knob at decision epochs from
 * the windowed SLO attainment (Thompson sampling over the same arm
 * set) and must at least match the worse static choice on goodput
 * under SLO end to end.
 *
 * Every sweep point is also written to BENCH_serving.json so the
 * serving perf trajectory is tracked machine-readably across PRs.
 *
 *   $ ./bench_serving [model]     (default llama2-7b)
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "bench_common.hh"
#include "hw/memory_tracker.hh"
#include "model/stage_graph.hh"
#include "serve/server.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

/** One machine-readable sweep point (flat key/value JSON object). */
struct JsonPoint
{
    std::string sweep;
    std::vector<std::pair<std::string, std::string>> kv;

    JsonPoint &str(const std::string &k, const std::string &v)
    {
        kv.emplace_back(k, "\"" + v + "\"");
        return *this;
    }
    JsonPoint &num(const std::string &k, double v, int digits = 6)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*g", digits, v);
        kv.emplace_back(k, buf);
        return *this;
    }
    JsonPoint &integer(const std::string &k, long v)
    {
        kv.emplace_back(k, std::to_string(v));
        return *this;
    }
};

void
writeJson(const std::string &path, const std::string &model,
          const std::string &platform,
          const std::vector<JsonPoint> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"model\": \"%s\",\n  \"platform\": \"%s\",\n",
                 model.c_str(), platform.c_str());
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        std::fprintf(f, "    {\"sweep\": \"%s\"",
                     points[i].sweep.c_str());
        for (const auto &[k, v] : points[i].kv)
            std::fprintf(f, ", \"%s\": %s", k.c_str(), v.c_str());
        std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s (%zu points)\n", path.c_str(),
                 points.size());
}

/** Fleet latency fields shared by every sweep's JSON point. */
void
latencyFields(JsonPoint &p, const serve::FleetStats &f)
{
    p.num("tok_s", f.tokens_per_s, 5)
        .num("p50_ttft_s", f.p50_ttft_s, 5)
        .num("p99_ttft_s", f.p99_ttft_s, 5)
        .num("p50_itl_s", f.p50_itl_s, 5)
        .num("p99_itl_s", f.p99_itl_s, 5)
        .num("p99_latency_s", f.p99_latency_s, 5);
}

double
p50TtftOf(const serve::ServeReport &rep, serve::Priority tier)
{
    std::vector<double> v;
    for (const auto &o : rep.outcomes)
        if (o.request.priority == tier && !o.dropped && !o.cancelled)
            v.push_back(o.ttft_s);
    return metrics::percentile(v, 50.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    auto &pipe = pipeline(model);
    const auto spec = hw::HardwareSpec::a100();
    std::vector<JsonPoint> json;

    struct Entry
    {
        const char *label;
        EngineConfig cfg;
    };
    const Entry entries[] = {
        {"HF dense", EngineConfig::huggingFace()},
        {"HF+SpecEE", EngineConfig::huggingFace().withSpecEE()},
        {"AdaInfer", EngineConfig::adaInfer()},
    };
    const double loads_rps[] = {2.0, 8.0, 32.0};

    metrics::Table t("Serving sweep: " + model + " @ " + spec.name +
                     " (10 requests, chat/sum/QA mix)");
    t.header({"engine", "load (rps)", "seq tok/s", "batch tok/s",
              "speedup", "batch occ", "p50 TTFT (s)", "ITL (ms)",
              "p99 lat (s)"});

    double specee_batch_tps = 0.0, specee_seq_tps = 0.0;
    for (const auto &e : entries) {
        for (double rps : loads_rps) {
            serve::StreamOptions so;
            so.n_requests = 10;
            so.gen_len = 16;
            so.rate_rps = rps;
            so.seed = 0xca11 + static_cast<uint64_t>(rps * 10);
            auto stream = serve::synthesizeStream(so);

            serve::ServerOptions sopts;
            sopts.engine = e.cfg;
            sopts.spec = spec;
            sopts.workers = 2;

            sopts.sched.max_batch = 1;
            serve::Server seq(pipe, sopts);
            seq.submit(stream);
            auto rs = seq.drain();

            sopts.sched.max_batch = 8;
            serve::Server batched(pipe, sopts);
            batched.submit(stream);
            auto rb = batched.drain();

            if (std::string(e.label) == "HF+SpecEE") {
                specee_batch_tps += rb.fleet.tokens_per_s;
                specee_seq_tps += rs.fleet.tokens_per_s;
            }
            t.row({e.label, metrics::Table::num(rps, 0),
                   metrics::Table::num(rs.fleet.tokens_per_s, 1),
                   metrics::Table::num(rb.fleet.tokens_per_s, 1),
                   mult(rb.fleet.tokens_per_s / rs.fleet.tokens_per_s),
                   metrics::Table::num(rb.fleet.mean_batch_occupancy, 1),
                   metrics::Table::num(rb.fleet.p50_ttft_s, 2),
                   metrics::Table::num(rb.fleet.mean_itl_s * 1e3, 1),
                   metrics::Table::num(rb.fleet.p99_latency_s, 2)});

            JsonPoint p;
            p.sweep = "offered_load";
            p.str("engine", e.label).num("rate_rps", rps, 4);
            p.num("seq_tok_s", rs.fleet.tokens_per_s, 5);
            latencyFields(p, rb.fleet);
            json.push_back(std::move(p));
        }
    }
    t.print();

    // --- KV-pressure sweep: pool sized to force preemption ---------
    const auto &mcfg = pipe.modelConfig();
    const int gen_len = 16;
    const int per_seq_blocks =
        mcfg.n_layers * ((workload::kSimPromptLen + gen_len +
                          model::kKvBlockSize - 1) /
                         model::kKvBlockSize);
    const int budgets[] = {0, 4 * per_seq_blocks,
                           5 * per_seq_blocks / 2};

    metrics::Table kt("KV-pressure sweep: HF+SpecEE, max_batch 8, 12 "
                      "requests (budget in paged-KV blocks)");
    kt.header({"KV budget", "tok/s", "preempt", "peak blocks",
               "p50 TTFT (s)", "p99 lat (s)", "fleet mem (GiB)"});

    double unbounded_ttft = 0.0, pressed_ttft = 0.0;
    for (int budget : budgets) {
        serve::StreamOptions so;
        so.n_requests = 12;
        so.gen_len = gen_len;
        so.rate_rps = 0.0; // closed-loop burst: worst KV pressure
        so.seed = 0x6e0;
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.kv_budget_blocks = budget;
        serve::Server server(pipe, sopts);
        server.submit(serve::synthesizeStream(so));
        auto rep = server.drain();

        if (budget == 0)
            unbounded_ttft = rep.fleet.p50_ttft_s;
        else
            pressed_ttft = rep.fleet.p50_ttft_s;
        kt.row({budget == 0 ? std::string("unbounded")
                            : std::to_string(budget),
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                std::to_string(rep.fleet.preemptions),
                std::to_string(rep.fleet.peak_kv_blocks),
                metrics::Table::num(rep.fleet.p50_ttft_s, 2),
                metrics::Table::num(rep.fleet.p99_latency_s, 2),
                metrics::Table::num(rep.fleet.peak_fleet_mem_gb, 1)});

        JsonPoint p;
        p.sweep = "kv_pressure";
        p.integer("budget_blocks", budget)
            .integer("preemptions", rep.fleet.preemptions)
            .integer("peak_kv_blocks", rep.fleet.peak_kv_blocks);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    kt.print();
    std::printf("\nPreemption trades recompute time for a bounded KV "
                "pool; queued requests see\nlater first tokens as the "
                "budget tightens (p50 TTFT %s -> %s s).\n",
                metrics::Table::num(unbounded_ttft, 2).c_str(),
                metrics::Table::num(pressed_ttft, 2).c_str());

    // --- chunked-prefill sweep: mixed long-batch + interactive -----
    // 6 long-prompt batch-tier requests (4096 tokens) and 6 short
    // interactive requests share the fleet; prompt ingestion is
    // priced, chunked, and interleaved with decode under a token
    // budget. chunk = 0 is the legacy free/atomic prefill; the
    // monolithic point prices the prompt as one chunk (Sarathi's
    // no-chunking baseline).
    struct ChunkPoint
    {
        const char *label;
        int chunk_tokens;
        int iter_budget;
    };
    const ChunkPoint chunk_points[] = {
        {"free (legacy)", 0, 0},
        {"monolithic", 1 << 20, 0},
        {"1024", 1024, 2048},
        {"256", 256, 512},
        {"64", 64, 128},
    };

    metrics::Table ct("Chunked-prefill sweep: HF+SpecEE, 6x4096-token "
                      "batch prompts + 6 interactive, max_batch 8");
    ct.header({"chunk", "tok/s", "inter p50 TTFT (s)",
               "batch p50 TTFT (s)", "p99 ITL (ms)", "prefill chunks",
               "mean prefill (s)"});

    serve::StreamOptions inter;
    inter.n_requests = 6;
    inter.gen_len = 16;
    inter.rate_rps = 12.0;
    inter.seed = 0x1a7e;
    serve::StreamOptions batch;
    batch.n_requests = 6;
    batch.gen_len = 16;
    batch.rate_rps = 12.0;
    batch.prompt_len = 4096;
    batch.priority = serve::Priority::Batch;
    batch.id_base = 100;
    batch.seed = 0xb16;
    const auto mixed = serve::mergeStreams(
        serve::synthesizeStream(inter), serve::synthesizeStream(batch));

    double mono_inter_ttft = 0.0, small_inter_ttft = 0.0;
    for (const auto &cp : chunk_points) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = cp.chunk_tokens;
        sopts.sched.prefill.max_tokens_per_iteration = cp.iter_budget;
        serve::Server server(pipe, sopts);
        server.submit(mixed);
        auto rep = server.drain();

        const double it = p50TtftOf(rep, serve::Priority::Interactive);
        const double bt = p50TtftOf(rep, serve::Priority::Batch);
        if (cp.chunk_tokens == (1 << 20))
            mono_inter_ttft = it;
        if (cp.chunk_tokens == 64)
            small_inter_ttft = it;
        ct.row({cp.label,
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                metrics::Table::num(it, 2), metrics::Table::num(bt, 2),
                metrics::Table::num(rep.fleet.p99_itl_s * 1e3, 1),
                std::to_string(rep.fleet.prefill_chunks),
                metrics::Table::num(rep.fleet.mean_prefill_s, 2)});

        JsonPoint p;
        p.sweep = "chunked_prefill";
        p.str("mode", cp.label)
            .integer("chunk_tokens", cp.chunk_tokens)
            .integer("iter_budget", cp.iter_budget)
            .num("interactive_p50_ttft_s", it, 5)
            .num("batch_p50_ttft_s", bt, 5)
            .integer("prefill_chunks", rep.fleet.prefill_chunks)
            .integer("prefill_tokens", rep.fleet.prefill_tokens)
            .num("mean_prefill_s", rep.fleet.mean_prefill_s, 5);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    ct.print();
    std::printf("\nChunking the 4096-token prompts to 64 tokens cuts "
                "interactive p50 TTFT %s -> %s s\n(%s) vs monolithic "
                "priced prefill: short requests no longer wait out a\n"
                "whole prompt's compute, at the cost of re-reading the "
                "weight stream per chunk\nand higher decode ITL per "
                "mixed iteration.\n",
                metrics::Table::num(mono_inter_ttft, 2).c_str(),
                metrics::Table::num(small_inter_ttft, 2).c_str(),
                mult(mono_inter_ttft /
                     std::max(small_inter_ttft, 1e-9))
                    .c_str());

    // --- preempt-mode sweep: long sequences under KV pressure ------
    // The canonical regime swap-to-host exists for: a steady stream
    // of long prompts (eight 4096-token batch-tier requests) offered
    // faster than the budget-constrained fleet can serve them, so
    // each new arrival squeezes the youngest resident back out
    // mid-prefill. Recompute-only eviction throws the victim's
    // priced chunks away every cycle and the wasted re-ingests
    // compound into queueing delay; swap moves the KV over the host
    // link and resumes, so progress accumulates across evictions;
    // auto decides per victim from the modeled costs. A final point
    // adds the prefill-aware admission watermark, which bounds the
    // thrash at admission instead.
    //
    // The arrival cadence is calibrated from an unconstrained run:
    // one long prompt lands every 0.45 x P, where P is a single
    // request's pressure-free service time — adversarial but
    // model-independent.
    struct PreemptPoint
    {
        const char *label;
        serve::PreemptMode mode;
        double watermark;
    };
    const PreemptPoint preempt_points[] = {
        {"recompute", serve::PreemptMode::Recompute, 0.0},
        {"swap", serve::PreemptMode::Swap, 0.0},
        {"auto", serve::PreemptMode::Auto, 0.0},
        {"auto+wm0.85", serve::PreemptMode::Auto, 0.85},
    };
    // Budget scaled per layer so every model sees the same pressure
    // (100 blocks at the tiny model's 8 layers): roughly two long
    // working sets plus the scheduler's growth reserve — each new
    // arrival squeezes the youngest resident back out mid-prefill.
    const int pressed_budget = 25 * mcfg.n_layers / 2;

    // Calibration: one long prompt's pressure-free service time
    // (admission to finish). Arrivals below land every 0.45x that,
    // so the fleet only keeps up if eviction does not destroy work.
    double prefill_P;
    {
        serve::StreamOptions one;
        one.n_requests = 1;
        one.gen_len = 40;
        one.prompt_len = 4096;
        one.seed = 0x10f6;
        serve::ServerOptions cal;
        cal.engine = EngineConfig::huggingFace().withSpecEE();
        cal.spec = spec;
        cal.workers = 2;
        cal.sched.max_batch = 8;
        cal.sched.prefill.chunk_tokens = 256;
        serve::Server server(pipe, cal);
        server.submit(serve::synthesizeStream(one));
        auto rep = server.drain();
        prefill_P = rep.outcomes[0].latency_s;
    }

    serve::StreamOptions plong;
    plong.n_requests = 8;
    plong.gen_len = 40;
    plong.prompt_len = 4096;
    plong.priority = serve::Priority::Batch;
    plong.id_base = 100;
    plong.seed = 0x10f6;
    auto pressed_stream = serve::synthesizeStream(plong);
    for (size_t i = 0; i < pressed_stream.size(); ++i) {
        pressed_stream[i].arrival_s =
            0.45 * prefill_P * static_cast<double>(i);
    }

    metrics::Table pt("Preempt-mode sweep: HF+SpecEE, 8x4096-token long "
                      "prompts arriving every 0.45x service time, KV "
                      "budget " +
                      std::to_string(pressed_budget) + " blocks");
    pt.header({"mode", "tok/s", "preempt", "swaps", "p50 TTFT (s)",
               "p99 TTFT (s)", "p99 ITL (ms)", "prefill tokens",
               "host KV (GiB)"});

    double rec_p99_ttft = 0.0, swap_p99_ttft = 0.0, auto_p99_ttft = 0.0;
    double rec_tps = 0.0, swap_tps = 0.0, auto_tps = 0.0;
    for (const auto &pp : preempt_points) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.kv_budget_blocks = pressed_budget;
        sopts.sched.preempt_mode = pp.mode;
        sopts.sched.kv_watermark = pp.watermark;
        serve::Server server(pipe, sopts);
        server.submit(pressed_stream);
        auto rep = server.drain();

        if (std::getenv("SPECEE_BENCH_DEBUG") != nullptr) {
            std::fprintf(stderr, "[debug] mode=%s P=%.2f\n", pp.label,
                         prefill_P);
            for (const auto &o : rep.outcomes) {
                std::fprintf(stderr,
                             "[debug] id=%llu arr=%.2f admit=%.2f "
                             "ttft=%.2f prefill=%.2f finish=%.2f "
                             "preempt=%d swaps=%d\n",
                             (unsigned long long)o.request.id,
                             o.request.arrival_s, o.admit_s, o.ttft_s,
                             o.prefill_s, o.finish_s, o.preemptions,
                             o.swaps);
            }
        }

        if (pp.mode == serve::PreemptMode::Recompute) {
            rec_p99_ttft = rep.fleet.p99_ttft_s;
            rec_tps = rep.fleet.tokens_per_s;
        } else if (pp.mode == serve::PreemptMode::Swap) {
            swap_p99_ttft = rep.fleet.p99_ttft_s;
            swap_tps = rep.fleet.tokens_per_s;
        } else if (pp.watermark == 0.0) {
            auto_p99_ttft = rep.fleet.p99_ttft_s;
            auto_tps = rep.fleet.tokens_per_s;
        }
        pt.row({pp.label,
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                std::to_string(rep.fleet.preemptions),
                std::to_string(rep.fleet.swaps_out),
                metrics::Table::num(rep.fleet.p50_ttft_s, 2),
                metrics::Table::num(rep.fleet.p99_ttft_s, 2),
                metrics::Table::num(rep.fleet.p99_itl_s * 1e3, 1),
                std::to_string(rep.fleet.prefill_tokens),
                metrics::Table::num(rep.fleet.peak_host_mem_gb, 2)});

        JsonPoint p;
        p.sweep = "preempt_mode";
        p.str("mode", pp.label)
            .integer("budget_blocks", pressed_budget)
            .num("watermark", pp.watermark, 3)
            .integer("preemptions", rep.fleet.preemptions)
            .integer("swaps_out", rep.fleet.swaps_out)
            .integer("swaps_in", rep.fleet.swaps_in)
            .integer("watermark_rejections",
                     rep.fleet.watermark_rejections)
            .integer("prefill_tokens", rep.fleet.prefill_tokens)
            .integer("peak_host_kv_blocks", rep.fleet.peak_host_kv_blocks)
            .num("peak_host_mem_gb", rep.fleet.peak_host_mem_gb, 4);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    pt.print();
    const bool swap_wins = swap_p99_ttft * 1.5 <= rec_p99_ttft &&
                           auto_p99_ttft * 1.5 <= rec_p99_ttft &&
                           swap_tps >= rec_tps && auto_tps >= rec_tps;
    std::printf("\nSwap-to-host keeps evicted sessions' prompt work: "
                "p99 TTFT %s s (recompute)\n-> %s s (swap) / %s s "
                "(auto) with goodput no worse.\nswap/auto >= 1.5x "
                "better p99 TTFT than recompute: %s\n",
                metrics::Table::num(rec_p99_ttft, 2).c_str(),
                metrics::Table::num(swap_p99_ttft, 2).c_str(),
                metrics::Table::num(auto_p99_ttft, 2).c_str(),
                swap_wins ? "MET" : "MISSED");

    // --- prefix-reuse sweep: shared-template chat traffic ----------
    // 12 conversations, 4096-token prompts, 7/8 of which is the
    // stream's shared template. The first request seeds the cache
    // (it arrives alone and fully ingests before anyone else), then
    // the rest arrive on a cadence calibrated from the pressure-free
    // service time P measured above. Cache hits adopt the template's
    // KV and only chunk-ingest their 512-token suffix; the cache-off
    // baseline re-ingests all 4096 tokens per request.
    const double reuses[] = {0.0, 0.25, 0.5, 0.9};

    auto reuseStream = [&](double reuse) {
        serve::StreamOptions so;
        so.n_requests = 12;
        so.gen_len = 16;
        so.prompt_len = 4096;
        so.template_prefix_len = 7 * 4096 / 8;
        so.prefix_reuse = reuse;
        so.seed = 0x5ee3;
        auto stream = serve::synthesizeStream(so);
        for (size_t i = 1; i < stream.size(); ++i) {
            stream[i].arrival_s =
                prefill_P * (1.0 + 0.45 * static_cast<double>(i - 1));
        }
        return stream;
    };
    auto runReuse = [&](const std::vector<serve::Request> &stream,
                        bool cache_enabled) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.prefill.max_tokens_per_iteration = 512;
        sopts.sched.prefix_cache.enabled = cache_enabled;
        serve::Server server(pipe, sopts);
        server.submit(stream);
        return server.drain();
    };

    metrics::Table xt("Prefix-reuse sweep: HF+SpecEE, 12x4096-token "
                      "prompts, 3584-token shared template, chunked "
                      "prefill 256");
    xt.header({"reuse", "cache", "tok/s", "hits", "cached tok",
               "p50 TTFT (s)", "p99 TTFT (s)", "prefill tok"});

    double hit_p50_ttft = 0.0, cold_p50_ttft = 0.0;
    for (double reuse : reuses) {
        const auto stream = reuseStream(reuse);
        for (const bool cache_enabled : {true, false}) {
            // The cache-off baseline only matters where the contrast
            // is sharpest: the high-reuse point.
            if (!cache_enabled && reuse != 0.9)
                continue;
            auto rep = runReuse(stream, cache_enabled);
            if (std::getenv("SPECEE_BENCH_DEBUG") != nullptr) {
                for (const auto &o : rep.outcomes) {
                    std::fprintf(
                        stderr,
                        "[debug] reuse=%.2f cache=%d id=%llu arr=%.2f "
                        "ttft=%.2f cached=%d\n",
                        reuse, cache_enabled ? 1 : 0,
                        (unsigned long long)o.request.id,
                        o.request.arrival_s, o.ttft_s, o.cached_tokens);
                }
            }
            if (reuse == 0.9 && cache_enabled)
                hit_p50_ttft = rep.fleet.p50_ttft_s;
            if (reuse == 0.9 && !cache_enabled)
                cold_p50_ttft = rep.fleet.p50_ttft_s;
            xt.row({metrics::Table::num(reuse, 2),
                    cache_enabled ? "on" : "off",
                    metrics::Table::num(rep.fleet.tokens_per_s, 1),
                    std::to_string(rep.fleet.prefix_hits),
                    std::to_string(rep.fleet.cached_tokens),
                    metrics::Table::num(rep.fleet.p50_ttft_s, 2),
                    metrics::Table::num(rep.fleet.p99_ttft_s, 2),
                    std::to_string(rep.fleet.prefill_tokens)});

            JsonPoint p;
            p.sweep = "prefix_reuse";
            p.num("reuse", reuse, 3)
                .str("cache", cache_enabled ? "on" : "off")
                .integer("prefix_hits", rep.fleet.prefix_hits)
                .integer("cached_tokens", rep.fleet.cached_tokens)
                .integer("cache_evictions", rep.fleet.cache_evictions)
                .integer("peak_cached_blocks",
                         rep.fleet.peak_cached_blocks)
                .integer("prefill_tokens", rep.fleet.prefill_tokens);
            latencyFields(p, rep.fleet);
            json.push_back(std::move(p));
        }
    }
    xt.print();
    const bool prefix_wins = hit_p50_ttft * 3.0 <= cold_p50_ttft;
    std::printf("\nPrefix caching serves the shared 3584-token template "
                "from cached KV blocks:\np50 TTFT %s s (cache off) -> "
                "%s s (cache on) at 0.9 reuse.\ncache-on p50 TTFT >= 3x "
                "better than cache-off: %s\n",
                metrics::Table::num(cold_p50_ttft, 2).c_str(),
                metrics::Table::num(hit_p50_ttft, 2).c_str(),
                prefix_wins ? "MET" : "MISSED");

    // --- sharded-fleet sweep: TP/PP stage graph + backfill ---------
    // Burst arrival so every stage fight happens at once; chunked
    // prefill under an iteration budget tighter than the decode
    // batch (3 tokens vs up to 3 decode peers), so once decodes
    // occupy the slots a queued prompt is starved — the only way its
    // chunks land is through stages the previous iteration's early
    // exits left idle. One decode slot + one prefill slot under a
    // one-token budget is the sharpest version of that contention:
    // the decoder eats the whole budget, so without backfill the
    // queued prompt makes zero progress until the decoder finishes.
    struct ShardPoint
    {
        int tp;
        int pp;
    };
    const ShardPoint shard_points[] = {{1, 1}, {2, 2}, {1, 4}};

    serve::StreamOptions shs;
    shs.n_requests = 8;
    shs.gen_len = 24;
    shs.prompt_len = 96;
    shs.rate_rps = 0.0;
    shs.seed = 0x5a7d;
    const auto shard_stream = serve::synthesizeStream(shs);

    metrics::Table sht("Sharded-fleet sweep: HF+SpecEE, 8x96-token "
                       "prompts, chunked prefill 32, iteration budget "
                       "1, max_batch 2");
    sht.header({"tp x pp", "backfill", "tok/s", "stages", "pipe util",
                "grants", "extra tok", "p50 TTFT (s)", "p99 lat (s)"});

    double util_on = 0.0, util_off = 0.0;
    long grants_on = 0;
    for (const auto &sp : shard_points) {
        for (const bool backfill : {false, true}) {
            // At pp = 1 there is one stage and backfill is inert;
            // one row carries the unsharded baseline.
            if (sp.pp == 1 && !backfill)
                continue;
            serve::ServerOptions sopts;
            sopts.engine = EngineConfig::huggingFace()
                               .withSpecEE()
                               .withSharding(sp.tp, sp.pp);
            sopts.spec = spec;
            sopts.workers = 2;
            sopts.sched.max_batch = 2;
            sopts.sched.prefill.chunk_tokens = 32;
            sopts.sched.prefill.max_tokens_per_iteration = 1;
            sopts.sched.stage_backfill = backfill;
            serve::Server server(pipe, sopts);
            server.submit(shard_stream);
            auto rep = server.drain();

            if (sp.pp == 4) {
                (backfill ? util_on : util_off) =
                    rep.fleet.pipeline_utilization;
                if (backfill)
                    grants_on = rep.fleet.backfill_grants;
            }
            const std::string shard_label =
                std::to_string(sp.tp) + " x " + std::to_string(sp.pp);
            sht.row({shard_label, sp.pp == 1 ? "-" : backfill ? "on" : "off",
                     metrics::Table::num(rep.fleet.tokens_per_s, 1),
                     std::to_string(rep.fleet.n_stages),
                     metrics::Table::num(rep.fleet.pipeline_utilization,
                                         3),
                     std::to_string(rep.fleet.backfill_grants),
                     std::to_string(rep.fleet.backfill_tokens),
                     metrics::Table::num(rep.fleet.p50_ttft_s, 2),
                     metrics::Table::num(rep.fleet.p99_latency_s, 2)});

            JsonPoint p;
            p.sweep = "sharded";
            p.integer("tp", sp.tp)
                .integer("pp", sp.pp)
                .str("backfill", backfill ? "on" : "off")
                .integer("n_stages", rep.fleet.n_stages)
                .num("pipeline_utilization",
                     rep.fleet.pipeline_utilization, 5)
                .integer("peak_stage_occupancy",
                         rep.fleet.peak_stage_occupancy)
                .integer("backfill_grants", rep.fleet.backfill_grants)
                .integer("backfill_tokens", rep.fleet.backfill_tokens);
            latencyFields(p, rep.fleet);
            json.push_back(std::move(p));
        }
    }
    sht.print();

    // Single-device fit: the 70B-class deployment that motivates the
    // sharding. Pure deployment arithmetic on the modeled config —
    // no pipeline is trained for it here.
    const auto big = model::ModelConfig::llama2_70b();
    const hw::MemoryTracker bigmem(big, tensor::WeightBackend::Fp32,
                                   /*with_draft_model=*/true,
                                   /*n_predictors=*/big.n_layers,
                                   /*predictor_params=*/5200);
    const model::StageGraph mono_graph(big.n_layers, 1);
    const model::StageGraph pp2_graph(big.n_layers, 2);
    const long fit_tokens = 8192;
    const double mono_gib = hw::MemoryTracker::toGiB(
        bigmem.maxDeviceBytes(mono_graph, 1, fit_tokens, 4));
    const double tp2pp2_gib = hw::MemoryTracker::toGiB(
        bigmem.maxDeviceBytes(pp2_graph, 2, fit_tokens, 4));
    const bool big_fits = mono_gib > spec.vram_gb &&
                          tp2pp2_gib < spec.vram_gb;
    {
        JsonPoint p;
        p.sweep = "sharded";
        p.str("backfill", "n/a")
            .str("check", "70b_device_fit")
            .num("mono_device_gib", mono_gib, 5)
            .num("tp2pp2_device_gib", tp2pp2_gib, 5)
            .num("vram_gb", spec.vram_gb, 5);
        json.push_back(std::move(p));
    }

    const bool sharded_wins = util_on > util_off && grants_on > 0;
    std::printf("\nEarly exits free the trailing pipeline stages and "
                "backfill slots queued\nprefill chunks into them: "
                "pipeline utilization %s (off) -> %s (on) at\n1 x 4, "
                "%ld granted backfills.\nbackfill-on utilization > "
                "backfill-off: %s\n",
                metrics::Table::num(util_off, 3).c_str(),
                metrics::Table::num(util_on, 3).c_str(), grants_on,
                sharded_wins ? "MET" : "MISSED");
    std::printf("%s at fp16 needs %s GiB on its tightest device as "
                "one stage (vram %s GiB);\na tp2 x pp2 fleet's "
                "tightest device holds %s GiB.\n70B overflows one "
                "device but fits tp2 x pp2: %s\n",
                big.name.c_str(), metrics::Table::num(mono_gib, 1).c_str(),
                metrics::Table::num(spec.vram_gb, 0).c_str(),
                metrics::Table::num(tp2pp2_gib, 1).c_str(),
                big_fits ? "MET" : "MISSED");

    // --- preempt-mix sweep: auto diverges from both pure modes -----
    // The all-long preempt sweep above is swap's home turf: every
    // victim carries a 4096-token prefill, so auto always swaps and
    // its point degenerates onto swap's. Mixing short 1024-token
    // prompts into the batch tier hands auto victims on BOTH sides
    // of the swap-vs-recompute break-even — a freshly admitted short
    // has barely any replay to lose and recomputes, a long deep into
    // its run swaps — so the policy provably mixes mechanisms.
    serve::StreamOptions mshort;
    mshort.n_requests = 4;
    mshort.gen_len = 24;
    mshort.prompt_len = 1024;
    mshort.priority = serve::Priority::Batch;
    mshort.seed = 0x3a1f;
    serve::StreamOptions mlong;
    mlong.n_requests = 4;
    mlong.gen_len = 24;
    mlong.prompt_len = 4096;
    mlong.priority = serve::Priority::Batch;
    mlong.id_base = 100;
    mlong.seed = 0x9b2c;
    const auto mix_stream = serve::mergeStreams(
        serve::synthesizeStream(mshort), serve::synthesizeStream(mlong));

    // The host link is throttled to 3 GB/s (an oversubscribed PCIe
    // path) so a freshly admitted 1024-token victim prices its replay
    // below the swap round trip while a 4096-token victim deep into
    // its run still swaps — the knife edge that makes auto's per-
    // victim comparison visible. All three modes see the same link.
    auto mix_spec = spec;
    mix_spec.swap_bw_gbs = 3.0;

    metrics::Table mt("Preempt-mix sweep: HF+SpecEE, 4x1024 + "
                      "4x4096-token batch prompts, host link 3 GB/s, "
                      "KV budget " +
                      std::to_string(pressed_budget) + " blocks");
    mt.header({"mode", "tok/s", "preempt", "swaps", "recomputes",
               "prefill tokens", "p99 TTFT (s)"});

    long mix_rec_preempt = 0, mix_swap_swaps = 0;
    long mix_auto_swaps = 0, mix_auto_recomputes = 0;
    double mix_dearer = 0.0, mix_auto_makespan = 0.0;
    for (const auto mode :
         {serve::PreemptMode::Recompute, serve::PreemptMode::Swap,
          serve::PreemptMode::Auto}) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = mix_spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.kv_budget_blocks = pressed_budget;
        sopts.sched.preempt_mode = mode;
        serve::Server server(pipe, sopts);
        server.submit(mix_stream);
        auto rep = server.drain();

        const char *label = mode == serve::PreemptMode::Recompute
                                ? "recompute"
                                : mode == serve::PreemptMode::Swap
                                      ? "swap"
                                      : "auto";
        const long recomputes =
            rep.fleet.preemptions - rep.fleet.swaps_out;
        if (mode == serve::PreemptMode::Recompute) {
            mix_rec_preempt = rep.fleet.preemptions;
            mix_dearer = std::max(mix_dearer, rep.fleet.makespan_s);
        } else if (mode == serve::PreemptMode::Swap) {
            mix_swap_swaps = rep.fleet.swaps_out;
            mix_dearer = std::max(mix_dearer, rep.fleet.makespan_s);
        } else {
            mix_auto_swaps = rep.fleet.swaps_out;
            mix_auto_recomputes = recomputes;
            mix_auto_makespan = rep.fleet.makespan_s;
        }
        mt.row({label, metrics::Table::num(rep.fleet.tokens_per_s, 1),
                std::to_string(rep.fleet.preemptions),
                std::to_string(rep.fleet.swaps_out),
                std::to_string(recomputes),
                std::to_string(rep.fleet.prefill_tokens),
                metrics::Table::num(rep.fleet.p99_ttft_s, 2)});

        JsonPoint p;
        p.sweep = "preempt_mix";
        p.str("mode", label)
            .integer("budget_blocks", pressed_budget)
            .num("host_bw_gbs", mix_spec.swap_bw_gbs, 3)
            .integer("preemptions", rep.fleet.preemptions)
            .integer("swaps_out", rep.fleet.swaps_out)
            .integer("recomputes", recomputes)
            .integer("prefill_tokens", rep.fleet.prefill_tokens)
            .num("makespan_s", rep.fleet.makespan_s, 6);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    mt.print();
    const bool auto_diverges = mix_auto_swaps > 0 &&
                               mix_auto_recomputes > 0 &&
                               mix_rec_preempt > 0 &&
                               mix_swap_swaps > 0 &&
                               mix_auto_makespan <=
                                   mix_dearer * (1.0 + 1e-9);
    std::printf("\nOn the mixed stream auto serves %ld preemptions by "
                "swap and %ld by recompute:\nboth arms fire, so its "
                "point diverges from either pure mode.\nauto mixes "
                "mechanisms and never loses to the dearer pure mode: "
                "%s\n",
                mix_auto_swaps, mix_auto_recomputes,
                auto_diverges ? "MET" : "MISSED");

    // --- disaggregated-fleet sweep: unified vs 1P+1D at matched HW -
    // Interactive requests decode while 4096-token batch prompts
    // keep arriving. Unified: two lockstep data-parallel devices,
    // every device both decodes and chunk-ingests, so each prompt
    // chunk shares an iteration boundary with the decode batch and
    // inflates ITL. Disaggregated at the same device count and
    // interconnect: one device only ingests prompts, streaming
    // finished KV to the decode device over the priced peer link
    // (overlapped via the per-device DMA channels), so decode
    // iterations never wait on a chunk.
    serve::StreamOptions dint;
    dint.n_requests = 8;
    dint.gen_len = 160;
    dint.seed = 0xd14a;
    serve::StreamOptions dbatch;
    dbatch.n_requests = 4;
    dbatch.gen_len = 8;
    dbatch.prompt_len = 4096;
    dbatch.priority = serve::Priority::Batch;
    dbatch.id_base = 100;
    dbatch.seed = 0xe55e;
    auto disagg_stream = serve::mergeStreams(
        serve::synthesizeStream(dint), serve::synthesizeStream(dbatch));
    // Long prompts arrive just under the single-device ingest rate
    // (calibrated off the pressure-free service time measured above):
    // the dedicated prefill device keeps up, while the unified fleet
    // keeps lacing chunks into decode boundaries for the whole run.
    for (auto &r : disagg_stream) {
        if (r.id >= 100) {
            r.arrival_s = 0.8 * prefill_P *
                          static_cast<double>(r.id - 100);
        }
    }

    struct DisaggPoint
    {
        const char *label;
        int prefill_devices;
        bool overlap;
    };
    const DisaggPoint disagg_points[] = {
        {"unified", 0, false},
        {"disagg_serial", 1, false},
        {"disagg", 1, true},
    };

    metrics::Table dt("Disaggregated-fleet sweep: HF+SpecEE, 8 "
                      "interactive + 4x4096-token batch prompts, 2 "
                      "devices, chunked prefill 256");
    dt.header({"fleet", "tok/s", "handoffs", "inter p99 ITL (ms)",
               "inter p50 TTFT (s)", "p99 lat (s)", "xfer busy (s)"});

    double uni_itl = 0.0, dis_itl = 0.0;
    double uni_tps = 0.0, dis_tps = 0.0;
    for (const auto &dp : disagg_points) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.topology.devices = 2;
        sopts.sched.topology.prefill_devices = dp.prefill_devices;
        sopts.sched.topology.overlap_transfers = dp.overlap;

        // Interactive-tier p99 ITL from the token stream: gaps
        // between consecutive tokens of the same interactive request.
        std::vector<double> gaps;
        std::map<uint64_t, double> last_emit;
        sopts.on_token = [&](const serve::TokenEvent &ev) {
            if (ev.request_id < 100) { // interactive substream ids
                const auto it = last_emit.find(ev.request_id);
                if (it != last_emit.end())
                    gaps.push_back(ev.emit_s - it->second);
                last_emit[ev.request_id] = ev.emit_s;
            }
            return true;
        };
        serve::Server server(pipe, sopts);
        server.submit(disagg_stream);
        auto rep = server.drain();
        const double itl = metrics::percentile(gaps, 99.0);

        if (dp.prefill_devices == 0) {
            uni_itl = itl;
            uni_tps = rep.fleet.tokens_per_s;
        } else if (dp.overlap) {
            dis_itl = itl;
            dis_tps = rep.fleet.tokens_per_s;
        }
        dt.row({dp.label, metrics::Table::num(rep.fleet.tokens_per_s, 1),
                std::to_string(rep.fleet.handoffs),
                metrics::Table::num(itl * 1e3, 2),
                metrics::Table::num(
                    p50TtftOf(rep, serve::Priority::Interactive), 2),
                metrics::Table::num(rep.fleet.p99_latency_s, 2),
                metrics::Table::num(rep.fleet.transfer_busy_s, 3)});

        JsonPoint p;
        p.sweep = "disagg";
        p.str("fleet", dp.label)
            .integer("devices", 2)
            .integer("prefill_devices", dp.prefill_devices)
            .str("overlap", dp.overlap ? "on" : "off")
            .integer("handoffs", rep.fleet.handoffs)
            .num("handoff_gb", rep.fleet.handoff_gb, 5)
            .integer("transfers_overlapped",
                     rep.fleet.transfers_overlapped)
            .num("transfer_bytes_gb",
                 rep.fleet.transfer_bytes_sent / (1024.0 * 1024.0 *
                                                  1024.0),
                 5)
            .num("interactive_p99_itl_s", itl, 5)
            .num("prefill_busy_s", rep.fleet.prefill_busy_s, 5)
            .num("transfer_busy_s", rep.fleet.transfer_busy_s, 5);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    dt.print();
    const bool disagg_wins =
        dis_itl * 1.3 <= uni_itl && dis_tps >= uni_tps;
    std::printf("\nDedicating a device to prefill takes prompt chunks "
                "off the decode boundary:\ninteractive p99 ITL %s ms "
                "(unified) -> %s ms (disaggregated) at equal-or-\n"
                "better goodput (%s -> %s tok/s) on matched hardware.\n"
                "disagg >= 1.3x better interactive p99 ITL at >= "
                "goodput: %s\n",
                metrics::Table::num(uni_itl * 1e3, 2).c_str(),
                metrics::Table::num(dis_itl * 1e3, 2).c_str(),
                metrics::Table::num(uni_tps, 1).c_str(),
                metrics::Table::num(dis_tps, 1).c_str(),
                disagg_wins ? "MET" : "MISSED");

    // --- SLO-attainment sweep: goodput under explicit objectives ---
    // Re-runs the preempt-mode and disaggregation scenarios with
    // per-tier SLOs attached, so the scheduler judges every retired
    // request and accounts goodput UNDER SLO (tokens delivered by
    // attaining requests / makespan) instead of raw tok/s. The
    // objectives are calibrated from the measurements above: the
    // batch-tier TTFT bound sits just above the swap/auto tail (work-
    // preserving preemption keeps the promise, recompute's thrashed
    // tail blows it) and the interactive ITL bound sits between the
    // disaggregated and unified tails. The attainment ordering must
    // reproduce the raw latency ordering the earlier bars
    // established. The disaggregated point also records a fleet
    // event trace (Perfetto-loadable) and a metrics timeline — the
    // artifact CI schema-checks.
    metrics::Table st("SLO-attainment sweep: goodput under tier "
                      "objectives (calibrated from sweeps above)");
    st.header({"scenario", "evaluated", "attained", "tok/s",
               "SLO tok/s", "timeline windows"});

    double slo_rec = 0.0, slo_swap = 0.0, slo_auto = 0.0;
    const double batch_ttft_slo =
        1.05 * std::max(swap_p99_ttft, auto_p99_ttft);
    for (const auto &pp : preempt_points) {
        if (pp.watermark != 0.0)
            continue; // the three pure preemption policies
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.kv_budget_blocks = pressed_budget;
        sopts.sched.preempt_mode = pp.mode;
        sopts.sched.slo.batch.ttft_s = batch_ttft_slo;
        sopts.sched.timeline.window_s = 0.5 * prefill_P;
        serve::Server server(pipe, sopts);
        server.submit(pressed_stream);
        auto rep = server.drain();

        if (pp.mode == serve::PreemptMode::Recompute)
            slo_rec = rep.fleet.goodput_under_slo;
        else if (pp.mode == serve::PreemptMode::Swap)
            slo_swap = rep.fleet.goodput_under_slo;
        else
            slo_auto = rep.fleet.goodput_under_slo;
        st.row({std::string("preempt/") + pp.label,
                std::to_string(rep.fleet.slo_evaluated),
                std::to_string(rep.fleet.slo_attained),
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                metrics::Table::num(rep.fleet.goodput_under_slo, 1),
                std::to_string(rep.fleet.timeline.size())});

        JsonPoint p;
        p.sweep = "slo";
        p.str("scenario", std::string("preempt_") + pp.label)
            .num("batch_ttft_slo_s", batch_ttft_slo, 5)
            .integer("slo_evaluated", rep.fleet.slo_evaluated)
            .integer("slo_attained", rep.fleet.slo_attained)
            .num("goodput_under_slo", rep.fleet.goodput_under_slo, 5)
            .integer("timeline_windows",
                     static_cast<long>(rep.fleet.timeline.size()));
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }

    // Disaggregation under an interactive ITL promise. The bound
    // splits the two fleets' measured tails geometrically, so it is
    // attainable for the dedicated-prefill fleet and not for the
    // unified one that laces prompt chunks into decode boundaries.
    const double inter_itl_slo = std::sqrt(dis_itl * uni_itl);
    double slo_uni = 0.0, slo_dis = 0.0;
    for (const auto &dp : disagg_points) {
        if (dp.prefill_devices == 1 && !dp.overlap)
            continue; // unified vs overlapped disagg, as in the bar
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = 256;
        sopts.sched.topology.devices = 2;
        sopts.sched.topology.prefill_devices = dp.prefill_devices;
        sopts.sched.topology.overlap_transfers = dp.overlap;
        sopts.sched.slo.interactive.itl_s = inter_itl_slo;
        sopts.sched.timeline.window_s = 0.5 * prefill_P;
        if (dp.prefill_devices == 1) {
            // The richest scenario traces: prefill-device chunks, DMA
            // handoffs and decode steps on separate Perfetto tracks.
            sopts.trace_path = "BENCH_serving_trace.json";
        }
        serve::Server server(pipe, sopts);
        server.submit(disagg_stream);
        auto rep = server.drain();

        if (dp.prefill_devices == 0)
            slo_uni = rep.fleet.goodput_under_slo;
        else
            slo_dis = rep.fleet.goodput_under_slo;
        st.row({std::string("disagg/") + dp.label,
                std::to_string(rep.fleet.slo_evaluated),
                std::to_string(rep.fleet.slo_attained),
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                metrics::Table::num(rep.fleet.goodput_under_slo, 1),
                std::to_string(rep.fleet.timeline.size())});

        JsonPoint p;
        p.sweep = "slo";
        p.str("scenario", std::string("disagg_") + dp.label)
            .num("interactive_itl_slo_s", inter_itl_slo, 5)
            .integer("slo_evaluated", rep.fleet.slo_evaluated)
            .integer("slo_attained", rep.fleet.slo_attained)
            .num("goodput_under_slo", rep.fleet.goodput_under_slo, 5)
            .integer("trace_events",
                     static_cast<long>(rep.fleet.trace.size()))
            .integer("timeline_windows",
                     static_cast<long>(rep.fleet.timeline.size()));
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    st.print();
    const bool slo_ordered = slo_swap >= slo_rec &&
                             slo_auto >= slo_rec && slo_dis >= slo_uni;
    std::printf("\nGoodput under SLO reproduces the latency ordering: "
                "swap %s / auto %s >= recompute %s tok/s under the "
                "batch TTFT promise,\ndisagg %s >= unified %s tok/s "
                "under the interactive ITL promise: %s\n",
                metrics::Table::num(slo_swap, 1).c_str(),
                metrics::Table::num(slo_auto, 1).c_str(),
                metrics::Table::num(slo_rec, 1).c_str(),
                metrics::Table::num(slo_dis, 1).c_str(),
                metrics::Table::num(slo_uni, 1).c_str(),
                slo_ordered ? "MET" : "MISSED");

    // --- controller sweep: adaptive knobs under a shifting mix -----
    // A steady interactive stream runs under an ITL promise for the
    // whole span. Phase 1 is interactive-only, where the prefill
    // chunk size is moot; from phase 2 on, 4096-token batch prompts
    // keep arriving, and every big chunk laced into a decode
    // boundary breaks the promise — the regime the chunked-prefill
    // sweep quantified. A static big chunk is yesterday's tuning for
    // phase 1 and bleeds attainment for the rest of the run; the
    // adaptive controller starts exactly that mis-tuned way, reads
    // the windowed SLO attainment at each decision epoch, and
    // re-tunes the knob online, so end to end it must at least match
    // the worse static choice on goodput under SLO.
    serve::StreamOptions cint;
    cint.n_requests = 16;
    cint.gen_len = 24;
    cint.seed = 0xc0a1;
    serve::StreamOptions cbatch;
    cbatch.n_requests = 6;
    cbatch.gen_len = 8;
    cbatch.prompt_len = 4096;
    cbatch.priority = serve::Priority::Batch;
    cbatch.id_base = 100;
    cbatch.seed = 0xc0a2;
    auto ctl_stream = serve::mergeStreams(
        serve::synthesizeStream(cint), serve::synthesizeStream(cbatch));
    for (auto &r : ctl_stream) {
        if (r.id >= 100) {
            r.arrival_s =
                prefill_P * (0.8 + 0.45 * static_cast<double>(r.id - 100));
        } else {
            r.arrival_s = 0.15 * prefill_P * static_cast<double>(r.id);
        }
    }

    const auto interItlTail = [](const serve::ServeReport &rep) {
        std::vector<double> v;
        for (const auto &o : rep.outcomes) {
            if (o.request.priority == serve::Priority::Interactive &&
                !o.dropped && !o.cancelled)
                v.push_back(o.max_itl_s);
        }
        return metrics::percentile(v, 99.0);
    };

    const int ctl_chunks[] = {64, 1024};
    const auto runCtl = [&](int chunk, bool adaptive,
                            const obs::TierSlo &slo, double window_s) {
        serve::ServerOptions sopts;
        sopts.engine = EngineConfig::huggingFace().withSpecEE();
        sopts.spec = spec;
        sopts.workers = 2;
        sopts.sched.max_batch = 8;
        sopts.sched.prefill.chunk_tokens = chunk;
        sopts.sched.slo = slo;
        sopts.sched.timeline.window_s = window_s;
        if (adaptive) {
            auto &ctl = sopts.sched.controller;
            ctl.enabled = true;
            ctl.seed = 11;
            // Epochs must span several iterations: a window narrower
            // than one big-chunk iteration closes idle (no evidence)
            // and the posterior starves.
            ctl.epoch_s = 0.25 * prefill_P;
            ctl.chunk_arms = {ctl_chunks[0], ctl_chunks[1]};
        }
        serve::Server server(pipe, sopts);
        server.submit(ctl_stream);
        return server.drain();
    };

    // Probe runs (no promise yet): measure each static chunk's
    // interactive ITL tail, then split them geometrically so the
    // promise is attainable under small chunks and broken under big
    // ones.
    double probe_itl[2];
    for (int i = 0; i < 2; ++i) {
        auto rep = runCtl(ctl_chunks[i], false, obs::TierSlo{}, 0.0);
        probe_itl[i] = interItlTail(rep);
    }
    obs::TierSlo ctl_slo;
    ctl_slo.interactive.itl_s = std::sqrt(probe_itl[0] * probe_itl[1]);

    struct CtlPoint
    {
        const char *label;
        int chunk;
        bool adaptive;
    };
    const CtlPoint ctl_points[] = {
        {"static_small", ctl_chunks[0], false},
        {"static_big", ctl_chunks[1], false},
        {"adaptive", ctl_chunks[1], true},
    };

    metrics::Table at("Controller sweep: shifting interactive -> batch "
                      "mix under tier promises, chunk 64 vs 1024 vs "
                      "adaptive");
    at.header({"config", "evaluated", "attained", "tok/s", "SLO tok/s",
               "epochs", "knob changes"});

    double ctl_gp[3] = {0.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
        const auto &cp = ctl_points[i];
        auto rep =
            runCtl(cp.chunk, cp.adaptive, ctl_slo, 0.25 * prefill_P);
        ctl_gp[i] = rep.fleet.goodput_under_slo;
        if (cp.adaptive &&
            std::getenv("SPECEE_BENCH_DEBUG") != nullptr) {
            for (const auto &ep : rep.fleet.controller.trajectory) {
                std::fprintf(stderr,
                             "[debug] epoch=%ld t=%.3f reward=%.3f "
                             "valid=%d changed=%d chunk=%d\n",
                             ep.epoch, ep.t, ep.reward,
                             ep.reward_valid ? 1 : 0, ep.changed,
                             ep.knobs.chunk_tokens);
            }
        }
        at.row({cp.label, std::to_string(rep.fleet.slo_evaluated),
                std::to_string(rep.fleet.slo_attained),
                metrics::Table::num(rep.fleet.tokens_per_s, 1),
                metrics::Table::num(rep.fleet.goodput_under_slo, 1),
                std::to_string(rep.fleet.controller.epochs),
                std::to_string(rep.fleet.controller.knob_changes)});

        JsonPoint p;
        p.sweep = "controller";
        p.str("config", cp.label)
            .integer("chunk_tokens", cp.chunk)
            .num("interactive_itl_slo_s", ctl_slo.interactive.itl_s, 5)
            .integer("slo_evaluated", rep.fleet.slo_evaluated)
            .integer("slo_attained", rep.fleet.slo_attained)
            .num("goodput_under_slo", rep.fleet.goodput_under_slo, 5)
            .integer("epochs", rep.fleet.controller.epochs)
            .integer("knob_changes", rep.fleet.controller.knob_changes);
        latencyFields(p, rep.fleet);
        json.push_back(std::move(p));
    }
    at.print();
    const double ctl_worst = std::min(ctl_gp[0], ctl_gp[1]);
    const bool controller_wins = ctl_gp[2] >= ctl_worst * 0.999;
    std::printf("\nThe shifting mix punishes any static chunk choice "
                "on one phase: goodput under\nSLO %s (small) vs %s "
                "(big) tok/s; the adaptive controller re-tunes online "
                "and\nserves %s tok/s.\nadaptive >= the worse static "
                "choice: %s\n",
                metrics::Table::num(ctl_gp[0], 1).c_str(),
                metrics::Table::num(ctl_gp[1], 1).c_str(),
                metrics::Table::num(ctl_gp[2], 1).c_str(),
                controller_wins ? "MET" : "MISSED");

    writeJson("BENCH_serving.json", model, spec.name, json);

    std::printf("\nbatched SpecEE serving vs sequential: %s aggregate "
                "tokens/s (%s)\n",
                specee_batch_tps > specee_seq_tps ? "HIGHER" : "LOWER",
                mult(specee_batch_tps / specee_seq_tps).c_str());
    std::printf("Continuous batching amortizes the weight stream over "
                "the decode batch; early\nexiting shortens the shared "
                "read itself, so the two multiply under load.\n");
    const bool chunking_wins =
        small_inter_ttft * 2.0 <= mono_inter_ttft;
    std::printf("chunked interactive TTFT >= 2x better than "
                "monolithic: %s\n",
                chunking_wins ? "MET" : "MISSED");
    return specee_batch_tps > specee_seq_tps && chunking_wins &&
                   swap_wins && prefix_wins && sharded_wins &&
                   big_fits && auto_diverges && disagg_wins &&
                   slo_ordered && controller_wins
               ? 0
               : 1;
}
