/**
 * @file
 * Serving-layer benchmark: offered-load sweep of the batched
 * multi-request server vs. sequential one-request-at-a-time serving
 * for the HuggingFace dense baseline, HF+SpecEE, and AdaInfer on one
 * A100 node. Extends Fig. 14's cloud scenario to real serving load:
 * continuous batching amortizes weight reads across the decode
 * batch, and SpecEE's early exits compound with it (shorter forwards
 * shrink the shared read the whole batch waits on).
 *
 *   $ ./bench_serving [model]     (default llama2-7b)
 */

#include "bench_common.hh"
#include "serve/server.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    auto &pipe = pipeline(model);
    const auto spec = hw::HardwareSpec::a100();

    struct Entry
    {
        const char *label;
        EngineConfig cfg;
    };
    const Entry entries[] = {
        {"HF dense", EngineConfig::huggingFace()},
        {"HF+SpecEE", EngineConfig::huggingFace().withSpecEE()},
        {"AdaInfer", EngineConfig::adaInfer()},
    };
    const double loads_rps[] = {2.0, 8.0, 32.0};

    metrics::Table t("Serving sweep: " + model + " @ " + spec.name +
                     " (10 requests, chat/sum/QA mix)");
    t.header({"engine", "load (rps)", "seq tok/s", "batch tok/s",
              "speedup", "batch occ", "p50 lat (s)", "p99 lat (s)"});

    double specee_batch_tps = 0.0, specee_seq_tps = 0.0;
    for (const auto &e : entries) {
        for (double rps : loads_rps) {
            serve::StreamOptions so;
            so.n_requests = 10;
            so.gen_len = 16;
            so.rate_rps = rps;
            so.seed = 0xca11 + static_cast<uint64_t>(rps * 10);
            auto stream = serve::synthesizeStream(so);

            serve::ServerOptions sopts;
            sopts.engine = e.cfg;
            sopts.spec = spec;
            sopts.workers = 2;

            sopts.sched.max_batch = 1;
            serve::Server seq(pipe, sopts);
            seq.submit(stream);
            auto rs = seq.drain();

            sopts.sched.max_batch = 8;
            serve::Server batched(pipe, sopts);
            batched.submit(stream);
            auto rb = batched.drain();

            if (std::string(e.label) == "HF+SpecEE") {
                specee_batch_tps += rb.fleet.tokens_per_s;
                specee_seq_tps += rs.fleet.tokens_per_s;
            }
            t.row({e.label, metrics::Table::num(rps, 0),
                   metrics::Table::num(rs.fleet.tokens_per_s, 1),
                   metrics::Table::num(rb.fleet.tokens_per_s, 1),
                   mult(rb.fleet.tokens_per_s / rs.fleet.tokens_per_s),
                   metrics::Table::num(rb.fleet.mean_batch_occupancy, 1),
                   metrics::Table::num(rb.fleet.p50_latency_s, 2),
                   metrics::Table::num(rb.fleet.p99_latency_s, 2)});
        }
    }
    t.print();

    std::printf("\nbatched SpecEE serving vs sequential: %s aggregate "
                "tokens/s (%s)\n",
                specee_batch_tps > specee_seq_tps ? "HIGHER" : "LOWER",
                mult(specee_batch_tps / specee_seq_tps).c_str());
    std::printf("Continuous batching amortizes the weight stream over "
                "the decode batch; early\nexiting shortens the shared "
                "read itself, so the two multiply under load.\n");
    return specee_batch_tps > specee_seq_tps ? 0 : 1;
}
