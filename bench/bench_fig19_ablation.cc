/**
 * @file
 * Figure 19: ablation of the three techniques on Llama2-7B @ A100
 * with HuggingFace as the code base, across the 8 datasets.
 * Paper: +T1 ~1.08x, +T1+T2 ~1.27x, +T1+T2+T3 ~2.2x (geomean).
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main()
{
    const auto datasets = oracle::throughputDatasets();
    const auto spec = hw::HardwareSpec::a100();
    auto gen = benchGen(2, 20);

    metrics::Table t("Figure 19: ablation study, Llama2-7B @ A100");
    t.header({"dataset", "HF tok/s", "+T1", "+T1+T2", "+T1+T2+T3"});
    std::vector<double> s1, s2, s3;
    for (const auto &ds : datasets) {
        auto hf = runOn("llama2-7b", EngineConfig::huggingFace(), spec,
                        ds, gen);
        auto t1 = runOn("llama2-7b",
                        EngineConfig::huggingFace().withSpecEE(false),
                        spec, ds, gen);
        auto t12 = runOn("llama2-7b",
                         EngineConfig::huggingFace().withSpecEE(true),
                         spec, ds, gen);
        auto t123 = runOn("llama2-7b",
                          EngineConfig::huggingFace()
                              .withSpecEE(true)
                              .withSpecDecode(),
                          spec, ds, gen);
        s1.push_back(speedup(t1.stats, hf.stats));
        s2.push_back(speedup(t12.stats, hf.stats));
        s3.push_back(speedup(t123.stats, hf.stats));
        t.row({ds, metrics::Table::num(hf.stats.tokens_per_s, 1),
               mult(s1.back()), mult(s2.back()), mult(s3.back())});
    }
    t.row({"Geo.Mean", "-", mult(metrics::geomean(s1)),
           mult(metrics::geomean(s2)), mult(metrics::geomean(s3))});
    t.print();
    std::printf("\npaper geomeans: +T1 ~1.08x, +T1+T2 ~1.27x, "
                "+T1+T2+T3 ~2.2x\n");
    return 0;
}
