/**
 * @file
 * Table 4: accuracy / perplexity / average forward layers for Dense,
 * AdaInfer, SpecEE, AWQ and AWQ+SpecEE on Llama2-7B/13B/70B over the
 * seven evaluation datasets. Dense accuracy (and AWQ accuracy) are
 * oracle-calibrated inputs (DESIGN.md §5); every other number —
 * SpecEE/AdaInfer accuracy deltas, perplexities, forward layers — is
 * measured from the simulated engines.
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

std::string
accOrPpl(const workload::EvalResult &ev)
{
    if (ev.accuracy_pct >= 0.0)
        return metrics::Table::num(ev.accuracy_pct, 2);
    return "ppl " + metrics::Table::num(ev.ppl, 2);
}

void
modelTable(const char *model, const hw::HardwareSpec &spec,
           bool include_adainfer)
{
    auto &pipe = pipeline(model);
    auto gen = benchGen(12, 12, 0x7ab1e4);

    metrics::Table t(std::string("Table 4: ") + model + " (" +
                     std::to_string(pipe.modelConfig().n_layers) +
                     " layers)");
    t.header({"dataset", "paper dense", "Dense", "AdaInfer(#L)",
              "SpecEE(#L)", "paper SpecEE(#L)", "AWQ", "AWQ+SpecEE(#L)"});

    for (const auto &ds : oracle::accuracyDatasets()) {
        const auto &prof = oracle::profileByName(ds);
        const auto &cal = prof.calFor(model);
        auto w = pipe.makeWorkload(ds, gen);
        auto wq = pipe.makeWorkload(ds, gen, /*quantized_cal=*/true);

        auto dense = pipe.makeEngine(EngineConfig::huggingFace(), spec)
                         ->run(w, 3);
        auto ee =
            pipe.makeEngine(EngineConfig::huggingFace().withSpecEE(),
                            spec)
                ->run(w, 3);
        auto awq = pipe.makeEngine(EngineConfig::awq(), spec)->run(wq, 3);
        auto awq_ee =
            pipe.makeEngine(EngineConfig::awq().withSpecEE(), spec)
                ->run(wq, 3);

        auto ev_dense = workload::Evaluator::evaluate(w, dense.emissions,
                                                      pipe.corpus());
        auto ev_ee = workload::Evaluator::evaluate(w, ee.emissions,
                                                   pipe.corpus());
        auto ev_awq = workload::Evaluator::evaluate(wq, awq.emissions,
                                                    pipe.corpus());
        auto ev_awq_ee = workload::Evaluator::evaluate(
            wq, awq_ee.emissions, pipe.corpus());

        std::string ada_cell = "-";
        if (include_adainfer) {
            auto ada = pipe.makeEngine(EngineConfig::adaInfer(), spec)
                           ->run(w, 3);
            auto ev_ada = workload::Evaluator::evaluate(
                w, ada.emissions, pipe.corpus());
            ada_cell = accOrPpl(ev_ada) + " (" +
                       metrics::Table::num(
                           ada.stats.avg_forward_layers, 1) +
                       ")";
        }

        const std::string paper_dense =
            prof.gradedByAccuracy()
                ? metrics::Table::num(cal.dense_accuracy, 2)
                : "ppl " + metrics::Table::num(cal.dense_ppl, 2);
        t.row({ds, paper_dense, accOrPpl(ev_dense), ada_cell,
               accOrPpl(ev_ee) + " (" +
                   metrics::Table::num(ee.stats.avg_forward_layers, 1) +
                   ")",
               (prof.gradedByAccuracy()
                    ? metrics::Table::num(
                          cal.dense_accuracy, 2) // paper SpecEE ~= dense
                    : std::string("~dense")) +
                   " (" + metrics::Table::num(cal.avg_layers, 1) + ")",
               accOrPpl(ev_awq),
               accOrPpl(ev_awq_ee) + " (" +
                   metrics::Table::num(awq_ee.stats.avg_forward_layers,
                                       1) +
                   ")"});
    }
    t.print();
}

} // namespace

int
main()
{
    modelTable("llama2-7b", hw::HardwareSpec::a100(), true);
    modelTable("llama2-13b", hw::HardwareSpec::a100(), true);
    modelTable("llama2-70b", hw::HardwareSpec::a100x4(), false);
    std::printf("\nReading guide: Dense accuracy is calibrated to Table "
                "4 by the oracle; the\nSpecEE columns are measured — "
                "the claim under test is the <1%% accuracy delta\nand "
                "the ~23/32 (7B), ~26/40 (13B), ~53/80 (70B) forward "
                "layers.\n");
    return 0;
}
