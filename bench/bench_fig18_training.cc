/**
 * @file
 * Figure 18: predictor accuracy vs training-set ratio for Llama2-7B
 * and Llama2-13B. The paper collects ~16K samples per predictor from
 * MT-Bench traces and shows that ~2% of them already reach good
 * accuracy (total training time ~5 minutes).
 */

#include "bench_common.hh"
#include "core/predictor_trainer.hh"

using namespace specee;
using namespace specee::benchutil;

int
main()
{
    for (const char *model : {"llama2-7b", "llama2-13b"}) {
        const auto &data = pipeline(model).profileData();
        metrics::Table t(std::string("Figure 18: accuracy vs training "
                                     "set ratio, ") +
                         model);
        t.header({"training ratio", "samples/layer", "held-out accuracy"});
        for (double ratio : {0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50,
                             0.75, 1.00}) {
            core::ExitPredictor bank(
                static_cast<int>(data.specee.size()), 12, 512, 2,
                0x18);
            core::TrainerOptions opts;
            opts.data_ratio = ratio;
            opts.train.epochs = 15;
            auto rep = core::PredictorTrainer::train(bank, data, opts);
            t.row({metrics::Table::num(100.0 * ratio, 1) + "%",
                   std::to_string(rep.samples_used /
                                  data.specee.size()),
                   metrics::Table::num(100.0 * rep.mean_test_accuracy,
                                       1) +
                       "%"});
        }
        t.print();
    }
    std::printf("\nPaper: accuracy saturates near ~2%% of the 16K "
                "training samples (Fig. 18);\nthe small-sample floor "
                "here is higher because our profiling runs are "
                "shorter.\n");
    return 0;
}
