/**
 * @file
 * Figure 11: context similarity of exit-layer positions. For window
 * sizes N = 1..8: the actual hit ratio of the current token's exit
 * layer inside the +/-2 neighbourhood of the last N exits, the
 * theoretical (uniform) hit ratio implied by the union-set size, and
 * the average union size itself (~10.2 layers at N=5, hit ~80%).
 */

#include <algorithm>
#include <deque>

#include "bench_common.hh"
#include "oracle/convergence.hh"
#include "workload/datasets.hh"

using namespace specee;
using namespace specee::benchutil;

int
main()
{
    auto &pipe = pipeline("llama2-7b");
    const auto &profile = oracle::profileByName("MT-Bench");
    workload::WorkloadGen gen(pipe.corpus());
    auto params = gen.convergenceParams(profile, pipe.modelConfig(),
                                        benchGen());
    const int n_layers = pipe.modelConfig().n_layers;

    metrics::Table t("Figure 11: context similarity of exit layers");
    t.header({"N (window)", "actual hit ratio", "theoretical",
              "avg union layers"});

    for (int window = 1; window <= 8; ++window) {
        oracle::ConvergenceProcess proc(params);
        Rng rng(11);
        std::deque<int> last;
        long hits = 0, total = 0;
        double union_sum = 0.0;
        for (int i = 0; i < 20000; ++i) {
            int c = proc.next(rng);
            if (c > proc.maxExitLayer())
                continue;
            if (static_cast<int>(last.size()) == window) {
                std::vector<bool> in_union(
                    static_cast<size_t>(n_layers), false);
                bool near = false;
                for (int prev : last) {
                    near |= std::abs(c - prev) <= 2;
                    for (int l = std::max(0, prev - 2);
                         l <= std::min(n_layers - 1, prev + 2); ++l)
                        in_union[static_cast<size_t>(l)] = true;
                }
                hits += near ? 1 : 0;
                union_sum += static_cast<double>(
                    std::count(in_union.begin(), in_union.end(), true));
                ++total;
            }
            last.push_back(c);
            if (static_cast<int>(last.size()) > window)
                last.pop_front();
        }
        const double actual = static_cast<double>(hits) / total;
        const double avg_union = union_sum / total;
        t.row({std::to_string(window),
               metrics::Table::num(100.0 * actual, 1) + "%",
               metrics::Table::num(100.0 * avg_union / n_layers, 1) + "%",
               metrics::Table::num(avg_union, 1)});
    }
    t.print();
    std::printf("\nPaper (N=5): actual ~80%% vs theoretical ~31.8%%, "
                "union ~10.2 layers —\nthe gap IS the context "
                "similarity the online scheduler exploits.\n");
    return 0;
}
