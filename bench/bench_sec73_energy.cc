/**
 * @file
 * §7.3 hardware evaluation: (1) average GPU power of dense vs SpecEE
 * decoding on A100/MT-Bench (paper: 201 W -> 182 W, ~1.57x energy
 * efficiency); (2) the predictor's power/latency profile on A100 vs
 * the PC GPU (paper: similar latency, ~142 W vs ~85 W).
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main()
{
    auto gen = benchGen(2, 32);
    auto dense = runOn("llama2-7b", EngineConfig::huggingFace(),
                       hw::HardwareSpec::a100(), "MT-Bench", gen);
    auto ee = runOn("llama2-7b",
                    EngineConfig::huggingFace().withSpecEE(),
                    hw::HardwareSpec::a100(), "MT-Bench", gen);

    metrics::Table t("Section 7.3.1: energy efficiency, Llama2-7B @ A100");
    t.header({"engine", "avg power (W)", "paper (W)", "J/token",
              "energy efficiency"});
    t.row({"Dense (HF)", metrics::Table::num(dense.stats.avg_power_w, 1),
           "201", metrics::Table::num(dense.stats.energy_per_token_j, 3),
           "1.00x"});
    const double eff = dense.stats.energy_per_token_j /
                       ee.stats.energy_per_token_j;
    t.row({"SpecEE", metrics::Table::num(ee.stats.avg_power_w, 1), "182",
           metrics::Table::num(ee.stats.energy_per_token_j, 3),
           mult(eff) + " (paper 1.57x)"});
    t.print();

    // §7.3.2: predictor power on A100 vs the PC GPU.
    const auto a100 = hw::HardwareSpec::a100();
    const auto pc = hw::HardwareSpec::pc4060();
    metrics::Table t2("Section 7.3.2: predictor kernel profile");
    t2.header({"platform", "power (W)", "paper (W)"});
    t2.row({"A100",
            metrics::Table::num(
                a100.power_w[static_cast<int>(hw::OpClass::Predictor)],
                0),
            "~142"});
    t2.row({"RTX 4060 Laptop",
            metrics::Table::num(
                pc.power_w[static_cast<int>(hw::OpClass::Predictor)], 0),
            "~85"});
    t2.print();
    std::printf("\nThe predictor is memory/launch-bound and leaves the "
                "big GPU's compute idle —\nthe basis for the paper's "
                "big-little core suggestion (§7.3.2).\n");
    return 0;
}
