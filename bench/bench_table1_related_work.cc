/**
 * @file
 * Table 1 made quantitative: the related-work comparison on memory,
 * prediction weight, training cost and end-to-end latency for the
 * early-exit family — AdaInfer (full-vocab SVM), RAEE (retrieval
 * database) and SpecEE — measured on the simulated Llama2-7B @ A100.
 * (MoD and D-LLM are skip-layer methods that require retraining the
 * LLM itself; they have no inference-time predictor to measure and
 * are listed for completeness.)
 */

#include "bench_common.hh"
#include "hw/cost_model.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main()
{
    auto &pipe = pipeline("llama2-7b");
    auto gen = benchGen(2, 24);
    const auto spec = hw::HardwareSpec::a100();

    auto hf = runOn("llama2-7b", EngineConfig::huggingFace(), spec,
                    "MT-Bench", gen);
    auto ada = runOn("llama2-7b", EngineConfig::adaInfer(), spec,
                     "MT-Bench", gen);
    auto raee = runOn("llama2-7b", EngineConfig::raeeBaseline(), spec,
                      "MT-Bench", gen);
    auto ee = runOn("llama2-7b",
                    EngineConfig::huggingFace().withSpecEE(), spec,
                    "MT-Bench", gen);

    auto pred_share = [](const engines::RunStats &st) {
        const auto &log = st.oplog;
        return 100.0 *
               (log.totals(hw::OpClass::Predictor).time_s +
                log.totals(hw::OpClass::LmHeadSliced).time_s) /
               log.grand().time_s;
    };

    // Predictor asset memory at true scale.
    const double ada_mem_mb = 31 * 4.0 * 4.0 / 1e6; // 31 SVMs, 3+1 fp32
    EngineConfig rcfg = EngineConfig::raeeBaseline();
    const double raee_mem_gb =
        rcfg.raee_db_entries * 4096.0 * 2.0 / 1e9;
    const double ee_mem_kb =
        static_cast<double>(pipe.predictors().paramsPerPredictor()) *
        pipe.predictors().nExitLayers() * 2.0 / 1024.0;

    metrics::Table t("Table 1 (quantified): skip-layer / early-exit "
                     "related work, Llama2-7B @ A100");
    t.header({"method", "predictor memory", "prediction share",
              "training cost", "avg layers", "speedup vs HF",
              "paper verdict"});
    t.row({"AdaInfer", metrics::Table::num(ada_mem_mb, 3) + " MB (SVMs)",
           metrics::Table::num(pred_share(ada.stats) +
                                   100.0 * ada.stats.oplog
                                       .totals(hw::OpClass::LmHeadFull)
                                       .time_s /
                                   ada.stats.oplog.grand().time_s,
                               1) +
               "% (incl. full head)",
           "SVM fit (minutes)",
           metrics::Table::num(ada.stats.avg_forward_layers, 1),
           mult(speedup(ada.stats, hf.stats)),
           "Low mem, Heavy pred, High latency"});
    t.row({"RAEE", metrics::Table::num(raee_mem_gb, 1) + " GB (database)",
           metrics::Table::num(pred_share(raee.stats), 1) + "% (retrieval)",
           "none (database build)",
           metrics::Table::num(raee.stats.avg_forward_layers, 1),
           mult(speedup(raee.stats, hf.stats)),
           "High mem, Heavy pred, High latency"});
    t.row({"MoD / D-LLM", "0 (router in model)", "-",
           "LLM retraining (GPU-days)", "-", "-",
           "Low latency but High training"});
    t.row({"SpecEE", metrics::Table::num(ee_mem_kb, 0) + " KB (MLPs)",
           metrics::Table::num(pred_share(ee.stats), 1) + "%",
           "~minutes (Fig. 18)",
           metrics::Table::num(ee.stats.avg_forward_layers, 1),
           mult(speedup(ee.stats, hf.stats)),
           "Low mem, Light pred, Low training, Low latency"});
    t.print();
    return 0;
}
