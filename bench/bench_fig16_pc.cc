/**
 * @file
 * Figure 16: PC scenario — Llama2-7B on the Lenovo PC (RTX 4060
 * Laptop 8GB + i7-13650HX) against llama.cpp and PowerInfer, each
 * with and without SpecEE, over the 6 PC datasets. Paper geomeans:
 * 1.25x vs llama.cpp and 1.15x vs PowerInfer.
 */

#include "bench_common.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

int
main()
{
    const std::vector<std::string> datasets = {
        "Alpaca", "GSM8K", "HumanEval", "MT-Bench", "QA", "SUM"};
    const auto pc = hw::HardwareSpec::pc4060();
    auto gen = benchGen(2, 16);

    for (auto [base, paper_geo] :
         {std::pair{EngineConfig::llamaCpp(), 1.25},
          std::pair{EngineConfig::powerInfer(), 1.15}}) {
        metrics::Table t("Figure 16: Llama2-7B @ Lenovo PC vs " +
                         base.name);
        t.header({"dataset", base.name + " tok/s", "+SpecEE tok/s",
                  "speedup"});
        std::vector<double> speedups;
        for (const auto &ds : datasets) {
            auto b = runOn("llama2-7b", base, pc, ds, gen);
            auto ee = runOn("llama2-7b", base.withSpecEE(), pc, ds, gen);
            const double s = benchutil::speedup(ee.stats, b.stats);
            speedups.push_back(s);
            t.row({ds, metrics::Table::num(b.stats.tokens_per_s, 2),
                   metrics::Table::num(ee.stats.tokens_per_s, 2),
                   mult(s)});
        }
        t.row({"Geo.Mean", "-", "-", mult(metrics::geomean(speedups))});
        t.print();
        std::printf("paper geomean: %.2fx; measured: %.2fx\n", paper_geo,
                    metrics::geomean(speedups));
    }
    return 0;
}
