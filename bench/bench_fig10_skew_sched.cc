/**
 * @file
 * Figure 10: (a)(c) the skewed exit-probability distribution over
 * layers for Llama2-7B and Vicuna-7B; (b) average forward layers
 * with K fixed randomly-placed predictors (up to ~3.1 extra layers);
 * (d) end-to-end speedup with fixed predictor counts vs the two-level
 * dynamic scheduling (best speedup with only ~10.2 active layers).
 */

#include <algorithm>

#include "bench_common.hh"
#include "metrics/stats.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;

namespace {

void
skewPanel(const char *model)
{
    auto &pipe = pipeline(model);
    auto ee = runOn(model, EngineConfig::huggingFace().withSpecEE(false),
                    hw::HardwareSpec::a100(), "MT-Bench",
                    benchGen(3, 40));
    auto probs = metrics::normalize(ee.stats.exit_histogram);

    std::printf("\n=== Figure 10 skew: exit probability per layer, %s "
                "===\n", model);
    std::printf("(avg probability 1/%d = %.1f%%; paper: ~50%% of layers "
                "below it)\n",
                pipe.modelConfig().n_layers - 1,
                100.0 / (pipe.modelConfig().n_layers - 1));
    int below = 0;
    const double avg = 1.0 / probs.size();
    for (size_t l = 0; l < probs.size(); ++l) {
        const int bars = static_cast<int>(probs[l] * 200);
        std::printf("layer %2zu %6.2f%% %s\n", l, 100.0 * probs[l],
                    std::string(static_cast<size_t>(bars), '#').c_str());
        below += probs[l] < avg ? 1 : 0;
    }
    double bottom_mass = 0.0;
    {
        auto sorted = probs;
        std::sort(sorted.begin(), sorted.end());
        for (size_t i = 0; i < sorted.size() / 2; ++i)
            bottom_mass += sorted[i];
    }
    std::printf("layers below average: %d/%zu (paper ~50%%); bottom-half "
                "mass %.1f%% (paper <20%%)\n",
                below, probs.size(), 100.0 * bottom_mass);
}

} // namespace

int
main()
{
    skewPanel("llama2-7b");
    skewPanel("vicuna-7b");

    // (b)+(d): fixed predictor counts vs dynamic scheduling.
    auto &pipe = pipeline("llama2-7b");
    const int n_exit = pipe.modelConfig().n_layers - 1;
    auto gen = benchGen(2, 32);
    auto hf = runOn("llama2-7b", EngineConfig::huggingFace(),
                    hw::HardwareSpec::a100(), "MT-Bench", gen);

    metrics::Table t("Figure 10(b)/(d): fixed predictors vs dynamic");
    t.header({"predictors", "placement", "avg fwd layers",
              "speedup vs HF"});
    Rng rng(77);
    double worst_fixed_layers = 0.0;
    for (int k : {8, 10, 12, 16, 24, 32}) {
        EngineConfig cfg = EngineConfig::huggingFace().withSpecEE(false);
        std::vector<int> layers;
        for (int l = 0; l < n_exit; ++l)
            layers.push_back(l);
        rng.shuffle(layers);
        layers.resize(static_cast<size_t>(std::min(k, n_exit)));
        cfg.fixed_predictor_layers = layers;
        auto r = runOn("llama2-7b", cfg, hw::HardwareSpec::a100(),
                       "MT-Bench", gen);
        worst_fixed_layers =
            std::max(worst_fixed_layers, r.stats.avg_forward_layers);
        t.row({std::to_string(std::min(k, n_exit)), "random fixed",
               metrics::Table::num(r.stats.avg_forward_layers, 2),
               mult(speedup(r.stats, hf.stats))});
    }
    auto dyn = runOn("llama2-7b", EngineConfig::huggingFace().withSpecEE(),
                     hw::HardwareSpec::a100(), "MT-Bench", gen);
    t.row({metrics::Table::num(dyn.stats.avg_active_predictors, 1),
           "dynamic (ours, paper ~10.2)",
           metrics::Table::num(dyn.stats.avg_forward_layers, 2),
           mult(speedup(dyn.stats, hf.stats))});
    t.print();

    auto all_preds =
        runOn("llama2-7b", EngineConfig::huggingFace().withSpecEE(false),
              hw::HardwareSpec::a100(), "MT-Bench", gen);
    std::printf("\nRandom fixed placement costs up to %.1f extra layers "
                "vs all-predictors (paper ~3.1);\nthe dynamic two-level "
                "scheduler achieves the best speedup with ~%.1f active "
                "predictors (paper ~10.2).\n",
                worst_fixed_layers - all_preds.stats.avg_forward_layers,
                dyn.stats.avg_active_predictors);
    return 0;
}
