/**
 * @file
 * Figure 17: GPU memory usage vs generated tokens for Llama2-7B and
 * Llama2-13B, HuggingFace vs SpecEE. The SpecEE curve sits ~0.9 GB
 * (7B) / ~1.4 GB (13B) above HF — the draft model — while the
 * predictors add only ~416 KB (§7.4.2).
 */

#include "bench_common.hh"
#include "hw/memory_tracker.hh"

using namespace specee;
using namespace specee::benchutil;

namespace {

void
panel(const char *model, double paper_dlm_gb)
{
    auto cfg = model::ModelConfig::byName(model);
    // Predictor bank: 12->512->1 MLP per exitable layer.
    const size_t pred_params = 12 * 512 + 512 + 512 + 1;
    hw::MemoryTracker hf(cfg, false, false, 0, 0);
    hw::MemoryTracker ee(cfg, false, true, cfg.n_layers - 1,
                         pred_params);

    metrics::Table t(std::string("Figure 17: GPU memory vs generated "
                                 "tokens, ") +
                     model);
    t.header({"generated tokens", "HuggingFace (GiB)", "SpecEE (GiB)",
              "delta (GiB)"});
    for (int tokens : {0, 400, 800, 1600, 2400, 3200}) {
        const double a = hw::MemoryTracker::toGiB(hf.totalBytes(tokens));
        const double b = hw::MemoryTracker::toGiB(ee.totalBytes(tokens));
        t.row({std::to_string(tokens), metrics::Table::num(a, 2),
               metrics::Table::num(b, 2),
               metrics::Table::num(b - a, 2)});
    }
    t.print();
    std::printf("draft model: paper ~%.1f GB, modeled %.2f GB; "
                "predictors: paper ~416 KB, modeled %.0f KB\n",
                paper_dlm_gb, ee.draftModelBytes() / 1e9,
                ee.predictorBytes() / 1024.0);
}

} // namespace

int
main()
{
    panel("llama2-7b", 0.9);
    panel("llama2-13b", 1.4);
    return 0;
}
