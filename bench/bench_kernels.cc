/**
 * @file
 * Kernel micro-benchmarks (google-benchmark): the functional-kernel
 * costs behind the paper's claims — full vs sliced LM head (Fig. 2b),
 * grouped hyper-token GEMV (Fig. 13), Q4 vs fp32 GEMV (AWQ), the
 * predictor MLP, and the sparse FFN (PowerInfer).
 */

#include <benchmark/benchmark.h>

#include "core/predictor.hh"
#include "model/ffn.hh"
#include "tensor/kernels.hh"
#include "model/lm_head.hh"
#include "model/weights.hh"
#include "tensor/quant.hh"
#include "util/rng.hh"

using namespace specee;

namespace {

model::ModelConfig
simCfg()
{
    return model::ModelConfig::llama2_7b();
}

tensor::Vec
randomVec(int n, uint64_t seed)
{
    tensor::Vec v(static_cast<size_t>(n));
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

struct HeadFixture
{
    model::ModelConfig cfg = simCfg();
    model::Weights w{cfg, false};
    model::LmHead head{w.embedding(), w.rmsFinal()};
    tensor::Vec hidden = randomVec(cfg.sim.hidden, 1);
};

HeadFixture &
headFixture()
{
    static HeadFixture f;
    return f;
}

} // namespace

static void
BM_LmHeadFull(benchmark::State &state)
{
    auto &f = headFixture();
    tensor::Vec logits(static_cast<size_t>(f.cfg.sim.vocab));
    for (auto _ : state) {
        f.head.full(f.hidden, logits);
        benchmark::DoNotOptimize(logits.data());
    }
    state.SetItemsProcessed(state.iterations() * f.cfg.sim.vocab);
}
BENCHMARK(BM_LmHeadFull);

static void
BM_LmHeadSliced(benchmark::State &state)
{
    auto &f = headFixture();
    const std::vector<int> spec = {17, 290, 1034, 4000};
    tensor::Vec logits(spec.size());
    for (auto _ : state) {
        f.head.sliced(f.hidden, spec, logits);
        benchmark::DoNotOptimize(logits.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(spec.size()));
}
BENCHMARK(BM_LmHeadSliced);

static void
BM_LmHeadGrouped(benchmark::State &state)
{
    auto &f = headFixture();
    const int n_paths = static_cast<int>(state.range(0));
    std::vector<tensor::Vec> hiddens_storage;
    std::vector<tensor::CSpan> hiddens;
    std::vector<std::vector<int>> groups;
    for (int p = 0; p < n_paths; ++p) {
        hiddens_storage.push_back(
            randomVec(f.cfg.sim.hidden, 100 + static_cast<uint64_t>(p)));
        groups.push_back({p, p + 10, p + 20, p + 30});
    }
    for (auto &h : hiddens_storage)
        hiddens.push_back(h);
    std::vector<tensor::Vec> out;
    for (auto _ : state) {
        f.head.grouped(hiddens, groups, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LmHeadGrouped)->Arg(2)->Arg(4)->Arg(8);

static void
BM_GemvFp32(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    tensor::Matrix w(static_cast<size_t>(n), static_cast<size_t>(n));
    Rng rng(2);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    auto x = randomVec(n, 3);
    tensor::Vec y(static_cast<size_t>(n));
    for (auto _ : state) {
        tensor::gemv(w, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * w.byteSize());
}
BENCHMARK(BM_GemvFp32)->Arg(192)->Arg(512);

static void
BM_GemvQ4(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    tensor::Matrix w(static_cast<size_t>(n), static_cast<size_t>(n));
    Rng rng(4);
    for (size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.normal());
    auto q = tensor::Q4Matrix::quantize(w);
    auto x = randomVec(n, 5);
    tensor::Vec y(static_cast<size_t>(n));
    for (auto _ : state) {
        q.gemv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<long>(q.byteSize()));
}
BENCHMARK(BM_GemvQ4)->Arg(192)->Arg(512);

static void
BM_PredictorMlp(benchmark::State &state)
{
    const int hidden = static_cast<int>(state.range(0));
    core::ExitPredictor bank(1, 12, hidden, 2, 6);
    tensor::Vec f(12, 0.25f);
    for (auto _ : state)
        benchmark::DoNotOptimize(bank.score(0, f));
}
BENCHMARK(BM_PredictorMlp)->Arg(64)->Arg(512)->Arg(1024);

static void
BM_FfnDense(benchmark::State &state)
{
    auto cfg = simCfg();
    model::Weights w(cfg, false);
    model::Ffn ffn(cfg);
    auto x = randomVec(cfg.sim.hidden, 7);
    tensor::Vec out(static_cast<size_t>(cfg.sim.hidden));
    for (auto _ : state) {
        ffn.forward(w.layer(0), x, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FfnDense);

static void
BM_FfnSparse(benchmark::State &state)
{
    auto cfg = simCfg();
    model::Weights w(cfg, false);
    model::Ffn ffn(cfg);
    auto x = randomVec(cfg.sim.hidden, 8);
    tensor::Vec out(static_cast<size_t>(cfg.sim.hidden));
    const float frac = static_cast<float>(state.range(0)) / 100.0f;
    for (auto _ : state) {
        ffn.forwardSparse(w.layer(0), x, frac, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FfnSparse)->Arg(10)->Arg(30);

BENCHMARK_MAIN();
