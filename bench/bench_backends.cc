/**
 * @file
 * Weight-backend sweep: fp32 vs q8 vs q4 serving throughput and
 * energy under bench_serving's request mix (chat/sum/QA, Poisson
 * arrivals) on one A100 node.
 *
 * Quantization compounds with continuous batching the same way
 * SpecEE does: the batch-amortized shared read is the weight stream,
 * and a compressed backend shrinks exactly that stream, so the gain
 * survives (and grows with) batching. The harness asserts the
 * quantized-serving acceptance bar: q8 >= 1.3x fp32 fleet tokens/s
 * at max_batch >= 4.
 *
 *   $ ./bench_backends [model]     (default llama2-7b)
 */

#include "bench_common.hh"
#include "serve/server.hh"
#include "tensor/simd.hh"

using namespace specee;
using namespace specee::benchutil;
using engines::EngineConfig;
using tensor::WeightBackend;

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "llama2-7b";
    auto &pipe = pipeline(model);
    const auto spec = hw::HardwareSpec::a100();

    const WeightBackend backends[] = {WeightBackend::Fp32,
                                      WeightBackend::Q8,
                                      WeightBackend::Q4};
    const int batches[] = {1, 4, 8};

    // bench_serving's request mix, but closed-loop (every request
    // queued at t = 0): a backend sweep must be service-limited, or
    // every backend saturates at the offered-load ceiling
    // (rate * gen_len tok/s) and the amortized weight stream never
    // becomes the bottleneck regardless of how much it shrinks.
    serve::StreamOptions so;
    so.n_requests = 12;
    so.gen_len = 16;
    so.rate_rps = 0.0;
    so.seed = 0xba5e;
    const auto stream = serve::synthesizeStream(so);

    metrics::Table t("Weight-backend sweep: " + model + " @ " +
                     spec.name + " (12 queued requests, " +
                     "chat/sum/QA mix, simd=" +
                     std::string(tensor::simd::levelName(
                         tensor::simd::activeLevel())) +
                     ")");
    t.header({"backend", "max_batch", "tok/s", "vs fp32", "J/tok",
              "p50 lat (s)", "p99 lat (s)"});

    // fleet tokens/s per (backend, batch); fp32 column is the base.
    double base_tps[3] = {0.0, 0.0, 0.0};
    bool meets_bar = true;
    double q8_speedup_b4 = 0.0;
    for (const WeightBackend b : backends) {
        for (size_t bi = 0; bi < 3; ++bi) {
            serve::ServerOptions sopts;
            sopts.engine =
                EngineConfig::huggingFace().withWeightBackend(b);
            sopts.spec = spec;
            sopts.workers = 2;
            sopts.sched.max_batch = batches[bi];

            serve::Server server(pipe, sopts);
            server.submit(stream);
            const auto rep = server.drain();

            if (b == WeightBackend::Fp32)
                base_tps[bi] = rep.fleet.tokens_per_s;
            const double vs = rep.fleet.tokens_per_s / base_tps[bi];
            if (b == WeightBackend::Q8 && batches[bi] >= 4) {
                if (batches[bi] == 4)
                    q8_speedup_b4 = vs;
                meets_bar = meets_bar && vs >= 1.3;
            }
            t.row({tensor::weightBackendName(b),
                   metrics::Table::num(batches[bi], 0),
                   metrics::Table::num(rep.fleet.tokens_per_s, 1),
                   mult(vs),
                   metrics::Table::num(rep.fleet.energy_per_token_j, 3),
                   metrics::Table::num(rep.fleet.p50_latency_s, 2),
                   metrics::Table::num(rep.fleet.p99_latency_s, 2)});
        }
    }
    t.print();

    std::printf("\nq8 vs fp32 at max_batch=4: %s — acceptance bar "
                "(>= 1.30x at max_batch >= 4): %s\n",
                mult(q8_speedup_b4).c_str(),
                meets_bar ? "MET" : "MISSED");
    std::printf("The decode batch waits on one shared weight read per "
                "iteration; a quantized\nbackend shrinks that exact "
                "stream, so compression and batching multiply.\n");
    return meets_bar ? 0 : 1;
}
