/**
 * @file
 * Dataset container tests: add/split/shuffle/head/append semantics.
 */

#include <gtest/gtest.h>

#include "nn/dataset.hh"

using namespace specee;
using namespace specee::nn;

namespace {

Dataset
sequential(int n)
{
    Dataset d(2);
    for (int i = 0; i < n; ++i) {
        std::vector<float> f = {static_cast<float>(i),
                                static_cast<float>(-i)};
        d.add(f, i % 2 == 0 ? 1.0f : 0.0f);
    }
    return d;
}

} // namespace

TEST(Dataset, AddAndAccess)
{
    auto d = sequential(5);
    EXPECT_EQ(d.size(), 5u);
    EXPECT_EQ(d.dim(), 2u);
    EXPECT_FLOAT_EQ(d.features(3)[0], 3.0f);
    EXPECT_FLOAT_EQ(d.features(3)[1], -3.0f);
    EXPECT_FLOAT_EQ(d.label(3), 0.0f);
}

TEST(Dataset, DimInferredFromFirstAdd)
{
    Dataset d;
    std::vector<float> f = {1.0f, 2.0f, 3.0f};
    d.add(f, 1.0f);
    EXPECT_EQ(d.dim(), 3u);
}

TEST(Dataset, PositiveRate)
{
    auto d = sequential(10);
    EXPECT_NEAR(d.positiveRate(), 0.5, 1e-9);
    Dataset empty(2);
    EXPECT_EQ(empty.positiveRate(), 0.0);
}

TEST(Dataset, SplitPreservesOrderAndCounts)
{
    auto d = sequential(10);
    auto [train, test] = d.split(0.7);
    EXPECT_EQ(train.size(), 7u);
    EXPECT_EQ(test.size(), 3u);
    EXPECT_FLOAT_EQ(train.features(0)[0], 0.0f);
    EXPECT_FLOAT_EQ(test.features(0)[0], 7.0f);
}

TEST(Dataset, ShuffleKeepsPairsAligned)
{
    auto d = sequential(50);
    Rng rng(3);
    d.shuffle(rng);
    // Feature[0] encodes the original index; label parity must follow.
    for (size_t i = 0; i < d.size(); ++i) {
        int orig = static_cast<int>(d.features(i)[0]);
        EXPECT_FLOAT_EQ(d.label(i), orig % 2 == 0 ? 1.0f : 0.0f);
        EXPECT_FLOAT_EQ(d.features(i)[1], -static_cast<float>(orig));
    }
}

TEST(Dataset, ShuffleActuallyPermutes)
{
    auto d = sequential(50);
    Rng rng(4);
    d.shuffle(rng);
    int moved = 0;
    for (size_t i = 0; i < d.size(); ++i)
        moved += static_cast<int>(d.features(i)[0]) !=
                         static_cast<int>(i)
                     ? 1
                     : 0;
    EXPECT_GT(moved, 30);
}

TEST(Dataset, HeadTruncates)
{
    auto d = sequential(10);
    auto h = d.head(4);
    EXPECT_EQ(h.size(), 4u);
    EXPECT_FLOAT_EQ(h.features(3)[0], 3.0f);
    EXPECT_EQ(d.head(99).size(), 10u);
}

TEST(Dataset, AppendConcatenates)
{
    auto a = sequential(3);
    auto b = sequential(2);
    a.append(b);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_FLOAT_EQ(a.features(4)[0], 1.0f);
}

TEST(Dataset, AppendDimMismatchDies)
{
    auto a = sequential(2);
    Dataset b(3);
    std::vector<float> f = {1, 2, 3};
    b.add(f, 0.0f);
    EXPECT_DEATH(a.append(b), "dim mismatch");
}
