/**
 * @file
 * Logging / assertion helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

using namespace specee;

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Logging, StrfmtLongStrings)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(specee_panic("boom %d", 42), "boom 42");
}

TEST(Logging, FatalExits)
{
    EXPECT_EXIT(specee_fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(Logging, AssertPassesAndFails)
{
    specee_assert(1 + 1 == 2, "never shown");
    EXPECT_DEATH(specee_assert(false, "ctx %d", 9), "ctx 9");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    specee_warn("a warning %d", 1);
    specee_inform("an info %d", 2);
    SUCCEED();
}
