/**
 * @file
 * Chunked-prefill subsystem tests: planner budget arithmetic,
 * bit-identity of the disabled path with Engine::runOne, functional
 * bit-identity of chunked outputs, mid-prefill edge cases (deadline
 * drop while chunks remain, KV-budget preemption of a partially
 * prefilled session with bit-identical recompute), determinism
 * across worker counts, the two-tier priority policy (queue order,
 * admission, preemption victims), streaming backpressure
 * cancellation, and the interactive-TTFT win of chunking over
 * monolithic priced prefill.
 */

#include <gtest/gtest.h>

#include <map>

#include "metrics/stats.hh"
#include "serve/prefill_planner.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

namespace {

serve::ServerOptions
baseOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

/** Short interactive + long-prompt batch mix, all arriving at t=0. */
std::vector<serve::Request>
mixedStream(int n_short, int n_long, int long_prompt, int gen_len)
{
    serve::StreamOptions shorts;
    shorts.n_requests = n_short;
    shorts.gen_len = gen_len;
    shorts.seed = 0xbeef;
    serve::StreamOptions longs;
    longs.n_requests = n_long;
    longs.gen_len = gen_len;
    longs.prompt_len = long_prompt;
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = 0xf00d;
    return serve::mergeStreams(serve::synthesizeStream(shorts),
                               serve::synthesizeStream(longs));
}

serve::ServeReport
serveStream(const serve::ServerOptions &opts,
            const std::vector<serve::Request> &stream)
{
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(stream);
    return server.drain();
}

} // namespace

TEST(PrefillPlanner, DisabledGrantsNothing)
{
    serve::PrefillPlanner p({.chunk_tokens = 0});
    EXPECT_FALSE(p.enabled());
    EXPECT_EQ(p.chunksFor(4096), 0);
    const auto g = p.plan({512, 0, 64}, {0, 0, 0}, 1);
    EXPECT_EQ(g, (std::vector<int>{0, 0, 0}));
}

TEST(PrefillPlanner, BudgetSharedFifoAfterDecodeReservations)
{
    serve::PrefillPlanner p(
        {.chunk_tokens = 128, .max_tokens_per_iteration = 200});
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.chunksFor(4096), 32);
    EXPECT_EQ(p.chunksFor(1), 1);
    // 2 decode peers reserve 2 tokens; 198 left: first session gets a
    // full chunk, the second the remainder, the third nothing.
    const auto g = p.plan({512, 0, 512, 512}, {0, 0, 0, 0}, 2);
    EXPECT_EQ(g, (std::vector<int>{128, 0, 70, 0}));
    // Pending below the chunk size is granted exactly.
    EXPECT_EQ(p.plan({50, 0}, {0, 0}, 0), (std::vector<int>{50, 0}));
}

TEST(PrefillPlanner, InteractivePromptsJumpBatchBacklogs)
{
    // Tier-aware granting: a short interactive prompt admitted
    // behind long batch-tier backlogs is served first, FIFO within
    // each tier.
    serve::PrefillPlanner p(
        {.chunk_tokens = 128, .max_tokens_per_iteration = 200});
    const auto g = p.plan({4096, 4096, 64, 64}, {1, 1, 0, 0}, 0);
    EXPECT_EQ(g, (std::vector<int>{72, 0, 64, 64}));
}

TEST(PrefillPlanner, ProgressGuaranteedWithoutDecodePeers)
{
    // Budget smaller than the decode batch would otherwise starve an
    // all-prefill iteration forever.
    serve::PrefillPlanner p(
        {.chunk_tokens = 64, .max_tokens_per_iteration = 1});
    const auto g = p.plan({512, 512}, {0, 0}, 0);
    EXPECT_EQ(g, (std::vector<int>{1, 0}));
    // With decode peers saturating the budget, prefill idles (decode
    // still progresses, so the iteration is productive).
    EXPECT_EQ(p.plan({512}, {0}, 4), (std::vector<int>{0}));
}

TEST(ChunkedPrefill, DisabledStaysBitIdenticalToRunOne)
{
    // chunk_tokens = 0 (the "chunk size = infinity" legacy mode):
    // prompts ingest atomically and free, so per-request results —
    // emissions AND modeled costs — are bit-identical to
    // Engine::runOne, exactly as before this subsystem existed.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = mixedStream(3, 3, 2048, 8);

    auto opts = baseOpts(2, 4);
    opts.sched.prefill.chunk_tokens = 0;
    auto rep = serveStream(opts, stream);

    auto engine = pipe.makeEngine(opts.engine, opts.spec);
    ASSERT_EQ(rep.outcomes.size(), stream.size());
    for (const auto &o : rep.outcomes) {
        workload::GenOptions gen = o.request.gen;
        gen.n_instances = 1;
        const auto w = pipe.makeWorkload(o.request.dataset, gen,
                                         engine->config().q4Calibrated());
        auto ref = engine->runOne(w, 0, o.request.seed);
        ASSERT_EQ(o.result.emissions.size(), 1u);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.stats.modeled_time_s, ref.stats.modeled_time_s);
        EXPECT_EQ(o.result.stats.oplog.grand().energy_j,
                  ref.stats.oplog.grand().energy_j);
        EXPECT_EQ(o.prefill_chunks, 0);
        EXPECT_DOUBLE_EQ(o.prefill_s, 0.0);
    }
    EXPECT_EQ(rep.fleet.prefill_chunks, 0);
    EXPECT_EQ(rep.fleet.prefill_tokens, 0);
}

TEST(ChunkedPrefill, ChunkedOutputsBitIdenticalTokensCostedPrompts)
{
    // With chunking on, every request's tokens and exit decisions are
    // unchanged (prefill is functionally the same KV append, just
    // sliced), while its modeled cost now includes the priced prompt.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = mixedStream(3, 3, 2048, 8);

    auto opts = baseOpts(2, 8);
    opts.sched.prefill.chunk_tokens = 256;
    opts.sched.prefill.max_tokens_per_iteration = 512;
    auto rep = serveStream(opts, stream);

    auto engine = pipe.makeEngine(opts.engine, opts.spec);
    ASSERT_EQ(rep.outcomes.size(), stream.size());
    long expect_chunks = 0, expect_tokens = 0;
    for (const auto &o : rep.outcomes) {
        workload::GenOptions gen = o.request.gen;
        gen.n_instances = 1;
        const auto w = pipe.makeWorkload(o.request.dataset, gen,
                                         engine->config().q4Calibrated());
        auto ref = engine->runOne(w, 0, o.request.seed);
        ASSERT_EQ(o.result.emissions.size(), 1u);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.emissions[0].exit_layers,
                  ref.emissions[0].exit_layers);
        // The priced prompt makes the request strictly more expensive
        // than its prefill-free reference...
        EXPECT_GT(o.result.stats.modeled_time_s, ref.stats.modeled_time_s);
        // ...with the delta exactly the two prefill op classes.
        const auto &log = o.result.stats.oplog;
        const double prefill_t =
            log.totals(hw::OpClass::PrefillWeights).time_s +
            log.totals(hw::OpClass::PrefillCompute).time_s;
        EXPECT_GT(prefill_t, 0.0);
        EXPECT_NEAR(o.result.stats.modeled_time_s - prefill_t,
                    ref.stats.modeled_time_s,
                    1e-9 * ref.stats.modeled_time_s);
        // The iteration budget may split a nominal chunk across
        // iterations, so the granted-iteration count can exceed the
        // unconstrained ceil(prompt / chunk) floor.
        EXPECT_GE(o.prefill_chunks,
                  (w.true_prompt_len + 255) / 256);
        EXPECT_GT(o.prefill_s, 0.0);
        expect_chunks += o.prefill_chunks;
        expect_tokens += w.true_prompt_len;
        // Chunked ingestion delays the first token past the atomic
        // case but TTFT still precedes completion.
        EXPECT_GT(o.ttft_s, o.prefill_s);
        EXPECT_LT(o.ttft_s, o.latency_s);
    }
    EXPECT_EQ(rep.fleet.prefill_chunks, expect_chunks);
    EXPECT_EQ(rep.fleet.prefill_tokens, expect_tokens);
    EXPECT_GT(rep.fleet.mean_prefill_s, 0.0);
}

TEST(ChunkedPrefill, DeterministicAcrossWorkerCounts)
{
    auto stream = mixedStream(4, 4, 2048, 8);

    auto opts1 = baseOpts(1, 4);
    opts1.sched.prefill.chunk_tokens = 256;
    opts1.sched.prefill.max_tokens_per_iteration = 512;
    opts1.sched.kv_budget_blocks = 220;
    auto r1 = serveStream(opts1, stream);

    auto opts3 = baseOpts(3, 4);
    opts3.sched.prefill = opts1.sched.prefill;
    opts3.sched.kv_budget_blocks = opts1.sched.kv_budget_blocks;
    auto r3 = serveStream(opts3, stream);

    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_EQ(r1.fleet.prefill_chunks, r3.fleet.prefill_chunks);
    EXPECT_EQ(r1.fleet.prefill_tokens, r3.fleet.prefill_tokens);
    EXPECT_EQ(r1.fleet.preemptions, r3.fleet.preemptions);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].result.emissions[0].tokens,
                  r3.outcomes[i].result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].ttft_s, r3.outcomes[i].ttft_s);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].prefill_s,
                         r3.outcomes[i].prefill_s);
    }
}

TEST(ChunkedPrefill, DeadlineDropsMidPrefill)
{
    // A long prompt whose deadline expires while chunks remain is
    // dropped at that iteration boundary — the mid-prefill state is
    // deadline-droppable like any decode state.
    serve::StreamOptions so;
    so.n_requests = 2;
    so.gen_len = 8;
    so.prompt_len = 4096;
    so.seed = 0xd00d;
    auto stream = serve::synthesizeStream(so);
    stream[1].deadline_s = 1e-6; // expires after the first boundary

    auto opts = baseOpts(1, 2);
    opts.sched.prefill.chunk_tokens = 256;
    long dropped_tokens = 0;
    opts.on_token = [&](const serve::TokenEvent &ev) {
        if (ev.request_id == stream[1].id)
            ++dropped_tokens;
        return true;
    };
    auto rep = serveStream(opts, stream);

    EXPECT_EQ(rep.fleet.dropped, 1);
    const auto &o = rep.outcomes[1];
    EXPECT_TRUE(o.dropped);
    EXPECT_TRUE(o.result.emissions.empty());
    EXPECT_EQ(dropped_tokens, 0);
    // It was admitted and ingested at least one chunk, but not all.
    EXPECT_GT(o.prefill_chunks, 0);
    EXPECT_LT(o.prefill_chunks, (4096 + 255) / 256);
    // The survivor is unaffected.
    EXPECT_FALSE(rep.outcomes[0].dropped);
    EXPECT_EQ(rep.outcomes[0].result.emissions[0].tokens.size(), 8u);
}

TEST(ChunkedPrefill, KvPreemptionMidPrefillRecomputesBitIdentical)
{
    // Squeeze the KV budget so partially prefilled sessions are
    // evicted; recompute must re-ingest their chunks and reproduce
    // exactly the tokens of an unconstrained run.
    auto stream = mixedStream(3, 3, 2048, 16);

    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    auto unbounded = serveStream(opts, stream);
    EXPECT_EQ(unbounded.fleet.preemptions, 0);

    auto pressed_opts = opts;
    pressed_opts.sched.kv_budget_blocks = 150;
    auto pressed = serveStream(pressed_opts, stream);

    EXPECT_GT(pressed.fleet.preemptions, 0);
    EXPECT_LE(pressed.fleet.peak_kv_blocks, 150);
    // Discarded prefill work was re-done: more chunks executed fleet-
    // wide than the per-request (kept-run) census accounts for.
    long kept_chunks = 0;
    for (const auto &o : pressed.outcomes)
        kept_chunks += o.prefill_chunks;
    EXPECT_GT(pressed.fleet.prefill_chunks, kept_chunks);
    ASSERT_EQ(pressed.outcomes.size(), unbounded.outcomes.size());
    for (size_t i = 0; i < pressed.outcomes.size(); ++i) {
        EXPECT_FALSE(pressed.outcomes[i].dropped);
        EXPECT_EQ(pressed.outcomes[i].result.emissions[0].tokens,
                  unbounded.outcomes[i].result.emissions[0].tokens);
    }
    // The re-ingested prompts cost fleet time.
    EXPECT_GT(pressed.fleet.makespan_s, unbounded.fleet.makespan_s);
}

TEST(ChunkedPrefill, InteractiveTtftBeatsMonolithicPrefill)
{
    // The acceptance tradeoff: under the same offered load, chunking
    // long batch prompts at least halves the interactive tier's p50
    // TTFT relative to monolithic (single-chunk) priced prefill,
    // because a short request no longer waits out a multi-thousand-
    // token prompt occupying the iteration.
    auto stream = mixedStream(4, 4, 4096, 8);

    auto mono = baseOpts(2, 8);
    mono.sched.prefill.chunk_tokens = 1 << 20; // one chunk per prompt
    auto rm = serveStream(mono, stream);

    auto chunked = baseOpts(2, 8);
    chunked.sched.prefill.chunk_tokens = 256;
    chunked.sched.prefill.max_tokens_per_iteration = 512;
    auto rc = serveStream(chunked, stream);

    const auto p50InteractiveTtft = [](const serve::ServeReport &rep) {
        std::vector<double> v;
        for (const auto &o : rep.outcomes)
            if (o.request.priority == serve::Priority::Interactive)
                v.push_back(o.ttft_s);
        return metrics::percentile(v, 50.0);
    };
    const double mono_ttft = p50InteractiveTtft(rm);
    const double chunk_ttft = p50InteractiveTtft(rc);
    EXPECT_GT(mono_ttft, 0.0);
    EXPECT_LE(chunk_ttft * 2.0, mono_ttft);

    // Same functional outputs either way.
    ASSERT_EQ(rm.outcomes.size(), rc.outcomes.size());
    for (size_t i = 0; i < rm.outcomes.size(); ++i) {
        EXPECT_EQ(rm.outcomes[i].result.emissions[0].tokens,
                  rc.outcomes[i].result.emissions[0].tokens);
    }
}

TEST(Priority, RequestQueuePopsInteractiveFirstFifoWithinTier)
{
    serve::RequestQueue q;
    const auto push = [&](uint64_t id, serve::Priority p) {
        serve::Request r;
        r.id = id;
        r.priority = p;
        ASSERT_TRUE(q.push(std::move(r)));
    };
    push(0, serve::Priority::Batch);
    push(1, serve::Priority::Interactive);
    push(2, serve::Priority::Batch);
    push(3, serve::Priority::Interactive);

    serve::Request out;
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 1u); // oldest interactive
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 3u);
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 0u); // then batch, FIFO
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 2u);
}

TEST(Priority, BatchTierPreemptedBeforeInteractive)
{
    // Under KV pressure with both tiers active, victims come from the
    // batch tier first even when an interactive session is younger.
    auto stream = mixedStream(3, 3, 64, 16);

    auto opts = baseOpts(2, 4);
    opts.sched.kv_budget_blocks = 40;
    auto rep = serveStream(opts, stream);

    EXPECT_GT(rep.fleet.preemptions, 0);
    long batch_preempts = 0, interactive_preempts = 0;
    for (const auto &o : rep.outcomes) {
        if (o.request.priority == serve::Priority::Batch)
            batch_preempts += o.preemptions;
        else
            interactive_preempts += o.preemptions;
    }
    // Victims come from the batch tier first; interactive sessions
    // are only evicted once no batch peer shares their slots, so the
    // eviction burden skews to the batch tier. The oldest interactive
    // request is never preempted at all (progress guarantee).
    EXPECT_GT(batch_preempts, 0);
    EXPECT_GE(batch_preempts, interactive_preempts);
    EXPECT_EQ(rep.outcomes[0].preemptions, 0);
    // Everything still completes with full outputs.
    for (const auto &o : rep.outcomes) {
        EXPECT_FALSE(o.dropped);
        EXPECT_EQ(o.result.emissions[0].tokens.size(), 16u);
    }
}

TEST(Backpressure, ConsumerCancelStopsStreamAtBoundary)
{
    serve::StreamOptions so;
    so.n_requests = 4;
    so.gen_len = 12;
    so.seed = 0xcafe;
    auto stream = serve::synthesizeStream(so);

    auto opts = baseOpts(2, 4);
    std::map<uint64_t, int> delivered;
    opts.on_token = [&](const serve::TokenEvent &ev) {
        ++delivered[ev.request_id];
        // Cancel request 1 after its third token.
        return !(ev.request_id == 1 && delivered[1] >= 3);
    };
    auto rep = serveStream(opts, stream);

    EXPECT_EQ(rep.fleet.cancelled, 1);
    EXPECT_EQ(rep.fleet.dropped, 0);
    const auto &o = rep.outcomes[1];
    EXPECT_TRUE(o.cancelled);
    EXPECT_FALSE(o.dropped);
    // Delivery stopped at the cancellation boundary, well short of
    // the scripted 12 tokens.
    EXPECT_EQ(delivered[1], 3);
    EXPECT_LT(o.finish_s, rep.outcomes[0].finish_s);
    // The other requests stream to completion.
    for (uint64_t id : {0ull, 2ull, 3ull})
        EXPECT_EQ(delivered[id], 12);
    // Delivered tokens (including the cancelled request's) are fleet
    // goodput.
    EXPECT_EQ(rep.fleet.tokens, 3l * 12 + 3);
}
