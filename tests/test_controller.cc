/**
 * @file
 * AdaptiveController: Thompson-sampling unit behavior (posterior
 * arithmetic, frozen knobs, idle windows as non-evidence, trajectory
 * determinism, convergence onto the rewarding arm) and end-to-end
 * scheduler pins — a disabled controller is bit-inert on the modeled
 * run, an enabled one produces a worker-count-invariant knob
 * trajectory whose knob_change trace decisions reconcile with it.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "serve/controller.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;
using serve::AdaptiveController;
using serve::ControllerKnobs;
using serve::ControllerOptions;
using KnobId = serve::AdaptiveController::KnobId;

namespace {

obs::TimelineWindow
window(long tokens, long slo_tokens, long iterations)
{
    obs::TimelineWindow w;
    w.tokens = tokens;
    w.slo_tokens = slo_tokens;
    w.iterations = iterations;
    return w;
}

/** One arm per knob: deterministic knob values, pure posterior math. */
ControllerOptions
singleArmOpts()
{
    ControllerOptions o;
    o.enabled = true;
    o.epoch_s = 0.25;
    o.chunk_arms = {64};
    o.watermark_arms = {0.5};
    o.admit_arms = {2};
    o.interactive_exit_arms = {0.4f};
    o.batch_exit_arms = {0.6f};
    return o;
}

ControllerKnobs
chunkedDefaults()
{
    ControllerKnobs d;
    d.chunk_tokens = 128;
    d.kv_watermark = 1.0;
    d.max_admissions_per_iteration = 0;
    d.interactive_exit_threshold = 0.5f;
    d.batch_exit_threshold = 0.5f;
    return d;
}

} // namespace

TEST(Controller, DisabledByDefault)
{
    AdaptiveController c;
    EXPECT_FALSE(c.enabled());
    // The default-constructed knob set is the scheduler's "no
    // override" sentinel.
    EXPECT_EQ(c.knobs().chunk_tokens, 0);
    EXPECT_DOUBLE_EQ(c.knobs().kv_watermark, 1.0);
    EXPECT_EQ(c.stats().epochs, 0);
}

TEST(Controller, EmptyArmSetsFreezeEveryKnob)
{
    ControllerOptions o;
    o.enabled = true;
    AdaptiveController c(o, chunkedDefaults());
    ASSERT_TRUE(c.enabled());
    for (int k = 0; k < AdaptiveController::kNumKnobs; ++k)
        EXPECT_FALSE(c.knobActive(static_cast<KnobId>(k))) << k;
    // Deciding with no active knobs never moves anything: the knobs
    // hold the scheduler's static values forever.
    EXPECT_EQ(c.decide(0.25, window(10, 5, 2)), 0);
    EXPECT_EQ(c.knobs().chunk_tokens, 128);
    EXPECT_DOUBLE_EQ(c.knobs().kv_watermark, 1.0);
    EXPECT_EQ(c.stats().epochs, 1);
    EXPECT_EQ(c.stats().knob_changes, 0);
}

TEST(Controller, ChunkKnobFreezesOnUnchunkedSchedulers)
{
    ControllerOptions o = singleArmOpts();
    ControllerKnobs unchunked = chunkedDefaults();
    unchunked.chunk_tokens = 0; // scheduler runs without chunking
    AdaptiveController c(o, unchunked);
    EXPECT_FALSE(c.knobActive(KnobId::Chunk));
    EXPECT_TRUE(c.knobActive(KnobId::Watermark));
    // Chunking on/off is structural: the knob must never turn it on.
    c.decide(0.25, window(10, 10, 2));
    EXPECT_EQ(c.knobs().chunk_tokens, 0);

    AdaptiveController chunked(o, chunkedDefaults());
    EXPECT_TRUE(chunked.knobActive(KnobId::Chunk));
    chunked.decide(0.25, window(10, 10, 2));
    EXPECT_EQ(chunked.knobs().chunk_tokens, 64);
}

TEST(Controller, PosteriorsFollowWindowRewards)
{
    AdaptiveController c(singleArmOpts(), chunkedDefaults());

    // Epoch 0: no arm was live during the first window (nothing was
    // sampled yet), so the uniform Beta(1, 1) prior must survive it
    // untouched no matter what the window says.
    c.decide(0.25, window(10, 5, 3));
    for (int k = 0; k < AdaptiveController::kNumKnobs; ++k)
        EXPECT_DOUBLE_EQ(
            c.posteriorMean(static_cast<KnobId>(k), 0), 0.5)
            << k;
    // Single-arm knobs moved onto their only arm.
    EXPECT_EQ(c.knobs().chunk_tokens, 64);
    EXPECT_DOUBLE_EQ(c.knobs().kv_watermark, 0.5);
    EXPECT_EQ(c.knobs().max_admissions_per_iteration, 2);
    EXPECT_FLOAT_EQ(c.knobs().interactive_exit_threshold, 0.4f);
    EXPECT_FLOAT_EQ(c.knobs().batch_exit_threshold, 0.6f);

    // Epoch 1: perfect attainment -> alpha += 1 on every live arm.
    c.decide(0.5, window(8, 8, 2));
    for (int k = 0; k < AdaptiveController::kNumKnobs; ++k)
        EXPECT_DOUBLE_EQ(
            c.posteriorMean(static_cast<KnobId>(k), 0), 2.0 / 3.0)
            << k;
    EXPECT_DOUBLE_EQ(c.stats().trajectory[1].reward, 1.0);
    EXPECT_TRUE(c.stats().trajectory[1].reward_valid);

    // Epoch 2: fractional attainment folds in fractionally:
    // Beta(2, 1) + (r = 0.25) -> Beta(2.25, 1.75), mean 0.5625.
    c.decide(0.75, window(4, 1, 2));
    for (int k = 0; k < AdaptiveController::kNumKnobs; ++k)
        EXPECT_DOUBLE_EQ(
            c.posteriorMean(static_cast<KnobId>(k), 0), 0.5625)
            << k;
}

TEST(Controller, StarvationIsZeroRewardButIdleIsNoEvidence)
{
    AdaptiveController c(singleArmOpts(), chunkedDefaults());
    c.decide(0.25, window(10, 10, 2)); // arms go live

    // Iterations without tokens: the fleet ran and delivered
    // nothing — reward 0 is real evidence against the live arms.
    c.decide(0.5, window(0, 0, 4));
    EXPECT_TRUE(c.stats().trajectory[1].reward_valid);
    EXPECT_DOUBLE_EQ(c.stats().trajectory[1].reward, 0.0);
    EXPECT_DOUBLE_EQ(c.posteriorMean(KnobId::Watermark, 0), 1.0 / 3.0);

    // A fully idle window (no iterations at all) is not evidence:
    // posteriors must hold still.
    c.decide(0.75, window(0, 0, 0));
    EXPECT_FALSE(c.stats().trajectory[2].reward_valid);
    EXPECT_DOUBLE_EQ(c.posteriorMean(KnobId::Watermark, 0), 1.0 / 3.0);
}

TEST(Controller, TrajectoryIsDeterministicForFixedInputs)
{
    ControllerOptions o;
    o.enabled = true;
    o.seed = 7;
    o.epoch_s = 0.1;
    o.chunk_arms = {32, 64, 256};
    o.watermark_arms = {0.5, 0.7, 0.9};
    o.admit_arms = {0, 1, 4};
    o.interactive_exit_arms = {0.3f, 0.7f};
    o.batch_exit_arms = {0.3f, 0.7f};

    AdaptiveController a(o, chunkedDefaults());
    AdaptiveController b(o, chunkedDefaults());
    for (int i = 0; i < 40; ++i) {
        // A deterministic but varied window stream.
        const long toks = (i * 7) % 13;
        const auto w = window(toks, toks - (i % 3 == 0 ? toks / 2 : 0),
                              1 + i % 4);
        a.decide(0.1 * (i + 1), w);
        b.decide(0.1 * (i + 1), w);
    }
    const auto &ta = a.stats().trajectory;
    const auto &tb = b.stats().trajectory;
    ASSERT_EQ(ta.size(), 40u);
    ASSERT_EQ(tb.size(), 40u);
    for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].knobs.chunk_tokens, tb[i].knobs.chunk_tokens)
            << i;
        EXPECT_DOUBLE_EQ(ta[i].knobs.kv_watermark,
                         tb[i].knobs.kv_watermark)
            << i;
        EXPECT_EQ(ta[i].knobs.max_admissions_per_iteration,
                  tb[i].knobs.max_admissions_per_iteration)
            << i;
        EXPECT_FLOAT_EQ(ta[i].knobs.interactive_exit_threshold,
                        tb[i].knobs.interactive_exit_threshold)
            << i;
        EXPECT_FLOAT_EQ(ta[i].knobs.batch_exit_threshold,
                        tb[i].knobs.batch_exit_threshold)
            << i;
        EXPECT_EQ(ta[i].changed, tb[i].changed) << i;
        EXPECT_DOUBLE_EQ(ta[i].reward, tb[i].reward) << i;
    }
    EXPECT_EQ(a.stats().knob_changes, b.stats().knob_changes);
}

TEST(Controller, EveryChosenValueIsAMemberOfItsArmSet)
{
    ControllerOptions o;
    o.enabled = true;
    o.seed = 3;
    o.epoch_s = 0.1;
    o.chunk_arms = {32, 128};
    o.watermark_arms = {0.6, 0.8};
    o.admit_arms = {0, 2};
    o.interactive_exit_arms = {0.3f, 0.5f};
    o.batch_exit_arms = {0.5f, 0.7f};
    AdaptiveController c(o, chunkedDefaults());

    long changed_sum = 0;
    for (int i = 0; i < 60; ++i) {
        const long toks = 5 + (i % 9);
        changed_sum +=
            c.decide(0.1 * (i + 1), window(toks, toks / 2, 2));
    }
    const auto &st = c.stats();
    EXPECT_EQ(st.epochs, 60);
    ASSERT_EQ(st.trajectory.size(), 60u);
    EXPECT_EQ(st.knob_changes, changed_sum);
    for (const auto &ep : st.trajectory) {
        EXPECT_TRUE(ep.knobs.chunk_tokens == 32 ||
                    ep.knobs.chunk_tokens == 128);
        EXPECT_TRUE(ep.knobs.kv_watermark == 0.6 ||
                    ep.knobs.kv_watermark == 0.8);
        EXPECT_TRUE(ep.knobs.max_admissions_per_iteration == 0 ||
                    ep.knobs.max_admissions_per_iteration == 2);
        EXPECT_TRUE(ep.knobs.interactive_exit_threshold == 0.3f ||
                    ep.knobs.interactive_exit_threshold == 0.5f);
        EXPECT_TRUE(ep.knobs.batch_exit_threshold == 0.5f ||
                    ep.knobs.batch_exit_threshold == 0.7f);
    }
    for (int k = 0; k < AdaptiveController::kNumKnobs; ++k)
        for (size_t arm = 0; arm < 2; ++arm) {
            const double m =
                c.posteriorMean(static_cast<KnobId>(k), arm);
            EXPECT_GT(m, 0.0);
            EXPECT_LT(m, 1.0);
        }
}

TEST(Controller, ThompsonConvergesOnTheRewardingArm)
{
    ControllerOptions o;
    o.enabled = true;
    o.seed = 11;
    o.epoch_s = 0.1;
    o.watermark_arms = {0.5, 0.9}; // arm 1 is the rewarding one
    AdaptiveController c(o, chunkedDefaults());

    c.decide(0.1, window(0, 0, 0)); // go live (no evidence yet)
    int good_late = 0;
    const int kEpochs = 300, kTail = 100;
    for (int i = 1; i <= kEpochs; ++i) {
        // The environment pays off only when the live watermark is
        // 0.9: the bandit sees attainment 1.0 under arm 1, 0.0 under
        // arm 0.
        const bool good = c.knobs().kv_watermark == 0.9;
        if (good && i > kEpochs - kTail)
            ++good_late;
        c.decide(0.1 * (i + 1), window(100, good ? 100 : 0, 10));
    }
    EXPECT_GT(c.posteriorMean(KnobId::Watermark, 1),
              c.posteriorMean(KnobId::Watermark, 0));
    EXPECT_GT(c.posteriorMean(KnobId::Watermark, 1), 0.8);
    // Late in the run the rewarding arm dominates the choices.
    EXPECT_GT(good_late, kTail / 2);
}

// -------------------------------------------- end-to-end scheduler

namespace {

serve::ServerOptions
ctlServerOpts(int workers)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = 4;
    o.sched.prefill.chunk_tokens = 128;
    o.sched.kv_budget_blocks = 150;
    o.sched.preempt_mode = serve::PreemptMode::Swap;
    o.sched.slo.interactive.ttft_s = 0.75;
    o.sched.slo.interactive.itl_s = 0.2;
    o.sched.slo.batch.deadline_s = 20.0;
    return o;
}

ControllerOptions
ctlOpts()
{
    ControllerOptions c;
    c.enabled = true;
    c.seed = 5;
    c.epoch_s = 0.1;
    c.chunk_arms = {64, 128, 256};
    c.watermark_arms = {0.6, 0.9};
    c.admit_arms = {0, 2};
    c.interactive_exit_arms = {0.3f, 0.6f};
    c.batch_exit_arms = {0.3f, 0.6f};
    return c;
}

std::vector<serve::Request>
ctlStream()
{
    serve::StreamOptions shorts;
    shorts.n_requests = 5;
    shorts.gen_len = 10;
    shorts.rate_rps = 6.0;
    shorts.seed = 0xc71;
    serve::StreamOptions longs;
    longs.n_requests = 3;
    longs.gen_len = 12;
    longs.prompt_len = 2048;
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = 0xc72;
    return serve::mergeStreams(serve::synthesizeStream(shorts),
                               serve::synthesizeStream(longs));
}

} // namespace

TEST(ControllerEndToEnd, DisabledControllerIsBitInert)
{
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    const auto stream = ctlStream();

    serve::Server plain(pipe, ctlServerOpts(3));
    plain.submit(stream);
    const auto r_plain = plain.drain();

    // Same scheduler with the controller CONFIGURED but disabled —
    // arm sets present, epoch set, master switch off — plus the
    // admission cap at its inert zero. PR 9's modeled run must
    // survive bit-identically.
    auto off = ctlServerOpts(3);
    off.sched.controller = ctlOpts();
    off.sched.controller.enabled = false;
    off.sched.max_admissions_per_iteration = 0;
    serve::Server s_off(pipe, off);
    s_off.submit(stream);
    const auto r_off = s_off.drain();

    EXPECT_DOUBLE_EQ(r_plain.fleet.makespan_s, r_off.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r_plain.fleet.energy_j, r_off.fleet.energy_j);
    EXPECT_EQ(r_plain.fleet.tokens, r_off.fleet.tokens);
    EXPECT_EQ(r_plain.fleet.iterations, r_off.fleet.iterations);
    EXPECT_EQ(r_plain.fleet.preemptions, r_off.fleet.preemptions);
    EXPECT_DOUBLE_EQ(r_plain.fleet.p99_ttft_s, r_off.fleet.p99_ttft_s);
    EXPECT_DOUBLE_EQ(r_plain.fleet.p99_itl_s, r_off.fleet.p99_itl_s);
    ASSERT_EQ(r_plain.outcomes.size(), r_off.outcomes.size());
    for (size_t i = 0; i < r_plain.outcomes.size(); ++i) {
        const auto &a = r_plain.outcomes[i];
        const auto &b = r_off.outcomes[i];
        ASSERT_EQ(a.result.emissions.size(), 1u);
        EXPECT_EQ(a.result.emissions[0].tokens,
                  b.result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
    }
    EXPECT_EQ(r_off.fleet.controller.epochs, 0);
    EXPECT_TRUE(r_off.fleet.controller.trajectory.empty());
}

TEST(ControllerEndToEnd, TrajectoryIsWorkerCountInvariant)
{
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    const auto stream = ctlStream();

    serve::ServeReport reps[2];
    const int workers[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        auto o = ctlServerOpts(workers[i]);
        o.sched.controller = ctlOpts();
        serve::Server s(pipe, o);
        s.submit(stream);
        reps[i] = s.drain();
    }
    const auto &a = reps[0].fleet.controller;
    const auto &b = reps[1].fleet.controller;
    ASSERT_GT(a.epochs, 0);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.knob_changes, b.knob_changes);
    for (size_t i = 0; i < a.trajectory.size(); ++i) {
        const auto &x = a.trajectory[i];
        const auto &y = b.trajectory[i];
        EXPECT_DOUBLE_EQ(x.t, y.t) << i;
        EXPECT_DOUBLE_EQ(x.reward, y.reward) << i;
        EXPECT_EQ(x.reward_valid, y.reward_valid) << i;
        EXPECT_EQ(x.changed, y.changed) << i;
        EXPECT_EQ(x.knobs.chunk_tokens, y.knobs.chunk_tokens) << i;
        EXPECT_DOUBLE_EQ(x.knobs.kv_watermark, y.knobs.kv_watermark)
            << i;
        EXPECT_EQ(x.knobs.max_admissions_per_iteration,
                  y.knobs.max_admissions_per_iteration)
            << i;
        EXPECT_FLOAT_EQ(x.knobs.interactive_exit_threshold,
                        y.knobs.interactive_exit_threshold)
            << i;
        EXPECT_FLOAT_EQ(x.knobs.batch_exit_threshold,
                        y.knobs.batch_exit_threshold)
            << i;
    }
    // The adaptive run itself is deterministic across worker counts.
    EXPECT_DOUBLE_EQ(reps[0].fleet.makespan_s, reps[1].fleet.makespan_s);
    EXPECT_EQ(reps[0].fleet.tokens, reps[1].fleet.tokens);
    ASSERT_EQ(reps[0].outcomes.size(), reps[1].outcomes.size());
    for (size_t i = 0; i < reps[0].outcomes.size(); ++i) {
        const auto &x = reps[0].outcomes[i];
        const auto &y = reps[1].outcomes[i];
        ASSERT_EQ(x.result.emissions.size(), 1u);
        EXPECT_EQ(x.result.emissions[0].tokens,
                  y.result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(x.finish_s, y.finish_s);
    }
}

TEST(ControllerEndToEnd, KnobChangeTraceDecisionsReconcile)
{
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    auto o = ctlServerOpts(2);
    o.sched.controller = ctlOpts();
    o.sched.trace.enabled = true;
    serve::Server s(pipe, o);
    s.submit(ctlStream());
    const auto rep = s.drain();

    const auto &ctl = rep.fleet.controller;
    ASSERT_GT(ctl.epochs, 0);
    long moved_epochs = 0, changed_sum = 0;
    for (const auto &ep : ctl.trajectory) {
        if (ep.changed > 0)
            ++moved_epochs;
        changed_sum += ep.changed;
    }
    EXPECT_EQ(changed_sum, ctl.knob_changes);

    long events = 0, event_changed = 0;
    for (const auto &ev : rep.fleet.trace) {
        if (ev.kind == obs::TraceKind::Decision &&
            ev.decision == obs::TraceDecision::KnobChange) {
            ++events;
            event_changed += ev.tokens;
        }
    }
    // One instant per epoch that moved >= 1 knob, carrying the count.
    EXPECT_EQ(events, moved_epochs);
    EXPECT_EQ(event_changed, changed_sum);
}

TEST(ControllerEndToEnd, StaticAdmissionCapPreservesEmissions)
{
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    // A burst: every request arrives at t = 0.
    serve::StreamOptions burst;
    burst.n_requests = 6;
    burst.gen_len = 8;
    burst.seed = 0xadc;
    const auto stream = serve::synthesizeStream(burst);

    serve::ServeReport reps[2];
    const int caps[2] = {0, 1};
    for (int i = 0; i < 2; ++i) {
        auto o = ctlServerOpts(2);
        o.sched.max_admissions_per_iteration = caps[i];
        serve::Server s(pipe, o);
        s.submit(stream);
        reps[i] = s.drain();
    }
    // The cap spreads the burst over boundaries: scheduling changes,
    // per-request emissions don't (seeded decode is schedule-blind).
    EXPECT_EQ(reps[0].fleet.tokens, reps[1].fleet.tokens);
    EXPECT_EQ(reps[1].fleet.dropped, 0);
    ASSERT_EQ(reps[0].outcomes.size(), reps[1].outcomes.size());
    for (size_t i = 0; i < reps[0].outcomes.size(); ++i) {
        ASSERT_EQ(reps[1].outcomes[i].result.emissions.size(), 1u);
        EXPECT_EQ(reps[0].outcomes[i].result.emissions[0].tokens,
                  reps[1].outcomes[i].result.emissions[0].tokens);
    }
}
