/**
 * @file
 * RAEE baseline tests: index semantics, kNN retrieval, probability
 * superposition, and engine integration.
 */

#include <gtest/gtest.h>

#include "core/raee.hh"
#include "test_util.hh"
#include "workload/evaluator.hh"

using namespace specee;
using namespace specee::core;

namespace {

tensor::Vec
unitVec(int dim, int hot)
{
    tensor::Vec v(static_cast<size_t>(dim), 0.0f);
    v[static_cast<size_t>(hot)] = 1.0f;
    return v;
}

} // namespace

TEST(Raee, EmptyIndexFallsBackToLastLayer)
{
    RaeeIndex idx(8, 32);
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.predictExitLayer(unitVec(8, 0)), 31);
}

TEST(Raee, ExactNeighbourWins)
{
    RaeeIndex idx(8, 32);
    idx.add(unitVec(8, 0), 5);
    idx.add(unitVec(8, 1), 20);
    idx.add(unitVec(8, 2), 27);
    EXPECT_EQ(idx.predictExitLayer(unitVec(8, 0), 1), 5);
    EXPECT_EQ(idx.predictExitLayer(unitVec(8, 1), 1), 20);
}

TEST(Raee, SuperpositionWeighsSimilarNeighbours)
{
    RaeeIndex idx(4, 32);
    // Two close entries voting 10, one orthogonal voting 25.
    tensor::Vec a = {1.0f, 0.1f, 0.0f, 0.0f};
    tensor::Vec b = {1.0f, -0.1f, 0.0f, 0.0f};
    idx.add(a, 10);
    idx.add(b, 10);
    idx.add(unitVec(4, 2), 25);
    tensor::Vec q = {1.0f, 0.0f, 0.0f, 0.0f};
    EXPECT_EQ(idx.predictExitLayer(q, 3), 10);
}

TEST(Raee, NormalizationMakesScaleIrrelevant)
{
    RaeeIndex idx(4, 16);
    tensor::Vec big = {10.0f, 0.0f, 0.0f, 0.0f};
    idx.add(big, 7);
    tensor::Vec small_q = {0.001f, 0.0f, 0.0f, 0.0f};
    EXPECT_EQ(idx.predictExitLayer(small_q, 1), 7);
}

TEST(Raee, ByteSizeGrowsLinearly)
{
    RaeeIndex idx(16, 8);
    const size_t before = idx.byteSize();
    idx.add(unitVec(16, 0), 3);
    idx.add(unitVec(16, 1), 4);
    EXPECT_EQ(idx.byteSize() - before,
              2 * (16 * sizeof(float) + sizeof(int)));
}

TEST(Raee, RejectsBadInputs)
{
    RaeeIndex idx(8, 16);
    EXPECT_DEATH(idx.add(unitVec(4, 0), 3), "dim mismatch");
    EXPECT_DEATH(idx.add(unitVec(8, 0), 16), "out of range");
}

TEST(Raee, EngineIntegrationExitsEarly)
{
    auto &pipe = testutil::tinyPipeline();
    auto w = pipe.makeWorkload("MT-Bench", testutil::smallGen(3, 24));
    auto hf = pipe.makeEngine(engines::EngineConfig::huggingFace(),
                              hw::HardwareSpec::a100())
                  ->run(w, 8);
    auto raee = pipe.makeEngine(engines::EngineConfig::raeeBaseline(),
                                hw::HardwareSpec::a100())
                    ->run(w, 8);
    EXPECT_LT(raee.stats.avg_forward_layers,
              hf.stats.avg_forward_layers);
    EXPECT_GT(raee.stats.exits, 0);
    // No verification: retrieval mispredictions emit wrong tokens.
    auto ev = workload::Evaluator::evaluate(w, raee.emissions,
                                            pipe.corpus());
    EXPECT_LT(ev.token_match_rate, 1.0);
    EXPECT_GT(ev.token_match_rate, 0.4);
}

TEST(Raee, HeavierPredictionThanSpecEE)
{
    auto &pipe = testutil::tinyPipeline();
    auto w = pipe.makeWorkload("MT-Bench", testutil::smallGen(3, 24));
    auto raee = pipe.makeEngine(engines::EngineConfig::raeeBaseline(),
                                hw::HardwareSpec::a100())
                    ->run(w, 8);
    auto ee = pipe.makeEngine(
                      engines::EngineConfig::huggingFace().withSpecEE(),
                      hw::HardwareSpec::a100())
                  ->run(w, 8);
    // Table 1: RAEE's retrieval (database scan) outweighs SpecEE's
    // sliced-head + MLP prediction.
    const double raee_pred =
        raee.stats.oplog.totals(hw::OpClass::Predictor).time_s;
    const double ee_pred =
        ee.stats.oplog.totals(hw::OpClass::Predictor).time_s +
        ee.stats.oplog.totals(hw::OpClass::LmHeadSliced).time_s;
    EXPECT_GT(raee_pred, ee_pred);
}
