/**
 * @file
 * Shared helpers for the test suite: a lazily-built tiny pipeline so
 * expensive training happens once per test binary.
 */

#ifndef SPECEE_TESTS_TEST_UTIL_HH
#define SPECEE_TESTS_TEST_UTIL_HH

#include "engines/pipeline.hh"

namespace specee::testutil {

/** Options for the shared tiny pipeline (8 layers, vocab 512). */
inline engines::PipelineOptions
tinyPipelineOptions()
{
    engines::PipelineOptions o;
    o.model = "tiny";
    o.train_instances = 6;
    o.train_gen_len = 36;
    o.mlp_hidden = 64;
    o.train_cfg.epochs = 25;
    o.seed = 42;
    return o;
}

/** Shared tiny pipeline, built on first use. */
inline const engines::Pipeline &
tinyPipeline()
{
    static const engines::Pipeline pipe(tinyPipelineOptions());
    return pipe;
}

/** Standard small workload options for engine tests. */
inline workload::GenOptions
smallGen(int instances = 4, int gen_len = 32, uint64_t seed = 99)
{
    workload::GenOptions g;
    g.n_instances = instances;
    g.gen_len = gen_len;
    g.seed = seed;
    return g;
}

} // namespace specee::testutil

#endif // SPECEE_TESTS_TEST_UTIL_HH
