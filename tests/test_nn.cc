/**
 * @file
 * Neural-net substrate tests: Linear backward via numeric gradient
 * check, MLP training on synthetic tasks, SVM, parameter counting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hh"
#include "nn/svm.hh"
#include "tensor/kernels.hh"

using namespace specee;
using namespace specee::nn;

namespace {

/** Linearly separable 2-D dataset. */
Dataset
separable(int n, uint64_t seed)
{
    Dataset d(2);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        float x = static_cast<float>(rng.uniform(-1.0, 1.0));
        float y = static_cast<float>(rng.uniform(-1.0, 1.0));
        float label = (x + y > 0.1f) ? 1.0f : 0.0f;
        std::vector<float> f = {x, y};
        d.add(f, label);
    }
    return d;
}

/** XOR-style dataset: not linearly separable. */
Dataset
xorData(int n, uint64_t seed)
{
    Dataset d(2);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        float x = static_cast<float>(rng.uniform(-1.0, 1.0));
        float y = static_cast<float>(rng.uniform(-1.0, 1.0));
        float label = (x * y > 0.0f) ? 1.0f : 0.0f;
        std::vector<float> f = {x, y};
        d.add(f, label);
    }
    return d;
}

} // namespace

TEST(Linear, ForwardIsAffine)
{
    Rng rng(1);
    Linear lin(3, 2, rng);
    lin.weights().fill(0.0f);
    lin.weights().at(0, 0) = 2.0f;
    lin.weights().at(1, 2) = -1.0f;
    lin.bias() = {0.5f, 1.0f};
    tensor::Vec x = {1.0f, 0.0f, 3.0f};
    tensor::Vec out(2);
    lin.forward(x, out);
    EXPECT_FLOAT_EQ(out[0], 2.5f);
    EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(Linear, BackwardMatchesNumericGradient)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    tensor::Vec x = {0.3f, -0.2f, 0.8f, 0.1f};
    tensor::Vec d_out = {1.0f, -0.5f, 0.25f};
    tensor::Vec d_x(4);
    lin.zeroGrad();
    lin.backward(x, d_out, d_x);

    // Numeric check of d_x: loss = d_out . f(x).
    const float eps = 1e-3f;
    for (size_t i = 0; i < x.size(); ++i) {
        tensor::Vec xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        tensor::Vec op(3), om(3);
        lin.forward(xp, op);
        lin.forward(xm, om);
        float lp = tensor::dot(op, d_out);
        float lm = tensor::dot(om, d_out);
        EXPECT_NEAR(d_x[i], (lp - lm) / (2 * eps), 1e-2f) << i;
    }
}

TEST(Mlp, RejectsBadArchitectures)
{
    EXPECT_DEATH(Mlp({5}, 1), "at least");
    EXPECT_DEATH(Mlp({5, 3}, 1), "end in 1");
}

TEST(Mlp, LearnsLinearlySeparableData)
{
    Mlp mlp({2, 16, 1}, 3);
    auto data = separable(400, 4);
    TrainConfig cfg;
    cfg.epochs = 30;
    auto stats = mlp.fit(data, cfg);
    EXPECT_GT(stats.train_accuracy, 0.95);
    EXPECT_LT(stats.final_loss, 0.35);
}

TEST(Mlp, LearnsXorWithHiddenLayer)
{
    Mlp mlp({2, 32, 1}, 5);
    auto data = xorData(600, 6);
    TrainConfig cfg;
    cfg.epochs = 60;
    cfg.lr = 3e-3;
    auto stats = mlp.fit(data, cfg);
    EXPECT_GT(stats.train_accuracy, 0.9);
}

TEST(Mlp, SingleLayerCannotLearnXor)
{
    Mlp mlp({2, 1}, 7);
    auto data = xorData(600, 8);
    TrainConfig cfg;
    cfg.epochs = 40;
    auto stats = mlp.fit(data, cfg);
    EXPECT_LT(stats.train_accuracy, 0.7);
}

TEST(Mlp, ParamAndFlopCounts)
{
    Mlp mlp({12, 512, 1}, 9);
    EXPECT_EQ(mlp.paramCount(), 12u * 512 + 512 + 512 + 1);
    EXPECT_EQ(mlp.flopsPerInference(), 2u * (12 * 512 + 512));
    EXPECT_EQ(mlp.depth(), 2u);
    EXPECT_EQ(mlp.inputDim(), 12u);
}

TEST(Mlp, PredictIsSigmoidOfLogit)
{
    Mlp mlp({3, 8, 1}, 10);
    tensor::Vec x = {0.5f, -1.0f, 2.0f};
    EXPECT_NEAR(mlp.predict(x), tensor::sigmoid(mlp.forwardLogit(x)),
                1e-6f);
}

TEST(Mlp, AccuracyOnHeldOut)
{
    Mlp mlp({2, 16, 1}, 11);
    auto data = separable(600, 12);
    auto [train, test] = data.split(0.8);
    TrainConfig cfg;
    cfg.epochs = 30;
    mlp.fit(train, cfg);
    EXPECT_GT(mlp.accuracy(test), 0.92);
}

TEST(Svm, LearnsSeparableData)
{
    LinearSvm svm(2);
    auto data = separable(400, 13);
    svm.fit(data);
    EXPECT_GT(svm.accuracy(data), 0.93);
}

TEST(Svm, FailsOnXor)
{
    LinearSvm svm(2);
    auto data = xorData(400, 14);
    svm.fit(data);
    EXPECT_LT(svm.accuracy(data), 0.72);
}

TEST(Svm, MarginSignMatchesPrediction)
{
    LinearSvm svm(2);
    auto data = separable(200, 15);
    svm.fit(data);
    tensor::Vec far_pos = {1.0f, 1.0f};
    tensor::Vec far_neg = {-1.0f, -1.0f};
    EXPECT_GT(svm.margin(far_pos), 0.0f);
    EXPECT_LT(svm.margin(far_neg), 0.0f);
}
