/**
 * @file
 * Workload generation and evaluation tests: dataset profiles, script
 * construction, accuracy calibration, perplexity scoring.
 */

#include <gtest/gtest.h>

#include "model/tokenizer.hh"
#include "oracle/profiles.hh"
#include "workload/datasets.hh"
#include "workload/evaluator.hh"

using namespace specee;
using namespace specee::workload;

namespace {

struct Fixture
{
    model::ModelConfig cfg = model::ModelConfig::tiny();
    oracle::SyntheticCorpus corpus{cfg.sim.vocab, 99};
    WorkloadGen gen{corpus};
};

} // namespace

TEST(Profiles, AllNinePresent)
{
    EXPECT_EQ(oracle::allProfiles().size(), 9u);
    EXPECT_EQ(oracle::throughputDatasets().size(), 8u);
    EXPECT_EQ(oracle::accuracyDatasets().size(), 7u);
    for (const auto &name : oracle::throughputDatasets())
        EXPECT_NO_FATAL_FAILURE(oracle::profileByName(name));
    EXPECT_DEATH(oracle::profileByName("ImageNet"), "unknown");
}

TEST(Profiles, CalibrationRowsCoverModels)
{
    for (const auto &p : oracle::allProfiles()) {
        for (const char *m : {"llama2-7b", "llama2-13b", "llama2-70b"}) {
            const auto &cal = p.calFor(m);
            EXPECT_GT(cal.avg_layers, 0.0) << p.name << " " << m;
        }
        if (p.gradedByAccuracy()) {
            EXPECT_GT(p.calFor("llama2-7b").dense_accuracy, 0.0);
        } else {
            EXPECT_GT(p.calFor("llama2-7b").dense_ppl, 0.0);
        }
    }
}

TEST(Workload, ShapesFollowOptions)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 5;
    g.gen_len = 17;
    auto w = f.gen.generate(oracle::profileByName("MT-Bench"), f.cfg, g);
    EXPECT_EQ(w.instances.size(), 5u);
    for (const auto &inst : w.instances) {
        EXPECT_EQ(inst.prompt.size(),
                  static_cast<size_t>(kSimPromptLen));
        EXPECT_EQ(inst.steps.size(), 17u);
        EXPECT_EQ(inst.answer_step, -1);
    }
    EXPECT_EQ(w.totalSteps(), 5 * 17);
    EXPECT_EQ(w.true_prompt_len,
              oracle::profileByName("MT-Bench").prompt_len);
}

TEST(Workload, GenLenCappedByProfile)
{
    Fixture f;
    GenOptions g;
    g.gen_len = 10000;
    auto w = f.gen.generate(oracle::profileByName("SST2"), f.cfg, g);
    EXPECT_EQ(static_cast<int>(w.instances[0].steps.size()),
              oracle::profileByName("SST2").gen_len);
}

TEST(Workload, ScriptsAreWellFormed)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 4;
    g.gen_len = 30;
    auto w = f.gen.generate(oracle::profileByName("SUM"), f.cfg, g);
    for (const auto &inst : w.instances) {
        for (const auto &s : inst.steps) {
            EXPECT_GE(s.target, 0);
            EXPECT_LT(s.target, f.cfg.sim.vocab);
            EXPECT_NE(s.target, s.distractor);
            EXPECT_GE(s.conv_layer, 0);
            EXPECT_LE(s.conv_layer, f.cfg.n_layers);
        }
    }
}

TEST(Workload, GradedTasksCalibrateAccuracy)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 400;
    g.gen_len = 2;
    g.accuracy_override = 70.0;
    auto w = f.gen.generate(oracle::profileByName("CommonsenseQA"),
                            f.cfg, g);
    int correct = 0;
    for (const auto &inst : w.instances) {
        ASSERT_EQ(inst.answer_step, 0);
        ASSERT_GE(inst.correct_token, 0);
        if (inst.steps[0].target == inst.correct_token)
            ++correct;
        // Answer tokens must be option tokens.
        EXPECT_GE(model::Tokenizer::optionIndex(inst.steps[0].target), 0);
    }
    EXPECT_NEAR(correct / 400.0, 0.70, 0.06);
}

TEST(Workload, QuantizedCalibrationDiffers)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 2;
    g.seed = 5;
    auto fp = f.gen.generate(oracle::profileByName("GSM8K"), f.cfg, g);
    auto q4 = f.gen.generate(oracle::profileByName("GSM8K"), f.cfg, g,
                             /*quantized_cal=*/true);
    // Same shapes; the accuracy Bernoulli differs only through the
    // calibration column, so the workloads remain comparable.
    EXPECT_EQ(fp.instances.size(), q4.instances.size());
}

TEST(Workload, ConvergenceParamsTrackCalibration)
{
    Fixture f;
    GenOptions g;
    auto p_mt = f.gen.convergenceParams(
        oracle::profileByName("MT-Bench"), f.cfg, g);
    EXPECT_EQ(p_mt.n_layers, f.cfg.n_layers);
    EXPECT_GT(p_mt.mean_layer, 0.0);
    g.mean_layers_override = 5.0;
    auto p_short = f.gen.convergenceParams(
        oracle::profileByName("MT-Bench"), f.cfg, g);
    EXPECT_LT(p_short.mean_layer, p_mt.mean_layer);
}

TEST(Evaluator, PerfectEmissionsScorePerfectly)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 6;
    g.gen_len = 12;
    g.accuracy_override = 100.0;
    auto w = f.gen.generate(oracle::profileByName("MMLU"), f.cfg, g);
    std::vector<Emission> ems;
    for (const auto &inst : w.instances) {
        Emission e;
        for (const auto &s : inst.steps) {
            e.tokens.push_back(s.target);
            e.exit_layers.push_back(f.cfg.n_layers);
        }
        ems.push_back(e);
    }
    auto r = Evaluator::evaluate(w, ems, f.corpus);
    EXPECT_DOUBLE_EQ(r.accuracy_pct, 100.0);
    EXPECT_DOUBLE_EQ(r.token_match_rate, 1.0);
    EXPECT_DOUBLE_EQ(r.avg_forward_layers, f.cfg.n_layers);
}

TEST(Evaluator, WrongAnswersLowerAccuracy)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 10;
    g.gen_len = 4;
    g.accuracy_override = 100.0;
    auto w = f.gen.generate(oracle::profileByName("SST2"), f.cfg, g);
    std::vector<Emission> ems;
    for (const auto &inst : w.instances) {
        Emission e;
        for (size_t t = 0; t < inst.steps.size(); ++t) {
            int tok = inst.steps[t].target;
            if (t == static_cast<size_t>(inst.answer_step))
                tok = inst.steps[t].distractor; // flip the answer
            e.tokens.push_back(tok);
            e.exit_layers.push_back(4);
        }
        ems.push_back(e);
    }
    auto r = Evaluator::evaluate(w, ems, f.corpus);
    EXPECT_LT(r.accuracy_pct, 100.0);
    EXPECT_LT(r.token_match_rate, 1.0);
}

TEST(Evaluator, PplRisesWithDistractorEmissions)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 8;
    g.gen_len = 24;
    auto w = f.gen.generate(oracle::profileByName("SUM"), f.cfg, g);
    std::vector<Emission> clean, noisy;
    Rng rng(4);
    for (const auto &inst : w.instances) {
        Emission c, n;
        for (size_t t = 0; t < inst.steps.size(); ++t) {
            c.tokens.push_back(inst.steps[t].target);
            c.exit_layers.push_back(8);
            // 20% of emissions replaced by the (lower-probability)
            // distractor.
            n.tokens.push_back(rng.bernoulli(0.2)
                                   ? inst.steps[t].distractor
                                   : inst.steps[t].target);
            n.exit_layers.push_back(8);
        }
        clean.push_back(c);
        noisy.push_back(n);
    }
    auto rc = Evaluator::evaluate(w, clean, f.corpus);
    auto rn = Evaluator::evaluate(w, noisy, f.corpus);
    EXPECT_GT(rc.ppl, 1.0);
    EXPECT_GT(rn.ppl, rc.ppl);
}

TEST(Evaluator, MismatchedEmissionCountDies)
{
    Fixture f;
    GenOptions g;
    g.n_instances = 2;
    auto w = f.gen.generate(oracle::profileByName("SUM"), f.cfg, g);
    std::vector<Emission> ems(1);
    EXPECT_DEATH(Evaluator::evaluate(w, ems, f.corpus), "mismatch");
}
