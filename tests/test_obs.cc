/**
 * @file
 * Observability subsystem: trace recorder units and deterministic
 * shard merging, Chrome trace-event JSON schema for every event
 * kind, timeline window bucketing at boundaries, SLO judging on
 * hand-built outcomes, and end-to-end pins on a real tiny server —
 * tracing/timeline/SLO are bit-inert on the modeled run, and the
 * merged trace is bit-identical across worker counts (the workers=3
 * runs also give TSan real parallel shard writes to check).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/slo.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

// ---------------------------------------------------------------- SLO

TEST(Slo, SpecAnyAndTierIndexing)
{
    obs::SloSpec none;
    EXPECT_FALSE(none.any());
    obs::SloSpec ttft;
    ttft.ttft_s = 0.5;
    EXPECT_TRUE(ttft.any());

    obs::TierSlo tiers;
    EXPECT_FALSE(tiers.any());
    tiers.batch.deadline_s = 10.0;
    EXPECT_TRUE(tiers.any());
    EXPECT_FALSE(tiers.tier(0).any());
    EXPECT_TRUE(tiers.tier(1).any());
}

TEST(Slo, JudgeVerdicts)
{
    obs::SloSpec spec;
    spec.ttft_s = 1.0;
    spec.itl_s = 0.1;
    spec.deadline_s = 5.0;

    // All objectives met.
    auto v = obs::judge(spec, true, 0.5, 0.05, 4.0);
    EXPECT_TRUE(v.evaluated);
    EXPECT_TRUE(v.ttft_ok);
    EXPECT_TRUE(v.itl_ok);
    EXPECT_TRUE(v.deadline_ok);
    EXPECT_TRUE(v.attained());

    // Exactly at the bound attains (<=, not <).
    v = obs::judge(spec, true, 1.0, 0.1, 5.0);
    EXPECT_TRUE(v.attained());

    // Each objective fails independently.
    v = obs::judge(spec, true, 1.5, 0.05, 4.0);
    EXPECT_FALSE(v.ttft_ok);
    EXPECT_TRUE(v.itl_ok);
    EXPECT_FALSE(v.attained());
    v = obs::judge(spec, true, 0.5, 0.2, 4.0);
    EXPECT_FALSE(v.itl_ok);
    EXPECT_FALSE(v.attained());
    v = obs::judge(spec, true, 0.5, 0.05, 6.0);
    EXPECT_FALSE(v.deadline_ok);
    EXPECT_FALSE(v.attained());

    // An unfinished request fails every configured objective, even
    // with perfect partial latencies.
    v = obs::judge(spec, false, 0.1, 0.01, 0.5);
    EXPECT_TRUE(v.evaluated);
    EXPECT_FALSE(v.attained());

    // No objectives: unevaluated, attains vacuously.
    v = obs::judge(obs::SloSpec{}, true, 100.0, 100.0, 100.0);
    EXPECT_FALSE(v.evaluated);
    EXPECT_TRUE(v.attained());

    // Partial spec: only the configured objective is judged.
    obs::SloSpec only_ttft;
    only_ttft.ttft_s = 1.0;
    v = obs::judge(only_ttft, true, 0.5, 99.0, 99.0);
    EXPECT_TRUE(v.attained());
}

// -------------------------------------------------------------- trace

TEST(Trace, DisabledRecorderStaysEmpty)
{
    obs::TraceRecorder rec(3, false);
    EXPECT_FALSE(rec.enabled());
    obs::TraceEvent ev;
    rec.control().emit(ev);
    rec.worker(0).emit(ev);
    EXPECT_TRUE(rec.merged().empty());
}

TEST(Trace, MergeIsDeterministicAcrossShardLayouts)
{
    // The same logical events land in different shards depending on
    // the worker count; the merged sequence must not care.
    const auto mk = [](double t0, int device, uint64_t seq) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceKind::Step;
        ev.t0 = t0;
        ev.t1 = t0 + 0.5;
        ev.device = device;
        ev.lane = static_cast<int>(seq);
        ev.seq = seq;
        return ev;
    };

    obs::TraceRecorder one(1, true);
    one.worker(0).emit(mk(1.0, 0, 0));
    one.worker(0).emit(mk(1.0, 0, 1));
    one.worker(0).emit(mk(1.0, 1, 0));
    one.worker(0).emit(mk(2.0, 0, 0));

    obs::TraceRecorder three(3, true);
    // Same events, scattered over shards in scrambled order.
    three.worker(2).emit(mk(2.0, 0, 0));
    three.worker(0).emit(mk(1.0, 0, 1));
    three.worker(1).emit(mk(1.0, 1, 0));
    three.worker(1).emit(mk(1.0, 0, 0));

    const auto a = one.merged();
    const auto b = three.merged();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].t0, b[i].t0);
        EXPECT_EQ(a[i].device, b[i].device);
        EXPECT_EQ(a[i].seq, b[i].seq);
    }
    // Sorted by (t0, device, ...): the t=1 events come first,
    // devices ascending, seq ascending within a device.
    EXPECT_DOUBLE_EQ(a[0].t0, 1.0);
    EXPECT_EQ(a[0].device, 0);
    EXPECT_EQ(a[0].seq, 0u);
    EXPECT_EQ(a[1].seq, 1u);
    EXPECT_EQ(a[2].device, 1);
    EXPECT_DOUBLE_EQ(a[3].t0, 2.0);
}

TEST(Trace, ChromeJsonSchemaCoversEveryKind)
{
    std::vector<obs::TraceEvent> evs;
    {
        obs::TraceEvent it;
        it.kind = obs::TraceKind::Iteration;
        it.t0 = 0.0;
        it.t1 = 0.001;
        it.batch = 3;
        it.prefilling = 1;
        it.tokens = 4;
        evs.push_back(it);

        obs::TraceEvent step;
        step.kind = obs::TraceKind::Step;
        step.t0 = 0.0;
        step.t1 = 0.0005;
        step.device = 1;
        step.lane = 2;
        step.request = 42;
        step.tokens = 1;
        step.deepest_layer = 5;
        step.stages_used = 1;
        step.op_s = {{0, 0.0003}, {3, 0.0002}};
        evs.push_back(step);

        obs::TraceEvent chunk = step;
        chunk.kind = obs::TraceKind::PrefillChunk;
        chunk.device = 0;
        chunk.lane = 0;
        evs.push_back(chunk);

        obs::TraceEvent xf;
        xf.kind = obs::TraceKind::Transfer;
        xf.t0 = 0.0002;
        xf.t1 = 0.0008;
        xf.device = 1;
        xf.channel = 0;
        xf.request = 42;
        evs.push_back(xf);

        obs::TraceEvent dec;
        dec.kind = obs::TraceKind::Decision;
        dec.t0 = dec.t1 = 0.0;
        dec.decision = obs::TraceDecision::Admit;
        dec.request = 42;
        evs.push_back(dec);

        obs::TraceEvent flow;
        flow.kind = obs::TraceKind::RequestFlow;
        flow.t0 = 0.0;
        flow.t1 = 0.001;
        flow.device = 1;
        flow.request = 42;
        evs.push_back(flow);
    }
    const std::string js =
        obs::chromeTraceJson(evs, /*n_devices=*/2,
                             /*n_prefill_devices=*/1);

    // Top-level Chrome trace shape.
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
    // Process/thread metadata: fleet + both device roles.
    EXPECT_NE(js.find("\"fleet scheduler\""), std::string::npos);
    EXPECT_NE(js.find("\"decode device 0\""), std::string::npos);
    EXPECT_NE(js.find("\"prefill device 0\""), std::string::npos);
    // One phase letter per kind: complete spans, instant, flow pair.
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"M\""), std::string::npos);
    // Named events and op-class cost args.
    EXPECT_NE(js.find("\"iteration\""), std::string::npos);
    EXPECT_NE(js.find("\"step\""), std::string::npos);
    EXPECT_NE(js.find("\"prefill_chunk\""), std::string::npos);
    EXPECT_NE(js.find("\"transfer\""), std::string::npos);
    EXPECT_NE(js.find("\"admit\""), std::string::npos);
    EXPECT_NE(js.find("\"request\""), std::string::npos);
    EXPECT_NE(js.find("\"op."), std::string::npos);
    EXPECT_NE(js.find("\"deepest_layer\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check; CI
    // additionally json.load()s a real emitted trace).
    long depth = 0;
    bool in_str = false;
    for (size_t i = 0; i < js.size(); ++i) {
        const char c = js[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

TEST(Trace, WriteChromeTraceRoundTrips)
{
    std::vector<obs::TraceEvent> evs(1);
    const std::string path = "test_obs_trace_tmp.json";
    ASSERT_TRUE(obs::writeChromeTrace(path, evs, 1, 0));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0);
    std::fclose(f);
    std::remove(path.c_str());
    // Unwritable destination reports failure instead of dying.
    EXPECT_FALSE(
        obs::writeChromeTrace("/nonexistent-dir/x.json", evs, 1, 0));
}

// ----------------------------------------------------------- timeline

TEST(Timeline, DisabledRecordsNothing)
{
    obs::Timeline tl; // default: disabled
    EXPECT_FALSE(tl.enabled());
    tl.recordIteration(0.5, 3, 1, 10, 0, 0);
    tl.recordTokens(0.5, 1, 4);
    EXPECT_TRUE(tl.finalize(1.0, nullptr).empty());
}

TEST(Timeline, BucketBoundariesAndExtension)
{
    obs::TimelineOptions opts;
    opts.window_s = 1.0;
    obs::Timeline tl(opts, /*t0=*/0.0, /*n_layers=*/4, /*n_stages=*/2);

    tl.recordIteration(0.0, 2, 1, 10, 0, 0);   // window 0
    tl.recordIteration(0.999, 4, 2, 20, 5, 0); // window 0
    tl.recordIteration(1.0, 6, 1, 30, 0, 0);   // boundary -> window 1
    tl.recordIteration(2.5, 1, 1, 5, 0, 0);    // window 2
    tl.recordExit(0.5, 3);
    tl.recordTtft(1.2, 0.4);
    tl.recordItl(1.2, 0.1);
    tl.recordItl(1.3, 0.3);
    tl.recordTokens(2.5, /*request=*/7, 4);
    // A transfer spanning windows 0 and 1 is clipped at the seam.
    tl.recordTransfer(0.75, 1.25);

    // finalize() extends to end_t: 3.2 -> 4 windows.
    const auto w = tl.finalize(3.2, nullptr);
    ASSERT_EQ(w.size(), 4u);

    EXPECT_DOUBLE_EQ(w[0].t0, 0.0);
    EXPECT_DOUBLE_EQ(w[0].t1, 1.0);
    EXPECT_EQ(w[0].iterations, 2);
    EXPECT_DOUBLE_EQ(w[0].mean_batch_occupancy, 3.0); // (2+4)/2
    // Stage occupancy: (1+2) busy of 2 iterations x 2 stages.
    EXPECT_DOUBLE_EQ(w[0].stage_occupancy, 0.75);
    EXPECT_EQ(w[0].peak_kv_blocks, 20);
    EXPECT_EQ(w[0].peak_host_kv_blocks, 5);
    ASSERT_EQ(w[0].exit_hist.size(), 5u); // layers 0..4
    EXPECT_EQ(w[0].exit_hist[3], 1);
    EXPECT_DOUBLE_EQ(w[0].transfer_busy_s, 0.25);

    EXPECT_EQ(w[1].iterations, 1); // the boundary sample
    EXPECT_EQ(w[1].ttft_count, 1);
    EXPECT_DOUBLE_EQ(w[1].p50_ttft_s, 0.4);
    EXPECT_EQ(w[1].itl_count, 2);
    EXPECT_DOUBLE_EQ(w[1].p50_itl_s, 0.2); // interpolated (0.1, 0.3)
    EXPECT_DOUBLE_EQ(w[1].transfer_busy_s, 0.25);

    EXPECT_EQ(w[2].iterations, 1);
    EXPECT_EQ(w[2].tokens, 4);
    // Null attainment callback counts every token.
    EXPECT_EQ(w[2].slo_tokens, 4);
    EXPECT_DOUBLE_EQ(w[2].goodput_tps, 4.0); // 4 tokens / 1 s window

    // The extension window is empty but spans to end_t's window.
    EXPECT_EQ(w[3].iterations, 0);
    EXPECT_EQ(w[3].tokens, 0);
    EXPECT_DOUBLE_EQ(w[3].t1, 4.0);
}

TEST(Timeline, SloAttributionIsPerRequest)
{
    obs::TimelineOptions opts;
    opts.window_s = 1.0;
    obs::Timeline tl(opts, 0.0, 1, 1);
    tl.recordTokens(0.5, /*request=*/1, 3);
    tl.recordTokens(0.6, /*request=*/2, 5);
    const auto w =
        tl.finalize(1.0, [](uint64_t id) { return id == 2; });
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].tokens, 8);
    EXPECT_EQ(w[0].slo_tokens, 5);
    EXPECT_DOUBLE_EQ(w[0].goodput_under_slo, 5.0);
}

TEST(Timeline, TruncatedFinalWindowRatesUseCoveredSpan)
{
    obs::TimelineOptions opts;
    opts.window_s = 1.0;
    obs::Timeline tl(opts, 0.0, 1, 1);
    tl.recordTokens(0.1, /*request=*/1, 4); // window 0, fully covered
    tl.recordTokens(1.1, /*request=*/1, 5); // window 1, run ends 1.25
    const auto w = tl.finalize(1.25, nullptr);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0].goodput_tps, 4.0);
    // The run covers only [1.0, 1.25) of the last window: 5 tokens
    // over 0.25 s is 20 tok/s. The old full-width division deflated
    // this to 5 tok/s — a 4x underreport of the closing rate.
    EXPECT_DOUBLE_EQ(w[1].goodput_tps, 20.0);
    EXPECT_DOUBLE_EQ(w[1].goodput_under_slo, 20.0);
    // Window bounds stay the nominal grid; only the rates rescale.
    EXPECT_DOUBLE_EQ(w[1].t0, 1.0);
    EXPECT_DOUBLE_EQ(w[1].t1, 2.0);
}

TEST(Timeline, ReduceIsTheOnlineSamplingKernel)
{
    obs::TimelineOptions opts;
    opts.window_s = 0.5;
    obs::Timeline tl(opts, 0.0, 1, 1);
    tl.recordTokens(0.6, /*request=*/1, 3);
    tl.recordTokens(0.7, /*request=*/2, 1);
    tl.recordIteration(0.6, 2, 1, 8, 0, 0);
    // Sampling window 1 mid-window (covered span 0.25 s) — what the
    // adaptive controller reads at a decision epoch.
    const auto win =
        tl.reduce(1, 0.75, [](uint64_t id) { return id == 1; });
    EXPECT_EQ(win.tokens, 4);
    EXPECT_EQ(win.slo_tokens, 3);
    EXPECT_DOUBLE_EQ(win.goodput_tps, 16.0);
    EXPECT_DOUBLE_EQ(win.goodput_under_slo, 12.0);
    EXPECT_EQ(win.iterations, 1);
    // An index past every recorded bucket is an empty window (full-
    // width fallback keeps the division defined), not an error.
    const auto empty = tl.reduce(7, 0.75, nullptr);
    EXPECT_EQ(empty.tokens, 0);
    EXPECT_DOUBLE_EQ(empty.goodput_tps, 0.0);
    EXPECT_DOUBLE_EQ(empty.t0, 3.5);
}

// -------------------------------------------- end-to-end server pins

namespace {

serve::ServerOptions
obsServerOpts(int workers)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = 4;
    o.sched.prefill.chunk_tokens = 128;
    o.sched.kv_budget_blocks = 150; // tight: preemptions fire
    o.sched.preempt_mode = serve::PreemptMode::Swap;
    return o;
}

std::vector<serve::Request>
obsStream()
{
    serve::StreamOptions shorts;
    shorts.n_requests = 4;
    shorts.gen_len = 10;
    shorts.rate_rps = 6.0;
    shorts.seed = 0x0b5;
    serve::StreamOptions longs;
    longs.n_requests = 3;
    longs.gen_len = 12;
    longs.prompt_len = 2048;
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = 0x0b6;
    return serve::mergeStreams(serve::synthesizeStream(shorts),
                               serve::synthesizeStream(longs));
}

} // namespace

TEST(ObsEndToEnd, KnobsAreBitInertOnTheModeledRun)
{
    // The SPECEE_TRACE env override would force tracing into the
    // "off" control run; neutralize it for this comparison.
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    const auto stream = obsStream();

    auto off = obsServerOpts(3);
    serve::Server s_off(pipe, off);
    s_off.submit(stream);
    const auto r_off = s_off.drain();

    auto on = obsServerOpts(3);
    on.sched.trace.enabled = true;
    on.sched.timeline.window_s = 0.2;
    on.sched.slo.interactive.ttft_s = 0.75;
    on.sched.slo.interactive.itl_s = 0.2;
    on.sched.slo.batch.deadline_s = 20.0;
    serve::Server s_on(pipe, on);
    s_on.submit(stream);
    const auto r_on = s_on.drain();

    // The modeled run is bitwise unchanged...
    EXPECT_DOUBLE_EQ(r_off.fleet.makespan_s, r_on.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r_off.fleet.energy_j, r_on.fleet.energy_j);
    EXPECT_EQ(r_off.fleet.tokens, r_on.fleet.tokens);
    EXPECT_EQ(r_off.fleet.iterations, r_on.fleet.iterations);
    EXPECT_EQ(r_off.fleet.preemptions, r_on.fleet.preemptions);
    EXPECT_DOUBLE_EQ(r_off.fleet.p99_ttft_s, r_on.fleet.p99_ttft_s);
    EXPECT_DOUBLE_EQ(r_off.fleet.p99_itl_s, r_on.fleet.p99_itl_s);
    ASSERT_EQ(r_off.outcomes.size(), r_on.outcomes.size());
    for (size_t i = 0; i < r_off.outcomes.size(); ++i) {
        const auto &a = r_off.outcomes[i];
        const auto &b = r_on.outcomes[i];
        ASSERT_EQ(a.result.emissions.size(), 1u);
        EXPECT_EQ(a.result.emissions[0].tokens,
                  b.result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
        // ... while only the observability outputs differ.
        EXPECT_FALSE(a.slo.evaluated);
        EXPECT_TRUE(b.slo.evaluated);
    }
    EXPECT_TRUE(r_off.fleet.trace.empty());
    EXPECT_TRUE(r_off.fleet.timeline.empty());
    EXPECT_EQ(r_off.fleet.slo_evaluated, 0);
    EXPECT_FALSE(r_on.fleet.trace.empty());
    EXPECT_FALSE(r_on.fleet.timeline.empty());
    EXPECT_GT(r_on.fleet.slo_evaluated, 0);
}

TEST(ObsEndToEnd, MergedTraceIsIdenticalAcrossWorkerCounts)
{
    // No unsetenv here: tracing is already on in-code, so letting a
    // CI-set SPECEE_TRACE flow through only adds the export path
    // (the TSan job uses exactly that to force traced drains).
    const auto &pipe = testutil::tinyPipeline();
    const auto stream = obsStream();

    serve::ServeReport reps[2];
    const int workers[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        auto o = obsServerOpts(workers[i]);
        o.sched.trace.enabled = true;
        o.sched.timeline.window_s = 0.2;
        serve::Server s(pipe, o);
        s.submit(stream);
        reps[i] = s.drain();
    }
    const auto &a = reps[0].fleet.trace;
    const auto &b = reps[1].fleet.trace;
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << i;
        EXPECT_DOUBLE_EQ(a[i].t0, b[i].t0) << i;
        EXPECT_DOUBLE_EQ(a[i].t1, b[i].t1) << i;
        EXPECT_EQ(a[i].device, b[i].device) << i;
        EXPECT_EQ(a[i].lane, b[i].lane) << i;
        EXPECT_EQ(a[i].request, b[i].request) << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << i;
        EXPECT_EQ(a[i].op_s, b[i].op_s) << i;
    }
    // And the rendered artifact is byte-identical.
    EXPECT_EQ(obs::chromeTraceJson(a, 1, 0),
              obs::chromeTraceJson(b, 1, 0));
}

TEST(ObsEndToEnd, ServerWritesTraceFile)
{
    unsetenv("SPECEE_TRACE");
    const auto &pipe = testutil::tinyPipeline();
    auto o = obsServerOpts(2);
    o.trace_path = "test_obs_server_trace.json";
    serve::Server s(pipe, o);
    s.submit(obsStream());
    const auto rep = s.drain();
    // The path forces tracing on even though sched.trace was off.
    EXPECT_FALSE(rep.fleet.trace.empty());
    std::FILE *f = std::fopen(o.trace_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 0);
    std::fclose(f);
    std::remove(o.trace_path.c_str());
}
