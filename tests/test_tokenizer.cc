/**
 * @file
 * Tokenizer tests: decode/encode round trips, option tokens.
 */

#include <gtest/gtest.h>

#include "model/tokenizer.hh"

using namespace specee;
using namespace specee::model;

TEST(Tokenizer, SpecialTokens)
{
    Tokenizer tok(512);
    EXPECT_EQ(tok.decode(0), "<s>");
    EXPECT_EQ(tok.decode(1), "</s>");
    EXPECT_EQ(tok.encode("<s>"), 0);
    EXPECT_EQ(tok.encode("</s>"), 1);
}

TEST(Tokenizer, OptionTokens)
{
    Tokenizer tok(512);
    for (int i = 0; i < kMaxOptions; ++i) {
        const int t = Tokenizer::optionToken(i);
        EXPECT_EQ(Tokenizer::optionIndex(t), i);
        const std::string s = tok.decode(t);
        EXPECT_EQ(s.size(), 3u);
        EXPECT_EQ(s[1], 'A' + i);
        EXPECT_EQ(tok.encode(s), t);
    }
    EXPECT_EQ(Tokenizer::optionIndex(0), -1);
    EXPECT_EQ(Tokenizer::optionIndex(kOptionTokenBase + kMaxOptions), -1);
}

TEST(Tokenizer, WordTableRoundTrip)
{
    Tokenizer tok(512);
    const int first_word = kOptionTokenBase + kMaxOptions;
    EXPECT_EQ(tok.decode(first_word), "the");
    EXPECT_EQ(tok.encode("the"), first_word);
}

TEST(Tokenizer, TailTokensRoundTrip)
{
    Tokenizer tok(4096);
    EXPECT_EQ(tok.decode(4000), "tok4000");
    EXPECT_EQ(tok.encode("tok4000"), 4000);
}

TEST(Tokenizer, SequenceDecode)
{
    Tokenizer tok(512);
    std::vector<int> seq = {0, tok.encode("the"), tok.encode("of")};
    EXPECT_EQ(tok.decode(seq), "<s> the of");
}

TEST(Tokenizer, OutOfRangeDies)
{
    Tokenizer tok(512);
    EXPECT_DEATH(tok.decode(512), "out of range");
    EXPECT_DEATH(tok.decode(-1), "out of range");
}
