/**
 * @file
 * Engine tests: dense correctness, SpecEE early exiting (T1/T2),
 * AdaInfer baseline behaviour, cost/energy/memory accounting.
 */

#include <gtest/gtest.h>

#include "oracle/profiles.hh"
#include "test_util.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

const workload::Workload &
mtWorkload()
{
    static const workload::Workload w = testutil::tinyPipeline().makeWorkload(
        "MT-Bench", testutil::smallGen());
    return w;
}

engines::RunResult
runConfig(const EngineConfig &cfg,
          const hw::HardwareSpec &spec = hw::HardwareSpec::a100())
{
    auto engine = testutil::tinyPipeline().makeEngine(cfg, spec);
    return engine->run(mtWorkload(), 11);
}

} // namespace

TEST(Engine, DenseEmitsScriptedTargetsExactly)
{
    auto r = runConfig(EngineConfig::huggingFace());
    const auto &w = mtWorkload();
    ASSERT_EQ(r.emissions.size(), w.instances.size());
    for (size_t i = 0; i < w.instances.size(); ++i) {
        for (size_t t = 0; t < r.emissions[i].tokens.size(); ++t) {
            EXPECT_EQ(r.emissions[i].tokens[t],
                      w.instances[i].steps[t].target);
        }
    }
    EXPECT_DOUBLE_EQ(r.stats.avg_forward_layers,
                     testutil::tinyPipeline().modelConfig().n_layers);
    EXPECT_EQ(r.stats.exits, 0);
}

TEST(Engine, SpecEEExitsEarlyAndStaysAccurate)
{
    auto dense = runConfig(EngineConfig::huggingFace());
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    const auto &w = mtWorkload();
    const auto &pipe = testutil::tinyPipeline();

    auto ev = workload::Evaluator::evaluate(w, ee.emissions, pipe.corpus());
    EXPECT_GT(ev.token_match_rate, 0.95);

    EXPECT_GT(ee.stats.exits, ee.stats.tokens / 2);
    EXPECT_LT(ee.stats.avg_forward_layers,
              dense.stats.avg_forward_layers - 1.0);
    EXPECT_GT(ee.stats.tokens_per_s, dense.stats.tokens_per_s);
}

TEST(Engine, T2ReducesPredictorInvocations)
{
    auto t1 = runConfig(EngineConfig::huggingFace().withSpecEE(false));
    auto t2 = runConfig(EngineConfig::huggingFace().withSpecEE(true));
    EXPECT_LT(t2.stats.predictor_invocations,
              t1.stats.predictor_invocations);
    EXPECT_LT(t2.stats.avg_active_predictors,
              t1.stats.avg_active_predictors);
    // Scheduling should not cost much in exit opportunity.
    EXPECT_LT(t2.stats.avg_forward_layers,
              t1.stats.avg_forward_layers + 2.5);
    // At the tiny 8-layer scale the scheduling gap nearly offsets the
    // predictor savings; near-parity is acceptable here — the real
    // Fig. 10(d)/Fig. 19 ordering is asserted at 32 layers in
    // test_integration.cc.
    EXPECT_GT(t2.stats.tokens_per_s, 0.97 * t1.stats.tokens_per_s);
}

TEST(Engine, VerificationCatchesPrematureExits)
{
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    EXPECT_GT(ee.stats.verify_calls, 0);
    // Some verifications must fail (the mechanism that protects
    // accuracy); all-passing would mean the threshold is vacuous.
    EXPECT_GT(ee.stats.verify_rejects, 0);
    EXPECT_LT(ee.stats.verify_rejects, ee.stats.verify_calls);
}

TEST(Engine, AdaInferIsSlowerAndLessAccurateThanSpecEE)
{
    auto ada = runConfig(EngineConfig::adaInfer());
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    const auto &pipe = testutil::tinyPipeline();
    auto ev_ada = workload::Evaluator::evaluate(mtWorkload(), ada.emissions,
                                                pipe.corpus());
    auto ev_ee = workload::Evaluator::evaluate(mtWorkload(), ee.emissions,
                                               pipe.corpus());
    // AdaInfer exits without verification -> worse token fidelity
    // (Table 4: its accuracy trails both the dense model and SpecEE).
    EXPECT_LT(ev_ada.token_match_rate, ev_ee.token_match_rate - 0.005);
    // Its per-layer full LM head makes it slower than SpecEE.
    EXPECT_LT(ada.stats.tokens_per_s, ee.stats.tokens_per_s);
}

TEST(Engine, QuantizedEngineRunsAndIsFasterPerToken)
{
    auto fp16 = runConfig(EngineConfig::huggingFace());
    auto q4 = runConfig(EngineConfig::awq());
    // AWQ reads ~3.5x fewer weight bytes; even with its lower kernel
    // efficiency it beats fp16 HF on throughput.
    EXPECT_GT(q4.stats.tokens_per_s, fp16.stats.tokens_per_s);
}

TEST(Engine, Fp32BackendIsBitIdenticalToDefault)
{
    // The WeightStore abstraction must be a zero-cost veneer for the
    // fp32 backend: selecting it explicitly changes nothing, neither
    // functionally nor in the modeled costs.
    auto base = runConfig(EngineConfig::huggingFace().withSpecEE());
    auto fp32 = runConfig(EngineConfig::huggingFace()
                              .withSpecEE()
                              .withWeightBackend(
                                  tensor::WeightBackend::Fp32));
    ASSERT_EQ(base.emissions.size(), fp32.emissions.size());
    for (size_t i = 0; i < base.emissions.size(); ++i) {
        EXPECT_EQ(base.emissions[i].tokens, fp32.emissions[i].tokens);
        EXPECT_EQ(base.emissions[i].exit_layers,
                  fp32.emissions[i].exit_layers);
    }
    EXPECT_DOUBLE_EQ(base.stats.modeled_time_s,
                     fp32.stats.modeled_time_s);
    EXPECT_DOUBLE_EQ(base.stats.energy_per_token_j,
                     fp32.stats.energy_per_token_j);
    EXPECT_DOUBLE_EQ(base.stats.peak_mem_gb, fp32.stats.peak_mem_gb);
}

TEST(Engine, WeightBackendsCompressTimeEnergyAndMemory)
{
    auto fp32 = runConfig(EngineConfig::huggingFace());
    auto q8 = runConfig(EngineConfig::huggingFace().withWeightBackend(
        tensor::WeightBackend::Q8));
    auto q4 = runConfig(EngineConfig::huggingFace().withWeightBackend(
        tensor::WeightBackend::Q4));

    // The dense engine still emits the scripted targets under q8
    // (near-lossless functionally).
    for (size_t i = 0; i < fp32.emissions.size(); ++i)
        EXPECT_EQ(q8.emissions[i].tokens, fp32.emissions[i].tokens);

    // Monotone speed/energy/memory ordering with compression.
    EXPECT_GT(q8.stats.tokens_per_s, fp32.stats.tokens_per_s);
    EXPECT_GT(q4.stats.tokens_per_s, q8.stats.tokens_per_s);
    EXPECT_LT(q8.stats.energy_per_token_j,
              fp32.stats.energy_per_token_j);
    EXPECT_LT(q8.stats.peak_mem_gb, fp32.stats.peak_mem_gb);
    EXPECT_LT(q4.stats.peak_mem_gb, q8.stats.peak_mem_gb);

    // Weight traffic per decoder layer halves under q8.
    const double b_fp32 =
        fp32.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    const double b_q8 =
        q8.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    EXPECT_NEAR(b_q8 / b_fp32, 0.5, 0.03);
}

TEST(Engine, WeightBackendCompoundsWithSpecEE)
{
    // The paper's lever (fewer layers) and quantization (fewer bytes
    // per layer) multiply: q8+SpecEE beats both single-lever engines.
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    auto q8 = runConfig(EngineConfig::huggingFace().withWeightBackend(
        tensor::WeightBackend::Q8));
    auto q8_ee = runConfig(EngineConfig::huggingFace()
                               .withWeightBackend(
                                   tensor::WeightBackend::Q8)
                               .withSpecEE());
    EXPECT_GT(q8_ee.stats.tokens_per_s, ee.stats.tokens_per_s);
    EXPECT_GT(q8_ee.stats.tokens_per_s, q8.stats.tokens_per_s);
}

TEST(Engine, PagedAndContiguousKvAgreeFunctionally)
{
    auto hf = runConfig(EngineConfig::huggingFace());
    auto vllm = runConfig(EngineConfig::vllm());
    ASSERT_EQ(hf.emissions.size(), vllm.emissions.size());
    for (size_t i = 0; i < hf.emissions.size(); ++i)
        EXPECT_EQ(hf.emissions[i].tokens, vllm.emissions[i].tokens);
}

TEST(Engine, FixedPredictorLayersOverrideScheduling)
{
    EngineConfig cfg = EngineConfig::huggingFace().withSpecEE();
    cfg.fixed_predictor_layers = {2, 4};
    auto r = runConfig(cfg);
    // Exits can only happen at the fixed layers.
    for (size_t l = 0; l < r.stats.exit_histogram.size(); ++l) {
        if (l != 2 && l != 4) {
            EXPECT_EQ(r.stats.exit_histogram[l], 0) << "layer " << l;
        }
    }
}

TEST(Engine, EnergyModelShowsEnergyReduction)
{
    auto dense = runConfig(EngineConfig::huggingFace());
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    EXPECT_GT(ee.stats.avg_power_w, 0.0);
    // §7.3.1's *power* reduction needs the 32-layer op mix and is
    // asserted in test_integration.cc; at 8 layers the verification
    // heads weigh more, so only the energy-per-token reduction is a
    // scale-independent claim.
    EXPECT_LT(ee.stats.energy_per_token_j,
              dense.stats.energy_per_token_j);
}

TEST(Engine, MemoryModelAddsDraftModelOverhead)
{
    auto dense = runConfig(EngineConfig::huggingFace());
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    EXPECT_GT(ee.stats.peak_mem_gb, dense.stats.peak_mem_gb);
}

TEST(Engine, OffloadSplitOnPcPlatform)
{
    // The tiny model fits in VRAM, so use the PC spec with llama.cpp
    // config on a big model config to exercise the split.
    auto cfg7b = model::ModelConfig::llama2_7b();
    oracle::SyntheticCorpus corpus(cfg7b.sim.vocab, 1);
    engines::Engine e(EngineConfig::llamaCpp(), cfg7b,
                      hw::HardwareSpec::pc4060(), corpus);
    EXPECT_LT(e.deviceWeightFrac(), 0.7);
    EXPECT_GT(e.deviceWeightFrac(), 0.2);
}

TEST(Engine, ExitHistogramAccountsAllExits)
{
    auto ee = runConfig(EngineConfig::huggingFace().withSpecEE());
    long hist_total = 0;
    for (long c : ee.stats.exit_histogram)
        hist_total += c;
    EXPECT_EQ(hist_total, ee.stats.exits);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto a = runConfig(EngineConfig::huggingFace().withSpecEE());
    auto b = runConfig(EngineConfig::huggingFace().withSpecEE());
    ASSERT_EQ(a.emissions.size(), b.emissions.size());
    for (size_t i = 0; i < a.emissions.size(); ++i)
        EXPECT_EQ(a.emissions[i].tokens, b.emissions[i].tokens);
    EXPECT_DOUBLE_EQ(a.stats.modeled_time_s, b.stats.modeled_time_s);
}
