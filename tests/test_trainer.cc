/**
 * @file
 * Predictor training pipeline tests (§7.4.4): label collection,
 * per-layer dataset shapes, MLP/SVM training quality, and the
 * training-data-ratio behaviour behind Fig. 18.
 */

#include <gtest/gtest.h>

#include "core/predictor_trainer.hh"
#include "model/draft_model.hh"
#include "oracle/profiles.hh"
#include "test_util.hh"

using namespace specee;

namespace {

struct Collected
{
    core::ProfileData data;
    model::ModelConfig cfg;
};

const Collected &
collected()
{
    static const Collected c = [] {
        Collected out{.data = {}, .cfg = model::ModelConfig::tiny()};
        oracle::SyntheticCorpus corpus(out.cfg.sim.vocab, 0xc0de ^ 42);
        workload::WorkloadGen gen(corpus);
        workload::GenOptions gopts;
        gopts.n_instances = 6;
        gopts.gen_len = 36;
        gopts.seed = 0x7e57;
        auto w = gen.generate(oracle::profileByName("MT-Bench"), out.cfg,
                              gopts);
        model::TargetModel tm(out.cfg, {});
        model::DraftModel dlm(out.cfg, corpus, 0.9);
        out.data = core::PredictorTrainer::collect(w, tm, dlm, 0x5eed);
        return out;
    }();
    return c;
}

} // namespace

TEST(Trainer, CollectShapes)
{
    const auto &c = collected();
    const int n_exit = c.cfg.n_layers - 1;
    ASSERT_EQ(static_cast<int>(c.data.specee.size()), n_exit);
    ASSERT_EQ(static_cast<int>(c.data.adainfer.size()), n_exit);
    const size_t per_layer = c.data.specee.front().size();
    EXPECT_EQ(per_layer, 6u * 36u);
    for (const auto &d : c.data.specee) {
        EXPECT_EQ(d.size(), per_layer);
        EXPECT_EQ(d.dim(), 12u);
    }
    for (const auto &d : c.data.adainfer)
        EXPECT_EQ(d.dim(), 3u);
}

TEST(Trainer, LabelsBecomeMorePositiveWithDepth)
{
    const auto &c = collected();
    // Early layers are mostly pre-convergence (label 0); late layers
    // mostly post-convergence (label 1).
    const double first = c.data.specee.front().positiveRate();
    const double last = c.data.specee.back().positiveRate();
    EXPECT_LT(first, 0.35);
    EXPECT_GT(last, 0.6);
    EXPECT_GT(last - first, 0.3);
}

TEST(Trainer, OracleExitHistogramMatchesSampleCount)
{
    const auto &c = collected();
    long total = 0;
    for (long h : c.data.oracle_exit_hist)
        total += h;
    // Hard tokens never reach label-true before the last layer, so
    // the histogram holds slightly fewer entries than tokens.
    EXPECT_GT(total, 0);
    EXPECT_LE(total, static_cast<long>(c.data.specee.front().size()));
}

TEST(Trainer, MlpBankLearnsExitDecision)
{
    const auto &c = collected();
    core::ExitPredictor bank(c.cfg.n_layers - 1, 12, 64, 2, 1);
    core::TrainerOptions topts;
    topts.train.epochs = 25;
    auto rep = core::PredictorTrainer::train(bank, c.data, topts);
    // Fig. 8 reports ~93% predictor accuracy; the tiny model should
    // comfortably exceed chance and approach that band.
    EXPECT_GT(rep.mean_test_accuracy, 0.85);
    EXPECT_GT(rep.mean_train_accuracy, 0.85);
    EXPECT_EQ(rep.per_layer_test_accuracy.size(),
              static_cast<size_t>(c.cfg.n_layers - 1));
}

TEST(Trainer, SvmBankLearnsButIsWorseCalibrated)
{
    const auto &c = collected();
    std::vector<nn::LinearSvm> bank;
    core::TrainerOptions topts;
    auto rep = core::PredictorTrainer::trainAdaInfer(bank, c.data, topts);
    ASSERT_EQ(static_cast<int>(bank.size()), c.cfg.n_layers - 1);
    EXPECT_GT(rep.mean_test_accuracy, 0.6);
}

TEST(Trainer, DataRatioDegradesGracefully)
{
    const auto &c = collected();
    core::TrainerOptions full, tiny_ratio;
    full.train.epochs = 20;
    tiny_ratio.train.epochs = 20;
    tiny_ratio.data_ratio = 0.05;

    core::ExitPredictor bank_full(c.cfg.n_layers - 1, 12, 64, 2, 1);
    core::ExitPredictor bank_tiny(c.cfg.n_layers - 1, 12, 64, 2, 1);
    auto rep_full = core::PredictorTrainer::train(bank_full, c.data, full);
    auto rep_tiny =
        core::PredictorTrainer::train(bank_tiny, c.data, tiny_ratio);
    EXPECT_LT(rep_tiny.samples_used, rep_full.samples_used);
    // Fig. 18: a few percent of the data already performs well.
    EXPECT_GT(rep_tiny.mean_test_accuracy, 0.6);
}

TEST(Trainer, PipelineBundlesEverything)
{
    const auto &pipe = testutil::tinyPipeline();
    EXPECT_GT(pipe.trainReport().mean_test_accuracy, 0.8);
    EXPECT_FALSE(pipe.offlineHotLayers().empty());
    EXPECT_FALSE(pipe.adaInferBank().empty());
    EXPECT_EQ(pipe.predictors().nExitLayers(),
              pipe.modelConfig().n_layers - 1);
}
