/**
 * @file
 * Two-level heuristic scheduling tests (§5.3): offline hot-layer
 * selection from the skewed histogram, online circular queue with
 * +/-radius neighbourhood counters, and their union semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/offline_scheduler.hh"
#include "core/online_scheduler.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::core;

// --- offline -----------------------------------------------------------------

TEST(Offline, HistogramAccumulates)
{
    OfflineScheduler off(8);
    off.recordExit(3);
    off.recordExit(3);
    off.recordExit(5);
    off.recordNoExit();
    EXPECT_EQ(off.totalExits(), 3);
    EXPECT_EQ(off.histogram()[3], 2);
    auto p = off.exitProbabilities();
    EXPECT_NEAR(p[3], 2.0 / 3.0, 1e-9);
}

TEST(Offline, HotLayersCoverRequestedMass)
{
    OfflineScheduler off(10);
    // Layer 4: 60%, layer 7: 30%, layer 1: 10%.
    for (int i = 0; i < 60; ++i)
        off.recordExit(4);
    for (int i = 0; i < 30; ++i)
        off.recordExit(7);
    for (int i = 0; i < 10; ++i)
        off.recordExit(1);
    EXPECT_EQ(off.hotLayers(0.55), (std::vector<int>{4}));
    EXPECT_EQ(off.hotLayers(0.85), (std::vector<int>{4, 7}));
    EXPECT_EQ(off.hotLayers(0.95), (std::vector<int>{1, 4, 7}));
}

TEST(Offline, TopKSortedByLayerId)
{
    OfflineScheduler off(10);
    for (int i = 0; i < 5; ++i)
        off.recordExit(9);
    for (int i = 0; i < 4; ++i)
        off.recordExit(2);
    for (int i = 0; i < 3; ++i)
        off.recordExit(6);
    EXPECT_EQ(off.topK(2), (std::vector<int>{2, 9}));
    EXPECT_EQ(off.topK(99), (std::vector<int>{2, 6, 9}));
}

TEST(Offline, BottomMassReflectsSkew)
{
    OfflineScheduler skewed(10);
    for (int i = 0; i < 90; ++i)
        skewed.recordExit(5);
    for (int l = 0; l < 10; ++l)
        skewed.recordExit(l); // 1 each
    // Bottom half (5 least-frequent layers) holds ~5/100.
    EXPECT_LT(skewed.bottomMass(0.5), 0.10);

    OfflineScheduler uniform(10);
    for (int l = 0; l < 10; ++l)
        for (int i = 0; i < 10; ++i)
            uniform.recordExit(l);
    EXPECT_NEAR(uniform.bottomMass(0.5), 0.5, 1e-9);
}

TEST(Offline, EmptyHistogramIsSafe)
{
    OfflineScheduler off(5);
    EXPECT_TRUE(off.hotLayers(0.9).empty());
    EXPECT_EQ(off.bottomMass(0.5), 0.0);
}

// --- online ------------------------------------------------------------------

TEST(Online, NeighbourhoodActivation)
{
    OnlineScheduler on(32, 5, 2);
    EXPECT_EQ(on.activeCount(), 0);
    on.recordExit(10);
    for (int l = 8; l <= 12; ++l)
        EXPECT_TRUE(on.isActive(l)) << l;
    EXPECT_FALSE(on.isActive(7));
    EXPECT_FALSE(on.isActive(13));
    EXPECT_EQ(on.activeCount(), 5);
}

TEST(Online, WindowEvictsOldest)
{
    OnlineScheduler on(32, 2, 0); // window 2, exact-layer radius
    on.recordExit(5);
    on.recordExit(9);
    EXPECT_TRUE(on.isActive(5));
    EXPECT_TRUE(on.isActive(9));
    on.recordExit(20); // evicts 5
    EXPECT_FALSE(on.isActive(5));
    EXPECT_TRUE(on.isActive(9));
    EXPECT_TRUE(on.isActive(20));
    EXPECT_EQ(on.filled(), 2);
}

TEST(Online, OverlappingNeighbourhoodsRefcount)
{
    OnlineScheduler on(32, 3, 2);
    on.recordExit(10);
    on.recordExit(11); // overlaps 9-12
    on.recordExit(30);
    // Evict 10: 11's neighbourhood must keep 9-13 alive.
    on.recordExit(30); // window 3 -> evicts 10
    EXPECT_TRUE(on.isActive(9));
    EXPECT_TRUE(on.isActive(12));
    EXPECT_TRUE(on.isActive(13));
    EXPECT_FALSE(on.isActive(8));
}

TEST(Online, ClampsAtBoundaries)
{
    OnlineScheduler on(32, 5, 2);
    on.recordExit(0);
    EXPECT_TRUE(on.isActive(0));
    EXPECT_TRUE(on.isActive(2));
    EXPECT_EQ(on.activeCount(), 3); // 0,1,2 only
    on.recordExit(31);
    EXPECT_TRUE(on.isActive(29));
    EXPECT_EQ(on.activeCount(), 6);
}

TEST(Online, ActiveSetSizeNearPaperTenPointTwo)
{
    // §5.2: the union of the last 5 exits' +/-2 neighbourhoods spans
    // ~10.2 layers on average under the context-similar process.
    OnlineScheduler on(32, 5, 2);
    Rng rng(1);
    double total = 0;
    int samples = 0;
    int cur = 20;
    for (int i = 0; i < 2000; ++i) {
        // Context-similar walk around layer 20.
        cur = std::clamp(cur + rng.uniformInt(-3, 3), 0, 31);
        on.recordExit(cur);
        if (i > 10) {
            total += on.activeCount();
            ++samples;
        }
    }
    const double avg = total / samples;
    EXPECT_GT(avg, 6.0);
    EXPECT_LT(avg, 14.0);
}

TEST(Online, ResetClearsEverything)
{
    OnlineScheduler on(32, 5, 2);
    on.recordExit(10);
    on.recordExit(20);
    on.reset();
    EXPECT_EQ(on.activeCount(), 0);
    EXPECT_EQ(on.filled(), 0);
    EXPECT_TRUE(on.activeSet().empty());
}

TEST(Online, ActiveSetIsSortedAscending)
{
    OnlineScheduler on(32, 5, 1);
    on.recordExit(20);
    on.recordExit(5);
    auto set = on.activeSet();
    EXPECT_EQ(set, (std::vector<int>{4, 5, 6, 19, 20, 21}));
}
