/**
 * @file
 * Speculative-decoding engine tests: EAGLE baseline acceptance,
 * SpecEE+EAGLE (T3 hyper-token mapping), complexity counters.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

const workload::Workload &
sumWorkload()
{
    static const workload::Workload w = testutil::tinyPipeline().makeWorkload(
        "SUM", testutil::smallGen(4, 36, 123));
    return w;
}

engines::RunResult
runConfig(const EngineConfig &cfg)
{
    auto engine = testutil::tinyPipeline().makeEngine(
        cfg, hw::HardwareSpec::a100());
    return engine->run(sumWorkload(), 21);
}

} // namespace

TEST(SpecEngine, EagleCommitsMultipleTokensPerPass)
{
    auto r = runConfig(EngineConfig::eagle());
    EXPECT_GT(r.stats.passes, 0);
    EXPECT_GT(r.stats.avg_commit_per_pass, 1.5);
    EXPECT_LE(r.stats.avg_commit_per_pass,
              1.0 + EngineConfig{}.tree.depth());
}

TEST(SpecEngine, EagleMatchesDenseEmissions)
{
    auto dense = runConfig(EngineConfig::huggingFace());
    auto eagle = runConfig(EngineConfig::eagle());
    // EAGLE verification is lossless: emitted tokens must equal the
    // dense emissions (both emit the scripted targets).
    ASSERT_EQ(dense.emissions.size(), eagle.emissions.size());
    for (size_t i = 0; i < dense.emissions.size(); ++i) {
        ASSERT_EQ(dense.emissions[i].tokens.size(),
                  eagle.emissions[i].tokens.size());
        EXPECT_EQ(dense.emissions[i].tokens, eagle.emissions[i].tokens);
    }
}

TEST(SpecEngine, EagleBeatsAutoregressiveThroughput)
{
    auto hf = runConfig(EngineConfig::huggingFace());
    auto eagle = runConfig(EngineConfig::eagle());
    EXPECT_GT(eagle.stats.tokens_per_s, 1.5 * hf.stats.tokens_per_s);
}

TEST(SpecEngine, SpecEEPlusEagleAddsEarlyExit)
{
    auto eagle = runConfig(EngineConfig::eagle());
    auto both = runConfig(EngineConfig::eagle().withSpecEE());
    // T3: hyper-token early exit shortens the verification passes.
    EXPECT_LT(both.stats.avg_forward_layers,
              eagle.stats.avg_forward_layers - 0.5);
    // At 8 layers the saved traffic barely covers the predictor and
    // KV-fill overheads, so only near-parity is required here; the
    // 32-layer throughput win is asserted in test_integration.cc.
    EXPECT_GT(both.stats.tokens_per_s, 0.8 * eagle.stats.tokens_per_s);
    // Quality stays near-dense.
    auto ev = workload::Evaluator::evaluate(
        sumWorkload(), both.emissions, testutil::tinyPipeline().corpus());
    EXPECT_GT(ev.token_match_rate, 0.93);
}

TEST(SpecEngine, MappingComplexityCountersAreLinearVsExponential)
{
    auto both = runConfig(EngineConfig::eagle().withSpecEE());
    EXPECT_GT(both.stats.map_complexity_independent, 0);
    EXPECT_GT(both.stats.map_complexity_merged, 0);
    // The merged mapping must be strictly cheaper (Fig. 13 / §6).
    EXPECT_LT(both.stats.map_complexity_merged,
              both.stats.map_complexity_independent);
}

TEST(SpecEngine, CommitCountMatchesScriptedSteps)
{
    auto r = runConfig(EngineConfig::eagle());
    const auto &w = sumWorkload();
    for (size_t i = 0; i < w.instances.size(); ++i) {
        EXPECT_EQ(r.emissions[i].tokens.size(),
                  w.instances[i].steps.size());
    }
}

TEST(SpecEngine, DeterministicAcrossRuns)
{
    auto a = runConfig(EngineConfig::eagle().withSpecEE());
    auto b = runConfig(EngineConfig::eagle().withSpecEE());
    for (size_t i = 0; i < a.emissions.size(); ++i)
        EXPECT_EQ(a.emissions[i].tokens, b.emissions[i].tokens);
}
