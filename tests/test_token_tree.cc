/**
 * @file
 * Token tree and hyper-token mapping tests (§6): tree construction,
 * path enumeration, draft hit-rate behaviour, Cannikin law, and the
 * exponential-vs-linear mapping complexity claim.
 */

#include <gtest/gtest.h>

#include "core/hyper_token.hh"
#include "core/token_tree.hh"
#include "oracle/corpus.hh"

using namespace specee;
using namespace specee::core;

namespace {

TokenTree
manualTree()
{
    // root(0)=99 -> a(1),b(2),c(3); a -> d(4),e(5); d -> f(6)
    TokenTree t(99);
    int a = t.addNode(0, 10);
    t.addNode(0, 11);
    t.addNode(0, 12);
    int d = t.addNode(a, 20);
    t.addNode(a, 21);
    t.addNode(d, 30);
    return t;
}

} // namespace

TEST(TokenTree, ShapeAccessors)
{
    auto t = manualTree();
    EXPECT_EQ(t.size(), 7);
    EXPECT_EQ(t.draftCount(), 6);
    EXPECT_EQ(t.rootToken(), 99);
    EXPECT_EQ(t.depth(), 3);
    EXPECT_EQ(t.children(0), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(t.node(4).depth, 2);
}

TEST(TokenTree, LeafPathsEnumeration)
{
    auto t = manualTree();
    auto paths = t.leafPaths();
    // Leaves: b(2), c(3), e(5), f(6) -> 4 paths.
    ASSERT_EQ(paths.size(), 4u);
    // The deepest path is root->a->d->f.
    bool found_deep = false;
    for (const auto &p : paths) {
        if (p.size() == 3) {
            EXPECT_EQ(t.pathTokens(p), (std::vector<int>{10, 20, 30}));
            found_deep = true;
        }
    }
    EXPECT_TRUE(found_deep);
}

TEST(TokenTree, DraftContainsTargetAtHighHitRate)
{
    auto cfg = model::ModelConfig::tiny();
    oracle::SyntheticCorpus corpus(cfg.sim.vocab, 5);
    model::DraftModel dlm(cfg, corpus, 1.0); // always hit
    Rng rng(6);
    std::vector<model::TokenScript> chain(3);
    chain[0].target = 100;
    chain[1].target = 101;
    chain[2].target = 102;
    int level1_hits = 0;
    for (int i = 0; i < 50; ++i) {
        auto t = TokenTree::draft(dlm, 7, chain, {4, 2, 2}, rng);
        for (int kid : t.children(0)) {
            if (t.node(kid).token == 100)
                ++level1_hits;
        }
    }
    EXPECT_EQ(level1_hits, 50);
}

TEST(TokenTree, DraftNeverContainsTargetAtZeroHitRate)
{
    auto cfg = model::ModelConfig::tiny();
    oracle::SyntheticCorpus corpus(cfg.sim.vocab, 7);
    model::DraftModel dlm(cfg, corpus, 0.0);
    Rng rng(8);
    std::vector<model::TokenScript> chain(2);
    chain[0].target = 100;
    chain[1].target = 101;
    for (int i = 0; i < 20; ++i) {
        auto t = TokenTree::draft(dlm, 9, chain, {4, 2}, rng);
        for (int kid : t.children(0))
            EXPECT_NE(t.node(kid).token, 100);
    }
}

TEST(TokenTree, DraftShapeFollowsWidths)
{
    auto cfg = model::ModelConfig::tiny();
    oracle::SyntheticCorpus corpus(cfg.sim.vocab, 9);
    model::DraftModel dlm(cfg, corpus, 0.9);
    Rng rng(10);
    std::vector<model::TokenScript> chain(3);
    chain[0].target = 50;
    chain[1].target = 51;
    chain[2].target = 52;
    auto t = TokenTree::draft(dlm, 3, chain, {4, 2, 2}, rng);
    EXPECT_EQ(t.draftCount(), 8);
    EXPECT_EQ(static_cast<int>(t.children(0).size()), 4);
    EXPECT_EQ(t.expandedChain().size(), 3u);
    // Chain nodes are each level's first child.
    EXPECT_EQ(t.node(t.expandedChain()[0]).depth, 1);
    EXPECT_EQ(t.node(t.expandedChain()[1]).depth, 2);
}

TEST(TokenTree, DraftTokensAreDistinctPerLevel)
{
    auto cfg = model::ModelConfig::tiny();
    oracle::SyntheticCorpus corpus(cfg.sim.vocab, 11);
    model::DraftModel dlm(cfg, corpus, 0.9);
    Rng rng(12);
    std::vector<model::TokenScript> chain(1);
    chain[0].target = 60;
    for (int i = 0; i < 20; ++i) {
        auto t = TokenTree::draft(dlm, i, chain, {4}, rng);
        auto kids = t.children(0);
        std::vector<int> toks;
        for (int k : kids)
            toks.push_back(t.node(k).token);
        std::sort(toks.begin(), toks.end());
        EXPECT_EQ(std::unique(toks.begin(), toks.end()), toks.end());
    }
}

// --- merged mapping -----------------------------------------------------

TEST(MergedMapping, HyperTokensMatchLeafPaths)
{
    auto t = manualTree();
    auto hts = MergedMapping::build(t);
    ASSERT_EQ(hts.size(), 4u);
    int max_len = 0;
    for (const auto &h : hts)
        max_len = std::max(max_len, h.length());
    EXPECT_EQ(max_len, 3);
}

TEST(MergedMapping, ComplexityExponentialVsLinear)
{
    auto t = manualTree();
    // Widths per level: 3, 2, 1 -> independent = 6; merged = 4 paths.
    EXPECT_EQ(MergedMapping::independentMappingComplexity(t), 6);
    EXPECT_EQ(MergedMapping::mergedMappingComplexity(t), 4);
}

TEST(MergedMapping, ComplexityGapGrowsWithDepth)
{
    // A uniform binary tree of depth d: independent grows as the
    // product of level widths (2^1 * 2^2 * ...), merged as the leaf
    // count (2^d).
    long prev_ratio = 1;
    for (int depth = 2; depth <= 4; ++depth) {
        TokenTree t(0);
        std::vector<int> level = {0};
        int tok = 1;
        for (int d = 0; d < depth; ++d) {
            std::vector<int> next;
            for (int id : level) {
                next.push_back(t.addNode(id, tok++));
                next.push_back(t.addNode(id, tok++));
            }
            level = next;
        }
        const long ind = MergedMapping::independentMappingComplexity(t);
        const long mer = MergedMapping::mergedMappingComplexity(t);
        EXPECT_GT(ind / mer, prev_ratio);
        prev_ratio = ind / mer;
    }
}

TEST(MergedMapping, CannikinIsMax)
{
    EXPECT_EQ(MergedMapping::cannikinExitLayer({22, 30, 25}), 30);
    EXPECT_EQ(MergedMapping::cannikinExitLayer({5}), 5);
}

TEST(MergedMapping, GroupedLogitsDelegateToHead)
{
    auto cfg = model::ModelConfig::tiny();
    model::Weights w(cfg, false);
    model::LmHead head(w.embedding(), w.rmsFinal());
    tensor::Vec h1(static_cast<size_t>(cfg.sim.hidden), 0.3f);
    tensor::Vec h2(static_cast<size_t>(cfg.sim.hidden), -0.2f);
    std::vector<tensor::CSpan> hiddens = {h1, h2};
    std::vector<std::vector<int>> cands = {{1, 2, 3, 4}, {5, 6, 7, 8}};
    std::vector<tensor::Vec> out;
    MergedMapping::groupedSlicedLogits(head, hiddens, cands, out);
    ASSERT_EQ(out.size(), 2u);
    tensor::Vec direct(4);
    head.sliced(h1, cands[0], direct);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(out[0][static_cast<size_t>(i)],
                        direct[static_cast<size_t>(i)]);
}
