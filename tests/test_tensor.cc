/**
 * @file
 * Tensor kernel tests: GEMV variants, softmax, top-k, RMSNorm, RoPE.
 * Includes parameterized shape sweeps (property-style).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/kernels.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::tensor;

namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal());
    return m;
}

Vec
randomVec(size_t n, uint64_t seed)
{
    Vec v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

} // namespace

TEST(Matrix, ShapeAndAccess)
{
    Matrix m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    m.at(2, 3) = 7.0f;
    EXPECT_FLOAT_EQ(m.row(2)[3], 7.0f);
    EXPECT_EQ(m.byteSize(), 48u);
    m.fill(0.0f);
    EXPECT_FLOAT_EQ(m.at(2, 3), 0.0f);
}

TEST(Kernels, GemvMatchesManual)
{
    Matrix w(2, 3);
    w.at(0, 0) = 1;
    w.at(0, 1) = 2;
    w.at(0, 2) = 3;
    w.at(1, 0) = -1;
    w.at(1, 1) = 0.5f;
    w.at(1, 2) = 4;
    Vec x = {1, 2, 3};
    Vec y(2);
    gemv(w, x, y);
    EXPECT_FLOAT_EQ(y[0], 14.0f);
    EXPECT_FLOAT_EQ(y[1], 12.0f);
}

TEST(Kernels, GemvTIsTransposeOfGemv)
{
    auto w = randomMatrix(5, 7, 1);
    auto x = randomVec(5, 2);
    Vec y(7);
    gemvT(w, x, y);
    // Reference: y[c] = sum_r w[r][c] x[r]
    for (size_t c = 0; c < 7; ++c) {
        float acc = 0;
        for (size_t r = 0; r < 5; ++r)
            acc += w.at(r, c) * x[r];
        EXPECT_NEAR(y[c], acc, 1e-5f);
    }
}

TEST(Kernels, GemvRowsEqualsGatherOfGemv)
{
    auto w = randomMatrix(16, 8, 3);
    auto x = randomVec(8, 4);
    Vec full(16);
    gemv(w, x, full);
    std::vector<int> rows = {3, 0, 15, 7};
    Vec sliced(rows.size());
    gemvRows(w, rows, x, sliced);
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_FLOAT_EQ(sliced[i], full[static_cast<size_t>(rows[i])]);
}

TEST(Kernels, GemmMatchesNaive)
{
    auto a = randomMatrix(4, 6, 5);
    auto b = randomMatrix(6, 3, 6);
    Matrix out;
    gemm(a, b, out);
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 3; ++j) {
            float acc = 0;
            for (size_t k = 0; k < 6; ++k)
                acc += a.at(i, k) * b.at(k, j);
            EXPECT_NEAR(out.at(i, j), acc, 1e-4f);
        }
    }
}

TEST(Kernels, SoftmaxIsDistribution)
{
    Vec x = {1.0f, 2.0f, 3.0f, -1.0f};
    softmax(x);
    float sum = 0;
    for (float v : x) {
        EXPECT_GT(v, 0.0f);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(x[2], x[1]);
    EXPECT_GT(x[1], x[0]);
}

TEST(Kernels, SoftmaxHandlesLargeLogits)
{
    Vec x = {1000.0f, 999.0f};
    softmax(x);
    EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6f);
    EXPECT_GT(x[0], x[1]);
    EXPECT_FALSE(std::isnan(x[0]));
}

TEST(Kernels, SoftmaxPrefixOnly)
{
    Vec x = {1.0f, 1.0f, 99.0f};
    softmax(x, 2);
    EXPECT_NEAR(x[0], 0.5f, 1e-6f);
    EXPECT_NEAR(x[1], 0.5f, 1e-6f);
    EXPECT_FLOAT_EQ(x[2], 99.0f);
}

TEST(Kernels, ArgmaxAndTopk)
{
    Vec x = {0.1f, 5.0f, -2.0f, 4.9f, 5.0f};
    EXPECT_EQ(argmax(x), 1u); // first of the ties
    auto top = topk(x, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_FLOAT_EQ(top[0].second, 5.0f);
    EXPECT_FLOAT_EQ(top[1].second, 5.0f);
    EXPECT_FLOAT_EQ(top[2].second, 4.9f);
}

TEST(Kernels, TopkClampsK)
{
    Vec x = {1.0f, 2.0f};
    auto top = topk(x, 10);
    EXPECT_EQ(top.size(), 2u);
}

TEST(Kernels, TopkBreaksTiesByIndex)
{
    // Regression: std::partial_sort orders equal keys in an
    // unspecified order, so draft-token selection differed across
    // stdlib implementations. Ties must resolve to ascending index.
    Vec x = {2.0f, 5.0f, 5.0f, 1.0f, 5.0f, 2.0f};
    auto top = topk(x, 5);
    ASSERT_EQ(top.size(), 5u);
    EXPECT_EQ(top[0].first, 1);
    EXPECT_EQ(top[1].first, 2);
    EXPECT_EQ(top[2].first, 4);
    EXPECT_EQ(top[3].first, 0); // the 2.0 tie: index 0 before 5
    EXPECT_EQ(top[4].first, 5);

    // The cut at k must honor the same order: with k = 2 inside the
    // 5.0-tie group, the lowest-index duplicates win.
    auto top2 = topk(x, 2);
    EXPECT_EQ(top2[0].first, 1);
    EXPECT_EQ(top2[1].first, 2);

    // All-equal input comes back as the identity permutation.
    Vec same(8, 3.25f);
    auto all = topk(same, 8);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].first, static_cast<int>(i));
}

TEST(Kernels, SoftmaxAllNegInfIsUniform)
{
    // Regression: a fully-masked row (every logit -inf) underflowed
    // the sum to 0 and produced NaN; the limit is uniform.
    const float ninf = -std::numeric_limits<float>::infinity();
    Vec x = {ninf, ninf, ninf, ninf};
    softmax(x);
    for (float v : x) {
        EXPECT_FALSE(std::isnan(v));
        EXPECT_NEAR(v, 0.25f, 1e-6f);
    }
    // Prefix variant: untouched tail, uniform head.
    Vec y = {ninf, ninf, 7.0f};
    softmax(y, 2);
    EXPECT_NEAR(y[0], 0.5f, 1e-6f);
    EXPECT_NEAR(y[1], 0.5f, 1e-6f);
    EXPECT_FLOAT_EQ(y[2], 7.0f);
    // A finite max among -inf entries still works normally.
    Vec z = {ninf, 1.0f};
    softmax(z);
    EXPECT_FLOAT_EQ(z[0], 0.0f);
    EXPECT_FLOAT_EQ(z[1], 1.0f);
}

TEST(KernelsDeathTest, GemmRejectsAliasedOutput)
{
    // Regression: out.resize() clobbers an aliased operand's storage
    // mid-read; the kernel now refuses aliasing outright.
    auto a = randomMatrix(4, 4, 21);
    auto b = randomMatrix(4, 4, 22);
    EXPECT_DEATH(gemm(a, b, a), "must not alias");
    EXPECT_DEATH(gemm(a, b, b), "must not alias");
}

TEST(Kernels, RmsnormUnitScale)
{
    Vec x = {3.0f, 4.0f};
    Vec w = {1.0f, 1.0f};
    Vec out(2);
    rmsnorm(x, w, out);
    // rms = sqrt((9+16)/2) = sqrt(12.5)
    const float rms = std::sqrt(12.5f + 1e-5f);
    EXPECT_NEAR(out[0], 3.0f / rms, 1e-4f);
    EXPECT_NEAR(out[1], 4.0f / rms, 1e-4f);
}

TEST(Kernels, SiluAndRelu)
{
    Vec x = {-1.0f, 0.0f, 1.0f};
    Vec s = x;
    silu(s);
    EXPECT_NEAR(s[0], -1.0f * sigmoid(-1.0f), 1e-6f);
    EXPECT_FLOAT_EQ(s[1], 0.0f);
    Vec r = x;
    relu(r);
    EXPECT_FLOAT_EQ(r[0], 0.0f);
    EXPECT_FLOAT_EQ(r[2], 1.0f);
}

TEST(Kernels, SigmoidSymmetry)
{
    EXPECT_NEAR(sigmoid(0.0f), 0.5f, 1e-6f);
    EXPECT_NEAR(sigmoid(3.0f) + sigmoid(-3.0f), 1.0f, 1e-6f);
    EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6f);
    EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6f);
}

TEST(Kernels, RopePreservesNorm)
{
    Vec x = randomVec(64, 7);
    const float n_before = norm2(x);
    rope(x, 4, 16, 12);
    EXPECT_NEAR(norm2(x), n_before, 1e-4f);
}

TEST(Kernels, RopePositionZeroIsIdentity)
{
    Vec x = randomVec(32, 8);
    Vec y = x;
    rope(y, 2, 16, 0);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Kernels, RopeRelativePhase)
{
    // The dot product of two rope'd vectors depends only on the
    // position difference (the property attention relies on).
    Vec q = randomVec(16, 9);
    Vec k = randomVec(16, 10);
    auto dot_at = [&](size_t pq, size_t pk) {
        Vec a = q, b = k;
        rope(a, 1, 16, pq);
        rope(b, 1, 16, pk);
        return dot(a, b);
    };
    EXPECT_NEAR(dot_at(5, 3), dot_at(12, 10), 1e-3f);
    EXPECT_NEAR(dot_at(7, 7), dot_at(0, 0), 1e-3f);
}

// --- parameterized shape sweep ------------------------------------------

class GemvShapes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GemvShapes, SlicedAgreesWithFullAcrossShapes)
{
    const auto [rows, cols] = GetParam();
    auto w = randomMatrix(static_cast<size_t>(rows),
                          static_cast<size_t>(cols), 11);
    auto x = randomVec(static_cast<size_t>(cols), 12);
    Vec full(static_cast<size_t>(rows));
    gemv(w, x, full);
    std::vector<int> idx;
    for (int i = 0; i < rows; i += std::max(1, rows / 5))
        idx.push_back(i);
    Vec sliced(idx.size());
    gemvRows(w, idx, x, sliced);
    for (size_t i = 0; i < idx.size(); ++i)
        EXPECT_NEAR(sliced[i], full[static_cast<size_t>(idx[i])], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvShapes,
    ::testing::Values(std::pair{1, 1}, std::pair{4, 64},
                      std::pair{63, 17}, std::pair{128, 96},
                      std::pair{512, 33}, std::pair{1000, 128}));
