/**
 * @file
 * Draft-model tests: calibrated hit rate, slot placement, distinct
 * proposals, hit-rate sweep (parameterized).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "model/draft_model.hh"
#include "oracle/corpus.hh"

using namespace specee;
using namespace specee::model;

namespace {

struct Fixture
{
    ModelConfig cfg = ModelConfig::tiny();
    oracle::SyntheticCorpus corpus{cfg.sim.vocab, 321};
};

} // namespace

TEST(DraftModel, ProposesRequestedCount)
{
    Fixture f;
    DraftModel dlm(f.cfg, f.corpus, 0.9);
    Rng rng(1);
    for (int k : {1, 2, 4, 8}) {
        auto spec = dlm.speculate(17, 200, k, rng);
        EXPECT_EQ(static_cast<int>(spec.size()), k);
    }
}

TEST(DraftModel, ProposalsAreDistinctAndInRange)
{
    Fixture f;
    DraftModel dlm(f.cfg, f.corpus, 0.9);
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        auto spec = dlm.speculate(i % f.cfg.sim.vocab, 100, 4, rng);
        std::vector<int> sorted = spec;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::unique(sorted.begin(), sorted.end()),
                  sorted.end());
        for (int t : spec) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, f.cfg.sim.vocab);
        }
    }
}

TEST(DraftModel, TargetMostlyInTopSlot)
{
    Fixture f;
    DraftModel dlm(f.cfg, f.corpus, 1.0);
    Rng rng(3);
    int slot0 = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        auto spec = dlm.speculate(9, 333, 4, rng);
        ASSERT_NE(std::find(spec.begin(), spec.end(), 333), spec.end());
        slot0 += spec[0] == 333 ? 1 : 0;
    }
    // Strong drafts rank the true token first ~70% of the time.
    EXPECT_NEAR(slot0 / static_cast<double>(n), 0.70, 0.06);
}

TEST(DraftModel, NegativeTargetMeansNoHit)
{
    Fixture f;
    DraftModel dlm(f.cfg, f.corpus, 1.0);
    Rng rng(4);
    // Used for off-chain tree levels: no true target exists.
    auto spec = dlm.speculate(11, -1, 4, rng);
    EXPECT_EQ(spec.size(), 4u);
}

TEST(DraftModel, DistractorsComeFromContext)
{
    Fixture f;
    DraftModel dlm(f.cfg, f.corpus, 0.0);
    Rng rng(5);
    auto spec = dlm.speculate(42, 500, 4, rng);
    // With hit rate 0, proposals are the corpus continuation head.
    auto head = f.corpus.topNext(42, 10);
    for (int t : spec) {
        bool in_head = false;
        for (const auto &[tok, p] : head)
            in_head |= tok == t;
        EXPECT_TRUE(in_head) << "token " << t;
    }
}

class DraftHitSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DraftHitSweep, EmpiricalHitRateMatchesCalibration)
{
    Fixture f;
    const double rate = GetParam();
    DraftModel dlm(f.cfg, f.corpus, rate);
    Rng rng(6);
    int hits = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        auto spec = dlm.speculate(i % 64, 444, 4, rng);
        hits += std::find(spec.begin(), spec.end(), 444) != spec.end()
                    ? 1
                    : 0;
    }
    EXPECT_NEAR(hits / static_cast<double>(n), rate, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Rates, DraftHitSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 0.9, 1.0));
