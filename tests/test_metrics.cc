/**
 * @file
 * Metrics helpers: means, geomean, histogram utilities, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "metrics/stats.hh"
#include "metrics/table.hh"

using namespace specee;
using namespace specee::metrics;

TEST(Stats, MeanAndEmpty)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, GeomeanMatchesDefinition)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanBelowArithmeticMean)
{
    std::vector<double> v = {1.0, 2.0, 10.0};
    EXPECT_LT(geomean(v), mean(v));
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(Stats, StdevSample)
{
    EXPECT_NEAR(stdev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                std::sqrt(32.0 / 7.0), 1e-9);
    EXPECT_DOUBLE_EQ(stdev({1.0}), 0.0);
}

TEST(Stats, MinMax)
{
    std::vector<double> v = {3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 7.0);
    EXPECT_DOUBLE_EQ(minOf({}), 0.0);
}

TEST(Stats, NormalizeHistogram)
{
    auto p = normalize({1, 3, 0, 4});
    EXPECT_DOUBLE_EQ(p[0], 0.125);
    EXPECT_DOUBLE_EQ(p[1], 0.375);
    EXPECT_DOUBLE_EQ(p[2], 0.0);
    EXPECT_DOUBLE_EQ(p[3], 0.5);
    auto zero = normalize({0, 0});
    EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(Stats, HistogramMean)
{
    // Mass at indices 1 and 3 with weights 1:1 -> mean 2.
    EXPECT_DOUBLE_EQ(histogramMean({0, 5, 0, 5}), 2.0);
    EXPECT_DOUBLE_EQ(histogramMean({0, 0}), 0.0);
}

TEST(Stats, PercentileEdgeCases)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    // A single sample is every percentile.
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
    // p0 = min, p100 = max, exactly.
    std::vector<double> v = {5.0, 1.0, 3.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
    // Linear interpolation between order statistics.
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Stats, PercentileSortedMatchesPercentile)
{
    std::vector<double> v = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
    std::vector<double> sorted = v; // already ascending
    for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(percentileSorted(sorted, p), percentile(v, p))
            << "p = " << p;
    }
    EXPECT_DOUBLE_EQ(percentileSorted({}, 50.0), 0.0);
}

TEST(Stats, SummaryClassSortsOnce)
{
    Stats s({3.0, 1.0, 2.0});
    EXPECT_EQ(s.count(), 3u);
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.0);

    const Stats empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(99.0), 0.0);
}

TEST(Stats, SummaryMatchesFreePercentileOnRandomSamples)
{
    // The class must be a pure re-sort hoist: every query agrees
    // bitwise with the copy-and-sort free function.
    std::vector<double> v;
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 257; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v.push_back(static_cast<double>(x % 10007) / 7.0);
    }
    const Stats s(v);
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_DOUBLE_EQ(s.percentile(p), percentile(v, p));
}

TEST(Table, CsvRendering)
{
    Table t("demo");
    t.header({"a", "b"});
    t.row({"1", "2"});
    t.row({"x", "y"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\nx,y\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, ArityMismatchDies)
{
    Table t("demo");
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "arity");
}

TEST(Table, PrintDoesNotCrashWithoutHeader)
{
    Table t("headerless");
    t.row({"a", "b", "c"});
    t.print(); // smoke
    SUCCEED();
}
