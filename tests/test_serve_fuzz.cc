/**
 * @file
 * Randomized scheduler stress harness (ctest label: fuzz).
 *
 * Every seed synthesizes a random serving scenario — arrivals,
 * tiers, deadlines, prompt lengths (GenOptions::prompt_len_override),
 * chunk sizes, iteration budgets, KV budgets, watermarks, preempt
 * modes, batch widths, consumer cancellation, prefix-cache state
 * (shared templates, multi-turn chains, tight cache capacities) —
 * and asserts the scheduler's hard invariants on the result:
 *
 *  1. bit-determinism across worker counts (timeline, counters and
 *     emissions identical for 1 vs 3 workers);
 *  2. no token loss or duplication per request: the delivered stream
 *     is exactly a prefix of the request's isolated Engine::runOne
 *     decode (the full decode for completed requests), each output
 *     index delivered exactly once, in order;
 *  3. device KV occupancy never exceeds the budget, and the host
 *     pool stays empty unless swap preemption is enabled;
 *  4. every request ends in exactly one terminal state
 *     (done / dropped / rejected / cancelled), and the fleet
 *     counters agree with the per-outcome flags;
 *  5. on deadline-free scenarios under KV pressure, `auto` preempt
 *     mode never yields a worse modeled makespan than the dearer of
 *     pure swap / pure recompute on the same stream, and all three
 *     mechanisms deliver identical tokens;
 *  6. sharded fleets (random tp / pp draws): per-iteration stage
 *     occupancy never exceeds the stage count, backfill counters
 *     stay zero whenever the mechanism cannot fire (pp = 1, knob
 *     off, unbounded budget), delivered streams still match the
 *     UNSHARDED isolated decode (sharding re-prices, never
 *     re-tokenizes), and on tp = 1 / pp = 1 draws toggling the
 *     stage knobs is bit-inert;
 *  7. per-consumer backpressure: the deferral counter is zero while
 *     the cap is off, and capped streams still drain to terminal
 *     states (no starvation);
 *  8. fleet topologies (random device counts, prefill/decode
 *     disaggregation, transfer overlap): transfer-byte conservation
 *     (every byte sent over a DMA channel is received, none lost or
 *     duplicated), in-flight accounting engages only while overlap
 *     is on, handoff accounting only on disaggregated draws, every
 *     completed request on a disaggregated fleet crossed the peer
 *     link at least once, and worker-count bit-determinism holds
 *     with all knobs on;
 *  9. observability (random trace / timeline / SLO draws): all three
 *     knobs are bit-inert on emissions and modeled costs; the trace's
 *     decision-event counts reconcile EXACTLY with the fleet counters
 *     (admits, preempts by mechanism, resumes, handoffs, backfill
 *     grants, cache hits, drops, cancels, watermark rejections,
 *     deferrals) and its iteration spans with the iteration count;
 *     step / chunk spans never overlap within one (device, lane)
 *     track; and the merged trace, the timeline windows and the SLO
 *     verdicts are bit-identical across worker counts.
 * 10. adaptive control plane (random controller draws): the knob
 *     trajectory is bit-identical across worker counts, every chosen
 *     knob value is a member of its arm set (frozen knobs never
 *     move), the trace's knob-change events reconcile exactly with
 *     the trajectory, a configured-but-disabled controller is
 *     bit-identical to a controller-free build, and emissions stay
 *     pinned to the isolated reference decode unless the controller
 *     steers the exit thresholds (the one knob allowed to change
 *     WHAT is generated, not just when).
 *
 * The default seed set is fixed (CI runs it in Release and under
 * TSan); SPECEE_FUZZ_SEEDS=<n> widens the sweep locally.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>

#include "serve/server.hh"
#include "test_util.hh"
#include "util/rng.hh"

using namespace specee;

namespace {

/** One randomized scenario drawn from a seed. */
struct Scenario
{
    std::vector<serve::Request> stream;
    serve::ServerOptions opts; ///< workers field overwritten per run
    bool has_deadlines = false;
    uint64_t cancel_id = 0; ///< request to cancel mid-stream
    int cancel_after = 0;   ///< tokens before cancelling; 0 = never
};

Scenario
drawScenario(uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xfa22);
    Scenario sc;

    // --- request stream: interactive shorts + batch longs ----------
    serve::StreamOptions shorts;
    shorts.n_requests = rng.uniformInt(2, 6);
    shorts.gen_len = rng.uniformInt(4, 18);
    shorts.rate_rps = rng.bernoulli(0.5) ? 0.0 : rng.uniform(2.0, 16.0);
    shorts.seed = rng.next();
    serve::StreamOptions longs;
    longs.n_requests = rng.uniformInt(2, 6);
    longs.gen_len = rng.uniformInt(4, 18);
    longs.rate_rps = rng.bernoulli(0.5) ? 0.0 : rng.uniform(1.0, 8.0);
    const int prompt_choices[] = {0, 512, 2048, 4096};
    longs.prompt_len = prompt_choices[rng.uniformInt(0, 3)];
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = rng.next();
    if (rng.bernoulli(0.4)) {
        // Tight-ish deadlines: some requests will drop, queued or
        // mid-flight — both paths must stay invariant-clean.
        longs.deadline_s = rng.uniform(0.2, 2.0);
        sc.has_deadlines = true;
    }
    // Prefix-cache traffic: shared templates and/or multi-turn
    // chains on either substream. Shared prompts must stay
    // invariant-clean whether or not the cache is on (and a run with
    // the cache off but shared prompts present must behave exactly
    // like any other stream).
    const bool cache_on = rng.bernoulli(0.5);
    if (rng.bernoulli(0.5)) {
        shorts.prefix_reuse = rng.uniform(0.3, 1.0);
        if (rng.bernoulli(0.5))
            shorts.turns = rng.uniformInt(2, 3);
    }
    if (rng.bernoulli(0.4)) {
        longs.prefix_reuse = rng.uniform(0.3, 1.0);
        longs.turns = rng.uniformInt(1, 2);
    }
    sc.stream = serve::mergeStreams(serve::synthesizeStream(shorts),
                                    serve::synthesizeStream(longs));

    // --- scheduler knobs -------------------------------------------
    sc.opts.engine = engines::EngineConfig::huggingFace().withSpecEE();
    sc.opts.spec = hw::HardwareSpec::a100();
    sc.opts.sched.max_batch = rng.uniformInt(2, 8);
    const int chunk_choices[] = {0, 64, 256, 1 << 20};
    sc.opts.sched.prefill.chunk_tokens =
        chunk_choices[rng.uniformInt(0, 3)];
    if (sc.opts.sched.prefill.chunk_tokens > 0 && rng.bernoulli(0.5)) {
        sc.opts.sched.prefill.max_tokens_per_iteration =
            2 * std::min(sc.opts.sched.prefill.chunk_tokens, 4096);
    }
    // Biased toward pressure: an unconstrained fleet exercises none
    // of the preemption machinery.
    const int budget_choices[] = {0, 110, 140, 180};
    sc.opts.sched.kv_budget_blocks =
        budget_choices[rng.uniformInt(0, 3)];
    if (sc.opts.sched.kv_budget_blocks > 0)
        sc.opts.sched.max_batch = std::max(sc.opts.sched.max_batch, 5);
    const serve::PreemptMode modes[] = {serve::PreemptMode::Recompute,
                                        serve::PreemptMode::Swap,
                                        serve::PreemptMode::Auto};
    sc.opts.sched.preempt_mode = modes[rng.uniformInt(0, 2)];
    if (sc.opts.sched.kv_budget_blocks > 0 && rng.bernoulli(0.4))
        sc.opts.sched.kv_watermark = rng.uniform(0.6, 1.0);
    sc.opts.sched.prefix_cache.enabled = cache_on;
    if (cache_on) {
        const int cap_choices[] = {0, 24, 64};
        sc.opts.sched.prefix_cache.capacity_blocks =
            cap_choices[rng.uniformInt(0, 2)];
    }

    // --- fleet topology --------------------------------------------
    // Disaggregation needs chunked prefill; unified multi-device and
    // overlapped-transfer draws are unconstrained.
    if (sc.opts.sched.prefill.chunk_tokens > 0 && rng.bernoulli(0.35)) {
        sc.opts.sched.topology.devices = rng.uniformInt(2, 3);
        sc.opts.sched.topology.prefill_devices = 1;
    } else if (rng.bernoulli(0.2)) {
        sc.opts.sched.topology.devices = 2;
    }
    sc.opts.sched.topology.overlap_transfers = rng.bernoulli(0.4);

    // --- sharded fleets --------------------------------------------
    const int tp = rng.bernoulli(0.35) ? 2 : 1;
    const int pp_choices[] = {1, 2, 4};
    const int pp = pp_choices[rng.uniformInt(0, 2)];
    sc.opts.engine = sc.opts.engine.withSharding(tp, pp);
    sc.opts.sched.stage_pricing = rng.bernoulli(0.5);
    sc.opts.sched.stage_backfill = rng.bernoulli(0.5);

    // --- per-consumer backpressure ---------------------------------
    if (rng.bernoulli(0.35)) {
        sc.opts.sched.max_inflight_per_consumer = rng.uniformInt(1, 2);
        const uint64_t consumers =
            static_cast<uint64_t>(rng.uniformInt(1, 3));
        for (auto &r : sc.stream)
            r.consumer = r.id % consumers;
    }

    // --- streaming backpressure ------------------------------------
    if (rng.bernoulli(0.3)) {
        const auto &victim =
            sc.stream[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int>(sc.stream.size()) - 1))];
        sc.cancel_id = victim.id;
        sc.cancel_after = rng.uniformInt(1, 4);
    }

    // --- observability (every knob must be bit-inert) --------------
    sc.opts.sched.trace.enabled = rng.bernoulli(0.5);
    if (rng.bernoulli(0.5))
        sc.opts.sched.timeline.window_s = rng.uniform(0.05, 1.0);
    if (rng.bernoulli(0.5)) {
        sc.opts.sched.slo.interactive.ttft_s = rng.uniform(0.05, 4.0);
        sc.opts.sched.slo.interactive.itl_s = rng.uniform(0.01, 1.0);
        sc.opts.sched.slo.batch.deadline_s = rng.uniform(0.5, 20.0);
    }

    // --- adaptive control plane ------------------------------------
    // Controller-on draws steer live knobs online. Exit-threshold
    // arms legitimately change WHAT is generated, so checkInvariants
    // relaxes only the reference-stream identity for those draws;
    // everything structural still holds.
    if (rng.bernoulli(0.35)) {
        auto &ctl = sc.opts.sched.controller;
        ctl.enabled = true;
        ctl.seed = rng.next();
        ctl.epoch_s = rng.uniform(0.05, 0.5);
        if (sc.opts.sched.prefill.chunk_tokens > 0 &&
            rng.bernoulli(0.5))
            ctl.chunk_arms = {64, 256};
        if (rng.bernoulli(0.5))
            ctl.watermark_arms = {0.5, 0.7, 0.9};
        if (rng.bernoulli(0.5))
            ctl.admit_arms = {0, 1, 2, 4};
        if (rng.bernoulli(0.5)) {
            ctl.interactive_exit_arms = {0.3f, 0.5f, 0.7f};
            ctl.batch_exit_arms = {0.3f, 0.5f, 0.7f};
        }
    }
    // A static fresh-admission cap must stay invariant-clean with or
    // without the controller steering it.
    if (rng.bernoulli(0.25))
        sc.opts.sched.max_admissions_per_iteration =
            rng.uniformInt(0, 2);
    return sc;
}

/** Everything one drain produced, plus the delivered token streams. */
struct RunCapture
{
    serve::ServeReport rep;
    std::map<uint64_t, std::vector<int>> delivered;
};

RunCapture
runScenario(const Scenario &sc, int workers)
{
    serve::ServerOptions opts = sc.opts;
    opts.workers = workers;
    RunCapture cap;
    opts.on_token = [&cap, &sc](const serve::TokenEvent &ev) {
        auto &d = cap.delivered[ev.request_id];
        // In-order, gap-free, duplicate-free delivery.
        EXPECT_EQ(ev.index, static_cast<int>(d.size()))
            << "request " << ev.request_id;
        d.push_back(ev.token);
        if (sc.cancel_after > 0 && ev.request_id == sc.cancel_id)
            return static_cast<int>(d.size()) < sc.cancel_after;
        return true;
    };
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(sc.stream);
    cap.rep = server.drain();
    return cap;
}

/** Per-scenario cache of isolated reference decodes, by request id
 * (ids are unique within a stream and the stream is shared by every
 * run of one scenario, so each ground truth decodes once, not once
 * per worker-count / preempt-mode run). */
using ReferenceCache = std::map<uint64_t, std::vector<int>>;

/** Isolated single-request reference decode (the ground truth). */
const std::vector<int> &
referenceTokens(const serve::Request &r, ReferenceCache &cache)
{
    const auto it = cache.find(r.id);
    if (it != cache.end())
        return it->second;
    const auto &pipe = testutil::tinyPipeline();
    static std::unique_ptr<engines::Engine> engine;
    if (!engine) {
        engine = pipe.makeEngine(
            engines::EngineConfig::huggingFace().withSpecEE(),
            hw::HardwareSpec::a100());
    }
    serve::Request rr = r;
    rr.gen.n_instances = 1;
    // buildPromptWorkload is the prompt-identity authority: it
    // resolves shared PromptSpecs (template/parent chains) the same
    // way the scheduler does, and reduces to the legacy
    // prompt_len_override path for unshared requests.
    const auto w = serve::buildPromptWorkload(
        pipe, rr, engine->config().q4Calibrated());
    auto ref = engine->runOne(w, 0, r.seed);
    return cache.emplace(r.id, std::move(ref.emissions[0].tokens))
        .first->second;
}

void
checkInvariants(const Scenario &sc, const RunCapture &cap,
                ReferenceCache &refs)
{
    const auto &rep = cap.rep;
    const auto &fleet = rep.fleet;

    // (4) every request accounted for, in exactly one terminal state.
    ASSERT_EQ(rep.outcomes.size(), sc.stream.size());
    long done = 0, dropped = 0, cancelled = 0;
    for (const auto &o : rep.outcomes) {
        EXPECT_FALSE(o.dropped && o.cancelled)
            << "request " << o.request.id << " in two terminal states";
        if (o.dropped) {
            ++dropped;
        } else if (o.cancelled) {
            ++cancelled;
        } else {
            ++done;
            ASSERT_EQ(o.result.emissions.size(), 1u)
                << "completed request " << o.request.id
                << " has no finalized emission";
        }
    }
    EXPECT_EQ(dropped, fleet.dropped);
    EXPECT_EQ(cancelled, fleet.cancelled);
    EXPECT_EQ(done + dropped + cancelled,
              static_cast<long>(sc.stream.size()));
    EXPECT_EQ(fleet.rejected, 0); // unbounded ingress in this harness

    // (3) device KV occupancy bounded; host pool only under swap.
    if (sc.opts.sched.kv_budget_blocks > 0) {
        EXPECT_LE(fleet.peak_kv_blocks,
                  sc.opts.sched.kv_budget_blocks);
    }
    if (sc.opts.sched.preempt_mode == serve::PreemptMode::Recompute) {
        EXPECT_EQ(fleet.swaps_out, 0);
        EXPECT_EQ(fleet.peak_host_kv_blocks, 0);
    }
    EXPECT_GE(fleet.swaps_out, fleet.swaps_in);
    if (sc.opts.sched.kv_watermark <= 0.0 &&
        sc.opts.sched.controller.watermark_arms.empty()) {
        EXPECT_EQ(fleet.watermark_rejections, 0);
    }

    // (6) stage occupancy bounded by the fleet's pipeline; backfill
    // can only fire on a sharded fleet with a bounded budget and the
    // knob on.
    EXPECT_EQ(fleet.n_stages, sc.opts.engine.pp);
    EXPECT_LE(fleet.peak_stage_occupancy, fleet.n_stages);
    EXPECT_GE(fleet.peak_stage_occupancy, 0);
    EXPECT_LE(fleet.stage_busy,
              fleet.iterations * static_cast<long>(fleet.n_stages));
    EXPECT_GE(fleet.backfill_tokens, fleet.backfill_grants);
    if (fleet.n_stages == 1 || !sc.opts.sched.stage_backfill ||
        sc.opts.sched.prefill.max_tokens_per_iteration <= 0) {
        EXPECT_EQ(fleet.backfill_grants, 0);
        EXPECT_EQ(fleet.backfill_tokens, 0);
    }

    // (8) transfer-byte conservation and topology-knob gating.
    EXPECT_EQ(fleet.transfer_bytes_sent, fleet.transfer_bytes_received)
        << "DMA byte census out of balance";
    EXPECT_EQ(fleet.n_devices, sc.opts.sched.topology.devices);
    EXPECT_EQ(fleet.n_prefill_devices,
              sc.opts.sched.topology.prefill_devices);
    if (!sc.opts.sched.topology.overlap_transfers) {
        EXPECT_EQ(fleet.transfers_overlapped, 0);
        EXPECT_EQ(fleet.peak_inflight_kv_blocks, 0);
        EXPECT_DOUBLE_EQ(fleet.peak_inflight_mem_gb, 0.0);
        EXPECT_DOUBLE_EQ(fleet.transfer_busy_s, 0.0);
    }
    if (sc.opts.sched.topology.prefill_devices == 0) {
        EXPECT_EQ(fleet.handoffs, 0);
        EXPECT_DOUBLE_EQ(fleet.handoff_gb, 0.0);
        EXPECT_DOUBLE_EQ(fleet.prefill_busy_s, 0.0);
    } else {
        // Every completed request crossed the peer link at least
        // once (re-admissions hand off again).
        EXPECT_GE(fleet.handoffs, done);
        if (done > 0) {
            EXPECT_GT(fleet.handoffs, 0);
            EXPECT_GT(fleet.handoff_gb, 0.0);
        }
    }

    // (7) backpressure off must be inert.
    if (sc.opts.sched.max_inflight_per_consumer <= 0) {
        EXPECT_EQ(fleet.backpressure_deferrals, 0);
    }
    if (!sc.opts.sched.prefix_cache.enabled) {
        // Cache off must be inert, even on streams full of shared
        // prompts.
        EXPECT_EQ(fleet.prefix_hits, 0);
        EXPECT_EQ(fleet.cached_tokens, 0);
        EXPECT_EQ(fleet.cache_evictions, 0);
        EXPECT_EQ(fleet.peak_cached_blocks, 0);
        for (const auto &o : rep.outcomes)
            EXPECT_EQ(o.cached_tokens, 0);
    } else {
        EXPECT_GE(fleet.cached_tokens, 0);
        long hit_outcomes = 0;
        for (const auto &o : rep.outcomes) {
            EXPECT_GE(o.cached_tokens, 0);
            if (o.cached_tokens > 0)
                ++hit_outcomes;
        }
        // Every outcome that kept an adopted prefix came from a hit
        // admission (re-admissions may add more fleet-level hits).
        EXPECT_LE(hit_outcomes, fleet.prefix_hits);
    }

    // (9) observability: off = empty artifacts; on = exact
    // reconciliation with the fleet counters and ordered spans.
    if (!sc.opts.sched.trace.enabled) {
        EXPECT_TRUE(fleet.trace.empty());
    } else {
        std::map<obs::TraceDecision, long> dec;
        long iterations = 0;
        long knob_change_tokens = 0;
        for (const auto &ev : fleet.trace) {
            EXPECT_LE(ev.t0, ev.t1);
            if (ev.kind == obs::TraceKind::Decision) {
                ++dec[ev.decision];
                if (ev.decision == obs::TraceDecision::KnobChange)
                    knob_change_tokens += ev.tokens;
            } else if (ev.kind == obs::TraceKind::Iteration) {
                ++iterations;
            }
        }
        EXPECT_EQ(iterations, fleet.iterations);
        EXPECT_EQ(dec[obs::TraceDecision::Admit], fleet.admissions);
        EXPECT_EQ(dec[obs::TraceDecision::Drop], fleet.dropped);
        EXPECT_EQ(dec[obs::TraceDecision::Cancel], fleet.cancelled);
        EXPECT_EQ(dec[obs::TraceDecision::PreemptSwap] +
                      dec[obs::TraceDecision::PreemptRecompute],
                  fleet.preemptions);
        EXPECT_EQ(dec[obs::TraceDecision::PreemptSwap],
                  fleet.swaps_out);
        EXPECT_EQ(dec[obs::TraceDecision::Resume], fleet.swaps_in);
        EXPECT_EQ(dec[obs::TraceDecision::Handoff], fleet.handoffs);
        EXPECT_EQ(dec[obs::TraceDecision::BackfillGrant],
                  fleet.backfill_grants);
        EXPECT_EQ(dec[obs::TraceDecision::CacheHit],
                  fleet.prefix_hits);
        EXPECT_EQ(dec[obs::TraceDecision::WatermarkReject],
                  fleet.watermark_rejections);
        EXPECT_EQ(dec[obs::TraceDecision::Defer],
                  fleet.backpressure_deferrals);
        // One knob-change instant per epoch that moved something,
        // carrying the number of knobs moved.
        long change_epochs = 0;
        for (const auto &ep : fleet.controller.trajectory)
            if (ep.changed > 0)
                ++change_epochs;
        EXPECT_EQ(dec[obs::TraceDecision::KnobChange], change_epochs);
        EXPECT_EQ(knob_change_tokens, fleet.controller.knob_changes);
        // Execution spans never overlap within one (device, lane)
        // track: a session's span is bounded by its device's
        // iteration time, which is bounded by the clock advance (the
        // merge is t0-ordered, so a single forward sweep suffices).
        std::map<std::pair<int, int>, double> track_end;
        for (const auto &ev : fleet.trace) {
            if (ev.kind != obs::TraceKind::Step &&
                ev.kind != obs::TraceKind::PrefillChunk)
                continue;
            double &end = track_end[{ev.device, ev.lane}];
            EXPECT_GE(ev.t0, end)
                << "span overlap on device " << ev.device << " lane "
                << ev.lane << " at t=" << ev.t0;
            end = std::max(end, ev.t1);
        }
    }
    if (sc.opts.sched.timeline.window_s <= 0.0) {
        EXPECT_TRUE(fleet.timeline.empty());
    } else {
        long tl_iterations = 0;
        for (const auto &w : fleet.timeline) {
            EXPECT_LT(w.t0, w.t1);
            tl_iterations += w.iterations;
            EXPECT_GE(w.tokens, w.slo_tokens);
        }
        EXPECT_EQ(tl_iterations, fleet.iterations);
    }
    if (!sc.opts.sched.slo.any()) {
        EXPECT_EQ(fleet.slo_evaluated, 0);
        for (const auto &o : rep.outcomes)
            EXPECT_FALSE(o.slo.evaluated);
    } else {
        // Every non-cancelled retirement whose tier carries a spec is
        // judged; attainment never exceeds evaluation; a dropped
        // request never attains a configured objective.
        long expect_eval = 0;
        for (const auto &o : rep.outcomes) {
            const bool spec_on =
                sc.opts.sched.slo
                    .tier(static_cast<int>(o.request.priority))
                    .any();
            EXPECT_EQ(o.slo.evaluated, !o.cancelled && spec_on);
            if (o.slo.evaluated)
                ++expect_eval;
            if (o.dropped && spec_on)
                EXPECT_FALSE(o.slo.attained());
        }
        EXPECT_EQ(fleet.slo_evaluated, expect_eval);
        EXPECT_LE(fleet.slo_attained, fleet.slo_evaluated);
    }

    // (10) adaptive control plane: off = no trajectory at all; on =
    // every chosen knob value is a member of its arm set, frozen
    // knobs never leave their static value, and the change counters
    // agree with the trajectory.
    const auto &cop = sc.opts.sched.controller;
    if (!cop.enabled) {
        EXPECT_EQ(fleet.controller.epochs, 0);
        EXPECT_EQ(fleet.controller.knob_changes, 0);
        EXPECT_TRUE(fleet.controller.trajectory.empty());
    } else {
        EXPECT_EQ(fleet.controller.epochs,
                  static_cast<long>(fleet.controller.trajectory.size()));
        const auto member = [](const auto &arms, auto v) {
            return std::find(arms.begin(), arms.end(), v) != arms.end();
        };
        long changes = 0;
        for (const auto &ep : fleet.controller.trajectory) {
            changes += ep.changed;
            if (ep.reward_valid) {
                EXPECT_GE(ep.reward, 0.0);
                EXPECT_LE(ep.reward, 1.0);
            }
            if (!cop.chunk_arms.empty() &&
                sc.opts.sched.prefill.chunk_tokens > 0) {
                EXPECT_TRUE(
                    member(cop.chunk_arms, ep.knobs.chunk_tokens));
            } else {
                EXPECT_EQ(ep.knobs.chunk_tokens,
                          sc.opts.sched.prefill.chunk_tokens);
            }
            if (!cop.watermark_arms.empty()) {
                EXPECT_TRUE(member(cop.watermark_arms,
                                   ep.knobs.kv_watermark));
            } else {
                EXPECT_EQ(ep.knobs.kv_watermark,
                          sc.opts.sched.kv_watermark);
            }
            if (!cop.admit_arms.empty()) {
                EXPECT_TRUE(
                    member(cop.admit_arms,
                           ep.knobs.max_admissions_per_iteration));
            } else {
                EXPECT_EQ(ep.knobs.max_admissions_per_iteration,
                          sc.opts.sched.max_admissions_per_iteration);
            }
            if (!cop.interactive_exit_arms.empty()) {
                EXPECT_TRUE(
                    member(cop.interactive_exit_arms,
                           ep.knobs.interactive_exit_threshold));
            }
            if (!cop.batch_exit_arms.empty()) {
                EXPECT_TRUE(member(cop.batch_exit_arms,
                                   ep.knobs.batch_exit_threshold));
            }
        }
        // A frozen exit knob never moves off its (engine-derived)
        // starting value.
        if (!fleet.controller.trajectory.empty()) {
            const auto &first = fleet.controller.trajectory.front();
            for (const auto &ep : fleet.controller.trajectory) {
                if (cop.interactive_exit_arms.empty()) {
                    EXPECT_EQ(ep.knobs.interactive_exit_threshold,
                              first.knobs.interactive_exit_threshold);
                }
                if (cop.batch_exit_arms.empty()) {
                    EXPECT_EQ(ep.knobs.batch_exit_threshold,
                              first.knobs.batch_exit_threshold);
                }
            }
        }
        EXPECT_EQ(changes, fleet.controller.knob_changes);
    }

    // (2) delivered streams are exact prefixes of the isolated
    // decode; completed requests deliver it in full. Exit-threshold
    // steering is the one knob that changes the generated tokens
    // themselves, so those draws only pin the stream against its own
    // finalized emission.
    const bool emissions_steered =
        cop.enabled && (!cop.interactive_exit_arms.empty() ||
                        !cop.batch_exit_arms.empty());
    long delivered_total = 0;
    for (const auto &o : rep.outcomes) {
        const auto it = cap.delivered.find(o.request.id);
        const std::vector<int> empty;
        const auto &got = it == cap.delivered.end() ? empty : it->second;
        delivered_total += static_cast<long>(got.size());
        if (emissions_steered) {
            if (!o.dropped && !o.cancelled) {
                EXPECT_EQ(o.result.emissions[0].tokens, got);
            }
            continue;
        }
        const auto &ref = referenceTokens(o.request, refs);
        ASSERT_LE(got.size(), ref.size())
            << "request " << o.request.id << " over-delivered";
        EXPECT_TRUE(std::equal(got.begin(), got.end(), ref.begin()))
            << "request " << o.request.id << " diverged from its "
            << "isolated decode";
        if (!o.dropped && !o.cancelled) {
            EXPECT_EQ(got, ref) << "completed request " << o.request.id
                                << " lost tokens";
            EXPECT_EQ(o.result.emissions[0].tokens, ref);
        }
    }
    EXPECT_EQ(delivered_total, fleet.tokens);
}

/** What the sweep exercised, summed over seeds (coverage guard). */
struct Coverage
{
    long preemptions = 0;
    long swaps = 0;
    long dropped = 0;
    long cancelled = 0;
    long watermark = 0;
    long prefill_chunks = 0;
    long prefix_hits = 0;
    long cache_evictions = 0;
    long backfill_tokens = 0;
    long backpressure = 0;
    long handoffs = 0;
    long overlapped = 0;
    long trace_events = 0;
    long timeline_windows = 0;
    long slo_evaluated = 0;
    long controller_epochs = 0;
    long knob_changes = 0;
};

/** Bitwise equality of two merged traces (worker-count invariance). */
void
expectTraceEqual(const std::vector<obs::TraceEvent> &a,
                 const std::vector<obs::TraceEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        EXPECT_EQ(x.kind, y.kind) << "event " << i;
        EXPECT_DOUBLE_EQ(x.t0, y.t0) << "event " << i;
        EXPECT_DOUBLE_EQ(x.t1, y.t1) << "event " << i;
        EXPECT_EQ(x.device, y.device) << "event " << i;
        EXPECT_EQ(x.channel, y.channel) << "event " << i;
        EXPECT_EQ(x.lane, y.lane) << "event " << i;
        EXPECT_EQ(x.request, y.request) << "event " << i;
        EXPECT_EQ(x.decision, y.decision) << "event " << i;
        EXPECT_EQ(x.tokens, y.tokens) << "event " << i;
        EXPECT_EQ(x.deepest_layer, y.deepest_layer) << "event " << i;
        EXPECT_EQ(x.stages_used, y.stages_used) << "event " << i;
        EXPECT_EQ(x.batch, y.batch) << "event " << i;
        EXPECT_EQ(x.prefilling, y.prefilling) << "event " << i;
        EXPECT_EQ(x.seq, y.seq) << "event " << i;
        EXPECT_EQ(x.op_s, y.op_s) << "event " << i;
    }
}

/**
 * Directed high-pressure scenarios run ahead of the random sweep:
 * they pin the swap / auto / watermark machinery under guaranteed KV
 * pressure, so the coverage guard below cannot be starved by an
 * unlucky random draw while every scenario still flows through the
 * exact same invariant checks.
 */
std::vector<Scenario>
directedScenarios()
{
    std::vector<Scenario> out;
    for (const auto mode :
         {serve::PreemptMode::Swap, serve::PreemptMode::Auto}) {
        serve::StreamOptions shorts;
        shorts.n_requests = 3;
        shorts.gen_len = 16;
        shorts.seed = 0xbeef;
        serve::StreamOptions longs;
        longs.n_requests = 3;
        longs.gen_len = 16;
        longs.prompt_len = 2048;
        longs.priority = serve::Priority::Batch;
        longs.id_base = 100;
        longs.seed = 0xf00d;
        Scenario sc;
        sc.stream = serve::mergeStreams(serve::synthesizeStream(shorts),
                                        serve::synthesizeStream(longs));
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 6;
        sc.opts.sched.prefill.chunk_tokens = 128;
        sc.opts.sched.kv_budget_blocks = 150;
        sc.opts.sched.preempt_mode = mode;
        if (mode == serve::PreemptMode::Auto)
            sc.opts.sched.kv_watermark = 0.85;
        out.push_back(std::move(sc));
    }
    {
        // Prefix-cache coverage: full template reuse plus multi-turn
        // chains under a tiny cache capacity guarantees both hits
        // and LRU evictions.
        serve::StreamOptions so;
        so.n_requests = 10;
        so.gen_len = 10;
        so.prompt_len = 512;
        so.prefix_reuse = 1.0;
        so.turns = 2;
        so.seed = 0xca5e;
        Scenario sc;
        sc.stream = serve::synthesizeStream(so);
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 2;
        sc.opts.sched.prefill.chunk_tokens = 64;
        sc.opts.sched.prefix_cache.enabled = true;
        sc.opts.sched.prefix_cache.capacity_blocks = 16;
        out.push_back(std::move(sc));
    }
    {
        // Deadline + cancellation coverage: one long prompt expires
        // mid-prefill, one interactive stream is cancelled by its
        // consumer after three tokens.
        serve::StreamOptions so;
        so.n_requests = 4;
        so.gen_len = 12;
        so.prompt_len = 4096;
        so.seed = 0xd00d;
        Scenario sc;
        sc.stream = serve::synthesizeStream(so);
        sc.stream[1].deadline_s = 1e-6;
        sc.has_deadlines = true;
        sc.cancel_id = sc.stream[2].id;
        sc.cancel_after = 3;
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 4;
        sc.opts.sched.prefill.chunk_tokens = 256;
        out.push_back(std::move(sc));
    }
    {
        // Pipeline-backfill coverage: a pp = 4 SpecEE fleet under a
        // one-token iteration budget starves prefill chunks behind
        // any decode peer, so the only extra grants ride the stages
        // last iteration's early exits freed.
        serve::StreamOptions so;
        so.n_requests = 6;
        so.gen_len = 16;
        so.prompt_len = 48;
        so.seed = 0x57a6e;
        Scenario sc;
        sc.stream = serve::synthesizeStream(so);
        sc.opts.engine = engines::EngineConfig::huggingFace()
                             .withSpecEE()
                             .withSharding(1, 4);
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 2;
        sc.opts.sched.prefill.chunk_tokens = 4;
        sc.opts.sched.prefill.max_tokens_per_iteration = 1;
        out.push_back(std::move(sc));
    }
    {
        // Disaggregation + overlap coverage: a 1-prefill/2-decode
        // fleet with overlapped transfers under swap pressure
        // guarantees handoffs, overlapped swaps and the in-flight
        // census all engage.
        serve::StreamOptions shorts;
        shorts.n_requests = 3;
        shorts.gen_len = 16;
        shorts.seed = 0xd15a;
        serve::StreamOptions longs;
        longs.n_requests = 3;
        longs.gen_len = 16;
        longs.prompt_len = 2048;
        longs.priority = serve::Priority::Batch;
        longs.id_base = 100;
        longs.seed = 0x66a0;
        Scenario sc;
        sc.stream = serve::mergeStreams(serve::synthesizeStream(shorts),
                                        serve::synthesizeStream(longs));
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 6;
        sc.opts.sched.prefill.chunk_tokens = 128;
        sc.opts.sched.kv_budget_blocks = 220;
        sc.opts.sched.preempt_mode = serve::PreemptMode::Swap;
        sc.opts.disaggregate(1, 2);
        // Observability coverage: trace + timeline + both tiers'
        // SLOs on the richest topology, so the reconciliation and
        // determinism checks can never be starved by random draws.
        sc.opts.sched.trace.enabled = true;
        sc.opts.sched.timeline.window_s = 0.25;
        sc.opts.sched.slo.interactive.ttft_s = 1.0;
        sc.opts.sched.slo.interactive.itl_s = 0.25;
        sc.opts.sched.slo.batch.deadline_s = 30.0;
        out.push_back(std::move(sc));
    }
    {
        // Adaptive-control coverage: every knob armed under fast
        // epochs, KV pressure, trace and both tiers' SLOs —
        // guarantees decision epochs, knob changes and the
        // knob-change trace reconciliation engage regardless of the
        // random draws.
        serve::StreamOptions shorts;
        shorts.n_requests = 4;
        shorts.gen_len = 16;
        shorts.seed = 0xad41;
        serve::StreamOptions longs;
        longs.n_requests = 3;
        longs.gen_len = 12;
        longs.prompt_len = 2048;
        longs.priority = serve::Priority::Batch;
        longs.id_base = 100;
        longs.seed = 0xad42;
        Scenario sc;
        sc.stream = serve::mergeStreams(serve::synthesizeStream(shorts),
                                        serve::synthesizeStream(longs));
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 4;
        sc.opts.sched.prefill.chunk_tokens = 128;
        sc.opts.sched.kv_budget_blocks = 150;
        sc.opts.sched.preempt_mode = serve::PreemptMode::Swap;
        sc.opts.sched.kv_watermark = 0.9;
        sc.opts.sched.trace.enabled = true;
        sc.opts.sched.timeline.window_s = 0.25;
        sc.opts.sched.slo.interactive.ttft_s = 0.5;
        sc.opts.sched.slo.interactive.itl_s = 0.1;
        sc.opts.sched.slo.batch.deadline_s = 20.0;
        auto &ctl = sc.opts.sched.controller;
        ctl.enabled = true;
        ctl.seed = 7;
        ctl.epoch_s = 0.05;
        ctl.chunk_arms = {64, 256};
        ctl.watermark_arms = {0.6, 0.9};
        ctl.admit_arms = {0, 2};
        ctl.interactive_exit_arms = {0.3f, 0.6f};
        ctl.batch_exit_arms = {0.3f, 0.6f};
        out.push_back(std::move(sc));
    }
    {
        // Backpressure coverage: one consumer, cap 1 — every
        // boundary with queued peers defers, yet the stream drains.
        serve::StreamOptions so;
        so.n_requests = 5;
        so.gen_len = 10;
        so.seed = 0xcafe;
        Scenario sc;
        sc.stream = serve::synthesizeStream(so);
        sc.opts.engine =
            engines::EngineConfig::huggingFace().withSpecEE();
        sc.opts.spec = hw::HardwareSpec::a100();
        sc.opts.sched.max_batch = 4;
        sc.opts.sched.max_inflight_per_consumer = 1;
        out.push_back(std::move(sc));
    }
    return out;
}

void
fuzzScenario(const Scenario &sc, Coverage &cov)
{

    // (1) worker-count bit-determinism.
    ReferenceCache refs;
    const RunCapture r1 = runScenario(sc, 1);
    const RunCapture r3 = runScenario(sc, 3);
    checkInvariants(sc, r1, refs);
    checkInvariants(sc, r3, refs);
    cov.preemptions += r1.rep.fleet.preemptions;
    cov.swaps += r1.rep.fleet.swaps_out;
    cov.dropped += r1.rep.fleet.dropped;
    cov.cancelled += r1.rep.fleet.cancelled;
    cov.watermark += r1.rep.fleet.watermark_rejections;
    cov.prefill_chunks += r1.rep.fleet.prefill_chunks;
    cov.prefix_hits += r1.rep.fleet.prefix_hits;
    cov.cache_evictions += r1.rep.fleet.cache_evictions;
    cov.backfill_tokens += r1.rep.fleet.backfill_tokens;
    cov.backpressure += r1.rep.fleet.backpressure_deferrals;
    cov.handoffs += r1.rep.fleet.handoffs;
    cov.overlapped += r1.rep.fleet.transfers_overlapped;
    cov.trace_events += static_cast<long>(r1.rep.fleet.trace.size());
    cov.timeline_windows +=
        static_cast<long>(r1.rep.fleet.timeline.size());
    cov.slo_evaluated += r1.rep.fleet.slo_evaluated;
    cov.controller_epochs += r1.rep.fleet.controller.epochs;
    cov.knob_changes += r1.rep.fleet.controller.knob_changes;
    EXPECT_DOUBLE_EQ(r1.rep.fleet.makespan_s, r3.rep.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r1.rep.fleet.energy_j, r3.rep.fleet.energy_j);
    EXPECT_EQ(r1.rep.fleet.tokens, r3.rep.fleet.tokens);
    EXPECT_EQ(r1.rep.fleet.iterations, r3.rep.fleet.iterations);
    EXPECT_EQ(r1.rep.fleet.preemptions, r3.rep.fleet.preemptions);
    EXPECT_EQ(r1.rep.fleet.swaps_out, r3.rep.fleet.swaps_out);
    EXPECT_EQ(r1.rep.fleet.swaps_in, r3.rep.fleet.swaps_in);
    EXPECT_EQ(r1.rep.fleet.watermark_rejections,
              r3.rep.fleet.watermark_rejections);
    EXPECT_EQ(r1.rep.fleet.dropped, r3.rep.fleet.dropped);
    EXPECT_EQ(r1.rep.fleet.cancelled, r3.rep.fleet.cancelled);
    EXPECT_EQ(r1.rep.fleet.prefix_hits, r3.rep.fleet.prefix_hits);
    EXPECT_EQ(r1.rep.fleet.cached_tokens, r3.rep.fleet.cached_tokens);
    EXPECT_EQ(r1.rep.fleet.cache_evictions,
              r3.rep.fleet.cache_evictions);
    EXPECT_EQ(r1.rep.fleet.peak_cached_blocks,
              r3.rep.fleet.peak_cached_blocks);
    EXPECT_EQ(r1.rep.fleet.stage_busy, r3.rep.fleet.stage_busy);
    EXPECT_EQ(r1.rep.fleet.peak_stage_occupancy,
              r3.rep.fleet.peak_stage_occupancy);
    EXPECT_EQ(r1.rep.fleet.backfill_grants,
              r3.rep.fleet.backfill_grants);
    EXPECT_EQ(r1.rep.fleet.backfill_tokens,
              r3.rep.fleet.backfill_tokens);
    EXPECT_EQ(r1.rep.fleet.backpressure_deferrals,
              r3.rep.fleet.backpressure_deferrals);
    EXPECT_EQ(r1.rep.fleet.handoffs, r3.rep.fleet.handoffs);
    EXPECT_DOUBLE_EQ(r1.rep.fleet.handoff_gb, r3.rep.fleet.handoff_gb);
    EXPECT_EQ(r1.rep.fleet.transfers_overlapped,
              r3.rep.fleet.transfers_overlapped);
    EXPECT_EQ(r1.rep.fleet.transfer_bytes_sent,
              r3.rep.fleet.transfer_bytes_sent);
    EXPECT_EQ(r1.rep.fleet.peak_inflight_kv_blocks,
              r3.rep.fleet.peak_inflight_kv_blocks);
    EXPECT_DOUBLE_EQ(r1.rep.fleet.prefill_busy_s,
                     r3.rep.fleet.prefill_busy_s);
    EXPECT_DOUBLE_EQ(r1.rep.fleet.transfer_busy_s,
                     r3.rep.fleet.transfer_busy_s);
    EXPECT_EQ(r1.delivered, r3.delivered);
    ASSERT_EQ(r1.rep.outcomes.size(), r3.rep.outcomes.size());
    for (size_t i = 0; i < r1.rep.outcomes.size(); ++i) {
        const auto &a = r1.rep.outcomes[i];
        const auto &b = r3.rep.outcomes[i];
        EXPECT_DOUBLE_EQ(a.ttft_s, b.ttft_s);
        EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_EQ(a.swaps, b.swaps);
        EXPECT_EQ(a.cached_tokens, b.cached_tokens);
        EXPECT_EQ(a.slo.evaluated, b.slo.evaluated);
        EXPECT_EQ(a.slo.attained(), b.slo.attained());
        EXPECT_DOUBLE_EQ(a.max_itl_s, b.max_itl_s);
    }

    // (9) the observability artifacts themselves are bit-identical
    // across worker counts: shards merge back into one sequence.
    expectTraceEqual(r1.rep.fleet.trace, r3.rep.fleet.trace);
    ASSERT_EQ(r1.rep.fleet.timeline.size(), r3.rep.fleet.timeline.size());
    for (size_t i = 0; i < r1.rep.fleet.timeline.size(); ++i) {
        const auto &a = r1.rep.fleet.timeline[i];
        const auto &b = r3.rep.fleet.timeline[i];
        EXPECT_DOUBLE_EQ(a.t0, b.t0);
        EXPECT_EQ(a.iterations, b.iterations);
        EXPECT_EQ(a.tokens, b.tokens);
        EXPECT_EQ(a.slo_tokens, b.slo_tokens);
        EXPECT_DOUBLE_EQ(a.p99_ttft_s, b.p99_ttft_s);
        EXPECT_DOUBLE_EQ(a.p99_itl_s, b.p99_itl_s);
        EXPECT_EQ(a.peak_kv_blocks, b.peak_kv_blocks);
        EXPECT_DOUBLE_EQ(a.transfer_busy_s, b.transfer_busy_s);
        EXPECT_EQ(a.exit_hist, b.exit_hist);
    }
    EXPECT_EQ(r1.rep.fleet.slo_evaluated, r3.rep.fleet.slo_evaluated);
    EXPECT_EQ(r1.rep.fleet.slo_attained, r3.rep.fleet.slo_attained);
    EXPECT_DOUBLE_EQ(r1.rep.fleet.goodput_under_slo,
                     r3.rep.fleet.goodput_under_slo);

    // (10) the knob trajectory is a pure function of the modeled
    // run: bit-identical across worker counts, epoch by epoch.
    const auto &c1 = r1.rep.fleet.controller;
    const auto &c3 = r3.rep.fleet.controller;
    EXPECT_EQ(c1.epochs, c3.epochs);
    EXPECT_EQ(c1.knob_changes, c3.knob_changes);
    ASSERT_EQ(c1.trajectory.size(), c3.trajectory.size());
    for (size_t i = 0; i < c1.trajectory.size(); ++i) {
        const auto &a = c1.trajectory[i];
        const auto &b = c3.trajectory[i];
        EXPECT_EQ(a.epoch, b.epoch) << "epoch " << i;
        EXPECT_DOUBLE_EQ(a.t, b.t) << "epoch " << i;
        EXPECT_DOUBLE_EQ(a.reward, b.reward) << "epoch " << i;
        EXPECT_EQ(a.reward_valid, b.reward_valid) << "epoch " << i;
        EXPECT_EQ(a.changed, b.changed) << "epoch " << i;
        EXPECT_EQ(a.knobs.chunk_tokens, b.knobs.chunk_tokens);
        EXPECT_DOUBLE_EQ(a.knobs.kv_watermark, b.knobs.kv_watermark);
        EXPECT_EQ(a.knobs.max_admissions_per_iteration,
                  b.knobs.max_admissions_per_iteration);
        EXPECT_EQ(a.knobs.interactive_exit_threshold,
                  b.knobs.interactive_exit_threshold);
        EXPECT_EQ(a.knobs.batch_exit_threshold,
                  b.knobs.batch_exit_threshold);
    }

    // (9) all three observability knobs together are bit-inert: the
    // same scenario with every knob off reproduces the modeled run
    // exactly and produces no artifacts. Not claimed for
    // controller-on draws — the controller deliberately closes the
    // observability loop (its rewards read the SLO verdicts), so
    // there the disabled-controller inertness check below takes
    // over.
    if (!sc.opts.sched.controller.enabled &&
        (sc.opts.sched.trace.enabled ||
         sc.opts.sched.timeline.window_s > 0.0 ||
         sc.opts.sched.slo.any())) {
        Scenario plain = sc;
        plain.opts.sched.trace.enabled = false;
        plain.opts.sched.timeline.window_s = 0.0;
        plain.opts.sched.slo = obs::TierSlo{};
        const RunCapture rp = runScenario(plain, 1);
        EXPECT_DOUBLE_EQ(r1.rep.fleet.makespan_s,
                         rp.rep.fleet.makespan_s);
        EXPECT_DOUBLE_EQ(r1.rep.fleet.energy_j, rp.rep.fleet.energy_j);
        EXPECT_EQ(r1.rep.fleet.tokens, rp.rep.fleet.tokens);
        EXPECT_EQ(r1.rep.fleet.iterations, rp.rep.fleet.iterations);
        EXPECT_EQ(r1.rep.fleet.preemptions, rp.rep.fleet.preemptions);
        EXPECT_DOUBLE_EQ(r1.rep.fleet.p99_latency_s,
                         rp.rep.fleet.p99_latency_s);
        EXPECT_EQ(r1.delivered, rp.delivered);
        EXPECT_TRUE(rp.rep.fleet.trace.empty());
        EXPECT_TRUE(rp.rep.fleet.timeline.empty());
        EXPECT_EQ(rp.rep.fleet.slo_evaluated, 0);
    }

    // (10) a configured-but-disabled controller is bit-inert: it
    // reproduces a run with no controller configured at all, and the
    // strict reference-stream identity holds again.
    if (sc.opts.sched.controller.enabled) {
        Scenario off = sc;
        off.opts.sched.controller.enabled = false;
        Scenario none = sc;
        none.opts.sched.controller = serve::ControllerOptions{};
        const RunCapture ro = runScenario(off, 1);
        const RunCapture rn = runScenario(none, 1);
        checkInvariants(none, rn, refs);
        EXPECT_DOUBLE_EQ(ro.rep.fleet.makespan_s,
                         rn.rep.fleet.makespan_s);
        EXPECT_DOUBLE_EQ(ro.rep.fleet.energy_j, rn.rep.fleet.energy_j);
        EXPECT_EQ(ro.rep.fleet.tokens, rn.rep.fleet.tokens);
        EXPECT_EQ(ro.rep.fleet.iterations, rn.rep.fleet.iterations);
        EXPECT_EQ(ro.rep.fleet.preemptions, rn.rep.fleet.preemptions);
        EXPECT_EQ(ro.delivered, rn.delivered);
        EXPECT_EQ(ro.rep.fleet.controller.epochs, 0);
        EXPECT_TRUE(ro.rep.fleet.controller.trajectory.empty());
    }

    // (5) auto is never worse than the dearer fixed mechanism on the
    // same stream (comparable only when no deadline/cancel path can
    // change WHAT runs between modes, and no controller retunes the
    // knobs differently per mode).
    if (sc.opts.sched.kv_budget_blocks > 0 && !sc.has_deadlines &&
        sc.cancel_after == 0 && !sc.opts.sched.controller.enabled) {
        Scenario fixed = sc;
        fixed.opts.sched.preempt_mode = serve::PreemptMode::Recompute;
        const RunCapture rec = runScenario(fixed, 1);
        fixed.opts.sched.preempt_mode = serve::PreemptMode::Swap;
        const RunCapture swp = runScenario(fixed, 1);
        fixed.opts.sched.preempt_mode = serve::PreemptMode::Auto;
        const RunCapture aut = runScenario(fixed, 1);
        checkInvariants(fixed, rec, refs);
        checkInvariants(fixed, swp, refs);
        checkInvariants(fixed, aut, refs);
        cov.swaps += swp.rep.fleet.swaps_out;
        const double dearer = std::max(rec.rep.fleet.makespan_s,
                                       swp.rep.fleet.makespan_s);
        EXPECT_LE(aut.rep.fleet.makespan_s, dearer * (1.0 + 1e-9))
            << "auto lost to both fixed preempt modes";
        EXPECT_EQ(aut.delivered, rec.delivered);
        EXPECT_EQ(aut.delivered, swp.delivered);
    }

    // (6) degenerate fleets: on a tp = 1 / pp = 1 draw the stage
    // knobs must be bit-inert — flipping both changes nothing.
    if (sc.opts.engine.tp == 1 && sc.opts.engine.pp == 1) {
        Scenario toggled = sc;
        toggled.opts.sched.stage_pricing =
            !sc.opts.sched.stage_pricing;
        toggled.opts.sched.stage_backfill =
            !sc.opts.sched.stage_backfill;
        const RunCapture rt = runScenario(toggled, 1);
        EXPECT_DOUBLE_EQ(r1.rep.fleet.makespan_s,
                         rt.rep.fleet.makespan_s);
        EXPECT_DOUBLE_EQ(r1.rep.fleet.energy_j, rt.rep.fleet.energy_j);
        EXPECT_EQ(r1.rep.fleet.tokens, rt.rep.fleet.tokens);
        EXPECT_EQ(r1.rep.fleet.iterations, rt.rep.fleet.iterations);
        EXPECT_EQ(r1.delivered, rt.delivered);
    }
}

} // namespace

TEST(ServeFuzz, RandomizedSchedulerInvariants)
{
    // Fixed CI seed set; SPECEE_FUZZ_SEEDS widens the sweep locally.
    int n_seeds = 8;
    if (const char *env = std::getenv("SPECEE_FUZZ_SEEDS"))
        n_seeds = std::max(1, std::atoi(env));
    Coverage cov;
    for (const Scenario &sc : directedScenarios()) {
        SCOPED_TRACE("directed scenario");
        fuzzScenario(sc, cov);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    for (uint64_t seed = 1; seed <= static_cast<uint64_t>(n_seeds);
         ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        fuzzScenario(drawScenario(seed), cov);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // The sweep must actually exercise every mechanism it claims to
    // stress — a harness whose random draws stopped reaching the
    // preemption / swap / drop / cancel / watermark paths would pass
    // vacuously.
    EXPECT_GT(cov.preemptions, 0);
    EXPECT_GT(cov.swaps, 0);
    EXPECT_GT(cov.dropped, 0);
    EXPECT_GT(cov.cancelled, 0);
    EXPECT_GT(cov.watermark, 0);
    EXPECT_GT(cov.prefill_chunks, 0);
    EXPECT_GT(cov.prefix_hits, 0);
    EXPECT_GT(cov.cache_evictions, 0);
    EXPECT_GT(cov.backfill_tokens, 0);
    EXPECT_GT(cov.backpressure, 0);
    EXPECT_GT(cov.handoffs, 0);
    EXPECT_GT(cov.overlapped, 0);
    EXPECT_GT(cov.trace_events, 0);
    EXPECT_GT(cov.timeline_windows, 0);
    EXPECT_GT(cov.slo_evaluated, 0);
    EXPECT_GT(cov.controller_epochs, 0);
    EXPECT_GT(cov.knob_changes, 0);
}
