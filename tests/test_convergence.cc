/**
 * @file
 * Convergence-process tests: the three calibrated statistics the
 * paper's techniques exploit — skewed layer distribution (Fig. 10),
 * context similarity (Fig. 11), dataset-dependent means (Table 4).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "metrics/stats.hh"
#include "oracle/convergence.hh"

using namespace specee;
using namespace specee::oracle;

namespace {

ConvergenceParams
params32(double mean = 21.0, double ctx = 0.68)
{
    ConvergenceParams p;
    p.n_layers = 32;
    p.mean_layer = mean;
    p.context_strength = ctx;
    return p;
}

} // namespace

TEST(Convergence, SkewedDistIsNormalized)
{
    auto d = ConvergenceProcess::makeSkewedDist(31, 21.0, 5, 7);
    double total = 0.0;
    for (float p : d)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-5);
    for (float p : d)
        EXPECT_GT(p, 0.0f); // uniform floor
}

TEST(Convergence, SkewMatchesFig10)
{
    // Fig. 10(a): the bottom-50% layers by frequency hold < 20% of
    // the exit mass; ~50% of layers are below the 1/31 average.
    auto d = ConvergenceProcess::makeSkewedDist(31, 21.0, 5, 7);
    std::vector<float> sorted = d;
    std::sort(sorted.begin(), sorted.end());
    double bottom = 0.0;
    for (size_t i = 0; i < sorted.size() / 2; ++i)
        bottom += sorted[i];
    EXPECT_LT(bottom, 0.20);

    int below_avg = 0;
    for (float p : d)
        below_avg += p < 1.0f / 31.0f ? 1 : 0;
    EXPECT_GE(below_avg, 12);
    EXPECT_LE(below_avg, 24);
}

TEST(Convergence, MeanIsControllable)
{
    for (double target : {15.0, 21.0, 25.0}) {
        ConvergenceProcess proc(params32(target, 0.0));
        Rng rng(1);
        double sum = 0.0;
        const int n = 4000;
        int counted = 0;
        ConvergenceParams p = proc.params();
        (void)p;
        for (int i = 0; i < n; ++i) {
            int c = proc.next(rng);
            if (c <= proc.maxExitLayer()) {
                sum += c;
                ++counted;
            }
        }
        EXPECT_NEAR(sum / counted, target, 2.5) << "target " << target;
    }
}

TEST(Convergence, HardTokensNeverExitEarly)
{
    auto p = params32();
    p.hard_token_rate = 0.5;
    ConvergenceProcess proc(p);
    Rng rng(2);
    int hard = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        if (proc.next(rng) > proc.maxExitLayer())
            ++hard;
    }
    EXPECT_NEAR(hard / static_cast<double>(n), 0.5, 0.05);
}

TEST(Convergence, ContextSimilarityMatchesFig11)
{
    // Fig. 11: the exit layer falls within +/-2 of one of the last 5
    // exits ~80% of the time.
    ConvergenceProcess proc(params32());
    Rng rng(3);
    std::deque<int> last5;
    int hits = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        int c = proc.next(rng);
        if (c > proc.maxExitLayer()) {
            continue; // hard token: no exit recorded
        }
        if (static_cast<int>(last5.size()) == 5) {
            bool near = false;
            for (int prev : last5)
                near |= std::abs(c - prev) <= 2;
            hits += near ? 1 : 0;
            ++total;
        }
        last5.push_back(c);
        if (last5.size() > 5)
            last5.pop_front();
    }
    const double hit_ratio = static_cast<double>(hits) / total;
    EXPECT_GT(hit_ratio, 0.72);
    EXPECT_LT(hit_ratio, 0.92);
}

TEST(Convergence, ActualHitRatioBeatsTheoretical)
{
    // Fig. 11's comparison: the *theoretical* hit ratio is the union
    // size of the last-5 exits' +/-2 neighbourhoods over the layer
    // count (~10.2/32 ~= 32%); the *actual* hit ratio is ~80%.
    ConvergenceProcess proc(params32());
    Rng rng(4);
    std::deque<int> last5;
    int hits = 0, total = 0;
    double union_sum = 0.0;
    for (int i = 0; i < 8000; ++i) {
        int c = proc.next(rng);
        if (c > proc.maxExitLayer())
            continue;
        if (static_cast<int>(last5.size()) == 5) {
            std::vector<bool> in_union(32, false);
            bool near = false;
            for (int prev : last5) {
                near |= std::abs(c - prev) <= 2;
                for (int l = std::max(0, prev - 2);
                     l <= std::min(31, prev + 2); ++l)
                    in_union[static_cast<size_t>(l)] = true;
            }
            hits += near ? 1 : 0;
            union_sum += std::count(in_union.begin(), in_union.end(),
                                    true);
            ++total;
        }
        last5.push_back(c);
        if (last5.size() > 5)
            last5.pop_front();
    }
    const double actual = static_cast<double>(hits) / total;
    const double theoretical = union_sum / total / 32.0;
    EXPECT_LT(theoretical, 0.55);
    EXPECT_GT(actual, theoretical + 0.25);
}

TEST(Convergence, ResetClearsHistory)
{
    ConvergenceProcess proc(params32(21.0, 1.0));
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        proc.next(rng);
    proc.reset();
    // With probability context_strength=1 but empty history, the next
    // draw must come from the base distribution (no crash, in range).
    int c = proc.next(rng);
    EXPECT_GE(c, 0);
    EXPECT_LE(c, proc.maxExitLayer() + 1);
}

TEST(Convergence, DifferentSeedsDifferentSkewShapes)
{
    auto a = ConvergenceProcess::makeSkewedDist(31, 21.0, 5, 1);
    auto b = ConvergenceProcess::makeSkewedDist(31, 21.0, 5, 2);
    double l1 = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        l1 += std::abs(a[i] - b[i]);
    EXPECT_GT(l1, 0.2); // Fig. 10(a) vs (c): model-dependent shapes
}
