/**
 * @file
 * Transfer-engine + disaggregated-fleet tests: DMA channel
 * serialization and busy accounting, block-granular transfer pins on
 * the paged pool, the off-by-default inertness of TopologyOptions
 * (emissions AND modeled costs bit-identical to the serialized
 * scheduler), overlap-on changing only timing (tokens bit-identical,
 * makespan never worse), a fully hidden swap-in adding zero
 * critical-path seconds, and prefill/decode disaggregation: lossless
 * emissions, per-request handoff pricing, byte conservation and
 * worker-count determinism with every knob on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hw/cost_model.hh"
#include "model/paged_kv.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

namespace {

serve::ServerOptions
baseOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

/** Short interactive + long-prompt batch mix, all arriving at t=0. */
std::vector<serve::Request>
mixedStream(int n_short, int n_long, int long_prompt, int gen_len)
{
    serve::StreamOptions shorts;
    shorts.n_requests = n_short;
    shorts.gen_len = gen_len;
    shorts.seed = 0xbeef;
    serve::StreamOptions longs;
    longs.n_requests = n_long;
    longs.gen_len = gen_len;
    longs.prompt_len = long_prompt;
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = 0xf00d;
    return serve::mergeStreams(serve::synthesizeStream(shorts),
                               serve::synthesizeStream(longs));
}

serve::ServeReport
serveStream(const serve::ServerOptions &opts,
            const std::vector<serve::Request> &stream)
{
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(stream);
    return server.drain();
}

void
expectSameTokens(const serve::ServeReport &a, const serve::ServeReport &b)
{
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].result.emissions[0].tokens,
                  b.outcomes[i].result.emissions[0].tokens)
            << "request " << i;
    }
}

tensor::Vec
vec(int hidden, float base)
{
    tensor::Vec v(static_cast<size_t>(hidden));
    for (int i = 0; i < hidden; ++i)
        v[static_cast<size_t>(i)] = base + static_cast<float>(i);
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// hw::TransferEngine channel mechanics
// ---------------------------------------------------------------------------

TEST(TransferEngine, ChannelsSerializeAndAccumulateBusy)
{
    hw::TransferEngine xfer(2);
    EXPECT_EQ(xfer.nDevices(), 2);
    EXPECT_DOUBLE_EQ(xfer.freeAt(0, hw::DmaChannel::Host), 0.0);

    // Back-to-back submits on one channel queue behind each other.
    EXPECT_DOUBLE_EQ(xfer.submit(0, hw::DmaChannel::Host, 1.0, 2.0), 3.0);
    EXPECT_DOUBLE_EQ(xfer.submit(0, hw::DmaChannel::Host, 1.5, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(xfer.freeAt(0, hw::DmaChannel::Host), 4.0);

    // A later idle gap restarts at `now`, not at the old busy edge.
    EXPECT_DOUBLE_EQ(xfer.submit(0, hw::DmaChannel::Host, 10.0, 0.5),
                     10.5);

    // Other channels and devices are independent timelines.
    EXPECT_DOUBLE_EQ(xfer.submit(0, hw::DmaChannel::Peer, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(xfer.submit(1, hw::DmaChannel::Host, 0.0, 1.0), 1.0);

    EXPECT_DOUBLE_EQ(xfer.busySeconds(), 2.0 + 1.0 + 0.5 + 1.0 + 1.0);

    xfer.reset();
    EXPECT_DOUBLE_EQ(xfer.freeAt(0, hw::DmaChannel::Host), 0.0);
    EXPECT_DOUBLE_EQ(xfer.busySeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// PagedKvCache transfer pins
// ---------------------------------------------------------------------------

TEST(TransferPins, PinnedSequenceIsReadableButImmutable)
{
    model::PagedKvCache pool(1, 8, 4);
    const int seq = pool.createSequence();
    for (int pos = 0; pos < 20; ++pos)
        pool.append(seq, 0, vec(4, static_cast<float>(pos)), vec(4, 1.0f));

    EXPECT_FALSE(pool.inTransfer(seq));
    EXPECT_EQ(pool.seqTransferBlocks(seq), 0);
    EXPECT_EQ(pool.transferBlocksInFlight(), 0);

    pool.beginTransfer(seq);
    EXPECT_TRUE(pool.inTransfer(seq));
    EXPECT_EQ(pool.seqTransferBlocks(seq), pool.seqBlocks(seq));
    EXPECT_EQ(pool.transferBlocksInFlight(),
              static_cast<long>(pool.seqBlocks(seq)));

    // The functional move already happened: reads stay legal...
    EXPECT_FLOAT_EQ(pool.key(seq, 0, 7)[0], 7.0f);
    // ...but every mutation of the in-flight blocks is fatal.
    EXPECT_DEATH(pool.append(seq, 0, vec(4, 0.0f), vec(4, 0.0f)),
                 "in-flight");
    EXPECT_DEATH(pool.truncate(seq, 1), "in-flight");
    EXPECT_DEATH(pool.swapOut(seq), "in-flight");
    EXPECT_DEATH(pool.dropSequence(seq), "in-flight");
    EXPECT_DEATH(pool.beginTransfer(seq), "already has an in-flight");

    pool.endTransfer(seq);
    EXPECT_FALSE(pool.inTransfer(seq));
    EXPECT_EQ(pool.transferBlocksInFlight(), 0);
    EXPECT_DEATH(pool.endTransfer(seq), "never started");
    // Unpinned, the sequence mutates normally again.
    EXPECT_EQ(pool.append(seq, 0, vec(4, 20.0f), vec(4, 1.0f)), 20);
    pool.dropSequence(seq);
}

TEST(TransferPins, SwappedSequencePinsHostBlocks)
{
    // A swap-in rides the DMA channel with the blocks already moved
    // functionally; the pin covers the host+device footprint.
    model::PagedKvCache pool(1, 8, 4);
    const int seq = pool.createSequence();
    for (int pos = 0; pos < 20; ++pos)
        pool.append(seq, 0, vec(4, 1.0f), vec(4, 2.0f));
    pool.swapOut(seq);
    pool.beginTransfer(seq);
    EXPECT_EQ(pool.seqTransferBlocks(seq), pool.seqHostBlocks(seq));
    EXPECT_DEATH(pool.swapIn(seq), "in-flight");
    pool.endTransfer(seq);
    pool.swapIn(seq);
    EXPECT_FLOAT_EQ(pool.value(seq, 0, 3)[0], 2.0f);
}

// ---------------------------------------------------------------------------
// Off-by-default inertness
// ---------------------------------------------------------------------------

TEST(Topology, DefaultKnobsLeaveTransferAccountingInert)
{
    // The serialized scheduler is pinned bit-identically by the
    // legacy suites (test_serve / test_swap / test_prefix_cache);
    // here: explicit default topology is byte-for-byte the same
    // timeline, and no transfer-engine accounting engages.
    const auto stream = mixedStream(3, 3, 2048, 16);
    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 150;
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto plain = serveStream(opts, stream);

    auto explicit_opts = opts;
    explicit_opts.sched.topology.devices = 1;
    explicit_opts.sched.topology.prefill_devices = 0;
    explicit_opts.sched.topology.overlap_transfers = false;
    const auto knobs = serveStream(explicit_opts, stream);

    ASSERT_GT(plain.fleet.swaps_out, 0);
    EXPECT_EQ(plain.fleet.n_devices, 1);
    EXPECT_EQ(plain.fleet.n_prefill_devices, 0);
    EXPECT_EQ(plain.fleet.handoffs, 0);
    EXPECT_EQ(plain.fleet.transfers_overlapped, 0);
    EXPECT_EQ(plain.fleet.peak_inflight_kv_blocks, 0);
    EXPECT_DOUBLE_EQ(plain.fleet.peak_inflight_mem_gb, 0.0);
    EXPECT_DOUBLE_EQ(plain.fleet.transfer_busy_s, 0.0);
    // Serialized transfers still balance the byte census.
    EXPECT_GT(plain.fleet.transfer_bytes_sent, 0.0);
    EXPECT_EQ(plain.fleet.transfer_bytes_sent,
              plain.fleet.transfer_bytes_received);

    expectSameTokens(plain, knobs);
    EXPECT_DOUBLE_EQ(plain.fleet.makespan_s, knobs.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(plain.fleet.energy_j, knobs.fleet.energy_j);
    for (size_t i = 0; i < plain.outcomes.size(); ++i) {
        EXPECT_DOUBLE_EQ(plain.outcomes[i].result.stats.modeled_time_s,
                         knobs.outcomes[i].result.stats.modeled_time_s);
    }
}

// ---------------------------------------------------------------------------
// Overlapped transfers: timing-only, never worse, hideable
// ---------------------------------------------------------------------------

TEST(Overlap, ChangesOnlyTimingUnderSwapPressure)
{
    // Same stream, same pressure; overlap on must deliver bit-
    // identical tokens (transfers move data eagerly, the channel
    // only prices WHEN they land) and can only shorten the makespan.
    const auto stream = mixedStream(3, 3, 2048, 16);
    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 150;
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto serial = serveStream(opts, stream);

    auto ov = opts;
    ov.sched.topology.overlap_transfers = true;
    const auto overlapped = serveStream(ov, stream);

    ASSERT_GT(serial.fleet.swaps_out, 0);
    EXPECT_GT(overlapped.fleet.transfers_overlapped, 0);
    EXPECT_GT(overlapped.fleet.transfer_busy_s, 0.0);
    EXPECT_GT(overlapped.fleet.peak_inflight_kv_blocks, 0);
    EXPECT_GT(overlapped.fleet.peak_inflight_mem_gb, 0.0);
    EXPECT_EQ(overlapped.fleet.transfer_bytes_sent,
              overlapped.fleet.transfer_bytes_received);
    EXPECT_EQ(overlapped.fleet.swaps_out, serial.fleet.swaps_out);

    expectSameTokens(serial, overlapped);
    EXPECT_LE(overlapped.fleet.makespan_s,
              serial.fleet.makespan_s * (1.0 + 1e-12));
}

TEST(Overlap, HiddenSwapInAddsZeroCriticalPathSeconds)
{
    // A swap-in overlapped behind >= 1 full decode iteration of the
    // surviving batch adds zero critical-path seconds: speeding the
    // host link up 100x must not move the makespan by a single bit.
    // The scenario pins the overlap window deterministically: a long
    // runner decodes throughout, a mid-length request frees its
    // blocks mid-run (re-admitting the victim while the runner still
    // decodes), and the victim is a small-KV batch-priority request
    // whose transfer fits inside one runner iteration. (The
    // serialized scheduler pays every transfer on the clock, so
    // there the same link change MUST move the makespan — the
    // control.)
    serve::StreamOptions runner;
    runner.n_requests = 1;
    runner.gen_len = 64;
    runner.seed = 0xa11;
    serve::StreamOptions mid;
    mid.n_requests = 1;
    mid.gen_len = 16;
    mid.id_base = 1;
    mid.seed = 0xb22;
    serve::StreamOptions victim;
    victim.n_requests = 1;
    victim.gen_len = 8;
    victim.priority = serve::Priority::Batch;
    victim.id_base = 100;
    victim.seed = 0xc33;
    const auto stream = serve::mergeStreams(
        serve::mergeStreams(serve::synthesizeStream(runner),
                            serve::synthesizeStream(mid)),
        serve::synthesizeStream(victim));

    auto opts = baseOpts(1, 3);
    opts.sched.kv_budget_blocks = 60;
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    opts.sched.topology.overlap_transfers = true;

    auto fast = opts;
    fast.spec.swap_bw_gbs *= 100.0;

    const auto slow_rep = serveStream(opts, stream);
    const auto fast_rep = serveStream(fast, stream);
    ASSERT_GT(slow_rep.fleet.swaps_in, 0);
    expectSameTokens(slow_rep, fast_rep);
    EXPECT_DOUBLE_EQ(slow_rep.fleet.makespan_s, fast_rep.fleet.makespan_s);

    // Control: serialized transfers put the link speed on the clock.
    auto serial_slow = opts;
    serial_slow.sched.topology.overlap_transfers = false;
    auto serial_fast = serial_slow;
    serial_fast.spec.swap_bw_gbs *= 100.0;
    const auto cs = serveStream(serial_slow, stream);
    const auto cf = serveStream(serial_fast, stream);
    ASSERT_GT(cs.fleet.swaps_in, 0);
    EXPECT_GT(cs.fleet.makespan_s, cf.fleet.makespan_s);
}

// ---------------------------------------------------------------------------
// Disaggregated prefill/decode fleets
// ---------------------------------------------------------------------------

TEST(Disagg, LosslessWithPerRequestHandoffPricing)
{
    const auto stream = mixedStream(3, 3, 2048, 16);
    auto unified = baseOpts(2, 6);
    unified.sched.prefill.chunk_tokens = 128;
    const auto uni = serveStream(unified, stream);

    auto disagg = unified;
    disagg.disaggregate(1, 1);
    const auto dis = serveStream(disagg, stream);

    // KV is a pure function of the tokens, so moving prefill to a
    // dedicated device never changes what any request emits.
    expectSameTokens(uni, dis);

    EXPECT_EQ(dis.fleet.n_devices, 2);
    EXPECT_EQ(dis.fleet.n_prefill_devices, 1);
    // No pressure: each request prefills once, hands off once.
    EXPECT_EQ(dis.fleet.handoffs, static_cast<long>(stream.size()));
    EXPECT_GT(dis.fleet.handoff_gb, 0.0);
    EXPECT_GT(dis.fleet.prefill_busy_s, 0.0);
    EXPECT_GT(dis.fleet.transfers_overlapped, 0);
    EXPECT_EQ(dis.fleet.transfer_bytes_sent,
              dis.fleet.transfer_bytes_received);
    EXPECT_EQ(uni.fleet.handoffs, 0);

    // Every request's oplog carries exactly one priced handoff.
    for (const auto &o : dis.outcomes) {
        const auto &h = o.result.stats.oplog.totals(hw::OpClass::KvHandoff);
        EXPECT_EQ(h.count, 1);
        EXPECT_GT(h.time_s, 0.0);
        EXPECT_GT(h.bytes, 0.0);
    }
}

TEST(Disagg, DeterministicAcrossWorkerCountsWithAllKnobsOn)
{
    const auto stream = mixedStream(3, 3, 2048, 16);
    auto opts1 = baseOpts(1, 6);
    opts1.sched.prefill.chunk_tokens = 128;
    opts1.sched.kv_budget_blocks = 220;
    opts1.sched.preempt_mode = serve::PreemptMode::Swap;
    opts1.disaggregate(1, 2);
    const auto r1 = serveStream(opts1, stream);

    auto opts3 = baseOpts(3, 6);
    opts3.sched = opts1.sched;
    const auto r3 = serveStream(opts3, stream);

    EXPECT_GT(r1.fleet.handoffs, 0);
    expectSameTokens(r1, r3);
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_EQ(r1.fleet.handoffs, r3.fleet.handoffs);
    EXPECT_EQ(r1.fleet.swaps_out, r3.fleet.swaps_out);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r1.fleet.energy_j, r3.fleet.energy_j);
    EXPECT_EQ(r1.fleet.transfer_bytes_sent, r3.fleet.transfer_bytes_sent);
    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.outcomes[i].ttft_s, r3.outcomes[i].ttft_s);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].latency_s,
                         r3.outcomes[i].latency_s);
    }
}

TEST(Disagg, RequiresChunkingAndAPeerLink)
{
    const auto stream = mixedStream(1, 1, 512, 8);
    auto opts = baseOpts(1, 4);
    opts.disaggregate(1, 1);
    // Disaggregation without chunked prefill is a config error...
    EXPECT_DEATH(serveStream(opts, stream), "chunk");
    // ...and so is a platform without a peer link.
    opts.sched.prefill.chunk_tokens = 128;
    opts.spec.interconnect_gbs = 0.0;
    EXPECT_DEATH(serveStream(opts, stream), "peer link|interconnect");
}
