/**
 * @file
 * Exit-predictor bank tests: architecture, thresholds, parameter
 * accounting (the paper's ~100x reduction claim, Fig. 2c-T1).
 */

#include <gtest/gtest.h>

#include "core/predictor.hh"

using namespace specee;
using namespace specee::core;

TEST(Predictor, BankShape)
{
    ExitPredictor bank(31, 12, 512, 2, 1);
    EXPECT_EQ(bank.nExitLayers(), 31);
    EXPECT_EQ(bank.featDim(), 12);
    EXPECT_EQ(bank.mlp(0).depth(), 2u);
    EXPECT_EQ(bank.mlp(0).inputDim(), 12u);
}

TEST(Predictor, DepthOneIsSingleLayer)
{
    ExitPredictor bank(4, 12, 512, 1, 1);
    EXPECT_EQ(bank.mlp(0).depth(), 1u);
    EXPECT_EQ(bank.mlp(0).paramCount(), 12u + 1u);
}

TEST(Predictor, ParamsMatchPaperFormula)
{
    // §7.4.2: (12 x 512 + 512 x 1) weights per predictor.
    ExitPredictor bank(31, 12, 512, 2, 1);
    const size_t weights_only = 12 * 512 + 512;
    EXPECT_GE(bank.paramsPerPredictor(), weights_only);
    // Biases add ~513 more.
    EXPECT_LE(bank.paramsPerPredictor(), weights_only + 520);
    EXPECT_EQ(bank.totalParams(), bank.paramsPerPredictor() * 31);
}

TEST(Predictor, HundredFoldReductionVsFullVocabPredictor)
{
    // Challenge-1: an AdaInfer-style predictor consumes the full
    // hidden state (~5e3 dims) -> ~6.7M params; the speculation-based
    // MLP uses 12 dims -> ~0.07M (Fig. 2c), a ~100x reduction.
    ExitPredictor specee_bank(1, 12, 512, 2, 1);
    const double baseline_params = 6.7e6;
    const double ratio =
        baseline_params /
        static_cast<double>(specee_bank.paramsPerPredictor());
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 2000.0);
}

TEST(Predictor, ScoreIsProbability)
{
    ExitPredictor bank(4, 12, 64, 2, 2);
    tensor::Vec f(12, 0.3f);
    for (int l = 0; l < 4; ++l) {
        const float s = bank.score(l, f);
        EXPECT_GE(s, 0.0f);
        EXPECT_LE(s, 1.0f);
    }
}

TEST(Predictor, ThresholdGatesExit)
{
    ExitPredictor bank(1, 12, 64, 2, 3);
    tensor::Vec f(12, 0.1f);
    const float s = bank.score(0, f);
    EXPECT_EQ(bank.shouldExit(0, f, s - 0.01f), true);
    EXPECT_EQ(bank.shouldExit(0, f, s + 0.01f), false);
}

TEST(Predictor, LayersAreIndependentlyInitialized)
{
    ExitPredictor bank(2, 12, 64, 2, 4);
    tensor::Vec f(12, 0.5f);
    EXPECT_NE(bank.score(0, f), bank.score(1, f));
}

TEST(Predictor, OutOfRangeLayerDies)
{
    ExitPredictor bank(4, 12, 64, 2, 5);
    tensor::Vec f(12, 0.0f);
    EXPECT_DEATH(bank.score(4, f), "out of range");
    EXPECT_DEATH(bank.score(-1, f), "out of range");
}

TEST(Predictor, FlopsScaleWithWidth)
{
    ExitPredictor narrow(1, 12, 64, 2, 6);
    ExitPredictor wide(1, 12, 512, 2, 6);
    EXPECT_GT(wide.flopsPerPrediction(), 6 * narrow.flopsPerPrediction());
}
