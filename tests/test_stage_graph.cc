/**
 * @file
 * Stage-graph and TP/PP sharded-engine tests.
 *
 * Pins the contracts the sharding refactor rests on: the StageGraph
 * partition is a contiguous near-even cover of the decoder; the
 * degenerate tp = 1, pp = 1 configuration is bit-identical to the
 * monolithic engine (emissions AND per-class modeled costs); sharded
 * engines change pricing but never emissions; TP strictly speeds up
 * the weight-bound classes while paying all-reduce traffic; early
 * exits cross fewer pipeline boundaries; the MemoryTracker's stage
 * partition conserves the deployment and shows a 70B-class model
 * overflowing one A100 but fitting a tp2 x pp2 fleet; the
 * scheduler's stage-split pricing is never cheaper than the legacy
 * whole-model max (and identical at pp = 1); pipeline backfill only
 * ever adds grants on sharded fleets; and per-consumer admission
 * backpressure caps concurrent decodes without losing requests.
 */

#include <gtest/gtest.h>

#include <memory>

#include "hw/memory_tracker.hh"
#include "model/stage_graph.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

namespace {

engines::RunResult
runOnA100(const engines::EngineConfig &cfg, uint64_t seed = 7)
{
    const auto &pipe = testutil::tinyPipeline();
    auto eng = pipe.makeEngine(cfg, hw::HardwareSpec::a100());
    const auto w = pipe.makeWorkload("MT-Bench", testutil::smallGen(1, 24),
                                     cfg.q4Calibrated());
    return eng->runOne(w, 0, seed);
}

std::vector<serve::Request>
flatStream(int n, int gen_len, int prompt_len = 0)
{
    serve::StreamOptions so;
    so.n_requests = n;
    so.gen_len = gen_len;
    so.prompt_len = prompt_len;
    so.rate_rps = 0.0; // all arrive at t = 0: admission decisions do
                       // not depend on the priced clock, so runs that
                       // differ only in pricing share one trajectory
    so.seed = 0x57a6e;
    return serve::synthesizeStream(so);
}

serve::ServeReport
serveStream(const serve::ServerOptions &opts,
            const std::vector<serve::Request> &stream)
{
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(stream);
    return server.drain();
}

} // namespace

// --- StageGraph arithmetic -------------------------------------------------

TEST(StageGraph, PartitionCoversDecoderNearEvenly)
{
    for (int L = 1; L <= 16; ++L) {
        for (int pp = 1; pp <= L; ++pp) {
            const model::StageGraph g(L, pp);
            ASSERT_EQ(g.nStages(), pp);
            ASSERT_EQ(g.nLayers(), L);
            int covered = 0;
            for (int s = 0; s < pp; ++s) {
                const auto &r = g.stage(s);
                EXPECT_EQ(r.first_layer, covered);
                EXPECT_GE(r.n_layers, 1);
                // Near-even, remainder to the front: sizes differ by
                // at most one and never grow toward the tail.
                EXPECT_LE(r.n_layers, L / pp + 1);
                EXPECT_GE(r.n_layers, L / pp);
                if (s > 0) {
                    EXPECT_LE(r.n_layers, g.stage(s - 1).n_layers);
                }
                for (int l = r.first_layer; l < r.endLayer(); ++l)
                    EXPECT_EQ(g.stageOfLayer(l), s);
                covered = r.endLayer();
            }
            EXPECT_EQ(covered, L);
        }
    }
}

TEST(StageGraph, DepthMapsToOccupiedStagesAndHandoffs)
{
    const model::StageGraph g(8, 4); // stages of 2 layers each
    EXPECT_EQ(g.stagesForDepth(0), 0);
    EXPECT_EQ(g.stagesForDepth(1), 1);
    EXPECT_EQ(g.stagesForDepth(2), 1);
    EXPECT_EQ(g.stagesForDepth(3), 2);
    EXPECT_EQ(g.stagesForDepth(8), 4);
    EXPECT_EQ(g.handoffs(0), 0);
    EXPECT_EQ(g.handoffs(2), 0); // confined to stage 0
    EXPECT_EQ(g.handoffs(5), 2);
    EXPECT_EQ(g.handoffs(8), 3);
    // Monotone: deeper steps never occupy fewer stages.
    for (int d = 1; d <= 8; ++d)
        EXPECT_GE(g.stagesForDepth(d), g.stagesForDepth(d - 1));
    // Overlap apportioning: stage 1 hosts layers [2, 4).
    EXPECT_EQ(g.overlapLayers(1, 0, 8), 2);
    EXPECT_EQ(g.overlapLayers(1, 3, 8), 1);
    EXPECT_EQ(g.overlapLayers(1, 4, 8), 0);

    const model::StageGraph mono(8, 1);
    EXPECT_EQ(mono.nStages(), 1);
    EXPECT_EQ(mono.handoffs(8), 0);
    EXPECT_EQ(mono.stagesForDepth(3), 1);
}

// --- engine-level sharding -------------------------------------------------

TEST(ShardedEngine, DegenerateShardingIsBitIdentical)
{
    const auto base = engines::EngineConfig::huggingFace().withSpecEE();
    const auto degen = base.withSharding(1, 1);
    EXPECT_EQ(degen.name, base.name); // no suffix on the no-op

    const auto a = runOnA100(base);
    const auto b = runOnA100(degen);
    ASSERT_EQ(a.emissions.size(), b.emissions.size());
    EXPECT_EQ(a.emissions[0].tokens, b.emissions[0].tokens);
    EXPECT_EQ(a.emissions[0].exit_layers, b.emissions[0].exit_layers);
    EXPECT_DOUBLE_EQ(a.stats.modeled_time_s, b.stats.modeled_time_s);
    for (int c = 0; c < hw::kNumOpClasses; ++c) {
        const auto &ta = a.stats.oplog.totals(static_cast<hw::OpClass>(c));
        const auto &tb = b.stats.oplog.totals(static_cast<hw::OpClass>(c));
        EXPECT_DOUBLE_EQ(ta.time_s, tb.time_s);
        EXPECT_DOUBLE_EQ(ta.energy_j, tb.energy_j);
        EXPECT_DOUBLE_EQ(ta.flops, tb.flops);
        EXPECT_DOUBLE_EQ(ta.bytes, tb.bytes);
        EXPECT_EQ(ta.count, tb.count);
    }
    EXPECT_EQ(
        a.stats.oplog.totals(hw::OpClass::TpAllReduce).count, 0);
    EXPECT_EQ(a.stats.oplog.totals(hw::OpClass::PpHandoff).count, 0);
}

TEST(ShardedEngine, ShardingChangesPricingNeverEmissions)
{
    const auto base = engines::EngineConfig::huggingFace().withSpecEE();
    const auto ref = runOnA100(base);
    const int combos[][2] = {{1, 2}, {2, 1}, {2, 2}, {1, 4}};
    for (const auto &c : combos) {
        const auto sharded = base.withSharding(c[0], c[1]);
        const auto r = runOnA100(sharded);
        // Functional results are a pure function of (workload, seed):
        // the fleet geometry only re-prices them.
        EXPECT_EQ(r.emissions[0].tokens, ref.emissions[0].tokens)
            << sharded.name;
        EXPECT_EQ(r.emissions[0].exit_layers,
                  ref.emissions[0].exit_layers)
            << sharded.name;
        const auto &ar = r.stats.oplog.totals(hw::OpClass::TpAllReduce);
        const auto &ho = r.stats.oplog.totals(hw::OpClass::PpHandoff);
        EXPECT_EQ(ar.count > 0, c[0] > 1) << sharded.name;
        EXPECT_EQ(ho.count > 0, c[1] > 1) << sharded.name;
    }
}

TEST(ShardedEngine, TpAcceleratesWeightBoundClassesAndPaysAllReduce)
{
    const auto base = engines::EngineConfig::huggingFace().withSpecEE();
    const auto one = runOnA100(base);
    const auto two = runOnA100(base.withSharding(2, 1));
    const auto &l1 = one.stats.oplog.totals(hw::OpClass::DecoderLayer);
    const auto &l2 = two.stats.oplog.totals(hw::OpClass::DecoderLayer);
    // Same traffic, double the aggregate bandwidth / compute.
    EXPECT_DOUBLE_EQ(l1.bytes, l2.bytes);
    EXPECT_LT(l2.time_s, l1.time_s);
    // Two boards drawing together: no energy discount from TP, and
    // the all-reduce traffic is priced on top.
    EXPECT_GE(two.stats.oplog.grand().energy_j,
              one.stats.oplog.grand().energy_j);
    EXPECT_GT(two.stats.oplog.totals(hw::OpClass::TpAllReduce).time_s,
              0.0);
}

TEST(ShardedEngine, EarlyExitCrossesFewerStageBoundaries)
{
    const auto hf = engines::EngineConfig::huggingFace();
    const auto ee = hf.withSpecEE();
    const auto full = runOnA100(hf.withSharding(1, 4));
    const auto exiting = runOnA100(ee.withSharding(1, 4));
    ASSERT_EQ(full.emissions[0].tokens.size(),
              exiting.emissions[0].tokens.size());
    // The tiny pipeline's SpecEE run exits early (its speedup tests
    // depend on it); every exited token skips its tail handoffs.
    ASSERT_LT(exiting.stats.avg_forward_layers,
              static_cast<double>(full.stats.avg_forward_layers));
    const double full_per_tok =
        full.stats.oplog.totals(hw::OpClass::PpHandoff).bytes /
        static_cast<double>(full.emissions[0].tokens.size());
    const double ee_per_tok =
        exiting.stats.oplog.totals(hw::OpClass::PpHandoff).bytes /
        static_cast<double>(exiting.emissions[0].tokens.size());
    EXPECT_LT(ee_per_tok, full_per_tok);
}

// --- per-device memory -----------------------------------------------------

TEST(StageMemory, StagePartitionConservesDeployment)
{
    for (const auto &cfg :
         {model::ModelConfig::tiny(), model::ModelConfig::llama2_70b()}) {
        const hw::MemoryTracker mem(cfg, tensor::WeightBackend::Fp32,
                                    /*with_draft_model=*/true,
                                    /*n_predictors=*/cfg.n_layers,
                                    /*predictor_params=*/5200);
        for (int pp : {1, 2, 4}) {
            const model::StageGraph g(cfg.n_layers, pp);
            double sum = 0.0;
            for (int s = 0; s < g.nStages(); ++s)
                sum += mem.stageWeightBytes(g, s);
            const double whole = mem.weightBytes() +
                                 mem.draftModelBytes() +
                                 mem.predictorBytes();
            EXPECT_NEAR(sum, whole, 1e-6 * whole)
                << cfg.name << " pp=" << pp;
        }
    }
}

TEST(StageMemory, SeventyBOverflowsOneDeviceButFitsTp2Pp2)
{
    const auto cfg = model::ModelConfig::llama2_70b();
    const hw::MemoryTracker mem(cfg, tensor::WeightBackend::Fp32,
                                /*with_draft_model=*/true,
                                /*n_predictors=*/cfg.n_layers,
                                /*predictor_params=*/5200);
    const double vram_gb = hw::HardwareSpec::a100().vram_gb;
    const long fleet_tokens = 8192; // a modest serving working set
    const int sessions = 4;

    const model::StageGraph mono(cfg.n_layers, 1);
    EXPECT_GT(hw::MemoryTracker::toGiB(
                  mem.maxDeviceBytes(mono, 1, fleet_tokens, sessions)),
              vram_gb);

    const model::StageGraph pp2(cfg.n_layers, 2);
    EXPECT_LT(hw::MemoryTracker::toGiB(
                  mem.maxDeviceBytes(pp2, 2, fleet_tokens, sessions)),
              vram_gb);
}

// --- fleet-level stage pricing, backfill, backpressure ---------------------

TEST(ShardedFleet, StagePricingNeverCheaperThanLegacyMax)
{
    serve::ServerOptions opts;
    opts.engine = engines::EngineConfig::huggingFace()
                      .withSpecEE()
                      .withSharding(1, 4);
    opts.spec = hw::HardwareSpec::a100();
    opts.workers = 1;
    opts.sched.max_batch = 4;
    const auto stream = flatStream(6, 16);

    auto on = opts;
    on.sched.stage_pricing = true;
    auto off = opts;
    off.sched.stage_pricing = false;
    const auto ron = serveStream(on, stream);
    const auto roff = serveStream(off, stream);

    // Same trajectory (all requests arrive at t = 0, no budget), so
    // the per-iteration inequality sum(stage maxima) >= global max
    // lifts to the makespan. Heterogeneous exit depths in the batch
    // make it strict somewhere.
    EXPECT_GE(ron.fleet.makespan_s,
              roff.fleet.makespan_s * (1.0 - 1e-12));
    EXPECT_EQ(ron.fleet.tokens, roff.fleet.tokens);
    ASSERT_EQ(ron.outcomes.size(), roff.outcomes.size());
    for (size_t i = 0; i < ron.outcomes.size(); ++i) {
        EXPECT_EQ(ron.outcomes[i].result.emissions[0].tokens,
                  roff.outcomes[i].result.emissions[0].tokens);
    }
    EXPECT_EQ(ron.fleet.n_stages, 4);
    EXPECT_LE(ron.fleet.peak_stage_occupancy, 4);
    EXPECT_GT(ron.fleet.pipeline_utilization, 0.0);
    EXPECT_LE(ron.fleet.pipeline_utilization, 1.0);
}

TEST(ShardedFleet, StagePricingKnobIsInertAtPpOne)
{
    serve::ServerOptions opts;
    opts.engine = engines::EngineConfig::huggingFace().withSpecEE();
    opts.spec = hw::HardwareSpec::a100();
    opts.workers = 1;
    opts.sched.max_batch = 4;
    const auto stream = flatStream(5, 12);

    auto on = opts;
    on.sched.stage_pricing = true;
    on.sched.stage_backfill = true;
    auto off = opts;
    off.sched.stage_pricing = false;
    off.sched.stage_backfill = false;
    const auto ron = serveStream(on, stream);
    const auto roff = serveStream(off, stream);
    EXPECT_DOUBLE_EQ(ron.fleet.makespan_s, roff.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(ron.fleet.energy_j, roff.fleet.energy_j);
    EXPECT_EQ(ron.fleet.tokens, roff.fleet.tokens);
    EXPECT_EQ(ron.fleet.n_stages, 1);
    // Unsharded fleets run every stage (the only one) every
    // iteration and never backfill.
    EXPECT_DOUBLE_EQ(ron.fleet.pipeline_utilization, 1.0);
    EXPECT_EQ(ron.fleet.backfill_grants, 0);
    EXPECT_EQ(ron.fleet.backfill_tokens, 0);
}

TEST(ShardedFleet, DeterministicAcrossWorkerCounts)
{
    serve::ServerOptions opts;
    opts.engine = engines::EngineConfig::huggingFace()
                      .withSpecEE()
                      .withSharding(2, 2);
    opts.spec = hw::HardwareSpec::a100();
    opts.sched.max_batch = 4;
    opts.sched.prefill.chunk_tokens = 8;
    opts.sched.prefill.max_tokens_per_iteration = 16;
    const auto stream = flatStream(6, 12, 48);

    auto one = opts;
    one.workers = 1;
    auto three = opts;
    three.workers = 3;
    const auto r1 = serveStream(one, stream);
    const auto r3 = serveStream(three, stream);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r1.fleet.energy_j, r3.fleet.energy_j);
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_EQ(r1.fleet.stage_busy, r3.fleet.stage_busy);
    EXPECT_EQ(r1.fleet.peak_stage_occupancy,
              r3.fleet.peak_stage_occupancy);
    EXPECT_EQ(r1.fleet.backfill_grants, r3.fleet.backfill_grants);
    EXPECT_EQ(r1.fleet.backfill_tokens, r3.fleet.backfill_tokens);
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].result.emissions[0].tokens,
                  r3.outcomes[i].result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].finish_s,
                         r3.outcomes[i].finish_s);
    }
}

TEST(ShardedFleet, BackfillRidesExitFreedStages)
{
    serve::ServerOptions opts;
    opts.engine = engines::EngineConfig::huggingFace()
                      .withSpecEE()
                      .withSharding(1, 4);
    opts.spec = hw::HardwareSpec::a100();
    opts.workers = 1;
    opts.sched.max_batch = 2;
    // A budget this tight starves prefill chunks behind any decode
    // peer — the ONLY extra grants come from backfilling the stages
    // last iteration's early exits freed.
    opts.sched.prefill.chunk_tokens = 4;
    opts.sched.prefill.max_tokens_per_iteration = 1;
    const auto stream = flatStream(6, 16, 48);

    auto on = opts;
    on.sched.stage_backfill = true;
    auto off = opts;
    off.sched.stage_backfill = false;
    const auto ron = serveStream(on, stream);
    const auto roff = serveStream(off, stream);

    EXPECT_GT(ron.fleet.backfill_grants, 0);
    EXPECT_GT(ron.fleet.backfill_tokens, 0);
    EXPECT_EQ(roff.fleet.backfill_grants, 0);
    EXPECT_EQ(roff.fleet.backfill_tokens, 0);
    // Backfill reschedules prefill, never changes what is decoded.
    EXPECT_EQ(ron.fleet.tokens, roff.fleet.tokens);
    ASSERT_EQ(ron.outcomes.size(), roff.outcomes.size());
    for (size_t i = 0; i < ron.outcomes.size(); ++i) {
        EXPECT_EQ(ron.outcomes[i].result.emissions[0].tokens,
                  roff.outcomes[i].result.emissions[0].tokens);
    }
}

TEST(ShardedFleet, ConsumerBackpressureCapsInflight)
{
    serve::ServerOptions opts;
    opts.engine = engines::EngineConfig::huggingFace().withSpecEE();
    opts.spec = hw::HardwareSpec::a100();
    opts.workers = 1;
    opts.sched.max_batch = 4;
    auto stream = flatStream(6, 10);

    // All six requests share the default consumer; a cap of one
    // serializes them even with four free slots.
    auto capped = opts;
    capped.sched.max_inflight_per_consumer = 1;
    const auto rc = serveStream(capped, stream);
    EXPECT_DOUBLE_EQ(rc.fleet.mean_batch_occupancy, 1.0);
    EXPECT_GT(rc.fleet.backpressure_deferrals, 0);
    for (const auto &o : rc.outcomes) {
        EXPECT_FALSE(o.dropped); // deferred, never starved
        ASSERT_EQ(o.result.emissions.size(), 1u);
    }

    // Cap off: identical knobs admit the full batch and the counter
    // stays untouched.
    const auto ru = serveStream(opts, stream);
    EXPECT_EQ(ru.fleet.backpressure_deferrals, 0);
    EXPECT_GT(ru.fleet.mean_batch_occupancy, 1.0);
    EXPECT_EQ(ru.fleet.tokens, rc.fleet.tokens);
    EXPECT_LE(ru.fleet.makespan_s, rc.fleet.makespan_s);

    // Two consumers, cap 1: at most two decode concurrently.
    for (auto &r : stream)
        r.consumer = r.id % 2;
    const auto r2 = serveStream(capped, stream);
    EXPECT_LE(r2.fleet.mean_batch_occupancy, 2.0);
    EXPECT_EQ(r2.fleet.tokens, rc.fleet.tokens);
}
