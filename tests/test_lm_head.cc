/**
 * @file
 * LM head tests: full vs sliced vs grouped consistency — the kernel
 * core of the paper's search-space reduction (Fig. 2b, Fig. 13).
 */

#include <gtest/gtest.h>

#include "model/lm_head.hh"
#include "model/weights.hh"
#include "tensor/kernels.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::model;

namespace {

struct Fixture
{
    ModelConfig cfg = ModelConfig::tiny();
    Weights w{cfg, false};
    LmHead head{w.embedding(), w.rmsFinal()};
};

tensor::Vec
randomVec(int n, uint64_t seed)
{
    tensor::Vec v(static_cast<size_t>(n));
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

} // namespace

TEST(LmHead, SlicedEqualsGatherOfFull)
{
    Fixture f;
    auto h = randomVec(f.cfg.sim.hidden, 1);
    tensor::Vec full(static_cast<size_t>(f.cfg.sim.vocab));
    f.head.full(h, full);
    std::vector<int> toks = {0, 5, 99, 511};
    tensor::Vec sliced(toks.size());
    f.head.sliced(h, toks, sliced);
    for (size_t i = 0; i < toks.size(); ++i)
        EXPECT_FLOAT_EQ(sliced[i], full[static_cast<size_t>(toks[i])]);
}

TEST(LmHead, GroupedEqualsPerGroupSliced)
{
    Fixture f;
    auto h1 = randomVec(f.cfg.sim.hidden, 2);
    auto h2 = randomVec(f.cfg.sim.hidden, 3);
    std::vector<std::vector<int>> groups = {{1, 2, 3, 4}, {7, 8}};
    std::vector<tensor::CSpan> hiddens = {h1, h2};
    std::vector<tensor::Vec> grouped;
    f.head.grouped(hiddens, groups, grouped);

    ASSERT_EQ(grouped.size(), 2u);
    tensor::Vec s1(4), s2(2);
    f.head.sliced(h1, groups[0], s1);
    f.head.sliced(h2, groups[1], s2);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(grouped[0][i], s1[i]);
    for (size_t i = 0; i < 2; ++i)
        EXPECT_FLOAT_EQ(grouped[1][i], s2[i]);
}

TEST(LmHead, ArgmaxConsistentWithFull)
{
    Fixture f;
    auto h = randomVec(f.cfg.sim.hidden, 4);
    tensor::Vec full(static_cast<size_t>(f.cfg.sim.vocab));
    f.head.full(h, full);
    EXPECT_EQ(f.head.argmaxToken(h),
              static_cast<int>(tensor::argmax(full)));
}

TEST(LmHead, ScaleInvarianceFromRmsNorm)
{
    Fixture f;
    auto h = randomVec(f.cfg.sim.hidden, 5);
    auto h2 = h;
    tensor::scaleInplace(h2, 3.0f);
    // RMSNorm inside the head makes logits scale-invariant.
    tensor::Vec a(static_cast<size_t>(f.cfg.sim.vocab));
    tensor::Vec b(static_cast<size_t>(f.cfg.sim.vocab));
    f.head.full(h, a);
    f.head.full(h2, b);
    for (size_t i = 0; i < a.size(); i += 61)
        EXPECT_NEAR(a[i], b[i], 1e-3f);
}

TEST(LmHead, VocabAndHiddenAccessors)
{
    Fixture f;
    EXPECT_EQ(f.head.vocab(), f.cfg.sim.vocab);
    EXPECT_EQ(f.head.hidden(), f.cfg.sim.hidden);
}
