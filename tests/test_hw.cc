/**
 * @file
 * Hardware model tests: roofline pricing, offload split, op logging,
 * energy accounting, and the Fig. 17 memory model.
 */

#include <gtest/gtest.h>

#include "hw/cost_model.hh"
#include "hw/memory_tracker.hh"
#include "model/config.hh"

using namespace specee;
using namespace specee::hw;

TEST(Hardware, PresetsHaveSaneNumbers)
{
    auto a100 = HardwareSpec::a100();
    auto pc = HardwareSpec::pc4060();
    EXPECT_GT(a100.mem_bw_gbs, pc.mem_bw_gbs);
    EXPECT_GT(a100.compute_tflops, pc.compute_tflops);
    EXPECT_GT(pc.host_bw_gbs, 0.0);
    EXPECT_EQ(a100.host_bw_gbs, 0.0);
    EXPECT_EQ(HardwareSpec::a100x4().n_devices, 4);
    EXPECT_EQ(HardwareSpec::byName("A100-80GB").name, "A100-80GB");
    EXPECT_DEATH(HardwareSpec::byName("TPU"), "unknown");
}

TEST(CostModel, MemoryBoundOpPricedByBytes)
{
    CostModel cm(HardwareSpec::a100(), 1.0);
    OpLog log;
    // 2 GB at 2039 GB/s ~= 0.98 ms, far above the flop time.
    const double t = cm.account(log, OpClass::DecoderLayer,
                                /*flops=*/1e9, /*weight_bytes=*/2e9,
                                0.0, 1);
    EXPECT_NEAR(t, 2e9 / 2039e9 + 5e-6, 1e-5);
}

TEST(CostModel, ComputeBoundOpPricedByFlops)
{
    CostModel cm(HardwareSpec::a100(), 1.0);
    OpLog log;
    // Huge flops, tiny bytes.
    const double t =
        cm.account(log, OpClass::DecoderLayer, 3.12e14, 1e3, 0.0, 1);
    EXPECT_NEAR(t, 1.0 + 5e-6, 1e-3);
}

TEST(CostModel, LaunchOverheadDominatesTinyOps)
{
    CostModel cm(HardwareSpec::a100(), 1.0);
    OpLog log;
    // The exit predictor: ~7k params, 28 KB — launch-bound.
    const double t = cm.account(log, OpClass::Predictor, 14e3, 28e3,
                                0.0, 8);
    EXPECT_GT(t, 8 * 5e-6 * 0.99);
    EXPECT_LT(t, 8 * 5e-6 * 1.5);
}

TEST(CostModel, EfficiencyScalesTime)
{
    CostModel full(HardwareSpec::a100(), 1.0);
    CostModel third(HardwareSpec::a100(), 1.0 / 3.0);
    OpLog l1, l2;
    const double t1 =
        full.account(l1, OpClass::DecoderLayer, 0, 3e9, 0, 0);
    const double t2 =
        third.account(l2, OpClass::DecoderLayer, 0, 3e9, 0, 0);
    EXPECT_NEAR(t2, 3.0 * t1, 1e-6);
}

TEST(CostModel, OffloadRoutesWeightBytesToHost)
{
    CostModel cm(HardwareSpec::pc4060(), 1.0, 0.5);
    OpLog log;
    const double t =
        cm.account(log, OpClass::DecoderLayer, 0, 2e9, 0, 0);
    const double expect = 1e9 / 256e9 + 1e9 / 60e9;
    EXPECT_NEAR(t, expect, 1e-4);
    // Activations never go to the host path.
    OpLog log2;
    const double t_act =
        cm.account(log2, OpClass::KvRead, 0, 0, 2e9, 0);
    EXPECT_NEAR(t_act, 2e9 / 256e9, 1e-5);
}

TEST(CostModel, OffloadWithoutHostPathDies)
{
    CostModel cm(HardwareSpec::a100(), 1.0, 0.5);
    OpLog log;
    EXPECT_DEATH(cm.account(log, OpClass::DecoderLayer, 0, 1e9, 0, 0),
                 "host");
}

TEST(OpLog, AccumulatesAndMerges)
{
    CostModel cm(HardwareSpec::a100(), 1.0);
    OpLog a, b;
    cm.account(a, OpClass::DecoderLayer, 1e6, 1e6, 0, 1);
    cm.account(a, OpClass::DecoderLayer, 1e6, 1e6, 0, 1);
    cm.account(b, OpClass::Predictor, 1e3, 1e3, 0, 1);
    a.merge(b);
    EXPECT_EQ(a.totals(OpClass::DecoderLayer).count, 2);
    EXPECT_EQ(a.totals(OpClass::Predictor).count, 1);
    EXPECT_GT(a.grand().time_s, 0.0);
    a.clear();
    EXPECT_EQ(a.grand().count, 0);
}

TEST(OpLog, AveragePowerIsTimeWeighted)
{
    const auto spec = HardwareSpec::a100();
    CostModel cm(spec, 1.0);
    OpLog log;
    cm.account(log, OpClass::DecoderLayer, 0, 2.039e9, 0, 0); // 1 ms
    const double p_layer =
        spec.power_w[static_cast<int>(OpClass::DecoderLayer)];
    EXPECT_NEAR(log.avgPowerW(), p_layer, 1e-6);
    // Mixing in a low-power op lowers the average.
    cm.accountFixed(log, OpClass::Predictor, 1e-3);
    EXPECT_LT(log.avgPowerW(), p_layer);
}

TEST(Memory, WeightsMatchLlama7B)
{
    auto cfg = model::ModelConfig::llama2_7b();
    MemoryTracker mem(cfg, false, false, 0, 0);
    // Llama-2-7B fp16 ~= 13.5 GB.
    EXPECT_NEAR(mem.weightBytes() / 1e9, 13.5, 0.7);
    MemoryTracker q4(cfg, true, false, 0, 0);
    EXPECT_NEAR(q4.weightBytes() / mem.weightBytes(), 4.5 / 16.0, 1e-6);
}

TEST(Memory, DraftModelMatchesPaperFig17)
{
    // §7.4.2: DLM adds ~0.9 GB (7B) and ~1.4 GB (13B).
    MemoryTracker m7(model::ModelConfig::llama2_7b(), false, true, 0, 0);
    EXPECT_NEAR(m7.draftModelBytes() / 1e9, 0.93, 0.15);
    MemoryTracker m13(model::ModelConfig::llama2_13b(), false, true, 0,
                      0);
    EXPECT_NEAR(m13.draftModelBytes() / 1e9, 1.3, 0.2);
}

TEST(Memory, KvGrowsLinearly)
{
    auto cfg = model::ModelConfig::llama2_7b();
    MemoryTracker mem(cfg, false, false, 0, 0);
    // 2 x 32 layers x 4096 x fp16 = 512 KB/token.
    EXPECT_NEAR(mem.kvBytes(1) / 1024.0, 512.0, 1.0);
    EXPECT_NEAR(mem.kvBytes(1000), 1000 * mem.kvBytes(1), 1.0);
}

TEST(Memory, PredictorsAreNegligible)
{
    auto cfg = model::ModelConfig::llama2_7b();
    MemoryTracker mem(cfg, false, true, 31, 12 * 512 + 512 + 513);
    EXPECT_LT(mem.predictorBytes(), 1.5e6);
    EXPECT_LT(mem.predictorBytes() / mem.draftModelBytes(), 0.01);
}
