/**
 * @file
 * Quantization tests: Q4/Q8 round-trip error bounds, quantized GEMV
 * accuracy, storage footprint, parameterized shape sweeps.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/quant.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::tensor;

namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, float scale = 1.0f)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, scale));
    return m;
}

/** Max |error| allowed per element for a group with range `range`. */
float
q4Bound(const Matrix &m, size_t row, size_t col)
{
    const size_t g0 = (col / kQ4GroupSize) * kQ4GroupSize;
    const size_t g1 = std::min(g0 + kQ4GroupSize, m.cols());
    float lo = m.at(row, g0), hi = lo;
    for (size_t c = g0; c < g1; ++c) {
        lo = std::min(lo, m.at(row, c));
        hi = std::max(hi, m.at(row, c));
    }
    return (hi - lo) / 15.0f * 0.5f + 1e-6f;
}

} // namespace

TEST(Q4, RoundTripWithinGroupQuantBound)
{
    auto m = randomMatrix(8, 64, 1);
    auto q = Q4Matrix::quantize(m);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
            EXPECT_LE(std::fabs(q.at(r, c) - m.at(r, c)),
                      q4Bound(m, r, c))
                << "(" << r << "," << c << ")";
        }
    }
}

TEST(Q4, DequantizeMatchesElementAccess)
{
    auto m = randomMatrix(4, 96, 2);
    auto q = Q4Matrix::quantize(m);
    auto d = q.dequantize();
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            EXPECT_FLOAT_EQ(d.at(r, c), q.at(r, c));
}

TEST(Q4, GemvCloseToDense)
{
    auto m = randomMatrix(32, 128, 3, 0.05f);
    auto q = Q4Matrix::quantize(m);
    Vec x(128);
    Rng rng(4);
    for (auto &v : x)
        v = static_cast<float>(rng.normal());
    Vec yd(32), yq(32);
    gemv(m, x, yd);
    q.gemv(x, yq);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(yq[i], yd[i], 0.15f) << i;
}

TEST(Q4, GemvRowsMatchesGemv)
{
    auto m = randomMatrix(16, 64, 5);
    auto q = Q4Matrix::quantize(m);
    Vec x(64, 0.5f);
    Vec full(16);
    q.gemv(x, full);
    std::vector<int> rows = {0, 7, 15};
    Vec sliced(3);
    q.gemvRows(rows, x, sliced);
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_FLOAT_EQ(sliced[i], full[static_cast<size_t>(rows[i])]);
}

TEST(Q4, StorageIsRoughly4Point5BitsPerWeight)
{
    auto m = randomMatrix(64, 512, 6);
    auto q = Q4Matrix::quantize(m);
    const double bits =
        q.byteSize() * 8.0 / static_cast<double>(m.size());
    EXPECT_NEAR(bits, 4.0 + 2.0 * 32.0 / kQ4GroupSize, 1.0);
    EXPECT_LT(static_cast<double>(q.byteSize()),
              0.2 * static_cast<double>(m.byteSize()));
}

TEST(Q4, RaggedColumnsPadCleanly)
{
    auto m = randomMatrix(3, 40, 7); // not a multiple of 32
    auto q = Q4Matrix::quantize(m);
    EXPECT_EQ(q.cols(), 40u);
    for (size_t c = 0; c < 40; ++c)
        EXPECT_LE(std::fabs(q.at(1, c) - m.at(1, c)), q4Bound(m, 1, c));
}

TEST(Q4, ConstantGroupIsExact)
{
    Matrix m(1, 32, 0.25f);
    auto q = Q4Matrix::quantize(m);
    for (size_t c = 0; c < 32; ++c)
        EXPECT_NEAR(q.at(0, c), 0.25f, 1e-6f);
}

TEST(Q8, RoundTripTight)
{
    auto m = randomMatrix(8, 100, 8);
    auto q = Q8Matrix::quantize(m);
    auto d = q.dequantize();
    for (size_t r = 0; r < m.rows(); ++r) {
        float mx = 0;
        for (size_t c = 0; c < m.cols(); ++c)
            mx = std::max(mx, std::fabs(m.at(r, c)));
        for (size_t c = 0; c < m.cols(); ++c)
            EXPECT_LE(std::fabs(d.at(r, c) - m.at(r, c)),
                      mx / 127.0f + 1e-6f);
    }
}

TEST(Q8, GemvCloseToDense)
{
    auto m = randomMatrix(24, 80, 9, 0.1f);
    auto q = Q8Matrix::quantize(m);
    Vec x(80);
    Rng rng(10);
    for (auto &v : x)
        v = static_cast<float>(rng.normal());
    Vec yd(24), yq(24);
    gemv(m, x, yd);
    q.gemv(x, yq);
    for (size_t i = 0; i < 24; ++i)
        EXPECT_NEAR(yq[i], yd[i], 0.05f);
}

TEST(Q8, GemvRowsAndRowDotMatchGemv)
{
    auto m = randomMatrix(20, 72, 13);
    auto q = Q8Matrix::quantize(m);
    Vec x(72);
    Rng rng(14);
    for (auto &v : x)
        v = static_cast<float>(rng.normal());
    Vec full(20);
    q.gemv(x, full);
    std::vector<int> rows = {19, 0, 8, 3};
    Vec sliced(rows.size());
    q.gemvRows(rows, x, sliced);
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_FLOAT_EQ(sliced[i], full[static_cast<size_t>(rows[i])]);
        EXPECT_FLOAT_EQ(q.rowDot(static_cast<size_t>(rows[i]), x),
                        full[static_cast<size_t>(rows[i])]);
    }
}

TEST(Q8, AtMatchesDequantize)
{
    auto m = randomMatrix(6, 50, 15);
    auto q = Q8Matrix::quantize(m);
    auto d = q.dequantize();
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            EXPECT_FLOAT_EQ(q.at(r, c), d.at(r, c));
}

TEST(Q8, SmallerThanQ4IsFalse)
{
    auto m = randomMatrix(16, 256, 11);
    auto q8 = Q8Matrix::quantize(m);
    auto q4 = Q4Matrix::quantize(m);
    EXPECT_GT(q8.byteSize(), q4.byteSize());
}

// --- parameterized sweep ---------------------------------------------------

class QuantShapes : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(QuantShapes, Q4GemvErrorScalesWithMagnitude)
{
    const auto [rows, cols] = GetParam();
    auto m = randomMatrix(static_cast<size_t>(rows),
                          static_cast<size_t>(cols), 12, 0.02f);
    auto q = Q4Matrix::quantize(m);
    Vec x(static_cast<size_t>(cols), 1.0f);
    Vec yd(static_cast<size_t>(rows)), yq(static_cast<size_t>(rows));
    gemv(m, x, yd);
    q.gemv(x, yq);
    // Error per output element is bounded by cols * per-element bound;
    // with sd 0.02 the group ranges are ~0.1 -> bound ~ cols * 0.004.
    const float bound = static_cast<float>(cols) * 0.005f;
    for (size_t i = 0; i < yd.size(); ++i)
        EXPECT_NEAR(yq[i], yd[i], bound);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantShapes,
    ::testing::Values(std::pair{1, 32}, std::pair{4, 33},
                      std::pair{16, 31}, std::pair{8, 256},
                      std::pair{64, 129}));
