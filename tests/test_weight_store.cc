/**
 * @file
 * WeightStore backend tests: q8/q4 parity with fp32 (gemv, gemvRows,
 * rowDot, ragged q4 groups), fp32 backend bit-identity with the raw
 * Matrix kernels, byte footprints, and SIMD-vs-scalar dispatch
 * equivalence for every inner-product kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.hh"
#include "tensor/simd.hh"
#include "tensor/weight_store.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::tensor;

namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, float scale = 1.0f)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, scale));
    return m;
}

Vec
randomVec(size_t n, uint64_t seed)
{
    Vec v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

/** Restores the dispatch level a test forced (the suite may run
 *  under a SPECEE_SIMD override, so restore what was active). */
struct SimdLevelGuard
{
    simd::Level prev = simd::activeLevel();
    ~SimdLevelGuard() { simd::setLevel(prev); }
};

constexpr WeightBackend kAll[] = {WeightBackend::Fp32, WeightBackend::Q8,
                                  WeightBackend::Q4};

} // namespace

TEST(WeightBackend, NamesRoundTrip)
{
    for (WeightBackend b : kAll)
        EXPECT_EQ(parseWeightBackend(weightBackendName(b)), b);
    EXPECT_EQ(parseWeightBackend("int8"), WeightBackend::Q8);
    EXPECT_EQ(parseWeightBackend("awq"), WeightBackend::Q4);
}

TEST(WeightBackend, CompressionOrdering)
{
    EXPECT_DOUBLE_EQ(weightCompression(WeightBackend::Fp32), 1.0);
    EXPECT_DOUBLE_EQ(weightCompression(WeightBackend::Q8), 0.5);
    EXPECT_NEAR(weightCompression(WeightBackend::Q4), 4.5 / 16.0, 1e-12);
}

TEST(WeightStore, Fp32GemvBitIdenticalToMatrixKernels)
{
    // The fp32 store must be a zero-cost veneer over the raw kernels:
    // every result bit-identical, so threading WeightStore through
    // the model stack cannot change fp32 engine output.
    auto m = randomMatrix(33, 70, 1);
    auto store = makeWeightStore(m, WeightBackend::Fp32);
    auto x = randomVec(70, 2);

    Vec y_ref(33), y_store(33);
    gemv(m, x, y_ref);
    store->gemv(x, y_store);
    for (size_t i = 0; i < y_ref.size(); ++i)
        EXPECT_EQ(y_ref[i], y_store[i]) << i;

    std::vector<int> rows = {0, 5, 32, 17};
    Vec s_ref(rows.size()), s_store(rows.size());
    gemvRows(m, rows, x, s_ref);
    store->gemvRows(rows, x, s_store);
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(s_ref[i], s_store[i]) << i;

    EXPECT_EQ(store->rowDot(7, x), dot(m.row(7), x));

    Vec row(70);
    store->copyRow(12, row);
    for (size_t c = 0; c < 70; ++c)
        EXPECT_EQ(row[c], m.at(12, c));
}

TEST(WeightStore, QuantizedGemvTracksFp32)
{
    // Includes a ragged q4 shape (cols not a multiple of the group).
    const std::pair<int, int> shapes[] = {{8, 64}, {16, 40}, {5, 33}};
    for (auto [r, c] : shapes) {
        auto m = randomMatrix(static_cast<size_t>(r),
                              static_cast<size_t>(c), 3, 0.05f);
        auto x = randomVec(static_cast<size_t>(c), 4);
        Vec y_fp(static_cast<size_t>(r));
        gemv(m, x, y_fp);
        for (WeightBackend b : {WeightBackend::Q8, WeightBackend::Q4}) {
            auto store = makeWeightStore(m, b);
            Vec y(static_cast<size_t>(r));
            store->gemv(x, y);
            // Per-output tolerance scales with the quantization step
            // (half an lsb of the 0.05-sd weights) accumulated over
            // the reduction length, with 2x headroom.
            const float tol = (b == WeightBackend::Q8 ? 0.004f : 0.04f) *
                              static_cast<float>(c) * 0.05f;
            for (size_t i = 0; i < y.size(); ++i)
                EXPECT_NEAR(y[i], y_fp[i], tol)
                    << weightBackendName(b) << " " << r << "x" << c
                    << " row " << i;
        }
    }
}

TEST(WeightStore, GemvRowsAndRowDotMatchGemvPerBackend)
{
    auto m = randomMatrix(24, 48, 5);
    auto x = randomVec(48, 6);
    const std::vector<int> rows = {23, 0, 11, 7};
    for (WeightBackend b : kAll) {
        auto store = makeWeightStore(m, b);
        Vec full(24);
        store->gemv(x, full);
        Vec sliced(rows.size());
        store->gemvRows(rows, x, sliced);
        for (size_t i = 0; i < rows.size(); ++i) {
            EXPECT_FLOAT_EQ(sliced[i],
                            full[static_cast<size_t>(rows[i])])
                << weightBackendName(b);
            EXPECT_FLOAT_EQ(
                store->rowDot(static_cast<size_t>(rows[i]), x),
                full[static_cast<size_t>(rows[i])])
                << weightBackendName(b);
        }
    }
}

TEST(WeightStore, CopyRowAndAtAgreeAcrossBackends)
{
    auto m = randomMatrix(9, 40, 7);
    for (WeightBackend b : kAll) {
        auto store = makeWeightStore(m, b);
        Vec row(40);
        store->copyRow(3, row);
        for (size_t c = 0; c < 40; ++c)
            EXPECT_FLOAT_EQ(row[c], store->at(3, c))
                << weightBackendName(b);
    }
}

TEST(WeightStore, AddScaledColumnMatchesDense)
{
    auto m = randomMatrix(12, 36, 8, 0.05f);
    for (WeightBackend b : kAll) {
        auto store = makeWeightStore(m, b);
        Vec out(12, 0.0f);
        store->addScaledColumn(5, 2.0f, out);
        for (size_t r = 0; r < 12; ++r)
            EXPECT_NEAR(out[r], 2.0f * store->at(r, 5), 1e-5f)
                << weightBackendName(b);
    }
}

TEST(WeightStore, ByteSizeShrinksWithBackend)
{
    auto m = randomMatrix(64, 256, 9);
    auto fp32 = makeWeightStore(m, WeightBackend::Fp32);
    auto q8 = makeWeightStore(m, WeightBackend::Q8);
    auto q4 = makeWeightStore(m, WeightBackend::Q4);
    EXPECT_LT(q4->byteSize(), q8->byteSize());
    EXPECT_LT(q8->byteSize(), fp32->byteSize());
    EXPECT_EQ(fp32->byteSize(), m.byteSize());
}

// --- SIMD dispatch parity --------------------------------------------------

TEST(Simd, ActiveLevelIsSupported)
{
    EXPECT_LE(static_cast<int>(simd::activeLevel()),
              static_cast<int>(simd::detectLevel()));
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

TEST(Simd, DotF32MatchesScalarWithinRounding)
{
    SimdLevelGuard guard;
    const size_t sizes[] = {1, 7, 8, 15, 16, 31, 64, 1000};
    for (size_t n : sizes) {
        auto a = randomVec(n, 10 + n);
        auto b = randomVec(n, 20 + n);
        simd::setLevel(simd::Level::Scalar);
        const float ref = simd::dotF32(a.data(), b.data(), n);
        simd::setLevel(simd::detectLevel());
        const float fast = simd::dotF32(a.data(), b.data(), n);
        // Reassociated summation: allow rounding-level divergence.
        const float tol =
            1e-5f * static_cast<float>(n) + 1e-5f * std::fabs(ref);
        EXPECT_NEAR(fast, ref, tol) << "n=" << n;
    }
}

TEST(Simd, DotQ8MatchesScalarWithinRounding)
{
    SimdLevelGuard guard;
    Rng rng(31);
    const size_t sizes[] = {1, 8, 13, 32, 100};
    for (size_t n : sizes) {
        std::vector<int8_t> q(n);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-127, 127));
        auto x = randomVec(n, 40 + n);
        simd::setLevel(simd::Level::Scalar);
        const float ref = simd::dotQ8(q.data(), x.data(), n);
        simd::setLevel(simd::detectLevel());
        const float fast = simd::dotQ8(q.data(), x.data(), n);
        EXPECT_NEAR(fast, ref, 1e-3f * static_cast<float>(n) + 1e-4f)
            << "n=" << n;
    }
}

TEST(Simd, QuantizedGemvEqualAcrossDispatchPaths)
{
    SimdLevelGuard guard;
    // Whole-kernel parity including the packed-nibble group dot, on a
    // ragged shape so the AVX2 path exercises its scalar tail.
    auto m = randomMatrix(16, 70, 11, 0.1f);
    auto x = randomVec(70, 12);
    for (WeightBackend b : {WeightBackend::Q8, WeightBackend::Q4}) {
        auto store = makeWeightStore(m, b);
        Vec y_scalar(16), y_fast(16);
        simd::setLevel(simd::Level::Scalar);
        store->gemv(x, y_scalar);
        simd::setLevel(simd::detectLevel());
        store->gemv(x, y_fast);
        for (size_t i = 0; i < 16; ++i)
            EXPECT_NEAR(y_fast[i], y_scalar[i],
                        1e-3f + 1e-3f * std::fabs(y_scalar[i]))
                << weightBackendName(b) << " row " << i;
    }
}
