/**
 * @file
 * End-to-end integration tests at Llama2-7B scale (32 layers): the
 * full pipeline (corpus -> predictor training -> offline scheduling
 * -> engines) and the paper's headline orderings — T1 < T1+T2 <
 * T1+T2+T3 (Fig. 2d/19), SpecEE vs frameworks (Fig. 14), accuracy
 * preservation (Table 4), energy (§7.3).
 */

#include <gtest/gtest.h>

#include "engines/pipeline.hh"
#include "oracle/profiles.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

const engines::Pipeline &
pipe7b()
{
    static const engines::Pipeline pipe([] {
        engines::PipelineOptions o;
        o.model = "llama2-7b";
        o.train_instances = 8;
        o.train_gen_len = 40;
        o.seed = 42;
        return o;
    }());
    return pipe;
}

const workload::Workload &
mtWorkload()
{
    static const workload::Workload w =
        pipe7b().makeWorkload("MT-Bench", [] {
            workload::GenOptions g;
            g.n_instances = 3;
            g.gen_len = 40;
            g.seed = 77;
            return g;
        }());
    return w;
}

engines::RunResult
run(const EngineConfig &cfg,
    const hw::HardwareSpec &spec = hw::HardwareSpec::a100())
{
    auto engine = pipe7b().makeEngine(cfg, spec);
    return engine->run(mtWorkload(), 5);
}

} // namespace

TEST(Integration, PredictorBankReachesPaperAccuracyBand)
{
    // Fig. 8: ~93% predictor accuracy at the 2x512 configuration.
    EXPECT_GT(pipe7b().trainReport().mean_test_accuracy, 0.88);
}

TEST(Integration, PredictorMemoryMatchesPaper)
{
    // §7.4.2 reports ~416 KB for the whole Llama2-7B bank, which
    // corresponds to fp16 storage of (12x512 + 512x1) x 32 weights.
    const auto &preds = pipe7b().predictors();
    const double fp16_kb =
        static_cast<double>(preds.paramsPerPredictor()) *
        preds.nExitLayers() * 2.0 / 1024.0;
    EXPECT_GT(fp16_kb, 330.0);
    EXPECT_LT(fp16_kb, 520.0);
}

TEST(Integration, TechniqueStackingOrdering)
{
    auto hf = run(EngineConfig::huggingFace());
    auto t1 = run(EngineConfig::huggingFace().withSpecEE(false));
    auto t12 = run(EngineConfig::huggingFace().withSpecEE(true));
    auto t123 = run(EngineConfig::huggingFace().withSpecEE(true)
                        .withSpecDecode());

    // Fig. 2(d) / Fig. 19: each technique adds speedup.
    EXPECT_GT(t1.stats.tokens_per_s, hf.stats.tokens_per_s);
    EXPECT_GT(t12.stats.tokens_per_s, t1.stats.tokens_per_s);
    EXPECT_GT(t123.stats.tokens_per_s, t12.stats.tokens_per_s);

    // Full stack lands in the paper's 2.25x band (+-35%).
    const double total =
        t123.stats.tokens_per_s / hf.stats.tokens_per_s;
    EXPECT_GT(total, 1.45);
    EXPECT_LT(total, 3.2);
}

TEST(Integration, AverageForwardLayersNearTable4)
{
    auto ee = run(EngineConfig::huggingFace().withSpecEE());
    // Table 4 MT-Bench Llama2-7B: 23.22 average forward layers.
    EXPECT_GT(ee.stats.avg_forward_layers, 20.0);
    EXPECT_LT(ee.stats.avg_forward_layers, 27.0);
}

TEST(Integration, AccuracyPreservationOnGradedTask)
{
    auto w = pipe7b().makeWorkload("CommonsenseQA", [] {
        workload::GenOptions g;
        g.n_instances = 60;
        g.gen_len = 6;
        g.seed = 3;
        return g;
    }());
    auto dense_engine = pipe7b().makeEngine(EngineConfig::huggingFace(),
                                            hw::HardwareSpec::a100());
    auto ee_engine = pipe7b().makeEngine(
        EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());
    auto dense = dense_engine->run(w, 9);
    auto ee = ee_engine->run(w, 9);
    auto ev_d = workload::Evaluator::evaluate(w, dense.emissions,
                                              pipe7b().corpus());
    auto ev_e = workload::Evaluator::evaluate(w, ee.emissions,
                                              pipe7b().corpus());
    // Table 4: <1% absolute accuracy delta (we allow a small-sample
    // margin — 60 instances quantize accuracy to ~1.7% steps).
    EXPECT_GE(ev_d.accuracy_pct, 0.0);
    EXPECT_NEAR(ev_e.accuracy_pct, ev_d.accuracy_pct, 5.1);
}

TEST(Integration, SpecEESpeedsUpVllmAndAwqLess)
{
    auto vllm = run(EngineConfig::vllm());
    auto vllm_ee = run(EngineConfig::vllm().withSpecEE());
    auto hf = run(EngineConfig::huggingFace());
    auto hf_ee = run(EngineConfig::huggingFace().withSpecEE());
    const double s_vllm =
        vllm_ee.stats.tokens_per_s / vllm.stats.tokens_per_s;
    const double s_hf = hf_ee.stats.tokens_per_s / hf.stats.tokens_per_s;
    // Fig. 14: the faster the base framework, the smaller the SpecEE
    // multiplier (1.27x on HF vs 1.12x on vllm for A100).
    EXPECT_GT(s_hf, 1.05);
    EXPECT_GT(s_vllm, 1.0);
    EXPECT_LT(s_vllm, s_hf);
}

TEST(Integration, EagleGetsModestGainFromT3)
{
    auto eagle = run(EngineConfig::eagle());
    auto both = run(EngineConfig::eagle().withSpecEE());
    const double s = both.stats.tokens_per_s / eagle.stats.tokens_per_s;
    // Fig. 15: 1.05-1.06x over EAGLE (allow a generous band).
    EXPECT_GT(s, 1.0);
    EXPECT_LT(s, 1.35);
}

TEST(Integration, PowerDropsRoughlyTenPercent)
{
    auto hf = run(EngineConfig::huggingFace());
    auto ee = run(EngineConfig::huggingFace().withSpecEE());
    const double rel = ee.stats.avg_power_w / hf.stats.avg_power_w;
    // §7.3.1: 201 W -> 182 W (~10% reduction).
    EXPECT_LT(rel, 0.99);
    EXPECT_GT(rel, 0.80);
}

TEST(Integration, PcScenarioOrdering)
{
    const auto pc = hw::HardwareSpec::pc4060();
    auto lcpp = run(EngineConfig::llamaCpp(), pc);
    auto lcpp_ee = run(EngineConfig::llamaCpp().withSpecEE(), pc);
    auto lcpp_full =
        run(EngineConfig::llamaCpp().withSpecEE().withSpecDecode(), pc);
    EXPECT_GT(lcpp_ee.stats.tokens_per_s, lcpp.stats.tokens_per_s);
    EXPECT_GT(lcpp_full.stats.tokens_per_s, lcpp_ee.stats.tokens_per_s);
    // Fig. 2(d): llama.cpp at single-digit tok/s on the PC.
    EXPECT_LT(lcpp.stats.tokens_per_s, 15.0);
    EXPECT_GT(lcpp.stats.tokens_per_s, 2.0);
}

TEST(Integration, SeventyBillionScalesDown)
{
    engines::PipelineOptions o;
    o.model = "llama2-70b";
    o.train_instances = 4;
    o.train_gen_len = 30;
    o.seed = 43;
    engines::Pipeline pipe(o);
    auto w = pipe.makeWorkload("MMLU", [] {
        workload::GenOptions g;
        g.n_instances = 2;
        g.gen_len = 16;
        g.seed = 5;
        return g;
    }());
    auto hf = pipe.makeEngine(EngineConfig::huggingFace(),
                              hw::HardwareSpec::a100x4());
    auto ee = pipe.makeEngine(EngineConfig::huggingFace().withSpecEE(),
                              hw::HardwareSpec::a100x4());
    auto r_hf = hf->run(w, 1);
    auto r_ee = ee->run(w, 1);
    // Table 4: ~53 average forward layers of 80.
    EXPECT_LT(r_ee.stats.avg_forward_layers, 62.0);
    EXPECT_GT(r_ee.stats.avg_forward_layers, 45.0);
    EXPECT_GT(r_ee.stats.tokens_per_s, r_hf.stats.tokens_per_s);
}
