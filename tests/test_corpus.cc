/**
 * @file
 * Synthetic corpus tests: exact probabilities, top-k consistency,
 * sampling distributions, determinism across instances.
 */

#include <gtest/gtest.h>

#include <map>

#include "oracle/corpus.hh"

using namespace specee;
using namespace specee::oracle;

TEST(Corpus, ProbabilitiesSumToOne)
{
    SyntheticCorpus c(512, 1);
    for (int prev : {0, 7, 100, 511}) {
        double total = 0.0;
        for (int t = 0; t < 512; ++t)
            total += c.prob(prev, t);
        EXPECT_NEAR(total, 1.0, 1e-6) << "prev " << prev;
    }
}

TEST(Corpus, CandidatesAreDistinct)
{
    SyntheticCorpus c(512, 2);
    for (int prev : {3, 99, 255}) {
        auto cand = c.candidates(prev);
        std::sort(cand.begin(), cand.end());
        EXPECT_EQ(std::unique(cand.begin(), cand.end()), cand.end())
            << "prev " << prev;
    }
}

TEST(Corpus, TopNextIsSortedAndConsistentWithProb)
{
    SyntheticCorpus c(512, 3);
    auto top = c.topNext(42, 8);
    ASSERT_EQ(top.size(), 8u);
    for (size_t i = 0; i + 1 < top.size(); ++i)
        EXPECT_GE(top[i].second, top[i + 1].second);
    for (const auto &[tok, p] : top)
        EXPECT_NEAR(p, c.prob(42, tok), 1e-9);
}

TEST(Corpus, TopNextReallyIsTheTop)
{
    SyntheticCorpus c(256, 4);
    auto top = c.topNext(10, 4);
    const double p4 = top.back().second;
    // No token outside the returned set may beat the last entry.
    for (int t = 0; t < 256; ++t) {
        bool in_top = false;
        for (const auto &[tok, p] : top)
            in_top |= tok == t;
        if (!in_top)
            EXPECT_LE(c.prob(10, t), p4 + 1e-9) << "token " << t;
    }
}

TEST(Corpus, SampleNextMatchesProb)
{
    SyntheticCorpus c(128, 5);
    Rng rng(6);
    const int prev = 17;
    std::map<int, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[c.sampleNext(prev, rng)];
    auto top = c.topNext(prev, 3);
    for (const auto &[tok, p] : top) {
        EXPECT_NEAR(counts[tok] / static_cast<double>(n), p, 0.02)
            << "token " << tok;
    }
}

TEST(Corpus, PeakMassDominatesContinuations)
{
    SyntheticCorpus c(4096, 7);
    // The top continuation of any context should be much more likely
    // than a random background token.
    auto top = c.topNext(1234, 1);
    EXPECT_GT(top[0].second, 0.1);
}

TEST(Corpus, DeterministicAcrossInstances)
{
    SyntheticCorpus a(512, 8), b(512, 8);
    Rng ra(9), rb(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.sampleNext(i % 512, ra), b.sampleNext(i % 512, rb));
}

TEST(Corpus, DifferentSeedsGiveDifferentLanguages)
{
    SyntheticCorpus a(512, 10), b(512, 11);
    int same = 0;
    for (int prev = 0; prev < 50; ++prev) {
        if (a.topNext(prev, 1)[0].first == b.topNext(prev, 1)[0].first)
            ++same;
    }
    EXPECT_LT(same, 10);
}

TEST(Corpus, SampleSequenceHasRequestedLength)
{
    SyntheticCorpus c(512, 12);
    Rng rng(13);
    auto seq = c.sampleSequence(37, rng);
    EXPECT_EQ(seq.size(), 37u);
    for (int t : seq) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 512);
    }
}
