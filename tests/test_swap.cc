/**
 * @file
 * Swap-to-host preemption + prefill-aware admission watermark tests:
 * paged-pool swap round trips (bit-identical restore, host-block
 * accounting, guards against touching a swapped sequence), scheduler
 * swap mode reproducing the unpreempted outputs with per-request
 * costs differing only by the swap op classes, mid-prefill victims
 * resuming without re-ingesting chunks, the auto policy never losing
 * to the dearer fixed mode on a given stream, the watermark bounding
 * chunked-admission thrash (including its interaction with
 * GenOptions::prompt_len_override), and the mergeStreams
 * ordering / id-collision contract.
 */

#include <gtest/gtest.h>

#include <memory>

#include "model/paged_kv.hh"
#include "serve/server.hh"
#include "test_util.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::model;

namespace {

tensor::Vec
vec(int hidden, float base)
{
    tensor::Vec v(static_cast<size_t>(hidden));
    for (int i = 0; i < hidden; ++i)
        v[static_cast<size_t>(i)] = base + static_cast<float>(i);
    return v;
}

serve::ServerOptions
baseOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

/** Short interactive + long-prompt batch mix, all arriving at t=0. */
std::vector<serve::Request>
mixedStream(int n_short, int n_long, int long_prompt, int gen_len)
{
    serve::StreamOptions shorts;
    shorts.n_requests = n_short;
    shorts.gen_len = gen_len;
    shorts.seed = 0xbeef;
    serve::StreamOptions longs;
    longs.n_requests = n_long;
    longs.gen_len = gen_len;
    longs.prompt_len = long_prompt;
    longs.priority = serve::Priority::Batch;
    longs.id_base = 100;
    longs.seed = 0xf00d;
    return serve::mergeStreams(serve::synthesizeStream(shorts),
                               serve::synthesizeStream(longs));
}

serve::ServeReport
serveStream(const serve::ServerOptions &opts,
            const std::vector<serve::Request> &stream)
{
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(stream);
    return server.drain();
}

} // namespace

// ---------------------------------------------------------------------------
// Paged-pool swap mechanics
// ---------------------------------------------------------------------------

TEST(PagedKvSwap, RoundTripRestoresEveryPositionBitIdentically)
{
    PagedKvCache pool(2, 16, 4);
    const int seq = pool.createSequence();
    for (int layer = 0; layer < 2; ++layer) {
        for (int pos = 0; pos < 20; ++pos) { // crosses a block boundary
            pool.append(seq, layer,
                        vec(4, static_cast<float>(100 * layer + pos)),
                        vec(4, static_cast<float>(-100 * layer - pos)));
        }
    }
    const int device_before = pool.blocksInUse();
    EXPECT_EQ(pool.hostBlocksInUse(), 0);
    EXPECT_FALSE(pool.isSwapped(seq));

    pool.swapOut(seq);
    EXPECT_TRUE(pool.isSwapped(seq));
    EXPECT_EQ(pool.blocksInUse(), 0); // device blocks all freed
    EXPECT_EQ(pool.hostBlocksInUse(), device_before);
    EXPECT_EQ(pool.seqHostBlocks(seq), device_before);
    // Lengths (the logical block tables) survive the swap.
    EXPECT_EQ(pool.length(seq, 0), 20);
    EXPECT_EQ(pool.length(seq, 1), 20);

    pool.swapIn(seq);
    EXPECT_FALSE(pool.isSwapped(seq));
    EXPECT_EQ(pool.blocksInUse(), device_before);
    EXPECT_EQ(pool.hostBlocksInUse(), 0);
    EXPECT_EQ(pool.seqHostBlocks(seq), 0);
    for (int layer = 0; layer < 2; ++layer) {
        for (int pos = 0; pos < 20; ++pos) {
            EXPECT_FLOAT_EQ(pool.key(seq, layer, pos)[1],
                            static_cast<float>(100 * layer + pos) + 1.0f);
            EXPECT_FLOAT_EQ(pool.value(seq, layer, pos)[3],
                            static_cast<float>(-100 * layer - pos) + 3.0f);
        }
    }
    // The sequence keeps growing normally after the round trip.
    EXPECT_EQ(pool.append(seq, 0, vec(4, 7.0f), vec(4, 8.0f)), 20);
}

TEST(PagedKvSwap, SwapInReallocatesAfterPoolChurn)
{
    // While a sequence sits in the host pool, its former device
    // blocks are reused by another sequence; swap-in must restore
    // into whatever blocks are free then, bit-identically.
    PagedKvCache pool(1, 2, 2);
    const int a = pool.createSequence();
    for (int pos = 0; pos < 20; ++pos) // 2 blocks
        pool.append(a, 0, vec(2, static_cast<float>(pos)), vec(2, 0.5f));
    pool.swapOut(a);

    const int b = pool.createSequence();
    for (int pos = 0; pos < 2 * kKvBlockSize; ++pos) // whole pool
        pool.append(b, 0, vec(2, 999.0f), vec(2, 999.0f));
    EXPECT_EQ(pool.blocksFree(), 0);
    pool.dropSequence(b);

    pool.swapIn(a);
    for (int pos = 0; pos < 20; ++pos)
        EXPECT_FLOAT_EQ(pool.key(a, 0, pos)[0], static_cast<float>(pos));
}

TEST(PagedKvSwap, SwappedSequenceIsUntouchableAndDroppable)
{
    PagedKvCache pool(1, 4, 2);
    const int seq = pool.createSequence();
    pool.append(seq, 0, vec(2, 1.0f), vec(2, 2.0f));
    pool.swapOut(seq);

    EXPECT_DEATH(pool.append(seq, 0, vec(2, 0.0f), vec(2, 0.0f)),
                 "swapped");
    EXPECT_DEATH(pool.key(seq, 0, 0), "swapped");
    EXPECT_DEATH(pool.truncate(seq, 1), "swapped");
    EXPECT_DEATH(pool.swapOut(seq), "double swap-out");

    // Dropping a swapped sequence releases its host-pool footprint.
    EXPECT_GT(pool.hostBlocksInUse(), 0);
    pool.dropSequence(seq);
    EXPECT_EQ(pool.hostBlocksInUse(), 0);
    EXPECT_EQ(pool.blocksInUse(), 0);
}

// ---------------------------------------------------------------------------
// Scheduler swap preemption
// ---------------------------------------------------------------------------

TEST(SwapPreemption, SwapModeReproducesUnpreemptedRunExactly)
{
    // Atomic (unchunked) prefill so the per-request cost census has
    // no prefill classes: under swap preemption the kept run is the
    // ONLY run, so tokens AND per-class modeled costs must match the
    // unpreempted reference except for the two swap op classes.
    const auto &pipe = testutil::tinyPipeline();
    serve::StreamOptions so;
    so.n_requests = 8;
    so.gen_len = 24;
    so.seed = 0x5a9;
    const auto stream = serve::synthesizeStream(so);

    auto opts = baseOpts(2, 8);
    opts.sched.kv_budget_blocks = 170;
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto pressed = serveStream(opts, stream);

    ASSERT_GT(pressed.fleet.preemptions, 0);
    EXPECT_EQ(pressed.fleet.swaps_out, pressed.fleet.preemptions);
    EXPECT_GT(pressed.fleet.swaps_in, 0);
    EXPECT_EQ(pressed.fleet.swaps_in, pressed.fleet.swaps_out);
    EXPECT_LE(pressed.fleet.peak_kv_blocks, 170);
    EXPECT_GT(pressed.fleet.peak_host_kv_blocks, 0);
    EXPECT_GT(pressed.fleet.peak_host_mem_gb, 0.0);

    auto engine = pipe.makeEngine(opts.engine, opts.spec);
    long swapped_requests = 0;
    for (const auto &o : pressed.outcomes) {
        workload::GenOptions gen = o.request.gen;
        gen.n_instances = 1;
        const auto w = pipe.makeWorkload(o.request.dataset, gen,
                                         engine->config().q4Calibrated());
        const auto ref = engine->runOne(w, 0, o.request.seed);
        ASSERT_EQ(o.result.emissions.size(), 1u);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.emissions[0].exit_layers,
                  ref.emissions[0].exit_layers);
        // Per-class census: identical except the swap transfers.
        for (int c = 0; c < hw::kNumOpClasses; ++c) {
            const auto cls = static_cast<hw::OpClass>(c);
            const auto &got = o.result.stats.oplog.totals(cls);
            const auto &want = ref.stats.oplog.totals(cls);
            if (cls == hw::OpClass::KvSwapOut ||
                cls == hw::OpClass::KvSwapIn) {
                EXPECT_EQ(got.count, o.swaps);
                continue;
            }
            EXPECT_EQ(got.time_s, want.time_s)
                << "class " << hw::opClassName(cls);
            EXPECT_EQ(got.energy_j, want.energy_j);
            EXPECT_EQ(got.count, want.count);
        }
        if (o.swaps > 0) {
            ++swapped_requests;
            const auto &out =
                o.result.stats.oplog.totals(hw::OpClass::KvSwapOut);
            const auto &in =
                o.result.stats.oplog.totals(hw::OpClass::KvSwapIn);
            EXPECT_EQ(out.count, o.swaps);
            EXPECT_EQ(in.count, o.swaps);
            // Same KV moved both ways: no progress while swapped.
            EXPECT_EQ(out.bytes, in.bytes);
            EXPECT_GT(out.time_s, 0.0);
            // The swapped request is dearer than its reference by
            // exactly the transfers.
            EXPECT_NEAR(o.result.stats.modeled_time_s -
                            (out.time_s + in.time_s),
                        ref.stats.modeled_time_s,
                        1e-9 * ref.stats.modeled_time_s);
        }
        EXPECT_EQ(o.preemptions, o.swaps);
    }
    EXPECT_GT(swapped_requests, 0);
}

TEST(SwapPreemption, MidPrefillVictimsResumeWithoutReingestingChunks)
{
    // Chunked prefill + a budget tight enough to evict partially
    // prefilled sessions. Under swap, prefill progress survives the
    // round trip: the fleet ingests every prompt token exactly once,
    // where recompute re-ingests evicted prompts from scratch.
    const auto stream = mixedStream(3, 3, 2048, 16);

    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    const auto unbounded = serveStream(opts, stream);
    ASSERT_EQ(unbounded.fleet.preemptions, 0);

    auto swap_opts = opts;
    swap_opts.sched.kv_budget_blocks = 150;
    swap_opts.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto swapped = serveStream(swap_opts, stream);

    auto rec_opts = swap_opts;
    rec_opts.sched.preempt_mode = serve::PreemptMode::Recompute;
    const auto recomputed = serveStream(rec_opts, stream);

    ASSERT_GT(swapped.fleet.swaps_out, 0);
    ASSERT_GT(recomputed.fleet.preemptions, 0);
    EXPECT_EQ(recomputed.fleet.swaps_out, 0);

    // Every prompt token ingested exactly once under swap...
    EXPECT_EQ(swapped.fleet.prefill_tokens,
              unbounded.fleet.prefill_tokens);
    // ...while recompute re-ingests its victims' chunks.
    EXPECT_GT(recomputed.fleet.prefill_tokens,
              unbounded.fleet.prefill_tokens);

    // Both mechanisms are lossless: tokens match the unconstrained
    // run bit-identically.
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(swapped.outcomes[i].result.emissions[0].tokens,
                  unbounded.outcomes[i].result.emissions[0].tokens);
        EXPECT_EQ(recomputed.outcomes[i].result.emissions[0].tokens,
                  unbounded.outcomes[i].result.emissions[0].tokens);
    }
}

TEST(SwapPreemption, DeterministicAcrossWorkerCountsUnderSwap)
{
    const auto stream = mixedStream(3, 3, 2048, 16);

    auto opts1 = baseOpts(1, 6);
    opts1.sched.prefill.chunk_tokens = 128;
    opts1.sched.kv_budget_blocks = 150;
    opts1.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto r1 = serveStream(opts1, stream);

    auto opts3 = baseOpts(3, 6);
    opts3.sched = opts1.sched;
    const auto r3 = serveStream(opts3, stream);

    EXPECT_GT(r1.fleet.swaps_out, 0);
    EXPECT_EQ(r1.fleet.swaps_out, r3.fleet.swaps_out);
    EXPECT_EQ(r1.fleet.swaps_in, r3.fleet.swaps_in);
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    EXPECT_EQ(r1.fleet.peak_host_kv_blocks, r3.fleet.peak_host_kv_blocks);
    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].result.emissions[0].tokens,
                  r3.outcomes[i].result.emissions[0].tokens);
        EXPECT_EQ(r1.outcomes[i].swaps, r3.outcomes[i].swaps);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].ttft_s, r3.outcomes[i].ttft_s);
    }
}

TEST(SwapPreemption, AutoNeverWorseThanTheDearerFixedMode)
{
    // The auto policy decides per victim from modeled costs; on any
    // fixed stream its makespan must not exceed the worse of the two
    // fixed mechanisms (it may beat both by mixing them).
    const auto stream = mixedStream(3, 3, 2048, 16);

    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 150;

    opts.sched.preempt_mode = serve::PreemptMode::Recompute;
    const auto rec = serveStream(opts, stream);
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    const auto swp = serveStream(opts, stream);
    opts.sched.preempt_mode = serve::PreemptMode::Auto;
    const auto aut = serveStream(opts, stream);

    ASSERT_GT(aut.fleet.preemptions, 0);
    const double dearer =
        std::max(rec.fleet.makespan_s, swp.fleet.makespan_s);
    EXPECT_LE(aut.fleet.makespan_s, dearer * (1.0 + 1e-9));

    // All three mechanisms deliver identical tokens.
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(aut.outcomes[i].result.emissions[0].tokens,
                  rec.outcomes[i].result.emissions[0].tokens);
        EXPECT_EQ(aut.outcomes[i].result.emissions[0].tokens,
                  swp.outcomes[i].result.emissions[0].tokens);
    }
}

TEST(SwapPreemption, PlatformWithoutHostLinkDegradesToRecompute)
{
    // swap_bw_gbs = 0 is a documented valid configuration (no swap
    // path): auto must quietly fall back to recompute there, and an
    // explicit swap request must fail fast at run start.
    const auto stream = mixedStream(3, 3, 2048, 16);
    hw::HardwareSpec no_link = hw::HardwareSpec::a100();
    no_link.swap_bw_gbs = 0.0;

    auto opts = baseOpts(2, 6);
    opts.spec = no_link;
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 150;
    opts.sched.preempt_mode = serve::PreemptMode::Auto;
    const auto rep = serveStream(opts, stream);
    EXPECT_GT(rep.fleet.preemptions, 0);
    EXPECT_EQ(rep.fleet.swaps_out, 0);
    for (const auto &o : rep.outcomes)
        EXPECT_FALSE(o.dropped);

    auto swap_opts = opts;
    swap_opts.sched.preempt_mode = serve::PreemptMode::Swap;
    EXPECT_DEATH(serveStream(swap_opts, stream), "no.*host link");
}

TEST(SwapPreemption, RecomputeModeBitIdenticalToLegacyScheduler)
{
    // preempt_mode = Recompute (the default) with the watermark off
    // must reproduce the pre-swap scheduler bit-identically — the
    // new states and counters simply never engage.
    const auto stream = mixedStream(3, 3, 2048, 16);

    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 150;
    const auto rep = serveStream(opts, stream);

    ASSERT_GT(rep.fleet.preemptions, 0);
    EXPECT_EQ(rep.fleet.swaps_out, 0);
    EXPECT_EQ(rep.fleet.swaps_in, 0);
    EXPECT_EQ(rep.fleet.watermark_rejections, 0);
    EXPECT_EQ(rep.fleet.peak_host_kv_blocks, 0);
    EXPECT_DOUBLE_EQ(rep.fleet.peak_host_mem_gb, 0.0);
    for (const auto &o : rep.outcomes) {
        EXPECT_EQ(o.swaps, 0);
        const auto &log = o.result.stats.oplog;
        EXPECT_EQ(log.totals(hw::OpClass::KvSwapOut).count, 0);
        EXPECT_EQ(log.totals(hw::OpClass::KvSwapIn).count, 0);
    }
}

// ---------------------------------------------------------------------------
// Prefill-aware admission watermark
// ---------------------------------------------------------------------------

TEST(Watermark, BoundsChunkedAdmissionThrashForLongPrompts)
{
    // Long prompts via GenOptions::prompt_len_override, chunked
    // admission and a tight budget: without the watermark, the
    // first-chunk reservation over-admits and the fleet thrashes
    // (admit, chunk, evict, recompute); with it, long prompts wait
    // until their full prompt fits, so less prefill work is redone.
    serve::StreamOptions so;
    so.n_requests = 6;
    so.gen_len = 8;
    so.prompt_len = 4096; // becomes GenOptions::prompt_len_override
    so.seed = 0x77a7;
    const auto stream = serve::synthesizeStream(so);

    auto opts = baseOpts(2, 6);
    opts.sched.prefill.chunk_tokens = 128;
    opts.sched.kv_budget_blocks = 160;
    const auto thrash = serveStream(opts, stream);

    auto wm_opts = opts;
    wm_opts.sched.kv_watermark = 0.85;
    const auto gated = serveStream(wm_opts, stream);

    ASSERT_GT(thrash.fleet.preemptions, 0);
    EXPECT_EQ(thrash.fleet.watermark_rejections, 0);
    EXPECT_GT(gated.fleet.watermark_rejections, 0);
    // The override drives true prompt length: the kept runs ingest
    // 6 x 4096 prompt tokens; thrash re-ingests on top.
    EXPECT_GE(thrash.fleet.prefill_tokens, 6L * 4096);
    EXPECT_GE(gated.fleet.prefill_tokens, 6L * 4096);
    EXPECT_LT(gated.fleet.prefill_tokens, thrash.fleet.prefill_tokens);
    EXPECT_LT(gated.fleet.preemptions, thrash.fleet.preemptions);
    // Deferred admission is still lossless.
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_FALSE(gated.outcomes[i].dropped);
        EXPECT_EQ(gated.outcomes[i].result.emissions[0].tokens,
                  thrash.outcomes[i].result.emissions[0].tokens);
    }
}

TEST(Watermark, IgnoredWithoutBudgetAndSatisfiedFleetsMatch)
{
    // kv_watermark without a KV budget is inert: identical timeline.
    const auto stream = mixedStream(3, 2, 1024, 8);

    auto base = baseOpts(2, 4);
    base.sched.prefill.chunk_tokens = 256;
    const auto plain = serveStream(base, stream);

    auto wm = base;
    wm.sched.kv_watermark = 0.5;
    const auto gated = serveStream(wm, stream);

    EXPECT_EQ(gated.fleet.watermark_rejections, 0);
    EXPECT_DOUBLE_EQ(plain.fleet.makespan_s, gated.fleet.makespan_s);
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(plain.outcomes[i].result.emissions[0].tokens,
                  gated.outcomes[i].result.emissions[0].tokens);
    }
}

// ---------------------------------------------------------------------------
// mergeStreams contract (PR 4 leftovers)
// ---------------------------------------------------------------------------

TEST(MergeStreams, OrdersByArrivalThenIdAcrossSources)
{
    serve::StreamOptions a;
    a.n_requests = 4;
    a.rate_rps = 6.0;
    a.seed = 0x111;
    serve::StreamOptions b;
    b.n_requests = 4;
    b.rate_rps = 9.0;
    b.id_base = 50;
    b.seed = 0x222;
    const auto merged = serve::mergeStreams(serve::synthesizeStream(a),
                                            serve::synthesizeStream(b));

    ASSERT_EQ(merged.size(), 8u);
    for (size_t i = 1; i < merged.size(); ++i) {
        const auto &prev = merged[i - 1];
        const auto &cur = merged[i];
        EXPECT_TRUE(prev.arrival_s < cur.arrival_s ||
                    (prev.arrival_s == cur.arrival_s &&
                     prev.id < cur.id));
    }

    // Equal arrivals (closed-loop streams, everything at t = 0) tie-
    // break by id, so the merge is a stable total order the
    // scheduler's (arrival, id) admission contract accepts.
    serve::StreamOptions c;
    c.n_requests = 3;
    c.seed = 0x333;
    serve::StreamOptions d;
    d.n_requests = 3;
    d.id_base = 10;
    d.seed = 0x444;
    const auto tied = serve::mergeStreams(serve::synthesizeStream(c),
                                          serve::synthesizeStream(d));
    for (size_t i = 1; i < tied.size(); ++i)
        EXPECT_LT(tied[i - 1].id, tied[i].id);
}

TEST(MergeStreams, DuplicateIdsAreFatal)
{
    // Colliding ids (forgotten id_base) would make token streams and
    // outcome attribution ambiguous — the merge refuses them, even
    // when the duplicates never sort adjacent.
    serve::StreamOptions a;
    a.n_requests = 3;
    a.seed = 0x555;
    serve::StreamOptions b;
    b.n_requests = 3;
    b.rate_rps = 4.0; // different arrivals: duplicates not adjacent
    b.seed = 0x666;
    EXPECT_DEATH(serve::mergeStreams(serve::synthesizeStream(a),
                                     serve::synthesizeStream(b)),
                 "duplicate request id");
}
