/**
 * @file
 * Attention / FFN / decoder-layer tests against naive references.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/decoder_layer.hh"
#include "model/kv_cache.hh"
#include "tensor/kernels.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::model;

namespace {

ModelConfig
cfg()
{
    return ModelConfig::tiny();
}

tensor::Vec
randomVec(int n, uint64_t seed)
{
    tensor::Vec v(static_cast<size_t>(n));
    Rng rng(seed);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, 0.3));
    return v;
}

} // namespace

TEST(Attention, FirstTokenAttendsOnlyToItself)
{
    auto c = cfg();
    Weights w(c, false);
    Attention attn(c);
    KvCache kv(c.n_layers, c.context_len, c.sim.hidden);
    auto x = randomVec(c.sim.hidden, 1);
    tensor::Vec out(static_cast<size_t>(c.sim.hidden));
    attn.forward(w.layer(0), 0, x, 0, kv, out);

    // With one position the softmax weight is 1, so out = wo(v).
    tensor::Vec v(static_cast<size_t>(c.sim.hidden));
    w.layer(0).wv.gemv(x, v);
    tensor::Vec expect(static_cast<size_t>(c.sim.hidden));
    w.layer(0).wo.gemv(v, expect);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i], expect[i], 1e-4f);
}

TEST(Attention, OutputChangesWithContext)
{
    auto c = cfg();
    Weights w(c, false);
    Attention attn(c);
    KvCache kv(c.n_layers, c.context_len, c.sim.hidden);
    auto x0 = randomVec(c.sim.hidden, 2);
    auto x1 = randomVec(c.sim.hidden, 3);
    tensor::Vec out0(static_cast<size_t>(c.sim.hidden));
    tensor::Vec out1(static_cast<size_t>(c.sim.hidden));
    attn.forward(w.layer(0), 0, x0, 0, kv, out0);
    attn.forward(w.layer(0), 0, x1, 1, kv, out1);

    // Same query vector with vs without history must differ.
    KvCache kv2(c.n_layers, c.context_len, c.sim.hidden);
    Attention attn2(c);
    tensor::Vec alone(static_cast<size_t>(c.sim.hidden));
    attn2.forward(w.layer(0), 0, x1, 0, kv2, alone);
    float diff = 0;
    for (size_t i = 0; i < out1.size(); ++i)
        diff += std::fabs(out1[i] - alone[i]);
    EXPECT_GT(diff, 1e-3f);
}

TEST(Attention, AppendsKvEachCall)
{
    auto c = cfg();
    Weights w(c, false);
    Attention attn(c);
    KvCache kv(c.n_layers, c.context_len, c.sim.hidden);
    auto x = randomVec(c.sim.hidden, 4);
    tensor::Vec out(static_cast<size_t>(c.sim.hidden));
    for (int p = 0; p < 5; ++p)
        attn.forward(w.layer(1), 1, x, p, kv, out);
    EXPECT_EQ(kv.length(1), 5);
    EXPECT_EQ(kv.length(0), 0);
}

TEST(Ffn, SparseWithFullFractionMatchesDense)
{
    auto c = cfg();
    Weights w(c, false);
    Ffn ffn(c);
    auto x = randomVec(c.sim.hidden, 5);
    tensor::Vec dense(static_cast<size_t>(c.sim.hidden));
    tensor::Vec sparse(static_cast<size_t>(c.sim.hidden));
    ffn.forward(w.layer(0), x, dense);
    ffn.forwardSparse(w.layer(0), x, 1.0f, sparse);
    for (size_t i = 0; i < dense.size(); ++i)
        EXPECT_NEAR(dense[i], sparse[i], 1e-3f);
}

TEST(Ffn, SparseUsesRequestedNeuronBudget)
{
    auto c = cfg();
    Weights w(c, false);
    Ffn ffn(c);
    auto x = randomVec(c.sim.hidden, 6);
    tensor::Vec out(static_cast<size_t>(c.sim.hidden));
    ffn.forwardSparse(w.layer(0), x, 0.25f, out);
    EXPECT_EQ(ffn.lastActiveNeurons(),
              static_cast<int>(std::ceil(0.25 * c.sim.ffn)));
    ffn.forward(w.layer(0), x, out);
    EXPECT_EQ(ffn.lastActiveNeurons(), c.sim.ffn);
}

TEST(Ffn, SparseApproximatesDense)
{
    auto c = cfg();
    Weights w(c, false);
    Ffn ffn(c);
    auto x = randomVec(c.sim.hidden, 7);
    tensor::Vec dense(static_cast<size_t>(c.sim.hidden));
    tensor::Vec sparse(static_cast<size_t>(c.sim.hidden));
    ffn.forward(w.layer(0), x, dense);
    ffn.forwardSparse(w.layer(0), x, 0.5f, sparse);
    // Top-half neurons carry most of the activation energy.
    float num = 0, den = 0;
    for (size_t i = 0; i < dense.size(); ++i) {
        num += (dense[i] - sparse[i]) * (dense[i] - sparse[i]);
        den += dense[i] * dense[i];
    }
    EXPECT_LT(num, 0.6f * den);
}

TEST(DecoderLayer, ForwardUpdatesResidualAndKv)
{
    auto c = cfg();
    Weights w(c, false);
    DecoderLayer layer(c);
    KvCache kv(c.n_layers, c.context_len, c.sim.hidden);
    auto x = randomVec(c.sim.hidden, 8);
    auto before = x;
    layer.forward(w.layer(2), 2, x, 0, kv);
    EXPECT_EQ(kv.length(2), 1);
    float diff = 0;
    for (size_t i = 0; i < x.size(); ++i)
        diff += std::fabs(x[i] - before[i]);
    EXPECT_GT(diff, 1e-3f);
}

TEST(DecoderLayer, FillKvMatchesForwardProjection)
{
    auto c = cfg();
    Weights w(c, false);
    DecoderLayer layer(c);
    KvCache kv_fwd(c.n_layers, c.context_len, c.sim.hidden);
    KvCache kv_fill(c.n_layers, c.context_len, c.sim.hidden);
    auto x = randomVec(c.sim.hidden, 9);

    auto x_copy = x;
    layer.forward(w.layer(0), 0, x_copy, 3, kv_fwd);
    layer.fillKv(w.layer(0), 0, x, 3, kv_fill);

    // fillKv must append exactly the k/v the full forward would.
    for (int d = 0; d < c.sim.hidden; ++d) {
        EXPECT_NEAR(kv_fill.key(0, 0)[static_cast<size_t>(d)],
                    kv_fwd.key(0, 0)[static_cast<size_t>(d)], 1e-5f);
        EXPECT_NEAR(kv_fill.value(0, 0)[static_cast<size_t>(d)],
                    kv_fwd.value(0, 0)[static_cast<size_t>(d)], 1e-5f);
    }
}

TEST(Weights, QuantizedProjectionsApproximateDense)
{
    auto c = cfg();
    Weights dense(c, false);
    Weights quant(c, true);
    EXPECT_TRUE(quant.quantized());
    auto x = randomVec(c.sim.hidden, 10);
    tensor::Vec yd(static_cast<size_t>(c.sim.hidden));
    tensor::Vec yq(static_cast<size_t>(c.sim.hidden));
    dense.layer(0).wq.gemv(x, yd);
    quant.layer(0).wq.gemv(x, yq);
    for (size_t i = 0; i < yd.size(); ++i)
        EXPECT_NEAR(yd[i], yq[i], 0.08f);
}

TEST(Weights, EmbeddingRowsAreUnitNorm)
{
    auto c = cfg();
    Weights w(c, false);
    for (int t = 0; t < c.sim.vocab; t += 37) {
        EXPECT_NEAR(tensor::norm2(w.embedding().denseRow(
                        static_cast<size_t>(t))),
                    1.0f, 1e-4f);
    }
}

TEST(Weights, WholeModelBackendQuantizesHeadToo)
{
    auto c = cfg();
    Weights fp(c, tensor::WeightBackend::Fp32,
               tensor::WeightBackend::Fp32);
    Weights q8(c, tensor::WeightBackend::Q8, tensor::WeightBackend::Q8);
    EXPECT_EQ(q8.embedding().backend(), tensor::WeightBackend::Q8);
    EXPECT_TRUE(q8.quantized());
    // Quantized embedding rows stay close to the dense unit-norm rows.
    auto dense_row = fp.embedding().denseRow(11);
    auto q8_row = q8.embedding().denseRow(11);
    for (size_t i = 0; i < dense_row.size(); ++i)
        EXPECT_NEAR(q8_row[i], dense_row[i], 0.02f);
    // The legacy AWQ mode keeps the head dense.
    Weights awq(c, true);
    EXPECT_EQ(awq.embedding().backend(), tensor::WeightBackend::Fp32);
    EXPECT_EQ(awq.layer(0).wq.backend(), tensor::WeightBackend::Q4);
}
