/**
 * @file
 * Feature-extraction tests, including the Fig. 6 ambiguity cases
 * that motivate using all three feature families.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.hh"
#include "tensor/kernels.hh"

using namespace specee;
using namespace specee::core;

TEST(Features, DimensionalityIsThreePerToken)
{
    FeatureExtractor fx(4);
    EXPECT_EQ(fx.dim(), 12);
    EXPECT_EQ(fx.numSpec(), 4);
}

TEST(Features, LayoutIsLogitsProbsDeltas)
{
    FeatureExtractor fx(2);
    fx.beginToken({10, 20});
    tensor::Vec logits = {2.0f, 0.0f};
    auto f = fx.extractFromLogits(logits);
    ASSERT_EQ(f.size(), 6u);
    EXPECT_FLOAT_EQ(f[0], 2.0f);
    EXPECT_FLOAT_EQ(f[1], 0.0f);
    const float p0 = std::exp(2.0f) / (std::exp(2.0f) + 1.0f);
    EXPECT_NEAR(f[2], p0, 1e-5f);
    EXPECT_NEAR(f[3], 1.0f - p0, 1e-5f);
    // First extraction: delta vs the uniform prior (0.5 each).
    EXPECT_NEAR(f[4], p0 - 0.5f, 1e-5f);
    EXPECT_NEAR(f[5], (1.0f - p0) - 0.5f, 1e-5f);
}

TEST(Features, DeltaTracksPreviousExtraction)
{
    FeatureExtractor fx(2);
    fx.beginToken({1, 2});
    tensor::Vec l1 = {0.0f, 0.0f};
    fx.extractFromLogits(l1); // probs = {0.5, 0.5}
    tensor::Vec l2 = {3.0f, 0.0f};
    auto f = fx.extractFromLogits(l2);
    const float p0 = std::exp(3.0f) / (std::exp(3.0f) + 1.0f);
    EXPECT_NEAR(f[4], p0 - 0.5f, 1e-5f);
}

TEST(Features, BeginTokenResetsPrior)
{
    FeatureExtractor fx(2);
    fx.beginToken({1, 2});
    tensor::Vec l = {5.0f, 0.0f};
    fx.extractFromLogits(l);
    fx.beginToken({3, 4});
    auto f = fx.extractFromLogits(l);
    const float p0 = std::exp(5.0f) / (std::exp(5.0f) + 1.0f);
    EXPECT_NEAR(f[4], p0 - 0.5f, 1e-5f); // prior back to uniform
}

TEST(Features, Fig6LeftSameVariationDifferentProbabilities)
{
    // Fig. 6(a): variation 0.12 can come from 0.32-0.20 (should NOT
    // exit) or 0.58-0.46 (may exit) — variation alone cannot
    // distinguish, but the local-probability feature does.
    FeatureExtractor fx(3);
    fx.beginToken({1, 2, 3});

    // Build logit vectors that realize the target local probs.
    auto logits_for = [](float p0) {
        // two equal tails share 1-p0
        const float tail = (1.0f - p0) / 2.0f;
        return tensor::Vec{std::log(p0), std::log(tail),
                           std::log(tail)};
    };
    fx.extractFromLogits(logits_for(0.20f));
    auto low = fx.extractFromLogits(logits_for(0.32f));
    const float low_prob = low[3];   // local prob of token 0
    const float low_delta = low[6];  // variation of token 0

    fx.beginToken({1, 2, 3});
    fx.extractFromLogits(logits_for(0.46f));
    auto high = fx.extractFromLogits(logits_for(0.58f));

    EXPECT_NEAR(low_delta, high[6], 0.02f);  // same variation
    EXPECT_GT(high[3], low_prob + 0.2f);     // different local prob
}

TEST(Features, Fig6RightSameProbabilitiesDifferentLogits)
{
    // Fig. 6(b): identical local probabilities can hide different
    // logit magnitudes (0.58 from logits ~3.37 vs ~9.80) — the raw
    // logit feature separates them.
    FeatureExtractor fx(3);
    fx.beginToken({1, 2, 3});
    tensor::Vec small = {3.37f, 2.98f, 2.29f};
    auto span_a = fx.extractFromLogits(small);
    // extract() returns a view of an internal buffer; copy before the
    // next extraction.
    tensor::Vec fa(span_a.begin(), span_a.end());
    fx.beginToken({1, 2, 3});
    tensor::Vec big = {9.80f, 9.41f, 8.72f};
    auto fb = fx.extractFromLogits(big);
    EXPECT_NEAR(fa[3], fb[3], 0.01f);    // same local probabilities
    EXPECT_GT(fb[0] - fa[0], 5.0f);      // logits tell them apart
}

TEST(Features, AdaInferFeaturesAreTopGapEntropy)
{
    tensor::Vec logits = {2.0f, 1.0f, 0.0f, 0.0f};
    auto f = adaInferFeatures(logits);
    // softmax of {2,1,0,0}
    const float z = std::exp(2.0f) + std::exp(1.0f) + 2.0f;
    const float p0 = std::exp(2.0f) / z;
    const float p1 = std::exp(1.0f) / z;
    EXPECT_NEAR(f[0], p0, 1e-4f);
    EXPECT_NEAR(f[1], p0 - p1, 1e-4f);
    EXPECT_GT(f[2], 0.0f);
    EXPECT_LT(f[2], 1.0f);
}

TEST(Features, AdaInferEntropyBounds)
{
    tensor::Vec uniform = {1.0f, 1.0f, 1.0f, 1.0f};
    auto fu = adaInferFeatures(uniform);
    EXPECT_NEAR(fu[2], 1.0f, 1e-4f); // normalized entropy of uniform

    tensor::Vec peaked = {100.0f, 0.0f, 0.0f, 0.0f};
    auto fp = adaInferFeatures(peaked);
    EXPECT_NEAR(fp[2], 0.0f, 1e-3f);
    EXPECT_NEAR(fp[0], 1.0f, 1e-4f);
}

TEST(Features, ExtractMatchesModelSlicedLogits)
{
    auto cfg = model::ModelConfig::tiny();
    model::TargetModel tm(cfg, {});
    model::TokenScript s;
    s.target = 40;
    s.distractor = 50;
    s.conv_layer = 3;
    tm.beginToken(7, s);
    tm.runLayer();

    FeatureExtractor fx(4);
    std::vector<int> spec = {40, 41, 42, 43};
    fx.beginToken(spec);
    auto f = fx.extract(tm);
    tensor::Vec direct(4);
    tm.logitsSliced(spec, direct);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(f[static_cast<size_t>(i)],
                        direct[static_cast<size_t>(i)]);
}
