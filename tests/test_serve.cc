/**
 * @file
 * Serving-layer tests: FIFO queue semantics, deterministic fleet
 * results regardless of worker count, FIFO admission fairness,
 * fleet-vs-per-request stats consistency, and the batched-serving
 * speedup over sequential one-request-at-a-time execution.
 */

#include <gtest/gtest.h>

#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

namespace {

std::vector<serve::Request>
makeStream(int n, double rate_rps, int gen_len = 12)
{
    serve::StreamOptions so;
    so.datasets = {"MT-Bench", "SUM", "QA"};
    so.n_requests = n;
    so.gen_len = gen_len;
    so.rate_rps = rate_rps;
    so.seed = 0xbeef;
    return serve::synthesizeStream(so);
}

serve::ServerOptions
serverOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

} // namespace

TEST(RequestQueue, FifoOrderAndClose)
{
    serve::RequestQueue q;
    for (uint64_t i = 0; i < 5; ++i) {
        serve::Request r;
        r.id = i;
        q.push(std::move(r));
    }
    EXPECT_EQ(q.size(), 5u);

    serve::Request out;
    for (uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out.id, i);
    }
    EXPECT_FALSE(q.tryPop(out));

    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.pop(out)); // closed + empty: no block, no item
}

TEST(RequestStream, PoissonArrivalsAreOrderedAndDeterministic)
{
    auto a = makeStream(16, 4.0);
    auto b = makeStream(16, 4.0);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
        }
    }
}

TEST(Server, DeterministicAcrossWorkerCounts)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 6.0);

    serve::Server one(pipe, serverOpts(1, 4));
    one.submit(stream);
    auto r1 = one.drain();

    serve::Server three(pipe, serverOpts(3, 4));
    three.submit(stream);
    auto r3 = three.drain();

    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        const auto &a = r1.outcomes[i];
        const auto &b = r3.outcomes[i];
        EXPECT_EQ(a.request.id, b.request.id);
        ASSERT_EQ(a.result.emissions.size(), 1u);
        EXPECT_EQ(a.result.emissions[0].tokens,
                  b.result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(a.admit_s, b.admit_s);
        EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
    }
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r1.fleet.energy_j, r3.fleet.energy_j);
    EXPECT_DOUBLE_EQ(r1.fleet.p99_latency_s, r3.fleet.p99_latency_s);
}

TEST(Server, FifoAdmissionFairness)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0); // all arrive at t = 0

    serve::Server server(pipe, serverOpts(2, 2));
    server.submit(stream);
    auto rep = server.drain();

    ASSERT_EQ(rep.outcomes.size(), 6u);
    // Outcomes come back in admission order; with equal arrivals the
    // tie-break is submission (id) order, and admission times never
    // go backwards: nobody overtakes the queue.
    for (size_t i = 0; i < rep.outcomes.size(); ++i) {
        const auto &o = rep.outcomes[i];
        EXPECT_EQ(o.request.id, static_cast<uint64_t>(i));
        EXPECT_GE(o.queue_s, 0.0);
        if (i > 0) {
            EXPECT_GE(o.admit_s, rep.outcomes[i - 1].admit_s);
        }
    }
    // Exactly max_batch requests are admitted at the start.
    EXPECT_DOUBLE_EQ(rep.outcomes[0].admit_s, 0.0);
    EXPECT_DOUBLE_EQ(rep.outcomes[1].admit_s, 0.0);
    EXPECT_GT(rep.outcomes[2].admit_s, 0.0);
}

TEST(Server, FleetStatsMatchPerRequestStats)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(5, 0.0);

    // Sequential serving: no amortization, so the fleet timeline must
    // reduce exactly to the sum of the independent runs.
    serve::Server server(pipe, serverOpts(2, 1));
    server.submit(stream);
    auto rep = server.drain();

    long tokens = 0;
    double time_s = 0.0, energy_j = 0.0, flops = 0.0;
    for (const auto &o : rep.outcomes) {
        tokens += o.result.stats.tokens;
        time_s += o.result.stats.modeled_time_s;
        const auto grand = o.result.stats.oplog.grand();
        energy_j += grand.energy_j;
        flops += grand.flops;
    }
    EXPECT_EQ(rep.fleet.tokens, tokens);
    EXPECT_NEAR(rep.fleet.makespan_s, time_s, 1e-9 * time_s);
    EXPECT_NEAR(rep.fleet.energy_j, energy_j, 1e-9 * energy_j);
    EXPECT_NEAR(rep.fleet.oplog.grand().flops, flops, 1e-6 * flops);
    EXPECT_EQ(rep.fleet.requests, 5);
    EXPECT_DOUBLE_EQ(rep.fleet.mean_batch_occupancy, 1.0);
    // Sequential latency: each request waits for all predecessors.
    EXPECT_GE(rep.fleet.p99_latency_s, rep.fleet.p50_latency_s);
}

TEST(Server, BatchedServingBeatsSequential)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 0.0);

    serve::Server seq(pipe, serverOpts(2, 1));
    seq.submit(stream);
    auto rs = seq.drain();

    serve::Server batched(pipe, serverOpts(2, 4));
    batched.submit(stream);
    auto rb = batched.drain();

    // Same functional tokens either way...
    EXPECT_EQ(rs.fleet.tokens, rb.fleet.tokens);
    // ...but continuous batching amortizes the weight reads.
    EXPECT_GT(rb.fleet.tokens_per_s, rs.fleet.tokens_per_s);
    EXPECT_LT(rb.fleet.makespan_s, rs.fleet.makespan_s);
    EXPECT_GT(rb.fleet.mean_batch_occupancy, 1.5);
    // Amortized weight reads also cut fleet energy.
    EXPECT_LT(rb.fleet.energy_j, rs.fleet.energy_j);
}

TEST(BatchScheduler, EmbedIsBatchAmortized)
{
    // The embedding lookup is a weight-table read: one batched gather
    // per iteration, amortized like the other weight-bound classes.
    // Charging it per-request overcounted batched traffic.
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::Embed));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::DecoderLayer));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::LmHeadFull));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::Draft));
    // Per-request traffic stays private.
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::KvRead));
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::Predictor));
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::LmHeadSliced));
}

TEST(Server, Q8BackendSpeedsUpBatchedServing)
{
    // The quantized-serving scenario: a q8 model halves the shared
    // weight stream every decode iteration waits on, so batched
    // fleet throughput must rise by well over the private-traffic
    // dilution (the acceptance bar is 1.3x at max_batch >= 4).
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 0.0);

    auto opts = serverOpts(2, 4);
    opts.engine = engines::EngineConfig::huggingFace();
    serve::Server fp32(pipe, opts);
    fp32.submit(stream);
    auto r_fp32 = fp32.drain();

    opts.engine = engines::EngineConfig::huggingFace().withWeightBackend(
        tensor::WeightBackend::Q8);
    serve::Server q8(pipe, opts);
    q8.submit(stream);
    auto r_q8 = q8.drain();

    EXPECT_EQ(r_q8.fleet.tokens, r_fp32.fleet.tokens);
    EXPECT_GT(r_q8.fleet.tokens_per_s, 1.3 * r_fp32.fleet.tokens_per_s);
    EXPECT_LT(r_q8.fleet.energy_per_token_j,
              r_fp32.fleet.energy_per_token_j);
}

TEST(Engine, RunOneIsReentrant)
{
    const auto &pipe = testutil::tinyPipeline();
    auto w = pipe.makeWorkload("MT-Bench", testutil::smallGen(3, 16));
    auto engine = pipe.makeEngine(
        engines::EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());

    auto a = engine->runOne(w, 1, 77);
    auto full = engine->run(w, 123); // unrelated work in between
    auto b = engine->runOne(w, 1, 77);

    ASSERT_EQ(a.emissions.size(), 1u);
    ASSERT_EQ(b.emissions.size(), 1u);
    EXPECT_EQ(a.emissions[0].tokens, b.emissions[0].tokens);
    EXPECT_EQ(a.emissions[0].exit_layers, b.emissions[0].exit_layers);
    EXPECT_DOUBLE_EQ(a.stats.modeled_time_s, b.stats.modeled_time_s);
    EXPECT_EQ(full.emissions.size(), 3u);
}
