/**
 * @file
 * Serving-layer tests: FIFO queue semantics (incl. bounded capacity
 * and push-after-close), deterministic live-batched fleet results
 * regardless of worker count, FIFO admission fairness,
 * fleet-vs-per-request stats consistency, sequential equivalence of
 * the live scheduler with Engine::runOne, KV-pressure preemption,
 * deadline drops, per-token streaming / TTFT metrics, and the
 * batched-serving speedup over sequential execution.
 */

#include <gtest/gtest.h>

#include <map>

#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;

namespace {

std::vector<serve::Request>
makeStream(int n, double rate_rps, int gen_len = 12)
{
    serve::StreamOptions so;
    so.datasets = {"MT-Bench", "SUM", "QA"};
    so.n_requests = n;
    so.gen_len = gen_len;
    so.rate_rps = rate_rps;
    so.seed = 0xbeef;
    return serve::synthesizeStream(so);
}

serve::ServerOptions
serverOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

} // namespace

TEST(RequestQueue, FifoOrderAndClose)
{
    serve::RequestQueue q;
    for (uint64_t i = 0; i < 5; ++i) {
        serve::Request r;
        r.id = i;
        EXPECT_TRUE(q.push(std::move(r)));
    }
    EXPECT_EQ(q.size(), 5u);

    serve::Request out;
    for (uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out.id, i);
    }
    EXPECT_FALSE(q.tryPop(out));

    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.pop(out)); // closed + empty: no block, no item
}

TEST(RequestQueue, PushAfterCloseIsCountedNoOp)
{
    serve::RequestQueue q;
    serve::Request r;
    r.id = 7;
    EXPECT_TRUE(q.push(r));
    q.close();
    // Defined no-op: returns false, queue unchanged, rejection
    // counted (previously undefined behavior by precondition).
    EXPECT_FALSE(q.push(r));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.rejected(), 1u);
    serve::Request out;
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_EQ(out.id, 7u);
}

TEST(RequestQueue, BoundedCapacityRejectsWithCounter)
{
    serve::RequestQueue q(/*capacity=*/2);
    EXPECT_EQ(q.capacity(), 2u);
    serve::Request r;
    EXPECT_TRUE(q.push(r));
    EXPECT_TRUE(q.push(r));
    EXPECT_FALSE(q.push(r)); // full
    EXPECT_FALSE(q.push(r));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.rejected(), 2u);
    // Draining frees capacity again.
    serve::Request out;
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_TRUE(q.push(r));
    EXPECT_EQ(q.rejected(), 2u);
}

TEST(Server, BoundedQueueBackpressure)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(5, 0.0, 6);

    auto opts = serverOpts(1, 2);
    opts.queue_capacity = 2;
    serve::Server server(pipe, opts);
    EXPECT_EQ(server.submit(stream), 2u);
    EXPECT_EQ(server.rejected(), 3u);

    auto rep = server.drain();
    EXPECT_EQ(rep.fleet.requests, 2);
    EXPECT_EQ(rep.fleet.rejected, 3);
    EXPECT_EQ(rep.outcomes.size(), 2u);
}

TEST(RequestStream, PoissonArrivalsAreOrderedAndDeterministic)
{
    auto a = makeStream(16, 4.0);
    auto b = makeStream(16, 4.0);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
        }
    }
}

TEST(Server, DeterministicAcrossWorkerCounts)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 6.0);

    serve::Server one(pipe, serverOpts(1, 4));
    one.submit(stream);
    auto r1 = one.drain();

    serve::Server three(pipe, serverOpts(3, 4));
    three.submit(stream);
    auto r3 = three.drain();

    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        const auto &a = r1.outcomes[i];
        const auto &b = r3.outcomes[i];
        EXPECT_EQ(a.request.id, b.request.id);
        ASSERT_EQ(a.result.emissions.size(), 1u);
        EXPECT_EQ(a.result.emissions[0].tokens,
                  b.result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(a.admit_s, b.admit_s);
        EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
    }
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    EXPECT_DOUBLE_EQ(r1.fleet.energy_j, r3.fleet.energy_j);
    EXPECT_DOUBLE_EQ(r1.fleet.p99_latency_s, r3.fleet.p99_latency_s);
}

TEST(Server, FifoAdmissionFairness)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0); // all arrive at t = 0

    serve::Server server(pipe, serverOpts(2, 2));
    server.submit(stream);
    auto rep = server.drain();

    ASSERT_EQ(rep.outcomes.size(), 6u);
    // Outcomes come back in admission order; with equal arrivals the
    // tie-break is submission (id) order, and admission times never
    // go backwards: nobody overtakes the queue.
    for (size_t i = 0; i < rep.outcomes.size(); ++i) {
        const auto &o = rep.outcomes[i];
        EXPECT_EQ(o.request.id, static_cast<uint64_t>(i));
        EXPECT_GE(o.queue_s, 0.0);
        if (i > 0) {
            EXPECT_GE(o.admit_s, rep.outcomes[i - 1].admit_s);
        }
    }
    // Exactly max_batch requests are admitted at the start.
    EXPECT_DOUBLE_EQ(rep.outcomes[0].admit_s, 0.0);
    EXPECT_DOUBLE_EQ(rep.outcomes[1].admit_s, 0.0);
    EXPECT_GT(rep.outcomes[2].admit_s, 0.0);
}

TEST(Server, FleetStatsMatchPerRequestStats)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(5, 0.0);

    // Sequential serving: no amortization, so the fleet timeline must
    // reduce exactly to the sum of the independent runs.
    serve::Server server(pipe, serverOpts(2, 1));
    server.submit(stream);
    auto rep = server.drain();

    long tokens = 0;
    double time_s = 0.0, energy_j = 0.0, flops = 0.0;
    for (const auto &o : rep.outcomes) {
        tokens += o.result.stats.tokens;
        time_s += o.result.stats.modeled_time_s;
        const auto grand = o.result.stats.oplog.grand();
        energy_j += grand.energy_j;
        flops += grand.flops;
    }
    EXPECT_EQ(rep.fleet.tokens, tokens);
    EXPECT_NEAR(rep.fleet.makespan_s, time_s, 1e-9 * time_s);
    EXPECT_NEAR(rep.fleet.energy_j, energy_j, 1e-9 * energy_j);
    EXPECT_NEAR(rep.fleet.oplog.grand().flops, flops, 1e-6 * flops);
    EXPECT_EQ(rep.fleet.requests, 5);
    EXPECT_DOUBLE_EQ(rep.fleet.mean_batch_occupancy, 1.0);
    // Sequential latency: each request waits for all predecessors.
    EXPECT_GE(rep.fleet.p99_latency_s, rep.fleet.p50_latency_s);
}

TEST(Server, BatchedServingBeatsSequential)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 0.0);

    serve::Server seq(pipe, serverOpts(2, 1));
    seq.submit(stream);
    auto rs = seq.drain();

    serve::Server batched(pipe, serverOpts(2, 4));
    batched.submit(stream);
    auto rb = batched.drain();

    // Same functional tokens either way...
    EXPECT_EQ(rs.fleet.tokens, rb.fleet.tokens);
    // ...but continuous batching amortizes the weight reads.
    EXPECT_GT(rb.fleet.tokens_per_s, rs.fleet.tokens_per_s);
    EXPECT_LT(rb.fleet.makespan_s, rs.fleet.makespan_s);
    EXPECT_GT(rb.fleet.mean_batch_occupancy, 1.5);
    // Amortized weight reads also cut fleet energy.
    EXPECT_LT(rb.fleet.energy_j, rs.fleet.energy_j);
}

TEST(BatchScheduler, EmbedIsBatchAmortized)
{
    // The embedding lookup is a weight-table read: one batched gather
    // per iteration, amortized like the other weight-bound classes.
    // Charging it per-request overcounted batched traffic.
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::Embed));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::DecoderLayer));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::LmHeadFull));
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::Draft));
    // A prefill chunk's weight stream is the same full-depth read a
    // decode iteration waits on — shared in a mixed batch — while
    // its chunk-length-scaled compute interferes privately.
    EXPECT_TRUE(serve::isSharedClass(hw::OpClass::PrefillWeights));
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::PrefillCompute));
    // Per-request traffic stays private.
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::KvRead));
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::Predictor));
    EXPECT_FALSE(serve::isSharedClass(hw::OpClass::LmHeadSliced));
}

TEST(Server, Q8BackendSpeedsUpBatchedServing)
{
    // The quantized-serving scenario: a q8 model halves the shared
    // weight stream every decode iteration waits on, so batched
    // fleet throughput must rise by well over the private-traffic
    // dilution (the acceptance bar is 1.3x at max_batch >= 4).
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(8, 0.0);

    auto opts = serverOpts(2, 4);
    opts.engine = engines::EngineConfig::huggingFace();
    serve::Server fp32(pipe, opts);
    fp32.submit(stream);
    auto r_fp32 = fp32.drain();

    opts.engine = engines::EngineConfig::huggingFace().withWeightBackend(
        tensor::WeightBackend::Q8);
    serve::Server q8(pipe, opts);
    q8.submit(stream);
    auto r_q8 = q8.drain();

    EXPECT_EQ(r_q8.fleet.tokens, r_fp32.fleet.tokens);
    EXPECT_GT(r_q8.fleet.tokens_per_s, 1.3 * r_fp32.fleet.tokens_per_s);
    EXPECT_LT(r_q8.fleet.energy_per_token_j,
              r_fp32.fleet.energy_per_token_j);
}

TEST(Engine, RunOneIsReentrant)
{
    const auto &pipe = testutil::tinyPipeline();
    auto w = pipe.makeWorkload("MT-Bench", testutil::smallGen(3, 16));
    auto engine = pipe.makeEngine(
        engines::EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());

    auto a = engine->runOne(w, 1, 77);
    auto full = engine->run(w, 123); // unrelated work in between
    auto b = engine->runOne(w, 1, 77);

    ASSERT_EQ(a.emissions.size(), 1u);
    ASSERT_EQ(b.emissions.size(), 1u);
    EXPECT_EQ(a.emissions[0].tokens, b.emissions[0].tokens);
    EXPECT_EQ(a.emissions[0].exit_layers, b.emissions[0].exit_layers);
    EXPECT_DOUBLE_EQ(a.stats.modeled_time_s, b.stats.modeled_time_s);
    EXPECT_EQ(full.emissions.size(), 3u);
}

TEST(Server, LiveSequentialMatchesRunOne)
{
    // Acceptance bar for the live scheduler: max_batch = 1 with an
    // unbounded KV budget reproduces sequential per-request serving
    // exactly — emissions AND modeled per-request costs are
    // bit-identical to Engine::runOne.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 4.0);

    serve::Server server(pipe, serverOpts(2, 1));
    server.submit(stream);
    auto rep = server.drain();

    auto engine = pipe.makeEngine(
        engines::EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());
    ASSERT_EQ(rep.outcomes.size(), stream.size());
    for (const auto &o : rep.outcomes) {
        workload::GenOptions gen = o.request.gen;
        gen.n_instances = 1;
        const auto w = pipe.makeWorkload(
            o.request.dataset, gen,
            engine->config().q4Calibrated());
        auto ref = engine->runOne(w, 0, o.request.seed);
        ASSERT_EQ(o.result.emissions.size(), 1u);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.emissions[0].exit_layers,
                  ref.emissions[0].exit_layers);
        EXPECT_EQ(o.result.stats.modeled_time_s,
                  ref.stats.modeled_time_s);
        EXPECT_EQ(o.result.stats.tokens, ref.stats.tokens);
        EXPECT_EQ(o.result.stats.oplog.grand().energy_j,
                  ref.stats.oplog.grand().energy_j);
        EXPECT_EQ(o.result.stats.exits, ref.stats.exits);
        EXPECT_EQ(o.result.stats.peak_mem_gb, ref.stats.peak_mem_gb);
        EXPECT_EQ(o.preemptions, 0);
        EXPECT_FALSE(o.dropped);
    }
}

TEST(Server, BatchedRequestsBitIdenticalToRunOne)
{
    // §6.3: SpecEE (and the functional decode in general) is
    // orthogonal to the serving stack — live interleaving of many
    // sessions on one engine must not change any request's tokens.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0);

    serve::Server server(pipe, serverOpts(1, 4));
    server.submit(stream);
    auto rep = server.drain();

    auto engine = pipe.makeEngine(
        engines::EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());
    for (const auto &o : rep.outcomes) {
        workload::GenOptions gen = o.request.gen;
        gen.n_instances = 1;
        const auto w = pipe.makeWorkload(
            o.request.dataset, gen, engine->config().q4Calibrated());
        auto ref = engine->runOne(w, 0, o.request.seed);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.stats.modeled_time_s,
                  ref.stats.modeled_time_s);
    }
}

TEST(Server, PreemptionUnderKvPressure)
{
    // KV pool budget sized well below the batch working set: the
    // scheduler must preempt (evict KV, re-enqueue), and every
    // request must still complete with exactly the tokens an
    // unconstrained run produces.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0, 16);

    auto opts = serverOpts(2, 4);
    serve::Server unbounded(pipe, opts);
    unbounded.submit(stream);
    auto ru = unbounded.drain();
    EXPECT_EQ(ru.fleet.preemptions, 0);
    // 8 layers x ceil(28/16) blocks ~ 16 blocks per finished seq: 4
    // sequences need ~64; a 40-block budget forces eviction.
    opts.sched.kv_budget_blocks = 40;
    serve::Server pressed(pipe, opts);
    pressed.submit(stream);
    auto rp = pressed.drain();

    EXPECT_GT(rp.fleet.preemptions, 0);
    EXPECT_LE(rp.fleet.peak_kv_blocks, 40);
    // fleet.tokens is goodput: recompute after eviction is priced
    // into the timeline but each output position counts once.
    EXPECT_EQ(rp.fleet.tokens, ru.fleet.tokens);
    EXPECT_LT(rp.fleet.tokens_per_s, ru.fleet.tokens_per_s);
    ASSERT_EQ(rp.outcomes.size(), ru.outcomes.size());
    for (size_t i = 0; i < rp.outcomes.size(); ++i) {
        EXPECT_FALSE(rp.outcomes[i].dropped);
        // Evicted-and-recomputed requests still emit identical
        // tokens (decode is a pure function of the request seed).
        EXPECT_EQ(rp.outcomes[i].result.emissions[0].tokens,
                  ru.outcomes[i].result.emissions[0].tokens);
    }
    // The wasted (re-decoded) work costs fleet time.
    EXPECT_GT(rp.fleet.makespan_s, ru.fleet.makespan_s);
    EXPECT_GT(ru.fleet.peak_kv_blocks, rp.fleet.peak_kv_blocks);
}

TEST(Server, PreemptionDeterministicAcrossWorkerCounts)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0, 16);

    auto opts1 = serverOpts(1, 4);
    opts1.sched.kv_budget_blocks = 40;
    serve::Server one(pipe, opts1);
    one.submit(stream);
    auto r1 = one.drain();

    auto opts3 = serverOpts(3, 4);
    opts3.sched.kv_budget_blocks = 40;
    serve::Server three(pipe, opts3);
    three.submit(stream);
    auto r3 = three.drain();

    EXPECT_GT(r1.fleet.preemptions, 0);
    EXPECT_EQ(r1.fleet.preemptions, r3.fleet.preemptions);
    EXPECT_EQ(r1.fleet.peak_kv_blocks, r3.fleet.peak_kv_blocks);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].result.emissions[0].tokens,
                  r3.outcomes[i].result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].ttft_s, r3.outcomes[i].ttft_s);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].finish_s,
                         r3.outcomes[i].finish_s);
    }
}

TEST(Server, StreamedTokensMatchGoodputUnderPreemption)
{
    // Every delivered token is streamed exactly once even when
    // sessions are evicted and re-decode their prefix.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0, 16);

    auto opts = serverOpts(2, 4);
    opts.sched.kv_budget_blocks = 40;
    std::vector<serve::TokenEvent> events;
    opts.on_token = [&events](const serve::TokenEvent &ev) {
        events.push_back(ev);
        return true;
    };
    serve::Server server(pipe, opts);
    server.submit(stream);
    auto rep = server.drain();

    EXPECT_GT(rep.fleet.preemptions, 0);
    EXPECT_EQ(static_cast<long>(events.size()), rep.fleet.tokens);
    std::map<uint64_t, int> next_index;
    for (const auto &ev : events)
        EXPECT_EQ(ev.index, next_index[ev.request_id]++);
    EXPECT_EQ(rep.fleet.tokens, 6 * 16);
}

TEST(Server, QueuedDeadlineDropsWhileSlotsAreFull)
{
    // A queued request whose deadline expires while every decode
    // slot is busy is dropped at that iteration boundary, not when a
    // slot eventually frees.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(3, 0.0, 16);
    stream[2].deadline_s = 1e-7; // expires while 0 and 1 hold slots

    serve::Server server(pipe, serverOpts(1, 2));
    server.submit(stream);
    auto rep = server.drain();

    EXPECT_EQ(rep.fleet.dropped, 1);
    const auto &o = rep.outcomes[2];
    EXPECT_TRUE(o.dropped);
    // Dropped promptly: long before the busy slots drained.
    EXPECT_LT(o.finish_s, rep.outcomes[0].finish_s);
}

TEST(Server, DeadlineDropsAtIterationBoundary)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(4, 0.0, 16);
    // Request 2 carries a deadline no schedule can meet (post-hoc
    // replay could never honor this; the live loop drops it at the
    // first boundary past the deadline).
    stream[2].deadline_s = 1e-7;

    serve::Server server(pipe, serverOpts(2, 2));
    server.submit(stream);
    auto rep = server.drain();

    EXPECT_EQ(rep.fleet.dropped, 1);
    ASSERT_EQ(rep.outcomes.size(), 4u);
    for (const auto &o : rep.outcomes) {
        if (o.request.id == 2) {
            EXPECT_TRUE(o.dropped);
            EXPECT_TRUE(o.result.emissions.empty());
        } else {
            EXPECT_FALSE(o.dropped);
            EXPECT_EQ(static_cast<int>(o.result.emissions[0].tokens.size()),
                      16);
        }
    }
    // Latency stats cover completed requests only.
    EXPECT_GT(rep.fleet.p99_latency_s, 0.0);
}

TEST(Server, StreamsTokensWithTtftBelowLatency)
{
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(6, 0.0, 12);

    auto opts = serverOpts(2, 4);
    std::vector<serve::TokenEvent> events;
    opts.on_token = [&events](const serve::TokenEvent &ev) {
        events.push_back(ev);
        return true;
    };
    serve::Server server(pipe, opts);
    server.submit(stream);
    auto rep = server.drain();

    // Every decoded token streamed exactly once, clock monotone.
    EXPECT_EQ(static_cast<long>(events.size()), rep.fleet.tokens);
    std::map<uint64_t, int> next_index;
    double prev_s = 0.0;
    for (const auto &ev : events) {
        EXPECT_EQ(ev.index, next_index[ev.request_id]++);
        EXPECT_GE(ev.emit_s, prev_s);
        prev_s = ev.emit_s;
    }

    // Under batching, the first token lands well before the request
    // finishes — TTFT is a first-class metric now.
    for (const auto &o : rep.outcomes) {
        EXPECT_GT(o.ttft_s, 0.0);
        EXPECT_LT(o.ttft_s, o.latency_s);
        EXPECT_GT(o.mean_itl_s, 0.0);
    }
    EXPECT_GT(rep.fleet.mean_ttft_s, 0.0);
    EXPECT_LT(rep.fleet.mean_ttft_s, rep.fleet.mean_latency_s);
    EXPECT_LE(rep.fleet.p50_ttft_s, rep.fleet.p99_ttft_s);
    EXPECT_GT(rep.fleet.mean_itl_s, 0.0);
    EXPECT_GT(rep.fleet.peak_kv_blocks, 0);
    EXPECT_GT(rep.fleet.peak_fleet_mem_gb, 0.0);
}

TEST(Server, PreemptionVictimsAvoidNearDeadlineSessions)
{
    // Victim selection tie-breaks AWAY from near-deadline sessions
    // within the batch-tier-first rule: evicting a session with
    // seconds of slack just to re-admit it past its deadline turns a
    // recoverable preemption into a drop.
    const auto &pipe = testutil::tinyPipeline();
    auto stream = makeStream(3, 0.0, 16);

    // Baselines: unconstrained finish of the youngest request, and
    // its finish under KV pressure while NO deadlines exist (where
    // the scan reduces to the legacy youngest-victim rule and evicts
    // exactly it).
    auto opts = serverOpts(2, 3);
    serve::Server unb(pipe, opts);
    unb.submit(stream);
    const auto ru = unb.drain();

    // 48 blocks force exactly ONE eviction on this stream — the
    // interesting case, where the scan has a real choice (a tighter
    // budget needs two victims per boundary and must take the
    // near-deadline session anyway).
    opts.sched.kv_budget_blocks = 48;
    serve::Server pressed(pipe, opts);
    pressed.submit(stream);
    const auto rp = pressed.drain();
    ASSERT_GT(rp.fleet.preemptions, 0);
    ASSERT_GT(rp.outcomes[2].preemptions, 0); // legacy victim
    const double f_unb = ru.outcomes[2].finish_s;
    const double f_legacy = rp.outcomes[2].finish_s;
    ASSERT_LT(f_unb, f_legacy);

    // A deadline the youngest request can only meet if it is NOT the
    // victim: past its unconstrained finish, before its evicted one.
    auto urgent = stream;
    urgent[2].deadline_s = f_unb + 0.9 * (f_legacy - f_unb);
    serve::Server aware(pipe, opts);
    aware.submit(urgent);
    const auto ra = aware.drain();

    // The finite-slack session is spared: an elder no-deadline peer
    // (never the protected oldest) is evicted instead, and the urgent
    // request completes in time where the legacy rule dropped it.
    EXPECT_GT(ra.fleet.preemptions, 0);
    EXPECT_EQ(ra.fleet.dropped, 0);
    EXPECT_FALSE(ra.outcomes[2].dropped);
    EXPECT_EQ(ra.outcomes[2].preemptions, 0);
    EXPECT_GT(ra.outcomes[1].preemptions, 0);
    EXPECT_LE(ra.outcomes[2].finish_s, urgent[2].deadline_s);
    ASSERT_EQ(ra.outcomes[2].result.emissions.size(), 1u);
    EXPECT_EQ(ra.outcomes[2].result.emissions[0].tokens,
              ru.outcomes[2].result.emissions[0].tokens);
}

TEST(Server, WatermarkDiscountsCachedPrefixBlocks)
{
    // The prefill-aware watermark charges every admission its FULL
    // prompt + decode KV. Blocks adopted from the prefix cache are
    // shared, not allocated — charging them again double-counts every
    // cache hit and starves admission under tight watermarks.
    const auto &pipe = testutil::tinyPipeline();
    serve::StreamOptions so;
    so.datasets = {"SUM"};
    so.n_requests = 3;
    so.gen_len = 4;
    so.prompt_len = 4096;
    so.prefix_reuse = 1.0; // one shared template across the stream
    so.seed = 0x3a7;
    auto stream = serve::synthesizeStream(so);
    // Request 0 seeds the cache; the two repeats arrive together
    // long after it retired.
    stream[1].arrival_s = stream[2].arrival_s = 10.0;

    auto opts = serverOpts(2, 4);
    opts.sched.preempt_mode = serve::PreemptMode::Swap;
    opts.sched.kv_budget_blocks = 400;
    // High-water mark (80 blocks) that fits one full prompt + one
    // discounted repeat, but not two prompts at full charge: the
    // template discounts 3 whole blocks per layer, comfortably more
    // than the cache's one-block-per-layer copy-on-write growth
    // reserve.
    opts.sched.kv_watermark = 0.2;

    serve::Server uncached(pipe, opts);
    uncached.submit(stream);
    const auto r_off = uncached.drain();
    // The first repeat bypasses the watermark (empty fleet); the
    // second is held back until it drains: the gate demonstrably
    // bites on this stream.
    ASSERT_GT(r_off.fleet.watermark_rejections, 0);
    EXPECT_EQ(r_off.fleet.dropped, 0);

    auto cached = opts;
    cached.sched.prefix_cache.enabled = true;
    cached.sched.prefix_cache.capacity_blocks = 200;
    serve::Server hit(pipe, cached);
    hit.submit(stream);
    const auto r_on = hit.drain();

    // Both repeats adopt the cached template, and the discounted
    // committed set now fits: no watermark rejections at all. (The
    // double-counting bug charged full blocks regardless and kept
    // every rejection of the uncached run.)
    EXPECT_GE(r_on.fleet.prefix_hits, 2);
    EXPECT_GT(r_on.fleet.cached_tokens, 0);
    EXPECT_EQ(r_on.fleet.watermark_rejections, 0);
    EXPECT_LT(r_on.fleet.watermark_rejections,
              r_off.fleet.watermark_rejections);
    EXPECT_EQ(r_on.fleet.tokens, r_off.fleet.tokens);
    EXPECT_EQ(r_on.fleet.dropped, 0);
}
