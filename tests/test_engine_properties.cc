/**
 * @file
 * Parameterized engine property sweeps on the tiny model: the exit
 * threshold trades layers for fidelity monotonically, window/radius
 * control the active-predictor budget, verification semantics, and
 * failure injection (untrained predictors must not corrupt output).
 */

#include <gtest/gtest.h>

#include "core/verifier.hh"
#include "test_util.hh"
#include "workload/evaluator.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

const workload::Workload &
wl()
{
    static const workload::Workload w = testutil::tinyPipeline().makeWorkload(
        "QA", testutil::smallGen(4, 28, 5151));
    return w;
}

engines::RunResult
runCfg(const EngineConfig &cfg)
{
    auto engine = testutil::tinyPipeline().makeEngine(
        cfg, hw::HardwareSpec::a100());
    return engine->run(wl(), 77);
}

} // namespace

class ThresholdSweep : public ::testing::TestWithParam<float>
{
};

TEST_P(ThresholdSweep, HigherThresholdMeansLaterExits)
{
    auto cfg = EngineConfig::huggingFace().withSpecEE();
    cfg.exit_threshold = GetParam();
    auto r = runCfg(cfg);
    auto ev = workload::Evaluator::evaluate(
        wl(), r.emissions, testutil::tinyPipeline().corpus());
    // Layers stay within the model range and fidelity stays high —
    // verification backstops even aggressive thresholds.
    EXPECT_GE(r.stats.avg_forward_layers, 1.0);
    EXPECT_LE(r.stats.avg_forward_layers, 8.0);
    EXPECT_GT(ev.token_match_rate, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.7f,
                                           0.9f));

TEST(ThresholdOrdering, LayersMonotoneInThreshold)
{
    double prev_layers = 0.0;
    for (float th : {0.1f, 0.5f, 0.9f}) {
        auto cfg = EngineConfig::huggingFace().withSpecEE();
        cfg.exit_threshold = th;
        auto r = runCfg(cfg);
        EXPECT_GE(r.stats.avg_forward_layers, prev_layers - 0.3)
            << "threshold " << th;
        prev_layers = r.stats.avg_forward_layers;
    }
}

class WindowSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(WindowSweep, ActivePredictorsScaleWithWindowAndRadius)
{
    const auto [window, radius] = GetParam();
    auto cfg = EngineConfig::huggingFace().withSpecEE();
    cfg.offline_sched = false; // isolate the online component
    cfg.online_window = window;
    cfg.online_radius = radius;
    auto r = runCfg(cfg);
    // Upper bound: window distinct exits, each activating 2r+1 layers.
    EXPECT_LE(r.stats.avg_active_predictors,
              static_cast<double>(window * (2 * radius + 1)) + 1.0);
    EXPECT_GT(r.stats.avg_active_predictors, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, WindowSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{3, 1}, std::pair{5, 2},
                      std::pair{8, 2}, std::pair{5, 0}));

TEST(FailureInjection, UntrainedPredictorsAreHarmless)
{
    // Fresh (untrained) predictors fire arbitrarily; verification must
    // keep emissions near-dense and never crash.
    auto &pipe = testutil::tinyPipeline();
    core::ExitPredictor untrained(pipe.modelConfig().n_layers - 1, 12,
                                  64, 2, 0xbad);
    auto engine = pipe.makeEngine(
        EngineConfig::huggingFace().withSpecEE(),
        hw::HardwareSpec::a100());
    engine->setPredictors(&untrained);
    auto r = engine->run(wl(), 3);
    auto ev = workload::Evaluator::evaluate(wl(), r.emissions,
                                            pipe.corpus());
    EXPECT_GT(ev.token_match_rate, 0.85);
    EXPECT_EQ(r.emissions.size(), wl().instances.size());
}

TEST(FailureInjection, ZeroHitDraftDisablesExits)
{
    auto cfg = EngineConfig::huggingFace().withSpecEE();
    cfg.draft_hit_override = 0.0;
    auto r = runCfg(cfg);
    // The true token is never in the speculative set, so verification
    // rejects every exit attempt that matters; emissions stay correct.
    auto ev = workload::Evaluator::evaluate(
        wl(), r.emissions, testutil::tinyPipeline().corpus());
    EXPECT_GT(ev.token_match_rate, 0.9);
    // And almost no exits happen (only distractor-collision noise).
    EXPECT_LT(static_cast<double>(r.stats.exits) /
                  static_cast<double>(r.stats.tokens),
              0.2);
}

TEST(FailureInjection, PerfectDraftMaximizesExits)
{
    auto low = EngineConfig::huggingFace().withSpecEE();
    low.draft_hit_override = 0.5;
    auto high = EngineConfig::huggingFace().withSpecEE();
    high.draft_hit_override = 1.0;
    auto r_low = runCfg(low);
    auto r_high = runCfg(high);
    EXPECT_GT(r_high.stats.exits, r_low.stats.exits);
    EXPECT_LT(r_high.stats.avg_forward_layers,
              r_low.stats.avg_forward_layers);
}

TEST(Verification, MembershipVariantIsLooser)
{
    // Property pinned at the verifier level: exact-match verification
    // implies membership, never the reverse.
    auto &pipe = testutil::tinyPipeline();
    model::TargetModelOptions opts;
    model::TargetModel tm(pipe.modelConfig(), opts);
    model::TokenScript s;
    s.target = 40;
    s.distractor = 50;
    s.conv_layer = 2;
    tm.beginToken(3, s);
    while (tm.currentLayer() < 4)
        tm.runLayer();
    const std::vector<int> spec = {40, 41, 42, 43};
    auto exact = core::Verifier::verify(tm, 40);
    auto member = core::Verifier::verifyMembership(tm, spec);
    EXPECT_TRUE(member.verified || !exact.verified);
    EXPECT_EQ(exact.token, member.token);
}

class TreeShapeSweep
    : public ::testing::TestWithParam<std::vector<int>>
{
};

TEST_P(TreeShapeSweep, CommitRateGrowsWithDepth)
{
    auto cfg = EngineConfig::eagle();
    cfg.tree.widths = GetParam();
    auto r = runCfg(cfg);
    EXPECT_GE(r.stats.avg_commit_per_pass, 1.0);
    EXPECT_LE(r.stats.avg_commit_per_pass,
              1.0 + static_cast<double>(GetParam().size()));
    // Emissions always match the scripted steps count.
    for (size_t i = 0; i < wl().instances.size(); ++i) {
        EXPECT_EQ(r.emissions[i].tokens.size(),
                  wl().instances[i].steps.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeSweep,
    ::testing::Values(std::vector<int>{2}, std::vector<int>{4},
                      std::vector<int>{4, 2}, std::vector<int>{4, 2, 2},
                      std::vector<int>{3, 3, 3, 3}));
