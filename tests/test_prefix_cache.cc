/**
 * @file
 * Prefix-cache tests: paged-KV block refcounting (pinned-while-
 * referenced blocks, double-free and retain-of-free fatal,
 * copy-on-write isolation between sequences sharing a block),
 * PromptSpec derivation (deterministic token streams, shared
 * template prefixes, parent chains, the stride-64 sim mapping, the
 * deprecated length-knob shim), the radix tree itself (longest-
 * prefix match, edge splits, deepest-wins block tables, LRU leaf
 * eviction, clear), and the scheduler integration: cache-off
 * bit-identity to the cache-less scheduler, cache-on emissions
 * bit-identical to isolated Engine::runOne references even for
 * adopted resumes, hit/eviction accounting, multi-turn chains,
 * TTFT improvement under chunked pricing, and worker-count
 * determinism with the cache on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "model/paged_kv.hh"
#include "serve/prefix_cache.hh"
#include "serve/prompt_spec.hh"
#include "serve/server.hh"
#include "test_util.hh"

using namespace specee;
using namespace specee::model;

namespace {

tensor::Vec
vec(int hidden, float base)
{
    tensor::Vec v(static_cast<size_t>(hidden));
    for (int i = 0; i < hidden; ++i)
        v[static_cast<size_t>(i)] = base + static_cast<float>(i);
    return v;
}

serve::ServerOptions
baseOpts(int workers, int max_batch)
{
    serve::ServerOptions o;
    o.engine = engines::EngineConfig::huggingFace().withSpecEE();
    o.spec = hw::HardwareSpec::a100();
    o.workers = workers;
    o.sched.max_batch = max_batch;
    return o;
}

serve::ServeReport
serveStream(const serve::ServerOptions &opts,
            const std::vector<serve::Request> &stream)
{
    serve::Server server(testutil::tinyPipeline(), opts);
    server.submit(stream);
    return server.drain();
}

/** Stream of shared-template conversations (see StreamOptions). */
serve::StreamOptions
sharedStream(int n_requests, double reuse, int turns)
{
    serve::StreamOptions so;
    so.n_requests = n_requests;
    so.gen_len = 12;
    so.prompt_len = 512;
    so.prefix_reuse = reuse;
    so.turns = turns;
    so.seed = 0xcafe;
    return so;
}

} // namespace

// -------------------------------------------------------------------------
// Paged-KV block refcounting
// -------------------------------------------------------------------------

TEST(PagedKvRefcount, RetainedBlocksStayPinnedAfterSequenceDrop)
{
    PagedKvCache pool(1, 8, 2);
    const int seq = pool.createSequence();
    for (int pos = 0; pos < 20; ++pos) // 2 blocks
        pool.append(seq, 0, vec(2, static_cast<float>(pos)),
                    vec(2, 0.5f));
    const auto held = pool.retainRows(seq, 0, 0, 20);
    ASSERT_EQ(held.size(), 2u);
    EXPECT_EQ(pool.blockRefs(held[0]), 2);

    // Dropping the sequence only drops ITS references: the cache's
    // references keep the blocks off the free list.
    pool.dropSequence(seq);
    EXPECT_EQ(pool.blocksInUse(), 2);
    EXPECT_EQ(pool.blockRefs(held[0]), 1);

    // The last release returns them.
    EXPECT_EQ(pool.releaseBlocks(held), 2);
    EXPECT_EQ(pool.blocksInUse(), 0);
}

TEST(PagedKvRefcount, DoubleFreeAndRetainOfFreeAreFatal)
{
    PagedKvCache pool(1, 4, 2);
    const int seq = pool.createSequence();
    pool.append(seq, 0, vec(2, 1.0f), vec(2, 2.0f));
    const auto held = pool.retainRows(seq, 0, 0, 1);
    pool.dropSequence(seq);
    EXPECT_EQ(pool.releaseBlocks(held), 1);
    // The blocks are free now: another release is a double free and
    // re-retaining them would resurrect freed memory.
    EXPECT_DEATH(pool.releaseBlocks(held), "double free");
    EXPECT_DEATH(pool.retainBlock(held[0]), "retain of a free");
}

TEST(PagedKvRefcount, AdoptIntoNonEmptyLayerIsFatal)
{
    PagedKvCache pool(1, 4, 2);
    const int donor = pool.createSequence();
    pool.append(donor, 0, vec(2, 1.0f), vec(2, 2.0f));
    const auto chain = pool.retainRows(donor, 0, 0, 1);
    const int taker = pool.createSequence();
    pool.append(taker, 0, vec(2, 3.0f), vec(2, 4.0f));
    EXPECT_DEATH(pool.adoptPrefix(taker, 0, chain, 1),
                 "adoptPrefix into non-empty");
    pool.releaseBlocks(chain);
}

TEST(PagedKvRefcount, CopyOnWriteForkIsolatesSharedBlocks)
{
    PagedKvCache pool(1, 8, 2);
    const int donor = pool.createSequence();
    for (int pos = 0; pos < 5; ++pos)
        pool.append(donor, 0, vec(2, static_cast<float>(pos)),
                    vec(2, static_cast<float>(10 + pos)));
    const auto chain = pool.retainRows(donor, 0, 0, 5);
    ASSERT_EQ(chain.size(), 1u);

    const int taker = pool.createSequence();
    pool.adoptPrefix(taker, 0, chain, 4); // adopt rows [0, 4)
    EXPECT_EQ(pool.length(taker, 0), 4);
    EXPECT_EQ(pool.blockRefs(chain[0]), 3); // donor + cache + taker
    // Adopted rows read the donor's content through the shared block.
    for (int pos = 0; pos < 4; ++pos)
        EXPECT_FLOAT_EQ(pool.key(taker, 0, pos)[0],
                        static_cast<float>(pos));

    // The taker's first write forks the shared block: the donor's
    // row 4 is untouched and the fork carried the shared rows over.
    EXPECT_EQ(pool.append(taker, 0, vec(2, 99.0f), vec(2, 98.0f)), 4);
    EXPECT_EQ(pool.blockRefs(chain[0]), 2); // taker moved to its fork
    EXPECT_FLOAT_EQ(pool.key(donor, 0, 4)[0], 4.0f);
    EXPECT_FLOAT_EQ(pool.key(taker, 0, 4)[0], 99.0f);
    for (int pos = 0; pos < 4; ++pos)
        EXPECT_FLOAT_EQ(pool.key(taker, 0, pos)[0],
                        static_cast<float>(pos));

    pool.dropSequence(taker);
    pool.dropSequence(donor);
    EXPECT_EQ(pool.releaseBlocks(chain), 1);
    EXPECT_EQ(pool.blocksInUse(), 0);
}

// -------------------------------------------------------------------------
// PromptSpec derivation
// -------------------------------------------------------------------------

TEST(PromptSpec, SharedTemplateGivesSharedTruePrefix)
{
    serve::PromptSpec a;
    a.template_id = 0x51;
    a.prefix_len = 100;
    a.suffix_len = 40;
    a.suffix_seed = 7;
    serve::PromptSpec b = a;
    b.suffix_seed = 8;

    const auto ta = serve::resolvePromptTokens(a);
    const auto tb = serve::resolvePromptTokens(b);
    ASSERT_EQ(ta.size(), 140u);
    ASSERT_EQ(tb.size(), 140u);
    // Deterministic...
    EXPECT_EQ(ta, serve::resolvePromptTokens(a));
    // ...shared over the template, divergent over the suffixes.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ta[static_cast<size_t>(i)], tb[static_cast<size_t>(i)]);
    EXPECT_NE(ta, tb);

    // A longer draw from the same template extends a shorter one
    // (the token stream is a function of the absolute position).
    serve::PromptSpec c = a;
    c.prefix_len = 60;
    const auto tc = serve::resolvePromptTokens(c);
    for (int i = 0; i < 60; ++i)
        EXPECT_EQ(tc[static_cast<size_t>(i)], ta[static_cast<size_t>(i)]);
}

TEST(PromptSpec, ParentChainsExtendTheParentPrompt)
{
    auto root = std::make_shared<serve::PromptSpec>();
    root->template_id = 0x9a;
    root->prefix_len = 80;
    root->suffix_len = 20;
    root->suffix_seed = 3;

    serve::PromptSpec turn2;
    turn2.parent = root;
    turn2.parent_id = 1;
    turn2.suffix_len = 30;
    turn2.suffix_seed = 4;
    EXPECT_TRUE(turn2.shared());
    EXPECT_EQ(turn2.totalLen(), 130);
    EXPECT_EQ(turn2.rootTemplate(), 0x9aull);

    const auto parent_toks = serve::resolvePromptTokens(*root);
    const auto child_toks = serve::resolvePromptTokens(turn2);
    ASSERT_EQ(child_toks.size(), 130u);
    for (size_t i = 0; i < parent_toks.size(); ++i)
        EXPECT_EQ(child_toks[i], parent_toks[i]);
}

TEST(PromptSpec, StrideMappingSharesSimPrefixForSharedTrueTokens)
{
    EXPECT_EQ(serve::simRowsForSpan(0), 0);
    EXPECT_EQ(serve::simRowsForSpan(1), 1);
    EXPECT_EQ(serve::simRowsForSpan(serve::kPromptSimStride), 1);
    EXPECT_EQ(serve::simRowsForSpan(serve::kPromptSimStride + 1), 2);

    serve::PromptSpec a;
    a.template_id = 0x77;
    a.prefix_len = 200;
    a.suffix_len = 56;
    a.suffix_seed = 1;
    serve::PromptSpec b = a;
    b.suffix_len = 120;
    b.suffix_seed = 2;

    const auto ta = serve::resolvePromptTokens(a);
    const auto tb = serve::resolvePromptTokens(b);
    const auto sa = serve::derivePromptSim(ta, 512);
    const auto sb = serve::derivePromptSim(tb, 512);
    ASSERT_EQ(sa.size(),
              static_cast<size_t>(serve::simRowsForSpan(256)) + 1);
    ASSERT_EQ(sb.size(),
              static_cast<size_t>(serve::simRowsForSpan(320)) + 1);
    // Sim rows are the stride marks of the true stream...
    for (size_t j = 0; j + 1 < sa.size(); ++j)
        EXPECT_EQ(sa[j],
                  ta[j * serve::kPromptSimStride] % 512);
    // ...so the 200 shared true tokens share ceil(200/64) = 4 rows
    // regardless of total prompt length, and the decode input is the
    // final true token.
    for (int j = 0; j < serve::simRowsForSpan(200); ++j)
        EXPECT_EQ(sa[static_cast<size_t>(j)], sb[static_cast<size_t>(j)]);
    EXPECT_EQ(sa.back(), ta.back() % 512);
}

TEST(PromptSpec, DeprecatedLengthShimMatchesPromptLenOverride)
{
    // An unshared spec with an explicit suffix length must build the
    // exact workload the old GenOptions::prompt_len_override path
    // builds — the consolidation is a shim, not a behavior change.
    const auto &pipe = testutil::tinyPipeline();
    serve::Request legacy;
    legacy.dataset = "SUM";
    legacy.gen.n_instances = 1;
    legacy.gen.gen_len = 16;
    legacy.gen.seed = 0xabc;
    legacy.gen.prompt_len_override = 777;

    serve::Request shim;
    shim.dataset = "SUM";
    shim.gen.n_instances = 1;
    shim.gen.gen_len = 16;
    shim.gen.seed = 0xabc;
    shim.prompt.suffix_len = 777;
    shim.prompt.suffix_seed = 0xabc;
    ASSERT_FALSE(shim.prompt.shared());

    const auto wa = serve::buildPromptWorkload(pipe, legacy, false);
    const auto wb = serve::buildPromptWorkload(pipe, shim, false);
    EXPECT_EQ(wa.true_prompt_len, 777);
    EXPECT_EQ(wa.true_prompt_len, wb.true_prompt_len);
    ASSERT_EQ(wa.instances.size(), wb.instances.size());
    EXPECT_EQ(wa.instances[0].prompt, wb.instances[0].prompt);
}

TEST(PromptSpec, StreamSharingKnobsLeaveLegacySeedsUntouched)
{
    // prefix_reuse draws its sharing coin flips from a side rng
    // stream: seeds, arrivals and deadlines of the synthesized
    // requests must be bit-identical with the knob on or off — only
    // the PromptSpec annotation changes.
    serve::StreamOptions legacy;
    legacy.n_requests = 12;
    legacy.rate_rps = 5.0;
    legacy.seed = 0x1dea;
    auto conv = legacy;
    conv.prefix_reuse = 0.5;
    conv.prompt_len = 512;

    const auto a = serve::synthesizeStream(legacy);
    const auto b = serve::synthesizeStream(conv);
    ASSERT_EQ(a.size(), b.size());
    bool any_shared = false;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].gen.seed, b[i].gen.seed);
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_FALSE(a[i].prompt.shared());
        any_shared = any_shared || b[i].prompt.shared();
    }
    EXPECT_TRUE(any_shared);
}

// -------------------------------------------------------------------------
// Radix tree mechanics
// -------------------------------------------------------------------------

namespace {

/** Fill `rows` sim KV rows into a fresh pool sequence. */
int
prefilledSeq(PagedKvCache &pool, int rows, float tag)
{
    const int seq = pool.createSequence();
    for (int l = 0; l < pool.nLayers(); ++l) {
        for (int r = 0; r < rows; ++r) {
            pool.append(seq, l, vec(pool.hidden(), tag + r),
                        vec(pool.hidden(), -tag - r));
        }
    }
    return seq;
}

std::vector<int>
tokenRun(int len, int base)
{
    std::vector<int> t(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i)
        t[static_cast<size_t>(i)] = base + i;
    return t;
}

} // namespace

TEST(PrefixCacheTree, InsertMatchSplitAndDeepestWinsTables)
{
    auto pool = std::make_shared<PagedKvCache>(2, 64, 4);
    serve::PrefixCache cache(2, {pool});
    EXPECT_TRUE(cache.empty());

    // Prompt A: 130 true tokens -> 3 sim rows (1 block per layer).
    const auto ta = tokenRun(130, 1000);
    const int sa = prefilledSeq(*pool, serve::simRowsForSpan(130), 1.0f);
    cache.insert(ta, 0, sa, 1);
    EXPECT_EQ(cache.nodes(), 1);
    EXPECT_EQ(cache.heldBlocks(), 2); // one block per layer

    // Full match covers the whole prompt.
    const auto full = cache.match(ta, 0, 2);
    EXPECT_EQ(full.true_matched, 130);
    EXPECT_EQ(full.sim_matched, 3);
    ASSERT_EQ(full.table.size(), 2u);
    ASSERT_EQ(full.table[0].size(), 1u);

    // Partial match stops at the divergence and rounds the sim span
    // to the rows fully covered by matched tokens.
    auto tb = ta;
    tb.resize(100);
    const auto part = cache.match(tb, 0, 3);
    EXPECT_EQ(part.true_matched, 100);
    EXPECT_EQ(part.sim_matched, serve::simRowsForSpan(100));

    // Prompt B shares 100 tokens, then diverges for 60 more: the
    // insert splits the edge at 100 and hangs B's tail as a sibling.
    tb = ta;
    tb.resize(100);
    const auto tail = tokenRun(60, 5000);
    tb.insert(tb.end(), tail.begin(), tail.end());
    const int sb = prefilledSeq(*pool, serve::simRowsForSpan(160), 2.0f);
    cache.insert(tb, 0, sb, 4);
    EXPECT_EQ(cache.nodes(), 3); // split node + two tails

    const auto mb = cache.match(tb, 0, 5);
    EXPECT_EQ(mb.true_matched, 160);
    EXPECT_EQ(mb.sim_matched, 3);
    const auto ma = cache.match(ta, 0, 6);
    EXPECT_EQ(ma.true_matched, 130);
    // Deepest-wins: the two prompts resolve their boundary block to
    // their own chains' copies.
    EXPECT_NE(ma.table[0][0], mb.table[0][0]);

    // A miss on the first token matches nothing.
    const auto miss = cache.match(tokenRun(40, 9999), 0, 7);
    EXPECT_EQ(miss.true_matched, 0);
    EXPECT_TRUE(miss.table.empty());

    cache.clear();
    EXPECT_TRUE(cache.empty());
    EXPECT_EQ(cache.heldBlocks(), 0);
    pool->dropSequence(sa);
    pool->dropSequence(sb);
    EXPECT_EQ(pool->blocksInUse(), 0);
}

TEST(PrefixCacheTree, LruLeafEvictionReleasesOnlyCacheReferences)
{
    auto pool = std::make_shared<PagedKvCache>(1, 64, 2);
    serve::PrefixCache cache(1, {pool});

    const auto ta = tokenRun(130, 0);
    auto tb = ta;
    const auto tail = tokenRun(60, 7000);
    tb.resize(100);
    tb.insert(tb.end(), tail.begin(), tail.end());

    const int sa = prefilledSeq(*pool, serve::simRowsForSpan(130), 1.0f);
    cache.insert(ta, 0, sa, 1);
    const int sb = prefilledSeq(*pool, serve::simRowsForSpan(160), 2.0f);
    cache.insert(tb, 0, sb, 2);
    ASSERT_EQ(cache.nodes(), 3);
    pool->dropSequence(sa);
    pool->dropSequence(sb);
    const int pinned = pool->blocksInUse();
    EXPECT_GT(pinned, 0); // cache references keep the KV alive

    // Refresh B's path: A's tail is now the LRU leaf and goes first.
    cache.match(tb, 0, 3);
    EXPECT_TRUE(cache.evictLru());
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_EQ(cache.match(ta, 0, 4).true_matched, 100); // split node
    EXPECT_EQ(cache.match(tb, 0, 5).true_matched, 160); // survived

    // Interior nodes become leaves as their children evict; draining
    // completely returns every block.
    while (cache.evictLru()) {
    }
    EXPECT_TRUE(cache.empty());
    EXPECT_EQ(cache.heldBlocks(), 0);
    EXPECT_EQ(pool->blocksInUse(), 0);
}

// -------------------------------------------------------------------------
// Scheduler integration
// -------------------------------------------------------------------------

TEST(PrefixCacheServe, CacheOnWithoutSharedPromptsMatchesCacheOff)
{
    // A legacy stream has no shared PromptSpecs: enabling the cache
    // must not change a single bit of the timeline or the tokens.
    serve::StreamOptions so;
    so.n_requests = 8;
    so.gen_len = 16;
    so.seed = 0x1e6a;
    const auto stream = serve::synthesizeStream(so);

    auto off = baseOpts(2, 4);
    off.sched.prefill.chunk_tokens = 48;
    const auto base = serveStream(off, stream);

    auto on = off;
    on.sched.prefix_cache.enabled = true;
    const auto cached = serveStream(on, stream);

    EXPECT_EQ(cached.fleet.prefix_hits, 0);
    EXPECT_EQ(cached.fleet.cached_tokens, 0);
    EXPECT_EQ(cached.fleet.peak_cached_blocks, 0);
    EXPECT_DOUBLE_EQ(base.fleet.makespan_s, cached.fleet.makespan_s);
    EXPECT_EQ(base.fleet.tokens, cached.fleet.tokens);
    EXPECT_EQ(base.fleet.peak_kv_blocks, cached.fleet.peak_kv_blocks);
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(base.outcomes[i].result.emissions[0].tokens,
                  cached.outcomes[i].result.emissions[0].tokens);
        EXPECT_DOUBLE_EQ(base.outcomes[i].ttft_s,
                         cached.outcomes[i].ttft_s);
    }
}

TEST(PrefixCacheServe, AdoptedResumesAreBitIdenticalToColdRuns)
{
    // The core bit-safety claim: a session that starts mid-prompt
    // from adopted cached blocks must emit exactly what an isolated
    // cold Engine::runOne produces for the same workload and seed —
    // tokens AND exit layers.
    const auto &pipe = testutil::tinyPipeline();
    const auto stream =
        serve::synthesizeStream(sharedStream(8, 1.0, 1));

    auto opts = baseOpts(2, 2);
    opts.sched.prefill.chunk_tokens = 64;
    opts.sched.prefix_cache.enabled = true;
    const auto rep = serveStream(opts, stream);

    ASSERT_GT(rep.fleet.prefix_hits, 0);
    ASSERT_GT(rep.fleet.cached_tokens, 0);

    auto engine = pipe.makeEngine(opts.engine, opts.spec);
    long hits = 0;
    for (const auto &o : rep.outcomes) {
        const auto w = serve::buildPromptWorkload(
            pipe, o.request, engine->config().q4Calibrated());
        const auto ref = engine->runOne(w, 0, o.request.seed);
        ASSERT_EQ(o.result.emissions.size(), 1u);
        EXPECT_EQ(o.result.emissions[0].tokens, ref.emissions[0].tokens);
        EXPECT_EQ(o.result.emissions[0].exit_layers,
                  ref.emissions[0].exit_layers);
        if (o.cached_tokens > 0) {
            ++hits;
            // The shared template is 3/4 of the 512-token prompt.
            EXPECT_GE(o.cached_tokens, 384);
        }
    }
    EXPECT_GT(hits, 0);
}

TEST(PrefixCacheServe, CacheOnMatchesCacheOffTokensAndImprovesTtft)
{
    // Same shared stream with and without the cache: tokens are
    // bit-identical (the cache is a pure optimization), while hits
    // skip prefill work — fewer chunked prefill tokens executed and
    // a better mean TTFT under chunked pricing.
    const auto stream =
        serve::synthesizeStream(sharedStream(8, 1.0, 1));

    auto off = baseOpts(2, 2);
    off.sched.prefill.chunk_tokens = 64;
    const auto base = serveStream(off, stream);

    auto on = off;
    on.sched.prefix_cache.enabled = true;
    const auto cached = serveStream(on, stream);

    ASSERT_GT(cached.fleet.prefix_hits, 0);
    EXPECT_EQ(base.fleet.prefix_hits, 0);
    EXPECT_EQ(base.fleet.tokens, cached.fleet.tokens);
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(base.outcomes[i].result.emissions[0].tokens,
                  cached.outcomes[i].result.emissions[0].tokens);
    }
    EXPECT_LT(cached.fleet.prefill_tokens, base.fleet.prefill_tokens);
    EXPECT_GT(cached.fleet.peak_cached_blocks, 0);
    EXPECT_LT(cached.fleet.mean_ttft_s, base.fleet.mean_ttft_s);
    EXPECT_LE(cached.fleet.makespan_s,
              base.fleet.makespan_s * (1.0 + 1e-9));
}

TEST(PrefixCacheServe, MultiTurnConversationsHitTheirOwnHistory)
{
    // turns = 3 with prefix_reuse = 0: no cross-conversation
    // template, but each continuation turn extends its parent's full
    // prompt — served from the cache even without a shared template.
    // max_batch = 1 serializes the turns so every continuation finds
    // its parent's prompt cached.
    const auto stream =
        serve::synthesizeStream(sharedStream(9, 0.0, 3));

    auto opts = baseOpts(1, 1);
    opts.sched.prefill.chunk_tokens = 64;
    opts.sched.prefix_cache.enabled = true;
    const auto rep = serveStream(opts, stream);

    // 3 conversations x 2 continuation turns.
    EXPECT_EQ(rep.fleet.prefix_hits, 6);
    long turn_hits = 0;
    for (const auto &o : rep.outcomes) {
        if (o.request.prompt.parent != nullptr) {
            ++turn_hits;
            // The whole parent prompt (>= 512 true tokens) is served
            // from cache.
            EXPECT_GE(o.cached_tokens, 512);
        }
    }
    EXPECT_EQ(turn_hits, 6);
}

TEST(PrefixCacheServe, CapacityBoundForcesLruEvictions)
{
    // A capacity of two prompts' worth of blocks under a stream of
    // many distinct suffixes: the tree must evict LRU leaves and the
    // run must stay lossless.
    const auto stream =
        serve::synthesizeStream(sharedStream(10, 1.0, 1));

    auto opts = baseOpts(2, 2);
    opts.sched.prefill.chunk_tokens = 64;
    opts.sched.prefix_cache.enabled = true;
    opts.sched.prefix_cache.capacity_blocks = 16;
    const auto rep = serveStream(opts, stream);

    EXPECT_GT(rep.fleet.cache_evictions, 0);
    EXPECT_LE(rep.fleet.peak_cached_blocks, 16 + 16); // cap + overshoot
    EXPECT_GT(rep.fleet.prefix_hits, 0);
    for (const auto &o : rep.outcomes) {
        EXPECT_FALSE(o.dropped);
        EXPECT_EQ(o.result.emissions[0].tokens.empty(), false);
    }
}

TEST(PrefixCacheServe, DeterministicAcrossWorkerCountsWithCacheOn)
{
    // Fleet-level cache decisions + template-affinity pinning keep
    // the whole timeline — hits, evictions, clocks, tokens —
    // bit-identical across worker counts.
    const auto stream =
        serve::synthesizeStream(sharedStream(10, 0.6, 2));

    auto opts1 = baseOpts(1, 4);
    opts1.sched.prefill.chunk_tokens = 64;
    opts1.sched.prefix_cache.enabled = true;
    const auto r1 = serveStream(opts1, stream);

    auto opts3 = baseOpts(3, 4);
    opts3.sched = opts1.sched;
    const auto r3 = serveStream(opts3, stream);

    EXPECT_GT(r1.fleet.prefix_hits, 0);
    EXPECT_EQ(r1.fleet.prefix_hits, r3.fleet.prefix_hits);
    EXPECT_EQ(r1.fleet.cached_tokens, r3.fleet.cached_tokens);
    EXPECT_EQ(r1.fleet.cache_evictions, r3.fleet.cache_evictions);
    EXPECT_EQ(r1.fleet.peak_kv_blocks, r3.fleet.peak_kv_blocks);
    EXPECT_EQ(r1.fleet.tokens, r3.fleet.tokens);
    EXPECT_DOUBLE_EQ(r1.fleet.makespan_s, r3.fleet.makespan_s);
    ASSERT_EQ(r1.outcomes.size(), r3.outcomes.size());
    for (size_t i = 0; i < r1.outcomes.size(); ++i) {
        EXPECT_EQ(r1.outcomes[i].result.emissions[0].tokens,
                  r3.outcomes[i].result.emissions[0].tokens);
        EXPECT_EQ(r1.outcomes[i].cached_tokens,
                  r3.outcomes[i].cached_tokens);
        EXPECT_DOUBLE_EQ(r1.outcomes[i].ttft_s, r3.outcomes[i].ttft_s);
    }
}

TEST(PrefixCacheServe, SurvivesKvPressureAsLowestResidencyTier)
{
    // A tight fleet budget: cached blocks must drain before any live
    // session is preempted, and the run stays lossless under the
    // combination of cache, chunked prefill and preemption.
    const auto stream =
        serve::synthesizeStream(sharedStream(10, 1.0, 1));

    auto opts = baseOpts(2, 4);
    opts.sched.prefill.chunk_tokens = 64;
    opts.sched.prefix_cache.enabled = true;
    opts.sched.kv_budget_blocks = 220;
    const auto rep = serveStream(opts, stream);

    EXPECT_GT(rep.fleet.prefix_hits, 0);
    for (const auto &o : rep.outcomes) {
        EXPECT_FALSE(o.dropped);
        EXPECT_FALSE(o.result.emissions[0].tokens.empty());
    }

    // The same stream without the budget delivers identical tokens.
    auto free_opts = opts;
    free_opts.sched.kv_budget_blocks = 0;
    const auto unbounded = serveStream(free_opts, stream);
    for (size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(rep.outcomes[i].result.emissions[0].tokens,
                  unbounded.outcomes[i].result.emissions[0].tokens);
    }
}
