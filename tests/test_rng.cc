/**
 * @file
 * RNG tests: determinism, distribution sanity, forking, Zipf.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hh"

using namespace specee;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 1000; ++i) {
        int v = r.uniformInt(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        lo |= v == 3;
        hi |= v == 7;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, BernoulliRate)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng r(17);
    std::vector<float> w = {1.0f, 3.0f, 6.0f};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[r.categorical(w)];
    EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 20000.0, 0.6, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(19);
    std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIsIndependentOfParentDraws)
{
    Rng a(23);
    Rng fork_before = a.fork(1);
    // Forks depend only on the parent's state at fork time.
    Rng b(23);
    Rng fork_b = b.fork(1);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(fork_before.next(), fork_b.next());
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler z(1000, 1.1);
    double total = 0.0;
    for (size_t i = 0; i < z.size(); ++i)
        total += z.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, HeadIsHeavierThanTail)
{
    ZipfSampler z(1000, 1.1);
    EXPECT_GT(z.pmf(0), z.pmf(10));
    EXPECT_GT(z.pmf(10), z.pmf(500));
}

TEST(Zipf, SamplingMatchesPmf)
{
    ZipfSampler z(50, 1.2);
    Rng r(29);
    std::vector<int> counts(50, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(r)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), z.pmf(0), 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), z.pmf(1), 0.02);
}
