/**
 * @file
 * KV storage tests: contiguous cache, paged allocator (vllm
 * substrate), equivalence between the two, rollback semantics.
 */

#include <gtest/gtest.h>

#include "model/kv_cache.hh"
#include "model/paged_kv.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::model;

namespace {

tensor::Vec
vec(int hidden, float base)
{
    tensor::Vec v(static_cast<size_t>(hidden));
    for (int i = 0; i < hidden; ++i)
        v[static_cast<size_t>(i)] = base + static_cast<float>(i);
    return v;
}

} // namespace

TEST(KvCache, AppendAndReadBack)
{
    KvCache kv(2, 16, 4);
    auto k = vec(4, 1.0f);
    auto v = vec(4, 100.0f);
    EXPECT_EQ(kv.append(0, k, v), 0);
    EXPECT_EQ(kv.append(0, k, v), 1);
    EXPECT_EQ(kv.length(0), 2);
    EXPECT_EQ(kv.length(1), 0);
    EXPECT_FLOAT_EQ(kv.key(0, 1)[2], 3.0f);
    EXPECT_FLOAT_EQ(kv.value(0, 0)[0], 100.0f);
}

TEST(KvCache, TruncateRollsBack)
{
    KvCache kv(1, 8, 2);
    for (int i = 0; i < 5; ++i)
        kv.append(0, vec(2, static_cast<float>(i)), vec(2, 0.0f));
    kv.truncate(2);
    EXPECT_EQ(kv.length(0), 2);
    kv.append(0, vec(2, 77.0f), vec(2, 0.0f));
    EXPECT_FLOAT_EQ(kv.key(0, 2)[0], 77.0f);
}

TEST(KvCache, OverflowDies)
{
    KvCache kv(1, 2, 2);
    kv.append(0, vec(2, 0), vec(2, 0));
    kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_DEATH(kv.append(0, vec(2, 0), vec(2, 0)), "overflow");
}

TEST(PagedKv, BlocksAllocatedOnDemand)
{
    PagedKvCache kv(1, 4, 2);
    EXPECT_EQ(kv.blocksInUse(), 0);
    for (int i = 0; i < kKvBlockSize; ++i)
        kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(kv.blocksInUse(), 1);
    kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(kv.blocksInUse(), 2);
}

TEST(PagedKv, TruncateFreesWholeBlocks)
{
    PagedKvCache kv(1, 8, 2);
    for (int i = 0; i < 2 * kKvBlockSize + 3; ++i)
        kv.append(0, vec(2, static_cast<float>(i)), vec(2, 0));
    EXPECT_EQ(kv.blocksInUse(), 3);
    kv.truncate(kKvBlockSize); // exactly one block's worth
    EXPECT_EQ(kv.blocksInUse(), 1);
    EXPECT_EQ(kv.length(0), kKvBlockSize);
    // Freed blocks are reusable.
    for (int i = 0; i < kKvBlockSize; ++i)
        kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(kv.blocksInUse(), 2);
}

TEST(PagedKv, ClearReleasesEverything)
{
    PagedKvCache kv(2, 8, 2);
    for (int l = 0; l < 2; ++l)
        for (int i = 0; i < 20; ++i)
            kv.append(l, vec(2, 0), vec(2, 0));
    kv.clear();
    EXPECT_EQ(kv.blocksInUse(), 0);
    EXPECT_EQ(kv.blocksFree(), 8);
    EXPECT_EQ(kv.length(0), 0);
}

TEST(PagedKv, PoolExhaustionDies)
{
    PagedKvCache kv(1, 1, 2);
    for (int i = 0; i < kKvBlockSize; ++i)
        kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_TRUE(kv.wouldOverflow(0));
    EXPECT_DEATH(kv.append(0, vec(2, 0), vec(2, 0)), "exhausted");
}

TEST(PagedKv, MatchesContiguousContents)
{
    const int layers = 3, hidden = 8, tokens = 40;
    KvCache a(layers, 64, hidden);
    PagedKvCache b(layers, layers * (tokens / kKvBlockSize + 2), hidden);
    Rng rng(7);
    for (int t = 0; t < tokens; ++t) {
        for (int l = 0; l < layers; ++l) {
            tensor::Vec k(hidden), v(hidden);
            for (auto &x : k)
                x = static_cast<float>(rng.normal());
            for (auto &x : v)
                x = static_cast<float>(rng.normal());
            EXPECT_EQ(a.append(l, k, v), b.append(l, k, v));
        }
    }
    for (int l = 0; l < layers; ++l) {
        ASSERT_EQ(a.length(l), b.length(l));
        for (int p = 0; p < a.length(l); ++p) {
            for (int d = 0; d < hidden; ++d) {
                ASSERT_FLOAT_EQ(a.key(l, p)[static_cast<size_t>(d)],
                                b.key(l, p)[static_cast<size_t>(d)]);
                ASSERT_FLOAT_EQ(a.value(l, p)[static_cast<size_t>(d)],
                                b.value(l, p)[static_cast<size_t>(d)]);
            }
        }
    }
}

TEST(PagedKv, PerLayerIndependentTables)
{
    PagedKvCache kv(2, 4, 2);
    kv.append(0, vec(2, 1.0f), vec(2, 2.0f));
    kv.append(1, vec(2, 3.0f), vec(2, 4.0f));
    EXPECT_FLOAT_EQ(kv.key(0, 0)[0], 1.0f);
    EXPECT_FLOAT_EQ(kv.key(1, 0)[0], 3.0f);
    EXPECT_EQ(kv.blocksInUse(), 2);
}
