/**
 * @file
 * KV storage tests: contiguous cache, multi-sequence paged allocator
 * (vllm substrate), equivalence between the two, rollback semantics,
 * pool exhaustion, fragmentation and per-sequence isolation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "model/kv_cache.hh"
#include "model/paged_kv.hh"
#include "util/rng.hh"

using namespace specee;
using namespace specee::model;

namespace {

tensor::Vec
vec(int hidden, float base)
{
    tensor::Vec v(static_cast<size_t>(hidden));
    for (int i = 0; i < hidden; ++i)
        v[static_cast<size_t>(i)] = base + static_cast<float>(i);
    return v;
}

} // namespace

TEST(KvCache, AppendAndReadBack)
{
    KvCache kv(2, 16, 4);
    auto k = vec(4, 1.0f);
    auto v = vec(4, 100.0f);
    EXPECT_EQ(kv.append(0, k, v), 0);
    EXPECT_EQ(kv.append(0, k, v), 1);
    EXPECT_EQ(kv.length(0), 2);
    EXPECT_EQ(kv.length(1), 0);
    EXPECT_FLOAT_EQ(kv.key(0, 1)[2], 3.0f);
    EXPECT_FLOAT_EQ(kv.value(0, 0)[0], 100.0f);
}

TEST(KvCache, TruncateRollsBack)
{
    KvCache kv(1, 8, 2);
    for (int i = 0; i < 5; ++i)
        kv.append(0, vec(2, static_cast<float>(i)), vec(2, 0.0f));
    kv.truncate(2);
    EXPECT_EQ(kv.length(0), 2);
    kv.append(0, vec(2, 77.0f), vec(2, 0.0f));
    EXPECT_FLOAT_EQ(kv.key(0, 2)[0], 77.0f);
}

TEST(KvCache, OverflowDies)
{
    KvCache kv(1, 2, 2);
    kv.append(0, vec(2, 0), vec(2, 0));
    kv.append(0, vec(2, 0), vec(2, 0));
    EXPECT_DEATH(kv.append(0, vec(2, 0), vec(2, 0)), "overflow");
}

TEST(PagedKv, BlocksAllocatedOnDemand)
{
    PagedKvCache pool(1, 4, 2);
    const int s = pool.createSequence();
    EXPECT_EQ(pool.blocksInUse(), 0);
    for (int i = 0; i < kKvBlockSize; ++i)
        pool.append(s, 0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(pool.blocksInUse(), 1);
    pool.append(s, 0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(pool.blocksInUse(), 2);
}

TEST(PagedKv, TruncateFreesWholeBlocks)
{
    PagedKvCache pool(1, 8, 2);
    const int s = pool.createSequence();
    for (int i = 0; i < 2 * kKvBlockSize + 3; ++i)
        pool.append(s, 0, vec(2, static_cast<float>(i)), vec(2, 0));
    EXPECT_EQ(pool.blocksInUse(), 3);
    pool.truncate(s, kKvBlockSize); // exactly one block's worth
    EXPECT_EQ(pool.blocksInUse(), 1);
    EXPECT_EQ(pool.length(s, 0), kKvBlockSize);
    // Freed blocks are reusable.
    for (int i = 0; i < kKvBlockSize; ++i)
        pool.append(s, 0, vec(2, 0), vec(2, 0));
    EXPECT_EQ(pool.blocksInUse(), 2);
}

TEST(PagedKv, TruncateToZeroFreesAllBlocks)
{
    PagedKvCache pool(3, 12, 2);
    const int s = pool.createSequence();
    for (int l = 0; l < 3; ++l)
        for (int i = 0; i < kKvBlockSize + 5; ++i)
            pool.append(s, l, vec(2, 0), vec(2, 0));
    EXPECT_EQ(pool.seqBlocks(s), 6);
    pool.truncate(s, 0);
    EXPECT_EQ(pool.seqBlocks(s), 0);
    EXPECT_EQ(pool.blocksInUse(), 0);
    EXPECT_EQ(pool.blocksFree(), 12);
    for (int l = 0; l < 3; ++l)
        EXPECT_EQ(pool.length(s, l), 0);
    // The sequence stays usable after a full rollback.
    EXPECT_EQ(pool.append(s, 0, vec(2, 9.0f), vec(2, 0)), 0);
}

TEST(PagedKv, ClearReleasesEverything)
{
    PagedKvCache pool(2, 8, 2);
    const int s = pool.createSequence();
    for (int l = 0; l < 2; ++l)
        for (int i = 0; i < 20; ++i)
            pool.append(s, l, vec(2, 0), vec(2, 0));
    pool.clearSeq(s);
    EXPECT_EQ(pool.blocksInUse(), 0);
    EXPECT_EQ(pool.blocksFree(), 8);
    EXPECT_EQ(pool.length(s, 0), 0);
}

TEST(PagedKv, PoolExhaustionMidAppendDies)
{
    // Two sequences share one physical pool; the second exhausts it
    // mid-append even though its own sequence is tiny.
    PagedKvCache pool(1, 2, 2);
    const int a = pool.createSequence();
    const int b = pool.createSequence();
    for (int i = 0; i < kKvBlockSize; ++i)
        pool.append(a, 0, vec(2, 0), vec(2, 0));
    for (int i = 0; i < kKvBlockSize; ++i)
        pool.append(b, 0, vec(2, 0), vec(2, 0));
    EXPECT_TRUE(pool.wouldOverflow(a, 0));
    EXPECT_TRUE(pool.wouldOverflow(b, 0));
    EXPECT_DEATH(pool.append(b, 0, vec(2, 0), vec(2, 0)), "exhausted");
    // Freeing the other sequence unblocks the append.
    pool.dropSequence(a);
    EXPECT_FALSE(pool.wouldOverflow(b, 0));
    EXPECT_EQ(pool.append(b, 0, vec(2, 0), vec(2, 0)), kKvBlockSize);
}

TEST(PagedKv, PerSequenceIsolation)
{
    PagedKvCache pool(2, 8, 2);
    const int a = pool.createSequence();
    const int b = pool.createSequence();
    // Interleaved appends: positions and contents must not bleed
    // across block tables.
    for (int i = 0; i < kKvBlockSize + 2; ++i) {
        EXPECT_EQ(pool.append(a, 0, vec(2, 1000.0f + i), vec(2, 0)), i);
        EXPECT_EQ(pool.append(b, 0, vec(2, 2000.0f + i), vec(2, 0)), i);
    }
    pool.append(b, 1, vec(2, 3000.0f), vec(2, 0));
    EXPECT_EQ(pool.length(a, 0), kKvBlockSize + 2);
    EXPECT_EQ(pool.length(a, 1), 0);
    EXPECT_EQ(pool.length(b, 1), 1);
    for (int i = 0; i < kKvBlockSize + 2; ++i) {
        EXPECT_FLOAT_EQ(pool.key(a, 0, i)[0], 1000.0f + i);
        EXPECT_FLOAT_EQ(pool.key(b, 0, i)[0], 2000.0f + i);
    }
    // Truncating one sequence leaves the other intact.
    pool.truncate(a, 1);
    EXPECT_EQ(pool.length(b, 0), kKvBlockSize + 2);
    EXPECT_FLOAT_EQ(pool.key(b, 0, kKvBlockSize)[0],
                    2000.0f + kKvBlockSize);
}

TEST(PagedKv, InterleavedAllocFreeFragmentation)
{
    // Fragmentation scenario: A and B interleave allocations so
    // neither owns a contiguous physical range, then A is dropped
    // and a new sequence reuses the scattered free blocks.
    PagedKvCache pool(1, 4, 2);
    const int a = pool.createSequence();
    const int b = pool.createSequence();
    for (int i = 0; i < 2 * kKvBlockSize; ++i) {
        pool.append(a, 0, vec(2, 10.0f + i), vec(2, 0));
        pool.append(b, 0, vec(2, 20.0f + i), vec(2, 0));
    }
    EXPECT_EQ(pool.blocksFree(), 0);
    pool.dropSequence(a);
    EXPECT_EQ(pool.blocksFree(), 2);
    EXPECT_EQ(pool.blocksInUse(), 2);

    const int c = pool.createSequence();
    for (int i = 0; i < 2 * kKvBlockSize; ++i)
        pool.append(c, 0, vec(2, 30.0f + i), vec(2, 0));
    EXPECT_EQ(pool.blocksFree(), 0);
    // B survived the churn bit-for-bit.
    for (int i = 0; i < 2 * kKvBlockSize; ++i) {
        EXPECT_FLOAT_EQ(pool.key(b, 0, i)[0], 20.0f + i);
        EXPECT_FLOAT_EQ(pool.key(c, 0, i)[0], 30.0f + i);
    }
}

TEST(PagedKv, SequenceIdsRecycleDeterministically)
{
    PagedKvCache pool(1, 4, 2);
    const int a = pool.createSequence();
    const int b = pool.createSequence();
    EXPECT_EQ(pool.nSequences(), 2);
    pool.dropSequence(a);
    EXPECT_EQ(pool.createSequence(), a); // LIFO recycling
    EXPECT_EQ(pool.nSequences(), 2);
    (void)b;
}

TEST(SequenceKv, KvStoreViewOwnsItsSequence)
{
    auto pool = std::make_shared<PagedKvCache>(2, 8, 2);
    {
        SequenceKv view(pool);
        KvStore &kv = view;
        for (int i = 0; i < kKvBlockSize + 1; ++i)
            kv.append(0, vec(2, static_cast<float>(i)), vec(2, 0));
        EXPECT_EQ(kv.length(0), kKvBlockSize + 1);
        EXPECT_FLOAT_EQ(kv.key(0, kKvBlockSize)[0],
                        static_cast<float>(kKvBlockSize));
        EXPECT_EQ(view.blocks(), 2);
        kv.truncate(1);
        EXPECT_EQ(view.blocks(), 1);
        EXPECT_EQ(pool->nSequences(), 1);
    }
    // The view's destructor returned every block to the pool.
    EXPECT_EQ(pool->blocksInUse(), 0);
    EXPECT_EQ(pool->nSequences(), 0);
}

TEST(PagedKv, MatchesContiguousContents)
{
    const int layers = 3, hidden = 8, tokens = 40;
    KvCache a(layers, 64, hidden);
    PagedKvCache pool(layers, layers * (tokens / kKvBlockSize + 2),
                      hidden);
    const int s = pool.createSequence();
    Rng rng(7);
    for (int t = 0; t < tokens; ++t) {
        for (int l = 0; l < layers; ++l) {
            tensor::Vec k(hidden), v(hidden);
            for (auto &x : k)
                x = static_cast<float>(rng.normal());
            for (auto &x : v)
                x = static_cast<float>(rng.normal());
            EXPECT_EQ(a.append(l, k, v), pool.append(s, l, k, v));
        }
    }
    for (int l = 0; l < layers; ++l) {
        ASSERT_EQ(a.length(l), pool.length(s, l));
        for (int p = 0; p < a.length(l); ++p) {
            for (int d = 0; d < hidden; ++d) {
                const auto di = static_cast<size_t>(d);
                ASSERT_FLOAT_EQ(a.key(l, p)[di],
                                pool.key(s, l, p)[di]);
                ASSERT_FLOAT_EQ(a.value(l, p)[di],
                                pool.value(s, l, p)[di]);
            }
        }
    }
}

TEST(PagedKv, PerLayerIndependentTables)
{
    PagedKvCache pool(2, 4, 2);
    const int s = pool.createSequence();
    pool.append(s, 0, vec(2, 1.0f), vec(2, 2.0f));
    pool.append(s, 1, vec(2, 3.0f), vec(2, 4.0f));
    EXPECT_FLOAT_EQ(pool.key(s, 0, 0)[0], 1.0f);
    EXPECT_FLOAT_EQ(pool.key(s, 1, 0)[0], 3.0f);
    EXPECT_EQ(pool.blocksInUse(), 2);
}
