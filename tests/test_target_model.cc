/**
 * @file
 * TargetModel tests: the probability-shift phenomenon (§4.2), KV
 * bookkeeping, early-exit state propagation and quantized variants.
 */

#include <gtest/gtest.h>

#include "model/draft_model.hh"
#include "model/target_model.hh"
#include "oracle/corpus.hh"
#include "tensor/kernels.hh"

using namespace specee;

namespace {

model::ModelConfig
tinyCfg()
{
    return model::ModelConfig::tiny();
}

model::TokenScript
script(int target, int distractor, int conv)
{
    model::TokenScript s;
    s.target = target;
    s.distractor = distractor;
    s.conv_layer = conv;
    return s;
}

std::vector<int>
somePrompt(const model::ModelConfig &cfg, uint64_t seed)
{
    oracle::SyntheticCorpus corpus(cfg.sim.vocab, seed);
    Rng rng(seed);
    return corpus.sampleSequence(8, rng);
}

} // namespace

TEST(TargetModel, FinalArgmaxIsAlwaysScriptTarget)
{
    auto cfg = tinyCfg();
    model::TargetModel tm(cfg, {});
    tm.prefill(somePrompt(cfg, 1));
    Rng rng(3);
    int input = 5;
    for (int t = 0; t < 24; ++t) {
        const int target = rng.uniformInt(10, cfg.sim.vocab - 1);
        int distract = rng.uniformInt(10, cfg.sim.vocab - 1);
        if (distract == target)
            distract = (distract + 1) % cfg.sim.vocab;
        const int conv = rng.uniformInt(1, cfg.n_layers - 1);
        tm.beginToken(input, script(target, distract, conv));
        const int out = tm.runRemainingLayers();
        EXPECT_EQ(out, target) << "token " << t << " conv " << conv;
        input = out;
    }
}

TEST(TargetModel, ProbabilityShiftAtConvergenceLayer)
{
    auto cfg = tinyCfg();
    model::TargetModel tm(cfg, {});
    tm.prefill(somePrompt(cfg, 2));

    const int target = 100, distract = 200, conv = 4;
    tm.beginToken(7, script(target, distract, conv));

    std::vector<float> target_prob_per_layer;
    const std::vector<int> spec = {target, 150, 250, 300};
    tensor::Vec sliced(spec.size());
    for (int l = 0; l < cfg.n_layers; ++l) {
        tm.runLayer();
        tm.logitsSliced(spec, sliced);
        tensor::Vec probs(sliced.begin(), sliced.end());
        tensor::softmax(probs);
        target_prob_per_layer.push_back(probs[0]);
    }
    // Before convergence the target's local probability is low and
    // flat; at/after convergence it jumps sharply (Fig. 5a).
    for (int l = 0; l < conv - 1; ++l)
        EXPECT_LT(target_prob_per_layer[l], 0.55) << "layer " << l;
    for (int l = conv + 1; l < cfg.n_layers; ++l)
        EXPECT_GT(target_prob_per_layer[l], 0.80) << "layer " << l;
    // The shift itself: a large delta around the convergence layer.
    const float before = target_prob_per_layer[conv - 1];
    const float after = target_prob_per_layer[conv + 1];
    EXPECT_GT(after - before, 0.35);
}

TEST(TargetModel, PreConvergenceArgmaxIsDistractor)
{
    auto cfg = tinyCfg();
    model::TargetModel tm(cfg, {});
    tm.prefill(somePrompt(cfg, 3));

    const int target = 101, distract = 201, conv = 6;
    tm.beginToken(9, script(target, distract, conv));
    int distractor_hits = 0;
    for (int l = 0; l < conv - 1; ++l) {
        tm.runLayer();
        if (l >= 2 && tm.globalArgmax() == distract)
            ++distractor_hits;
    }
    // After the distractor ramp-in, the global argmax should usually
    // be the distractor before convergence.
    EXPECT_GE(distractor_hits, 2);
    // And after convergence it must be the target.
    while (tm.currentLayer() < conv + 2)
        tm.runLayer();
    EXPECT_EQ(tm.globalArgmax(), target);
}

TEST(TargetModel, EarlyExitFillsKvForSkippedLayers)
{
    auto cfg = tinyCfg();
    model::TargetModel tm(cfg, {});
    auto prompt = somePrompt(cfg, 4);
    tm.prefill(prompt);
    const int base = static_cast<int>(prompt.size());
    EXPECT_EQ(tm.position(), base);

    tm.beginToken(3, script(50, 60, 2));
    tm.runLayer();
    tm.runLayer();
    tm.runLayer(); // exit after layer 2
    const int filled = tm.finishEarly();
    EXPECT_EQ(filled, cfg.n_layers - 3);
    EXPECT_EQ(tm.position(), base + 1);
    // Every layer must now hold KV for the new position.
    for (int l = 0; l < cfg.n_layers; ++l)
        EXPECT_EQ(tm.kv().length(l), base + 1) << "layer " << l;
}

TEST(TargetModel, DeterministicAcrossInstances)
{
    auto cfg = tinyCfg();
    model::TargetModel a(cfg, {});
    model::TargetModel b(cfg, {});
    auto prompt = somePrompt(cfg, 5);
    a.prefill(prompt);
    b.prefill(prompt);
    a.beginToken(11, script(70, 80, 3));
    b.beginToken(11, script(70, 80, 3));
    for (int l = 0; l < cfg.n_layers; ++l) {
        auto ha = a.runLayer();
        auto hb = b.runLayer();
        for (size_t i = 0; i < ha.size(); ++i)
            ASSERT_FLOAT_EQ(ha[i], hb[i]);
    }
}

TEST(TargetModel, QuantizedModelStillEmitsTarget)
{
    auto cfg = tinyCfg();
    model::TargetModelOptions opts;
    opts.quantized = true;
    model::TargetModel tm(cfg, opts);
    tm.prefill(somePrompt(cfg, 6));
    Rng rng(17);
    int input = 2;
    for (int t = 0; t < 12; ++t) {
        const int target = rng.uniformInt(10, cfg.sim.vocab - 1);
        const int conv = rng.uniformInt(1, cfg.n_layers - 1);
        tm.beginToken(input, script(target, (target + 7) % cfg.sim.vocab,
                                    conv));
        EXPECT_EQ(tm.runRemainingLayers(), target);
        input = target;
    }
}

TEST(TargetModel, PagedKvVariantMatchesContiguous)
{
    auto cfg = tinyCfg();
    model::TargetModelOptions paged;
    paged.paged_kv = true;
    model::TargetModel a(cfg, {});
    model::TargetModel b(cfg, paged);
    auto prompt = somePrompt(cfg, 7);
    a.prefill(prompt);
    b.prefill(prompt);
    a.beginToken(4, script(90, 91, 5));
    b.beginToken(4, script(90, 91, 5));
    for (int l = 0; l < cfg.n_layers; ++l) {
        auto ha = a.runLayer();
        auto hb = b.runLayer();
        for (size_t i = 0; i < ha.size(); ++i)
            ASSERT_NEAR(ha[i], hb[i], 1e-6f);
    }
}

TEST(TargetModel, SparseFfnChangesTextureButNotTarget)
{
    auto cfg = tinyCfg();
    model::TargetModelOptions opts;
    opts.sparse_ffn = true;
    opts.ffn_active_frac = 0.3f;
    model::TargetModel tm(cfg, opts);
    tm.prefill(somePrompt(cfg, 8));
    tm.beginToken(6, script(120, 121, 3));
    EXPECT_EQ(tm.runRemainingLayers(), 120);
}

TEST(TargetModel, ResetClearsState)
{
    auto cfg = tinyCfg();
    model::TargetModel tm(cfg, {});
    tm.prefill(somePrompt(cfg, 9));
    tm.beginToken(1, script(30, 31, 2));
    tm.runRemainingLayers();
    tm.reset();
    EXPECT_EQ(tm.position(), 0);
    for (int l = 0; l < cfg.n_layers; ++l)
        EXPECT_EQ(tm.kv().length(l), 0);
}
