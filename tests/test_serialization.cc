/**
 * @file
 * Serialization tests: MLP and predictor-bank save/load round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/predictor.hh"
#include "nn/mlp.hh"

using namespace specee;

namespace {

nn::Dataset
toyData(uint64_t seed)
{
    nn::Dataset d(4);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
        std::vector<float> f(4);
        for (auto &x : f)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        d.add(f, f[0] + f[1] > 0.0f ? 1.0f : 0.0f);
    }
    return d;
}

std::string
tempPath(const char *stem)
{
    return std::string(::testing::TempDir()) + stem;
}

} // namespace

TEST(Serialization, MlpRoundTripPreservesOutputs)
{
    nn::Mlp mlp({4, 16, 1}, 5);
    auto data = toyData(1);
    nn::TrainConfig cfg;
    cfg.epochs = 10;
    mlp.fit(data, cfg);

    std::stringstream ss;
    mlp.save(ss);
    auto loaded = nn::Mlp::load(ss);

    EXPECT_EQ(loaded.depth(), mlp.depth());
    EXPECT_EQ(loaded.inputDim(), mlp.inputDim());
    EXPECT_EQ(loaded.paramCount(), mlp.paramCount());
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_FLOAT_EQ(loaded.predict(data.features(i)),
                        mlp.predict(data.features(i)));
    }
}

TEST(Serialization, MlpRejectsGarbage)
{
    std::stringstream ss;
    ss << "not an mlp at all";
    EXPECT_DEATH(nn::Mlp::load(ss), "magic");
}

TEST(Serialization, MlpRejectsTruncation)
{
    nn::Mlp mlp({4, 8, 1}, 6);
    std::stringstream ss;
    mlp.save(ss);
    std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_DEATH(nn::Mlp::load(cut), "truncated");
}

TEST(Serialization, PredictorBankRoundTrip)
{
    core::ExitPredictor bank(7, 12, 32, 2, 9);
    const std::string path = tempPath("bank.bin");
    bank.save(path);
    auto loaded = core::ExitPredictor::load(path);

    EXPECT_EQ(loaded.nExitLayers(), bank.nExitLayers());
    EXPECT_EQ(loaded.featDim(), bank.featDim());
    EXPECT_EQ(loaded.totalParams(), bank.totalParams());
    tensor::Vec f(12, 0.3f);
    for (int l = 0; l < bank.nExitLayers(); ++l)
        EXPECT_FLOAT_EQ(loaded.score(l, f), bank.score(l, f));
    std::remove(path.c_str());
}

TEST(Serialization, PredictorBankMissingFileFatals)
{
    EXPECT_EXIT(core::ExitPredictor::load("/nonexistent/x.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}
