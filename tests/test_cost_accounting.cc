/**
 * @file
 * Cost-accounting invariants: the modeled op log must be consistent
 * with the functional run (counts, proportionality, composition).
 * These tests pin the contract between the engine and hw::CostModel
 * that every benchmark result rests on.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace specee;
using engines::EngineConfig;

namespace {

const workload::Workload &
wl()
{
    static const workload::Workload w = testutil::tinyPipeline().makeWorkload(
        "Alpaca", testutil::smallGen(3, 24, 909));
    return w;
}

engines::RunResult
runCfg(const EngineConfig &cfg,
       const hw::HardwareSpec &spec = hw::HardwareSpec::a100())
{
    auto engine = testutil::tinyPipeline().makeEngine(cfg, spec);
    return engine->run(wl(), 13);
}

} // namespace

TEST(CostAccounting, DenseChargesOneHeadAndEmbedPerToken)
{
    auto r = runCfg(EngineConfig::huggingFace());
    const auto &log = r.stats.oplog;
    EXPECT_EQ(log.totals(hw::OpClass::LmHeadFull).count, r.stats.tokens);
    EXPECT_EQ(log.totals(hw::OpClass::Embed).count, r.stats.tokens);
    EXPECT_EQ(log.totals(hw::OpClass::Draft).count, 0);
    EXPECT_EQ(log.totals(hw::OpClass::KvFill).count, 0);
    EXPECT_EQ(log.totals(hw::OpClass::Predictor).count, 0);
}

TEST(CostAccounting, SpecEEChargesOneDraftPerToken)
{
    auto r = runCfg(EngineConfig::huggingFace().withSpecEE());
    const auto &log = r.stats.oplog;
    EXPECT_EQ(log.totals(hw::OpClass::Draft).count, r.stats.tokens);
    // One kv-fill charge per exited token.
    EXPECT_EQ(log.totals(hw::OpClass::KvFill).count, r.stats.exits);
    // Verification heads: one per verify call, plus one decode head
    // per non-exited token.
    EXPECT_EQ(log.totals(hw::OpClass::LmHeadFull).count,
              r.stats.verify_calls +
                  (r.stats.tokens - r.stats.exits));
    // Sliced-head and predictor charges match invocations.
    EXPECT_EQ(log.totals(hw::OpClass::LmHeadSliced).count,
              r.stats.predictor_invocations);
    EXPECT_EQ(log.totals(hw::OpClass::Predictor).count,
              r.stats.predictor_invocations);
}

TEST(CostAccounting, LayerTimeTracksAverageLayers)
{
    auto dense = runCfg(EngineConfig::huggingFace());
    auto ee = runCfg(EngineConfig::huggingFace().withSpecEE());
    const double dense_layer_t =
        dense.stats.oplog.totals(hw::OpClass::DecoderLayer).time_s;
    const double ee_layer_t =
        ee.stats.oplog.totals(hw::OpClass::DecoderLayer).time_s;
    const double layer_ratio =
        ee.stats.avg_forward_layers / dense.stats.avg_forward_layers;
    // SpecEE kernels run at slightly higher calibrated efficiency, so
    // allow that factor plus launch-overhead noise.
    EXPECT_NEAR(ee_layer_t / dense_layer_t, layer_ratio / 1.06, 0.06);
}

TEST(CostAccounting, QuantizationCutsWeightBytes)
{
    auto fp16 = runCfg(EngineConfig::huggingFace());
    auto q4 = runCfg(EngineConfig::awq());
    const double b_fp16 =
        fp16.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    const double b_q4 =
        q4.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    // Q4 group quantization: 4.5/16 of fp16 weight traffic (plus the
    // small activation component).
    EXPECT_LT(b_q4 / b_fp16, 0.35);
    EXPECT_GT(b_q4 / b_fp16, 0.25);
}

TEST(CostAccounting, SparseFfnCutsLayerBytes)
{
    auto dense = runCfg(EngineConfig::huggingFace());
    EngineConfig sparse_cfg = EngineConfig::huggingFace();
    sparse_cfg.sparse_ffn = true;
    sparse_cfg.ffn_active_frac = 0.3f;
    auto sparse = runCfg(sparse_cfg);
    const double b_dense =
        dense.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    const double b_sparse =
        sparse.stats.oplog.totals(hw::OpClass::DecoderLayer).bytes;
    // FFN is ~2/3 of layer weights; keeping 30% of it leaves
    // ~1/3 + 0.3*2/3 ~= 53%.
    EXPECT_LT(b_sparse / b_dense, 0.65);
    EXPECT_GT(b_sparse / b_dense, 0.40);
}

TEST(CostAccounting, TensorParallelSyncChargedPerLayer)
{
    auto r = runCfg(EngineConfig::huggingFace(),
                    hw::HardwareSpec::a100x4());
    const auto &sync = r.stats.oplog.totals(hw::OpClass::Sync);
    EXPECT_GT(sync.time_s, 0.0);
    // One sync charge per (token, layer-batch) decode call.
    EXPECT_EQ(sync.count, r.stats.tokens);
}

TEST(CostAccounting, OverheadChargedPerStep)
{
    auto r = runCfg(EngineConfig::huggingFace());
    const auto &oh = r.stats.oplog.totals(hw::OpClass::Overhead);
    EXPECT_EQ(oh.count, r.stats.tokens);
    EXPECT_NEAR(oh.time_s,
                r.stats.tokens *
                    EngineConfig::huggingFace().fixed_overhead_s,
                1e-9);
}

TEST(CostAccounting, SpeculativePassesChargeBatchedLayers)
{
    auto r = runCfg(EngineConfig::eagle());
    const auto &log = r.stats.oplog;
    // Layer charges: one per pass plus one for the first token.
    EXPECT_EQ(log.totals(hw::OpClass::DecoderLayer).count / 1,
              log.totals(hw::OpClass::DecoderLayer).count);
    EXPECT_GT(r.stats.passes, 0);
    // Throughput accounting must cover all committed tokens.
    EXPECT_EQ(r.stats.tokens,
              static_cast<long>(wl().instances.size() *
                                wl().instances[0].steps.size()));
}

TEST(CostAccounting, EnergyIsTimeTimesPower)
{
    auto r = runCfg(EngineConfig::huggingFace());
    const auto &layer =
        r.stats.oplog.totals(hw::OpClass::DecoderLayer);
    const auto spec = hw::HardwareSpec::a100();
    EXPECT_NEAR(layer.energy_j,
                layer.time_s *
                    spec.power_w[static_cast<int>(
                        hw::OpClass::DecoderLayer)],
                1e-9);
}

TEST(CostAccounting, PlatformOrderingHolds)
{
    // Same engine, same workload: the A100 must beat the 4090, which
    // must beat the PC for a memory-bound dense model.
    auto a100 = runCfg(EngineConfig::huggingFace(),
                       hw::HardwareSpec::a100());
    auto r4090 = runCfg(EngineConfig::huggingFace(),
                        hw::HardwareSpec::rtx4090());
    EXPECT_GT(a100.stats.tokens_per_s, r4090.stats.tokens_per_s);

    auto pc = runCfg(EngineConfig::llamaCpp(),
                     hw::HardwareSpec::pc4060());
    EXPECT_GT(r4090.stats.tokens_per_s, pc.stats.tokens_per_s);
}
