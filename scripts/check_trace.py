#!/usr/bin/env python3
"""Schema-check a SpecEE fleet trace (Chrome trace-event JSON).

Validates the structural contract the obs::chromeTraceJson exporter
promises, so CI catches export regressions on a real bench-produced
trace (not just the unit-test fixtures):

  * top-level object with displayTimeUnit and a traceEvents list;
  * every event carries name/ph/pid (and ts for non-metadata);
  * phases are limited to the exporter's vocabulary (M/X/i/s/f);
  * complete events ("X") have a non-negative dur;
  * instants are scheduler decisions on the fleet process (pid 0)
    with scope "p";
  * flow starts/ends ("s"/"f") pair up per id;
  * every non-metadata pid was introduced by a process_name record;
  * spans never overlap within one (pid, tid) track.

Usage: check_trace.py TRACE.json [--min-events N]
"""

import argparse
import collections
import json
import sys

PHASES = {"M", "X", "i", "s", "f"}
DECISIONS = {
    "admit", "defer", "watermark_reject", "drop", "cancel",
    "preempt_recompute", "preempt_swap", "resume", "cache_hit",
    "backfill_grant", "handoff", "knob_change",
}
SPAN_NAMES = {"iteration", "step", "prefill_chunk", "transfer"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1,
                    help="require at least N non-metadata events")
    args = ap.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"bad displayTimeUnit: {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    procs = set()
    flows = collections.Counter()
    tracks = collections.defaultdict(list)
    n_real = 0

    for i, e in enumerate(events):
        where = f"event {i}"
        for key in ("name", "ph", "pid"):
            if key not in e:
                fail(f"{where}: missing {key!r}")
        ph = e["ph"]
        if ph not in PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        if ph == "M":
            if e["name"] == "process_name":
                procs.add(e["pid"])
            continue
        if "ts" not in e:
            fail(f"{where}: missing ts")
        n_real += 1
        if ph == "X":
            if e["name"] not in SPAN_NAMES:
                fail(f"{where}: unknown span name {e['name']!r}")
            if e.get("dur", -1) < 0:
                fail(f"{where}: span without non-negative dur")
            tracks[(e["pid"], e["tid"])].append(
                (e["ts"], e["ts"] + e["dur"], e["name"]))
        elif ph == "i":
            if e["name"] not in DECISIONS:
                fail(f"{where}: unknown decision {e['name']!r}")
            if e["pid"] != 0:
                fail(f"{where}: decision off the fleet process")
            if e.get("s") != "p":
                fail(f"{where}: instant without process scope")
        else:  # s / f
            if e["name"] != "request" or "id" not in e:
                fail(f"{where}: malformed flow event")
            flows[e["id"]] += 1 if ph == "s" else -1

    if 0 not in procs:
        fail("no fleet scheduler process metadata")
    for (pid, tid), spans in tracks.items():
        if pid not in procs:
            fail(f"span process {pid} never named")
        spans.sort()
        # ts and dur are each rendered at 0.001 us precision, so a
        # span ending exactly where the next begins can appear to
        # overhang by up to 1.5 ns. Anything beyond quantization
        # noise is a real scheduler overlap.
        eps = 0.002
        end = None
        for t0, t1, name in spans:
            if end is not None and t0 < end - eps:
                fail(f"overlapping {name!r} spans on pid {pid} "
                     f"tid {tid} at ts {t0}")
            end = t1
    unbalanced = {k: v for k, v in flows.items() if v != 0}
    if unbalanced:
        fail(f"unpaired request flows: {unbalanced}")
    if n_real < args.min_events:
        fail(f"only {n_real} events (need >= {args.min_events})")

    print(f"check_trace: OK: {n_real} events, {len(procs)} processes, "
          f"{len(tracks)} span tracks, {len(flows)} request flows")


if __name__ == "__main__":
    main()
