#include "hw/hardware_model.hh"

#include "util/logging.hh"

namespace specee::hw {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::DecoderLayer: return "decoder_layer";
      case OpClass::KvRead: return "kv_read";
      case OpClass::KvFill: return "kv_fill";
      case OpClass::LmHeadFull: return "lm_head_full";
      case OpClass::LmHeadSliced: return "lm_head_sliced";
      case OpClass::Predictor: return "predictor";
      case OpClass::Draft: return "draft";
      case OpClass::Embed: return "embed";
      case OpClass::Sync: return "sync";
      case OpClass::Overhead: return "overhead";
      case OpClass::PrefillWeights: return "prefill_weights";
      case OpClass::PrefillCompute: return "prefill_compute";
      case OpClass::KvSwapOut: return "kv_swap_out";
      case OpClass::KvSwapIn: return "kv_swap_in";
      case OpClass::TpAllReduce: return "tp_all_reduce";
      case OpClass::PpHandoff: return "pp_handoff";
      case OpClass::KvHandoff: return "kv_handoff";
      default: return "unknown";
    }
}

bool
isBatchAmortized(OpClass cls)
{
    switch (cls) {
    case OpClass::DecoderLayer:
    case OpClass::KvFill:
    case OpClass::LmHeadFull:
    case OpClass::Draft:
    // The embedding table is a weight read too: the batch issues ONE
    // gather kernel per iteration, so the launch-dominated Embed
    // charge (the bytes are ~hidden*2 per request, noise next to the
    // launch overhead) amortizes like the other weight-bound
    // classes. Charging it per-request overcounted batched runs by
    // one kernel launch per extra active request.
    case OpClass::Embed:
    case OpClass::Sync:
    case OpClass::Overhead:
    // A prefill chunk runs every decoder layer, so its weight stream
    // is the same bytes a decode iteration reads — in a mixed batch
    // the iteration still reads the weights once. The chunk-scaled
    // side (GEMM flops, attention over the past, KV writes) stays
    // private: that is the interference a prefill chunk inflicts on
    // its decode peers' inter-token latency.
    case OpClass::PrefillWeights:
        return true;
    default:
        return false;
    }
}

namespace {

std::array<double, kNumOpClasses>
powerTable(double layer, double kv_read, double kv_fill, double head,
           double sliced, double pred, double draft, double misc)
{
    std::array<double, kNumOpClasses> p{};
    p[static_cast<int>(OpClass::DecoderLayer)] = layer;
    p[static_cast<int>(OpClass::KvRead)] = kv_read;
    p[static_cast<int>(OpClass::KvFill)] = kv_fill;
    p[static_cast<int>(OpClass::LmHeadFull)] = head;
    p[static_cast<int>(OpClass::LmHeadSliced)] = sliced;
    p[static_cast<int>(OpClass::Predictor)] = pred;
    p[static_cast<int>(OpClass::Draft)] = draft;
    p[static_cast<int>(OpClass::Embed)] = misc;
    p[static_cast<int>(OpClass::Sync)] = misc;
    p[static_cast<int>(OpClass::Overhead)] = misc;
    // Prefill streams the same weights a decode layer pass reads; the
    // chunk-scaled GEMMs saturate the compute units like the full
    // head does.
    p[static_cast<int>(OpClass::PrefillWeights)] = layer;
    p[static_cast<int>(OpClass::PrefillCompute)] = head;
    // KV swap is a DMA over the host link: the copy engines move the
    // bytes while SMs idle, so the board draws about what the other
    // housekeeping (embed/sync/overhead) classes do.
    p[static_cast<int>(OpClass::KvSwapOut)] = misc;
    p[static_cast<int>(OpClass::KvSwapIn)] = misc;
    // Sharded-fleet collectives are link-bound: NCCL ring all-reduce
    // and stage activation handoffs keep the SMs mostly idle, like
    // the other housekeeping classes.
    p[static_cast<int>(OpClass::TpAllReduce)] = misc;
    p[static_cast<int>(OpClass::PpHandoff)] = misc;
    // A prefill->decode KV handoff is a copy-engine stream over the
    // peer link, SM-idle like the swap DMAs.
    p[static_cast<int>(OpClass::KvHandoff)] = misc;
    return p;
}

} // namespace

HardwareSpec
HardwareSpec::a100()
{
    HardwareSpec s;
    s.name = "A100-80GB";
    s.mem_bw_gbs = 2039.0;
    s.compute_tflops = 312.0;
    s.launch_overhead_us = 5.0;
    s.vram_gb = 80.0;
    s.swap_bw_gbs = 25.0; // PCIe 4.0 x16, effective
    s.interconnect_gbs = 600.0; // NVLink 3.0, per-GPU aggregate
    s.tdp_w = 400.0;
    // Dense decode averages ~201 W (§7.3.1); the predictor is a tiny
    // memory-bound kernel that leaves compute idle (~142 W, §7.3.2),
    // and the other SpecEE-side kernels (draft layer, k/v fill,
    // sliced head) are similarly bandwidth-bound thin GEMVs.
    s.power_w = powerTable(206, 196, 150, 215, 120, 142, 150, 110);
    return s;
}

HardwareSpec
HardwareSpec::rtx4090()
{
    HardwareSpec s;
    s.name = "RTX4090-24GB";
    s.mem_bw_gbs = 1008.0;
    s.compute_tflops = 165.0;
    s.launch_overhead_us = 4.0;
    s.vram_gb = 24.0;
    s.swap_bw_gbs = 25.0; // PCIe 4.0 x16, effective
    s.interconnect_gbs = 25.0; // no NVLink: peer copies ride PCIe
    s.tdp_w = 450.0;
    s.power_w = powerTable(270, 255, 195, 285, 155, 160, 195, 140);
    return s;
}

HardwareSpec
HardwareSpec::a100x4()
{
    HardwareSpec s = a100();
    s.name = "4xA100-80GB";
    s.n_devices = 4;
    s.mem_bw_gbs = 4.0 * 2039.0;  // weights sharded across devices
    s.compute_tflops = 4.0 * 312.0;
    s.swap_bw_gbs = 4.0 * 25.0;   // per-device PCIe, KV sharded too
    s.vram_gb = 320.0;
    s.sync_us_per_layer = 280.0;  // two all-reduces per layer (HF TP)
    s.tdp_w = 1600.0;
    return s;
}

HardwareSpec
HardwareSpec::pc4060()
{
    HardwareSpec s;
    s.name = "PC-RTX4060L-8GB";
    s.mem_bw_gbs = 256.0;
    s.compute_tflops = 22.0;
    s.launch_overhead_us = 6.0;
    s.vram_gb = 8.0;
    s.host_bw_gbs = 60.0;   // i7-13650HX dual-channel DDR5
    s.host_tflops = 0.6;
    s.swap_bw_gbs = 12.0;   // laptop dGPU: PCIe 4.0 x8, effective
    s.predictor_stall_us = 1100.0; // llama.cpp graph break + sync
    s.tdp_w = 115.0;
    // §7.3.2: predictor draws ~85 W on the PC GPU.
    s.power_w = powerTable(102, 98, 80, 108, 75, 85, 80, 70);
    return s;
}

HardwareSpec
HardwareSpec::byName(const std::string &name)
{
    if (name == "A100-80GB")
        return a100();
    if (name == "RTX4090-24GB")
        return rtx4090();
    if (name == "4xA100-80GB")
        return a100x4();
    if (name == "PC-RTX4060L-8GB")
        return pc4060();
    specee_fatal("unknown hardware platform: %s", name.c_str());
}

} // namespace specee::hw
