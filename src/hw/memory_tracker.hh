/**
 * @file
 * Device-memory footprint model at true model dimensions (Fig. 17).
 *
 * Tracks the components the paper plots: model weights (fp16, Q8 or
 * Q4 depending on the weight backend), growing KV cache, the
 * EAGLE-style draft model (~0.9 GB for 7B, ~1.4 GB for 13B, §7.4.2),
 * and the exit predictors (~416 KB).
 */

#ifndef SPECEE_HW_MEMORY_TRACKER_HH
#define SPECEE_HW_MEMORY_TRACKER_HH

#include "model/config.hh"
#include "model/stage_graph.hh"
#include "tensor/weight_store.hh"

namespace specee::hw {

/** Static + dynamic memory model for one engine configuration. */
class MemoryTracker
{
  public:
    /**
     * @param cfg              model configuration (true dims used)
     * @param backend          target-weight storage backend (fp32 is
     *                         shipped fp16 on device; q8/q4 at their
     *                         packed bits-per-weight incl. scales)
     * @param draft_backend    draft-model storage backend (the
     *                         whole-model knob deploys the DLM in the
     *                         target's backend; the legacy AWQ mode
     *                         keeps it fp16)
     * @param with_draft_model engine carries the DLM (SpecEE/EAGLE)
     * @param n_predictors     exit predictors deployed (0 if none)
     * @param predictor_params parameters per predictor MLP
     */
    MemoryTracker(const model::ModelConfig &cfg,
                  tensor::WeightBackend backend,
                  tensor::WeightBackend draft_backend,
                  bool with_draft_model, int n_predictors,
                  size_t predictor_params);

    /** Whole-model backend: the DLM ships in the same backend. */
    MemoryTracker(const model::ModelConfig &cfg,
                  tensor::WeightBackend backend, bool with_draft_model,
                  int n_predictors, size_t predictor_params)
        : MemoryTracker(cfg, backend, backend, with_draft_model,
                        n_predictors, predictor_params)
    {
    }

    /** Legacy AWQ flag: Q4 weights when set; the DLM stays fp16. */
    MemoryTracker(const model::ModelConfig &cfg, bool quantized,
                  bool with_draft_model, int n_predictors,
                  size_t predictor_params)
        : MemoryTracker(cfg,
                        quantized ? tensor::WeightBackend::Q4
                                  : tensor::WeightBackend::Fp32,
                        tensor::WeightBackend::Fp32, with_draft_model,
                        n_predictors, predictor_params)
    {
    }

    /** Weight bytes at the backend's modeled bits-per-weight. */
    double weightBytes() const;

    /**
     * Draft-model bytes: one decoder layer + embedding + LM head,
     * stored in the same backend as the target model.
     */
    double draftModelBytes() const;

    /** All predictor parameters, fp32. */
    double predictorBytes() const;

    /** KV cache bytes after `tokens` total cached positions. */
    double kvBytes(long tokens) const;

    /**
     * Host-pool bytes held by swapped-out sequences (`positions`
     * cached positions across every swapped session) — the host-DRAM
     * side of the fleet census, distinct from the VRAM totals.
     */
    double hostKvBytes(long positions) const;

    /**
     * KV bytes currently riding a DMA channel (`positions` cached
     * positions across every sequence with an in-flight transfer:
     * swap traffic on the host link, prefill->decode handoffs on the
     * peer link). The overlapped-transfer side of the fleet census —
     * bytes that are pinned (their blocks cannot be touched) but not
     * chargeable to either endpoint's working set alone.
     */
    double inflightKvBytes(long positions) const;

    /** Total device bytes after `tokens` positions. */
    double totalBytes(int tokens) const;

    /**
     * Decode-time activation scratch of one live decode session
     * (fp16 residual stream, attention workspace and a logits
     * buffer). Weights are shared across sessions; this is the part
     * that scales with batch occupancy.
     */
    double activationBytesPerSession() const;

    /**
     * Fleet view under continuous batching: weights, draft model and
     * predictors counted ONCE for the serving node, per-session KV
     * summed (`fleet_tokens` = cached positions across every live
     * session) and activation scratch per active session.
     */
    double fleetTotalBytes(long fleet_tokens, int n_sessions) const;

    /**
     * Weight bytes pipeline stage `stage` hosts (before the
     * tensor-parallel split): its layer range's projections, plus
     * the embedding table and draft model on stage 0, the LM head on
     * the last stage, and the exit predictors apportioned to the
     * stages hosting their layers. Sums over stages to weightBytes()
     * + draftModelBytes() + predictorBytes() exactly, so the shard
     * partition conserves the deployment.
     */
    double stageWeightBytes(const model::StageGraph &g, int stage) const;

    /**
     * Device-resident bytes of ONE device of a tp x pp fleet: stage
     * `stage`'s weight share and its layer range's share of the
     * fleet KV, both split `tp` ways, plus per-session activation
     * scratch. The single-device fit question — does a 70B-class
     * deployment fit an 80 GB card — is maxDeviceBytes() vs vram.
     */
    double deviceBytes(const model::StageGraph &g, int stage, int tp,
                       long fleet_tokens, int n_sessions) const;

    /** Max over stages of deviceBytes() — the fleet's tightest device. */
    double maxDeviceBytes(const model::StageGraph &g, int tp,
                          long fleet_tokens, int n_sessions) const;

    /** Convenience: GiB for plotting. */
    static double toGiB(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

  private:
    model::ModelConfig cfg_;
    tensor::WeightBackend backend_;
    tensor::WeightBackend draftBackend_;
    bool withDraft_;
    int nPredictors_;
    size_t predictorParams_;
};

} // namespace specee::hw

#endif // SPECEE_HW_MEMORY_TRACKER_HH
