/**
 * @file
 * Device-memory footprint model at true model dimensions (Fig. 17).
 *
 * Tracks the components the paper plots: model weights (fp16 or Q4),
 * growing KV cache, the EAGLE-style draft model (~0.9 GB for 7B,
 * ~1.4 GB for 13B, §7.4.2), and the exit predictors (~416 KB).
 */

#ifndef SPECEE_HW_MEMORY_TRACKER_HH
#define SPECEE_HW_MEMORY_TRACKER_HH

#include "model/config.hh"

namespace specee::hw {

/** Static + dynamic memory model for one engine configuration. */
class MemoryTracker
{
  public:
    /**
     * @param cfg              model configuration (true dims used)
     * @param quantized        weights stored Q4 instead of fp16
     * @param with_draft_model engine carries the DLM (SpecEE/EAGLE)
     * @param n_predictors     exit predictors deployed (0 if none)
     * @param predictor_params parameters per predictor MLP
     */
    MemoryTracker(const model::ModelConfig &cfg, bool quantized,
                  bool with_draft_model, int n_predictors,
                  size_t predictor_params);

    /** Weight bytes (fp16, or Q4 at 4.5 bits/weight incl. scales). */
    double weightBytes() const;

    /** Draft-model bytes: one decoder layer + embedding + LM head. */
    double draftModelBytes() const;

    /** All predictor parameters, fp32. */
    double predictorBytes() const;

    /** KV cache bytes after `tokens` total cached positions. */
    double kvBytes(int tokens) const;

    /** Total device bytes after `tokens` positions. */
    double totalBytes(int tokens) const;

    /** Convenience: GiB for plotting. */
    static double toGiB(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

  private:
    model::ModelConfig cfg_;
    bool quantized_;
    bool withDraft_;
    int nPredictors_;
    size_t predictorParams_;
};

} // namespace specee::hw

#endif // SPECEE_HW_MEMORY_TRACKER_HH
