#include "hw/cost_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::hw {

void
OpLog::add(OpClass cls, double time_s, double energy_j, double flops,
           double bytes)
{
    OpTotals &t = totals_[static_cast<size_t>(cls)];
    t.time_s += time_s;
    t.energy_j += energy_j;
    t.flops += flops;
    t.bytes += bytes;
    t.count += 1;
}

const OpTotals &
OpLog::totals(OpClass cls) const
{
    return totals_[static_cast<size_t>(cls)];
}

OpTotals
OpLog::grand() const
{
    OpTotals g;
    for (const auto &t : totals_) {
        g.time_s += t.time_s;
        g.energy_j += t.energy_j;
        g.flops += t.flops;
        g.bytes += t.bytes;
        g.count += t.count;
    }
    return g;
}

double
OpLog::avgPowerW() const
{
    OpTotals g = grand();
    return g.time_s > 0.0 ? g.energy_j / g.time_s : 0.0;
}

void
OpLog::merge(const OpLog &other)
{
    for (int i = 0; i < kNumOpClasses; ++i) {
        OpTotals &t = totals_[static_cast<size_t>(i)];
        const OpTotals &o = other.totals_[static_cast<size_t>(i)];
        t.time_s += o.time_s;
        t.energy_j += o.energy_j;
        t.flops += o.flops;
        t.bytes += o.bytes;
        t.count += o.count;
    }
}

void
OpLog::clear()
{
    totals_.fill(OpTotals{});
}

CostModel::CostModel(const HardwareSpec &spec, double bw_efficiency,
                     double device_weight_frac, double weight_compression)
    : spec_(spec), bwEff_(bw_efficiency), devFrac_(device_weight_frac),
      wComp_(weight_compression)
{
    specee_assert(bw_efficiency > 0.0 && bw_efficiency <= 1.0,
                  "bad bandwidth efficiency %f", bw_efficiency);
    specee_assert(device_weight_frac >= 0.0 && device_weight_frac <= 1.0,
                  "bad device weight fraction %f", device_weight_frac);
    specee_assert(weight_compression > 0.0 && weight_compression <= 1.0,
                  "bad weight compression %f", weight_compression);
}

double
CostModel::account(OpLog &log, OpClass cls, double flops,
                   double weight_bytes, double act_bytes, int kernels) const
{
    // Weight traffic is what the serving backend actually streams:
    // quantized backends read compressed bytes (and dequantize in
    // registers — the flops term is unchanged and still never
    // dominates single-batch decode).
    weight_bytes *= wComp_;

    const double dev_bw = spec_.mem_bw_gbs * 1e9 * bwEff_;
    const double dev_fl = spec_.compute_tflops * 1e12 * bwEff_;

    const double dev_bytes = weight_bytes * devFrac_ + act_bytes;
    const double host_bytes = weight_bytes * (1.0 - devFrac_);

    double t = std::max(dev_bytes / dev_bw, flops / dev_fl);
    if (host_bytes > 0.0) {
        specee_assert(spec_.host_bw_gbs > 0.0,
                      "weight offload on a platform without a host path");
        t += host_bytes / (spec_.host_bw_gbs * 1e9 * bwEff_);
    }
    t += kernels * spec_.launch_overhead_us * 1e-6;

    const double p = spec_.power_w[static_cast<size_t>(cls)];
    log.add(cls, t, t * p, flops, weight_bytes + act_bytes);
    return t;
}

double
CostModel::swapSeconds(double bytes, int kernels) const
{
    specee_assert(spec_.swap_bw_gbs > 0.0,
                  "KV swap on a platform without a host link");
    // The copy engines drive the host link directly; the framework's
    // kernel bandwidth efficiency (bwEff_) does not apply to DMA —
    // swap_bw_gbs is already the effective link rate.
    return bytes / (spec_.swap_bw_gbs * 1e9) +
           kernels * spec_.launch_overhead_us * 1e-6;
}

double
CostModel::accountSwap(OpLog &log, OpClass cls, double bytes,
                       int kernels) const
{
    specee_assert(cls == OpClass::KvSwapOut || cls == OpClass::KvSwapIn,
                  "accountSwap() prices swap classes only");
    const double t = swapSeconds(bytes, kernels);
    const double p = spec_.power_w[static_cast<size_t>(cls)];
    log.add(cls, t, t * p, 0.0, bytes);
    return t;
}

double
CostModel::interconnectSeconds(double bytes, int kernels) const
{
    specee_assert(spec_.interconnect_gbs > 0.0,
                  "sharded collective on a platform without a peer "
                  "link (interconnect_gbs = 0)");
    return bytes / (spec_.interconnect_gbs * 1e9) +
           kernels * spec_.launch_overhead_us * 1e-6;
}

double
CostModel::accountInterconnect(OpLog &log, OpClass cls, double bytes,
                               int kernels) const
{
    specee_assert(cls == OpClass::TpAllReduce ||
                      cls == OpClass::PpHandoff ||
                      cls == OpClass::KvHandoff,
                  "accountInterconnect() prices peer-link classes "
                  "only");
    const double t = interconnectSeconds(bytes, kernels);
    const double p = spec_.power_w[static_cast<size_t>(cls)];
    log.add(cls, t, t * p, 0.0, bytes);
    return t;
}

double
CostModel::accountFixed(OpLog &log, OpClass cls, double seconds) const
{
    const double p = spec_.power_w[static_cast<size_t>(cls)];
    log.add(cls, seconds, seconds * p, 0.0, 0.0);
    return seconds;
}

TransferEngine::TransferEngine(int n_devices)
{
    specee_assert(n_devices >= 1,
                  "transfer engine needs >= 1 device, got %d",
                  n_devices);
    free_at_.resize(static_cast<size_t>(n_devices));
    reset();
}

double
TransferEngine::submit(int device, DmaChannel ch, double now,
                       double seconds)
{
    specee_assert(device >= 0 &&
                      device < static_cast<int>(free_at_.size()),
                  "transfer on unknown device %d of %zu", device,
                  free_at_.size());
    specee_assert(seconds >= 0.0 && now >= 0.0,
                  "negative transfer time (%f s at %f)", seconds, now);
    double &busy_until =
        free_at_[static_cast<size_t>(device)][static_cast<size_t>(ch)];
    const double start = std::max(now, busy_until);
    busy_until = start + seconds;
    busy_s_ += seconds;
    return busy_until;
}

double
TransferEngine::freeAt(int device, DmaChannel ch) const
{
    specee_assert(device >= 0 &&
                      device < static_cast<int>(free_at_.size()),
                  "transfer on unknown device %d of %zu", device,
                  free_at_.size());
    return free_at_[static_cast<size_t>(device)][static_cast<size_t>(
        ch)];
}

void
TransferEngine::reset()
{
    for (auto &d : free_at_)
        d.fill(0.0);
    busy_s_ = 0.0;
}

} // namespace specee::hw
