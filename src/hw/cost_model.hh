/**
 * @file
 * Roofline cost model and per-class operator log.
 *
 * Every logical operator an engine executes is priced at the TRUE
 * Llama-2 dimensions: time = max(bytes / effective-bandwidth,
 * flops / effective-compute) + kernel-launch overhead. Single-batch
 * LLM decoding is memory-bound, so the bytes term dominates for the
 * big GEMVs while tiny kernels (the exit predictor) are launch-bound
 * — reproducing why AdaInfer-style full-vocab predictors cost ~20%
 * of latency while SpecEE's sliced predictor is ~5% (§7.4.4).
 *
 * The PC scenario models weight offload: a fraction of weight bytes
 * is served from host memory at host bandwidth (llama.cpp layer
 * offload; PowerInfer hot/cold neuron split).
 */

#ifndef SPECEE_HW_COST_MODEL_HH
#define SPECEE_HW_COST_MODEL_HH

#include <array>
#include <vector>

#include "hw/hardware_model.hh"

namespace specee::hw {

/** Accumulated totals for one op class. */
struct OpTotals
{
    double time_s = 0.0;
    double energy_j = 0.0;
    double flops = 0.0;
    double bytes = 0.0;
    long count = 0;
};

/** Per-class operator accounting for one engine run. */
class OpLog
{
  public:
    void add(OpClass cls, double time_s, double energy_j, double flops,
             double bytes);

    const OpTotals &totals(OpClass cls) const;

    /** Sum over all classes. */
    OpTotals grand() const;

    /** Average power (W) over the whole run. */
    double avgPowerW() const;

    /** Merge another log into this one. */
    void merge(const OpLog &other);

    void clear();

  private:
    std::array<OpTotals, kNumOpClasses> totals_{};
};

/** Prices logical operators on a platform. */
class CostModel
{
  public:
    /**
     * @param spec           platform
     * @param bw_efficiency  fraction of peak bandwidth the framework
     *                       achieves (calibration, DESIGN.md §5)
     * @param device_weight_frac fraction of weight bytes resident on
     *                       the device (1.0 = no offload)
     * @param weight_compression factor applied to every operator's
     *                       weight traffic before pricing and
     *                       logging: bits-per-weight of the serving
     *                       backend / 16 (1.0 = fp16, 0.5 = q8,
     *                       ~0.28 = q4). Callers that mix precisions
     *                       (the legacy AWQ fp16-head mode) keep this
     *                       at 1.0 and pre-scale per charge instead.
     */
    CostModel(const HardwareSpec &spec, double bw_efficiency = 1.0,
              double device_weight_frac = 1.0,
              double weight_compression = 1.0);

    const HardwareSpec &spec() const { return spec_; }

    /**
     * Price one operator and append it to `log`.
     *
     * @param weight_bytes  weight traffic (subject to offload split)
     * @param act_bytes     activation/KV traffic (always on device)
     * @param kernels       number of kernel launches
     */
    double account(OpLog &log, OpClass cls, double flops,
                   double weight_bytes, double act_bytes = 0.0,
                   int kernels = 1) const;

    /** Time for a pure fixed overhead (no flops/bytes). */
    double accountFixed(OpLog &log, OpClass cls, double seconds) const;

    /**
     * Time to move `bytes` of KV over the host link (swap-to-host
     * preemption traffic), one DMA per `kernels`. Pure pricing — the
     * scheduler's swap-vs-recompute policy compares this against the
     * victim's modeled recompute cost without charging anything.
     */
    double swapSeconds(double bytes, int kernels = 1) const;

    /**
     * Price one KV swap transfer (cls must be KvSwapOut or KvSwapIn)
     * and append it to `log`. Swap traffic is private per-request
     * bytes on the host link: it never amortizes across the batch.
     */
    double accountSwap(OpLog &log, OpClass cls, double bytes,
                       int kernels = 1) const;

    /**
     * Time to move `bytes` over the device-to-device interconnect
     * (NVLink-class link), one collective launch per `kernels`.
     * Like swap, the copy engines drive the link at its effective
     * rate — the framework's kernel bandwidth efficiency does not
     * apply. Pure pricing.
     */
    double interconnectSeconds(double bytes, int kernels = 1) const;

    /**
     * Price one peer-link transfer (cls must be TpAllReduce,
     * PpHandoff or KvHandoff) of `bytes` over the interconnect and
     * append it to `log`. Collective volume scales with the
     * activations (or KV blocks) moved, so the traffic is private
     * per-request bytes — it never amortizes across the batch the
     * way a weight stream does.
     */
    double accountInterconnect(OpLog &log, OpClass cls, double bytes,
                               int kernels = 1) const;

    double bwEfficiency() const { return bwEff_; }
    double deviceWeightFrac() const { return devFrac_; }
    double weightCompression() const { return wComp_; }

  private:
    HardwareSpec spec_;
    double bwEff_;
    double devFrac_;
    double wComp_;
};

/** DMA channel kinds one device's copy engines expose. */
enum class DmaChannel : int {
    Host = 0, ///< PCIe host link (swap_bw_gbs): swap-to-host traffic
    Peer = 1, ///< NVLink-class peer link (interconnect_gbs): KV handoff
};

constexpr int kNumDmaChannels = 2;

/**
 * Per-device DMA channel timelines: the asynchronous transfer layer
 * the scheduler overlaps against the iteration clock.
 *
 * Each logical device owns one host-link channel and one peer-link
 * channel. Transfers submitted to a channel serialize FIFO on that
 * channel (one copy engine drives one link) but advance concurrently
 * with everything else — compute iterations, other channels, other
 * devices. submit() models exactly that: a transfer issued at `now`
 * starts when the channel last frees, finishes `seconds` later, and
 * the caller gets the completion time to gate the one session whose
 * blocks are in flight. Nothing here advances a clock — the
 * scheduler decides what (if anything) waits.
 *
 * Pure bookkeeping over (device, channel, seconds): deterministic
 * for a deterministic caller, which is how fleet results stay
 * bit-identical across worker counts — channels belong to the
 * modeled topology's logical devices, not to physical worker
 * threads.
 */
class TransferEngine
{
  public:
    explicit TransferEngine(int n_devices = 1);

    /**
     * Schedule a transfer of `seconds` on `device`'s `ch` channel,
     * issued at time `now` (the channel serializes: the transfer
     * starts at max(now, channel busy-until)). @return completion
     * time
     */
    double submit(int device, DmaChannel ch, double now,
                  double seconds);

    /** Time `device`'s `ch` channel last frees (0 before any use). */
    double freeAt(int device, DmaChannel ch) const;

    /** Seconds every channel has spent moving bytes, summed. */
    double busySeconds() const { return busy_s_; }

    int nDevices() const
    {
        return static_cast<int>(free_at_.size());
    }

    /** Forget all channel history (every channel free at 0). */
    void reset();

  private:
    std::vector<std::array<double, kNumDmaChannels>> free_at_;
    double busy_s_ = 0.0;
};

} // namespace specee::hw

#endif // SPECEE_HW_COST_MODEL_HH
