/**
 * @file
 * Hardware platform specifications (Table 2) and the operator power
 * table used by the energy model (§7.3).
 *
 * Bandwidth / compute / capacity values are vendor datasheet numbers;
 * per-operator power draws are calibrated so the dense Llama2-7B run
 * on A100 averages ~201 W and SpecEE ~182 W, as §7.3.1 reports.
 */

#ifndef SPECEE_HW_HARDWARE_MODEL_HH
#define SPECEE_HW_HARDWARE_MODEL_HH

#include <array>
#include <string>

namespace specee::hw {

/** Logical operator classes the engines emit. */
enum class OpClass : int {
    DecoderLayer = 0, ///< attention + FFN projections of one layer
    KvRead,           ///< KV-cache traffic of attention
    KvFill,           ///< k/v projections for early-exit skipped layers
    LmHeadFull,       ///< full-vocabulary LM head (verification / decode)
    LmHeadSliced,     ///< speculative (sliced / grouped) LM head
    Predictor,        ///< exit-predictor MLP
    Draft,            ///< draft-model forward
    Embed,            ///< embedding lookup
    Sync,             ///< tensor-parallel synchronization
    Overhead,         ///< per-token framework overhead
    PrefillWeights,   ///< layer weight stream of a prefill chunk
    PrefillCompute,   ///< chunk-scaled prefill GEMMs / attention / KV
    KvSwapOut,        ///< KV blocks DMA'd device -> host (preemption)
    KvSwapIn,         ///< KV blocks DMA'd host -> device (resume)
    TpAllReduce,      ///< tensor-parallel ring all-reduce per layer
    PpHandoff,        ///< pipeline activation handoff between stages
    KvHandoff,        ///< prefill->decode KV stream over the peer link
    NumClasses
};

constexpr int kNumOpClasses = static_cast<int>(OpClass::NumClasses);

/** Short name of an op class (for tables). */
const char *opClassName(OpClass cls);

/**
 * True for operator classes whose traffic is read once per decode
 * iteration and amortizes across a batch (weight-bound: decoder
 * layers, KV fill, full LM head, draft model, embedding table, the
 * weight stream of a prefill chunk, plus per-iteration sync/overhead)
 * as opposed to per-request private traffic (KV reads, predictor
 * MLPs, sliced heads, and the chunk-length-scaled side of prefill).
 */
bool isBatchAmortized(OpClass cls);

/** One execution platform. */
struct HardwareSpec
{
    std::string name;

    double mem_bw_gbs = 0.0;      ///< device memory bandwidth (GB/s)
    double compute_tflops = 0.0;  ///< dense fp16 throughput (TFLOPS)
    double launch_overhead_us = 5.0; ///< per-kernel launch latency
    double vram_gb = 0.0;         ///< device memory capacity

    /** Host path for CPU-offloaded weights (PC scenario); 0 = none. */
    double host_bw_gbs = 0.0;
    double host_tflops = 0.0;

    /**
     * Host-link (PCIe) bandwidth for KV swap traffic (GB/s); the
     * price of swap-to-host preemption. Distinct from host_bw_gbs
     * (host DRAM bandwidth for offloaded weight reads): swap is a
     * DMA over the interconnect, not a host-memory-resident compute
     * path. 0 = no swap path on this platform.
     */
    double swap_bw_gbs = 0.0;

    /**
     * Device-to-device (NVLink-class) link bandwidth (GB/s) for
     * sharded fleets: tensor-parallel all-reduce traffic and
     * pipeline-parallel activation handoffs are priced over this
     * link. Distinct from swap_bw_gbs (the host PCIe path): intra-
     * node collectives never touch host memory. 0 = no peer link
     * (single-device platforms); sharded engine configs require it.
     */
    double interconnect_gbs = 0.0;

    /**
     * Pipeline-stall cost of interrupting the GPU graph for one
     * host-orchestrated predictor invocation (hybrid CPU-GPU
     * runtimes like llama.cpp break their compute graph per check;
     * 0 on cloud GPUs where the predictor stays device-side).
     */
    double predictor_stall_us = 0.0;

    int n_devices = 1;            ///< tensor-parallel device count
    double sync_us_per_layer = 0.0; ///< TP all-reduce cost per layer

    double tdp_w = 0.0;

    /** Average board power while executing each op class (W). */
    std::array<double, kNumOpClasses> power_w{};

    /** NVIDIA Tesla A100-80GB (cloud). */
    static HardwareSpec a100();
    /** NVIDIA RTX 4090 24GB (cloud). */
    static HardwareSpec rtx4090();
    /** 4x NVIDIA Tesla A100-80GB, tensor parallel (Llama2-70B). */
    static HardwareSpec a100x4();
    /** Lenovo PC: RTX 4060 Laptop 8GB + i7-13650HX (PC scenario). */
    static HardwareSpec pc4060();

    /** Lookup by name; fatal on unknown. */
    static HardwareSpec byName(const std::string &name);
};

} // namespace specee::hw

#endif // SPECEE_HW_HARDWARE_MODEL_HH
