#include "hw/memory_tracker.hh"

namespace specee::hw {

MemoryTracker::MemoryTracker(const model::ModelConfig &cfg,
                             tensor::WeightBackend backend,
                             tensor::WeightBackend draft_backend,
                             bool with_draft_model, int n_predictors,
                             size_t predictor_params)
    : cfg_(cfg),
      backend_(backend),
      draftBackend_(draft_backend),
      withDraft_(with_draft_model),
      nPredictors_(n_predictors),
      predictorParams_(predictor_params)
{
}

double
MemoryTracker::weightBytes() const
{
    return cfg_.truthWeightBytes() * tensor::weightCompression(backend_);
}

double
MemoryTracker::draftModelBytes() const
{
    if (!withDraft_)
        return 0.0;
    // EAGLE DLM = one decoder layer + embedding + LM head.
    return (cfg_.truthLayerBytes() + 2.0 * cfg_.truthLmHeadBytes()) *
           tensor::weightCompression(draftBackend_);
}

double
MemoryTracker::predictorBytes() const
{
    return static_cast<double>(nPredictors_) *
           static_cast<double>(predictorParams_) * 4.0;
}

double
MemoryTracker::kvBytes(int tokens) const
{
    return cfg_.truthKvBytesPerToken() * tokens;
}

double
MemoryTracker::totalBytes(int tokens) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           kvBytes(tokens);
}

} // namespace specee::hw
