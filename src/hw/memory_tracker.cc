#include "hw/memory_tracker.hh"

#include <algorithm>

namespace specee::hw {

MemoryTracker::MemoryTracker(const model::ModelConfig &cfg,
                             tensor::WeightBackend backend,
                             tensor::WeightBackend draft_backend,
                             bool with_draft_model, int n_predictors,
                             size_t predictor_params)
    : cfg_(cfg),
      backend_(backend),
      draftBackend_(draft_backend),
      withDraft_(with_draft_model),
      nPredictors_(n_predictors),
      predictorParams_(predictor_params)
{
}

double
MemoryTracker::weightBytes() const
{
    return cfg_.truthWeightBytes() * tensor::weightCompression(backend_);
}

double
MemoryTracker::draftModelBytes() const
{
    if (!withDraft_)
        return 0.0;
    // EAGLE DLM = one decoder layer + embedding + LM head.
    return (cfg_.truthLayerBytes() + 2.0 * cfg_.truthLmHeadBytes()) *
           tensor::weightCompression(draftBackend_);
}

double
MemoryTracker::predictorBytes() const
{
    return static_cast<double>(nPredictors_) *
           static_cast<double>(predictorParams_) * 4.0;
}

double
MemoryTracker::kvBytes(long tokens) const
{
    return cfg_.truthKvBytesPerToken() * static_cast<double>(tokens);
}

double
MemoryTracker::hostKvBytes(long positions) const
{
    // Same per-token bytes as the device KV — swap moves, not
    // compresses — but the pool it occupies is host DRAM, not VRAM.
    return kvBytes(positions);
}

double
MemoryTracker::inflightKvBytes(long positions) const
{
    // DMA moves the true-dims KV verbatim; in-flight bytes are the
    // same quantity pinned on a link instead of resident in a pool.
    return kvBytes(positions);
}

double
MemoryTracker::totalBytes(int tokens) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           kvBytes(tokens);
}

double
MemoryTracker::activationBytesPerSession() const
{
    // fp16: residual stream + attention q/k/v/o workspace + two FFN
    // intermediates + a full-vocab logits buffer per live sequence.
    return (6.0 * cfg_.truth.hidden + 2.0 * cfg_.truth.ffn +
            cfg_.truth.vocab) *
           2.0;
}

double
MemoryTracker::fleetTotalBytes(long fleet_tokens, int n_sessions) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           cfg_.truthKvBytesPerToken() *
               static_cast<double>(fleet_tokens) +
           activationBytesPerSession() * n_sessions;
}

double
MemoryTracker::stageWeightBytes(const model::StageGraph &g,
                                int stage) const
{
    const double comp = tensor::weightCompression(backend_);
    const model::StageRange &r = g.stage(stage);
    double b = cfg_.truthLayerBytes() * comp * r.n_layers;
    // The tied embedding feeds the first stage; the LM head lives on
    // the last (tied weights are replicated, not shared, across a
    // pipeline — both ends pay). The draft model runs ahead of the
    // target pass, so it sits with the embedding on stage 0.
    if (stage == 0)
        b += cfg_.truthLmHeadBytes() * comp + draftModelBytes();
    if (stage == g.nStages() - 1)
        b += cfg_.truthLmHeadBytes() * comp;
    // Exit predictors deploy beside the layers they probe.
    b += predictorBytes() * static_cast<double>(r.n_layers) /
         static_cast<double>(g.nLayers());
    return b;
}

double
MemoryTracker::deviceBytes(const model::StageGraph &g, int stage,
                           int tp, long fleet_tokens,
                           int n_sessions) const
{
    const model::StageRange &r = g.stage(stage);
    // KV is per-layer state: a stage holds its layer range's share,
    // head-sharded tp ways like the projections that produce it.
    const double kv = kvBytes(fleet_tokens) *
                      static_cast<double>(r.n_layers) /
                      static_cast<double>(g.nLayers());
    return (stageWeightBytes(g, stage) + kv) /
               static_cast<double>(tp) +
           activationBytesPerSession() * n_sessions;
}

double
MemoryTracker::maxDeviceBytes(const model::StageGraph &g, int tp,
                              long fleet_tokens, int n_sessions) const
{
    double m = 0.0;
    for (int s = 0; s < g.nStages(); ++s)
        m = std::max(m, deviceBytes(g, s, tp, fleet_tokens, n_sessions));
    return m;
}

} // namespace specee::hw
