#include "hw/memory_tracker.hh"

namespace specee::hw {

MemoryTracker::MemoryTracker(const model::ModelConfig &cfg,
                             tensor::WeightBackend backend,
                             tensor::WeightBackend draft_backend,
                             bool with_draft_model, int n_predictors,
                             size_t predictor_params)
    : cfg_(cfg),
      backend_(backend),
      draftBackend_(draft_backend),
      withDraft_(with_draft_model),
      nPredictors_(n_predictors),
      predictorParams_(predictor_params)
{
}

double
MemoryTracker::weightBytes() const
{
    return cfg_.truthWeightBytes() * tensor::weightCompression(backend_);
}

double
MemoryTracker::draftModelBytes() const
{
    if (!withDraft_)
        return 0.0;
    // EAGLE DLM = one decoder layer + embedding + LM head.
    return (cfg_.truthLayerBytes() + 2.0 * cfg_.truthLmHeadBytes()) *
           tensor::weightCompression(draftBackend_);
}

double
MemoryTracker::predictorBytes() const
{
    return static_cast<double>(nPredictors_) *
           static_cast<double>(predictorParams_) * 4.0;
}

double
MemoryTracker::kvBytes(long tokens) const
{
    return cfg_.truthKvBytesPerToken() * static_cast<double>(tokens);
}

double
MemoryTracker::hostKvBytes(long positions) const
{
    // Same per-token bytes as the device KV — swap moves, not
    // compresses — but the pool it occupies is host DRAM, not VRAM.
    return kvBytes(positions);
}

double
MemoryTracker::totalBytes(int tokens) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           kvBytes(tokens);
}

double
MemoryTracker::activationBytesPerSession() const
{
    // fp16: residual stream + attention q/k/v/o workspace + two FFN
    // intermediates + a full-vocab logits buffer per live sequence.
    return (6.0 * cfg_.truth.hidden + 2.0 * cfg_.truth.ffn +
            cfg_.truth.vocab) *
           2.0;
}

double
MemoryTracker::fleetTotalBytes(long fleet_tokens, int n_sessions) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           cfg_.truthKvBytesPerToken() *
               static_cast<double>(fleet_tokens) +
           activationBytesPerSession() * n_sessions;
}

} // namespace specee::hw
