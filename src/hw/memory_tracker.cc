#include "hw/memory_tracker.hh"

namespace specee::hw {

namespace {
// Q4 group quantization stores 4-bit weights plus per-group scale and
// minimum: 4 + 64/32 x 8 bits / 32 values ~= 4.5 bits per weight.
constexpr double kQ4BitsPerWeight = 4.5;
constexpr double kFp16BitsPerWeight = 16.0;
} // namespace

MemoryTracker::MemoryTracker(const model::ModelConfig &cfg, bool quantized,
                             bool with_draft_model, int n_predictors,
                             size_t predictor_params)
    : cfg_(cfg),
      quantized_(quantized),
      withDraft_(with_draft_model),
      nPredictors_(n_predictors),
      predictorParams_(predictor_params)
{
}

double
MemoryTracker::weightBytes() const
{
    const double fp16 = cfg_.truthWeightBytes();
    if (!quantized_)
        return fp16;
    return fp16 * (kQ4BitsPerWeight / kFp16BitsPerWeight);
}

double
MemoryTracker::draftModelBytes() const
{
    if (!withDraft_)
        return 0.0;
    // EAGLE DLM = one decoder layer + embedding + LM head (fp16).
    return cfg_.truthLayerBytes() + 2.0 * cfg_.truthLmHeadBytes();
}

double
MemoryTracker::predictorBytes() const
{
    return static_cast<double>(nPredictors_) *
           static_cast<double>(predictorParams_) * 4.0;
}

double
MemoryTracker::kvBytes(int tokens) const
{
    return cfg_.truthKvBytesPerToken() * tokens;
}

double
MemoryTracker::totalBytes(int tokens) const
{
    return weightBytes() + draftModelBytes() + predictorBytes() +
           kvBytes(tokens);
}

} // namespace specee::hw
