/**
 * @file
 * Plain-text table writer for the benchmark harnesses: aligned
 * columns, a title row, and optional CSV dumping so results can be
 * plotted externally.
 */

#ifndef SPECEE_METRICS_TABLE_HH
#define SPECEE_METRICS_TABLE_HH

#include <string>
#include <vector>

namespace specee::metrics {

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::string title);

    /** Set the header row. */
    void header(const std::vector<std::string> &cols);

    /** Append one row (must match header arity if a header was set). */
    void row(const std::vector<std::string> &cells);

    /** Format a double with `prec` decimals. */
    static std::string num(double v, int prec = 2);

    /** Render to stdout. */
    void print() const;

    /** Render as CSV. */
    std::string csv() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace specee::metrics

#endif // SPECEE_METRICS_TABLE_HH
