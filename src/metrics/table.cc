#include "metrics/table.hh"

#include <cstdio>

#include "util/logging.hh"

namespace specee::metrics {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(const std::vector<std::string> &cols)
{
    header_ = cols;
}

void
Table::row(const std::vector<std::string> &cells)
{
    if (!header_.empty()) {
        specee_assert(cells.size() == header_.size(),
                      "row arity %zu != header arity %zu", cells.size(),
                      header_.size());
    }
    rows_.push_back(cells);
}

std::string
Table::num(double v, int prec)
{
    return strfmt("%.*f", prec, v);
}

void
Table::print() const
{
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::printf("\n=== %s ===\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(width[i]),
                        cells[i].c_str());
        std::printf("\n");
    };
    if (!header_.empty()) {
        print_row(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
    }
    for (const auto &r : rows_)
        print_row(r);
}

std::string
Table::csv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                out += ',';
            out += cells[i];
        }
        out += '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return out;
}

} // namespace specee::metrics
