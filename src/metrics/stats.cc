#include "metrics/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace specee::metrics {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v) {
        specee_assert(x > 0.0, "geomean needs positive values, got %f", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(v.size()));
}

double
stdev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double
minOf(const std::vector<double> &v)
{
    return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double
percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    return percentileSorted(v, p);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    specee_assert(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    if (sorted.empty())
        return 0.0;
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    // Clamp against floating rank overshoot so p = 100 indexes the
    // last element exactly instead of one past it.
    const size_t lo =
        std::min(static_cast<size_t>(rank), sorted.size() - 1);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Stats::Stats(std::vector<double> samples) : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
    for (double x : sorted_)
        sum_ += x;
}

double
Stats::mean() const
{
    return sorted_.empty()
               ? 0.0
               : sum_ / static_cast<double>(sorted_.size());
}

double
Stats::min() const
{
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
Stats::max() const
{
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
Stats::percentile(double p) const
{
    return percentileSorted(sorted_, p);
}

std::vector<double>
normalize(const std::vector<long> &hist)
{
    long total = 0;
    for (long c : hist)
        total += c;
    std::vector<double> p(hist.size(), 0.0);
    if (total == 0)
        return p;
    for (size_t i = 0; i < hist.size(); ++i)
        p[i] = static_cast<double>(hist[i]) / static_cast<double>(total);
    return p;
}

double
histogramMean(const std::vector<long> &hist)
{
    long total = 0;
    double acc = 0.0;
    for (size_t i = 0; i < hist.size(); ++i) {
        total += hist[i];
        acc += static_cast<double>(i) * static_cast<double>(hist[i]);
    }
    return total > 0 ? acc / static_cast<double>(total) : 0.0;
}

} // namespace specee::metrics
