/**
 * @file
 * Statistics helpers used by the benchmark harnesses: mean, geometric
 * mean (the paper's cross-dataset aggregate), stdev, histograms.
 */

#ifndef SPECEE_METRICS_STATS_HH
#define SPECEE_METRICS_STATS_HH

#include <cstddef>
#include <vector>

namespace specee::metrics {

/** Arithmetic mean; 0 on empty input. */
double mean(const std::vector<double> &v);

/** Geometric mean; 0 on empty input. @pre all values > 0 */
double geomean(const std::vector<double> &v);

/** Sample standard deviation; 0 for fewer than 2 values. */
double stdev(const std::vector<double> &v);

/** Minimum / maximum (0 on empty input). */
double minOf(const std::vector<double> &v);
double maxOf(const std::vector<double> &v);

/**
 * p-th percentile (linear interpolation between order statistics);
 * 0 on empty input. @pre 0 <= p <= 100
 */
double percentile(std::vector<double> v, double p);

/**
 * percentile() over a vector that is ALREADY sorted ascending — the
 * repeated-query primitive (no copy, no re-sort). p = 0 returns the
 * minimum and p = 100 the maximum exactly; a single-element sample
 * returns that element for every p; 0 on empty input.
 * @pre 0 <= p <= 100, `sorted` ascending
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/**
 * Sorted-sample summary: sorts once at construction, then serves
 * any number of percentile / extremum queries without re-sorting.
 * Callers reducing the same sample vector repeatedly (fleet
 * reductions, per-window timeline stats) should build one Stats
 * instead of calling percentile() per quantile — each of those
 * copies and sorts the whole vector again.
 */
class Stats
{
  public:
    /** Empty summary: every query returns 0. */
    Stats() = default;

    explicit Stats(std::vector<double> samples);

    size_t count() const { return sorted_.size(); }
    bool empty() const { return sorted_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Minimum / maximum; 0 when empty. */
    double min() const;
    double max() const;
    /** p-th percentile without re-sorting. @pre 0 <= p <= 100 */
    double percentile(double p) const;

  private:
    std::vector<double> sorted_;
    double sum_ = 0.0;
};

/** Normalize a histogram of counts to probabilities. */
std::vector<double> normalize(const std::vector<long> &hist);

/** Weighted mean of bucket indices (e.g. average exit layer). */
double histogramMean(const std::vector<long> &hist);

} // namespace specee::metrics

#endif // SPECEE_METRICS_STATS_HH
