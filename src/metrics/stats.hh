/**
 * @file
 * Statistics helpers used by the benchmark harnesses: mean, geometric
 * mean (the paper's cross-dataset aggregate), stdev, histograms.
 */

#ifndef SPECEE_METRICS_STATS_HH
#define SPECEE_METRICS_STATS_HH

#include <vector>

namespace specee::metrics {

/** Arithmetic mean; 0 on empty input. */
double mean(const std::vector<double> &v);

/** Geometric mean; 0 on empty input. @pre all values > 0 */
double geomean(const std::vector<double> &v);

/** Sample standard deviation; 0 for fewer than 2 values. */
double stdev(const std::vector<double> &v);

/** Minimum / maximum (0 on empty input). */
double minOf(const std::vector<double> &v);
double maxOf(const std::vector<double> &v);

/**
 * p-th percentile (linear interpolation between order statistics);
 * 0 on empty input. @pre 0 <= p <= 100
 */
double percentile(std::vector<double> v, double p);

/** Normalize a histogram of counts to probabilities. */
std::vector<double> normalize(const std::vector<long> &hist);

/** Weighted mean of bucket indices (e.g. average exit layer). */
double histogramMean(const std::vector<long> &hist);

} // namespace specee::metrics

#endif // SPECEE_METRICS_STATS_HH
