#include "model/paged_kv.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::model {

PagedKvCache::PagedKvCache(int n_layers, int n_blocks, int hidden)
    : nLayers_(n_layers),
      hidden_(hidden),
      layers_(static_cast<size_t>(n_layers))
{
    kPool_.reserve(static_cast<size_t>(n_blocks));
    vPool_.reserve(static_cast<size_t>(n_blocks));
    for (int b = 0; b < n_blocks; ++b) {
        kPool_.emplace_back(static_cast<size_t>(kKvBlockSize),
                            static_cast<size_t>(hidden));
        vPool_.emplace_back(static_cast<size_t>(kKvBlockSize),
                            static_cast<size_t>(hidden));
        freeList_.push_back(n_blocks - 1 - b);
    }
}

int
PagedKvCache::allocBlock()
{
    specee_assert(!freeList_.empty(), "paged KV pool exhausted");
    int b = freeList_.back();
    freeList_.pop_back();
    return b;
}

void
PagedKvCache::freeBlock(int b)
{
    freeList_.push_back(b);
}

bool
PagedKvCache::wouldOverflow(int layer) const
{
    const LayerState &st = layers_[static_cast<size_t>(layer)];
    return st.len % kKvBlockSize == 0 && freeList_.empty();
}

int
PagedKvCache::append(int layer, tensor::CSpan k, tensor::CSpan v)
{
    specee_assert(layer >= 0 && layer < nLayers_, "bad layer");
    specee_assert(k.size() == static_cast<size_t>(hidden_) &&
                  v.size() == static_cast<size_t>(hidden_),
                  "paged kv dim mismatch");
    LayerState &st = layers_[static_cast<size_t>(layer)];
    if (st.len % kKvBlockSize == 0)
        st.blockTable.push_back(allocBlock());
    const int pos = st.len++;
    const int block = st.blockTable[static_cast<size_t>(pos / kKvBlockSize)];
    const int off = pos % kKvBlockSize;
    std::copy(k.begin(), k.end(),
              kPool_[static_cast<size_t>(block)]
                  .row(static_cast<size_t>(off)).begin());
    std::copy(v.begin(), v.end(),
              vPool_[static_cast<size_t>(block)]
                  .row(static_cast<size_t>(off)).begin());
    return pos;
}

std::pair<int, int>
PagedKvCache::locate(int layer, int pos) const
{
    const LayerState &st = layers_[static_cast<size_t>(layer)];
    specee_assert(pos >= 0 && pos < st.len, "paged kv read past end");
    return {st.blockTable[static_cast<size_t>(pos / kKvBlockSize)],
            pos % kKvBlockSize};
}

tensor::CSpan
PagedKvCache::key(int layer, int pos) const
{
    auto [block, off] = locate(layer, pos);
    return kPool_[static_cast<size_t>(block)].row(static_cast<size_t>(off));
}

tensor::CSpan
PagedKvCache::value(int layer, int pos) const
{
    auto [block, off] = locate(layer, pos);
    return vPool_[static_cast<size_t>(block)].row(static_cast<size_t>(off));
}

int
PagedKvCache::length(int layer) const
{
    return layers_[static_cast<size_t>(layer)].len;
}

void
PagedKvCache::truncate(int new_len)
{
    for (auto &st : layers_) {
        if (st.len <= new_len)
            continue;
        const int keep_blocks =
            new_len == 0 ? 0 : (new_len + kKvBlockSize - 1) / kKvBlockSize;
        while (static_cast<int>(st.blockTable.size()) > keep_blocks) {
            freeBlock(st.blockTable.back());
            st.blockTable.pop_back();
        }
        st.len = new_len;
    }
}

void
PagedKvCache::clear()
{
    truncate(0);
}

int
PagedKvCache::blocksInUse() const
{
    int n = 0;
    for (const auto &st : layers_)
        n += static_cast<int>(st.blockTable.size());
    return n;
}

} // namespace specee::model
