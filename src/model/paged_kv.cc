#include "model/paged_kv.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::model {

PagedKvCache::PagedKvCache(int n_layers, int n_blocks, int hidden)
    : nLayers_(n_layers), nBlocks_(n_blocks), hidden_(hidden)
{
    specee_assert(n_layers > 0 && n_blocks > 0 && hidden > 0,
                  "bad paged KV pool shape");
    kPool_.reserve(static_cast<size_t>(n_blocks));
    vPool_.reserve(static_cast<size_t>(n_blocks));
    refs_.assign(static_cast<size_t>(n_blocks), 0);
    for (int b = 0; b < n_blocks; ++b) {
        kPool_.emplace_back(static_cast<size_t>(kKvBlockSize),
                            static_cast<size_t>(hidden));
        vPool_.emplace_back(static_cast<size_t>(kKvBlockSize),
                            static_cast<size_t>(hidden));
        freeList_.push_back(n_blocks - 1 - b);
    }
}

int
PagedKvCache::createSequence()
{
    int seq;
    if (!freeSeqIds_.empty()) {
        seq = freeSeqIds_.back();
        freeSeqIds_.pop_back();
    } else {
        seq = static_cast<int>(seqs_.size());
        seqs_.emplace_back();
    }
    SeqState &st = seqs_[static_cast<size_t>(seq)];
    st.layers.assign(static_cast<size_t>(nLayers_), LayerState{});
    st.live = true;
    return seq;
}

void
PagedKvCache::dropSequence(int seq)
{
    specee_assert(!seqState(seq).in_transfer,
                  "drop of sequence %d with an in-flight transfer "
                  "(settle it first)",
                  seq);
    clearSeq(seq);
    seqs_[static_cast<size_t>(seq)].live = false;
    freeSeqIds_.push_back(seq);
}

const PagedKvCache::SeqState &
PagedKvCache::seqState(int seq) const
{
    specee_assert(seq >= 0 && seq < static_cast<int>(seqs_.size()) &&
                      seqs_[static_cast<size_t>(seq)].live,
                  "bad paged KV sequence id %d", seq);
    return seqs_[static_cast<size_t>(seq)];
}

PagedKvCache::SeqState &
PagedKvCache::seqState(int seq)
{
    return const_cast<SeqState &>(
        static_cast<const PagedKvCache *>(this)->seqState(seq));
}

int
PagedKvCache::allocBlock()
{
    specee_assert(!freeList_.empty(), "paged KV pool exhausted");
    int b = freeList_.back();
    freeList_.pop_back();
    // A block on the free list with live references would mean the
    // allocator is about to hand out memory another holder still
    // reads — the exact corruption the refcounted tier must rule out.
    specee_assert(refs_[static_cast<size_t>(b)] == 0,
                  "allocator handed out referenced block %d (refs %d)",
                  b, refs_[static_cast<size_t>(b)]);
    refs_[static_cast<size_t>(b)] = 1;
    return b;
}

void
PagedKvCache::releaseBlock(int b)
{
    specee_assert(b >= 0 && b < nBlocks_, "bad block id %d", b);
    specee_assert(refs_[static_cast<size_t>(b)] > 0,
                  "double free of paged KV block %d", b);
    if (--refs_[static_cast<size_t>(b)] == 0)
        freeList_.push_back(b);
}

void
PagedKvCache::retainBlock(int b)
{
    specee_assert(b >= 0 && b < nBlocks_, "bad block id %d", b);
    specee_assert(refs_[static_cast<size_t>(b)] > 0,
                  "retain of a free paged KV block %d", b);
    ++refs_[static_cast<size_t>(b)];
}

int
PagedKvCache::blockRefs(int b) const
{
    specee_assert(b >= 0 && b < nBlocks_, "bad block id %d", b);
    return refs_[static_cast<size_t>(b)];
}

std::vector<int>
PagedKvCache::retainRows(int seq, int layer, int row_begin, int row_end)
{
    specee_assert(layer >= 0 && layer < nLayers_, "bad layer");
    const SeqState &ss = seqState(seq);
    specee_assert(!ss.swapped, "retainRows on swapped-out sequence %d",
                  seq);
    const LayerState &st = ss.layers[static_cast<size_t>(layer)];
    specee_assert(row_begin >= 0 && row_begin <= row_end &&
                      row_end <= st.len,
                  "retainRows range [%d, %d) outside 0..%d", row_begin,
                  row_end, st.len);
    std::vector<int> out;
    if (row_begin >= row_end)
        return out;
    for (int blk = row_begin / kKvBlockSize;
         blk <= (row_end - 1) / kKvBlockSize; ++blk) {
        const int b = st.blockTable[static_cast<size_t>(blk)];
        retainBlock(b);
        out.push_back(b);
    }
    return out;
}

int
PagedKvCache::releaseBlocks(const std::vector<int> &blocks)
{
    int freed = 0;
    for (int b : blocks) {
        releaseBlock(b);
        if (refs_[static_cast<size_t>(b)] == 0)
            ++freed;
    }
    return freed;
}

void
PagedKvCache::adoptPrefix(int seq, int layer,
                          const std::vector<int> &blocks, int rows)
{
    specee_assert(layer >= 0 && layer < nLayers_, "bad layer");
    SeqState &ss = seqState(seq);
    specee_assert(!ss.swapped, "adoptPrefix on swapped-out sequence %d",
                  seq);
    LayerState &st = ss.layers[static_cast<size_t>(layer)];
    specee_assert(st.len == 0 && st.blockTable.empty(),
                  "adoptPrefix into non-empty (seq %d, layer %d)", seq,
                  layer);
    specee_assert(rows > 0 &&
                      static_cast<int>(blocks.size()) ==
                          (rows + kKvBlockSize - 1) / kKvBlockSize,
                  "adoptPrefix chain of %zu blocks does not cover %d "
                  "rows",
                  blocks.size(), rows);
    for (int b : blocks) {
        retainBlock(b);
        st.blockTable.push_back(b);
    }
    st.len = rows;
}

bool
PagedKvCache::wouldOverflow(int seq, int layer) const
{
    const LayerState &st =
        seqState(seq).layers[static_cast<size_t>(layer)];
    if (!freeList_.empty())
        return false;
    if (st.len % kKvBlockSize == 0)
        return true;
    // A shared tail block needs a copy-on-write fork to accept the
    // next position, which also requires a free block.
    const int tail =
        st.blockTable[static_cast<size_t>(st.len / kKvBlockSize)];
    return refs_[static_cast<size_t>(tail)] > 1;
}

int
PagedKvCache::append(int seq, int layer, tensor::CSpan k, tensor::CSpan v)
{
    specee_assert(layer >= 0 && layer < nLayers_, "bad layer");
    specee_assert(k.size() == static_cast<size_t>(hidden_) &&
                      v.size() == static_cast<size_t>(hidden_),
                  "paged kv dim mismatch");
    specee_assert(!seqState(seq).swapped,
                  "append to swapped-out sequence %d", seq);
    specee_assert(!seqState(seq).in_transfer,
                  "append to sequence %d with an in-flight transfer",
                  seq);
    LayerState &st = seqState(seq).layers[static_cast<size_t>(layer)];
    if (st.len % kKvBlockSize == 0)
        st.blockTable.push_back(allocBlock());
    const int pos = st.len++;
    const size_t blk = static_cast<size_t>(pos / kKvBlockSize);
    int block = st.blockTable[blk];
    const int off = pos % kKvBlockSize;
    if (refs_[static_cast<size_t>(block)] > 1) {
        // Copy-on-write fork: another sequence (or the prefix cache)
        // still reads this block, so the write lands in a private
        // copy seeded with the rows below the write position — the
        // shared prefix content both holders agree on.
        const int fork = allocBlock();
        for (int r = 0; r < off; ++r) {
            const auto row = static_cast<size_t>(r);
            const auto src_k =
                kPool_[static_cast<size_t>(block)].row(row);
            const auto src_v =
                vPool_[static_cast<size_t>(block)].row(row);
            std::copy(src_k.begin(), src_k.end(),
                      kPool_[static_cast<size_t>(fork)].row(row).begin());
            std::copy(src_v.begin(), src_v.end(),
                      vPool_[static_cast<size_t>(fork)].row(row).begin());
        }
        releaseBlock(block);
        st.blockTable[blk] = fork;
        block = fork;
    }
    std::copy(k.begin(), k.end(),
              kPool_[static_cast<size_t>(block)]
                  .row(static_cast<size_t>(off)).begin());
    std::copy(v.begin(), v.end(),
              vPool_[static_cast<size_t>(block)]
                  .row(static_cast<size_t>(off)).begin());
    return pos;
}

std::pair<int, int>
PagedKvCache::locate(int seq, int layer, int pos) const
{
    specee_assert(!seqState(seq).swapped,
                  "read from swapped-out sequence %d", seq);
    const LayerState &st =
        seqState(seq).layers[static_cast<size_t>(layer)];
    specee_assert(pos >= 0 && pos < st.len, "paged kv read past end");
    return {st.blockTable[static_cast<size_t>(pos / kKvBlockSize)],
            pos % kKvBlockSize};
}

tensor::CSpan
PagedKvCache::key(int seq, int layer, int pos) const
{
    auto [block, off] = locate(seq, layer, pos);
    return kPool_[static_cast<size_t>(block)].row(static_cast<size_t>(off));
}

tensor::CSpan
PagedKvCache::value(int seq, int layer, int pos) const
{
    auto [block, off] = locate(seq, layer, pos);
    return vPool_[static_cast<size_t>(block)].row(static_cast<size_t>(off));
}

int
PagedKvCache::length(int seq, int layer) const
{
    return seqState(seq).layers[static_cast<size_t>(layer)].len;
}

void
PagedKvCache::swapOut(int seq)
{
    SeqState &ss = seqState(seq);
    specee_assert(!ss.swapped, "double swap-out of sequence %d", seq);
    specee_assert(!ss.in_transfer,
                  "swap-out of sequence %d with an in-flight transfer",
                  seq);
    for (auto &st : ss.layers) {
        st.hostK.resize(static_cast<size_t>(st.len),
                        static_cast<size_t>(hidden_));
        st.hostV.resize(static_cast<size_t>(st.len),
                        static_cast<size_t>(hidden_));
        for (int pos = 0; pos < st.len; ++pos) {
            const int block =
                st.blockTable[static_cast<size_t>(pos / kKvBlockSize)];
            const auto off = static_cast<size_t>(pos % kKvBlockSize);
            const auto k = kPool_[static_cast<size_t>(block)].row(off);
            const auto v = vPool_[static_cast<size_t>(block)].row(off);
            std::copy(k.begin(), k.end(),
                      st.hostK.row(static_cast<size_t>(pos)).begin());
            std::copy(v.begin(), v.end(),
                      st.hostV.row(static_cast<size_t>(pos)).begin());
        }
        hostBlocks_ += static_cast<int>(st.blockTable.size());
        // Shared blocks (cached prefix) just drop this sequence's
        // reference — the cache keeps them device-resident; the host
        // copy above already captured the rows, so swap-in restores
        // into private blocks (prefix sharing ends at swap-out).
        for (int b : st.blockTable)
            releaseBlock(b);
        st.blockTable.clear();
    }
    ss.swapped = true;
}

void
PagedKvCache::swapIn(int seq)
{
    SeqState &ss = seqState(seq);
    specee_assert(ss.swapped, "swap-in of a device-resident sequence %d",
                  seq);
    specee_assert(!ss.in_transfer,
                  "swap-in of sequence %d with an in-flight transfer",
                  seq);
    for (auto &st : ss.layers) {
        for (int pos = 0; pos < st.len; ++pos) {
            if (pos % kKvBlockSize == 0)
                st.blockTable.push_back(allocBlock());
            const int block =
                st.blockTable[static_cast<size_t>(pos / kKvBlockSize)];
            const auto off = static_cast<size_t>(pos % kKvBlockSize);
            const auto k = st.hostK.row(static_cast<size_t>(pos));
            const auto v = st.hostV.row(static_cast<size_t>(pos));
            std::copy(k.begin(), k.end(),
                      kPool_[static_cast<size_t>(block)].row(off).begin());
            std::copy(v.begin(), v.end(),
                      vPool_[static_cast<size_t>(block)].row(off).begin());
        }
        hostBlocks_ -= static_cast<int>(st.blockTable.size());
        st.hostK = tensor::Matrix{};
        st.hostV = tensor::Matrix{};
    }
    ss.swapped = false;
}

bool
PagedKvCache::isSwapped(int seq) const
{
    return seqState(seq).swapped;
}

int
PagedKvCache::seqHostBlocks(int seq) const
{
    const SeqState &ss = seqState(seq);
    if (!ss.swapped)
        return 0;
    int n = 0;
    for (const auto &st : ss.layers)
        n += (st.len + kKvBlockSize - 1) / kKvBlockSize;
    return n;
}

void
PagedKvCache::truncate(int seq, int new_len)
{
    SeqState &ss = seqState(seq);
    specee_assert(!ss.in_transfer,
                  "truncate of sequence %d with an in-flight transfer",
                  seq);
    if (ss.swapped) {
        // The only legal truncation of a swapped sequence is a full
        // clear (deadline drop / cancellation while in the host
        // pool): release the host buffers, no device blocks to free.
        specee_assert(new_len == 0,
                      "partial truncate of swapped-out sequence %d", seq);
        for (auto &st : ss.layers) {
            hostBlocks_ -= (st.len + kKvBlockSize - 1) / kKvBlockSize;
            st.hostK = tensor::Matrix{};
            st.hostV = tensor::Matrix{};
            st.len = 0;
        }
        ss.swapped = false;
        return;
    }
    for (auto &st : seqState(seq).layers) {
        if (st.len <= new_len)
            continue;
        const int keep_blocks =
            new_len == 0 ? 0 : (new_len + kKvBlockSize - 1) / kKvBlockSize;
        while (static_cast<int>(st.blockTable.size()) > keep_blocks) {
            releaseBlock(st.blockTable.back());
            st.blockTable.pop_back();
        }
        st.len = new_len;
    }
}

void
PagedKvCache::clearSeq(int seq)
{
    truncate(seq, 0);
}

int
PagedKvCache::seqBlocks(int seq) const
{
    int n = 0;
    for (const auto &st : seqState(seq).layers)
        n += static_cast<int>(st.blockTable.size());
    return n;
}

void
PagedKvCache::beginTransfer(int seq)
{
    SeqState &ss = seqState(seq);
    specee_assert(!ss.in_transfer,
                  "sequence %d already has an in-flight transfer", seq);
    ss.in_transfer = true;
}

void
PagedKvCache::endTransfer(int seq)
{
    SeqState &ss = seqState(seq);
    specee_assert(ss.in_transfer,
                  "settling a transfer sequence %d never started", seq);
    ss.in_transfer = false;
}

bool
PagedKvCache::inTransfer(int seq) const
{
    return seqState(seq).in_transfer;
}

int
PagedKvCache::seqTransferBlocks(int seq) const
{
    // Whichever side of the link the blocks sit on (device blocks of
    // a handoff or a landing swap-in, host-pool block-equivalents of
    // a departing swap-out), the pinned set is the sequence's whole
    // footprint.
    if (!inTransfer(seq))
        return 0;
    return seqBlocks(seq) + seqHostBlocks(seq);
}

long
PagedKvCache::transferBlocksInFlight() const
{
    long n = 0;
    for (size_t s = 0; s < seqs_.size(); ++s) {
        if (seqs_[s].live && seqs_[s].in_transfer)
            n += seqTransferBlocks(static_cast<int>(s));
    }
    return n;
}

int
PagedKvCache::blocksInUse() const
{
    return nBlocks_ - static_cast<int>(freeList_.size());
}

int
PagedKvCache::nSequences() const
{
    int n = 0;
    for (const auto &st : seqs_)
        n += st.live ? 1 : 0;
    return n;
}

} // namespace specee::model
