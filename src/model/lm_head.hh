/**
 * @file
 * Language-model head: full, sliced (speculative) and grouped
 * (hyper-token) projections from hidden states to token logits.
 *
 * The sliced path is the core of the paper's insight (Fig. 2(b)):
 * instead of the full hidden x vocab GEMV per layer, the predictor
 * only needs the columns of the LM head that correspond to the
 * speculative tokens. The grouped path evaluates one block per token
 * tree path — the CPU analogue of the cutlass/MegaBlocks group-GEMM
 * kernel of Fig. 13.
 */

#ifndef SPECEE_MODEL_LM_HEAD_HH
#define SPECEE_MODEL_LM_HEAD_HH

#include <vector>

#include "model/weights.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/**
 * LM head tied to the embedding store (vocab x hidden). The store's
 * backend decides whether full/sliced logits run on dense fp32 rows
 * or dequantize-on-the-fly quantized rows.
 */
class LmHead
{
  public:
    /**
     * @param embedding  tied embedding store (vocab x hidden)
     * @param rms_final  final RMSNorm weight (hidden)
     */
    LmHead(const WeightMat &embedding, const tensor::Vec &rms_final);

    int vocab() const { return static_cast<int>(embedding_.rows()); }
    int hidden() const { return static_cast<int>(embedding_.cols()); }

    /** Full-vocabulary logits (the expensive online search). */
    void full(tensor::CSpan hidden_state, tensor::Span logits) const;

    /** Logits for selected tokens only (speculative LM head). */
    void sliced(tensor::CSpan hidden_state, const std::vector<int> &tokens,
                tensor::Span out) const;

    /**
     * Grouped (block-wise) sliced logits: group g pairs hidden state
     * hiddens[g] with token set groups[g]. Semantically equal to
     * calling sliced() per group; implemented as one fused pass so
     * tests can pin the equivalence (the GPU version is one grouped
     * GEMM launch instead of |groups| kernel launches).
     */
    void grouped(const std::vector<tensor::CSpan> &hiddens,
                 const std::vector<std::vector<int>> &groups,
                 std::vector<tensor::Vec> &out) const;

    /** argmax over the full vocabulary for a hidden state. */
    int argmaxToken(tensor::CSpan hidden_state) const;

  private:
    /** Apply the final RMSNorm into scratch_. */
    void normalize(tensor::CSpan hidden_state) const;

    const WeightMat &embedding_;
    const tensor::Vec &rmsFinal_;
    mutable tensor::Vec scratch_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_LM_HEAD_HH
