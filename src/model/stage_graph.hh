/**
 * @file
 * Stage-level execution graph: the layer-range partition behind
 * pipeline parallelism.
 *
 * A StageGraph splits the decoder's n_layers into `pp` contiguous
 * stages (Megatron-style: near-even, remainder layers assigned to
 * the earliest stages). It is pure layer-range arithmetic — which
 * stage hosts layer l, how many stages a step that traversed k
 * layers occupied — shared by the cost model (activation handoffs
 * cross stage boundaries), the memory tracker (per-device weight/KV
 * shares) and the serving scheduler (early-exit sessions release the
 * stages past their exit layer, which backfill can reuse).
 *
 * pp = 1 is the degenerate single-stage graph: every helper reduces
 * to the monolithic engine's arithmetic exactly, which is what keeps
 * the unsharded configuration bit-identical.
 */

#ifndef SPECEE_MODEL_STAGE_GRAPH_HH
#define SPECEE_MODEL_STAGE_GRAPH_HH

#include <vector>

namespace specee::model {

/** One contiguous layer range of the pipeline. */
struct StageRange
{
    int first_layer = 0; ///< first decoder layer of the stage
    int n_layers = 0;    ///< layers hosted by the stage

    int endLayer() const { return first_layer + n_layers; }
};

/** Contiguous layer-range partition of a decoder into pp stages. */
class StageGraph
{
  public:
    /**
     * Partition `n_layers` decoder layers into `pp` contiguous
     * stages. Stage s gets floor(n_layers/pp) layers plus one of the
     * remainder when s < n_layers % pp, so earlier stages are never
     * smaller than later ones. Requires 1 <= pp <= n_layers.
     */
    StageGraph(int n_layers, int pp);

    int nLayers() const { return nLayers_; }
    int nStages() const { return static_cast<int>(stages_.size()); }

    const StageRange &stage(int s) const;

    /** Stage hosting decoder layer `layer`. */
    int stageOfLayer(int layer) const;

    /**
     * Stages a step that executed layers [0, layers_used) occupied —
     * the occupancy an early exit at layer k releases down to.
     * 0 layers occupy 0 stages; a full-depth step occupies all.
     */
    int stagesForDepth(int layers_used) const;

    /**
     * Layers of stage `s` that fall inside [lo, hi) — the overlap
     * used to apportion a layer-range charge across stages.
     */
    int overlapLayers(int s, int lo, int hi) const;

    /**
     * Pipeline boundary crossings of a step that traversed
     * `layers_used` layers: one activation handoff per edge between
     * consecutive occupied stages (0 at pp = 1 or for shallow steps
     * confined to stage 0).
     */
    int handoffs(int layers_used) const;

  private:
    int nLayers_;
    std::vector<StageRange> stages_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_STAGE_GRAPH_HH
