#include "model/kv_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::model {

KvCache::KvCache(int n_layers, int max_seq, int hidden)
    : nLayers_(n_layers),
      maxSeq_(max_seq),
      hidden_(hidden),
      len_(static_cast<size_t>(n_layers), 0)
{
    k_.reserve(static_cast<size_t>(n_layers));
    v_.reserve(static_cast<size_t>(n_layers));
    for (int l = 0; l < n_layers; ++l) {
        k_.emplace_back(static_cast<size_t>(max_seq),
                        static_cast<size_t>(hidden));
        v_.emplace_back(static_cast<size_t>(max_seq),
                        static_cast<size_t>(hidden));
    }
}

int
KvCache::append(int layer, tensor::CSpan k, tensor::CSpan v)
{
    specee_assert(layer >= 0 && layer < nLayers_, "bad layer %d", layer);
    int &len = len_[static_cast<size_t>(layer)];
    specee_assert(len < maxSeq_, "kv cache overflow at layer %d", layer);
    specee_assert(k.size() == static_cast<size_t>(hidden_) &&
                  v.size() == static_cast<size_t>(hidden_),
                  "kv dim mismatch");
    std::copy(k.begin(), k.end(),
              k_[static_cast<size_t>(layer)].row(static_cast<size_t>(len))
                  .begin());
    std::copy(v.begin(), v.end(),
              v_[static_cast<size_t>(layer)].row(static_cast<size_t>(len))
                  .begin());
    return len++;
}

tensor::CSpan
KvCache::key(int layer, int pos) const
{
    specee_assert(pos < len_[static_cast<size_t>(layer)], "kv read past end");
    return k_[static_cast<size_t>(layer)].row(static_cast<size_t>(pos));
}

tensor::CSpan
KvCache::value(int layer, int pos) const
{
    specee_assert(pos < len_[static_cast<size_t>(layer)], "kv read past end");
    return v_[static_cast<size_t>(layer)].row(static_cast<size_t>(pos));
}

int
KvCache::length(int layer) const
{
    return len_[static_cast<size_t>(layer)];
}

void
KvCache::truncate(int new_len)
{
    for (auto &len : len_)
        len = std::min(len, new_len);
}

void
KvCache::clear()
{
    std::fill(len_.begin(), len_.end(), 0);
}

} // namespace specee::model
