#include "model/draft_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::model {

DraftModel::DraftModel(const ModelConfig &cfg,
                       const oracle::SyntheticCorpus &corpus,
                       double hit_rate)
    : corpus_(corpus), hitRate_(hit_rate), vocab_(cfg.sim.vocab)
{
    specee_assert(hit_rate >= 0.0 && hit_rate <= 1.0, "bad hit rate");
    specee_assert(corpus.vocab() == vocab_, "corpus/model vocab mismatch");
}

std::vector<int>
DraftModel::speculate(int prev_token, int true_target, int k,
                      Rng &rng) const
{
    specee_assert(k >= 1, "need at least one speculative token");
    const bool hit = rng.bernoulli(hitRate_);

    // Plausible continuations of the context serve as the remaining
    // slots (what a trained DLM's top-k looks like).
    auto cont = corpus_.topNext(prev_token, k + 4);
    std::vector<int> out;
    out.reserve(static_cast<size_t>(k));

    if (hit) {
        // A strong draft model ranks the true token near the top:
        // slot 0 w.p. 0.70, slot 1 w.p. 0.15, ...
        static const std::vector<float> slot_w = {0.70f, 0.15f, 0.10f,
                                                  0.05f};
        int slot = static_cast<int>(rng.categorical(slot_w));
        slot = std::min(slot, k - 1);
        for (const auto &[tok, p] : cont) {
            (void)p;
            if (static_cast<int>(out.size()) == slot)
                out.push_back(true_target);
            if (static_cast<int>(out.size()) >= k)
                break;
            if (tok != true_target &&
                std::find(out.begin(), out.end(), tok) == out.end()) {
                out.push_back(tok);
            }
        }
        if (std::find(out.begin(), out.end(), true_target) == out.end()) {
            if (static_cast<int>(out.size()) >= k)
                out.pop_back();
            out.push_back(true_target);
        }
    } else {
        for (const auto &[tok, p] : cont) {
            (void)p;
            if (tok == true_target)
                continue;
            if (std::find(out.begin(), out.end(), tok) == out.end())
                out.push_back(tok);
            if (static_cast<int>(out.size()) >= k)
                break;
        }
    }

    // Pad with fresh unigram draws in the (rare) case the continuation
    // head was too small.
    while (static_cast<int>(out.size()) < k) {
        int t = corpus_.sampleUnigram(rng);
        if ((hit || t != true_target) &&
            std::find(out.begin(), out.end(), t) == out.end()) {
            out.push_back(t);
        }
    }
    return out;
}

} // namespace specee::model
