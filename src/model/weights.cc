#include "model/weights.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace specee::model {

WeightMat::WeightMat(tensor::Matrix dense, tensor::WeightBackend backend)
    : store_(tensor::makeWeightStore(std::move(dense), backend))
{
}

const tensor::WeightStore &
WeightMat::store() const
{
    specee_assert(store_ != nullptr, "access to an unbuilt WeightMat");
    return *store_;
}

void
WeightMat::gemv(tensor::CSpan x, tensor::Span y) const
{
    store().gemv(x, y);
}

void
WeightMat::gemvRows(const std::vector<int> &rows, tensor::CSpan x,
                    tensor::Span y) const
{
    store().gemvRows(rows, x, y);
}

void
WeightMat::copyRow(size_t r, tensor::Span out) const
{
    store().copyRow(r, out);
}

tensor::Vec
WeightMat::denseRow(size_t r) const
{
    tensor::Vec out(cols());
    store().copyRow(r, out);
    return out;
}

float
WeightMat::rowDot(size_t r, tensor::CSpan x) const
{
    return store().rowDot(r, x);
}

void
WeightMat::addScaledColumn(size_t c, float scale, tensor::Span out) const
{
    store().addScaledColumn(c, scale, out);
}

size_t
WeightMat::rows() const
{
    return store_ != nullptr ? store_->rows() : 0;
}

size_t
WeightMat::cols() const
{
    return store_ != nullptr ? store_->cols() : 0;
}

size_t
WeightMat::byteSize() const
{
    return store_ != nullptr ? store_->byteSize() : 0;
}

tensor::WeightBackend
WeightMat::backend() const
{
    return store_ != nullptr ? store_->backend()
                             : tensor::WeightBackend::Fp32;
}

namespace {

tensor::Matrix
randomMatrix(size_t rows, size_t cols, float sd, Rng &rng)
{
    tensor::Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, sd));
    return m;
}

} // namespace

Weights::Weights(const ModelConfig &cfg,
                 tensor::WeightBackend proj_backend,
                 tensor::WeightBackend head_backend)
    : projBackend_(proj_backend), headBackend_(head_backend)
{
    Rng rng(cfg.weight_seed);
    const size_t h = static_cast<size_t>(cfg.sim.hidden);
    const size_t f = static_cast<size_t>(cfg.sim.ffn);
    const size_t v = static_cast<size_t>(cfg.sim.vocab);

    // Embedding rows normalized to unit L2 norm: the tied LM head then
    // produces logits whose scale is controlled purely by the hidden
    // norm, which the convergence steering relies on.
    tensor::Matrix emb = randomMatrix(v, h, 1.0f, rng);
    for (size_t r = 0; r < v; ++r) {
        tensor::Span row = emb.row(r);
        float n = tensor::norm2(row);
        if (n > 0.0f)
            tensor::scaleInplace(row, 1.0f / n);
    }
    embedding_ = WeightMat(std::move(emb), head_backend);

    // Projection scale keeps layer outputs O(1) per dim before the
    // per-layer renormalization in TargetModel.
    const float ps = 1.0f / std::sqrt(static_cast<float>(h));
    layers_.reserve(static_cast<size_t>(cfg.n_layers));
    for (int l = 0; l < cfg.n_layers; ++l) {
        LayerWeights lw;
        lw.wq = WeightMat(randomMatrix(h, h, ps, rng), proj_backend);
        lw.wk = WeightMat(randomMatrix(h, h, ps, rng), proj_backend);
        lw.wv = WeightMat(randomMatrix(h, h, ps, rng), proj_backend);
        lw.wo = WeightMat(randomMatrix(h, h, ps, rng), proj_backend);
        lw.w_gate = WeightMat(randomMatrix(f, h, ps, rng), proj_backend);
        lw.w_up = WeightMat(randomMatrix(f, h, ps, rng), proj_backend);
        lw.w_down = WeightMat(
            randomMatrix(h, f, 1.0f / std::sqrt(static_cast<float>(f)),
                         rng),
            proj_backend);
        lw.rms_attn.assign(h, 1.0f);
        lw.rms_ffn.assign(h, 1.0f);
        layers_.push_back(std::move(lw));
    }
    rmsFinal_.assign(h, 1.0f);
}

} // namespace specee::model
