#include "model/weights.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace specee::model {

WeightMat::WeightMat(tensor::Matrix dense, bool quantize)
{
    if (quantize) {
        isQuant_ = true;
        q4_ = tensor::Q4Matrix::quantize(dense);
    } else {
        dense_ = std::move(dense);
    }
}

void
WeightMat::gemv(tensor::CSpan x, tensor::Span y) const
{
    if (isQuant_)
        q4_.gemv(x, y);
    else
        tensor::gemv(dense_, x, y);
}

void
WeightMat::gemvRows(const std::vector<int> &rows, tensor::CSpan x,
                    tensor::Span y) const
{
    if (isQuant_)
        q4_.gemvRows(rows, x, y);
    else
        tensor::gemvRows(dense_, rows, x, y);
}

tensor::Vec
WeightMat::denseRow(size_t r) const
{
    tensor::Vec out(cols());
    if (isQuant_) {
        for (size_t c = 0; c < cols(); ++c)
            out[c] = q4_.at(r, c);
    } else {
        tensor::CSpan row = dense_.row(r);
        out.assign(row.begin(), row.end());
    }
    return out;
}

float
WeightMat::rowDot(size_t r, tensor::CSpan x) const
{
    specee_assert(x.size() == cols(), "rowDot size mismatch");
    if (isQuant_) {
        float acc = 0.0f;
        for (size_t c = 0; c < cols(); ++c)
            acc += q4_.at(r, c) * x[c];
        return acc;
    }
    return tensor::dot(dense_.row(r), x);
}

void
WeightMat::addScaledColumn(size_t c, float scale, tensor::Span out) const
{
    specee_assert(out.size() == rows(), "addScaledColumn size mismatch");
    if (isQuant_) {
        for (size_t r = 0; r < rows(); ++r)
            out[r] += scale * q4_.at(r, c);
        return;
    }
    const size_t stride = dense_.cols();
    const float *base = dense_.data() + c;
    for (size_t r = 0; r < rows(); ++r)
        out[r] += scale * base[r * stride];
}

size_t
WeightMat::rows() const
{
    return isQuant_ ? q4_.rows() : dense_.rows();
}

size_t
WeightMat::cols() const
{
    return isQuant_ ? q4_.cols() : dense_.cols();
}

namespace {

tensor::Matrix
randomMatrix(size_t rows, size_t cols, float sd, Rng &rng)
{
    tensor::Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal(0.0, sd));
    return m;
}

} // namespace

Weights::Weights(const ModelConfig &cfg, bool quantize)
    : quantized_(quantize)
{
    Rng rng(cfg.weight_seed);
    const size_t h = static_cast<size_t>(cfg.sim.hidden);
    const size_t f = static_cast<size_t>(cfg.sim.ffn);
    const size_t v = static_cast<size_t>(cfg.sim.vocab);

    // Embedding rows normalized to unit L2 norm: the tied LM head then
    // produces logits whose scale is controlled purely by the hidden
    // norm, which the convergence steering relies on.
    embedding_ = randomMatrix(v, h, 1.0f, rng);
    for (size_t r = 0; r < v; ++r) {
        tensor::Span row = embedding_.row(r);
        float n = tensor::norm2(row);
        if (n > 0.0f)
            tensor::scaleInplace(row, 1.0f / n);
    }

    // Projection scale keeps layer outputs O(1) per dim before the
    // per-layer renormalization in TargetModel.
    const float ps = 1.0f / std::sqrt(static_cast<float>(h));
    layers_.reserve(static_cast<size_t>(cfg.n_layers));
    for (int l = 0; l < cfg.n_layers; ++l) {
        LayerWeights lw;
        lw.wq = WeightMat(randomMatrix(h, h, ps, rng), quantize);
        lw.wk = WeightMat(randomMatrix(h, h, ps, rng), quantize);
        lw.wv = WeightMat(randomMatrix(h, h, ps, rng), quantize);
        lw.wo = WeightMat(randomMatrix(h, h, ps, rng), quantize);
        lw.w_gate = WeightMat(randomMatrix(f, h, ps, rng), quantize);
        lw.w_up = WeightMat(randomMatrix(f, h, ps, rng), quantize);
        lw.w_down = WeightMat(
            randomMatrix(h, f, 1.0f / std::sqrt(static_cast<float>(f)),
                         rng),
            quantize);
        lw.rms_attn.assign(h, 1.0f);
        lw.rms_ffn.assign(h, 1.0f);
        layers_.push_back(std::move(lw));
    }
    rmsFinal_.assign(h, 1.0f);
}

} // namespace specee::model
