#include "model/ffn.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

Ffn::Ffn(const ModelConfig &cfg)
    : hidden_(cfg.sim.hidden),
      ffnDim_(cfg.sim.ffn),
      gate_(static_cast<size_t>(ffnDim_)),
      up_(static_cast<size_t>(ffnDim_)),
      act_(static_cast<size_t>(ffnDim_))
{
}

void
Ffn::forward(const LayerWeights &lw, tensor::CSpan x_normed,
             tensor::Span out)
{
    specee_assert(x_normed.size() == static_cast<size_t>(hidden_) &&
                  out.size() == static_cast<size_t>(hidden_),
                  "ffn io size");
    lw.w_gate.gemv(x_normed, gate_);
    lw.w_up.gemv(x_normed, up_);
    for (int i = 0; i < ffnDim_; ++i) {
        const float g = gate_[static_cast<size_t>(i)];
        act_[static_cast<size_t>(i)] =
            g * tensor::sigmoid(g) * up_[static_cast<size_t>(i)];
    }
    lw.w_down.gemv(act_, out);
    lastActive_ = ffnDim_;
}

void
Ffn::forwardSparse(const LayerWeights &lw, tensor::CSpan x_normed,
                   float active_frac, tensor::Span out)
{
    specee_assert(active_frac > 0.0f && active_frac <= 1.0f,
                  "bad active fraction %f", active_frac);
    specee_assert(x_normed.size() == static_cast<size_t>(hidden_) &&
                  out.size() == static_cast<size_t>(hidden_),
                  "ffn io size");

    // Gate scores select the active neuron set (PowerInfer predicts
    // this set; we compute it exactly — same selected set, same cost
    // charged by the cost model).
    lw.w_gate.gemv(x_normed, gate_);
    for (int i = 0; i < ffnDim_; ++i) {
        const float g = gate_[static_cast<size_t>(i)];
        act_[static_cast<size_t>(i)] = g * tensor::sigmoid(g);
    }
    tensor::Vec mags(static_cast<size_t>(ffnDim_));
    for (int i = 0; i < ffnDim_; ++i)
        mags[static_cast<size_t>(i)] =
            std::fabs(act_[static_cast<size_t>(i)]);
    const int keep = std::max(
        1, static_cast<int>(std::ceil(active_frac * ffnDim_)));
    auto top = tensor::topk(mags, static_cast<size_t>(keep));

    std::fill(out.begin(), out.end(), 0.0f);
    for (const auto &[idx, mag] : top) {
        (void)mag;
        const size_t i = static_cast<size_t>(idx);
        const float u = lw.w_up.rowDot(i, x_normed);
        const float a = act_[i] * u;
        lw.w_down.addScaledColumn(i, a, out);
    }
    lastActive_ = keep;
}

} // namespace specee::model
