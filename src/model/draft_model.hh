/**
 * @file
 * DraftModel — the speculative draft language model (DLM).
 *
 * Stands in for the EAGLE draft head: per decode step it proposes
 * the top-k speculative tokens that reduce the predictor search
 * space from the full vocabulary to k (~4) tokens (Fig. 2(b)).
 *
 * Substitution note (DESIGN.md §1): the only DLM properties SpecEE
 * depends on are (a) how often the true next token is inside the
 * proposed set (the hit rate, calibrated per dataset to EAGLE-level
 * acceptance) and (b) its cost, roughly one decoder layer (§5.1),
 * which hw::CostModel charges. Proposals are therefore drawn from
 * the corpus' continuation distribution with a calibrated chance of
 * containing the scripted target, instead of from trained weights.
 */

#ifndef SPECEE_MODEL_DRAFT_MODEL_HH
#define SPECEE_MODEL_DRAFT_MODEL_HH

#include <vector>

#include "model/config.hh"
#include "oracle/corpus.hh"
#include "util/rng.hh"

namespace specee::model {

/** Speculative draft model proposing top-k next tokens. */
class DraftModel
{
  public:
    /**
     * @param cfg       model configuration (for vocab bounds)
     * @param corpus    language model the distractors are drawn from
     * @param hit_rate  probability the true token is in the top-k set
     */
    DraftModel(const ModelConfig &cfg, const oracle::SyntheticCorpus &corpus,
               double hit_rate);

    double hitRate() const { return hitRate_; }

    /**
     * Cost of one draft forward in target-decoder-layer equivalents
     * (§5.1: one decoder layer, plus ~20% for reusing the resident
     * embedding/LM head). The DLM is deployed in the same weight
     * backend as the target model, so hw pricing and the memory
     * tracker scale these bytes by the backend's compression.
     */
    static double layerEquivalents() { return 1.2; }

    /**
     * Propose k speculative tokens for the position following
     * `prev_token`, whose scripted true next token is `true_target`.
     * Tokens are distinct; the target, when present, lands mostly in
     * the first slot (top-1) as a strong draft model would place it.
     */
    std::vector<int> speculate(int prev_token, int true_target, int k,
                               Rng &rng) const;

  private:
    const oracle::SyntheticCorpus &corpus_;
    double hitRate_;
    int vocab_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_DRAFT_MODEL_HH
