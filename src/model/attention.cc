#include "model/attention.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

Attention::Attention(const ModelConfig &cfg)
    : hidden_(cfg.sim.hidden),
      heads_(cfg.sim.heads),
      headDim_(cfg.sim.headDim()),
      q_(static_cast<size_t>(hidden_)),
      k_(static_cast<size_t>(hidden_)),
      v_(static_cast<size_t>(hidden_)),
      ctx_(static_cast<size_t>(hidden_)),
      scores_(static_cast<size_t>(cfg.context_len))
{
    specee_assert(hidden_ % heads_ == 0, "hidden %% heads != 0");
}

void
Attention::forward(const LayerWeights &lw, int layer, tensor::CSpan x_normed,
                   int pos, KvStore &kv, tensor::Span out)
{
    specee_assert(x_normed.size() == static_cast<size_t>(hidden_) &&
                  out.size() == static_cast<size_t>(hidden_),
                  "attention io size");

    lw.wq.gemv(x_normed, q_);
    lw.wk.gemv(x_normed, k_);
    lw.wv.gemv(x_normed, v_);
    tensor::rope(q_, static_cast<size_t>(heads_),
                 static_cast<size_t>(headDim_), static_cast<size_t>(pos));
    tensor::rope(k_, static_cast<size_t>(heads_),
                 static_cast<size_t>(headDim_), static_cast<size_t>(pos));
    kv.append(layer, k_, v_);

    const int n_pos = kv.length(layer);
    specee_assert(n_pos <= static_cast<int>(scores_.size()),
                  "context overflow: %d", n_pos);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(headDim_));

    std::fill(ctx_.begin(), ctx_.end(), 0.0f);
    for (int h = 0; h < heads_; ++h) {
        const size_t off = static_cast<size_t>(h) *
                           static_cast<size_t>(headDim_);
        tensor::CSpan qh(q_.data() + off, static_cast<size_t>(headDim_));
        for (int p = 0; p < n_pos; ++p) {
            tensor::CSpan kh = kv.key(layer, p).subspan(
                off, static_cast<size_t>(headDim_));
            scores_[static_cast<size_t>(p)] =
                tensor::dot(qh, kh) * inv_sqrt_d;
        }
        tensor::softmax(scores_, static_cast<size_t>(n_pos));
        tensor::Span ch(ctx_.data() + off, static_cast<size_t>(headDim_));
        for (int p = 0; p < n_pos; ++p) {
            tensor::CSpan vh = kv.value(layer, p).subspan(
                off, static_cast<size_t>(headDim_));
            const float w = scores_[static_cast<size_t>(p)];
            for (int d = 0; d < headDim_; ++d)
                ch[static_cast<size_t>(d)] += w * vh[static_cast<size_t>(d)];
        }
    }
    lw.wo.gemv(ctx_, out);
}

} // namespace specee::model
