#include "model/target_model.hh"

#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

namespace {

/** Normalize v to unit L2 norm (no-op on zero vectors). */
void
unitize(tensor::Span v)
{
    const float n = tensor::norm2(v);
    if (n > 0.0f)
        tensor::scaleInplace(v, 1.0f / n);
}

/** Projection backend: legacy AWQ flag maps to Q4-projections-only. */
tensor::WeightBackend
projBackendFor(const TargetModelOptions &opts)
{
    if (opts.quantized) {
        specee_assert(opts.weight_backend == tensor::WeightBackend::Fp32,
                      "legacy `quantized` and `weight_backend` are "
                      "mutually exclusive");
        return tensor::WeightBackend::Q4;
    }
    return opts.weight_backend;
}

/** Head backend: the legacy AWQ mode keeps the tied head dense. */
tensor::WeightBackend
headBackendFor(const TargetModelOptions &opts)
{
    return opts.quantized ? tensor::WeightBackend::Fp32
                          : opts.weight_backend;
}

} // namespace

TargetModel::TargetModel(const ModelConfig &cfg,
                         const TargetModelOptions &opts)
    : cfg_(cfg),
      opts_(opts),
      weights_(cfg, projBackendFor(opts), headBackendFor(opts)),
      lmHead_(weights_.embedding(), weights_.rmsFinal()),
      layerBlock_(cfg),
      erow_(static_cast<size_t>(cfg.sim.hidden))
{
    own_ = makeSequence();
    seq_ = &own_;
}

std::unique_ptr<KvStore>
TargetModel::makeDefaultKv() const
{
    if (opts_.paged_kv) {
        const int blocks =
            cfg_.n_layers * (cfg_.context_len / kKvBlockSize + 2);
        return std::make_unique<SequenceKv>(std::make_shared<PagedKvCache>(
            cfg_.n_layers, blocks, cfg_.sim.hidden));
    }
    return std::make_unique<KvCache>(cfg_.n_layers, cfg_.context_len,
                                     cfg_.sim.hidden);
}

SequenceState
TargetModel::makeSequence(std::unique_ptr<KvStore> kv) const
{
    SequenceState s;
    s.kv = kv ? std::move(kv) : makeDefaultKv();
    s.noiseRng = Rng(opts_.noise_seed);
    s.hidden.resize(static_cast<size_t>(cfg_.sim.hidden));
    s.dirTarget.resize(static_cast<size_t>(cfg_.sim.hidden));
    s.dirDistractor.resize(static_cast<size_t>(cfg_.sim.hidden));
    return s;
}

void
TargetModel::bindSequence(SequenceState *seq)
{
    seq_ = seq != nullptr ? seq : &own_;
    specee_assert(seq_->kv != nullptr &&
                      seq_->hidden.size() ==
                          static_cast<size_t>(cfg_.sim.hidden),
                  "bound sequence state does not match the model");
}

void
TargetModel::reset(uint64_t noise_stream)
{
    SequenceState &s = *seq_;
    s.kv->clear();
    s.pos = 0;
    s.layer = 0;
    s.inToken = false;
    // Reseed the steering-noise stream so a sequence's decode depends
    // only on (noise_seed, noise_stream), never on what the model ran
    // before — per-request execution must be re-entrant for serving.
    s.noiseRng = Rng(opts_.noise_seed ^ noise_stream);
}

void
TargetModel::prefill(const std::vector<int> &tokens)
{
    SequenceState &s = *seq_;
    specee_assert(!s.inToken, "prefill during a decode step");
    for (int tok : tokens) {
        specee_assert(tok >= 0 && tok < cfg_.sim.vocab,
                      "prompt token %d out of range", tok);
        weights_.embedding().copyRow(static_cast<size_t>(tok), s.hidden);
        for (int l = 0; l < cfg_.n_layers; ++l)
            layerBlock_.fillKv(weights_.layer(l), l, s.hidden, s.pos,
                               *s.kv);
        ++s.pos;
    }
}

void
TargetModel::beginToken(int input_token, const TokenScript &script)
{
    SequenceState &s = *seq_;
    specee_assert(!s.inToken, "beginToken during a decode step");
    specee_assert(input_token >= 0 && input_token < cfg_.sim.vocab,
                  "input token out of range");
    specee_assert(script.target >= 0 && script.target < cfg_.sim.vocab &&
                  script.distractor >= 0 &&
                  script.distractor < cfg_.sim.vocab,
                  "script token out of range");
    s.script = script;
    s.layer = 0;
    s.inToken = true;

    // Residual stream starts at the input embedding.
    weights_.embedding().copyRow(static_cast<size_t>(input_token),
                                 s.hidden);

    // Per-token noisy target direction: dir = unit(E[target] + nu*z).
    weights_.embedding().copyRow(static_cast<size_t>(script.target),
                                 erow_);
    const float nu = opts_.steer.target_noise;
    const float per_dim =
        nu / std::sqrt(static_cast<float>(cfg_.sim.hidden));
    for (size_t i = 0; i < s.dirTarget.size(); ++i) {
        s.dirTarget[i] =
            erow_[i] +
            static_cast<float>(s.noiseRng.normal(0.0, per_dim));
    }
    unitize(s.dirTarget);

    weights_.embedding().copyRow(static_cast<size_t>(script.distractor),
                                 s.dirDistractor);

    const float j = opts_.steer.distractor_jitter;
    s.distractorScale =
        static_cast<float>(s.noiseRng.uniform(1.0 - j, 1.0 + j));
}

void
TargetModel::steer(int layer_just_run)
{
    SequenceState &s = *seq_;
    const SteerParams &sp = opts_.steer;
    const int l = layer_just_run;

    float alpha = tensor::sigmoid(
        (static_cast<float>(l - s.script.conv_layer) + 0.5f) / sp.tau);
    if (l == cfg_.n_layers - 1)
        alpha = std::max(alpha, sp.final_alpha);

    // The distractor fades in over the first few layers and out as
    // the target takes over.
    const float ramp =
        std::min(1.0f, static_cast<float>(l + 1) / 4.0f);
    const float beta = sp.distractor_strength * s.distractorScale *
                       (1.0f - alpha) * ramp;

    unitize(s.hidden); // texture component on the unit sphere
    const float tex = std::max(0.0f, 1.0f - alpha - beta);
    for (size_t i = 0; i < s.hidden.size(); ++i) {
        s.hidden[i] = tex * s.hidden[i] + alpha * s.dirTarget[i] +
                      beta * s.dirDistractor[i];
    }
    unitize(s.hidden);
}

tensor::CSpan
TargetModel::runLayer()
{
    SequenceState &s = *seq_;
    specee_assert(s.inToken, "runLayer outside a decode step");
    specee_assert(s.layer < cfg_.n_layers, "runLayer past last layer");
    layerBlock_.forward(weights_.layer(s.layer), s.layer, s.hidden,
                        s.pos, *s.kv, opts_.sparse_ffn,
                        opts_.ffn_active_frac);
    steer(s.layer);
    ++s.layer;
    return s.hidden;
}

int
TargetModel::runRemainingLayers()
{
    SequenceState &s = *seq_;
    specee_assert(s.inToken, "runRemainingLayers outside a decode step");
    while (s.layer < cfg_.n_layers)
        runLayer();
    s.inToken = false;
    ++s.pos;
    return lmHead_.argmaxToken(s.hidden);
}

int
TargetModel::finishEarly()
{
    SequenceState &s = *seq_;
    specee_assert(s.inToken, "finishEarly outside a decode step");
    const int filled = cfg_.n_layers - s.layer;
    for (int l = s.layer; l < cfg_.n_layers; ++l)
        layerBlock_.fillKv(weights_.layer(l), l, s.hidden, s.pos, *s.kv);
    s.layer = cfg_.n_layers;
    s.inToken = false;
    ++s.pos;
    return filled;
}

int
TargetModel::globalArgmax() const
{
    return lmHead_.argmaxToken(seq_->hidden);
}

void
TargetModel::logitsSliced(const std::vector<int> &tokens,
                          tensor::Span out) const
{
    lmHead_.sliced(seq_->hidden, tokens, out);
}

tensor::Vec
TargetModel::fullLogits() const
{
    tensor::Vec logits(static_cast<size_t>(cfg_.sim.vocab));
    lmHead_.full(seq_->hidden, logits);
    return logits;
}

} // namespace specee::model
