#include "model/target_model.hh"

#include <cmath>

#include "model/paged_kv.hh"
#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

namespace {

/** Normalize v to unit L2 norm (no-op on zero vectors). */
void
unitize(tensor::Span v)
{
    const float n = tensor::norm2(v);
    if (n > 0.0f)
        tensor::scaleInplace(v, 1.0f / n);
}

/** Projection backend: legacy AWQ flag maps to Q4-projections-only. */
tensor::WeightBackend
projBackendFor(const TargetModelOptions &opts)
{
    if (opts.quantized) {
        specee_assert(opts.weight_backend == tensor::WeightBackend::Fp32,
                      "legacy `quantized` and `weight_backend` are "
                      "mutually exclusive");
        return tensor::WeightBackend::Q4;
    }
    return opts.weight_backend;
}

/** Head backend: the legacy AWQ mode keeps the tied head dense. */
tensor::WeightBackend
headBackendFor(const TargetModelOptions &opts)
{
    return opts.quantized ? tensor::WeightBackend::Fp32
                          : opts.weight_backend;
}

} // namespace

TargetModel::TargetModel(const ModelConfig &cfg,
                         const TargetModelOptions &opts)
    : cfg_(cfg),
      opts_(opts),
      weights_(cfg, projBackendFor(opts), headBackendFor(opts)),
      lmHead_(weights_.embedding(), weights_.rmsFinal()),
      layerBlock_(cfg),
      noiseRng_(opts.noise_seed),
      hidden_(static_cast<size_t>(cfg.sim.hidden)),
      dirTarget_(static_cast<size_t>(cfg.sim.hidden)),
      dirDistractor_(static_cast<size_t>(cfg.sim.hidden)),
      erow_(static_cast<size_t>(cfg.sim.hidden))
{
    if (opts.paged_kv) {
        const int blocks =
            cfg.n_layers * (cfg.context_len / kKvBlockSize + 2);
        kv_ = std::make_unique<PagedKvCache>(cfg.n_layers, blocks,
                                             cfg.sim.hidden);
    } else {
        kv_ = std::make_unique<KvCache>(cfg.n_layers, cfg.context_len,
                                        cfg.sim.hidden);
    }
}

void
TargetModel::reset(uint64_t noise_stream)
{
    kv_->clear();
    pos_ = 0;
    layer_ = 0;
    inToken_ = false;
    // Reseed the steering-noise stream so a sequence's decode depends
    // only on (noise_seed, noise_stream), never on what the model ran
    // before — per-request execution must be re-entrant for serving.
    noiseRng_ = Rng(opts_.noise_seed ^ noise_stream);
}

void
TargetModel::prefill(const std::vector<int> &tokens)
{
    specee_assert(!inToken_, "prefill during a decode step");
    for (int tok : tokens) {
        specee_assert(tok >= 0 && tok < cfg_.sim.vocab,
                      "prompt token %d out of range", tok);
        weights_.embedding().copyRow(static_cast<size_t>(tok), hidden_);
        for (int l = 0; l < cfg_.n_layers; ++l)
            layerBlock_.fillKv(weights_.layer(l), l, hidden_, pos_, *kv_);
        ++pos_;
    }
}

void
TargetModel::beginToken(int input_token, const TokenScript &script)
{
    specee_assert(!inToken_, "beginToken during a decode step");
    specee_assert(input_token >= 0 && input_token < cfg_.sim.vocab,
                  "input token out of range");
    specee_assert(script.target >= 0 && script.target < cfg_.sim.vocab &&
                  script.distractor >= 0 &&
                  script.distractor < cfg_.sim.vocab,
                  "script token out of range");
    script_ = script;
    layer_ = 0;
    inToken_ = true;

    // Residual stream starts at the input embedding.
    weights_.embedding().copyRow(static_cast<size_t>(input_token),
                                 hidden_);

    // Per-token noisy target direction: dir = unit(E[target] + nu*z).
    weights_.embedding().copyRow(static_cast<size_t>(script.target),
                                 erow_);
    const float nu = opts_.steer.target_noise;
    const float per_dim =
        nu / std::sqrt(static_cast<float>(cfg_.sim.hidden));
    for (size_t i = 0; i < dirTarget_.size(); ++i) {
        dirTarget_[i] = erow_[i] +
                        static_cast<float>(noiseRng_.normal(0.0, per_dim));
    }
    unitize(dirTarget_);

    weights_.embedding().copyRow(static_cast<size_t>(script.distractor),
                                 dirDistractor_);

    const float j = opts_.steer.distractor_jitter;
    distractorScale_ =
        static_cast<float>(noiseRng_.uniform(1.0 - j, 1.0 + j));
}

void
TargetModel::steer(int layer_just_run)
{
    const SteerParams &sp = opts_.steer;
    const int l = layer_just_run;

    float alpha = tensor::sigmoid(
        (static_cast<float>(l - script_.conv_layer) + 0.5f) / sp.tau);
    if (l == cfg_.n_layers - 1)
        alpha = std::max(alpha, sp.final_alpha);

    // The distractor fades in over the first few layers and out as
    // the target takes over.
    const float ramp =
        std::min(1.0f, static_cast<float>(l + 1) / 4.0f);
    const float beta = sp.distractor_strength * distractorScale_ *
                       (1.0f - alpha) * ramp;

    unitize(hidden_); // texture component on the unit sphere
    const float tex = std::max(0.0f, 1.0f - alpha - beta);
    for (size_t i = 0; i < hidden_.size(); ++i) {
        hidden_[i] = tex * hidden_[i] + alpha * dirTarget_[i] +
                     beta * dirDistractor_[i];
    }
    unitize(hidden_);
}

tensor::CSpan
TargetModel::runLayer()
{
    specee_assert(inToken_, "runLayer outside a decode step");
    specee_assert(layer_ < cfg_.n_layers, "runLayer past last layer");
    layerBlock_.forward(weights_.layer(layer_), layer_, hidden_, pos_,
                        *kv_, opts_.sparse_ffn, opts_.ffn_active_frac);
    steer(layer_);
    ++layer_;
    return hidden_;
}

int
TargetModel::runRemainingLayers()
{
    specee_assert(inToken_, "runRemainingLayers outside a decode step");
    while (layer_ < cfg_.n_layers)
        runLayer();
    inToken_ = false;
    ++pos_;
    return lmHead_.argmaxToken(hidden_);
}

int
TargetModel::finishEarly()
{
    specee_assert(inToken_, "finishEarly outside a decode step");
    const int filled = cfg_.n_layers - layer_;
    for (int l = layer_; l < cfg_.n_layers; ++l)
        layerBlock_.fillKv(weights_.layer(l), l, hidden_, pos_, *kv_);
    layer_ = cfg_.n_layers;
    inToken_ = false;
    ++pos_;
    return filled;
}

int
TargetModel::globalArgmax() const
{
    return lmHead_.argmaxToken(hidden_);
}

void
TargetModel::logitsSliced(const std::vector<int> &tokens,
                          tensor::Span out) const
{
    lmHead_.sliced(hidden_, tokens, out);
}

tensor::Vec
TargetModel::fullLogits() const
{
    tensor::Vec logits(static_cast<size_t>(cfg_.sim.vocab));
    lmHead_.full(hidden_, logits);
    return logits;
}

} // namespace specee::model
