#include "model/lm_head.hh"

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

LmHead::LmHead(const WeightMat &embedding, const tensor::Vec &rms_final)
    : embedding_(embedding),
      rmsFinal_(rms_final),
      scratch_(embedding.cols())
{
    specee_assert(embedding.cols() == rms_final.size(),
                  "lm head dims mismatch");
}

void
LmHead::normalize(tensor::CSpan hidden_state) const
{
    tensor::rmsnorm(hidden_state, rmsFinal_, scratch_);
}

void
LmHead::full(tensor::CSpan hidden_state, tensor::Span logits) const
{
    specee_assert(logits.size() == embedding_.rows(), "full logits size");
    normalize(hidden_state);
    embedding_.gemv(scratch_, logits);
}

void
LmHead::sliced(tensor::CSpan hidden_state, const std::vector<int> &tokens,
               tensor::Span out) const
{
    specee_assert(out.size() == tokens.size(), "sliced logits size");
    normalize(hidden_state);
    embedding_.gemvRows(tokens, scratch_, out);
}

void
LmHead::grouped(const std::vector<tensor::CSpan> &hiddens,
                const std::vector<std::vector<int>> &groups,
                std::vector<tensor::Vec> &out) const
{
    specee_assert(hiddens.size() == groups.size(), "grouped sizes");
    out.resize(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
        out[g].assign(groups[g].size(), 0.0f);
        normalize(hiddens[g]);
        embedding_.gemvRows(groups[g], scratch_, out[g]);
    }
}

int
LmHead::argmaxToken(tensor::CSpan hidden_state) const
{
    tensor::Vec logits(embedding_.rows());
    full(hidden_state, logits);
    return static_cast<int>(tensor::argmax(logits));
}

} // namespace specee::model
