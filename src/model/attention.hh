/**
 * @file
 * Multi-head causal self-attention with RoPE over a KvStore.
 *
 * The q/k/v/o projections run on whatever tensor::WeightStore backend
 * the LayerWeights were built with (fp32, q8 or q4) — this block is
 * backend-agnostic by construction.
 */

#ifndef SPECEE_MODEL_ATTENTION_HH
#define SPECEE_MODEL_ATTENTION_HH

#include "model/config.hh"
#include "model/kv_store.hh"
#include "model/weights.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/**
 * Single-token decode attention. Projects q/k/v from the normalized
 * input, applies rotary embeddings, appends k/v to the cache, and
 * attends over all cached positions (causal by construction).
 */
class Attention
{
  public:
    explicit Attention(const ModelConfig &cfg);

    /**
     * Attention for one token.
     *
     * @param lw       layer weights
     * @param layer    layer index (selects the KV lane)
     * @param x_normed pre-normalized input hidden state
     * @param pos      absolute position of this token
     * @param kv       KV storage; receives this token's k/v
     * @param out      attention output (wo applied), length hidden
     */
    void forward(const LayerWeights &lw, int layer, tensor::CSpan x_normed,
                 int pos, KvStore &kv, tensor::Span out);

  private:
    int hidden_;
    int heads_;
    int headDim_;
    tensor::Vec q_, k_, v_, ctx_;
    tensor::Vec scores_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_ATTENTION_HH
