/**
 * @file
 * Abstract KV storage interface.
 *
 * Attention is written against this interface so the engine can swap
 * the contiguous (HuggingFace-style) cache for the paged (vllm-style)
 * cache without touching the math.
 */

#ifndef SPECEE_MODEL_KV_STORE_HH
#define SPECEE_MODEL_KV_STORE_HH

#include "tensor/matrix.hh"

namespace specee::model {

/** Interface over per-layer KV storage. */
class KvStore
{
  public:
    virtual ~KvStore() = default;

    /** Append k/v for the next position of `layer`. @return position */
    virtual int append(int layer, tensor::CSpan k, tensor::CSpan v) = 0;

    virtual tensor::CSpan key(int layer, int pos) const = 0;
    virtual tensor::CSpan value(int layer, int pos) const = 0;

    /** Positions cached for `layer`. */
    virtual int length(int layer) const = 0;

    /** Drop all positions >= new_len (speculative rollback). */
    virtual void truncate(int new_len) = 0;

    /** Drop everything. */
    virtual void clear() = 0;
};

} // namespace specee::model

#endif // SPECEE_MODEL_KV_STORE_HH
