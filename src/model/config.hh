/**
 * @file
 * Model configuration: true Llama-2 dimensions plus reduced
 * simulation dimensions.
 *
 * The functional simulator computes with `sim` dimensions so the
 * whole suite runs on CPU in seconds, while hw::CostModel prices
 * every logical operator with `truth` dimensions so modeled latency,
 * memory and energy match the real models. Quantities that SpecEE's
 * logic manipulates directly — layer count, speculative width, tree
 * shape — are identical in both.
 */

#ifndef SPECEE_MODEL_CONFIG_HH
#define SPECEE_MODEL_CONFIG_HH

#include <cstdint>
#include <string>

namespace specee::model {

/** One set of transformer dimensions. */
struct Dims
{
    int hidden = 0;   ///< model (embedding) dimension
    int ffn = 0;      ///< feed-forward inner dimension
    int heads = 0;    ///< attention heads
    int vocab = 0;    ///< vocabulary size

    int headDim() const { return hidden / heads; }
};

/** Full model configuration. */
struct ModelConfig
{
    std::string name;     ///< model key, e.g. "llama2-7b"
    int n_layers = 0;     ///< decoder layers (same in truth and sim)
    Dims truth;           ///< real Llama-2 dimensions (cost model)
    Dims sim;             ///< reduced dimensions (functional math)
    int context_len = 512;    ///< simulated context window
    int num_spec_tokens = 4;  ///< speculative tokens per step (§4.3.2)
    uint64_t weight_seed = 0x11a;

    /** Llama-2-7B: 32 layers, hidden 4096, ffn 11008, vocab 32000. */
    static ModelConfig llama2_7b();
    /** Llama-2-13B: 40 layers, hidden 5120, ffn 13824. */
    static ModelConfig llama2_13b();
    /** Llama-2-70B: 80 layers, hidden 8192, ffn 28672. */
    static ModelConfig llama2_70b();
    /** Vicuna-7B: Llama-2-7B architecture, different exit statistics. */
    static ModelConfig vicuna_7b();
    /** Tiny config for unit tests (8 layers, vocab 512). */
    static ModelConfig tiny();

    /** Lookup by model key; fatal on unknown name. */
    static ModelConfig byName(const std::string &name);

    /** fp16 parameter bytes of the true model (weights only). */
    double truthWeightBytes() const;

    /** fp16 bytes of one true decoder layer's weights. */
    double truthLayerBytes() const;

    /** fp16 bytes of the true LM head (hidden x vocab). */
    double truthLmHeadBytes() const;

    /** fp16 KV-cache bytes per token across all layers. */
    double truthKvBytesPerToken() const;
};

} // namespace specee::model

#endif // SPECEE_MODEL_CONFIG_HH
