/**
 * @file
 * Deterministic seeded transformer weights, fp32 or group-quantized.
 *
 * Weight matrices are generated from the model seed so every run is
 * reproducible without checkpoints on disk. When `quantized` is set
 * (the AWQ / llama.cpp engines) each projection is stored as a
 * Q4Matrix and GEMVs run through the dequantize-on-the-fly kernel.
 */

#ifndef SPECEE_MODEL_WEIGHTS_HH
#define SPECEE_MODEL_WEIGHTS_HH

#include <vector>

#include "model/config.hh"
#include "tensor/matrix.hh"
#include "tensor/quant.hh"

namespace specee::model {

/**
 * One weight matrix that can be held dense (fp32) or quantized (Q4),
 * with a uniform gemv interface.
 */
class WeightMat
{
  public:
    WeightMat() = default;

    /** Build dense; optionally quantize (drops the dense copy). */
    WeightMat(tensor::Matrix dense, bool quantize);

    void gemv(tensor::CSpan x, tensor::Span y) const;
    void gemvRows(const std::vector<int> &rows, tensor::CSpan x,
                  tensor::Span y) const;

    /** Single row as a dense vector (dequantized if needed). */
    tensor::Vec denseRow(size_t r) const;

    /** Dot of row r with x (sparse row access, e.g. PowerInfer up-proj). */
    float rowDot(size_t r, tensor::CSpan x) const;

    /** out += scale * column c (sparse down-projection accumulate). */
    void addScaledColumn(size_t c, float scale, tensor::Span out) const;

    size_t rows() const;
    size_t cols() const;
    bool quantized() const { return isQuant_; }

  private:
    bool isQuant_ = false;
    tensor::Matrix dense_;
    tensor::Q4Matrix q4_;
};

/** Per-layer weights of the simulated transformer. */
struct LayerWeights
{
    WeightMat wq, wk, wv, wo;       ///< attention projections
    WeightMat w_gate, w_up, w_down; ///< SwiGLU FFN
    tensor::Vec rms_attn;           ///< pre-attention RMSNorm weight
    tensor::Vec rms_ffn;            ///< pre-FFN RMSNorm weight
};

/**
 * Full weight set: embedding (rows unit-normalized so logits live on
 * a stable scale), per-layer projections, final norm. The LM head is
 * tied to the embedding.
 */
class Weights
{
  public:
    /**
     * @param cfg        model configuration (sim dims are used)
     * @param quantize   store projections as Q4 (AWQ / llama.cpp mode)
     */
    Weights(const ModelConfig &cfg, bool quantize);

    const tensor::Matrix &embedding() const { return embedding_; }
    const LayerWeights &layer(int l) const { return layers_[static_cast<size_t>(l)]; }
    const tensor::Vec &rmsFinal() const { return rmsFinal_; }
    int nLayers() const { return static_cast<int>(layers_.size()); }
    bool quantized() const { return quantized_; }

  private:
    bool quantized_;
    tensor::Matrix embedding_; // vocab x hidden, unit-norm rows
    std::vector<LayerWeights> layers_;
    tensor::Vec rmsFinal_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_WEIGHTS_HH
