/**
 * @file
 * Deterministic seeded transformer weights over pluggable backends.
 *
 * Weight matrices are generated from the model seed so every run is
 * reproducible without checkpoints on disk, then handed to a
 * tensor::WeightStore of the configured backend: dense fp32, Q8
 * (row-quantized int8) or Q4 (AWQ-style group quantization). The
 * projection backend and the embedding/LM-head backend are chosen
 * independently — the legacy AWQ / llama.cpp engines quantize only
 * the projections and keep the tied head dense, while the
 * whole-model `EngineConfig::weight_backend` knob compresses both.
 */

#ifndef SPECEE_MODEL_WEIGHTS_HH
#define SPECEE_MODEL_WEIGHTS_HH

#include <memory>
#include <vector>

#include "model/config.hh"
#include "tensor/matrix.hh"
#include "tensor/weight_store.hh"

namespace specee::model {

/**
 * One weight matrix behind a tensor::WeightStore, with a uniform
 * gemv / sparse-access interface regardless of backend.
 */
class WeightMat
{
  public:
    WeightMat() = default;

    /** Build from a dense matrix under `backend` (the dense copy is
     *  dropped for compressed backends). */
    WeightMat(tensor::Matrix dense, tensor::WeightBackend backend);

    void gemv(tensor::CSpan x, tensor::Span y) const;
    void gemvRows(const std::vector<int> &rows, tensor::CSpan x,
                  tensor::Span y) const;

    /** Dequantize row r into out (out.size() == cols()). */
    void copyRow(size_t r, tensor::Span out) const;

    /** Single row as a dense vector (dequantized if needed). */
    tensor::Vec denseRow(size_t r) const;

    /** Dot of row r with x (sparse row access, e.g. PowerInfer up-proj). */
    float rowDot(size_t r, tensor::CSpan x) const;

    /** out += scale * column c (sparse down-projection accumulate). */
    void addScaledColumn(size_t c, float scale, tensor::Span out) const;

    size_t rows() const;
    size_t cols() const;

    /** Packed storage footprint in bytes (functional, sim dims). */
    size_t byteSize() const;

    tensor::WeightBackend backend() const;
    bool quantized() const
    {
        return backend() != tensor::WeightBackend::Fp32;
    }

  private:
    /** Backing store; asserts on access to a default-constructed mat. */
    const tensor::WeightStore &store() const;

    std::unique_ptr<const tensor::WeightStore> store_;
};

/** Per-layer weights of the simulated transformer. */
struct LayerWeights
{
    WeightMat wq, wk, wv, wo;       ///< attention projections
    WeightMat w_gate, w_up, w_down; ///< SwiGLU FFN
    tensor::Vec rms_attn;           ///< pre-attention RMSNorm weight
    tensor::Vec rms_ffn;            ///< pre-FFN RMSNorm weight
};

/**
 * Full weight set: embedding (rows unit-normalized so logits live on
 * a stable scale), per-layer projections, final norm. The LM head is
 * tied to the embedding.
 */
class Weights
{
  public:
    /**
     * @param cfg           model configuration (sim dims are used)
     * @param proj_backend  backend for the per-layer projections
     * @param head_backend  backend for the tied embedding / LM head
     */
    Weights(const ModelConfig &cfg, tensor::WeightBackend proj_backend,
            tensor::WeightBackend head_backend);

    /** Legacy AWQ mode: Q4 projections, dense head. */
    Weights(const ModelConfig &cfg, bool quantize)
        : Weights(cfg,
                  quantize ? tensor::WeightBackend::Q4
                           : tensor::WeightBackend::Fp32,
                  tensor::WeightBackend::Fp32)
    {
    }

    /** Tied embedding / LM head store (vocab x hidden). */
    const WeightMat &embedding() const { return embedding_; }
    const LayerWeights &layer(int l) const { return layers_[static_cast<size_t>(l)]; }
    const tensor::Vec &rmsFinal() const { return rmsFinal_; }
    int nLayers() const { return static_cast<int>(layers_.size()); }

    tensor::WeightBackend projBackend() const { return projBackend_; }
    tensor::WeightBackend headBackend() const { return headBackend_; }
    /** True when the projections are stored compressed. */
    bool quantized() const
    {
        return projBackend_ != tensor::WeightBackend::Fp32;
    }

  private:
    tensor::WeightBackend projBackend_;
    tensor::WeightBackend headBackend_;
    WeightMat embedding_; // vocab x hidden, unit-norm rows
    std::vector<LayerWeights> layers_;
    tensor::Vec rmsFinal_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_WEIGHTS_HH
