/**
 * @file
 * SwiGLU feed-forward network, dense and sparse-activated.
 *
 * The sparse path implements the PowerInfer-style activation
 * sparsity baseline: only the top fraction of neurons by gate
 * magnitude contribute, and the hw::CostModel charges only the
 * touched rows. (Functionally we compute all gate scores to select
 * the top set; PowerInfer predicts them — the selected set is what
 * matters for the output and the cost.)
 *
 * Both paths are WeightStore-backend-agnostic: the dense GEMVs and
 * the sparse rowDot / addScaledColumn accesses dequantize on the fly
 * under q8/q4 weights.
 */

#ifndef SPECEE_MODEL_FFN_HH
#define SPECEE_MODEL_FFN_HH

#include "model/config.hh"
#include "model/weights.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/** Feed-forward block: down( silu(gate(x)) * up(x) ). */
class Ffn
{
  public:
    explicit Ffn(const ModelConfig &cfg);

    /** Dense forward. */
    void forward(const LayerWeights &lw, tensor::CSpan x_normed,
                 tensor::Span out);

    /**
     * Sparse forward keeping only ceil(active_frac * ffn) neurons
     * with the largest |silu(gate)| activations.
     */
    void forwardSparse(const LayerWeights &lw, tensor::CSpan x_normed,
                       float active_frac, tensor::Span out);

    /** Neurons used by the most recent sparse forward. */
    int lastActiveNeurons() const { return lastActive_; }

  private:
    int hidden_;
    int ffnDim_;
    int lastActive_ = 0;
    tensor::Vec gate_, up_, act_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_FFN_HH
