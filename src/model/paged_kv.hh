/**
 * @file
 * Paged KV cache — the PagedAttention (vllm) memory-manager substrate.
 *
 * Physical KV storage is divided into fixed-size blocks managed by a
 * free list; each (sequence, layer) maps logical positions to blocks
 * through a block table. This is the real data structure vllm uses to
 * eliminate KV fragmentation. The pool is multi-sequence: any number
 * of sequences share one physical pool, so fleet KV occupancy under
 * continuous batching is a real allocator quantity the serving layer
 * can budget and preempt against. SequenceKv is the single-sequence
 * KvStore view the attention math reads through.
 *
 * Blocks are refcounted so prefix caching can share one physical
 * block across sequences (SGLang-style): retainRows() hands an
 * external holder references on the blocks backing a row range,
 * adoptPrefix() maps an empty sequence layer onto an existing chain,
 * and append() forks a copy-on-write duplicate before writing into
 * any block another holder still references. A block returns to the
 * free list only when its last reference is released, so the
 * allocator can never hand out a block that is still referenced —
 * double-release and referenced-handout are fatal, not silent reuse.
 */

#ifndef SPECEE_MODEL_PAGED_KV_HH
#define SPECEE_MODEL_PAGED_KV_HH

#include <memory>
#include <utility>
#include <vector>

#include "model/kv_store.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/** Positions per physical KV block. */
constexpr int kKvBlockSize = 16;

/**
 * Multi-sequence block-based KV pool: per-(sequence, layer) block
 * tables over one shared physical pool with allocation, rollback and
 * whole-sequence eviction. Sequence ids are recycled LIFO so
 * allocation is deterministic for a deterministic caller.
 */
class PagedKvCache
{
  public:
    /**
     * @param n_layers  decoder layers
     * @param n_blocks  physical blocks in the shared pool
     * @param hidden    per-position K/V width
     */
    PagedKvCache(int n_layers, int n_blocks, int hidden);

    /** Register a new sequence (empty block tables). @return seq id */
    int createSequence();

    /** Release every block of `seq` and recycle its id. */
    void dropSequence(int seq);

    /**
     * Append k/v for the next position of (seq, layer). If the
     * destination block is shared (refcount > 1), it is forked
     * copy-on-write first: the rows below the write position are
     * copied into a fresh block, this sequence's reference moves to
     * the copy, and other holders keep the original untouched.
     * @return pos
     */
    int append(int seq, int layer, tensor::CSpan k, tensor::CSpan v);

    tensor::CSpan key(int seq, int layer, int pos) const;
    tensor::CSpan value(int seq, int layer, int pos) const;

    int length(int seq, int layer) const;

    /** Roll `seq` back to new_len positions, freeing empty blocks. */
    void truncate(int seq, int new_len);

    /** Free all blocks of `seq` (the sequence id stays valid). */
    void clearSeq(int seq);

    /**
     * Swap-to-host preemption: copy every cached position of `seq`
     * into the host pool and free its device blocks. Per-layer
     * lengths (the logical block tables) are preserved, so swapIn()
     * restores the sequence bit-identically; physical block ids are
     * re-allocated on the way back, exactly like vllm's swap path.
     * The sequence cannot be appended to or read while swapped.
     */
    void swapOut(int seq);

    /**
     * Restore a swapped sequence from the host pool into freshly
     * allocated device blocks (the caller checks blocksFree() >=
     * seqHostBlocks() first; allocation failure is fatal) and release
     * its host buffers.
     */
    void swapIn(int seq);

    /** True while `seq` lives in the host pool. */
    bool isSwapped(int seq) const;

    /** Host-pool blocks needed to restore `seq` (0 if not swapped). */
    int seqHostBlocks(int seq) const;

    /** Host-pool blocks held across all swapped sequences. */
    int hostBlocksInUse() const { return hostBlocks_; }

    /**
     * Mark every block of `seq` (device- or host-side) as riding an
     * in-flight DMA: swap traffic on the host link or a prefill->
     * decode handoff on the peer link. While marked, the sequence is
     * frozen block-granularly — append, truncate, clear, swap and
     * drop are fatal, so a scheduler bug that touches KV mid-transfer
     * dies loudly instead of racing the modeled copy engine. The
     * functional rows are already in place (the simulation moves data
     * eagerly; the transfer engine only prices when they arrive), so
     * reads stay legal for isolation checks.
     */
    void beginTransfer(int seq);

    /** Transfer landed (or was settled at drop): unfreeze `seq`. */
    void endTransfer(int seq);

    /** True while `seq`'s blocks are riding a DMA channel. */
    bool inTransfer(int seq) const;

    /** Blocks of `seq` pinned by its in-flight transfer (0 if none). */
    int seqTransferBlocks(int seq) const;

    /** Blocks pinned by in-flight transfers across all sequences. */
    long transferBlocksInFlight() const;

    /** True if appending one position to (seq, layer) would fail. */
    bool wouldOverflow(int seq, int layer) const;

    /**
     * Hand an external holder (the prefix cache) one reference on
     * each physical block backing rows [row_begin, row_end) of
     * (seq, layer). The blocks stay pinned — they cannot return to
     * the free list — until releaseBlocks() drops the references.
     * @return the retained block ids in table order
     */
    std::vector<int> retainRows(int seq, int layer, int row_begin,
                                int row_end);

    /** Add one reference to an already-referenced block. */
    void retainBlock(int b);

    /**
     * Drop one reference per listed block (a block listed twice
     * loses two). Releasing an unreferenced block is fatal (double
     * free). @return blocks whose last reference dropped (freed)
     */
    int releaseBlocks(const std::vector<int> &blocks);

    /**
     * Map the empty (seq, layer) onto an existing chain: the layer's
     * block table becomes `blocks` (one reference retained on each)
     * and its length `rows`. Reads below `rows` see the shared
     * content; the first append into a shared block forks it
     * copy-on-write, so the donor chain is never mutated.
     */
    void adoptPrefix(int seq, int layer, const std::vector<int> &blocks,
                     int rows);

    /** References currently held on block `b` (0 = free). */
    int blockRefs(int b) const;

    /** Physical blocks held by `seq` across all layers. */
    int seqBlocks(int seq) const;

    /** Physical blocks currently allocated across all sequences. */
    int blocksInUse() const;

    /** Physical blocks still free. */
    int blocksFree() const { return static_cast<int>(freeList_.size()); }

    /** Pool capacity in blocks. */
    int nBlocks() const { return nBlocks_; }

    int nLayers() const { return nLayers_; }
    int hidden() const { return hidden_; }

    /** Live (created, not dropped) sequences. */
    int nSequences() const;

  private:
    struct LayerState
    {
        std::vector<int> blockTable; ///< logical block -> physical block
        int len = 0;                 ///< cached positions
        // Host-pool copy while the sequence is swapped out (len rows
        // each); empty on device.
        tensor::Matrix hostK;
        tensor::Matrix hostV;
    };

    struct SeqState
    {
        std::vector<LayerState> layers;
        bool live = false;
        bool swapped = false;     ///< KV lives in the host pool
        bool in_transfer = false; ///< blocks pinned by in-flight DMA
    };

    const SeqState &seqState(int seq) const;
    SeqState &seqState(int seq);

    /** Physical location of (seq, layer, pos). */
    std::pair<int, int> locate(int seq, int layer, int pos) const;

    int allocBlock();
    void releaseBlock(int b);

    int nLayers_;
    int nBlocks_;
    int hidden_;
    // Physical pool: per block, kKvBlockSize rows for K and V.
    std::vector<tensor::Matrix> kPool_;
    std::vector<tensor::Matrix> vPool_;
    std::vector<int> freeList_;
    std::vector<int> refs_; ///< per-block reference counts
    std::vector<SeqState> seqs_;
    std::vector<int> freeSeqIds_; ///< recycled ids, LIFO
    int hostBlocks_ = 0; ///< block-equivalents in the host pool
};

/**
 * Single-sequence KvStore view onto a shared PagedKvCache pool.
 *
 * Owns its sequence: construction registers a fresh sequence in the
 * pool, destruction drops it (freeing all of its blocks). The pool is
 * held shared so a view may also be the pool's sole owner (the
 * single-sequence deployment the vllm engine preset uses).
 */
class SequenceKv : public KvStore
{
  public:
    explicit SequenceKv(std::shared_ptr<PagedKvCache> pool)
        : pool_(std::move(pool)), seq_(pool_->createSequence())
    {
    }

    ~SequenceKv() override { pool_->dropSequence(seq_); }

    SequenceKv(const SequenceKv &) = delete;
    SequenceKv &operator=(const SequenceKv &) = delete;

    int
    append(int layer, tensor::CSpan k, tensor::CSpan v) override
    {
        return pool_->append(seq_, layer, k, v);
    }

    tensor::CSpan
    key(int layer, int pos) const override
    {
        return pool_->key(seq_, layer, pos);
    }

    tensor::CSpan
    value(int layer, int pos) const override
    {
        return pool_->value(seq_, layer, pos);
    }

    int length(int layer) const override
    {
        return pool_->length(seq_, layer);
    }

    void truncate(int new_len) override { pool_->truncate(seq_, new_len); }

    void clear() override { pool_->clearSeq(seq_); }

    /** Physical blocks this sequence holds. */
    int blocks() const { return pool_->seqBlocks(seq_); }

    /** Move this sequence's KV to the host pool (device blocks free). */
    void swapOut() { pool_->swapOut(seq_); }

    /** Restore this sequence's KV from the host pool. */
    void swapIn() { pool_->swapIn(seq_); }

    /** True while the sequence lives in the host pool. */
    bool swapped() const { return pool_->isSwapped(seq_); }

    /** Device blocks a swapIn() must be able to allocate. */
    int hostBlocks() const { return pool_->seqHostBlocks(seq_); }

    /** Pin this sequence's blocks for an in-flight DMA. */
    void beginTransfer() { pool_->beginTransfer(seq_); }

    /** Unpin after the transfer lands (or settles at drop). */
    void endTransfer() { pool_->endTransfer(seq_); }

    /** True while the sequence's blocks ride a DMA channel. */
    bool inTransfer() const { return pool_->inTransfer(seq_); }

    /**
     * Map this (empty) sequence onto cached prefix chains:
     * `table[layer]` lists the shared blocks backing the first
     * `rows` positions of every layer (see PagedKvCache::adoptPrefix).
     */
    void
    adoptPrefix(const std::vector<std::vector<int>> &table, int rows)
    {
        for (int l = 0; l < pool_->nLayers(); ++l)
            pool_->adoptPrefix(seq_, l, table[static_cast<size_t>(l)],
                               rows);
    }

    int seqId() const { return seq_; }
    const PagedKvCache &pool() const { return *pool_; }

  private:
    std::shared_ptr<PagedKvCache> pool_;
    int seq_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_PAGED_KV_HH
