/**
 * @file
 * Paged KV cache — the PagedAttention (vllm) memory-manager substrate.
 *
 * Physical KV storage is divided into fixed-size blocks managed by a
 * free list; each (sequence, layer) maps logical positions to blocks
 * through a block table. This is the real data structure vllm uses to
 * eliminate KV fragmentation; the engine's "vllm" preset routes its
 * attention reads through it.
 */

#ifndef SPECEE_MODEL_PAGED_KV_HH
#define SPECEE_MODEL_PAGED_KV_HH

#include <utility>
#include <vector>

#include "model/kv_store.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/** Positions per physical KV block. */
constexpr int kKvBlockSize = 16;

/**
 * Block-based KV pool with allocation, per-layer block tables and
 * rollback. Single-sequence interface (batch 1 decoding), but the
 * allocator itself is sequence-agnostic and reusable.
 */
class PagedKvCache : public KvStore
{
  public:
    /**
     * @param n_layers  decoder layers
     * @param n_blocks  physical blocks in the pool (shared by layers)
     * @param hidden    per-position K/V width
     */
    PagedKvCache(int n_layers, int n_blocks, int hidden);

    /** Append k/v for the next position of layer l. @return position */
    int append(int layer, tensor::CSpan k, tensor::CSpan v) override;

    tensor::CSpan key(int layer, int pos) const override;
    tensor::CSpan value(int layer, int pos) const override;

    int length(int layer) const override;

    /** Roll back to new_len positions, freeing now-empty blocks. */
    void truncate(int new_len) override;

    /** Free all blocks. */
    void clear() override;

    /** Physical blocks currently allocated across all layers. */
    int blocksInUse() const;

    /** Physical blocks still free. */
    int blocksFree() const { return static_cast<int>(freeList_.size()); }

    /** True if an append would fail for `layer`. */
    bool wouldOverflow(int layer) const;

  private:
    struct LayerState
    {
        std::vector<int> blockTable; ///< logical block -> physical block
        int len = 0;                 ///< cached positions
    };

    /** Physical location of (layer, pos). */
    std::pair<int, int> locate(int layer, int pos) const;

    int allocBlock();
    void freeBlock(int b);

    int nLayers_;
    int hidden_;
    // Physical pool: per block, kKvBlockSize rows for K and V.
    std::vector<tensor::Matrix> kPool_;
    std::vector<tensor::Matrix> vPool_;
    std::vector<int> freeList_;
    std::vector<LayerState> layers_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_PAGED_KV_HH
