/**
 * @file
 * Contiguous per-layer KV cache with rollback.
 *
 * Stores keys and values for every layer in preallocated contiguous
 * matrices (the HuggingFace-style layout). truncate() supports
 * speculative-decoding rollback of rejected draft tokens.
 */

#ifndef SPECEE_MODEL_KV_CACHE_HH
#define SPECEE_MODEL_KV_CACHE_HH

#include <vector>

#include "model/kv_store.hh"
#include "tensor/matrix.hh"

namespace specee::model {

/** Contiguous KV cache: one (max_seq x hidden) K and V pair per layer. */
class KvCache : public KvStore
{
  public:
    KvCache(int n_layers, int max_seq, int hidden);

    /** Append k/v for the next position of layer l. @return position */
    int append(int layer, tensor::CSpan k, tensor::CSpan v) override;

    /** Key of `pos` at `layer`. */
    tensor::CSpan key(int layer, int pos) const override;
    /** Value of `pos` at `layer`. */
    tensor::CSpan value(int layer, int pos) const override;

    /** Tokens currently cached for a layer. */
    int length(int layer) const override;

    /** Drop all positions >= new_len (speculative rollback). */
    void truncate(int new_len) override;

    /** Drop everything. */
    void clear() override;

    int maxSeq() const { return maxSeq_; }

  private:
    int nLayers_;
    int maxSeq_;
    int hidden_;
    std::vector<tensor::Matrix> k_;
    std::vector<tensor::Matrix> v_;
    std::vector<int> len_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_KV_CACHE_HH
