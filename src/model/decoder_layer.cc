#include "model/decoder_layer.hh"

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::model {

DecoderLayer::DecoderLayer(const ModelConfig &cfg)
    : hidden_(cfg.sim.hidden),
      heads_(cfg.sim.heads),
      headDim_(cfg.sim.headDim()),
      attn_(cfg),
      ffn_(cfg),
      normed_(static_cast<size_t>(hidden_)),
      sub_(static_cast<size_t>(hidden_)),
      k_(static_cast<size_t>(hidden_)),
      v_(static_cast<size_t>(hidden_))
{
}

void
DecoderLayer::forward(const LayerWeights &lw, int layer, tensor::Span x,
                      int pos, KvStore &kv, bool sparse_ffn,
                      float active_frac)
{
    specee_assert(x.size() == static_cast<size_t>(hidden_),
                  "decoder layer io size");
    // Attention block.
    tensor::rmsnorm(x, lw.rms_attn, normed_);
    attn_.forward(lw, layer, normed_, pos, kv, sub_);
    tensor::addInplace(x, sub_);
    // FFN block.
    tensor::rmsnorm(x, lw.rms_ffn, normed_);
    if (sparse_ffn)
        ffn_.forwardSparse(lw, normed_, active_frac, sub_);
    else
        ffn_.forward(lw, normed_, sub_);
    tensor::addInplace(x, sub_);
}

void
DecoderLayer::fillKv(const LayerWeights &lw, int layer, tensor::CSpan x,
                     int pos, KvStore &kv)
{
    tensor::rmsnorm(x, lw.rms_attn, normed_);
    lw.wk.gemv(normed_, k_);
    lw.wv.gemv(normed_, v_);
    tensor::rope(k_, static_cast<size_t>(heads_),
                 static_cast<size_t>(headDim_), static_cast<size_t>(pos));
    kv.append(layer, k_, v_);
}

} // namespace specee::model
