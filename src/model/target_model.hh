/**
 * @file
 * TargetModel — the simulated target LLM (TLM) with layer-level
 * stepping and convergence steering.
 *
 * The model runs real transformer math (attention over a KV store,
 * SwiGLU FFN, tied LM head) at the simulation dimensions, and blends
 * each layer's output with oracle-directed embedding directions so
 * that the *probability shift* of §4.2 appears at a scripted
 * convergence layer:
 *
 *   - before conv_layer, the hidden state points mostly at the layer
 *     "texture" plus a moderate distractor direction, so the global
 *     argmax is the distractor and speculative-token probabilities
 *     stay flat;
 *   - at conv_layer, a sharp sigmoid ramp rotates the hidden state
 *     onto the (noisy) target-token embedding, so the target's local
 *     probability and logit jump — exactly the feature signal the
 *     SpecEE predictor is trained on;
 *   - at the final layer the target component is forced dominant, so
 *     a full forward pass always emits the scripted target (dense
 *     accuracy is therefore controlled by the workload scripts).
 *
 * This steering is the documented substitution for trained Llama-2
 * weights (DESIGN.md §1); everything else in the pipeline operates
 * on the model exactly as it would on a real checkpoint.
 *
 * Weights are sequence-independent; everything a decode mutates (KV,
 * position, per-token steering directions, the noise rng) lives in a
 * SequenceState. The model owns one default state — single-sequence
 * callers never see the indirection — and can temporarily bind an
 * external state, which is how the serving layer interleaves many
 * DecodeSessions on one model without duplicating weights.
 */

#ifndef SPECEE_MODEL_TARGET_MODEL_HH
#define SPECEE_MODEL_TARGET_MODEL_HH

#include <memory>
#include <vector>

#include "model/config.hh"
#include "model/decoder_layer.hh"
#include "model/kv_cache.hh"
#include "model/kv_store.hh"
#include "model/lm_head.hh"
#include "model/paged_kv.hh"
#include "model/weights.hh"
#include "util/rng.hh"

namespace specee::model {

/** Oracle script for one generated token. */
struct TokenScript
{
    int target = 0;      ///< token the full forward pass emits
    int distractor = 0;  ///< pre-convergence global argmax
    int conv_layer = 0;  ///< layer of the probability shift
};

/** Steering strength parameters (defaults calibrated in tests). */
struct SteerParams
{
    float tau = 0.25f;               ///< ramp sharpness
    float distractor_strength = 0.45f;
    /**
     * Per-token multiplier range for the distractor strength
     * (uniform in [1-j, 1+j]). Strong-distractor tokens show high
     * *global* top-1 confidence before convergence — the ambiguity
     * that fools verification-free predictors (AdaInfer) while the
     * *local* speculative probabilities stay flat.
     */
    float distractor_jitter = 0.55f;
    float target_noise = 0.35f;      ///< feature noise level
    float final_alpha = 0.93f;       ///< target dominance at last layer
};

/** Options controlling the functional compute paths. */
struct TargetModelOptions
{
    /**
     * Legacy AWQ / llama.cpp mode: Q4 projections, dense tied head.
     * Mutually exclusive with a non-fp32 `weight_backend`.
     */
    bool quantized = false;
    /**
     * Whole-model weight backend (projections AND tied embedding /
     * LM head) — the EngineConfig::weight_backend knob.
     */
    tensor::WeightBackend weight_backend = tensor::WeightBackend::Fp32;
    bool paged_kv = false;    ///< use the paged KV cache (vllm engine)
    bool sparse_ffn = false;  ///< PowerInfer-style sparse FFN
    float ffn_active_frac = 0.3f;
    SteerParams steer;
    uint64_t noise_seed = 0xfeed;
};

/**
 * Everything one decoded sequence mutates: its KV store, decode
 * position, current-token steering state and the per-sequence noise
 * rng. A DecodeSession owns one of these; the model operates on
 * whichever state is currently bound.
 */
struct SequenceState
{
    std::unique_ptr<KvStore> kv;
    Rng noiseRng{0};
    TokenScript script{};
    tensor::Vec hidden;
    tensor::Vec dirTarget;
    tensor::Vec dirDistractor;
    int pos = 0;             ///< position of the token being decoded
    int layer = 0;           ///< next layer to run for the current token
    bool inToken = false;
    float distractorScale = 1.0f; ///< per-token strength multiplier
};

/**
 * Layer-steppable target model. Weights are shared; per-sequence
 * decode state is swappable via bindSequence().
 */
class TargetModel
{
  public:
    TargetModel(const ModelConfig &cfg, const TargetModelOptions &opts);

    const ModelConfig &config() const { return cfg_; }
    const Weights &weights() const { return weights_; }
    const LmHead &lmHead() const { return lmHead_; }
    int nLayers() const { return cfg_.n_layers; }

    /**
     * Fresh per-sequence state. When `kv` is null, a private store of
     * the model's configured kind is created (contiguous, or a
     * single-sequence view over a private paged pool); the serving
     * layer instead passes a view onto its shared fleet pool.
     */
    SequenceState makeSequence(std::unique_ptr<KvStore> kv = nullptr) const;

    /**
     * Operate on `seq` until further notice; nullptr rebinds the
     * model's own default state. The bound state must outlive the
     * binding. Binding is cheap (one pointer) — sessions bind around
     * every step.
     */
    void bindSequence(SequenceState *seq);

    /** Currently bound state (the default one unless rebound). */
    const SequenceState &sequence() const { return *seq_; }

    /**
     * Clear KV, position and steering-noise state of the bound
     * sequence. `noise_stream` selects an independent noise
     * substream (e.g. per instance), so the decode of a sequence is
     * a pure function of (options, noise_stream, scripts) — the
     * re-entrancy the serving layer relies on.
     */
    void reset(uint64_t noise_stream = 0);

    /** Next absolute position to be written. */
    int position() const { return seq_->pos; }

    /**
     * Fast prompt ingestion: fills every layer's KV from the token
     * embeddings without full layer compute. Prompt hidden fidelity
     * only matters through attention texture, and decode-time costs
     * are charged by the cost model at the true prompt length.
     */
    void prefill(const std::vector<int> &tokens);

    /** Begin a decode step for `input_token` under `script`. */
    void beginToken(int input_token, const TokenScript &script);

    /** Layer that runLayer() would execute next (0-based). */
    int currentLayer() const { return seq_->layer; }

    /** True once all layers have run for the current token. */
    bool doneAllLayers() const { return seq_->layer >= cfg_.n_layers; }

    /**
     * Run the next layer (attention + FFN + steering); returns the
     * steered hidden state after that layer.
     */
    tensor::CSpan runLayer();

    /** Current steered hidden state. */
    tensor::CSpan hidden() const { return seq_->hidden; }

    /** Run all remaining layers; returns the final argmax token. */
    int runRemainingLayers();

    /**
     * Finish the current token after an early exit: fills KV for all
     * layers that were skipped from the current hidden state so later
     * tokens can attend to this position.
     *
     * @return number of layers whose KV was filled
     */
    int finishEarly();

    /** Full-vocabulary argmax on the current hidden state. */
    int globalArgmax() const;

    /** Sliced logits of `tokens` on the current hidden state. */
    void logitsSliced(const std::vector<int> &tokens,
                      tensor::Span out) const;

    /** Full logits on the current hidden state. */
    tensor::Vec fullLogits() const;

    /** KV store of the bound sequence (for tests). */
    const KvStore &kv() const { return *seq_->kv; }

  private:
    /** Apply convergence steering to the raw layer output. */
    void steer(int layer_just_run);

    /** Private KV store of the configured kind for one sequence. */
    std::unique_ptr<KvStore> makeDefaultKv() const;

    ModelConfig cfg_;
    TargetModelOptions opts_;
    Weights weights_;
    LmHead lmHead_;
    DecoderLayer layerBlock_;
    SequenceState own_;        ///< default state (single-sequence use)
    SequenceState *seq_ = nullptr; ///< bound state (defaults to &own_)
    tensor::Vec erow_; ///< embedding-row scratch (backend dequantize)
};

} // namespace specee::model

#endif // SPECEE_MODEL_TARGET_MODEL_HH
