#include "model/tokenizer.hh"

#include <array>

#include "util/logging.hh"

namespace specee::model {

namespace {

// Frequent-word table for low token ids (after the reserved range).
constexpr std::array<const char *, 64> kWords = {
    "the", "of", "and", "to", "a", "in", "is", "that", "it", "was",
    "for", "on", "are", "as", "with", "his", "they", "at", "be",
    "this", "from", "have", "or", "one", "had", "by", "word", "but",
    "not", "what", "all", "were", "we", "when", "your", "can",
    "said", "there", "use", "an", "each", "which", "she", "do",
    "how", "their", "if", "will", "up", "other", "about", "out",
    "many", "then", "them", "these", "so", "some", "her", "would",
    "make", "like", "him", "into",
};

constexpr int kWordBase = kOptionTokenBase + kMaxOptions;

} // namespace

Tokenizer::Tokenizer(int vocab) : vocab_(vocab)
{
    specee_assert(vocab > kWordBase + static_cast<int>(kWords.size()),
                  "vocab %d too small for tokenizer", vocab);
}

std::string
Tokenizer::decode(int token) const
{
    specee_assert(token >= 0 && token < vocab_, "token %d out of range",
                  token);
    if (token == 0)
        return "<s>";
    if (token == 1)
        return "</s>";
    const int opt = optionIndex(token);
    if (opt >= 0)
        return std::string("(") + static_cast<char>('A' + opt) + ")";
    if (token - kWordBase < static_cast<int>(kWords.size()))
        return kWords[static_cast<size_t>(token - kWordBase)];
    return "tok" + std::to_string(token);
}

std::string
Tokenizer::decode(const std::vector<int> &tokens) const
{
    std::string out;
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0)
            out += ' ';
        out += decode(tokens[i]);
    }
    return out;
}

int
Tokenizer::encode(const std::string &word) const
{
    if (word == "<s>")
        return 0;
    if (word == "</s>")
        return 1;
    if (word.size() == 3 && word.front() == '(' && word.back() == ')')
        return optionToken(word[1] - 'A');
    for (size_t i = 0; i < kWords.size(); ++i) {
        if (word == kWords[i])
            return kWordBase + static_cast<int>(i);
    }
    if (word.rfind("tok", 0) == 0)
        return std::stoi(word.substr(3));
    specee_fatal("cannot encode word '%s'", word.c_str());
}

int
Tokenizer::optionToken(int option)
{
    specee_assert(option >= 0 && option < kMaxOptions,
                  "option %d out of range", option);
    return kOptionTokenBase + option;
}

int
Tokenizer::optionIndex(int token)
{
    if (token >= kOptionTokenBase && token < kOptionTokenBase + kMaxOptions)
        return token - kOptionTokenBase;
    return -1;
}

} // namespace specee::model
