/**
 * @file
 * One decoder layer: pre-norm attention + pre-norm FFN with residuals,
 * plus the KV-fill path used after an early exit.
 */

#ifndef SPECEE_MODEL_DECODER_LAYER_HH
#define SPECEE_MODEL_DECODER_LAYER_HH

#include "model/attention.hh"
#include "model/config.hh"
#include "model/ffn.hh"
#include "model/kv_store.hh"
#include "model/weights.hh"

namespace specee::model {

/** Llama-style pre-norm decoder layer. */
class DecoderLayer
{
  public:
    explicit DecoderLayer(const ModelConfig &cfg);

    /**
     * Full layer forward; x is the residual stream and is updated
     * in place. Appends this token's k/v at `layer`.
     *
     * @param sparse_ffn  route the FFN through the sparse path
     * @param active_frac neuron fraction for the sparse FFN
     */
    void forward(const LayerWeights &lw, int layer, tensor::Span x,
                 int pos, KvStore &kv, bool sparse_ffn = false,
                 float active_frac = 1.0f);

    /**
     * KV-fill only: project and append k/v from `x` without running
     * attention or the FFN. Used for the layers skipped by an early
     * exit so later tokens can still attend to this position
     * (AdaInfer-style state propagation; the cost model charges the
     * two projections).
     */
    void fillKv(const LayerWeights &lw, int layer, tensor::CSpan x,
                int pos, KvStore &kv);

    /** Neurons used by the last sparse FFN call. */
    int lastActiveNeurons() const { return ffn_.lastActiveNeurons(); }

  private:
    int hidden_;
    int heads_;
    int headDim_;
    Attention attn_;
    Ffn ffn_;
    tensor::Vec normed_, sub_, k_, v_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_DECODER_LAYER_HH
