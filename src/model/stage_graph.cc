#include "model/stage_graph.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::model {

StageGraph::StageGraph(int n_layers, int pp) : nLayers_(n_layers)
{
    specee_assert(n_layers >= 1, "stage graph over %d layers", n_layers);
    specee_assert(pp >= 1 && pp <= n_layers,
                  "pp must be in [1, %d], got %d", n_layers, pp);
    stages_.reserve(static_cast<size_t>(pp));
    const int base = n_layers / pp;
    const int extra = n_layers % pp;
    int first = 0;
    for (int s = 0; s < pp; ++s) {
        StageRange r;
        r.first_layer = first;
        r.n_layers = base + (s < extra ? 1 : 0);
        first += r.n_layers;
        stages_.push_back(r);
    }
    specee_assert(first == n_layers, "stage partition lost layers");
}

const StageRange &
StageGraph::stage(int s) const
{
    specee_assert(s >= 0 && s < nStages(), "stage %d of %d", s,
                  nStages());
    return stages_[static_cast<size_t>(s)];
}

int
StageGraph::stageOfLayer(int layer) const
{
    specee_assert(layer >= 0 && layer < nLayers_,
                  "layer %d outside [0, %d)", layer, nLayers_);
    for (int s = 0; s < nStages(); ++s) {
        if (layer < stages_[static_cast<size_t>(s)].endLayer())
            return s;
    }
    return nStages() - 1; // unreachable: the ranges cover [0, L)
}

int
StageGraph::stagesForDepth(int layers_used) const
{
    if (layers_used <= 0)
        return 0;
    return stageOfLayer(std::min(layers_used, nLayers_) - 1) + 1;
}

int
StageGraph::overlapLayers(int s, int lo, int hi) const
{
    const StageRange &r = stage(s);
    const int a = std::max(lo, r.first_layer);
    const int b = std::min(hi, r.endLayer());
    return std::max(0, b - a);
}

int
StageGraph::handoffs(int layers_used) const
{
    return std::max(0, stagesForDepth(layers_used) - 1);
}

} // namespace specee::model
