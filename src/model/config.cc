#include "model/config.hh"

#include "util/logging.hh"

namespace specee::model {

namespace {
constexpr double kFp16Bytes = 2.0;
} // namespace

ModelConfig
ModelConfig::llama2_7b()
{
    ModelConfig c;
    c.name = "llama2-7b";
    c.n_layers = 32;
    c.truth = {4096, 11008, 32, 32000};
    c.sim = {192, 516, 6, 4096};
    c.weight_seed = 0x11a7;
    return c;
}

ModelConfig
ModelConfig::llama2_13b()
{
    ModelConfig c;
    c.name = "llama2-13b";
    c.n_layers = 40;
    c.truth = {5120, 13824, 40, 32000};
    c.sim = {224, 602, 7, 4096};
    c.weight_seed = 0x11a13;
    return c;
}

ModelConfig
ModelConfig::llama2_70b()
{
    ModelConfig c;
    c.name = "llama2-70b";
    c.n_layers = 80;
    c.truth = {8192, 28672, 64, 32000};
    c.sim = {256, 688, 8, 4096};
    c.weight_seed = 0x11a70;
    return c;
}

ModelConfig
ModelConfig::vicuna_7b()
{
    ModelConfig c = llama2_7b();
    c.name = "vicuna-7b";
    c.weight_seed = 0x71c07a;
    return c;
}

ModelConfig
ModelConfig::tiny()
{
    ModelConfig c;
    c.name = "tiny";
    c.n_layers = 8;
    // Truth dims stay at 7B-like scale so cost-model ratios are
    // representative even in unit tests (bytes dominate overheads).
    c.truth = {4096, 11008, 32, 32000};
    c.sim = {64, 172, 4, 512};
    c.context_len = 256;
    c.weight_seed = 0x717;
    return c;
}

ModelConfig
ModelConfig::byName(const std::string &name)
{
    if (name == "llama2-7b")
        return llama2_7b();
    if (name == "llama2-13b")
        return llama2_13b();
    if (name == "llama2-70b")
        return llama2_70b();
    if (name == "vicuna-7b")
        return vicuna_7b();
    if (name == "tiny")
        return tiny();
    specee_fatal("unknown model: %s", name.c_str());
}

double
ModelConfig::truthLayerBytes() const
{
    const double h = truth.hidden;
    const double f = truth.ffn;
    // wq, wk, wv, wo + gate, up, down (llama MLP) at fp16.
    return (4.0 * h * h + 3.0 * h * f) * kFp16Bytes;
}

double
ModelConfig::truthLmHeadBytes() const
{
    return static_cast<double>(truth.hidden) * truth.vocab * kFp16Bytes;
}

double
ModelConfig::truthWeightBytes() const
{
    // Layers + embedding + LM head (untied in Llama-2).
    return n_layers * truthLayerBytes() + 2.0 * truthLmHeadBytes();
}

double
ModelConfig::truthKvBytesPerToken() const
{
    return 2.0 * n_layers * truth.hidden * kFp16Bytes;
}

} // namespace specee::model
