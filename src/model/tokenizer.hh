/**
 * @file
 * Synthetic tokenizer over the simulation vocabulary.
 *
 * Maps token ids to printable strings for the example applications.
 * A small English word list covers the most frequent (low) ids; the
 * tail renders as "tok<id>". Multiple-choice option tokens render as
 * "(A)".."(H)".
 */

#ifndef SPECEE_MODEL_TOKENIZER_HH
#define SPECEE_MODEL_TOKENIZER_HH

#include <string>
#include <vector>

namespace specee::model {

/** First token id reserved for multiple-choice options. */
constexpr int kOptionTokenBase = 2;
/** Maximum number of option tokens. */
constexpr int kMaxOptions = 8;

/** Reversible id <-> string tokenizer for the synthetic vocabulary. */
class Tokenizer
{
  public:
    explicit Tokenizer(int vocab);

    int vocab() const { return vocab_; }

    /** Printable text for a token id. */
    std::string decode(int token) const;

    /** Decode a token sequence with separating spaces. */
    std::string decode(const std::vector<int> &tokens) const;

    /** Token id of a string previously produced by decode(). */
    int encode(const std::string &word) const;

    /** Option token id for option index (0 = A). */
    static int optionToken(int option);

    /** Option index for an option token id, or -1. */
    static int optionIndex(int token);

  private:
    int vocab_;
};

} // namespace specee::model

#endif // SPECEE_MODEL_TOKENIZER_HH
