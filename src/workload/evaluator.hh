/**
 * @file
 * Accuracy and perplexity evaluation of engine emissions (Table 4).
 *
 * Accuracy tasks grade the designated answer step against the
 * ground-truth option token. Perplexity tasks score every emitted
 * token under the corpus bigram model: the dense engine emits likely
 * continuations (low PPL); early-exit mistakes emit lower-probability
 * tokens and raise PPL — the mechanism behind Table 4's PPL deltas.
 */

#ifndef SPECEE_WORKLOAD_EVALUATOR_HH
#define SPECEE_WORKLOAD_EVALUATOR_HH

#include <vector>

#include "oracle/corpus.hh"
#include "workload/datasets.hh"

namespace specee::workload {

/** Emitted tokens of one instance (aligned with Instance::steps). */
struct Emission
{
    std::vector<int> tokens;
    std::vector<int> exit_layers; ///< forward layers used per token
};

/** Aggregate quality metrics over a workload. */
struct EvalResult
{
    double accuracy_pct = -1.0; ///< graded tasks only
    double ppl = -1.0;          ///< perplexity tasks only
    double avg_forward_layers = 0.0;
    double token_match_rate = 0.0; ///< emitted == scripted dense target
    long graded = 0;
    long tokens = 0;
};

/** Stateless evaluation over (workload, emissions). */
class Evaluator
{
  public:
    static EvalResult evaluate(const Workload &w,
                               const std::vector<Emission> &emissions,
                               const oracle::SyntheticCorpus &corpus);
};

} // namespace specee::workload

#endif // SPECEE_WORKLOAD_EVALUATOR_HH
