/**
 * @file
 * Workload generation: turns a dataset profile into scripted
 * generation instances the engines run.
 *
 * Each instance carries a prompt (corpus sample) and per-step oracle
 * scripts: the token the dense model will emit, the pre-convergence
 * distractor, and the convergence layer. Multiple-choice / math /
 * code tasks designate one graded answer step whose target is the
 * correct option token with probability equal to the calibrated
 * dense accuracy (Table 4), so "dense accuracy" is reproduced by
 * construction and every engine's accuracy *delta* is measured from
 * its actual emissions.
 */

#ifndef SPECEE_WORKLOAD_DATASETS_HH
#define SPECEE_WORKLOAD_DATASETS_HH

#include <string>
#include <vector>

#include "model/config.hh"
#include "model/target_model.hh"
#include "oracle/convergence.hh"
#include "oracle/corpus.hh"
#include "oracle/profiles.hh"

namespace specee::workload {

/** Prompt length used by the functional simulator (see DESIGN.md). */
constexpr int kSimPromptLen = 12;

/** One scripted generation request. */
struct Instance
{
    std::vector<int> prompt;
    std::vector<model::TokenScript> steps;
    int answer_step = -1;   ///< graded step (-1: perplexity task)
    int correct_token = -1; ///< ground-truth answer token
};

/** A batch of instances for one (dataset, model) pair. */
struct Workload
{
    std::string dataset;
    std::string model_key;
    oracle::TaskKind kind = oracle::TaskKind::Generation;
    int true_prompt_len = 0; ///< used by the cost model's KV pricing
    std::vector<Instance> instances;

    /** Total scripted generation steps. */
    int totalSteps() const;

    /**
     * Single-instance view for per-request serving: same dataset /
     * calibration metadata, exactly one instance.
     */
    Workload slice(size_t instance) const;
};

/** Options for workload generation. */
struct GenOptions
{
    int n_instances = 8;
    int gen_len = 48;            ///< steps per instance (capped)
    double accuracy_override = -1.0;  ///< >=0: replace calibrated accuracy
    double mean_layers_override = -1.0; ///< >=0: replace Table-4 layers
    /**
     * > 0: replace the profile's true-dims prompt length — drives KV
     * pricing and (when chunked prefill is on) the number of prefill
     * chunks a request needs. The sim-dims prompt stays kSimPromptLen.
     */
    int prompt_len_override = 0;
    double hard_token_rate = 0.08;
    double context_strength = 0.68;
    uint64_t seed = 0x10ad;
};

/** Deterministic workload generator over a shared corpus. */
class WorkloadGen
{
  public:
    explicit WorkloadGen(const oracle::SyntheticCorpus &corpus);

    /**
     * Generate a workload for `profile` on `cfg`.
     *
     * @param quantized_cal use the AWQ accuracy calibration column
     */
    Workload generate(const oracle::DatasetProfile &profile,
                      const model::ModelConfig &cfg,
                      const GenOptions &opts,
                      bool quantized_cal = false) const;

    /**
     * Convergence-process parameters used for (profile, cfg) — also
     * consumed by the Fig. 10/11 benches to show the raw process.
     */
    oracle::ConvergenceParams convergenceParams(
        const oracle::DatasetProfile &profile,
        const model::ModelConfig &cfg, const GenOptions &opts,
        bool quantized_cal = false) const;

  private:
    const oracle::SyntheticCorpus &corpus_;
};

} // namespace specee::workload

#endif // SPECEE_WORKLOAD_DATASETS_HH
