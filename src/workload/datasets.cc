#include "workload/datasets.hh"

#include <algorithm>

#include "model/tokenizer.hh"
#include "util/logging.hh"

namespace specee::workload {

int
Workload::totalSteps() const
{
    int n = 0;
    for (const auto &inst : instances)
        n += static_cast<int>(inst.steps.size());
    return n;
}

Workload
Workload::slice(size_t instance) const
{
    specee_assert(instance < instances.size(),
                  "instance %zu out of range (%zu available)", instance,
                  instances.size());
    Workload one;
    one.dataset = dataset;
    one.model_key = model_key;
    one.kind = kind;
    one.true_prompt_len = true_prompt_len;
    one.instances.push_back(instances[instance]);
    return one;
}

WorkloadGen::WorkloadGen(const oracle::SyntheticCorpus &corpus)
    : corpus_(corpus)
{
}

oracle::ConvergenceParams
WorkloadGen::convergenceParams(const oracle::DatasetProfile &profile,
                               const model::ModelConfig &cfg,
                               const GenOptions &opts,
                               bool quantized_cal) const
{
    const auto &cal = profile.calFor(cfg.name);
    (void)quantized_cal;

    double target_layers = opts.mean_layers_override >= 0.0
                               ? opts.mean_layers_override
                               : cal.avg_layers;
    // Avg forward layers of the engine is roughly
    //   (1 - h_eff) * (mean_c + 1 + sched_gap) + h_eff * L
    // where h_eff folds in hard tokens, draft misses (no exit is
    // possible when the true token is outside the speculative set)
    // and residual predictor misses (~5%); sched_gap ~= 0.7 under the
    // two-level scheduler. Solve for the process mean.
    const double h = opts.hard_token_rate;
    const double h_eff =
        h + (1.0 - h) * (1.0 - profile.draft_hit_rate * 0.95);
    const double sched_gap = 0.7;
    double mean_c =
        (target_layers - h_eff * cfg.n_layers) / (1.0 - h_eff) - 1.0 -
        sched_gap;
    mean_c = std::clamp(mean_c, 2.0, cfg.n_layers - 3.0);

    oracle::ConvergenceParams cp;
    cp.n_layers = cfg.n_layers;
    cp.mean_layer = mean_c;
    cp.context_strength = opts.context_strength;
    cp.hard_token_rate = opts.hard_token_rate;
    // Distinct skew shapes per model family (Fig. 10a vs 10c).
    cp.seed = cfg.weight_seed ^ 0x5ca1ab1e;
    return cp;
}

Workload
WorkloadGen::generate(const oracle::DatasetProfile &profile,
                      const model::ModelConfig &cfg, const GenOptions &opts,
                      bool quantized_cal) const
{
    const auto &cal = profile.calFor(cfg.name);
    Workload w;
    w.dataset = profile.name;
    w.model_key = cfg.name;
    w.kind = profile.kind;
    w.true_prompt_len = opts.prompt_len_override > 0
                            ? opts.prompt_len_override
                            : profile.prompt_len;

    double accuracy = opts.accuracy_override;
    if (accuracy < 0.0) {
        accuracy = quantized_cal && cal.awq_accuracy >= 0.0
                       ? cal.awq_accuracy
                       : cal.dense_accuracy;
    }

    Rng rng(opts.seed ^ cfg.weight_seed ^
            std::hash<std::string>{}(profile.name));
    oracle::ConvergenceProcess conv(
        convergenceParams(profile, cfg, opts, quantized_cal));

    const int gen_len = std::min(opts.gen_len, profile.gen_len);
    for (int i = 0; i < opts.n_instances; ++i) {
        Instance inst;
        inst.prompt = corpus_.sampleSequence(kSimPromptLen, rng);
        conv.reset();

        const bool graded = profile.gradedByAccuracy();
        int correct_opt = -1;
        if (graded) {
            inst.answer_step = 0;
            correct_opt = rng.uniformInt(0, profile.n_options - 1);
            inst.correct_token = model::Tokenizer::optionToken(correct_opt);
        }

        int prev = inst.prompt.back();
        for (int t = 0; t < gen_len; ++t) {
            model::TokenScript s;
            if (graded && t == inst.answer_step) {
                // Answer token: correct with the calibrated probability.
                if (rng.bernoulli(accuracy / 100.0)) {
                    s.target = inst.correct_token;
                } else {
                    int wrong = rng.uniformInt(0, profile.n_options - 2);
                    if (wrong >= correct_opt)
                        ++wrong;
                    s.target = model::Tokenizer::optionToken(wrong);
                }
                // The model wavers between options before converging.
                int alt = rng.uniformInt(0, profile.n_options - 1);
                s.distractor = model::Tokenizer::optionToken(alt);
                if (s.distractor == s.target) {
                    s.distractor = model::Tokenizer::optionToken(
                        (alt + 1) % profile.n_options);
                }
            } else {
                // Free-running text: the dense emission is a likely
                // corpus continuation (greedy-ish with variety).
                auto head = corpus_.topNext(prev, 12);
                const int pick = std::min<int>(
                    static_cast<int>(rng.categorical({0.6f, 0.25f, 0.15f})),
                    static_cast<int>(head.size()) - 1);
                s.target = head[static_cast<size_t>(pick)].first;
                // Distractor: usually outside the draft's top-4 slots
                // (ranks 5-11) so verification catches premature exits;
                // sometimes inside (ranks 1-2) — the harmful case that
                // produces the paper's <1% accuracy deltas.
                int rank;
                if (rng.bernoulli(0.92)) {
                    rank = rng.uniformInt(5, 11);
                } else {
                    rank = rng.uniformInt(1, 2);
                }
                rank = std::min(rank, static_cast<int>(head.size()) - 1);
                s.distractor = head[static_cast<size_t>(rank)].first;
                if (s.distractor == s.target)
                    s.distractor = head.back().first;
            }
            s.conv_layer = conv.next(rng);
            inst.steps.push_back(s);
            prev = s.target;
        }
        w.instances.push_back(std::move(inst));
    }
    return w;
}

} // namespace specee::workload
