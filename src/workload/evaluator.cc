#include "workload/evaluator.hh"

#include <cmath>

#include "util/logging.hh"

namespace specee::workload {

EvalResult
Evaluator::evaluate(const Workload &w,
                    const std::vector<Emission> &emissions,
                    const oracle::SyntheticCorpus &corpus)
{
    specee_assert(w.instances.size() == emissions.size(),
                  "emissions/instances mismatch: %zu vs %zu",
                  emissions.size(), w.instances.size());

    EvalResult r;
    long correct = 0;
    long matches = 0;
    double log_prob_sum = 0.0;
    long ppl_tokens = 0;
    double layer_sum = 0.0;

    for (size_t i = 0; i < w.instances.size(); ++i) {
        const Instance &inst = w.instances[i];
        const Emission &em = emissions[i];
        specee_assert(em.tokens.size() <= inst.steps.size(),
                      "emitted more tokens than scripted");
        int prev = inst.prompt.back();
        for (size_t t = 0; t < em.tokens.size(); ++t) {
            const int tok = em.tokens[t];
            ++r.tokens;
            if (tok == inst.steps[t].target)
                ++matches;
            if (t < em.exit_layers.size())
                layer_sum += em.exit_layers[t];

            if (inst.answer_step >= 0 &&
                t == static_cast<size_t>(inst.answer_step)) {
                ++r.graded;
                if (tok == inst.correct_token)
                    ++correct;
            }
            // Perplexity under the corpus language model.
            const double p = std::max(corpus.prob(prev, tok), 1e-9);
            log_prob_sum += std::log(p);
            ++ppl_tokens;
            prev = tok;
        }
    }

    if (r.tokens > 0) {
        r.token_match_rate =
            static_cast<double>(matches) / static_cast<double>(r.tokens);
        r.avg_forward_layers = layer_sum / static_cast<double>(r.tokens);
    }
    if (r.graded > 0) {
        r.accuracy_pct = 100.0 * static_cast<double>(correct) /
                         static_cast<double>(r.graded);
    }
    if (w.kind == oracle::TaskKind::Generation ||
        w.kind == oracle::TaskKind::Summarization) {
        if (ppl_tokens > 0)
            r.ppl = std::exp(-log_prob_sum / static_cast<double>(ppl_tokens));
    }
    return r;
}

} // namespace specee::workload
