#include "nn/linear.hh"

#include <cmath>

#include "util/logging.hh"

namespace specee::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng &rng)
    : w_(out_dim, in_dim),
      b_(out_dim, 0.0f),
      gw_(out_dim, in_dim),
      gb_(out_dim, 0.0f),
      mw_(out_dim, in_dim),
      vw_(out_dim, in_dim),
      mb_(out_dim, 0.0f),
      vb_(out_dim, 0.0f)
{
    const float sd = std::sqrt(2.0f / static_cast<float>(in_dim));
    for (size_t r = 0; r < out_dim; ++r)
        for (size_t c = 0; c < in_dim; ++c)
            w_.at(r, c) = static_cast<float>(rng.normal(0.0, sd));
}

void
Linear::forward(tensor::CSpan x, tensor::Span out) const
{
    specee_assert(x.size() == w_.cols() && out.size() == w_.rows(),
                  "linear forward shape");
    for (size_t r = 0; r < w_.rows(); ++r) {
        const float *row = w_.data() + r * w_.cols();
        float acc = b_[r];
        for (size_t c = 0; c < w_.cols(); ++c)
            acc += row[c] * x[c];
        out[r] = acc;
    }
}

void
Linear::backward(tensor::CSpan x, tensor::CSpan d_out, tensor::Span d_x)
{
    specee_assert(x.size() == w_.cols() && d_out.size() == w_.rows(),
                  "linear backward shape");
    for (size_t r = 0; r < w_.rows(); ++r) {
        const float g = d_out[r];
        gb_[r] += g;
        float *grow = gw_.data() + r * gw_.cols();
        for (size_t c = 0; c < w_.cols(); ++c)
            grow[c] += g * x[c];
    }
    if (!d_x.empty()) {
        specee_assert(d_x.size() == w_.cols(), "linear backward d_x shape");
        for (size_t c = 0; c < w_.cols(); ++c) {
            float acc = 0.0f;
            for (size_t r = 0; r < w_.rows(); ++r)
                acc += w_.at(r, c) * d_out[r];
            d_x[c] = acc;
        }
    }
}

void
Linear::zeroGrad()
{
    gw_.fill(0.0f);
    std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void
Linear::adamStep(double lr, double beta1, double beta2, double eps,
                 int t, size_t batch)
{
    const double bc1 = 1.0 - std::pow(beta1, t);
    const double bc2 = 1.0 - std::pow(beta2, t);
    const double inv_batch = 1.0 / static_cast<double>(batch);
    for (size_t i = 0; i < w_.size(); ++i) {
        const double g = gw_.data()[i] * inv_batch;
        double m = mw_.data()[i] = static_cast<float>(
            beta1 * mw_.data()[i] + (1.0 - beta1) * g);
        double v = vw_.data()[i] = static_cast<float>(
            beta2 * vw_.data()[i] + (1.0 - beta2) * g * g);
        const double mhat = m / bc1;
        const double vhat = v / bc2;
        w_.data()[i] -= static_cast<float>(lr * mhat /
                                           (std::sqrt(vhat) + eps));
    }
    for (size_t i = 0; i < b_.size(); ++i) {
        const double g = gb_[i] * inv_batch;
        double m = mb_[i] = static_cast<float>(
            beta1 * mb_[i] + (1.0 - beta1) * g);
        double v = vb_[i] = static_cast<float>(
            beta2 * vb_[i] + (1.0 - beta2) * g * g);
        const double mhat = m / bc1;
        const double vhat = v / bc2;
        b_[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + eps));
    }
}

} // namespace specee::nn
