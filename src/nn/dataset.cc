#include "nn/dataset.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::nn {

void
Dataset::add(tensor::CSpan features, float label)
{
    if (dim_ == 0)
        dim_ = features.size();
    specee_assert(features.size() == dim_,
                  "dataset dim mismatch: %zu vs %zu", features.size(), dim_);
    x_.insert(x_.end(), features.begin(), features.end());
    labels_.push_back(label);
}

double
Dataset::positiveRate() const
{
    if (labels_.empty())
        return 0.0;
    double s = 0.0;
    for (float l : labels_)
        s += l;
    return s / labels_.size();
}

void
Dataset::shuffle(Rng &rng)
{
    for (size_t i = size(); i > 1; --i) {
        size_t j = static_cast<size_t>(rng.next() % i);
        if (j == i - 1)
            continue;
        std::swap(labels_[i - 1], labels_[j]);
        for (size_t d = 0; d < dim_; ++d)
            std::swap(x_[(i - 1) * dim_ + d], x_[j * dim_ + d]);
    }
}

std::pair<Dataset, Dataset>
Dataset::split(double train_frac) const
{
    Dataset train(dim_);
    Dataset test(dim_);
    const size_t n_train =
        static_cast<size_t>(static_cast<double>(size()) * train_frac);
    for (size_t i = 0; i < size(); ++i) {
        if (i < n_train)
            train.add(features(i), labels_[i]);
        else
            test.add(features(i), labels_[i]);
    }
    return {std::move(train), std::move(test)};
}

Dataset
Dataset::head(size_t n) const
{
    Dataset out(dim_);
    n = std::min(n, size());
    for (size_t i = 0; i < n; ++i)
        out.add(features(i), labels_[i]);
    return out;
}

void
Dataset::append(const Dataset &other)
{
    if (other.empty())
        return;
    if (dim_ == 0)
        dim_ = other.dim();
    specee_assert(dim_ == other.dim(), "append dim mismatch");
    for (size_t i = 0; i < other.size(); ++i)
        add(other.features(i), other.label(i));
}

} // namespace specee::nn
