/**
 * @file
 * Feature dataset container for predictor training.
 */

#ifndef SPECEE_NN_DATASET_HH
#define SPECEE_NN_DATASET_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/matrix.hh"
#include "util/rng.hh"

namespace specee::nn {

/**
 * Binary-labeled feature dataset (rows of fixed dimensionality).
 *
 * Used for the exit-predictor training pipeline of §7.4.4: features
 * are the 12-dim speculation features, labels are 1 when exiting at
 * the layer would emit the same token as the full forward pass.
 */
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(size_t dim) : dim_(dim) {}

    /** Append one (feature, label) sample. */
    void add(tensor::CSpan features, float label);

    size_t size() const { return labels_.size(); }
    size_t dim() const { return dim_; }
    bool empty() const { return labels_.empty(); }

    tensor::CSpan features(size_t i) const
    {
        return tensor::CSpan(x_.data() + i * dim_, dim_);
    }
    float label(size_t i) const { return labels_[i]; }

    /** Fraction of positive labels. */
    double positiveRate() const;

    /** In-place deterministic shuffle. */
    void shuffle(Rng &rng);

    /** Split into (train, test) with `train_frac` of samples in train. */
    std::pair<Dataset, Dataset> split(double train_frac) const;

    /** First `n` samples as a new dataset (for training-ratio sweeps). */
    Dataset head(size_t n) const;

    /** Merge another dataset of the same dimension into this one. */
    void append(const Dataset &other);

  private:
    size_t dim_ = 0;
    std::vector<float> x_;
    std::vector<float> labels_;
};

} // namespace specee::nn

#endif // SPECEE_NN_DATASET_HH
