/**
 * @file
 * Linear SVM — the AdaInfer baseline's exit predictor (§2.3, Table 1).
 *
 * AdaInfer feeds full-vocabulary statistics (top probability, gap,
 * entropy) into a classic SVM. We implement a linear SVM trained by
 * SGD on the hinge loss with L2 regularization.
 */

#ifndef SPECEE_NN_SVM_HH
#define SPECEE_NN_SVM_HH

#include "nn/dataset.hh"
#include "tensor/matrix.hh"

namespace specee::nn {

/** Linear SVM binary classifier (labels {0,1} mapped to {-1,+1}). */
class LinearSvm
{
  public:
    LinearSvm() = default;
    explicit LinearSvm(size_t dim) : w_(dim, 0.0f) {}

    /** Signed margin w.x + b. */
    float margin(tensor::CSpan x) const;

    /** Predicted class (margin > 0). */
    bool predict(tensor::CSpan x) const { return margin(x) > 0.0f; }

    /**
     * SGD training on hinge loss.
     * @param lambda L2 regularization strength
     */
    void fit(const Dataset &data, int epochs = 40, double lr = 1e-2,
             double lambda = 1e-4, uint64_t seed = 1);

    /** Classification accuracy on a dataset. */
    double accuracy(const Dataset &data) const;

    size_t dim() const { return w_.size(); }

  private:
    tensor::Vec w_;
    float b_ = 0.0f;
};

} // namespace specee::nn

#endif // SPECEE_NN_SVM_HH
