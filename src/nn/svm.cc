#include "nn/svm.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace specee::nn {

float
LinearSvm::margin(tensor::CSpan x) const
{
    specee_assert(x.size() == w_.size(), "svm dim mismatch");
    float acc = b_;
    for (size_t i = 0; i < w_.size(); ++i)
        acc += w_[i] * x[i];
    return acc;
}

void
LinearSvm::fit(const Dataset &data, int epochs, double lr, double lambda,
               uint64_t seed)
{
    specee_assert(!data.empty(), "svm fit on empty data");
    if (w_.empty())
        w_.assign(data.dim(), 0.0f);
    specee_assert(w_.size() == data.dim(), "svm fit dim mismatch");

    Rng rng(seed);
    std::vector<size_t> order(data.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (int e = 0; e < epochs; ++e) {
        rng.shuffle(order);
        const double step = lr / (1.0 + 0.1 * e);
        for (size_t i : order) {
            tensor::CSpan x = data.features(i);
            const float y = data.label(i) > 0.5f ? 1.0f : -1.0f;
            const float m = margin(x) * y;
            // L2 shrinkage.
            for (auto &w : w_)
                w -= static_cast<float>(step * lambda) * w;
            if (m < 1.0f) {
                for (size_t d = 0; d < w_.size(); ++d)
                    w_[d] += static_cast<float>(step) * y * x[d];
                b_ += static_cast<float>(step) * y;
            }
        }
    }
}

double
LinearSvm::accuracy(const Dataset &data) const
{
    if (data.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        if (predict(data.features(i)) == (data.label(i) > 0.5f))
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

} // namespace specee::nn
