/**
 * @file
 * Fully-connected layer with backward pass and Adam state.
 */

#ifndef SPECEE_NN_LINEAR_HH
#define SPECEE_NN_LINEAR_HH

#include "tensor/matrix.hh"
#include "util/rng.hh"

namespace specee::nn {

/**
 * Dense layer y = W x + b with gradient accumulation and an Adam
 * update step. Sized for the tiny exit-predictor MLPs (inputs of a
 * few dozen dims), so no batching inside the layer.
 */
class Linear
{
  public:
    Linear() = default;

    /** He-initialized layer of shape (out_dim x in_dim). */
    Linear(size_t in_dim, size_t out_dim, Rng &rng);

    /** Forward: out = W x + b. */
    void forward(tensor::CSpan x, tensor::Span out) const;

    /**
     * Backward for one sample: accumulates dW, db from d_out and
     * writes d_x (may be empty for the first layer).
     */
    void backward(tensor::CSpan x, tensor::CSpan d_out, tensor::Span d_x);

    /** Zero accumulated gradients. */
    void zeroGrad();

    /** Adam step over accumulated gradients (divided by batch). */
    void adamStep(double lr, double beta1, double beta2, double eps,
                  int t, size_t batch);

    size_t inDim() const { return w_.cols(); }
    size_t outDim() const { return w_.rows(); }

    /** Number of parameters (weights + biases). */
    size_t paramCount() const { return w_.size() + b_.size(); }

    tensor::Matrix &weights() { return w_; }
    const tensor::Matrix &weights() const { return w_; }
    tensor::Vec &bias() { return b_; }
    const tensor::Vec &bias() const { return b_; }

  private:
    tensor::Matrix w_;
    tensor::Vec b_;
    tensor::Matrix gw_;
    tensor::Vec gb_;
    // Adam moments
    tensor::Matrix mw_, vw_;
    tensor::Vec mb_, vb_;
};

} // namespace specee::nn

#endif // SPECEE_NN_LINEAR_HH
