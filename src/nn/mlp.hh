/**
 * @file
 * Lightweight MLP binary classifier — the SpecEE exit predictor (§4.3.2).
 *
 * The paper's optimal configuration is a 2-layer MLP with hidden
 * dimension 512, ReLU activations and a sigmoid output, trained with
 * binary cross-entropy. Depth and width are configurable to support
 * the design-space exploration of Fig. 8.
 */

#ifndef SPECEE_NN_MLP_HH
#define SPECEE_NN_MLP_HH

#include <iosfwd>
#include <vector>

#include "nn/dataset.hh"
#include "nn/linear.hh"

namespace specee::nn {

/** Training hyper-parameters and results. */
struct TrainConfig
{
    int epochs = 30;
    size_t batch = 32;
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    uint64_t seed = 1;
};

/** Outcome of a training run. */
struct TrainStats
{
    double final_loss = 0.0;
    double train_accuracy = 0.0;
    int epochs_run = 0;
};

/**
 * MLP binary classifier with sigmoid output.
 *
 * Architecture: dims = {in, h1, ..., 1}; ReLU between hidden layers.
 * "Layers" in the paper's Fig. 8 counts weight matrices, so the
 * 2-layer/512-hidden optimum is dims {12, 512, 1}.
 */
class Mlp
{
  public:
    Mlp() = default;

    /** Build from layer dimensions, e.g. {12, 512, 1}. */
    Mlp(const std::vector<size_t> &dims, uint64_t seed);

    /** Probability of the positive class for one sample. */
    float predict(tensor::CSpan x) const;

    /** Pre-sigmoid logit for one sample. */
    float forwardLogit(tensor::CSpan x) const;

    /** One Adam epoch over the dataset; returns mean BCE loss. */
    double trainEpoch(const Dataset &data, const TrainConfig &cfg,
                      Rng &rng, int &adam_t);

    /** Full training loop. */
    TrainStats fit(const Dataset &data, const TrainConfig &cfg);

    /** Classification accuracy at `threshold` on a dataset. */
    double accuracy(const Dataset &data, float threshold = 0.5f) const;

    /** Total parameter count. */
    size_t paramCount() const;

    /** Multiply-accumulate operations per inference. */
    size_t flopsPerInference() const;

    size_t inputDim() const
    {
        return layers_.empty() ? 0 : layers_.front().inDim();
    }

    /** Number of weight matrices (the paper's "layers"). */
    size_t depth() const { return layers_.size(); }

    /**
     * Serialize weights to a binary stream (magic + dims + fp32
     * payload). Adam state is not persisted — a loaded model is for
     * inference or fresh fine-tuning.
     */
    void save(std::ostream &os) const;

    /** Deserialize a model previously written by save(). */
    static Mlp load(std::istream &is);

  private:
    std::vector<Linear> layers_;
    // Scratch activations for training; inference uses stack-local
    // buffers so a shared trained bank is safe to query concurrently.
    std::vector<tensor::Vec> act_;
    std::vector<tensor::Vec> dact_;
};

} // namespace specee::nn

#endif // SPECEE_NN_MLP_HH
