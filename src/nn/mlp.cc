#include "nn/mlp.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::nn {

Mlp::Mlp(const std::vector<size_t> &dims, uint64_t seed)
{
    specee_assert(dims.size() >= 2, "MLP needs at least input/output dims");
    specee_assert(dims.back() == 1, "binary classifier must end in 1 unit");
    Rng rng(seed);
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
    act_.resize(layers_.size());
    dact_.resize(layers_.size());
    for (size_t i = 0; i < layers_.size(); ++i) {
        act_[i].assign(layers_[i].outDim(), 0.0f);
        dact_[i].assign(layers_[i].outDim(), 0.0f);
    }
}

float
Mlp::forwardLogit(tensor::CSpan x) const
{
    specee_assert(!layers_.empty(), "forward on empty MLP");
    // Inference scratch is thread-local: one trained bank is shared
    // read-only by every serving worker, so predict() must not touch
    // the shared act_ buffers (those are for training only). resize()
    // without zeroing is safe — Linear::forward overwrites out fully.
    static thread_local tensor::Vec ping, pong;
    tensor::CSpan cur = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        tensor::Vec &out = i % 2 == 0 ? ping : pong;
        out.resize(layers_[i].outDim());
        layers_[i].forward(cur, out);
        if (i + 1 < layers_.size())
            tensor::relu(out);
        cur = out;
    }
    return cur[0];
}

float
Mlp::predict(tensor::CSpan x) const
{
    return tensor::sigmoid(forwardLogit(x));
}

double
Mlp::trainEpoch(const Dataset &data, const TrainConfig &cfg, Rng &rng,
                int &adam_t)
{
    std::vector<size_t> order(data.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    double total_loss = 0.0;
    size_t batch_fill = 0;
    for (auto &l : layers_)
        l.zeroGrad();

    // Retained pre-activation inputs per layer for backward.
    std::vector<tensor::Vec> inputs(layers_.size());

    for (size_t oi = 0; oi < order.size(); ++oi) {
        const size_t i = order[oi];
        tensor::CSpan x = data.features(i);
        const float y = data.label(i);

        // Forward, retaining layer inputs.
        tensor::CSpan cur = x;
        for (size_t li = 0; li < layers_.size(); ++li) {
            inputs[li].assign(cur.begin(), cur.end());
            layers_[li].forward(cur, act_[li]);
            if (li + 1 < layers_.size())
                tensor::relu(act_[li]);
            cur = act_[li];
        }
        const float logit = act_.back()[0];
        const float p = tensor::sigmoid(logit);
        const float pc = std::clamp(p, 1e-7f, 1.0f - 1e-7f);
        total_loss += -(y * std::log(pc) + (1.0f - y) * std::log(1.0f - pc));

        // Backward. dL/dlogit = p - y for sigmoid+BCE.
        dact_.back()[0] = p - y;
        for (size_t li = layers_.size(); li-- > 0;) {
            tensor::Span d_x = li > 0 ? tensor::Span(dact_[li - 1])
                                      : tensor::Span();
            layers_[li].backward(inputs[li], dact_[li], d_x);
            if (li > 0) {
                // Backprop through the ReLU of the previous layer.
                for (size_t k = 0; k < dact_[li - 1].size(); ++k) {
                    if (act_[li - 1][k] <= 0.0f)
                        dact_[li - 1][k] = 0.0f;
                }
            }
        }

        if (++batch_fill == cfg.batch || oi + 1 == order.size()) {
            ++adam_t;
            for (auto &l : layers_)
                l.adamStep(cfg.lr, cfg.beta1, cfg.beta2, cfg.eps, adam_t,
                           batch_fill);
            for (auto &l : layers_)
                l.zeroGrad();
            batch_fill = 0;
        }
    }
    return total_loss / static_cast<double>(data.size());
}

TrainStats
Mlp::fit(const Dataset &data, const TrainConfig &cfg)
{
    specee_assert(!data.empty(), "fit on empty dataset");
    specee_assert(data.dim() == inputDim(),
                  "dataset dim %zu != MLP input %zu", data.dim(),
                  inputDim());
    Rng rng(cfg.seed);
    TrainStats stats;
    int adam_t = 0;
    for (int e = 0; e < cfg.epochs; ++e) {
        stats.final_loss = trainEpoch(data, cfg, rng, adam_t);
        stats.epochs_run = e + 1;
    }
    stats.train_accuracy = accuracy(data);
    return stats;
}

double
Mlp::accuracy(const Dataset &data, float threshold) const
{
    if (data.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        const bool pred = predict(data.features(i)) > threshold;
        const bool truth = data.label(i) > 0.5f;
        if (pred == truth)
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

size_t
Mlp::paramCount() const
{
    size_t n = 0;
    for (const auto &l : layers_)
        n += l.paramCount();
    return n;
}

size_t
Mlp::flopsPerInference() const
{
    size_t n = 0;
    for (const auto &l : layers_)
        n += 2 * l.inDim() * l.outDim();
    return n;
}

namespace {

constexpr uint32_t kMlpMagic = 0x5eec41fe;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    specee_assert(static_cast<bool>(is), "truncated MLP stream");
    return v;
}

} // namespace

void
Mlp::save(std::ostream &os) const
{
    writePod(os, kMlpMagic);
    writePod(os, static_cast<uint32_t>(layers_.size() + 1));
    writePod(os, static_cast<uint32_t>(inputDim()));
    for (const auto &l : layers_)
        writePod(os, static_cast<uint32_t>(l.outDim()));
    for (const auto &l : layers_) {
        const auto &w = l.weights();
        os.write(reinterpret_cast<const char *>(w.data()),
                 static_cast<std::streamsize>(w.byteSize()));
        os.write(reinterpret_cast<const char *>(l.bias().data()),
                 static_cast<std::streamsize>(l.bias().size() *
                                              sizeof(float)));
    }
    specee_assert(static_cast<bool>(os), "MLP save failed");
}

Mlp
Mlp::load(std::istream &is)
{
    const uint32_t magic = readPod<uint32_t>(is);
    specee_assert(magic == kMlpMagic, "bad MLP magic 0x%x", magic);
    const uint32_t n_dims = readPod<uint32_t>(is);
    specee_assert(n_dims >= 2 && n_dims < 64, "bad MLP depth %u",
                  n_dims);
    std::vector<size_t> dims;
    for (uint32_t i = 0; i < n_dims; ++i)
        dims.push_back(readPod<uint32_t>(is));
    Mlp mlp(dims, /*seed=*/0);
    for (auto &l : mlp.layers_) {
        auto &w = l.weights();
        is.read(reinterpret_cast<char *>(w.data()),
                static_cast<std::streamsize>(w.byteSize()));
        is.read(reinterpret_cast<char *>(l.bias().data()),
                static_cast<std::streamsize>(l.bias().size() *
                                             sizeof(float)));
        specee_assert(static_cast<bool>(is), "truncated MLP payload");
    }
    return mlp;
}

} // namespace specee::nn
