#include "tensor/weight_store.hh"

#include <algorithm>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::tensor {

const char *
weightBackendName(WeightBackend b)
{
    switch (b) {
    case WeightBackend::Fp32:
        return "fp32";
    case WeightBackend::Q8:
        return "q8";
    case WeightBackend::Q4:
        return "q4";
    }
    specee_panic("bad weight backend %d", static_cast<int>(b));
}

WeightBackend
parseWeightBackend(const std::string &name)
{
    if (name == "fp32" || name == "fp16" || name == "dense")
        return WeightBackend::Fp32;
    if (name == "q8" || name == "int8")
        return WeightBackend::Q8;
    if (name == "q4" || name == "int4" || name == "awq")
        return WeightBackend::Q4;
    specee_fatal("unknown weight backend '%s' (want fp32/q8/q4)",
                 name.c_str());
}

double
modeledBitsPerWeight(WeightBackend b)
{
    switch (b) {
    case WeightBackend::Fp32:
        return 16.0; // served as fp16
    case WeightBackend::Q8:
        return 8.0; // per-row scale amortizes out at true dims
    case WeightBackend::Q4:
        return 4.5; // 4-bit payload + per-group scale/min
    }
    specee_panic("bad weight backend %d", static_cast<int>(b));
}

double
weightCompression(WeightBackend b)
{
    return modeledBitsPerWeight(b) / 16.0;
}

void
WeightStore::copyRow(size_t r, Span out) const
{
    specee_assert(out.size() == cols(), "copyRow size mismatch");
    for (size_t c = 0; c < cols(); ++c)
        out[c] = at(r, c);
}

void
WeightStore::addScaledColumn(size_t c, float scale, Span out) const
{
    specee_assert(out.size() == rows(),
                  "addScaledColumn size mismatch");
    for (size_t r = 0; r < rows(); ++r)
        out[r] += scale * at(r, c);
}

std::unique_ptr<WeightStore>
makeWeightStore(Matrix dense, WeightBackend backend)
{
    switch (backend) {
    case WeightBackend::Fp32:
        return std::make_unique<Fp32Store>(std::move(dense));
    case WeightBackend::Q8:
        return std::make_unique<Q8Store>(dense);
    case WeightBackend::Q4:
        return std::make_unique<Q4Store>(dense);
    }
    specee_panic("bad weight backend %d", static_cast<int>(backend));
}

void
Fp32Store::gemv(CSpan x, Span y) const
{
    tensor::gemv(m_, x, y);
}

void
Fp32Store::gemvRows(const std::vector<int> &rows, CSpan x, Span y) const
{
    tensor::gemvRows(m_, rows, x, y);
}

float
Fp32Store::rowDot(size_t r, CSpan x) const
{
    specee_assert(r < m_.rows() && x.size() == m_.cols(),
                  "fp32 rowDot shape mismatch");
    return tensor::dot(m_.row(r), x);
}

void
Fp32Store::copyRow(size_t r, Span out) const
{
    specee_assert(out.size() == m_.cols(), "copyRow size mismatch");
    CSpan row = m_.row(r);
    std::copy(row.begin(), row.end(), out.begin());
}

void
Fp32Store::addScaledColumn(size_t c, float scale, Span out) const
{
    specee_assert(out.size() == m_.rows(),
                  "addScaledColumn size mismatch");
    const size_t stride = m_.cols();
    const float *base = m_.data() + c;
    for (size_t r = 0; r < m_.rows(); ++r)
        out[r] += scale * base[r * stride];
}

} // namespace specee::tensor
