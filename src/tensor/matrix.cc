#include "tensor/matrix.hh"

#include <algorithm>

namespace specee::tensor {

Matrix::Matrix(size_t rows, size_t cols, float init)
    : rows_(rows), cols_(cols), data_(rows * cols, init)
{
}

void
Matrix::resize(size_t rows, size_t cols, float init)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, init);
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

} // namespace specee::tensor
