/**
 * @file
 * WeightStore — the pluggable weight-matrix backend.
 *
 * One weight matrix can be held dense fp32, row-quantized int8, or
 * group-quantized int4; every consumer in the model stack (attention
 * and FFN projections, the tied LM head, the sparse-FFN row/column
 * access paths) talks to this interface instead of a concrete
 * storage class, so a whole model loads under any backend from one
 * EngineConfig knob. The SpecEE lever (fewer layers read per token)
 * and the quantization lever (fewer bytes per layer read) compound:
 * hw::CostModel prices the compressed weight traffic, and the serving
 * batch scheduler amortizes the compressed shared read.
 *
 * Matrix (fp32), Q8Matrix and Q4Matrix provide the concrete kernels
 * (gemv, gemvRows, rowDot, byteSize); the adapters here box them
 * behind the virtual interface. Inner loops run on the SIMD-dispatch
 * kernels of tensor/simd.hh.
 */

#ifndef SPECEE_TENSOR_WEIGHT_STORE_HH
#define SPECEE_TENSOR_WEIGHT_STORE_HH

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hh"
#include "tensor/quant.hh"

namespace specee::tensor {

/** Storage backend for one weight matrix (and for a whole model). */
enum class WeightBackend : int {
    Fp32 = 0, ///< dense float (modeled as fp16 on device)
    Q8,       ///< row-quantized int8, per-row fp32 scale
    Q4,       ///< group-quantized int4 (AWQ-style, group 32)
};

/** Canonical name ("fp32" / "q8" / "q4"). */
const char *weightBackendName(WeightBackend b);

/** Parse a backend name; fatal on an unknown name. */
WeightBackend parseWeightBackend(const std::string &name);

/**
 * Bits per weight the deployment-scale cost/memory models charge for
 * this backend: fp16 for dense (GPU serving ships fp16, the fp32 sim
 * storage is a functional detail), 8 for Q8 (per-row scales amortize
 * to nothing at true dims), 4.5 for Q4 (4-bit payload + per-group
 * scale/min).
 */
double modeledBitsPerWeight(WeightBackend b);

/** Weight-traffic compression vs fp16: modeledBits(b) / 16. */
double weightCompression(WeightBackend b);

/**
 * Backend-agnostic weight matrix: the uniform GEMV/row-access
 * interface every model component programs against.
 */
class WeightStore
{
  public:
    virtual ~WeightStore() = default;

    virtual WeightBackend backend() const = 0;
    virtual size_t rows() const = 0;
    virtual size_t cols() const = 0;

    /** Actual packed storage footprint in bytes (functional). */
    virtual size_t byteSize() const = 0;

    /** y = W x (dequantize-on-the-fly for compressed backends). */
    virtual void gemv(CSpan x, Span y) const = 0;

    /** y[i] = W.row(rows[i]) . x — the speculative LM head slice. */
    virtual void gemvRows(const std::vector<int> &rows, CSpan x,
                          Span y) const = 0;

    /** Dot of row r with x (sparse row access). */
    virtual float rowDot(size_t r, CSpan x) const = 0;

    /** Dequantized single element. */
    virtual float at(size_t r, size_t c) const = 0;

    /** Dequantize row r into out (out.size() == cols()). */
    virtual void copyRow(size_t r, Span out) const;

    /** out += scale * column c (sparse down-projection accumulate). */
    virtual void addScaledColumn(size_t c, float scale, Span out) const;
};

/**
 * Quantize (or move) a dense matrix into a store of the requested
 * backend. The dense source is dropped for compressed backends.
 */
std::unique_ptr<WeightStore> makeWeightStore(Matrix dense,
                                             WeightBackend backend);

/** Dense fp32 store (zero-copy over Matrix; exact). */
class Fp32Store final : public WeightStore
{
  public:
    explicit Fp32Store(Matrix m) : m_(std::move(m)) {}

    WeightBackend backend() const override { return WeightBackend::Fp32; }
    size_t rows() const override { return m_.rows(); }
    size_t cols() const override { return m_.cols(); }
    size_t byteSize() const override { return m_.byteSize(); }
    void gemv(CSpan x, Span y) const override;
    void gemvRows(const std::vector<int> &rows, CSpan x,
                  Span y) const override;
    float rowDot(size_t r, CSpan x) const override;
    float at(size_t r, size_t c) const override { return m_.at(r, c); }
    void copyRow(size_t r, Span out) const override;
    void addScaledColumn(size_t c, float scale, Span out) const override;

    const Matrix &matrix() const { return m_; }

  private:
    Matrix m_;
};

/** Row-quantized int8 store. */
class Q8Store final : public WeightStore
{
  public:
    explicit Q8Store(const Matrix &m) : q_(Q8Matrix::quantize(m)) {}

    WeightBackend backend() const override { return WeightBackend::Q8; }
    size_t rows() const override { return q_.rows(); }
    size_t cols() const override { return q_.cols(); }
    size_t byteSize() const override { return q_.byteSize(); }
    void gemv(CSpan x, Span y) const override { q_.gemv(x, y); }
    void gemvRows(const std::vector<int> &rows, CSpan x,
                  Span y) const override
    {
        q_.gemvRows(rows, x, y);
    }
    float rowDot(size_t r, CSpan x) const override
    {
        return q_.rowDot(r, x);
    }
    float at(size_t r, size_t c) const override { return q_.at(r, c); }

  private:
    Q8Matrix q_;
};

/** Group-quantized int4 store. */
class Q4Store final : public WeightStore
{
  public:
    explicit Q4Store(const Matrix &m) : q_(Q4Matrix::quantize(m)) {}

    WeightBackend backend() const override { return WeightBackend::Q4; }
    size_t rows() const override { return q_.rows(); }
    size_t cols() const override { return q_.cols(); }
    size_t byteSize() const override { return q_.byteSize(); }
    void gemv(CSpan x, Span y) const override { q_.gemv(x, y); }
    void gemvRows(const std::vector<int> &rows, CSpan x,
                  Span y) const override
    {
        q_.gemvRows(rows, x, y);
    }
    float rowDot(size_t r, CSpan x) const override
    {
        return q_.rowDot(r, x);
    }
    float at(size_t r, size_t c) const override { return q_.at(r, c); }

  private:
    Q4Matrix q_;
};

} // namespace specee::tensor

#endif // SPECEE_TENSOR_WEIGHT_STORE_HH
