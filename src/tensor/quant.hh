/**
 * @file
 * Group-wise INT4 and row-wise INT8 weight quantization.
 *
 * Q4Matrix implements AWQ/llama.cpp-style 4-bit group quantization
 * (group size 32, per-group fp32 scale + minimum, asymmetric) and a
 * dequantize-on-the-fly GEMV. This is the real kernel behind the
 * "AWQ" and "llama.cpp" baseline engines; the hw::CostModel prices it
 * at one quarter of the fp16 weight traffic.
 */

#ifndef SPECEE_TENSOR_QUANT_HH
#define SPECEE_TENSOR_QUANT_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace specee::tensor {

/** Values per quantization group. */
constexpr size_t kQ4GroupSize = 32;

/**
 * 4-bit group-quantized matrix (asymmetric, per-group scale + min).
 *
 * Each group of 32 consecutive values in a row is stored as 16 packed
 * bytes plus an fp32 (scale, min) pair: v ~= min + scale * q, q in
 * [0, 15]. Rows are padded up to a whole number of groups.
 */
class Q4Matrix
{
  public:
    Q4Matrix() = default;

    /** Quantize a dense matrix. */
    static Q4Matrix quantize(const Matrix &m);

    /** Reconstruct the dense approximation. */
    Matrix dequantize() const;

    /** Dequantized single element (for tests / sparse access). */
    float at(size_t r, size_t c) const;

    /** y = W~ x where W~ is the dequantized matrix. */
    void gemv(CSpan x, Span y) const;

    /** Sliced GEMV over selected rows (speculative LM head on Q4). */
    void gemvRows(const std::vector<int> &rows, CSpan x, Span y) const;

    /** Dot of (dequantized) row r with x. */
    float rowDot(size_t r, CSpan x) const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Actual packed storage footprint in bytes. */
    size_t byteSize() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t groupsPerRow_ = 0;
    std::vector<uint8_t> packed_;  // 16 bytes per group
    std::vector<float> scale_;     // per group
    std::vector<float> minv_;      // per group
};

/**
 * 8-bit row-quantized matrix (symmetric, per-row scale).
 */
class Q8Matrix
{
  public:
    Q8Matrix() = default;

    static Q8Matrix quantize(const Matrix &m);
    Matrix dequantize() const;

    /** Dequantized single element (for tests / sparse access). */
    float at(size_t r, size_t c) const;

    void gemv(CSpan x, Span y) const;

    /** Sliced GEMV over selected rows (speculative LM head on Q8). */
    void gemvRows(const std::vector<int> &rows, CSpan x, Span y) const;

    /** Dot of (dequantized) row r with x. */
    float rowDot(size_t r, CSpan x) const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t byteSize() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<int8_t> q_;
    std::vector<float> scale_;
};

} // namespace specee::tensor

#endif // SPECEE_TENSOR_QUANT_HH
