/**
 * @file
 * Dense row-major float matrix and vector span aliases.
 *
 * The functional simulator only needs fp32 2-D tensors; everything
 * higher-dimensional (heads, layers) is expressed as collections of
 * matrices. Kept deliberately minimal — no expression templates.
 */

#ifndef SPECEE_TENSOR_MATRIX_HH
#define SPECEE_TENSOR_MATRIX_HH

#include <cstddef>
#include <span>
#include <vector>

namespace specee::tensor {

/** Mutable float span. */
using Span = std::span<float>;
/** Immutable float span. */
using CSpan = std::span<const float>;
/** Owning float vector. */
using Vec = std::vector<float>;

/**
 * Dense row-major matrix of floats.
 *
 * Storage is a single contiguous std::vector so rows can be handed
 * out as spans with no copies.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct rows x cols, filled with `init`. */
    Matrix(size_t rows, size_t cols, float init = 0.0f);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Mutable element access (bounds-checked in debug via assert). */
    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Row r as a mutable span of length cols(). */
    Span row(size_t r) { return Span(data_.data() + r * cols_, cols_); }
    CSpan row(size_t r) const
    {
        return CSpan(data_.data() + r * cols_, cols_);
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Resize and zero-fill. */
    void resize(size_t rows, size_t cols, float init = 0.0f);

    /** Set every element to `v`. */
    void fill(float v);

    /** Bytes of fp32 payload (functional storage, not modeled memory). */
    size_t byteSize() const { return data_.size() * sizeof(float); }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace specee::tensor

#endif // SPECEE_TENSOR_MATRIX_HH
