#include "tensor/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SPECEE_SIMD_X86 1
#include <immintrin.h>
#else
#define SPECEE_SIMD_X86 0
#endif

namespace specee::tensor::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

namespace {

float
dotF32Scalar(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

float
dotQ8Scalar(const int8_t *q, const float *x, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += static_cast<float>(q[i]) * x[i];
    return acc;
}

void
q4GroupDotScalar(const uint8_t *packed, const float *x, size_t n,
                 float &dot_q, float &sum_x)
{
    float dq = 0.0f, sx = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        const uint8_t qi = (i % 2 == 0) ? (packed[i / 2] & 0x0f)
                                        : (packed[i / 2] >> 4);
        dq += static_cast<float>(qi) * x[i];
        sx += x[i];
    }
    dot_q += dq;
    sum_x += sx;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels (per-function target attribute, so the file
// builds without -mavx2 and the scalar path stays usable on any CPU)
// ---------------------------------------------------------------------------

#if SPECEE_SIMD_X86

__attribute__((target("avx2,fma"))) float
hsum256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float
dotF32Avx2(const float *a, const float *b, size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    }
    float acc = hsum256(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

__attribute__((target("avx2,fma"))) float
dotQ8Avx2(const int8_t *q, const float *x, size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Widen 8 int8 weights to fp32 and FMA against x.
        const __m128i q8 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(q + i));
        const __m256i q32 = _mm256_cvtepi8_epi32(q8);
        acc = _mm256_fmadd_ps(_mm256_cvtepi32_ps(q32),
                              _mm256_loadu_ps(x + i), acc);
    }
    float r = hsum256(acc);
    for (; i < n; ++i)
        r += static_cast<float>(q[i]) * x[i];
    return r;
}

__attribute__((target("avx2,fma"))) void
q4GroupDotAvx2(const uint8_t *packed, const float *x, size_t n,
               float &dot_q, float &sum_x)
{
    if (n < 32) { // ragged tail group: scalar
        q4GroupDotScalar(packed, x, n, dot_q, sum_x);
        return;
    }
    // 16 packed bytes -> 32 nibbles, values [0,15]. Low nibble is the
    // even (first) element of each byte pair.
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(packed));
    const __m128i mask = _mm_set1_epi8(0x0f);
    const __m128i lo = _mm_and_si128(raw, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
    // Interleave back to storage order: lo[0] hi[0] lo[1] hi[1] ...
    const __m128i even = _mm_unpacklo_epi8(lo, hi); // elements 0..15
    const __m128i odd = _mm_unpackhi_epi8(lo, hi);  // elements 16..31
    __m256 dq = _mm256_setzero_ps();
    __m256 sx = _mm256_setzero_ps();
    const __m128i qparts[4] = {
        even, _mm_srli_si128(even, 8), odd, _mm_srli_si128(odd, 8)};
    for (int p = 0; p < 4; ++p) {
        const __m256i q32 = _mm256_cvtepu8_epi32(qparts[p]);
        const __m256 xv = _mm256_loadu_ps(x + 8 * p);
        dq = _mm256_fmadd_ps(_mm256_cvtepi32_ps(q32), xv, dq);
        sx = _mm256_add_ps(sx, xv);
    }
    dot_q += hsum256(dq);
    sum_x += hsum256(sx);
}

#endif // SPECEE_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/** Resolved level; -1 until first use. Relaxed atomics: resolution is
 *  idempotent, so a benign first-use race resolves to the same value. */
std::atomic<int> g_level{-1};

Level
resolveLevel()
{
    const char *env = std::getenv("SPECEE_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0)
        return Level::Scalar;
    if (env != nullptr && std::strcmp(env, "avx2") == 0) {
        if (detectLevel() != Level::Avx2) {
            specee_warn("SPECEE_SIMD=avx2 but CPU lacks AVX2; "
                        "using scalar kernels");
            return Level::Scalar;
        }
        return Level::Avx2;
    }
    if (env != nullptr && std::strcmp(env, "auto") != 0)
        specee_warn("unknown SPECEE_SIMD value '%s' (want scalar/avx2/"
                    "auto); auto-detecting", env);
    return detectLevel();
}

} // namespace

const char *
levelName(Level lvl)
{
    return lvl == Level::Avx2 ? "avx2" : "scalar";
}

Level
detectLevel()
{
#if SPECEE_SIMD_X86
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

Level
activeLevel()
{
    int lvl = g_level.load(std::memory_order_relaxed);
    if (lvl < 0) {
        lvl = static_cast<int>(resolveLevel());
        g_level.store(lvl, std::memory_order_relaxed);
    }
    return static_cast<Level>(lvl);
}

void
setLevel(Level lvl)
{
    if (lvl == Level::Avx2 && detectLevel() != Level::Avx2) {
        specee_warn("AVX2 kernels unavailable on this CPU; "
                    "using scalar");
        lvl = Level::Scalar;
    }
    g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

float
dotF32(const float *a, const float *b, size_t n)
{
#if SPECEE_SIMD_X86
    if (activeLevel() == Level::Avx2)
        return dotF32Avx2(a, b, n);
#endif
    return dotF32Scalar(a, b, n);
}

float
dotQ8(const int8_t *q, const float *x, size_t n)
{
#if SPECEE_SIMD_X86
    if (activeLevel() == Level::Avx2)
        return dotQ8Avx2(q, x, n);
#endif
    return dotQ8Scalar(q, x, n);
}

void
q4GroupDot(const uint8_t *packed, const float *x, size_t n,
           float &dot_q, float &sum_x)
{
#if SPECEE_SIMD_X86
    if (activeLevel() == Level::Avx2) {
        q4GroupDotAvx2(packed, x, n, dot_q, sum_x);
        return;
    }
#endif
    q4GroupDotScalar(packed, x, n, dot_q, sum_x);
}

} // namespace specee::tensor::simd
