#include "tensor/quant.hh"

#include <algorithm>
#include <cmath>

#include "tensor/simd.hh"
#include "util/logging.hh"

namespace specee::tensor {

Q4Matrix
Q4Matrix::quantize(const Matrix &m)
{
    Q4Matrix out;
    out.rows_ = m.rows();
    out.cols_ = m.cols();
    out.groupsPerRow_ = (m.cols() + kQ4GroupSize - 1) / kQ4GroupSize;
    const size_t n_groups = out.rows_ * out.groupsPerRow_;
    out.packed_.assign(n_groups * kQ4GroupSize / 2, 0);
    out.scale_.assign(n_groups, 0.0f);
    out.minv_.assign(n_groups, 0.0f);

    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t g = 0; g < out.groupsPerRow_; ++g) {
            const size_t c0 = g * kQ4GroupSize;
            const size_t c1 = std::min(c0 + kQ4GroupSize, m.cols());
            float lo = m.at(r, c0);
            float hi = lo;
            for (size_t c = c0; c < c1; ++c) {
                lo = std::min(lo, m.at(r, c));
                hi = std::max(hi, m.at(r, c));
            }
            const size_t gi = r * out.groupsPerRow_ + g;
            float scale = (hi - lo) / 15.0f;
            if (scale <= 0.0f)
                scale = 1.0f;
            out.scale_[gi] = scale;
            out.minv_[gi] = lo;
            uint8_t *dst = out.packed_.data() + gi * (kQ4GroupSize / 2);
            for (size_t c = c0; c < c1; ++c) {
                float q = std::round((m.at(r, c) - lo) / scale);
                uint8_t qi = static_cast<uint8_t>(
                    std::clamp(q, 0.0f, 15.0f));
                const size_t off = c - c0;
                if (off % 2 == 0)
                    dst[off / 2] |= qi;
                else
                    dst[off / 2] |= static_cast<uint8_t>(qi << 4);
            }
        }
    }
    return out;
}

float
Q4Matrix::at(size_t r, size_t c) const
{
    specee_assert(r < rows_ && c < cols_, "Q4Matrix::at out of range");
    const size_t g = c / kQ4GroupSize;
    const size_t off = c % kQ4GroupSize;
    const size_t gi = r * groupsPerRow_ + g;
    const uint8_t *src = packed_.data() + gi * (kQ4GroupSize / 2);
    uint8_t qi = (off % 2 == 0) ? (src[off / 2] & 0x0f)
                                : (src[off / 2] >> 4);
    return minv_[gi] + scale_[gi] * static_cast<float>(qi);
}

Matrix
Q4Matrix::dequantize() const
{
    Matrix m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m.at(r, c) = at(r, c);
    return m;
}

float
Q4Matrix::rowDot(size_t r, CSpan x) const
{
    specee_assert(r < rows_ && x.size() == cols_,
                  "Q4 rowDot shape mismatch");
    float acc = 0.0f;
    for (size_t g = 0; g < groupsPerRow_; ++g) {
        const size_t c0 = g * kQ4GroupSize;
        const size_t c1 = std::min(c0 + kQ4GroupSize, cols_);
        const size_t gi = r * groupsPerRow_ + g;
        const uint8_t *src = packed_.data() + gi * (kQ4GroupSize / 2);
        float dot_q = 0.0f;
        float sum_x = 0.0f;
        simd::q4GroupDot(src, x.data() + c0, c1 - c0, dot_q, sum_x);
        acc += scale_[gi] * dot_q + minv_[gi] * sum_x;
    }
    return acc;
}

void
Q4Matrix::gemv(CSpan x, Span y) const
{
    specee_assert(x.size() == cols_ && y.size() == rows_,
                  "Q4 gemv shape mismatch");
    for (size_t r = 0; r < rows_; ++r)
        y[r] = rowDot(r, x);
}

void
Q4Matrix::gemvRows(const std::vector<int> &rows, CSpan x, Span y) const
{
    specee_assert(x.size() == cols_ && y.size() == rows.size(),
                  "Q4 gemvRows shape mismatch");
    for (size_t i = 0; i < rows.size(); ++i) {
        specee_assert(rows[i] >= 0 &&
                      static_cast<size_t>(rows[i]) < rows_,
                      "Q4 gemvRows row out of range");
        y[i] = rowDot(static_cast<size_t>(rows[i]), x);
    }
}

size_t
Q4Matrix::byteSize() const
{
    return packed_.size() * sizeof(uint8_t) +
           scale_.size() * sizeof(float) + minv_.size() * sizeof(float);
}

Q8Matrix
Q8Matrix::quantize(const Matrix &m)
{
    Q8Matrix out;
    out.rows_ = m.rows();
    out.cols_ = m.cols();
    out.q_.resize(m.rows() * m.cols());
    out.scale_.resize(m.rows());
    for (size_t r = 0; r < m.rows(); ++r) {
        float mx = 0.0f;
        for (size_t c = 0; c < m.cols(); ++c)
            mx = std::max(mx, std::fabs(m.at(r, c)));
        float scale = mx > 0.0f ? mx / 127.0f : 1.0f;
        out.scale_[r] = scale;
        for (size_t c = 0; c < m.cols(); ++c) {
            float q = std::round(m.at(r, c) / scale);
            out.q_[r * m.cols() + c] = static_cast<int8_t>(
                std::clamp(q, -127.0f, 127.0f));
        }
    }
    return out;
}

Matrix
Q8Matrix::dequantize() const
{
    Matrix m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m.at(r, c) = scale_[r] * static_cast<float>(q_[r * cols_ + c]);
    return m;
}

float
Q8Matrix::at(size_t r, size_t c) const
{
    specee_assert(r < rows_ && c < cols_, "Q8Matrix::at out of range");
    return scale_[r] * static_cast<float>(q_[r * cols_ + c]);
}

float
Q8Matrix::rowDot(size_t r, CSpan x) const
{
    specee_assert(r < rows_ && x.size() == cols_,
                  "Q8 rowDot shape mismatch");
    return scale_[r] * simd::dotQ8(q_.data() + r * cols_, x.data(), cols_);
}

void
Q8Matrix::gemv(CSpan x, Span y) const
{
    specee_assert(x.size() == cols_ && y.size() == rows_,
                  "Q8 gemv shape mismatch");
    for (size_t r = 0; r < rows_; ++r)
        y[r] = rowDot(r, x);
}

void
Q8Matrix::gemvRows(const std::vector<int> &rows, CSpan x, Span y) const
{
    specee_assert(x.size() == cols_ && y.size() == rows.size(),
                  "Q8 gemvRows shape mismatch");
    for (size_t i = 0; i < rows.size(); ++i) {
        specee_assert(rows[i] >= 0 &&
                      static_cast<size_t>(rows[i]) < rows_,
                      "Q8 gemvRows row out of range");
        y[i] = rowDot(static_cast<size_t>(rows[i]), x);
    }
}

size_t
Q8Matrix::byteSize() const
{
    return q_.size() * sizeof(int8_t) + scale_.size() * sizeof(float);
}

} // namespace specee::tensor
