/**
 * @file
 * Math kernels used by the functional LLM simulator.
 *
 * Correctness-first kernels whose hot inner products (gemv/gemvRows/
 * dot) route through the runtime-dispatched SIMD loops in
 * tensor/simd.hh (AVX2 when the CPU has it, scalar otherwise);
 * paper-figure latencies are produced by the analytic hw::CostModel,
 * not by timing these loops.
 */

#ifndef SPECEE_TENSOR_KERNELS_HH
#define SPECEE_TENSOR_KERNELS_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "tensor/matrix.hh"

namespace specee::tensor {

/** y = W x with W (m x n), x (n), y (m). */
void gemv(const Matrix &w, CSpan x, Span y);

/** y = W^T x with W (m x n), x (m), y (n). */
void gemvT(const Matrix &w, CSpan x, Span y);

/**
 * Sliced GEMV: y[i] = W.row(rows[i]) . x — the speculative LM head.
 * Only |rows| rows of W are touched (the paper's ~10^4x search-space
 * reduction, Fig. 2(b)).
 */
void gemvRows(const Matrix &w, const std::vector<int> &rows, CSpan x,
              Span y);

/**
 * out = A B with A (m x k), B (k x n), out (m x n).
 * @pre `out` must not alias `a` or `b` (asserted): out is resized and
 * written in place, which would clobber an aliased operand.
 */
void gemm(const Matrix &a, const Matrix &b, Matrix &out);

/** Dot product (sizes must match). */
float dot(CSpan a, CSpan b);

/**
 * In-place numerically-stable softmax. A fully -inf input (fully
 * masked row) yields the uniform distribution instead of NaN.
 */
void softmax(Span x);

/** Softmax restricted to the first n entries of x. */
void softmax(Span x, size_t n);

/** Index of the maximum element. @pre x non-empty */
size_t argmax(CSpan x);

/**
 * Top-k (index, value) pairs in descending value order. Equal values
 * are ordered by ascending index, so the result is identical across
 * stdlib implementations (draft-token selection depends on it).
 */
std::vector<std::pair<int, float>> topk(CSpan x, size_t k);

/** RMSNorm: out = x / rms(x) * weight. */
void rmsnorm(CSpan x, CSpan weight, Span out, float eps = 1e-5f);

/** In-place SiLU activation x * sigmoid(x). */
void silu(Span x);

/** In-place ReLU. */
void relu(Span x);

/** Numerically-stable scalar sigmoid. */
float sigmoid(float x);

/** a += b. */
void addInplace(Span a, CSpan b);

/** x *= s. */
void scaleInplace(Span x, float s);

/** L2 norm. */
float norm2(CSpan x);

/**
 * Rotary position embedding applied in-place to one head-major vector
 * (pairs of adjacent dims rotated, llama convention with interleaved
 * halves per head).
 *
 * @param x      vector of length n_heads * head_dim
 * @param n_heads number of attention heads
 * @param head_dim per-head dimension (must be even)
 * @param pos    absolute token position
 */
void rope(Span x, size_t n_heads, size_t head_dim, size_t pos,
          float theta = 10000.0f);

} // namespace specee::tensor

#endif // SPECEE_TENSOR_KERNELS_HH
