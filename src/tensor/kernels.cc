#include "tensor/kernels.hh"

#include <algorithm>
#include <cmath>

#include "tensor/simd.hh"
#include "util/logging.hh"

namespace specee::tensor {

void
gemv(const Matrix &w, CSpan x, Span y)
{
    specee_assert(x.size() == w.cols() && y.size() == w.rows(),
                  "gemv shape mismatch: W %zux%zu, x %zu, y %zu",
                  w.rows(), w.cols(), x.size(), y.size());
    const size_t n = w.cols();
    for (size_t r = 0; r < w.rows(); ++r)
        y[r] = simd::dotF32(w.data() + r * n, x.data(), n);
}

void
gemvT(const Matrix &w, CSpan x, Span y)
{
    specee_assert(x.size() == w.rows() && y.size() == w.cols(),
                  "gemvT shape mismatch");
    std::fill(y.begin(), y.end(), 0.0f);
    const size_t n = w.cols();
    for (size_t r = 0; r < w.rows(); ++r) {
        const float *row = w.data() + r * n;
        const float xr = x[r];
        if (xr == 0.0f)
            continue;
        for (size_t c = 0; c < n; ++c)
            y[c] += row[c] * xr;
    }
}

void
gemvRows(const Matrix &w, const std::vector<int> &rows, CSpan x, Span y)
{
    specee_assert(x.size() == w.cols() && y.size() == rows.size(),
                  "gemvRows shape mismatch");
    const size_t n = w.cols();
    for (size_t i = 0; i < rows.size(); ++i) {
        specee_assert(rows[i] >= 0 &&
                      static_cast<size_t>(rows[i]) < w.rows(),
                      "gemvRows row %d out of range", rows[i]);
        y[i] = simd::dotF32(w.data() + static_cast<size_t>(rows[i]) * n,
                            x.data(), n);
    }
}

void
gemm(const Matrix &a, const Matrix &b, Matrix &out)
{
    specee_assert(a.cols() == b.rows(), "gemm shape mismatch");
    // out.resize() would clobber an operand's storage mid-read if the
    // caller aliased it; there is no temp-buffer path, so reject.
    specee_assert(&out != &a && &out != &b,
                  "gemm output must not alias an operand");
    out.resize(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.data() + k * b.cols();
            float *orow = out.data() + i * out.cols();
            for (size_t j = 0; j < b.cols(); ++j)
                orow[j] += aik * brow[j];
        }
    }
}

float
dot(CSpan a, CSpan b)
{
    specee_assert(a.size() == b.size(), "dot size mismatch");
    return simd::dotF32(a.data(), b.data(), a.size());
}

void
softmax(Span x)
{
    softmax(x, x.size());
}

void
softmax(Span x, size_t n)
{
    specee_assert(n > 0 && n <= x.size(), "softmax size");
    float mx = x[0];
    for (size_t i = 1; i < n; ++i)
        mx = std::max(mx, x[i]);
    // Degenerate input (every logit -inf, e.g. a fully-masked row):
    // x[i] - mx would be NaN and the sum 0, so return uniform — the
    // maximum-entropy distribution the limit converges to.
    if (std::isinf(mx) && mx < 0.0f) {
        std::fill(x.begin(), x.begin() + static_cast<long>(n),
                  1.0f / static_cast<float>(n));
        return;
    }
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        x[i] = std::exp(x[i] - mx);
        sum += x[i];
    }
    const float inv = 1.0f / sum;
    for (size_t i = 0; i < n; ++i)
        x[i] *= inv;
}

size_t
argmax(CSpan x)
{
    specee_assert(!x.empty(), "argmax of empty span");
    size_t best = 0;
    for (size_t i = 1; i < x.size(); ++i) {
        if (x[i] > x[best])
            best = i;
    }
    return best;
}

std::vector<std::pair<int, float>>
topk(CSpan x, size_t k)
{
    k = std::min(k, x.size());
    std::vector<std::pair<int, float>> idx(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        idx[i] = {static_cast<int>(i), x[i]};
    // Ties broken by index: std::partial_sort orders equal values
    // unspecified, which made draft-token selection differ across
    // stdlib implementations.
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                      idx.end(), [](const auto &a, const auto &b) {
                          if (a.second != b.second)
                              return a.second > b.second;
                          return a.first < b.first;
                      });
    idx.resize(k);
    return idx;
}

void
rmsnorm(CSpan x, CSpan weight, Span out, float eps)
{
    specee_assert(x.size() == weight.size() && x.size() == out.size(),
                  "rmsnorm size mismatch");
    float ss = 0.0f;
    for (float v : x)
        ss += v * v;
    const float inv = 1.0f / std::sqrt(ss / x.size() + eps);
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * inv * weight[i];
}

void
silu(Span x)
{
    for (auto &v : x)
        v = v * sigmoid(v);
}

void
relu(Span x)
{
    for (auto &v : x)
        v = std::max(0.0f, v);
}

float
sigmoid(float x)
{
    if (x >= 0.0f) {
        float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    float z = std::exp(x);
    return z / (1.0f + z);
}

void
addInplace(Span a, CSpan b)
{
    specee_assert(a.size() == b.size(), "addInplace size mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += b[i];
}

void
scaleInplace(Span x, float s)
{
    for (auto &v : x)
        v *= s;
}

float
norm2(CSpan x)
{
    float ss = 0.0f;
    for (float v : x)
        ss += v * v;
    return std::sqrt(ss);
}

void
rope(Span x, size_t n_heads, size_t head_dim, size_t pos, float theta)
{
    specee_assert(x.size() == n_heads * head_dim && head_dim % 2 == 0,
                  "rope shape mismatch");
    const size_t half = head_dim / 2;
    for (size_t h = 0; h < n_heads; ++h) {
        float *v = x.data() + h * head_dim;
        for (size_t i = 0; i < half; ++i) {
            const float freq =
                std::pow(theta, -static_cast<float>(2 * i) /
                                    static_cast<float>(head_dim));
            const float angle = static_cast<float>(pos) * freq;
            const float c = std::cos(angle);
            const float s = std::sin(angle);
            const float x0 = v[i];
            const float x1 = v[i + half];
            v[i] = x0 * c - x1 * s;
            v[i + half] = x0 * s + x1 * c;
        }
    }
}

} // namespace specee::tensor
