/**
 * @file
 * Runtime-dispatched SIMD inner loops for the hot tensor kernels.
 *
 * The functional simulator spends nearly all of its time in three
 * inner products: the fp32 row dot behind gemv/gemvRows/dot, the int8
 * row dot behind Q8Matrix, and the packed-nibble group dot behind
 * Q4Matrix. Each has an AVX2+FMA implementation selected once at
 * startup by CPUID (scalar everywhere else), so one binary runs
 * fast on AVX2 hosts and correctly on any x86-64 or non-x86 target.
 *
 * Dispatch control:
 *  - detection happens on first use (no static-init order hazards);
 *  - the SPECEE_SIMD environment variable ("scalar", "avx2", "auto")
 *    overrides detection, which is how CI runs the kernel-parity
 *    tests on both paths from one binary;
 *  - tests may call setLevel() directly (falls back to Scalar when
 *    the requested ISA is unavailable).
 *
 * Note the modeled paper-figure latencies come from hw::CostModel and
 * are byte-counted, so SIMD changes wall-clock of the simulator, not
 * any modeled result. Vector lanes reassociate float additions, so
 * kernel outputs may differ from scalar by normal rounding noise;
 * parity is asserted to tolerance in tests/test_weight_store.cc.
 */

#ifndef SPECEE_TENSOR_SIMD_HH
#define SPECEE_TENSOR_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace specee::tensor::simd {

/** Instruction-set level of the dispatched kernels. */
enum class Level : int {
    Scalar = 0, ///< portable reference loops
    Avx2,       ///< AVX2 + FMA (x86-64)
};

/** Short name ("scalar" / "avx2") for logs and tables. */
const char *levelName(Level lvl);

/** Highest level this CPU supports. */
Level detectLevel();

/**
 * Level the kernels currently dispatch to. First call resolves the
 * SPECEE_SIMD environment override, then CPUID detection.
 */
Level activeLevel();

/**
 * Force a dispatch level (tests / benchmarks). Requests for an
 * unsupported level fall back to Scalar. Not thread-safe against
 * concurrent kernel calls; call before spawning workers.
 */
void setLevel(Level lvl);

/** sum_i a[i] * b[i] (fp32 gemv / attention-score inner loop). */
float dotF32(const float *a, const float *b, size_t n);

/** sum_i q[i] * x[i] with int8 weights (Q8 row dot, pre-scale). */
float dotQ8(const int8_t *q, const float *x, size_t n);

/**
 * One Q4 group: given 16 packed bytes holding 32 4-bit values
 * (low nibble first), accumulate dot_q += sum q[i]*x[i] and
 * sum_x += sum x[i] over the first `n` values (n <= 32; the last
 * group of a ragged row passes n < 32).
 */
void q4GroupDot(const uint8_t *packed, const float *x, size_t n,
                float &dot_q, float &sum_x);

} // namespace specee::tensor::simd

#endif // SPECEE_TENSOR_SIMD_HH
