#include "core/offline_scheduler.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace specee::core {

OfflineScheduler::OfflineScheduler(int n_exit_layers)
    : hist_(static_cast<size_t>(n_exit_layers), 0)
{
    specee_assert(n_exit_layers > 0, "need at least one exit layer");
}

void
OfflineScheduler::recordExit(int layer)
{
    specee_assert(layer >= 0 && layer < nExitLayers(),
                  "exit layer %d out of range", layer);
    ++hist_[static_cast<size_t>(layer)];
}

long
OfflineScheduler::totalExits() const
{
    return std::accumulate(hist_.begin(), hist_.end(), 0L);
}

std::vector<double>
OfflineScheduler::exitProbabilities() const
{
    const long total = totalExits();
    std::vector<double> p(hist_.size(), 0.0);
    if (total == 0)
        return p;
    for (size_t i = 0; i < hist_.size(); ++i)
        p[i] = static_cast<double>(hist_[i]) / static_cast<double>(total);
    return p;
}

namespace {

std::vector<int>
byFrequencyDesc(const std::vector<long> &hist)
{
    std::vector<int> order(hist.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return hist[static_cast<size_t>(a)] > hist[static_cast<size_t>(b)];
    });
    return order;
}

} // namespace

std::vector<int>
OfflineScheduler::hotLayers(double mass) const
{
    specee_assert(mass > 0.0 && mass <= 1.0, "bad mass %f", mass);
    const long total = totalExits();
    std::vector<int> out;
    if (total == 0)
        return out;
    auto order = byFrequencyDesc(hist_);
    long acc = 0;
    for (int l : order) {
        out.push_back(l);
        acc += hist_[static_cast<size_t>(l)];
        if (static_cast<double>(acc) >=
            mass * static_cast<double>(total)) {
            break;
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<int>
OfflineScheduler::topK(int k) const
{
    auto order = byFrequencyDesc(hist_);
    // Never return layers that were never observed exiting.
    while (!order.empty() &&
           hist_[static_cast<size_t>(order.back())] == 0) {
        order.pop_back();
    }
    order.resize(static_cast<size_t>(
        std::min(k, static_cast<int>(order.size()))));
    std::sort(order.begin(), order.end());
    return order;
}

double
OfflineScheduler::bottomMass(double frac) const
{
    const long total = totalExits();
    if (total == 0)
        return 0.0;
    auto order = byFrequencyDesc(hist_);
    std::reverse(order.begin(), order.end()); // ascending frequency
    const size_t n =
        static_cast<size_t>(frac * static_cast<double>(order.size()));
    long acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc += hist_[static_cast<size_t>(order[i])];
    return static_cast<double>(acc) / static_cast<double>(total);
}

} // namespace specee::core
