/**
 * @file
 * Exit verification (§4.3.3): an exit is taken only when the global
 * argmax (full LM head at the exit layer) is one of the speculative
 * tokens. Local probabilities alone use only local information; this
 * check folds the global information back in.
 */

#ifndef SPECEE_CORE_VERIFIER_HH
#define SPECEE_CORE_VERIFIER_HH

#include <utility>
#include <vector>

#include "model/target_model.hh"

namespace specee::core {

/** Verification outcome. */
struct VerifyResult
{
    bool verified = false; ///< global argmax equals the local result
    int token = -1;        ///< the global argmax token
};

/** Stateless verification algorithm. */
class Verifier
{
  public:
    /**
     * Fig. 5 algorithm: T' = the local result (speculative token with
     * the highest sliced logit), T = the global result (full-vocab
     * argmax); exit iff T == T'.
     *
     * @param local_best the local result T' (argmax over spec tokens)
     */
    static VerifyResult verify(const model::TargetModel &tm,
                               int local_best);

    /**
     * Membership variant (looser; kept for ablation in tests):
     * verified iff the global argmax is anywhere in the set.
     */
    static VerifyResult verifyMembership(
        const model::TargetModel &tm,
        const std::vector<int> &spec_tokens);
};

} // namespace specee::core

#endif // SPECEE_CORE_VERIFIER_HH
