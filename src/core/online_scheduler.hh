/**
 * @file
 * Online predictor scheduling (§5.3, Fig. 12): a circular queue of
 * the last N tokens' exit layers plus a per-layer counter array that
 * tracks how many recent exits each layer is within +/-radius of.
 * A predictor is activated online when its layer's counter is
 * nonzero; the engine unions this with the offline hot set.
 */

#ifndef SPECEE_CORE_ONLINE_SCHEDULER_HH
#define SPECEE_CORE_ONLINE_SCHEDULER_HH

#include <vector>

namespace specee::core {

/** Context-similarity-driven runtime predictor activation. */
class OnlineScheduler
{
  public:
    /**
     * @param n_exit_layers layers that can host a predictor
     * @param window        context span N (the paper uses 5)
     * @param radius        neighbourhood radius (the paper uses 2)
     */
    OnlineScheduler(int n_exit_layers, int window = 5, int radius = 2);

    /** Record the exit layer of the token just emitted. */
    void recordExit(int layer);

    /** True when layer is near one of the recent exits. */
    bool isActive(int layer) const;

    /** Currently active layer set (ascending). */
    std::vector<int> activeSet() const;

    /** Number of active layers. */
    int activeCount() const;

    /** Clear history (new sequence). */
    void reset();

    int window() const { return window_; }
    int radius() const { return radius_; }

    /** Occupied slots in the circular queue. */
    int filled() const { return filled_; }

  private:
    void applyContribution(int layer, int delta);

    int nLayers_;
    int window_;
    int radius_;
    std::vector<int> queue_; ///< circular buffer of recent exit layers
    int head_ = 0;           ///< next slot to overwrite
    int filled_ = 0;
    std::vector<int> counts_; ///< per-layer proximity counters
};

} // namespace specee::core

#endif // SPECEE_CORE_ONLINE_SCHEDULER_HH
