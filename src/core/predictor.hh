/**
 * @file
 * Per-layer exit-predictor bank (§4.3.2).
 *
 * One lightweight MLP per exitable layer (the paper deploys 31 for
 * Llama2-7B — no predictor after the final layer). The default
 * architecture is the Fig. 8 optimum: 2 weight layers, hidden 512.
 */

#ifndef SPECEE_CORE_PREDICTOR_HH
#define SPECEE_CORE_PREDICTOR_HH

#include <string>
#include <vector>

#include "nn/mlp.hh"

namespace specee::core {

/** Bank of per-layer exit predictors. */
class ExitPredictor
{
  public:
    /**
     * @param n_exit_layers predictors to instantiate (n_layers - 1)
     * @param feat_dim      input feature dimensionality (12)
     * @param hidden_dim    MLP hidden width (512)
     * @param depth         MLP weight layers (2)
     */
    ExitPredictor(int n_exit_layers, int feat_dim, int hidden_dim = 512,
                  int depth = 2, uint64_t seed = 0xec5);

    int nExitLayers() const { return static_cast<int>(mlps_.size()); }
    int featDim() const { return featDim_; }

    /** Exit probability at `layer` for the given features. */
    float score(int layer, tensor::CSpan feats) const;

    /** Threshold the score (the paper uses 0.5). */
    bool shouldExit(int layer, tensor::CSpan feats,
                    float threshold = 0.5f) const;

    nn::Mlp &mlp(int layer);
    const nn::Mlp &mlp(int layer) const;

    /** Parameters of a single predictor. */
    size_t paramsPerPredictor() const;

    /** Parameters across the whole bank. */
    size_t totalParams() const;

    /** MACs per single prediction. */
    size_t flopsPerPrediction() const;

    /**
     * Persist the trained bank to a file so deployments skip the
     * one-time training (§7.4.4: training is offline and happens
     * once per model).
     */
    void save(const std::string &path) const;

    /** Load a bank previously written by save(). */
    static ExitPredictor load(const std::string &path);

  private:
    ExitPredictor() = default;

    int featDim_ = 0;
    std::vector<nn::Mlp> mlps_;
};

} // namespace specee::core

#endif // SPECEE_CORE_PREDICTOR_HH
