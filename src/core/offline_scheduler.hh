/**
 * @file
 * Offline predictor scheduling (§5.3): profile the model once with
 * all predictors active, rank layers by exit frequency, and bake the
 * hot set into the model configuration. Reproduces the skewed
 * distribution exploitation of Fig. 10.
 */

#ifndef SPECEE_CORE_OFFLINE_SCHEDULER_HH
#define SPECEE_CORE_OFFLINE_SCHEDULER_HH

#include <vector>

namespace specee::core {

/** Exit-frequency histogram and hot-layer selection. */
class OfflineScheduler
{
  public:
    explicit OfflineScheduler(int n_exit_layers);

    /** Record one observed exit at `layer` during profiling. */
    void recordExit(int layer);

    /** Record a token that never exited (ran all layers). */
    void recordNoExit() { ++noExit_; }

    int nExitLayers() const
    {
        return static_cast<int>(hist_.size());
    }

    const std::vector<long> &histogram() const { return hist_; }

    /** Total recorded exits. */
    long totalExits() const;

    /** Exit probability per layer (normalized histogram). */
    std::vector<double> exitProbabilities() const;

    /**
     * Smallest layer set covering at least `mass` of the exit
     * probability, chosen greedily by frequency; ascending layer ids.
     */
    std::vector<int> hotLayers(double mass) const;

    /** Top-k layers by exit frequency; ascending layer ids. */
    std::vector<int> topK(int k) const;

    /**
     * Skewness check of Fig. 10(a): total probability mass held by
     * the bottom-`frac` fraction of layers (by frequency).
     */
    double bottomMass(double frac) const;

  private:
    std::vector<long> hist_;
    long noExit_ = 0;
};

} // namespace specee::core

#endif // SPECEE_CORE_OFFLINE_SCHEDULER_HH
