#include "core/hyper_token.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::core {

std::vector<HyperToken>
MergedMapping::build(const TokenTree &tree)
{
    std::vector<HyperToken> out;
    for (auto &path : tree.leafPaths()) {
        HyperToken h;
        h.node_ids = path;
        h.tokens = tree.pathTokens(path);
        out.push_back(std::move(h));
    }
    return out;
}

long
MergedMapping::independentMappingComplexity(const TokenTree &tree)
{
    // Width per level.
    std::vector<long> width;
    for (int i = 1; i < tree.size(); ++i) {
        const int d = tree.node(i).depth;
        if (static_cast<size_t>(d) > width.size())
            width.resize(static_cast<size_t>(d), 0);
        ++width[static_cast<size_t>(d - 1)];
    }
    long prod = 1;
    for (long w : width)
        prod *= std::max(1L, w);
    return prod;
}

long
MergedMapping::mergedMappingComplexity(const TokenTree &tree)
{
    return static_cast<long>(tree.leafPaths().size());
}

int
MergedMapping::cannikinExitLayer(const std::vector<int> &member_exits)
{
    specee_assert(!member_exits.empty(), "empty hyper-token");
    return *std::max_element(member_exits.begin(), member_exits.end());
}

void
MergedMapping::groupedSlicedLogits(
    const model::LmHead &head,
    const std::vector<tensor::CSpan> &path_hiddens,
    const std::vector<std::vector<int>> &path_candidates,
    std::vector<tensor::Vec> &out)
{
    head.grouped(path_hiddens, path_candidates, out);
}

} // namespace specee::core
