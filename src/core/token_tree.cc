#include "core/token_tree.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::core {

TokenTree::TokenTree(int root_token)
{
    nodes_.push_back(TreeNode{root_token, -1, 0});
}

int
TokenTree::addNode(int parent, int token)
{
    specee_assert(parent >= 0 && parent < size(), "bad parent %d", parent);
    nodes_.push_back(TreeNode{token, parent,
                              nodes_[static_cast<size_t>(parent)].depth + 1});
    return size() - 1;
}

const TreeNode &
TokenTree::node(int id) const
{
    specee_assert(id >= 0 && id < size(), "bad node id %d", id);
    return nodes_[static_cast<size_t>(id)];
}

int
TokenTree::depth() const
{
    int d = 0;
    for (const auto &n : nodes_)
        d = std::max(d, n.depth);
    return d;
}

std::vector<int>
TokenTree::children(int id) const
{
    std::vector<int> out;
    for (int i = 0; i < size(); ++i) {
        if (nodes_[static_cast<size_t>(i)].parent == id)
            out.push_back(i);
    }
    return out;
}

std::vector<std::vector<int>>
TokenTree::leafPaths() const
{
    std::vector<bool> has_child(static_cast<size_t>(size()), false);
    for (const auto &n : nodes_) {
        if (n.parent >= 0)
            has_child[static_cast<size_t>(n.parent)] = true;
    }
    std::vector<std::vector<int>> paths;
    for (int i = 1; i < size(); ++i) {
        if (has_child[static_cast<size_t>(i)])
            continue;
        std::vector<int> path;
        for (int cur = i; cur > 0;
             cur = nodes_[static_cast<size_t>(cur)].parent) {
            path.push_back(cur);
        }
        std::reverse(path.begin(), path.end());
        paths.push_back(std::move(path));
    }
    return paths;
}

std::vector<int>
TokenTree::pathTokens(const std::vector<int> &path) const
{
    std::vector<int> toks;
    toks.reserve(path.size());
    for (int id : path)
        toks.push_back(node(id).token);
    return toks;
}

TokenTree
TokenTree::draft(const model::DraftModel &dlm, int root_token,
                 const std::vector<model::TokenScript> &chain_scripts,
                 const std::vector<int> &widths, Rng &rng)
{
    TokenTree tree(root_token);
    int expand_id = 0;       // node whose continuation we draft next
    int expand_tok = root_token;
    bool on_true_chain = true;

    const size_t levels = std::min(widths.size(), chain_scripts.size());
    for (size_t d = 0; d < levels; ++d) {
        // The calibrated hit rate only applies when drafting the true
        // continuation; off-chain prefixes cannot contain it.
        const int true_target =
            on_true_chain ? chain_scripts[d].target : -1;
        auto cands = dlm.speculate(expand_tok, true_target,
                                   widths[static_cast<size_t>(d)], rng);
        int first_child = -1;
        for (int tok : cands) {
            int id = tree.addNode(expand_id, tok);
            if (first_child < 0)
                first_child = id;
        }
        // EAGLE-style: expand the draft's top-1 child.
        tree.chain_.push_back(first_child);
        expand_tok = tree.node(first_child).token;
        if (on_true_chain && expand_tok != chain_scripts[d].target)
            on_true_chain = false;
        expand_id = first_child;
    }
    return tree;
}

} // namespace specee::core
