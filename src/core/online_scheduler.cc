#include "core/online_scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::core {

OnlineScheduler::OnlineScheduler(int n_exit_layers, int window, int radius)
    : nLayers_(n_exit_layers),
      window_(window),
      radius_(radius),
      queue_(static_cast<size_t>(window), -1),
      counts_(static_cast<size_t>(n_exit_layers), 0)
{
    specee_assert(n_exit_layers > 0 && window > 0 && radius >= 0,
                  "bad online scheduler params");
}

void
OnlineScheduler::applyContribution(int layer, int delta)
{
    const int lo = std::max(0, layer - radius_);
    const int hi = std::min(nLayers_ - 1, layer + radius_);
    for (int l = lo; l <= hi; ++l)
        counts_[static_cast<size_t>(l)] += delta;
}

void
OnlineScheduler::recordExit(int layer)
{
    specee_assert(layer >= 0 && layer < nLayers_,
                  "exit layer %d out of range", layer);
    if (filled_ == window_) {
        // Evict the oldest entry's contribution.
        applyContribution(queue_[static_cast<size_t>(head_)], -1);
    } else {
        ++filled_;
    }
    queue_[static_cast<size_t>(head_)] = layer;
    head_ = (head_ + 1) % window_;
    applyContribution(layer, +1);
}

bool
OnlineScheduler::isActive(int layer) const
{
    specee_assert(layer >= 0 && layer < nLayers_,
                  "layer %d out of range", layer);
    return counts_[static_cast<size_t>(layer)] > 0;
}

std::vector<int>
OnlineScheduler::activeSet() const
{
    std::vector<int> out;
    for (int l = 0; l < nLayers_; ++l) {
        if (counts_[static_cast<size_t>(l)] > 0)
            out.push_back(l);
    }
    return out;
}

int
OnlineScheduler::activeCount() const
{
    int n = 0;
    for (int c : counts_)
        n += c > 0 ? 1 : 0;
    return n;
}

void
OnlineScheduler::reset()
{
    std::fill(queue_.begin(), queue_.end(), -1);
    std::fill(counts_.begin(), counts_.end(), 0);
    head_ = 0;
    filled_ = 0;
}

} // namespace specee::core
