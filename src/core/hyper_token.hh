/**
 * @file
 * Context-aware merged mapping (§6, Fig. 13): each root-to-leaf path
 * of the token tree is merged into a single hyper-token. The exit
 * layer of a hyper-token is the maximum over its members' exit layers
 * (Cannikin law), and the per-layer predictor features of all paths
 * are computed with one grouped (block-wise) sliced LM-head pass —
 * linear in the number of paths instead of exponential in the
 * per-node mapping.
 */

#ifndef SPECEE_CORE_HYPER_TOKEN_HH
#define SPECEE_CORE_HYPER_TOKEN_HH

#include <vector>

#include "core/token_tree.hh"
#include "model/lm_head.hh"

namespace specee::core {

/** One merged path of the token tree. */
struct HyperToken
{
    std::vector<int> node_ids; ///< path node ids (root excluded)
    std::vector<int> tokens;   ///< path tokens

    int length() const { return static_cast<int>(tokens.size()); }
};

/** Builds hyper-tokens and exposes the mapping-complexity counters. */
class MergedMapping
{
  public:
    /** Merge every leaf path of `tree` into a hyper-token. */
    static std::vector<HyperToken> build(const TokenTree &tree);

    /**
     * Predictor-mapping complexity of the naive per-node scheme: each
     * node is an independent search space, and decisions compose
     * multiplicatively along sibling groups — the product over levels
     * of the level widths (exponential in depth).
     */
    static long independentMappingComplexity(const TokenTree &tree);

    /**
     * Complexity of the merged scheme: one mapping per hyper-token
     * (linear in the number of leaf paths).
     */
    static long mergedMappingComplexity(const TokenTree &tree);

    /**
     * Cannikin exit layer of a path: the max of its members' exit
     * layers (a path can only be committed once every member has
     * converged).
     */
    static int cannikinExitLayer(const std::vector<int> &member_exits);

    /**
     * Grouped feature inputs: for each hyper-token, the sliced-logit
     * block pairing its last member's hidden state with its candidate
     * set. Semantically identical to per-path sliced calls; routed
     * through LmHead::grouped so the block-wise kernel is exercised.
     */
    static void groupedSlicedLogits(
        const model::LmHead &head,
        const std::vector<tensor::CSpan> &path_hiddens,
        const std::vector<std::vector<int>> &path_candidates,
        std::vector<tensor::Vec> &out);
};

} // namespace specee::core

#endif // SPECEE_CORE_HYPER_TOKEN_HH
