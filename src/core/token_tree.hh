/**
 * @file
 * Token tree for tree-based speculative decoding (§2.2, Fig. 13).
 *
 * The draft model proposes candidate continuations level by level;
 * the most probable child of each level is expanded further (the
 * EAGLE-style chain expansion). The target model verifies the whole
 * tree in one pass and accepts the longest root-anchored path whose
 * tokens match its own predictions.
 */

#ifndef SPECEE_CORE_TOKEN_TREE_HH
#define SPECEE_CORE_TOKEN_TREE_HH

#include <vector>

#include "model/draft_model.hh"
#include "model/target_model.hh"
#include "util/rng.hh"

namespace specee::core {

/** One node of the token tree. */
struct TreeNode
{
    int token = -1;
    int parent = -1; ///< -1 for the root
    int depth = 0;   ///< root = 0, first draft level = 1
};

/** Draft token tree rooted at the last committed token. */
class TokenTree
{
  public:
    explicit TokenTree(int root_token);

    /** Add a node; `parent` must already exist. @return node id */
    int addNode(int parent, int token);

    const TreeNode &node(int id) const;

    /** Nodes including the root. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** Draft tokens (nodes excluding the root). */
    int draftCount() const { return size() - 1; }

    int rootToken() const { return nodes_.front().token; }

    /** Levels in the tree (max depth). */
    int depth() const;

    /** Children ids of a node. */
    std::vector<int> children(int id) const;

    /**
     * All root-to-leaf paths as node-id sequences (root excluded).
     */
    std::vector<std::vector<int>> leafPaths() const;

    /** Tokens along a node-id path. */
    std::vector<int> pathTokens(const std::vector<int> &path) const;

    /** Ids of the chain that was expanded (first child per level). */
    const std::vector<int> &expandedChain() const { return chain_; }

    /**
     * Draft a tree: level d proposes `widths[d]` candidates for the
     * continuation of the expanded chain; `chain_scripts` are the
     * oracle scripts of the upcoming positions so the draft's
     * calibrated hit rate applies only along the true continuation.
     */
    static TokenTree draft(const model::DraftModel &dlm, int root_token,
                           const std::vector<model::TokenScript> &chain_scripts,
                           const std::vector<int> &widths, Rng &rng);

  private:
    std::vector<TreeNode> nodes_;
    std::vector<int> chain_;
};

} // namespace specee::core

#endif // SPECEE_CORE_TOKEN_TREE_HH
