/**
 * @file
 * Predictor offline training pipeline (§7.4.4).
 *
 * Runs the target model with the draft model attached over a
 * profiling workload (the paper uses MT-Bench prompts), recording
 * per-layer samples: the 12-dim speculation features plus the label
 * "the token an exit at this layer would emit equals the token the
 * full forward pass emits". The AdaInfer baseline's 3-dim full-vocab
 * features are collected from the same runs.
 *
 * Training is plain Adam on BCE per layer; accuracy is reported on a
 * held-out split, which is what Fig. 8 / Fig. 18 plot.
 */

#ifndef SPECEE_CORE_PREDICTOR_TRAINER_HH
#define SPECEE_CORE_PREDICTOR_TRAINER_HH

#include <vector>

#include "core/predictor.hh"
#include "model/draft_model.hh"
#include "model/target_model.hh"
#include "nn/dataset.hh"
#include "nn/mlp.hh"
#include "nn/svm.hh"
#include "workload/datasets.hh"

namespace specee::core {

/** Per-layer feature/label datasets from one profiling run. */
struct ProfileData
{
    /** 12-dim speculation features per exit layer. */
    std::vector<nn::Dataset> specee;
    /** 3-dim AdaInfer features per exit layer. */
    std::vector<nn::Dataset> adainfer;
    /** Oracle exit layer histogram (first label-true layer). */
    std::vector<long> oracle_exit_hist;
    /** RAEE database entries: layer-0 hidden probe per token. */
    std::vector<tensor::Vec> raee_probes;
    /** RAEE labels: oracle exit layer per probe. */
    std::vector<int> raee_exits;

    size_t totalSamples() const;
};

/** Training options. */
struct TrainerOptions
{
    double train_frac = 0.8;  ///< held-out split for reported accuracy
    double data_ratio = 1.0;  ///< fraction of training data used (Fig.18)
    nn::TrainConfig train;    ///< per-layer MLP optimizer settings
};

/** Training outcome across the predictor bank. */
struct TrainReport
{
    double mean_test_accuracy = 0.0;
    double mean_train_accuracy = 0.0;
    size_t samples_used = 0;
    std::vector<double> per_layer_test_accuracy;
};

/** Collects profiling data and trains predictor banks. */
class PredictorTrainer
{
  public:
    /**
     * Profile `tm` over `workload` with `dlm` proposing speculative
     * tokens; fills per-layer datasets for both predictor families.
     */
    static ProfileData collect(const workload::Workload &w,
                               model::TargetModel &tm,
                               const model::DraftModel &dlm,
                               uint64_t seed);

    /** Train the SpecEE MLP bank; returns held-out accuracies. */
    static TrainReport train(ExitPredictor &bank, const ProfileData &data,
                             const TrainerOptions &opts);

    /** Train an AdaInfer SVM bank on the same profiling data. */
    static TrainReport trainAdaInfer(std::vector<nn::LinearSvm> &bank,
                                     const ProfileData &data,
                                     const TrainerOptions &opts);
};

} // namespace specee::core

#endif // SPECEE_CORE_PREDICTOR_TRAINER_HH
