#include "core/predictor.hh"

#include <fstream>

#include "util/logging.hh"

namespace specee::core {

ExitPredictor::ExitPredictor(int n_exit_layers, int feat_dim,
                             int hidden_dim, int depth, uint64_t seed)
    : featDim_(feat_dim)
{
    specee_assert(n_exit_layers > 0 && depth >= 1, "bad predictor bank");
    std::vector<size_t> dims;
    dims.push_back(static_cast<size_t>(feat_dim));
    for (int d = 0; d + 1 < depth; ++d)
        dims.push_back(static_cast<size_t>(hidden_dim));
    dims.push_back(1);
    mlps_.reserve(static_cast<size_t>(n_exit_layers));
    for (int l = 0; l < n_exit_layers; ++l)
        mlps_.emplace_back(dims, seed + static_cast<uint64_t>(l) * 97);
}

float
ExitPredictor::score(int layer, tensor::CSpan feats) const
{
    return mlp(layer).predict(feats);
}

bool
ExitPredictor::shouldExit(int layer, tensor::CSpan feats,
                          float threshold) const
{
    return score(layer, feats) > threshold;
}

nn::Mlp &
ExitPredictor::mlp(int layer)
{
    specee_assert(layer >= 0 && layer < nExitLayers(),
                  "predictor layer %d out of range", layer);
    return mlps_[static_cast<size_t>(layer)];
}

const nn::Mlp &
ExitPredictor::mlp(int layer) const
{
    specee_assert(layer >= 0 && layer < nExitLayers(),
                  "predictor layer %d out of range", layer);
    return mlps_[static_cast<size_t>(layer)];
}

size_t
ExitPredictor::paramsPerPredictor() const
{
    return mlps_.front().paramCount();
}

size_t
ExitPredictor::totalParams() const
{
    size_t n = 0;
    for (const auto &m : mlps_)
        n += m.paramCount();
    return n;
}

size_t
ExitPredictor::flopsPerPrediction() const
{
    return mlps_.front().flopsPerInference();
}

void
ExitPredictor::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        specee_fatal("cannot open %s for writing", path.c_str());
    const uint32_t n = static_cast<uint32_t>(mlps_.size());
    const uint32_t fd = static_cast<uint32_t>(featDim_);
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(reinterpret_cast<const char *>(&fd), sizeof(fd));
    for (const auto &m : mlps_)
        m.save(os);
    if (!os)
        specee_fatal("short write to %s", path.c_str());
}

ExitPredictor
ExitPredictor::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        specee_fatal("cannot open %s", path.c_str());
    uint32_t n = 0, fd = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    is.read(reinterpret_cast<char *>(&fd), sizeof(fd));
    specee_assert(static_cast<bool>(is) && n > 0 && n < 1024,
                  "corrupt predictor bank header in %s", path.c_str());
    ExitPredictor bank;
    bank.featDim_ = static_cast<int>(fd);
    bank.mlps_.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        bank.mlps_.push_back(nn::Mlp::load(is));
    return bank;
}

} // namespace specee::core
