#include "core/verifier.hh"

#include <algorithm>

namespace specee::core {

VerifyResult
Verifier::verify(const model::TargetModel &tm, int local_best)
{
    VerifyResult r;
    r.token = tm.globalArgmax();
    r.verified = r.token == local_best;
    return r;
}

VerifyResult
Verifier::verifyMembership(const model::TargetModel &tm,
                           const std::vector<int> &spec_tokens)
{
    VerifyResult r;
    r.token = tm.globalArgmax();
    r.verified = std::find(spec_tokens.begin(), spec_tokens.end(),
                           r.token) != spec_tokens.end();
    return r;
}

} // namespace specee::core
