#include "core/raee.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::core {

RaeeIndex::RaeeIndex(int dim, int n_layers)
    : dim_(dim), nLayers_(n_layers)
{
    specee_assert(dim > 0 && n_layers > 1, "bad RAEE index params");
}

void
RaeeIndex::add(tensor::CSpan embedding, int exit_layer)
{
    specee_assert(embedding.size() == static_cast<size_t>(dim_),
                  "RAEE embedding dim mismatch");
    specee_assert(exit_layer >= 0 && exit_layer < nLayers_,
                  "RAEE exit layer %d out of range", exit_layer);
    const size_t base = embeddings_.size();
    embeddings_.resize(base + static_cast<size_t>(dim_));
    float norm = tensor::norm2(embedding);
    if (norm <= 0.0f)
        norm = 1.0f;
    for (int i = 0; i < dim_; ++i) {
        embeddings_[base + static_cast<size_t>(i)] =
            embedding[static_cast<size_t>(i)] / norm;
    }
    exitLayers_.push_back(exit_layer);
}

int
RaeeIndex::predictExitLayer(tensor::CSpan query, int k) const
{
    if (empty())
        return nLayers_ - 1;
    specee_assert(query.size() == static_cast<size_t>(dim_),
                  "RAEE query dim mismatch");

    tensor::Vec q(query.begin(), query.end());
    float norm = tensor::norm2(q);
    if (norm > 0.0f)
        tensor::scaleInplace(q, 1.0f / norm);

    // Exact inner-product scan.
    std::vector<std::pair<float, int>> sims;
    sims.reserve(exitLayers_.size());
    for (size_t e = 0; e < exitLayers_.size(); ++e) {
        tensor::CSpan row(embeddings_.data() +
                              e * static_cast<size_t>(dim_),
                          static_cast<size_t>(dim_));
        sims.emplace_back(tensor::dot(row, q), static_cast<int>(e));
    }
    const size_t kk = std::min(static_cast<size_t>(std::max(1, k)),
                               sims.size());
    std::partial_sort(sims.begin(), sims.begin() + static_cast<long>(kk),
                      sims.end(), [](const auto &a, const auto &b) {
                          return a.first > b.first;
                      });

    // Probability superposition: similarity-weighted histogram.
    std::vector<float> hist(static_cast<size_t>(nLayers_), 0.0f);
    for (size_t i = 0; i < kk; ++i) {
        const float w = std::max(0.0f, sims[i].first);
        hist[static_cast<size_t>(
            exitLayers_[static_cast<size_t>(sims[i].second)])] +=
            w + 1e-6f;
    }
    return static_cast<int>(tensor::argmax(hist));
}

size_t
RaeeIndex::byteSize() const
{
    return embeddings_.size() * sizeof(float) +
           exitLayers_.size() * sizeof(int);
}

} // namespace specee::core
