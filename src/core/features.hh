/**
 * @file
 * Speculation-based feature extraction (§4.3.1, Fig. 5(b)).
 *
 * Per layer, the predictor consumes 3 features per speculative token
 * (num_spec = 4 -> 12-dim input):
 *   1. speculative token logits — hidden_state x the LM-head columns
 *      of the speculative tokens (the sliced LM head);
 *   2. local probabilities — softmax over those logits only;
 *   3. probability variation — local probabilities minus the local
 *      probabilities at the previous *extracted* layer.
 *
 * Fig. 6 shows why all three are needed: equal variations can come
 * from different absolute probabilities, and equal probabilities
 * from different logit scales. test_features.cc pins those cases.
 */

#ifndef SPECEE_CORE_FEATURES_HH
#define SPECEE_CORE_FEATURES_HH

#include <array>
#include <vector>

#include "model/target_model.hh"
#include "tensor/matrix.hh"

namespace specee::core {

/**
 * AdaInfer-style features from full-vocabulary logits: top-1
 * probability, top-1/top-2 gap, and normalized entropy. Requires the
 * full LM head at every layer — the heavy search the paper's
 * speculation insight removes (§3.1). Destroys `full_logits` (it is
 * softmaxed in place).
 */
std::array<float, 3> adaInferFeatures(tensor::Span full_logits);

/** Extracts the 12-dim speculation features layer by layer. */
class FeatureExtractor
{
  public:
    explicit FeatureExtractor(int num_spec);

    /** Feature dimensionality (3 * num_spec). */
    int dim() const { return 3 * numSpec_; }

    int numSpec() const { return numSpec_; }

    /** Start a new token with its speculative token set. */
    void beginToken(const std::vector<int> &spec_tokens);

    /**
     * Extract features from the model's current hidden state.
     * The previous-layer probabilities are whatever the last call to
     * extract() produced for this token (a uniform prior before the
     * first call), so skipped layers fold into the variation feature
     * exactly as they do in the scheduled system.
     */
    tensor::CSpan extract(const model::TargetModel &tm);

    /**
     * Same computation from an externally supplied sliced-logit
     * vector (used by the grouped hyper-token path).
     */
    tensor::CSpan extractFromLogits(tensor::CSpan sliced_logits);

    const std::vector<int> &specTokens() const { return specTokens_; }

    /** Local probabilities of the latest extraction. */
    tensor::CSpan localProbs() const { return probs_; }

  private:
    int numSpec_;
    std::vector<int> specTokens_;
    tensor::Vec logits_;
    tensor::Vec probs_;
    tensor::Vec lastProbs_;
    tensor::Vec feats_;
};

} // namespace specee::core

#endif // SPECEE_CORE_FEATURES_HH
