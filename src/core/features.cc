#include "core/features.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::core {

std::array<float, 3>
adaInferFeatures(tensor::Span full_logits)
{
    specee_assert(full_logits.size() >= 2, "need at least two logits");
    tensor::softmax(full_logits);
    float top1 = 0.0f, top2 = 0.0f;
    for (float p : full_logits) {
        if (p > top1) {
            top2 = top1;
            top1 = p;
        } else if (p > top2) {
            top2 = p;
        }
    }
    double ent = 0.0;
    for (float p : full_logits) {
        if (p > 1e-12f)
            ent -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    const double max_ent = std::log(static_cast<double>(full_logits.size()));
    return {top1, top1 - top2, static_cast<float>(ent / max_ent)};
}

FeatureExtractor::FeatureExtractor(int num_spec)
    : numSpec_(num_spec),
      logits_(static_cast<size_t>(num_spec)),
      probs_(static_cast<size_t>(num_spec)),
      lastProbs_(static_cast<size_t>(num_spec)),
      feats_(static_cast<size_t>(3 * num_spec))
{
    specee_assert(num_spec >= 1, "need at least one speculative token");
}

void
FeatureExtractor::beginToken(const std::vector<int> &spec_tokens)
{
    specee_assert(static_cast<int>(spec_tokens.size()) == numSpec_,
                  "expected %d speculative tokens, got %zu", numSpec_,
                  spec_tokens.size());
    specTokens_ = spec_tokens;
    std::fill(lastProbs_.begin(), lastProbs_.end(),
              1.0f / static_cast<float>(numSpec_));
}

tensor::CSpan
FeatureExtractor::extract(const model::TargetModel &tm)
{
    tm.logitsSliced(specTokens_, logits_);
    return extractFromLogits(logits_);
}

tensor::CSpan
FeatureExtractor::extractFromLogits(tensor::CSpan sliced_logits)
{
    specee_assert(sliced_logits.size() == static_cast<size_t>(numSpec_),
                  "sliced logit size");
    std::copy(sliced_logits.begin(), sliced_logits.end(), probs_.begin());
    tensor::softmax(probs_);
    for (int i = 0; i < numSpec_; ++i) {
        const size_t si = static_cast<size_t>(i);
        feats_[si] = sliced_logits[si];
        feats_[static_cast<size_t>(numSpec_) + si] = probs_[si];
        feats_[static_cast<size_t>(2 * numSpec_) + si] =
            probs_[si] - lastProbs_[si];
    }
    lastProbs_ = probs_;
    return feats_;
}

} // namespace specee::core
