#include "core/predictor_trainer.hh"

#include <algorithm>

#include "core/features.hh"
#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::core {

size_t
ProfileData::totalSamples() const
{
    size_t n = 0;
    for (const auto &d : specee)
        n += d.size();
    return n;
}

ProfileData
PredictorTrainer::collect(const workload::Workload &w,
                          model::TargetModel &tm,
                          const model::DraftModel &dlm, uint64_t seed)
{
    const model::ModelConfig &cfg = tm.config();
    const int n_exit = cfg.n_layers - 1;

    ProfileData data;
    data.specee.assign(static_cast<size_t>(n_exit),
                       nn::Dataset(3 * cfg.num_spec_tokens));
    data.adainfer.assign(static_cast<size_t>(n_exit), nn::Dataset(3));
    data.oracle_exit_hist.assign(static_cast<size_t>(n_exit), 0);

    Rng rng(seed);
    FeatureExtractor fx(cfg.num_spec_tokens);
    tensor::Vec full_logits(static_cast<size_t>(cfg.sim.vocab));

    for (size_t ii = 0; ii < w.instances.size(); ++ii) {
        const auto &inst = w.instances[ii];
        // Independent noise substream per profiled instance (fork()
        // leaves the speculation rng stream untouched), so collected
        // features cover the noise diversity served requests see.
        tm.reset(rng.fork(0x7e5e + ii).next());
        tm.prefill(inst.prompt);
        int prev = inst.prompt.back();
        for (const auto &script : inst.steps) {
            auto spec = dlm.speculate(prev, script.target,
                                      cfg.num_spec_tokens, rng);
            fx.beginToken(spec);
            tm.beginToken(prev, script);

            int first_true = -1;
            for (int l = 0; l < n_exit; ++l) {
                tm.runLayer();
                if (l == 0) {
                    // RAEE probe: the hidden state after layer 0.
                    tensor::CSpan h = tm.hidden();
                    data.raee_probes.emplace_back(h.begin(), h.end());
                }
                tensor::CSpan feats = fx.extract(tm);

                tm.lmHead().full(tm.hidden(), full_logits);
                const int global = static_cast<int>(
                    tensor::argmax(full_logits));
                // Label per §7.4.4: exiting here emits the same token
                // as the full forward pass (which emits the script
                // target by construction).
                const float label =
                    global == script.target ? 1.0f : 0.0f;
                data.specee[static_cast<size_t>(l)].add(feats, label);

                auto af = adaInferFeatures(full_logits);
                data.adainfer[static_cast<size_t>(l)].add(
                    tensor::CSpan(af.data(), af.size()), label);

                if (label > 0.5f && first_true < 0)
                    first_true = l;
            }
            if (first_true >= 0)
                ++data.oracle_exit_hist[static_cast<size_t>(first_true)];
            data.raee_exits.push_back(
                first_true >= 0 ? first_true : cfg.n_layers - 1);
            tm.runRemainingLayers();
            prev = script.target;
        }
    }
    return data;
}

namespace {

/** Shuffle, subsample and split one layer's dataset. */
std::pair<nn::Dataset, nn::Dataset>
prepare(const nn::Dataset &all, const TrainerOptions &opts, Rng &rng)
{
    nn::Dataset shuffled = all;
    shuffled.shuffle(rng);
    auto [train_full, test] = shuffled.split(opts.train_frac);
    const size_t use = std::max<size_t>(
        8, static_cast<size_t>(static_cast<double>(train_full.size()) *
                               opts.data_ratio));
    return {train_full.head(use), std::move(test)};
}

} // namespace

TrainReport
PredictorTrainer::train(ExitPredictor &bank, const ProfileData &data,
                        const TrainerOptions &opts)
{
    specee_assert(static_cast<size_t>(bank.nExitLayers()) ==
                  data.specee.size(),
                  "bank/data layer mismatch");
    TrainReport rep;
    Rng rng(opts.train.seed ^ 0x7121);
    double test_sum = 0.0, train_sum = 0.0;
    for (int l = 0; l < bank.nExitLayers(); ++l) {
        auto [train_set, test_set] =
            prepare(data.specee[static_cast<size_t>(l)], opts, rng);
        rep.samples_used += train_set.size();
        auto stats = bank.mlp(l).fit(train_set, opts.train);
        train_sum += stats.train_accuracy;
        const double acc = bank.mlp(l).accuracy(test_set);
        rep.per_layer_test_accuracy.push_back(acc);
        test_sum += acc;
    }
    rep.mean_test_accuracy = test_sum / bank.nExitLayers();
    rep.mean_train_accuracy = train_sum / bank.nExitLayers();
    return rep;
}

TrainReport
PredictorTrainer::trainAdaInfer(std::vector<nn::LinearSvm> &bank,
                                const ProfileData &data,
                                const TrainerOptions &opts)
{
    const int n_exit = static_cast<int>(data.adainfer.size());
    bank.assign(static_cast<size_t>(n_exit), nn::LinearSvm(3));
    TrainReport rep;
    Rng rng(opts.train.seed ^ 0xada1);
    double test_sum = 0.0;
    for (int l = 0; l < n_exit; ++l) {
        auto [train_set, test_set] =
            prepare(data.adainfer[static_cast<size_t>(l)], opts, rng);
        rep.samples_used += train_set.size();
        bank[static_cast<size_t>(l)].fit(train_set, 25, 1e-2, 1e-4,
                                         opts.train.seed + l);
        const double acc = bank[static_cast<size_t>(l)].accuracy(test_set);
        rep.per_layer_test_accuracy.push_back(acc);
        test_sum += acc;
    }
    rep.mean_test_accuracy = test_sum / n_exit;
    return rep;
}

} // namespace specee::core
