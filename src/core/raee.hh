/**
 * @file
 * RAEE baseline (§2.3, Table 1): retrieval-augmented early exiting.
 *
 * RAEE builds an offline database mapping hidden-state embeddings to
 * observed exit layers; at runtime it retrieves the k nearest
 * neighbours of the current token's early hidden state and
 * superposes their exit-layer distributions to pick the exit layer
 * directly (training-free, but the database is large — "exceeding
 * several gigabytes" — and retrieval adds latency, which is why
 * Table 1 scores it High-memory / Heavy-prediction).
 *
 * We implement the real mechanism at simulation scale: normalized
 * embeddings, exact inner-product kNN, probability superposition
 * over neighbour exit layers. The cost model prices the database
 * scan at true dimensions and a configurable entry count.
 */

#ifndef SPECEE_CORE_RAEE_HH
#define SPECEE_CORE_RAEE_HH

#include <vector>

#include "tensor/matrix.hh"

namespace specee::core {

/** Retrieval index from probe embeddings to exit layers. */
class RaeeIndex
{
  public:
    /**
     * @param dim      embedding dimensionality (sim hidden)
     * @param n_layers decoder layers of the model
     */
    RaeeIndex(int dim, int n_layers);

    /** Add one (embedding, observed exit layer) entry. */
    void add(tensor::CSpan embedding, int exit_layer);

    int size() const { return static_cast<int>(exitLayers_.size()); }
    bool empty() const { return exitLayers_.empty(); }
    int dim() const { return dim_; }

    /**
     * Predict the exit layer for a query embedding: retrieve the k
     * nearest entries by cosine similarity and superpose their exit
     * layers weighted by similarity (the paper's probability
     * superposition). Returns n_layers-1 when the index is empty.
     */
    int predictExitLayer(tensor::CSpan query, int k = 8) const;

    /** Functional storage footprint (fp32 embeddings + labels). */
    size_t byteSize() const;

  private:
    int dim_;
    int nLayers_;
    std::vector<float> embeddings_; ///< row-major, unit-normalized
    std::vector<int> exitLayers_;
};

} // namespace specee::core

#endif // SPECEE_CORE_RAEE_HH
