/**
 * @file
 * Windowed metrics timeline over the modeled serving clock.
 *
 * FleetStats reduces a whole drained run to one aggregate; the
 * timeline answers "what was the fleet doing DURING the run" by
 * bucketing the simulated clock into fixed-width windows and
 * reducing per window: rolling goodput (and goodput under SLO —
 * tokens from requests whose attainment verdict held), TTFT/ITL
 * percentiles of the samples that landed in the window, device /
 * host / cached KV occupancy peaks, decode-batch and pipeline-stage
 * occupancy, DMA-channel busy time, and the early-exit depth
 * histogram (the per-step distribution SpecEE's Fig. 10 plots, which
 * pricing alone throws away).
 *
 * Recording appends raw samples keyed by the modeled clock;
 * finalize() reduces them once (percentiles sort once per window via
 * metrics::Stats). The window width is the only knob; 0 (default)
 * disables the subsystem entirely and is bit-inert on the scheduler.
 */

#ifndef SPECEE_OBS_TIMELINE_HH
#define SPECEE_OBS_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace specee::obs {

/** Timeline knobs. window_s <= 0 (default) disables. */
struct TimelineOptions
{
    /** Bucket width in modeled seconds. */
    double window_s = 0.0;

    bool enabled() const { return window_s > 0.0; }
};

/** One reduced window [t0, t1) of the modeled clock. */
struct TimelineWindow
{
    double t0 = 0.0;
    double t1 = 0.0;

    long iterations = 0;
    long tokens = 0;     ///< tokens delivered in the window
    long slo_tokens = 0; ///< ... from requests that attained their SLO
    double goodput_tps = 0.0;       ///< tokens / window width
    double goodput_under_slo = 0.0; ///< slo_tokens / window width

    /** Latency samples that completed inside the window. */
    long ttft_count = 0;
    double p50_ttft_s = 0.0;
    double p99_ttft_s = 0.0;
    long itl_count = 0;
    double p50_itl_s = 0.0;
    double p99_itl_s = 0.0;

    /** Occupancy peaks over the window's iteration boundaries. */
    long peak_kv_blocks = 0;
    long peak_host_kv_blocks = 0;
    long peak_cached_blocks = 0;

    double mean_batch_occupancy = 0.0;
    double stage_occupancy = 0.0; ///< busy stage-iterations fraction
    double transfer_busy_s = 0.0; ///< DMA busy seconds in the window

    /** Decode-step early-exit depths (index = deepest layer). */
    std::vector<long> exit_hist;
};

/** Accumulates per-window samples; reduce once with finalize(). */
class Timeline
{
  public:
    /** Disabled timeline (every record is a no-op). */
    Timeline() = default;

    Timeline(const TimelineOptions &opts, double t0, int n_layers,
             int n_stages);

    bool enabled() const { return opts_.enabled(); }

    /** One iteration boundary: batch size, stage + KV occupancy. */
    void recordIteration(double t, int batch, int busy_stages,
                         long kv_blocks, long host_blocks,
                         long cached_blocks);
    /** One decode step's early-exit depth. */
    void recordExit(double t, int deepest_layer);
    void recordTtft(double t, double ttft_s);
    void recordItl(double t, double gap_s);
    /** `n` tokens delivered for `request` at time t. */
    void recordTokens(double t, uint64_t request, long n);
    /** A DMA busy span [a, b); clipped across window boundaries. */
    void recordTransfer(double a, double b);

    /**
     * Reduce every window up to `end_t`. `attained(request_id)`
     * decides whose tokens count toward goodput_under_slo — verdicts
     * only exist once requests retire, so SLO attribution is
     * necessarily retroactive. Deterministic for a fixed sample
     * stream.
     */
    std::vector<TimelineWindow>
    finalize(double end_t,
             const std::function<bool(uint64_t)> &attained) const;

    /**
     * Reduce ONE window (index `idx`) as of `end_t` — the online
     * sampling hook an adaptive controller calls at each decision
     * epoch, and the per-window kernel finalize() loops over. Rates
     * divide by the window's COVERED span, min(window end, end_t) −
     * window start, so a window the run (or the sampling instant)
     * truncates reports its true rate instead of a deflated one.
     * `attained` as in finalize(); online callers pass the verdicts
     * known so far.
     */
    TimelineWindow
    reduce(size_t idx, double end_t,
           const std::function<bool(uint64_t)> &attained) const;

  private:
    struct Bucket
    {
        long iterations = 0;
        long occupancy_sum = 0;
        long stage_busy = 0;
        long peak_kv = 0;
        long peak_host = 0;
        long peak_cached = 0;
        double transfer_busy_s = 0.0;
        std::vector<double> ttft;
        std::vector<double> itl;
        std::vector<long> exit_hist;
        /** Run-length token deliveries: (request, count). */
        std::vector<std::pair<uint64_t, long>> tokens;
    };

    Bucket &bucket(double t);

    TimelineOptions opts_;
    double t0_ = 0.0;
    int n_layers_ = 0;
    int n_stages_ = 1;
    std::vector<Bucket> buckets_;
};

} // namespace specee::obs

#endif // SPECEE_OBS_TIMELINE_HH
