#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "hw/hardware_model.hh"
#include "util/logging.hh"

namespace specee::obs {

const char *
traceKindName(TraceKind k)
{
    switch (k) {
    case TraceKind::Iteration:
        return "iteration";
    case TraceKind::Step:
        return "step";
    case TraceKind::PrefillChunk:
        return "prefill_chunk";
    case TraceKind::Transfer:
        return "transfer";
    case TraceKind::Decision:
        return "decision";
    case TraceKind::RequestFlow:
        return "request";
    }
    return "?";
}

const char *
traceDecisionName(TraceDecision d)
{
    switch (d) {
    case TraceDecision::Admit:
        return "admit";
    case TraceDecision::Defer:
        return "defer";
    case TraceDecision::WatermarkReject:
        return "watermark_reject";
    case TraceDecision::Drop:
        return "drop";
    case TraceDecision::Cancel:
        return "cancel";
    case TraceDecision::PreemptRecompute:
        return "preempt_recompute";
    case TraceDecision::PreemptSwap:
        return "preempt_swap";
    case TraceDecision::Resume:
        return "resume";
    case TraceDecision::CacheHit:
        return "cache_hit";
    case TraceDecision::BackfillGrant:
        return "backfill_grant";
    case TraceDecision::Handoff:
        return "handoff";
    case TraceDecision::KnobChange:
        return "knob_change";
    }
    return "?";
}

TraceRecorder::TraceRecorder(size_t n_workers, bool enabled)
    : enabled_(enabled)
{
    // Shards exist even while disabled so call sites stay branch-
    // free; a disabled recorder is never emitted into (the scheduler
    // guards every emit on enabled()), so the buffers stay empty.
    shards_.resize(n_workers + 1);
}

std::vector<TraceEvent>
TraceRecorder::merged() const
{
    std::vector<TraceEvent> all;
    if (!enabled_)
        return all;
    size_t total = 0;
    for (const auto &s : shards_)
        total += s.events().size();
    all.reserve(total);
    for (const auto &s : shards_) {
        all.insert(all.end(), s.events().begin(), s.events().end());
    }
    // Deterministic total order over everything that identifies an
    // event: which shard an event came from (a worker-count artifact)
    // never influences the result. Two fully equal keys can only be
    // two identical events.
    std::stable_sort(
        all.begin(), all.end(),
        [](const TraceEvent &a, const TraceEvent &b) {
            return std::tie(a.t0, a.device, a.kind, a.seq, a.request,
                            a.channel, a.lane, a.t1, a.decision) <
                   std::tie(b.t0, b.device, b.kind, b.seq, b.request,
                            b.channel, b.lane, b.t1, b.decision);
        });
    return all;
}

namespace {

/** Microsecond timestamp with fixed (deterministic) formatting. */
void
appendUs(std::string &out, double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    out += buf;
}

void
appendCommon(std::string &out, const char *name, const char *ph,
             double t, int pid, long tid)
{
    out += "{\"name\":\"";
    out += name;
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    appendUs(out, t);
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
}

void
appendMeta(std::string &out, int pid, long tid, const char *what,
           const std::string &name, bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += what;
    out += "\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    if (tid >= 0) {
        out += ",\"tid\":";
        out += std::to_string(tid);
    }
    out += ",\"args\":{\"name\":\"";
    out += name;
    out += "\"}}";
}

/// Thread ids inside one device process: step lanes first, DMA
/// channels on a high offset so lanes can grow without colliding.
constexpr long kChannelTidBase = 1000;

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events, int n_devices,
                int n_prefill_devices)
{
    specee_assert(n_devices >= 1, "trace export needs >= 1 device");
    const int n_decode = n_devices - n_prefill_devices;
    std::string out;
    out.reserve(events.size() * 160 + 1024);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    appendMeta(out, 0, -1, "process_name", "fleet scheduler", first);
    appendMeta(out, 0, 0, "thread_name", "iterations", first);
    appendMeta(out, 0, 1, "thread_name", "decisions", first);
    for (int d = 0; d < n_devices; ++d) {
        const std::string role =
            d < n_decode
                ? "decode device " + std::to_string(d)
                : "prefill device " + std::to_string(d - n_decode);
        appendMeta(out, d + 1, -1, "process_name", role, first);
        appendMeta(out, d + 1, kChannelTidBase + 0, "thread_name",
                   "dma.host", first);
        appendMeta(out, d + 1, kChannelTidBase + 1, "thread_name",
                   "dma.peer", first);
    }

    for (const auto &e : events) {
        if (!first)
            out += ",\n";
        first = false;
        const int pid = e.device + 1;
        switch (e.kind) {
        case TraceKind::Iteration: {
            appendCommon(out, "iteration", "X", e.t0, 0, 0);
            out += ",\"dur\":";
            appendUs(out, e.t1 - e.t0);
            out += ",\"args\":{\"batch\":";
            out += std::to_string(e.batch);
            out += ",\"prefilling\":";
            out += std::to_string(e.prefilling);
            out += ",\"tokens\":";
            out += std::to_string(e.tokens);
            out += "}}";
            break;
        }
        case TraceKind::Step:
        case TraceKind::PrefillChunk: {
            appendCommon(out, traceKindName(e.kind), "X", e.t0, pid,
                         e.lane);
            out += ",\"dur\":";
            appendUs(out, e.t1 - e.t0);
            out += ",\"args\":{\"request\":";
            out += std::to_string(e.request);
            out += ",\"tokens\":";
            out += std::to_string(e.tokens);
            out += ",\"deepest_layer\":";
            out += std::to_string(e.deepest_layer);
            out += ",\"stages_used\":";
            out += std::to_string(e.stages_used);
            for (const auto &[cls, s] : e.op_s) {
                out += ",\"op.";
                out += hw::opClassName(static_cast<hw::OpClass>(cls));
                out += "\":";
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.9e", s);
                out += buf;
            }
            out += "}}";
            break;
        }
        case TraceKind::Transfer: {
            appendCommon(out, "transfer", "X", e.t0, pid,
                         kChannelTidBase + e.channel);
            out += ",\"dur\":";
            appendUs(out, e.t1 - e.t0);
            out += ",\"args\":{\"request\":";
            out += std::to_string(e.request);
            out += ",\"channel\":\"";
            out += e.channel == 0 ? "host" : "peer";
            out += "\"}}";
            break;
        }
        case TraceKind::Decision: {
            appendCommon(out, traceDecisionName(e.decision), "i",
                         e.t0, 0, 1);
            out += ",\"s\":\"p\",\"args\":{\"request\":";
            out += std::to_string(e.request);
            out += ",\"tokens\":";
            out += std::to_string(e.tokens);
            out += "}}";
            break;
        }
        case TraceKind::RequestFlow: {
            // One flow arrow per request: admission (fleet decisions
            // track) to completion (its device's first lane).
            appendCommon(out, "request", "s", e.t0, 0, 1);
            out += ",\"cat\":\"request\",\"id\":";
            out += std::to_string(e.request);
            out += "},\n";
            appendCommon(out, "request", "f", e.t1, pid, 0);
            out += ",\"cat\":\"request\",\"id\":";
            out += std::to_string(e.request);
            out += ",\"bp\":\"e\"}";
            break;
        }
        }
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TraceEvent> &events, int n_devices,
                 int n_prefill_devices)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << chromeTraceJson(events, n_devices, n_prefill_devices);
    return static_cast<bool>(f);
}

} // namespace specee::obs
