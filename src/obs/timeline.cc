#include "obs/timeline.hh"

#include <algorithm>
#include <cmath>

#include "metrics/stats.hh"
#include "util/logging.hh"

namespace specee::obs {

Timeline::Timeline(const TimelineOptions &opts, double t0, int n_layers,
                   int n_stages)
    : opts_(opts), t0_(t0), n_layers_(n_layers),
      n_stages_(std::max(n_stages, 1))
{
    if (opts_.enabled()) {
        specee_assert(n_layers >= 1,
                      "timeline needs >= 1 model layer, got %d",
                      n_layers);
    }
}

Timeline::Bucket &
Timeline::bucket(double t)
{
    // A window owns [t0 + i*w, t0 + (i+1)*w): a sample exactly on a
    // boundary belongs to the UPPER window. Samples at (or, through
    // rounding, slightly before) the stream start land in window 0.
    const double off = (t - t0_) / opts_.window_s;
    const size_t idx =
        off <= 0.0 ? 0 : static_cast<size_t>(std::floor(off));
    specee_assert(idx < (1u << 22),
                  "timeline window index %zu is implausible "
                  "(window_s too small for this run?)",
                  idx);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1);
    return buckets_[idx];
}

void
Timeline::recordIteration(double t, int batch, int busy_stages,
                          long kv_blocks, long host_blocks,
                          long cached_blocks)
{
    if (!enabled())
        return;
    Bucket &b = bucket(t);
    ++b.iterations;
    b.occupancy_sum += batch;
    b.stage_busy += busy_stages;
    b.peak_kv = std::max(b.peak_kv, kv_blocks);
    b.peak_host = std::max(b.peak_host, host_blocks);
    b.peak_cached = std::max(b.peak_cached, cached_blocks);
}

void
Timeline::recordExit(double t, int deepest_layer)
{
    if (!enabled())
        return;
    Bucket &b = bucket(t);
    if (b.exit_hist.empty())
        b.exit_hist.assign(static_cast<size_t>(n_layers_) + 1, 0);
    const size_t d = static_cast<size_t>(
        std::clamp(deepest_layer, 0, n_layers_));
    ++b.exit_hist[d];
}

void
Timeline::recordTtft(double t, double ttft_s)
{
    if (enabled())
        bucket(t).ttft.push_back(ttft_s);
}

void
Timeline::recordItl(double t, double gap_s)
{
    if (enabled())
        bucket(t).itl.push_back(gap_s);
}

void
Timeline::recordTokens(double t, uint64_t request, long n)
{
    if (!enabled() || n <= 0)
        return;
    auto &tok = bucket(t).tokens;
    if (!tok.empty() && tok.back().first == request) {
        tok.back().second += n;
    } else {
        tok.emplace_back(request, n);
    }
}

void
Timeline::recordTransfer(double a, double b)
{
    if (!enabled() || b <= a)
        return;
    // Attribute the busy span to each window it crosses.
    const double w = opts_.window_s;
    double t = a;
    while (t < b) {
        Bucket &bk = bucket(t);
        const double off = std::max(0.0, (t - t0_) / w);
        const double win_end =
            t0_ + (std::floor(off) + 1.0) * w;
        const double seg = std::min(b, win_end) - t;
        bk.transfer_busy_s += seg;
        t = std::max(win_end, t + seg);
    }
}

TimelineWindow
Timeline::reduce(size_t idx, double end_t,
                 const std::function<bool(uint64_t)> &attained) const
{
    const double w = opts_.window_s;
    TimelineWindow win;
    win.t0 = t0_ + static_cast<double>(idx) * w;
    win.t1 = win.t0 + w;
    // Rates divide by the COVERED span: a window the run ends (or
    // the caller samples) partway through reports its true rate, not
    // one deflated by the uncovered remainder. A window entirely in
    // the future (or a degenerate end_t) falls back to full width so
    // the division is always well-defined.
    double covered = std::min(win.t1, end_t) - win.t0;
    if (covered <= 0.0)
        covered = w;
    if (idx >= buckets_.size())
        return win;
    const Bucket &b = buckets_[idx];
    win.iterations = b.iterations;
    win.stage_occupancy =
        b.iterations > 0
            ? static_cast<double>(b.stage_busy) /
                  (static_cast<double>(b.iterations) * n_stages_)
            : 0.0;
    win.mean_batch_occupancy =
        b.iterations > 0
            ? static_cast<double>(b.occupancy_sum) /
                  static_cast<double>(b.iterations)
            : 0.0;
    win.peak_kv_blocks = b.peak_kv;
    win.peak_host_kv_blocks = b.peak_host;
    win.peak_cached_blocks = b.peak_cached;
    win.transfer_busy_s = b.transfer_busy_s;
    win.exit_hist = b.exit_hist;
    for (const auto &[req, count] : b.tokens) {
        win.tokens += count;
        if (!attained || attained(req))
            win.slo_tokens += count;
    }
    win.goodput_tps = static_cast<double>(win.tokens) / covered;
    win.goodput_under_slo =
        static_cast<double>(win.slo_tokens) / covered;
    const metrics::Stats ttft(b.ttft);
    win.ttft_count = static_cast<long>(ttft.count());
    win.p50_ttft_s = ttft.percentile(50.0);
    win.p99_ttft_s = ttft.percentile(99.0);
    const metrics::Stats itl(b.itl);
    win.itl_count = static_cast<long>(itl.count());
    win.p50_itl_s = itl.percentile(50.0);
    win.p99_itl_s = itl.percentile(99.0);
    return win;
}

std::vector<TimelineWindow>
Timeline::finalize(double end_t,
                   const std::function<bool(uint64_t)> &attained) const
{
    std::vector<TimelineWindow> out;
    if (!enabled())
        return out;
    const double w = opts_.window_s;
    // Cover the whole run: every window up to end_t exists even if
    // nothing landed in it (an idle gap is data, not absence).
    size_t n = buckets_.size();
    if (end_t > t0_) {
        const double span = (end_t - t0_) / w;
        const size_t need = static_cast<size_t>(std::ceil(span));
        n = std::max(n, std::max<size_t>(need, 1));
    }
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(reduce(i, end_t, attained));
    return out;
}

} // namespace specee::obs
