/**
 * @file
 * Fleet event trace: typed records of everything the scheduler did,
 * exportable as Chrome trace-event JSON (Perfetto-loadable).
 *
 * The scheduler (and the worker threads stepping its sessions)
 * record typed events — iteration boundaries with batch composition,
 * per-session step spans carrying the op-class cost breakdown and
 * the early-exit depth, scheduler decisions (admit / defer / drop /
 * preempt / resume / cache-hit / backfill-grant / handoff), and DMA
 * channel busy spans — against the MODELED clock only. Recording is
 * pure appending: turning the trace on or off never changes
 * emissions or modeled costs (pinned by test, like every other
 * scheduler knob).
 *
 * Threading: sessions step on parallel per-engine threads, so the
 * recorder is sharded — each worker thread appends to its own shard
 * and the scheduler thread to a control shard, lock-free because no
 * shard is ever shared. merged() then sorts every shard's events by
 * (time, track, kind, seq, request): worker events carry their
 * admission-order slot as `seq`, so the merged trace is bit-identical
 * no matter how many workers recorded it or which shard an event
 * landed in.
 *
 * Export maps devices (and their DMA channels) to Perfetto tracks:
 * one process per modeled device plus a fleet/scheduler process,
 * step spans fanned out across per-slot threads so concurrent
 * sessions never overlap within one track, decisions as instant
 * events, and request lifetimes as flow arrows from admission to
 * completion. Load the file at https://ui.perfetto.dev or
 * chrome://tracing.
 */

#ifndef SPECEE_OBS_TRACE_HH
#define SPECEE_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace specee::obs {

/** Event types a fleet trace records. */
enum class TraceKind : int {
    Iteration = 0, ///< fleet-track span: one scheduler iteration
    Step,          ///< device-track span: one session decode step
    PrefillChunk,  ///< device-track span: one prompt chunk ingested
    Transfer,      ///< DMA busy span (swap / handoff / restore)
    Decision,      ///< fleet-track instant: a scheduler decision
    RequestFlow,   ///< flow arrow: first admission -> completion
};

/** Scheduler decisions recorded as instant events. */
enum class TraceDecision : int {
    Admit = 0,        ///< waiting request entered execution
    Defer,            ///< >= 1 candidate passed over (backpressure)
    WatermarkReject,  ///< admission blocked by the KV watermark
    Drop,             ///< deadline expired
    Cancel,           ///< consumer cancelled the stream
    PreemptRecompute, ///< victim evicted, will re-run from scratch
    PreemptSwap,      ///< victim frozen to the host pool
    Resume,           ///< swapped session restored to a decode slot
    CacheHit,         ///< admission adopted a cached prefix
    BackfillGrant,    ///< prefill tokens granted into a pipeline bubble
    Handoff,          ///< prefill->decode KV stream initiated
    KnobChange,       ///< adaptive controller changed scheduler knobs
};

/** Printable names (JSON event names). */
const char *traceKindName(TraceKind k);
const char *traceDecisionName(TraceDecision d);

/** One recorded event. Instants have t1 == t0. */
struct TraceEvent
{
    TraceKind kind = TraceKind::Decision;
    double t0 = 0.0; ///< modeled seconds (fleet clock)
    double t1 = 0.0;

    /** Logical device track; -1 = the fleet/scheduler track. */
    int device = -1;
    /** DMA channel for Transfer events (hw::DmaChannel value). */
    int channel = -1;
    /** Per-device sub-track (admission-order slot) for step spans. */
    int lane = 0;

    uint64_t request = 0; ///< 0 = no single request (e.g. Defer)
    TraceDecision decision = TraceDecision::Admit;

    int tokens = 0;        ///< committed / granted / cached tokens
    int deepest_layer = 0; ///< step spans: early-exit depth
    int stages_used = 0;   ///< step spans: pipeline stages occupied
    int batch = 0;         ///< iteration spans: decode-slot sessions
    int prefilling = 0;    ///< iteration spans: mid-prefill sessions

    /**
     * Deterministic same-time tiebreak: the control shard stamps a
     * monotonic counter (scheduler decisions replay identically for
     * any worker count); worker shards stamp the session's
     * admission-order slot in the active batch.
     */
    uint64_t seq = 0;

    /**
     * Step spans: modeled seconds per op class, (hw::OpClass value,
     * seconds) for every class the step charged. Sums to the span
     * length.
     */
    std::vector<std::pair<int, double>> op_s;
};

/** Trace knobs. Off (default) records and allocates nothing. */
struct TraceOptions
{
    bool enabled = false;
};

/** One thread's private append-only event buffer. */
class TraceShard
{
  public:
    void emit(TraceEvent e) { events_.push_back(std::move(e)); }
    const std::vector<TraceEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }

    /**
     * Clamp the end of every event from index `from` on to `t_max`.
     * The scheduler uses this to pin worker step spans inside their
     * iteration: the clock advance is priced from per-device (or
     * per-stage) reductions whose fp rounding can land an ulp below
     * a single session's cost sum, and a span must never outlive
     * the iteration that charged it.
     */
    void clampEnds(size_t from, double t_max)
    {
        for (size_t i = from; i < events_.size(); ++i)
            if (events_[i].t1 > t_max)
                events_[i].t1 = t_max;
    }

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Sharded fleet-trace recorder: one shard per worker engine plus a
 * control shard for the scheduler thread. Shards are plain vectors a
 * single thread appends to — no locks, no atomics — merged into one
 * deterministic sequence after the workers join.
 */
class TraceRecorder
{
  public:
    TraceRecorder(size_t n_workers, bool enabled);

    bool enabled() const { return enabled_; }

    /** The scheduler thread's shard. */
    TraceShard &control() { return shards_.back(); }
    /** Worker thread `i`'s shard (exclusive to that thread). */
    TraceShard &worker(size_t i) { return shards_[i]; }

    /**
     * All shards' events in one deterministic order: sorted by
     * (t0, device, kind, seq, request, channel, lane, t1). The
     * result is bit-identical for any worker count recording the
     * same modeled run. Empty while disabled.
     */
    std::vector<TraceEvent> merged() const;

  private:
    std::vector<TraceShard> shards_;
    bool enabled_;
};

/**
 * Render merged events as Chrome trace-event JSON. Processes:
 * pid 0 = fleet/scheduler, pid 1+d = modeled device d (named by its
 * prefill/decode role). Threads within a device: one per step-span
 * lane, plus one per DMA channel. Requests become flow events
 * (ph "s"/"f") keyed by request id.
 */
std::string chromeTraceJson(const std::vector<TraceEvent> &events,
                            int n_devices, int n_prefill_devices);

/** Write chromeTraceJson to `path`. @return false on I/O failure. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TraceEvent> &events,
                      int n_devices, int n_prefill_devices);

} // namespace specee::obs

#endif // SPECEE_OBS_TRACE_HH
