/**
 * @file
 * Declarative service-level objectives and per-request attainment.
 *
 * A SloSpec names the latency objectives one request tier promises:
 * time to first token, worst inter-token gap, and end-to-end
 * completion deadline (each <= 0 = no objective). The scheduler
 * judges every retired request against its tier's spec and stores
 * the verdict in the RequestOutcome; the fleet reduction and the
 * metrics timeline then report goodput UNDER SLO — tokens delivered
 * by requests that kept every promise, per second — which is the
 * production-fleet objective a future adaptive control plane will
 * optimize (raw tok/s rewards throughput that blows the latency
 * budget).
 *
 * Judging is pure arithmetic over the outcome's modeled timeline, so
 * attaching a spec never changes emissions or modeled costs: the
 * default (no objectives) is bit-inert on the scheduler.
 */

#ifndef SPECEE_OBS_SLO_HH
#define SPECEE_OBS_SLO_HH

namespace specee::obs {

/** Latency objectives of one request tier; <= 0 disables each. */
struct SloSpec
{
    double ttft_s = 0.0;     ///< max time to first token (arrival-relative)
    double itl_s = 0.0;      ///< max inter-token gap (worst, not mean)
    double deadline_s = 0.0; ///< max end-to-end latency (arrival-relative)

    /** True when at least one objective is set. */
    bool any() const
    {
        return ttft_s > 0.0 || itl_s > 0.0 || deadline_s > 0.0;
    }
};

/**
 * Per-tier objectives, indexed by the scheduler's latency tier
 * (0 = interactive, 1 = batch — serve::Priority's values). Kept
 * tier-indexed rather than serve-typed so obs stays below serve in
 * the layering.
 */
struct TierSlo
{
    SloSpec interactive;
    SloSpec batch;

    bool any() const { return interactive.any() || batch.any(); }

    const SloSpec &tier(int t) const
    {
        return t == 0 ? interactive : batch;
    }
};

/**
 * One request's attainment verdict. Unevaluated verdicts (no
 * objective configured for the tier, or the consumer cancelled the
 * stream) attain vacuously, so goodput_under_slo degenerates to
 * completed-request goodput when SLO accounting is off.
 */
struct SloVerdict
{
    bool evaluated = false; ///< some objective applied to this request
    bool ttft_ok = true;
    bool itl_ok = true;
    bool deadline_ok = true;

    bool attained() const { return ttft_ok && itl_ok && deadline_ok; }
};

/**
 * Judge one retired request. `completed` is false for deadline
 * drops: an unfinished request fails every configured objective (it
 * never delivered what it promised). All times are modeled seconds;
 * ttft/latency are arrival-relative, max_itl is the worst delivered
 * inter-token gap.
 */
SloVerdict judge(const SloSpec &spec, bool completed, double ttft_s,
                 double max_itl_s, double latency_s);

} // namespace specee::obs

#endif // SPECEE_OBS_SLO_HH
