#include "obs/slo.hh"

namespace specee::obs {

SloVerdict
judge(const SloSpec &spec, bool completed, double ttft_s,
      double max_itl_s, double latency_s)
{
    SloVerdict v;
    if (!spec.any())
        return v; // unevaluated: attains vacuously
    v.evaluated = true;
    if (spec.ttft_s > 0.0)
        v.ttft_ok = completed && ttft_s <= spec.ttft_s;
    if (spec.itl_s > 0.0)
        v.itl_ok = completed && max_itl_s <= spec.itl_s;
    if (spec.deadline_s > 0.0)
        v.deadline_ok = completed && latency_s <= spec.deadline_s;
    return v;
}

} // namespace specee::obs
