/**
 * @file
 * Wall-clock stopwatch for measuring real execution time of kernels
 * (used by the predictor design-space exploration and the kernel
 * micro-benchmarks; paper-figure latencies come from hw::CostModel).
 */

#ifndef SPECEE_UTIL_STOPWATCH_HH
#define SPECEE_UTIL_STOPWATCH_HH

#include <chrono>

namespace specee {

/** Simple monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

    /** Microseconds elapsed. */
    double micros() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace specee

#endif // SPECEE_UTIL_STOPWATCH_HH
