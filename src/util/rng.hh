/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator draw from an explicitly
 * seeded Rng so every test and benchmark is bit-reproducible. The
 * generator is xoshiro256**, seeded through SplitMix64.
 */

#ifndef SPECEE_UTIL_RNG_HH
#define SPECEE_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specee {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Streams can be forked with fork() to give independent substreams
 * to different components without coupling their draw sequences.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). @pre lo <= hi */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (mean/sd parameterized). */
    double normal(double mean = 0.0, double sd = 1.0);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized weight vector.
     * @pre weights not all zero.
     */
    size_t categorical(const std::vector<float> &weights);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(next() % i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent generator for substream `stream`. */
    Rng fork(uint64_t stream) const;

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with exponent s,
 * implemented by inverse-CDF binary search (O(log n) per sample).
 */
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double s);

    /** Draw one index. */
    size_t sample(Rng &rng) const;

    /** Probability mass of index i. */
    double pmf(size_t i) const;

    size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace specee

#endif // SPECEE_UTIL_RNG_HH
