/**
 * @file
 * Logging, assertion and error-termination helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a SpecEE bug), fatal() is for unrecoverable user error
 * (bad configuration), warn()/inform() are advisory.
 */

#ifndef SPECEE_UTIL_LOGGING_HH
#define SPECEE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace specee {

/** Format a printf-style message into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal invariant violation (a SpecEE bug). */
#define specee_panic(...) \
    ::specee::detail::panicImpl(__FILE__, __LINE__, ::specee::strfmt(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define specee_fatal(...) \
    ::specee::detail::fatalImpl(__FILE__, __LINE__, ::specee::strfmt(__VA_ARGS__))

/** Advisory warning; never stops execution. */
#define specee_warn(...) \
    ::specee::detail::warnImpl(::specee::strfmt(__VA_ARGS__))

/** Informational status message. */
#define specee_inform(...) \
    ::specee::detail::informImpl(::specee::strfmt(__VA_ARGS__))

/** Assert an invariant; active in all build types. */
#define specee_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::specee::detail::panicImpl(__FILE__, __LINE__,                 \
                std::string("assertion failed: " #cond " — ") +             \
                ::specee::strfmt(__VA_ARGS__));                             \
        }                                                                   \
    } while (0)

} // namespace specee

#endif // SPECEE_UTIL_LOGGING_HH
