#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace specee {

namespace {

inline uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    specee_assert(lo <= hi, "uniformInt(%d, %d)", lo, hi);
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal(double mean, double sd)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + sd * spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return mean + sd * r * std::cos(theta);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<float> &weights)
{
    double total = 0.0;
    for (float w : weights)
        total += std::max(0.0f, w);
    specee_assert(total > 0.0, "categorical with all-zero weights");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += std::max(0.0f, weights[i]);
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork(uint64_t stream) const
{
    // Mix the current state with the stream id so forks are independent
    // of subsequent draws on the parent.
    uint64_t seed = s_[0] ^ (stream * 0x9e3779b97f4a7c15ull) ^ s_[3];
    return Rng(seed);
}

ZipfSampler::ZipfSampler(size_t n, double s)
{
    specee_assert(n > 0, "empty zipf support");
    cdf_.resize(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto &c : cdf_)
        c /= total;
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(size_t i) const
{
    specee_assert(i < cdf_.size(), "zipf pmf out of range");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

} // namespace specee
