/**
 * @file
 * AdaInfer baseline predictor bank (§2.3, Table 1).
 *
 * AdaInfer attaches the full LM head after every decoder layer,
 * derives basic statistics of the full-vocabulary distribution
 * (top-1 probability, gap, entropy) and feeds them to an SVM. There
 * is no verification step, so premature exits emit the wrong token
 * directly — which is why its accuracy trails SpecEE in Table 4 —
 * and the per-layer full-head traversal is what makes its prediction
 * phase cost ~20% of end-to-end latency (§3.1).
 */

#ifndef SPECEE_ENGINES_ADAINFER_HH
#define SPECEE_ENGINES_ADAINFER_HH

#include <vector>

#include "nn/svm.hh"
#include "tensor/matrix.hh"

namespace specee::engines {

/** Per-layer SVM bank for the AdaInfer baseline. */
class AdaInferBank
{
  public:
    AdaInferBank() = default;

    /** Trained per-exit-layer SVMs (filled by PredictorTrainer). */
    std::vector<nn::LinearSvm> svms;

    /**
     * Decision margin: exits require margin > `margin`.
     */
    float margin = 0.55f;

    /**
     * Consecutive positive decisions required before exiting.
     * Together with the margin this reproduces AdaInfer's reported
     * conservativeness (its actual exits sit well above the
     * theoretical earliest layer — 62-75% normalized in Fig. 7,
     * ~28.9/32 average layers in Table 4).
     */
    int patience = 4;

    bool empty() const { return svms.empty(); }
    int nLayers() const { return static_cast<int>(svms.size()); }

    /** Exit decision at `layer` from the 3-dim AdaInfer features. */
    bool shouldExit(int layer, tensor::CSpan feats) const;
};

} // namespace specee::engines

#endif // SPECEE_ENGINES_ADAINFER_HH
