#include "engines/engine_config.hh"

#include <algorithm>

#include "util/logging.hh"

namespace specee::engines {

int
TreeShape::totalNodes() const
{
    int n = 0;
    for (int w : widths)
        n += w;
    return n;
}

EngineConfig
EngineConfig::huggingFace()
{
    EngineConfig c;
    c.name = "HuggingFace";
    // HF transformers: eager per-module kernels, Python dispatch.
    c.bw_efficiency = 0.30;
    c.fixed_overhead_s = 2.0e-3;
    return c;
}

EngineConfig
EngineConfig::vllm()
{
    EngineConfig c;
    c.name = "vllm";
    c.paged_kv = true;
    // Fused CUDA kernels + paged attention; single-stream serving.
    c.bw_efficiency = 0.52;
    c.fixed_overhead_s = 4.0e-3;
    return c;
}

EngineConfig
EngineConfig::awq()
{
    EngineConfig c;
    c.name = "AWQ";
    c.quantized = true;
    // HF-based runtime with W4 fused GEMV kernels; dequantization
    // lowers achieved bandwidth relative to fp16 reads.
    c.bw_efficiency = 0.24;
    c.fixed_overhead_s = 2.0e-3;
    return c;
}

EngineConfig
EngineConfig::eagle()
{
    EngineConfig c;
    c.name = "EAGLE";
    c.spec_decode = true;
    // EAGLE's released code is HF-based; extra tree bookkeeping.
    c.bw_efficiency = 0.30;
    c.fixed_overhead_s = 4.5e-3;
    return c;
}

EngineConfig
EngineConfig::adaInfer()
{
    EngineConfig c = huggingFace();
    c.name = "AdaInfer";
    c.adainfer = true;
    return c;
}

EngineConfig
EngineConfig::raeeBaseline()
{
    EngineConfig c = huggingFace();
    c.name = "RAEE";
    c.raee = true;
    return c;
}

EngineConfig
EngineConfig::llamaCpp()
{
    EngineConfig c;
    c.name = "llama.cpp";
    // PC scenario: fp16 model larger than VRAM -> layer offload.
    c.allow_offload = true;
    c.bw_efficiency = 0.80;
    c.fixed_overhead_s = 2.0e-3;
    // Hybrid tree verification rebuilds the CPU-GPU compute graph
    // once per speculative pass.
    c.spec_pass_overhead_s = 18.0e-3;
    return c;
}

EngineConfig
EngineConfig::powerInfer()
{
    EngineConfig c;
    c.name = "PowerInfer";
    c.sparse_ffn = true;
    c.allow_offload = true;
    // Hot-neuron GPU residency; sparse gathers lower efficiency.
    c.bw_efficiency = 0.45;
    c.fixed_overhead_s = 6.0e-3;
    c.spec_pass_overhead_s = 18.0e-3;
    return c;
}

EngineConfig
EngineConfig::withSpecEE(bool with_t2) const
{
    EngineConfig c = *this;
    c.name = "SpecEE+" + name;
    c.adainfer = false;
    c.early_exit = true;
    c.offline_sched = with_t2;
    c.online_sched = with_t2;
    // SpecEE's released implementation is a fused C++/CUDA backend
    // (§7.1.2). When grafted onto eager Python baselines (HF, AWQ —
    // below ~0.4 achieved bandwidth) it dispatches leaner than the
    // host framework; already-fused or already-custom runtimes
    // (vllm, llama.cpp, EAGLE) gain nothing (DESIGN.md §5).
    if (bw_efficiency < 0.4 && !spec_decode) {
        c.bw_efficiency = std::min(0.95, bw_efficiency * 1.06);
        c.fixed_overhead_s = fixed_overhead_s * 0.6;
    }
    return c;
}

EngineConfig
EngineConfig::withWeightBackend(tensor::WeightBackend backend) const
{
    specee_assert(!quantized,
                  "weight_backend and the legacy `quantized` flag are "
                  "mutually exclusive");
    EngineConfig c = *this;
    c.weight_backend = backend;
    c.name = name + "[" + tensor::weightBackendName(backend) + "]";
    return c;
}

EngineConfig
EngineConfig::withSharding(int tp_degree, int pp_degree) const
{
    specee_assert(tp_degree >= 1 && pp_degree >= 1,
                  "sharding degrees must be >= 1, got tp=%d pp=%d",
                  tp_degree, pp_degree);
    EngineConfig c = *this;
    c.tp = tp_degree;
    c.pp = pp_degree;
    if (tp_degree > 1 || pp_degree > 1) {
        c.name = name + "[tp" + std::to_string(tp_degree) + "pp" +
                 std::to_string(pp_degree) + "]";
    }
    return c;
}

EngineConfig
EngineConfig::withSpecDecode() const
{
    EngineConfig c = *this;
    if (c.name.rfind("SpecEE+", 0) != 0)
        c.name = "SpecEE+" + c.name;
    c.spec_decode = true;
    return c;
}

} // namespace specee::engines
