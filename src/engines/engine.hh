/**
 * @file
 * The inference engine: one loop, composable features.
 *
 * Every baseline framework (HuggingFace, vllm, AWQ, llama.cpp,
 * PowerInfer, EAGLE, AdaInfer) and every SpecEE variant is an
 * EngineConfig over this class. The engine runs the functional
 * simulator (real math at sim dims) and in parallel prices every
 * logical operator at the true Llama-2 dimensions on the configured
 * platform, so each run yields tokens + quality AND modeled
 * latency / energy / memory.
 */

#ifndef SPECEE_ENGINES_ENGINE_HH
#define SPECEE_ENGINES_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/features.hh"
#include "core/online_scheduler.hh"
#include "core/predictor.hh"
#include "core/raee.hh"
#include "engines/adainfer.hh"
#include "engines/engine_config.hh"
#include "hw/cost_model.hh"
#include "hw/hardware_model.hh"
#include "hw/memory_tracker.hh"
#include "model/draft_model.hh"
#include "model/stage_graph.hh"
#include "model/target_model.hh"
#include "oracle/corpus.hh"
#include "workload/datasets.hh"
#include "workload/evaluator.hh"

namespace specee::engines {

class DecodeSession;

/** Aggregate statistics of one engine run. */
struct RunStats
{
    std::string engine;
    std::string dataset;
    std::string model;
    std::string platform;

    long tokens = 0;
    double modeled_time_s = 0.0;
    double tokens_per_s = 0.0;

    double avg_forward_layers = 0.0;
    double avg_active_predictors = 0.0;
    long predictor_invocations = 0;
    long exits = 0;
    long verify_calls = 0;
    long verify_rejects = 0;
    std::vector<long> exit_histogram; ///< per exit layer; exits only

    hw::OpLog oplog;
    double avg_power_w = 0.0;
    double energy_per_token_j = 0.0;
    double peak_mem_gb = 0.0;

    // Speculative decoding
    long passes = 0;
    double avg_commit_per_pass = 0.0;
    long map_complexity_independent = 0;
    long map_complexity_merged = 0;
};

/** Emissions + statistics of one run. */
struct RunResult
{
    std::vector<workload::Emission> emissions;
    RunStats stats;
};

/** Composable LLM inference engine. */
class Engine
{
  public:
    Engine(const EngineConfig &ecfg, const model::ModelConfig &mcfg,
           const hw::HardwareSpec &spec,
           const oracle::SyntheticCorpus &corpus);

    /** Attach the trained SpecEE predictor bank (required for EE). */
    void setPredictors(const core::ExitPredictor *preds);

    /** Attach the trained AdaInfer SVM bank. */
    void setAdaInferBank(const AdaInferBank *bank);

    /** Attach the RAEE retrieval index. */
    void setRaeeIndex(const core::RaeeIndex *index);

    /** Offline hot-layer set from profiling (T2 offline scheduling). */
    void setOfflineHotLayers(std::vector<int> layers);

    /** Execute a workload; deterministic under `seed`. */
    RunResult run(const workload::Workload &w, uint64_t seed = 1);

    /**
     * Per-request entry point for the serving layer: run exactly one
     * instance of `w` under its own rng stream. Re-entrant — every
     * call starts from a fresh model/KV state, so a scheduler can
     * interleave requests freely on one engine and the result depends
     * only on (instance, seed), never on what ran before.
     */
    RunResult runOne(const workload::Workload &w, size_t instance,
                     uint64_t seed = 1);

    /**
     * Stepwise per-request entry point for the live serving layer: a
     * self-contained DecodeSession over a single-instance workload,
     * advanced one iteration at a time by an external scheduler.
     * `kv` optionally routes the session's KV through a shared fleet
     * pool (a model::SequenceKv view); the finalized session result
     * is bit-identical to runOne(w, 0, seed).
     *
     * Sessions of one engine share its model weights; callers must
     * step them from one thread at a time (sessions of different
     * engines are independent).
     */
    std::unique_ptr<DecodeSession>
    makeSession(const workload::Workload &w, uint64_t seed,
                std::unique_ptr<model::KvStore> kv = nullptr);

    const EngineConfig &config() const { return ecfg_; }
    const model::ModelConfig &modelConfig() const { return mcfg_; }
    const hw::HardwareSpec &platform() const { return hwspec_; }

    /** Fraction of weight bytes resident on the device (PC offload). */
    double deviceWeightFrac() const { return devWeightFrac_; }

    /**
     * Memory model of this engine's deployment (weight backend,
     * draft model, deployed predictors) — the single source of the
     * legacy-AWQ vs whole-model-backend selection rule, shared by
     * per-request peak_mem_gb and the serving layer's fleet view.
     */
    hw::MemoryTracker makeMemoryTracker() const;

    /**
     * Layer-range stage partition of this engine's deployment
     * (EngineConfig::pp contiguous stages; a single stage when
     * unsharded). Shared by the cost charges (handoff crossings),
     * the per-stage StepCost split and the serving scheduler's
     * stage-occupancy tracking.
     */
    const model::StageGraph &stageGraph() const { return stages_; }

    /** Tensor-parallel ways each stage's weights split across. */
    int tpDegree() const { return ecfg_.tp; }

    /** Exitable layers (n_layers - 1). */
    int nExitLayers() const { return mcfg_.n_layers - 1; }

  private:
    friend class DecodeSession;

    struct TokenOutcome
    {
        int token = -1;      ///< emitted token
        int layers_used = 0; ///< decoder layers executed
        bool exited = false; ///< early exit taken
        int exit_layer = -1; ///< layer of the exit (if any)
        int predictors_used = 0; ///< activated predictors this token
    };

    /** True when a predictor is active at `layer` for this token. */
    bool predictorActive(int layer,
                         const core::OnlineScheduler *online) const;

    /**
     * Functionally decode one token (input -> emission) with the
     * configured exit policy. Does not charge costs when
     * `log == nullptr` (used inside speculative passes, which charge
     * at pass granularity). `exit_threshold` is the SpecEE predictor
     * confidence bar for this token — sessions pass their own copy
     * (EngineConfig::exit_threshold unless an adaptive controller
     * overrode it), so exit aggressiveness is per-request state, not
     * engine state.
     */
    TokenOutcome decodeToken(int input_token,
                             const model::TokenScript &script,
                             const model::DraftModel &dlm,
                             core::FeatureExtractor &fx,
                             core::OnlineScheduler *online,
                             hw::OpLog *log, int logical_pos, Rng &rng,
                             RunStats &stats, float exit_threshold);

    /** Assert the configured policies have their trained artifacts. */
    void checkRunnable() const;

    /**
     * Reduce accumulated per-token stats to run-level aggregates
     * (averages, modeled time/energy, peak memory). Shared by run()
     * and owning DecodeSessions so both finalize identically.
     */
    void finalizeRun(RunResult &out, const workload::Workload &w,
                     long total_committed) const;

    // --- cost emission at true dimensions -------------------------------
    /** fp16-equivalent weight traffic of one decoder layer. */
    double layerWeightBytes(bool ffn_sparse) const;
    /** Head/embedding compression factor (legacy AWQ keeps fp16). */
    double headCompression() const;
    void chargeLayers(hw::OpLog &log, int n_layers, int batch,
                      int logical_pos) const;
    void chargeKvFill(hw::OpLog &log, int n_layers, int batch) const;
    void chargeLmHeadFull(hw::OpLog &log, int batch) const;
    void chargeLmHeadSliced(hw::OpLog &log, int groups, int k,
                            int layer_events) const;
    void chargePredictor(hw::OpLog &log, int batch,
                         int layer_events) const;
    void chargeDraft(hw::OpLog &log, int forwards) const;
    void chargeEmbed(hw::OpLog &log, int n) const;
    void chargeOverhead(hw::OpLog &log) const;

    /**
     * Tensor-parallel collective traffic of `n_layers` decoder
     * layers over `tokens` activation rows: two ring all-reduces per
     * layer (post-attention, post-FFN) at 2(t-1)/t of the activation
     * bytes each, priced over the interconnect. No-op at tp = 1.
     */
    void chargeTpAllReduce(hw::OpLog &log, int n_layers,
                           double tokens) const;

    /**
     * Pipeline activation handoffs of a step that traversed
     * `layers_used` layers: one residual-stream transfer per stage
     * boundary crossed, over `tokens` activation rows. An early exit
     * crosses only the boundaries up to its exit stage. No-op at
     * pp = 1.
     */
    void chargePpHandoff(hw::OpLog &log, int layers_used,
                         double tokens) const;

    /**
     * Modeled host-link time to move the KV of `positions` cached
     * positions (true dims) one way. Pure pricing — the scheduler's
     * swap-vs-recompute policy calls this without charging.
     */
    double kvSwapSeconds(long positions) const;

    /**
     * Price one KV swap transfer (KvSwapOut or KvSwapIn) of
     * `positions` cached positions at true dims into `log`. Swap
     * bytes are private per-request host-link traffic — they never
     * amortize across the batch. @return modeled seconds
     */
    double chargeKvSwap(hw::OpLog &log, hw::OpClass cls,
                        long positions) const;

    /**
     * Modeled peer-link time to stream the KV of `positions` cached
     * positions (true dims) from a prefill device to a decode device
     * — one copy-engine stream per layer's block chain. Pure pricing
     * for the scheduler's handoff planning.
     */
    double kvHandoffSeconds(long positions) const;

    /**
     * Price one prefill->decode KV handoff (OpClass::KvHandoff) of
     * `positions` cached positions at true dims into `log`. Handoff
     * bytes are private per-request peer-link traffic — they never
     * amortize across the batch. @return modeled seconds
     */
    double chargeKvHandoff(hw::OpLog &log, long positions) const;

    /**
     * Price one prefill chunk of `n_tokens` prompt tokens (true
     * dims) appended after `past_len` already-ingested positions.
     * The layer weight stream is charged once for the whole chunk
     * (PrefillWeights, batch-amortized: a mixed iteration reads the
     * weights once for prefill chunks and decode steps alike); the
     * chunk-scaled side — GEMM flops over n_tokens, causal attention
     * over the growing past, per-token activations and KV writes —
     * is charged as private PrefillCompute traffic.
     */
    void chargePrefillChunk(hw::OpLog &log, int n_tokens,
                            int past_len) const;

    EngineConfig ecfg_;
    model::ModelConfig mcfg_;
    hw::HardwareSpec hwspec_;
    model::StageGraph stages_;
    const oracle::SyntheticCorpus &corpus_;
    std::unique_ptr<model::TargetModel> tm_;
    const core::ExitPredictor *preds_ = nullptr;
    const AdaInferBank *ada_ = nullptr;
    const core::RaeeIndex *raee_ = nullptr;
    std::vector<bool> offlineHotMask_;
    bool haveOfflineSet_ = false;
    double devWeightFrac_ = 1.0;
    /** Engine-side Q4 factor of the legacy AWQ mode (else 1.0). */
    double legacyQuantFactor_ = 1.0;
    /** Whole-model backend compression (1.0 in legacy AWQ mode). */
    double backendCompression_ = 1.0;
    std::unique_ptr<hw::CostModel> cost_;
};

} // namespace specee::engines

#endif // SPECEE_ENGINES_ENGINE_HH
