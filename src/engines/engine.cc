#include "engines/engine.hh"

#include <algorithm>
#include <cmath>

#include "core/hyper_token.hh"
#include "core/token_tree.hh"
#include "core/verifier.hh"
#include "engines/decode_session.hh"
#include "hw/memory_tracker.hh"
#include "oracle/profiles.hh"
#include "tensor/kernels.hh"
#include "util/logging.hh"

namespace specee::engines {

namespace {
constexpr double kFp16 = 2.0;
constexpr double kQ4Factor = 4.5 / 16.0; ///< Q4 bytes per fp16 byte
} // namespace

Engine::Engine(const EngineConfig &ecfg, const model::ModelConfig &mcfg,
               const hw::HardwareSpec &spec,
               const oracle::SyntheticCorpus &corpus)
    : ecfg_(ecfg), mcfg_(mcfg), hwspec_(spec), corpus_(corpus),
      stages_(mcfg.n_layers, ecfg.pp)
{
    specee_assert(!ecfg.quantized ||
                  ecfg.weight_backend == tensor::WeightBackend::Fp32,
                  "legacy `quantized` and `weight_backend` are "
                  "mutually exclusive");
    specee_assert(ecfg.tp >= 1, "tp must be >= 1, got %d", ecfg.tp);
    if (ecfg.tp > 1 || ecfg.pp > 1) {
        // Stage-level sharding composes tp x pp single-device specs;
        // the legacy monolithic multi-GPU presets (a100x4's
        // n_devices / sync_us_per_layer) model the whole node in one
        // spec and would double-count collectives.
        specee_assert(spec.n_devices == 1,
                      "tp/pp sharding cannot combine with the "
                      "monolithic multi-device preset %s",
                      spec.name.c_str());
        specee_assert(spec.interconnect_gbs > 0.0,
                      "tp/pp sharding on platform %s, which has no "
                      "peer link (interconnect_gbs = 0)",
                      spec.name.c_str());
        specee_assert(!ecfg.allow_offload,
                      "tp/pp sharding cannot combine with host "
                      "weight offload");
    }
    model::TargetModelOptions opts;
    opts.quantized = ecfg.quantized;
    opts.weight_backend = ecfg.weight_backend;
    opts.paged_kv = ecfg.paged_kv;
    opts.sparse_ffn = ecfg.sparse_ffn;
    opts.ffn_active_frac = ecfg.ffn_active_frac;
    opts.noise_seed = mcfg.weight_seed ^ 0xa0153;
    tm_ = std::make_unique<model::TargetModel>(mcfg, opts);

    // Legacy AWQ mode compresses only the projection charges (dense
    // head, fp16-priced draft), scaled engine-side; the whole-model
    // backend knob instead compresses every weight charge inside the
    // cost model.
    legacyQuantFactor_ = ecfg.quantized ? kQ4Factor : 1.0;
    backendCompression_ =
        ecfg.quantized ? 1.0
                       : tensor::weightCompression(ecfg.weight_backend);

    // Device/host weight split (PC scenario): weights that do not fit
    // in usable VRAM are served from host memory.
    devWeightFrac_ = 1.0;
    if (ecfg.allow_offload && spec.host_bw_gbs > 0.0) {
        const double quant = legacyQuantFactor_ * backendCompression_;
        const double weight_gb =
            mcfg.truthWeightBytes() * quant / 1e9;
        // Reserve room for KV cache and activations. The draft model
        // shares this workspace (it replaces activation scratch while
        // drafting), so it does not displace additional layers.
        const double reserve_gb = 1.0;
        const double usable = std::max(0.5, spec.vram_gb * 0.92 -
                                                reserve_gb);
        // PowerInfer keeps the hot (frequently active) weights on the
        // GPU, so its effective device fraction is high even when the
        // full model does not fit.
        if (ecfg.sparse_ffn) {
            devWeightFrac_ = std::min(1.0, usable / (weight_gb * 0.55));
        } else {
            devWeightFrac_ = std::min(1.0, usable / weight_gb);
        }
    }
    // Tensor parallelism splits every stage's weight/KV stream and
    // GEMM across tp concurrently-running devices: time divides by
    // tp while per-class power multiplies by tp (tp boards drawing
    // together), so modeled energy is conserved. The per-layer
    // all-reduce traffic this buys is charged at the call sites over
    // the interconnect. tp = 1 leaves the spec bit-identical.
    hw::HardwareSpec priced = spec;
    if (ecfg.tp > 1) {
        const double t = static_cast<double>(ecfg.tp);
        priced.mem_bw_gbs *= t;
        priced.compute_tflops *= t;
        priced.swap_bw_gbs *= t; // per-device PCIe, KV sharded too
        priced.tdp_w *= t;
        for (double &p : priced.power_w)
            p *= t;
    }
    cost_ = std::make_unique<hw::CostModel>(priced, ecfg.bw_efficiency,
                                            devWeightFrac_,
                                            backendCompression_);
}

void
Engine::setPredictors(const core::ExitPredictor *preds)
{
    preds_ = preds;
}

void
Engine::setAdaInferBank(const AdaInferBank *bank)
{
    ada_ = bank;
}

void
Engine::setRaeeIndex(const core::RaeeIndex *index)
{
    raee_ = index;
}

void
Engine::setOfflineHotLayers(std::vector<int> layers)
{
    offlineHotMask_.assign(static_cast<size_t>(nExitLayers()), false);
    for (int l : layers) {
        specee_assert(l >= 0 && l < nExitLayers(),
                      "offline hot layer %d out of range", l);
        offlineHotMask_[static_cast<size_t>(l)] = true;
    }
    haveOfflineSet_ = true;
}

bool
Engine::predictorActive(int layer,
                        const core::OnlineScheduler *online) const
{
    if (!ecfg_.fixed_predictor_layers.empty()) {
        return std::find(ecfg_.fixed_predictor_layers.begin(),
                         ecfg_.fixed_predictor_layers.end(), layer) !=
               ecfg_.fixed_predictor_layers.end();
    }
    const bool use_off = ecfg_.offline_sched && haveOfflineSet_;
    const bool use_on = ecfg_.online_sched && online != nullptr;
    if (!use_off && !use_on)
        return true; // T1 only: every layer hosts a predictor
    bool active = false;
    if (use_off)
        active = offlineHotMask_[static_cast<size_t>(layer)];
    if (!active && use_on) {
        // Cold start: with no exit history (and no offline set to
        // bootstrap from) every layer stays active until the first
        // exits populate the context window.
        active = online->filled() == 0 && !use_off
                     ? true
                     : online->isActive(layer);
    }
    return active;
}

// ---------------------------------------------------------------------------
// Cost emission (true dimensions)
// ---------------------------------------------------------------------------

double
Engine::layerWeightBytes(bool ffn_sparse) const
{
    // fp16-equivalent traffic; the legacy AWQ factor is applied at the
    // charge sites and the backend compression inside hw::CostModel.
    const double h = mcfg_.truth.hidden;
    const double f = mcfg_.truth.ffn;
    const double attn = 4.0 * h * h * kFp16;
    double ffn = 3.0 * h * f * kFp16;
    if (ffn_sparse)
        ffn *= ecfg_.ffn_active_frac;
    return attn + ffn;
}

void
Engine::chargeLayers(hw::OpLog &log, int n_layers, int batch,
                     int logical_pos) const
{
    if (n_layers <= 0)
        return;
    const double h = mcfg_.truth.hidden;
    const double wbytes =
        layerWeightBytes(ecfg_.sparse_ffn) * legacyQuantFactor_ * n_layers;
    const double params = layerWeightBytes(false) / kFp16;
    const double flops = 2.0 * params * n_layers * batch;
    // Each layer is ~10 fused kernels on a modern runtime.
    cost_->account(log, hw::OpClass::DecoderLayer, flops, wbytes,
                   /*act_bytes=*/2.0 * h * kFp16 * batch * n_layers,
                   /*kernels=*/10 * n_layers);

    // KV traffic: read all cached positions per layer, write one.
    const double kv_read =
        2.0 * h * kFp16 * static_cast<double>(logical_pos) * n_layers *
        batch;
    cost_->account(log, hw::OpClass::KvRead,
                   2.0 * h * logical_pos * n_layers * batch, 0.0, kv_read,
                   n_layers);

    if (hwspec_.sync_us_per_layer > 0.0) {
        cost_->accountFixed(log, hw::OpClass::Sync,
                            hwspec_.sync_us_per_layer * 1e-6 * n_layers);
    }
    chargeTpAllReduce(log, n_layers, batch);
    chargePpHandoff(log, n_layers, batch);
}

void
Engine::chargeTpAllReduce(hw::OpLog &log, int n_layers,
                          double tokens) const
{
    if (ecfg_.tp <= 1 || n_layers <= 0)
        return;
    const double t = static_cast<double>(ecfg_.tp);
    const double h = mcfg_.truth.hidden;
    // Ring all-reduce moves 2(t-1)/t of the payload per collective;
    // two collectives per layer (post-attention, post-FFN).
    const double ring = 2.0 * (t - 1.0) / t * h * kFp16 * tokens;
    cost_->accountInterconnect(log, hw::OpClass::TpAllReduce,
                               2.0 * ring * n_layers, 2 * n_layers);
}

void
Engine::chargePpHandoff(hw::OpLog &log, int layers_used,
                        double tokens) const
{
    const int crossings = stages_.handoffs(layers_used);
    if (crossings <= 0)
        return;
    const double h = mcfg_.truth.hidden;
    cost_->accountInterconnect(log, hw::OpClass::PpHandoff,
                               h * kFp16 * tokens * crossings,
                               crossings);
}

void
Engine::chargeKvFill(hw::OpLog &log, int n_layers, int batch) const
{
    if (n_layers <= 0)
        return;
    const double h = mcfg_.truth.hidden;
    const double wbytes =
        2.0 * h * h * kFp16 * legacyQuantFactor_ * n_layers;
    cost_->account(log, hw::OpClass::KvFill,
                   2.0 * 2.0 * h * h * n_layers * batch, wbytes,
                   2.0 * h * kFp16 * batch * n_layers, 2 * n_layers);
    // Under tensor parallelism the skipped layers still cross one
    // synchronization boundary each for the sharded k/v state.
    if (hwspec_.sync_us_per_layer > 0.0) {
        cost_->accountFixed(log, hw::OpClass::Sync,
                            0.5 * hwspec_.sync_us_per_layer * 1e-6 *
                                n_layers);
    }
}

void
Engine::chargeLmHeadFull(hw::OpLog &log, int batch) const
{
    // fp16 head in the legacy AWQ mode; compressed by the cost model
    // when a whole-model weight backend is configured.
    const double bytes = mcfg_.truthLmHeadBytes();
    const double flops =
        2.0 * mcfg_.truth.hidden * mcfg_.truth.vocab * batch;
    cost_->account(log, hw::OpClass::LmHeadFull, flops, bytes, 0.0, 1);
}

void
Engine::chargeLmHeadSliced(hw::OpLog &log, int groups, int k,
                           int layer_events) const
{
    // Sliced rows are per-request (non-amortizable) traffic, so they
    // are charged as activation bytes — compressed here rather than
    // by the cost model's weight term.
    const double bytes = static_cast<double>(mcfg_.truth.hidden) * k *
                         kFp16 * groups * headCompression();
    const double flops = 2.0 * mcfg_.truth.hidden * k * groups;
    // Feature extraction is a short kernel pipeline (sliced GEMV,
    // softmax, delta) issued once per activated layer regardless of
    // the number of hyper-token groups (Fig. 13's grouped GEMM).
    cost_->account(log, hw::OpClass::LmHeadSliced, flops, 0.0, bytes,
                   6 * layer_events);
}

void
Engine::chargePredictor(hw::OpLog &log, int batch, int layer_events) const
{
    const double params =
        preds_ != nullptr ? static_cast<double>(
                                preds_->paramsPerPredictor())
                          : 12.0 * 512 + 512;
    // Two linear layers + activations + threshold: ~8 launches per
    // activated layer. Together with feature extraction this prices a
    // predictor invocation at ~90us on A100, matching §7.4.4's
    // 0.9 ms/token over ~10 active predictors. Predictor MLPs stay
    // fp32 and device-resident regardless of the weight backend, so
    // their parameter reads are charged as activation traffic (no
    // backend compression, no offload split).
    cost_->account(log, hw::OpClass::Predictor, 2.0 * params * batch,
                   0.0, params * 4.0 + 64.0 * batch, 8 * layer_events);
    // Hybrid runtimes stall their GPU graph per host-side check.
    if (hwspec_.predictor_stall_us > 0.0) {
        cost_->accountFixed(log, hw::OpClass::Predictor,
                            hwspec_.predictor_stall_us * 1e-6 *
                                layer_events);
    }
}

void
Engine::chargeDraft(hw::OpLog &log, int forwards) const
{
    // §5.1: one draft forward costs about one decoder layer; the DLM
    // reuses the resident embedding/LM head, so we charge 1.2x a
    // layer's weight traffic per forward. The DLM ships fp16 in the
    // legacy AWQ mode but follows the whole-model weight backend
    // (cost-model compression) when one is configured.
    const double bytes =
        layerWeightBytes(false) * model::DraftModel::layerEquivalents();
    const double flops = bytes; // memory-bound either way
    for (int i = 0; i < forwards; ++i) {
        cost_->account(log, hw::OpClass::Draft, flops, bytes, 0.0, 12);
    }
}

void
Engine::chargeEmbed(hw::OpLog &log, int n) const
{
    // Embedding rows are weight-table reads (batch-amortizable in the
    // serving layer and compressed under a quantized backend).
    const double bytes =
        static_cast<double>(mcfg_.truth.hidden) * kFp16 * n;
    cost_->account(log, hw::OpClass::Embed, 0.0, bytes, 0.0, 1);
}

void
Engine::chargePrefillChunk(hw::OpLog &log, int n_tokens,
                           int past_len) const
{
    if (n_tokens <= 0)
        return;
    const int L = mcfg_.n_layers;
    const double h = mcfg_.truth.hidden;
    const double nt = static_cast<double>(n_tokens);

    // One full-depth weight stream per chunk, regardless of chunk
    // length — the roofline's memory leg, shared with decode peers.
    const double wbytes =
        layerWeightBytes(ecfg_.sparse_ffn) * legacyQuantFactor_ * L;
    cost_->account(log, hw::OpClass::PrefillWeights, 0.0, wbytes, 0.0,
                   10 * L);

    // Chunk-scaled compute leg: projection/FFN GEMMs over n_tokens
    // per layer, plus causal attention where token i of the chunk
    // attends to past_len + i + 1 cached positions.
    const double params = layerWeightBytes(false) / kFp16;
    const double attended =
        nt * static_cast<double>(past_len) + 0.5 * nt * (nt + 1.0);
    const double flops =
        (2.0 * params * nt + 2.0 * h * attended) * L;
    const double act_bytes =
        (2.0 * h * kFp16 * nt          // residual stream in/out
         + 2.0 * h * kFp16 * attended  // k/v reads of attention
         + 2.0 * h * kFp16 * nt) *     // k/v writes of the chunk
        L;
    cost_->account(log, hw::OpClass::PrefillCompute, flops, 0.0,
                   act_bytes, 2 * L);

    if (hwspec_.sync_us_per_layer > 0.0) {
        cost_->accountFixed(log, hw::OpClass::Sync,
                            hwspec_.sync_us_per_layer * 1e-6 * L);
    }
    chargeTpAllReduce(log, L, nt);
    chargePpHandoff(log, L, nt);
}

double
Engine::kvSwapSeconds(long positions) const
{
    if (positions <= 0)
        return 0.0;
    // One DMA per layer moves that layer's block range; the bytes
    // are the true-dims KV of every cached position.
    return cost_->swapSeconds(mcfg_.truthKvBytesPerToken() *
                                  static_cast<double>(positions),
                              mcfg_.n_layers);
}

double
Engine::chargeKvSwap(hw::OpLog &log, hw::OpClass cls,
                     long positions) const
{
    if (positions <= 0)
        return 0.0;
    return cost_->accountSwap(log, cls,
                              mcfg_.truthKvBytesPerToken() *
                                  static_cast<double>(positions),
                              mcfg_.n_layers);
}

double
Engine::kvHandoffSeconds(long positions) const
{
    if (positions <= 0)
        return 0.0;
    // Like the swap DMAs, one copy-engine stream per layer moves that
    // layer's block chain — but over the peer link, decode-device
    // bound, at the true-dims KV bytes of every cached position.
    return cost_->interconnectSeconds(mcfg_.truthKvBytesPerToken() *
                                          static_cast<double>(positions),
                                      mcfg_.n_layers);
}

double
Engine::chargeKvHandoff(hw::OpLog &log, long positions) const
{
    if (positions <= 0)
        return 0.0;
    return cost_->accountInterconnect(
        log, hw::OpClass::KvHandoff,
        mcfg_.truthKvBytesPerToken() * static_cast<double>(positions),
        mcfg_.n_layers);
}

double
Engine::headCompression() const
{
    // The legacy AWQ mode keeps the tied embedding / LM head fp16
    // (backendCompression_ is 1.0 there); a whole-model backend
    // compresses it like everything else.
    return backendCompression_;
}

void
Engine::chargeOverhead(hw::OpLog &log) const
{
    if (ecfg_.fixed_overhead_s > 0.0) {
        cost_->accountFixed(log, hw::OpClass::Overhead,
                            ecfg_.fixed_overhead_s);
    }
}

// ---------------------------------------------------------------------------
// Token decoding
// ---------------------------------------------------------------------------

Engine::TokenOutcome
Engine::decodeToken(int input_token, const model::TokenScript &script,
                    const model::DraftModel &dlm,
                    core::FeatureExtractor &fx,
                    core::OnlineScheduler *online, hw::OpLog *log,
                    int logical_pos, Rng &rng, RunStats &stats,
                    float exit_threshold)
{
    TokenOutcome out;
    const int n_exit = nExitLayers();
    const bool specee = ecfg_.early_exit && preds_ != nullptr;
    const bool adainf = ecfg_.adainfer && ada_ != nullptr &&
                        !ada_->empty();
    const bool use_raee =
        ecfg_.raee && raee_ != nullptr && !raee_->empty();

    std::vector<int> spec_tokens;
    if (specee) {
        spec_tokens = dlm.speculate(input_token, script.target,
                                    mcfg_.num_spec_tokens, rng);
        fx.beginToken(spec_tokens);
        if (log != nullptr)
            chargeDraft(*log, 1);
    }

    tm_->beginToken(input_token, script);
    if (log != nullptr)
        chargeEmbed(*log, 1);

    int active_this_token = 0;
    tensor::Vec full_logits;
    if (adainf)
        full_logits.resize(static_cast<size_t>(mcfg_.sim.vocab));

    // RAEE decides the exit layer up front from the layer-0 probe.
    int raee_exit = -1;
    // AdaInfer patience counter (consecutive positive SVM decisions).
    int ada_streak = 0;

    while (!tm_->doneAllLayers()) {
        const int l = tm_->currentLayer();
        tm_->runLayer();

        if (l >= n_exit)
            continue; // last layer hosts no predictor

        if (use_raee) {
            if (l == 0) {
                // Retrieval: ANN probe over the database, priced at
                // the true entry count and hidden width (Table 1's
                // High-memory / Heavy-prediction row).
                ++stats.predictor_invocations;
                raee_exit =
                    raee_->predictExitLayer(tm_->hidden(), ecfg_.raee_k);
                if (log != nullptr) {
                    const double scan_bytes = ecfg_.raee_db_entries *
                                              ecfg_.raee_scan_frac *
                                              mcfg_.truth.hidden * 2.0;
                    cost_->account(*log, hw::OpClass::Predictor,
                                   scan_bytes, scan_bytes, 0.0, 24);
                }
            }
            if (l == raee_exit) {
                out.token = tm_->globalArgmax(); // no verification
                if (log != nullptr)
                    chargeLmHeadFull(*log, 1);
                out.exited = true;
                out.exit_layer = l;
                break;
            }
        } else if (specee) {
            if (!predictorActive(l, online))
                continue;
            ++active_this_token;
            ++stats.predictor_invocations;
            tensor::CSpan feats = fx.extract(*tm_);
            if (log != nullptr) {
                chargeLmHeadSliced(*log, 1, mcfg_.num_spec_tokens, 1);
                chargePredictor(*log, 1, 1);
            }
            if (!preds_->shouldExit(l, feats, exit_threshold))
                continue;
            // Verification (§4.3.3): local result T' vs global result
            // T from the full head at this layer.
            ++stats.verify_calls;
            if (log != nullptr)
                chargeLmHeadFull(*log, 1);
            const size_t local_idx = tensor::argmax(fx.localProbs());
            auto v = core::Verifier::verify(*tm_, spec_tokens[local_idx]);
            if (!v.verified) {
                ++stats.verify_rejects;
                continue;
            }
            out.token = v.token;
            out.exited = true;
            out.exit_layer = l;
            break;
        } else if (adainf) {
            // AdaInfer: full LM head + SVM after every layer.
            ++stats.predictor_invocations;
            ++active_this_token;
            if (log != nullptr) {
                chargeLmHeadFull(*log, 1);
                chargePredictor(*log, 1, 1);
            }
            tm_->lmHead().full(tm_->hidden(), full_logits);
            const int global =
                static_cast<int>(tensor::argmax(full_logits));
            auto af = core::adaInferFeatures(full_logits);
            if (ada_->shouldExit(l, tensor::CSpan(af.data(), af.size())))
                ++ada_streak;
            else
                ada_streak = 0;
            // Patience scales with model depth (4 at 32 layers).
            const int patience = std::min(
                ada_->patience, std::max(1, mcfg_.n_layers / 8));
            if (ada_streak >= patience) {
                out.token = global; // no verification
                out.exited = true;
                out.exit_layer = l;
                break;
            }
        }
    }

    if (out.exited) {
        out.layers_used = out.exit_layer + 1;
        const int filled = tm_->finishEarly();
        if (log != nullptr)
            chargeKvFill(*log, filled, 1);
        ++stats.exits;
        if (static_cast<size_t>(out.exit_layer) <
            stats.exit_histogram.size()) {
            ++stats.exit_histogram[static_cast<size_t>(out.exit_layer)];
        }
        if (online != nullptr)
            online->recordExit(out.exit_layer);
    } else {
        out.token = tm_->runRemainingLayers();
        out.layers_used = mcfg_.n_layers;
        if (log != nullptr)
            chargeLmHeadFull(*log, 1);
    }

    if (log != nullptr) {
        chargeLayers(*log, out.layers_used, 1, logical_pos);
        chargeOverhead(*log);
    }
    stats.avg_active_predictors += active_this_token;
    out.predictors_used = active_this_token;
    return out;
}

// ---------------------------------------------------------------------------
// Run paths
// ---------------------------------------------------------------------------

void
Engine::checkRunnable() const
{
    if (ecfg_.early_exit)
        specee_assert(preds_ != nullptr,
                      "early exit requires trained predictors");
    if (ecfg_.adainfer)
        specee_assert(ada_ != nullptr && !ada_->empty(),
                      "AdaInfer engine requires a trained SVM bank");
    if (ecfg_.raee)
        specee_assert(raee_ != nullptr && !raee_->empty(),
                      "RAEE engine requires a retrieval index");
}

void
Engine::finalizeRun(RunResult &out, const workload::Workload &w,
                    long total_committed) const
{
    if (out.stats.passes > 0) {
        out.stats.avg_commit_per_pass =
            static_cast<double>(total_committed) /
            static_cast<double>(out.stats.passes);
    }

    RunStats &st = out.stats;
    if (st.tokens > 0) {
        st.avg_forward_layers /= static_cast<double>(st.tokens);
        st.avg_active_predictors /= static_cast<double>(st.tokens);
    }
    const auto grand = st.oplog.grand();
    st.modeled_time_s = grand.time_s;
    st.tokens_per_s =
        st.modeled_time_s > 0.0
            ? static_cast<double>(st.tokens) / st.modeled_time_s
            : 0.0;
    st.avg_power_w = st.oplog.avgPowerW();
    st.energy_per_token_j =
        st.tokens > 0 ? grand.energy_j / static_cast<double>(st.tokens)
                      : 0.0;

    const hw::MemoryTracker mem = makeMemoryTracker();
    const int max_tokens =
        w.true_prompt_len +
        (w.instances.empty()
             ? 0
             : static_cast<int>(w.instances.front().steps.size()));
    st.peak_mem_gb = hw::MemoryTracker::toGiB(mem.totalBytes(max_tokens));
}

hw::MemoryTracker
Engine::makeMemoryTracker() const
{
    const bool with_dlm = ecfg_.early_exit || ecfg_.spec_decode;
    const int n_preds =
        ecfg_.early_exit && preds_ != nullptr ? preds_->nExitLayers() : 0;
    const size_t pred_params =
        preds_ != nullptr ? preds_->paramsPerPredictor() : 0;
    // Legacy AWQ: Q4 target weights, fp16 DLM (matches chargeDraft);
    // whole-model backend: the DLM ships in the same backend.
    return ecfg_.quantized
               ? hw::MemoryTracker(mcfg_, /*quantized=*/true, with_dlm,
                                   n_preds, pred_params)
               : hw::MemoryTracker(mcfg_, ecfg_.weight_backend, with_dlm,
                                   n_preds, pred_params);
}

RunResult
Engine::run(const workload::Workload &w, uint64_t seed)
{
    specee_assert(!w.instances.empty(), "empty workload");
    checkRunnable();

    const auto &profile = oracle::profileByName(w.dataset);
    const double hit = ecfg_.draft_hit_override >= 0.0
                           ? ecfg_.draft_hit_override
                           : profile.draft_hit_rate;
    model::DraftModel dlm(mcfg_, corpus_, hit);

    RunResult out;
    out.stats.engine = ecfg_.name;
    out.stats.dataset = w.dataset;
    out.stats.model = mcfg_.name;
    out.stats.platform = hwspec_.name;
    out.stats.exit_histogram.assign(static_cast<size_t>(nExitLayers()),
                                    0);

    Rng rng(seed ^ mcfg_.weight_seed);
    long total_committed = 0;
    for (size_t i = 0; i < w.instances.size(); ++i) {
        DecodeSession session(*this, w, i, dlm, out, rng);
        session.prefill();
        while (session.step()) {
        }
        total_committed += session.committed();
        session.finishEmission();
    }
    finalizeRun(out, w, total_committed);
    return out;
}

std::unique_ptr<DecodeSession>
Engine::makeSession(const workload::Workload &w, uint64_t seed,
                    std::unique_ptr<model::KvStore> kv)
{
    return std::make_unique<DecodeSession>(*this, w, seed,
                                           std::move(kv));
}

RunResult
Engine::runOne(const workload::Workload &w, size_t instance,
               uint64_t seed)
{
    return run(w.slice(instance), seed);
}

} // namespace specee::engines
