#include "engines/adainfer.hh"

#include "util/logging.hh"

namespace specee::engines {

bool
AdaInferBank::shouldExit(int layer, tensor::CSpan feats) const
{
    specee_assert(layer >= 0 && layer < nLayers(),
                  "adainfer layer %d out of range", layer);
    return svms[static_cast<size_t>(layer)].margin(feats) > margin;
}

} // namespace specee::engines
