/**
 * @file
 * Pipeline — the top-level convenience API.
 *
 * Wires together everything a user (or a benchmark) needs to run
 * SpecEE on a model: the synthetic corpus, the offline predictor
 * training of §7.4.4, the offline scheduling profile of §5.3, the
 * AdaInfer baseline bank, and engine construction. This is the entry
 * point the examples use:
 *
 *   engines::Pipeline pipe({.model = "llama2-7b"});
 *   auto engine = pipe.makeEngine(
 *       engines::EngineConfig::huggingFace().withSpecEE(),
 *       hw::HardwareSpec::a100());
 *   auto result = engine->run(pipe.makeWorkload("MT-Bench", {}));
 */

#ifndef SPECEE_ENGINES_PIPELINE_HH
#define SPECEE_ENGINES_PIPELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"
#include "core/predictor_trainer.hh"
#include "core/raee.hh"
#include "engines/engine.hh"
#include "oracle/corpus.hh"
#include "workload/datasets.hh"

namespace specee::engines {

/** Pipeline construction options. */
struct PipelineOptions
{
    std::string model = "llama2-7b";

    /** Profiling/training dataset (the paper uses MT-Bench). */
    std::string train_dataset = "MT-Bench";
    int train_instances = 8;
    int train_gen_len = 40;

    /** Predictor architecture (Fig. 8 optimum). */
    int mlp_hidden = 512;
    int mlp_depth = 2;
    nn::TrainConfig train_cfg{.epochs = 20, .batch = 32, .lr = 2e-3,
                              .beta1 = 0.9, .beta2 = 0.999, .eps = 1e-8,
                              .seed = 7};

    /** Fraction of the collected data used (Fig. 18 sweeps this). */
    double data_ratio = 1.0;

    /** Exit mass the offline hot set must cover (T2). */
    double offline_mass = 0.55;

    uint64_t seed = 42;
};

/** Trained, ready-to-run SpecEE deployment for one model. */
class Pipeline
{
  public:
    explicit Pipeline(const PipelineOptions &opts = {});
    ~Pipeline();

    const model::ModelConfig &modelConfig() const { return mcfg_; }
    const oracle::SyntheticCorpus &corpus() const { return *corpus_; }
    const core::ExitPredictor &predictors() const { return *preds_; }
    const AdaInferBank &adaInferBank() const { return ada_; }
    const core::RaeeIndex &raeeIndex() const { return *raee_; }
    const std::vector<int> &offlineHotLayers() const { return hot_; }
    const core::ProfileData &profileData() const { return profile_; }
    const core::TrainReport &trainReport() const { return report_; }
    const core::TrainReport &adaTrainReport() const { return adaReport_; }
    const PipelineOptions &options() const { return opts_; }

    /**
     * Build a workload for one of the nine dataset profiles.
     * @param quantized_cal use the AWQ accuracy calibration column
     */
    workload::Workload makeWorkload(const std::string &dataset,
                                    const workload::GenOptions &gen,
                                    bool quantized_cal = false) const;

    /** Construct an engine with the trained artifacts attached. */
    std::unique_ptr<Engine> makeEngine(const EngineConfig &ecfg,
                                       const hw::HardwareSpec &spec) const;

  private:
    PipelineOptions opts_;
    model::ModelConfig mcfg_;
    std::unique_ptr<oracle::SyntheticCorpus> corpus_;
    std::unique_ptr<core::ExitPredictor> preds_;
    std::unique_ptr<core::RaeeIndex> raee_;
    AdaInferBank ada_;
    core::ProfileData profile_;
    core::TrainReport report_;
    core::TrainReport adaReport_;
    std::vector<int> hot_;
};

} // namespace specee::engines

#endif // SPECEE_ENGINES_PIPELINE_HH
