/**
 * @file
 * Engine configuration: one composable config covers every baseline
 * framework and every SpecEE variant, so ablations toggle exactly one
 * knob at a time (Fig. 19).
 *
 * Framework presets carry two kinds of parameters:
 *  - functional switches (quantized weights, paged KV, sparse FFN,
 *    speculative decoding, early exit, scheduling) that change which
 *    real code paths run;
 *  - calibration constants (`bw_efficiency`, `fixed_overhead_s`)
 *    that anchor absolute tok/s to each public framework's published
 *    ballpark on the named GPUs (DESIGN.md §5). Relative speedups
 *    come from the simulated run, not from these constants.
 */

#ifndef SPECEE_ENGINES_ENGINE_CONFIG_HH
#define SPECEE_ENGINES_ENGINE_CONFIG_HH

#include <string>
#include <vector>

#include "tensor/weight_store.hh"

namespace specee::engines {

/** Token-tree shape for speculative decoding. */
struct TreeShape
{
    /** Candidates drafted per level along the expanded chain. */
    std::vector<int> widths = {4, 2, 2};

    int depth() const { return static_cast<int>(widths.size()); }
    int totalNodes() const;
};

/** Full engine configuration. */
struct EngineConfig
{
    std::string name = "HuggingFace";

    // --- SpecEE switches -------------------------------------------------
    bool early_exit = false;       ///< T1: speculative early exiting
    bool offline_sched = false;    ///< T2a: offline hot-layer set
    bool online_sched = false;     ///< T2b: context-similarity activation
    bool spec_decode = false;      ///< EAGLE-style tree decoding
    ///< T3 (hyper-token merged mapping) = spec_decode && early_exit.

    // --- baseline switches -----------------------------------------------
    bool adainfer = false;   ///< AdaInfer full-vocab SVM early exit
    bool raee = false;       ///< RAEE retrieval-based early exit
    /**
     * Legacy AWQ mode: Q4 projections, dense tied head, draft model
     * and head priced fp16. Mutually exclusive with a non-fp32
     * `weight_backend`; prefer the backend knob for new scenarios.
     */
    bool quantized = false;
    /**
     * Whole-model weight backend: projections, tied embedding / LM
     * head and the draft model all load as fp32 (served fp16), q8 or
     * q4, and every weight-bound operator is priced at the
     * compressed traffic — the quantized-serving scenario.
     */
    tensor::WeightBackend weight_backend = tensor::WeightBackend::Fp32;
    bool paged_kv = false;   ///< vllm PagedAttention KV manager
    bool sparse_ffn = false; ///< PowerInfer activation sparsity

    // --- parameters --------------------------------------------------------
    float exit_threshold = 0.5f;
    int online_window = 5;
    int online_radius = 2;
    double offline_mass = 0.55; ///< exit mass the offline set must cover
    float ffn_active_frac = 0.30f;
    float adainfer_margin = 1.0f; ///< SVM decision margin (conservative)
    /** RAEE database size at true scale (Table 1: several GB). */
    double raee_db_entries = 5.0e5;
    /** Fraction of the RAEE database an ANN probe touches per token. */
    double raee_scan_frac = 0.10;
    int raee_k = 8; ///< retrieved neighbours
    TreeShape tree;

    /**
     * Fig. 10(b)/(d) experiment: when non-empty, predictors exist at
     * exactly these layers (scheduling switches are ignored).
     */
    std::vector<int> fixed_predictor_layers;

    // --- cost calibration ---------------------------------------------------
    double bw_efficiency = 0.85;
    double fixed_overhead_s = 0.0; ///< per decode step / spec pass
    double spec_pass_overhead_s = 0.0; ///< extra per speculative pass
    bool allow_offload = false;    ///< PC: spill weights to host RAM

    /** Draft hit-rate override (<0: use the dataset profile). */
    double draft_hit_override = -1.0;

    // --- sharding ----------------------------------------------------------
    /**
     * Tensor-parallel degree: each pipeline stage's weights, KV and
     * GEMMs split across `tp` devices, which adds two ring
     * all-reduces of the activations per layer over the platform's
     * interconnect. 1 (default) is bit-identical to the unsharded
     * engine. Orthogonal to the legacy monolithic multi-GPU presets
     * (a100x4's n_devices/sync_us_per_layer), which stay untouched.
     */
    int tp = 1;

    /**
     * Pipeline-parallel degree: decoder layers partition into `pp`
     * contiguous stages (model::StageGraph), one device group per
     * stage; each stage boundary a token crosses moves its residual
     * activation over the interconnect. An early exit at layer k
     * only traverses (and under a stage-aware scheduler only
     * occupies) the stages up to k. 1 (default) is bit-identical to
     * the unsharded engine.
     */
    int pp = 1;

    // --- presets -------------------------------------------------------------
    static EngineConfig huggingFace();
    static EngineConfig vllm();
    static EngineConfig awq();
    static EngineConfig eagle();
    static EngineConfig adaInfer();
    static EngineConfig raeeBaseline();
    static EngineConfig llamaCpp();   ///< PC scenario, fp16 + offload
    static EngineConfig powerInfer(); ///< PC scenario, sparse FFN

    /**
     * Derive the +SpecEE variant: enables early exit (and scheduling
     * when `with_t2`); keeps the base framework's cost calibration.
     */
    EngineConfig withSpecEE(bool with_t2 = true) const;

    /** Derive the +SpecEE+EAGLE variant (adds T3 on top). */
    EngineConfig withSpecDecode() const;

    /**
     * Derive a variant serving the whole model from `backend`
     * weights (suffixes the name, e.g. "HuggingFace[q8]"). Requires
     * the legacy `quantized` flag to be off.
     */
    EngineConfig withWeightBackend(tensor::WeightBackend backend) const;

    /**
     * Derive a TP x PP sharded variant (suffixes the name, e.g.
     * "vllm[tp2pp2]"). tp = pp = 1 returns the config unchanged —
     * the degenerate fleet is the monolithic engine.
     */
    EngineConfig withSharding(int tp_degree, int pp_degree) const;

    /**
     * True when workloads should use the AWQ accuracy-calibration
     * column: 4-bit weights, whether legacy AWQ or the q4 backend
     * (q8 is functionally near-lossless and keeps the dense column).
     */
    bool q4Calibrated() const
    {
        return quantized ||
               weight_backend == tensor::WeightBackend::Q4;
    }
};

} // namespace specee::engines

#endif // SPECEE_ENGINES_ENGINE_CONFIG_HH
