#include "engines/decode_session.hh"

#include <algorithm>

#include "core/hyper_token.hh"
#include "core/token_tree.hh"
#include "oracle/profiles.hh"
#include "util/logging.hh"

namespace specee::engines {

namespace {

/** Rebinds the model to the session's sequence for one operation. */
class BindGuard
{
  public:
    BindGuard(model::TargetModel &tm, model::SequenceState *seq) : tm_(tm)
    {
        tm_.bindSequence(seq);
    }
    ~BindGuard() { tm_.bindSequence(nullptr); }
    BindGuard(const BindGuard &) = delete;
    BindGuard &operator=(const BindGuard &) = delete;

  private:
    model::TargetModel &tm_;
};

} // namespace

DecodeSession::DecodeSession(Engine &eng, const workload::Workload &w,
                             size_t instance_idx,
                             const model::DraftModel &dlm, RunResult &out,
                             Rng &rng)
    : eng_(eng),
      w_(&w),
      instance_(instance_idx),
      dlm_(&dlm),
      out_(&out),
      rng_(&rng),
      seq_(eng.tm_->makeSequence()),
      fx_(eng.mcfg_.num_spec_tokens),
      online_(eng.nExitLayers(), eng.ecfg_.online_window,
              eng.ecfg_.online_radius)
{
    specee_assert(instance_ < w_->instances.size(),
                  "session instance out of range");
    kvView_ = dynamic_cast<model::SequenceKv *>(seq_.kv.get());
    exitThreshold_ = eng_.ecfg_.exit_threshold;
}

DecodeSession::DecodeSession(Engine &eng, workload::Workload w,
                             uint64_t seed,
                             std::unique_ptr<model::KvStore> kv)
    : eng_(eng),
      ownedW_(std::move(w)),
      w_(&*ownedW_),
      instance_(0),
      seq_(eng.tm_->makeSequence(std::move(kv))),
      fx_(eng.mcfg_.num_spec_tokens),
      online_(eng.nExitLayers(), eng.ecfg_.online_window,
              eng.ecfg_.online_radius)
{
    // This preamble mirrors Engine::run exactly so an owning
    // session's finalized result is bit-identical to runOne.
    specee_assert(w_->instances.size() == 1,
                  "owning sessions decode single-instance workloads");
    eng_.checkRunnable();

    const auto &profile = oracle::profileByName(w_->dataset);
    const double hit = eng_.ecfg_.draft_hit_override >= 0.0
                           ? eng_.ecfg_.draft_hit_override
                           : profile.draft_hit_rate;
    ownedDlm_.emplace(eng_.mcfg_, eng_.corpus_, hit);
    dlm_ = &*ownedDlm_;

    ownedOut_.emplace();
    out_ = &*ownedOut_;
    out_->stats.engine = eng_.ecfg_.name;
    out_->stats.dataset = w_->dataset;
    out_->stats.model = eng_.mcfg_.name;
    out_->stats.platform = eng_.hwspec_.name;
    out_->stats.exit_histogram.assign(
        static_cast<size_t>(eng_.nExitLayers()), 0);

    ownedRng_.emplace(seed ^ eng_.mcfg_.weight_seed);
    rng_ = &*ownedRng_;

    kvView_ = dynamic_cast<model::SequenceKv *>(seq_.kv.get());
    exitThreshold_ = eng_.ecfg_.exit_threshold;
}

void
DecodeSession::prefill()
{
    specee_assert(!prefilled_, "prefill() after prefill done");
    const auto &inst = w_->instances[instance_];
    BindGuard bind(*eng_.tm_, &seq_);
    if (!prefillStarted_) {
        // fork() keeps the decode rng stream untouched (draft draws
        // stay comparable across engine configs); the instance index
        // makes the noise substreams distinct even for engines whose
        // decode never advances the parent rng.
        eng_.tm_->reset(rng_->fork(0x7e5e + instance_).next());
        prefillStarted_ = true;
    }
    // After adoptCachedPrefix() only the uncached tail is appended;
    // cold sessions start at simFilled_ = 0 — the legacy path.
    const int prefix_len = static_cast<int>(inst.prompt.size()) - 1;
    if (prefix_len > simFilled_) {
        std::vector<int> slice(inst.prompt.begin() + simFilled_,
                               inst.prompt.end() - 1);
        eng_.tm_->prefill(slice);
        simFilled_ = prefix_len;
    }
    input_ = inst.prompt.back();
    prefillTrue_ = prefillTotal();
    prefilled_ = true;
}

void
DecodeSession::adoptCachedPrefix(
    const std::vector<std::vector<int>> &table, int true_matched,
    int sim_matched)
{
    specee_assert(!prefillStarted_ && !prefilled_,
                  "adoptCachedPrefix() after prefill began");
    specee_assert(canSwap(),
                  "adoptCachedPrefix() needs a paged fleet-pool KV");
    const auto &inst = w_->instances[instance_];
    const int prefix_len = static_cast<int>(inst.prompt.size()) - 1;
    specee_assert(true_matched > 0 && true_matched <= prefillTotal(),
                  "adopted true span %d outside prompt of %d",
                  true_matched, prefillTotal());
    specee_assert(sim_matched > 0 && sim_matched <= prefix_len,
                  "adopted sim span %d outside prefix of %d",
                  sim_matched, prefix_len);
    BindGuard bind(*eng_.tm_, &seq_);
    // Same sequence initialization (and rng fork) as a cold
    // prefill, so the resumed decode is bit-identical to a cold run.
    eng_.tm_->reset(rng_->fork(0x7e5e + instance_).next());
    prefillStarted_ = true;
    kvView_->adoptPrefix(table, sim_matched);
    seq_.pos = sim_matched;
    simFilled_ = sim_matched;
    prefillTrue_ = true_matched;
    if (prefillTrue_ >= prefillTotal()) {
        // Full-prompt hit: nothing left to ingest, TTFT is
        // decode-only.
        input_ = inst.prompt.back();
        prefilled_ = true;
    }
}

int
DecodeSession::prefillRemaining() const
{
    return prefilled_ ? 0 : std::max(prefillTotal(), 1) - prefillTrue_;
}

int
DecodeSession::prefillChunk(int n_tokens)
{
    specee_assert(n_tokens > 0, "prefillChunk() needs n_tokens > 0");
    specee_assert(!prefilled_, "prefillChunk() after prefill done");
    specee_assert(!swapped_, "prefillChunk() on a swapped-out session");
    specee_assert(!awaitingTransfer(),
                  "prefillChunk() on a session with an in-flight KV "
                  "transfer");
    const auto &inst = w_->instances[instance_];
    const auto before = snapshotOplog();
    BindGuard bind(*eng_.tm_, &seq_);
    if (!prefillStarted_) {
        // Same sequence initialization as prefill() — the chunked
        // and atomic paths are bit-identical once the prompt lands.
        eng_.tm_->reset(rng_->fork(0x7e5e + instance_).next());
        prefillStarted_ = true;
    }
    const int total = std::max(prefillTotal(), 1);
    const int take = std::min(n_tokens, total - prefillTrue_);
    eng_.chargePrefillChunk(out_->stats.oplog, take, prefillTrue_);
    prefillTrue_ += take;

    // Functional KV fills in proportion to the modeled progress;
    // TargetModel::prefill is a pure per-token append, so slice-wise
    // calls reproduce the atomic prefill() state exactly.
    const int prefix_len = static_cast<int>(inst.prompt.size()) - 1;
    const int sim_target =
        prefillTrue_ >= total
            ? prefix_len
            : static_cast<int>(static_cast<long>(prefix_len) *
                               prefillTrue_ / total);
    if (sim_target > simFilled_) {
        std::vector<int> slice(
            inst.prompt.begin() + simFilled_,
            inst.prompt.begin() + sim_target);
        eng_.tm_->prefill(slice);
        simFilled_ = sim_target;
    }
    if (prefillTrue_ >= total) {
        input_ = inst.prompt.back();
        prefilled_ = true;
    }
    // A prefill chunk streams every layer's weights: it occupies the
    // whole pipeline and skips no KV.
    lastDeepest_ = eng_.mcfg_.n_layers;
    lastFillLo_ = eng_.mcfg_.n_layers;
    captureCost(before, 0);
    return take;
}

bool
DecodeSession::finished() const
{
    return stepIdx_ >= w_->instances[instance_].steps.size();
}

std::array<std::pair<double, double>, hw::kNumOpClasses>
DecodeSession::snapshotOplog() const
{
    std::array<std::pair<double, double>, hw::kNumOpClasses> snap;
    for (int c = 0; c < hw::kNumOpClasses; ++c) {
        const auto &tot =
            out_->stats.oplog.totals(static_cast<hw::OpClass>(c));
        snap[static_cast<size_t>(c)] = {tot.time_s, tot.energy_j};
    }
    return snap;
}

void
DecodeSession::captureCost(
    const std::array<std::pair<double, double>, hw::kNumOpClasses>
        &before,
    int tokens)
{
    const model::StageGraph &g = eng_.stages_;
    const int n_stages = g.nStages();
    const int L = g.nLayers();

    last_ = StepCost{};
    last_.tokens = tokens;
    last_.deepest_layer = lastDeepest_;
    last_.stages_used = g.stagesForDepth(lastDeepest_);
    if (n_stages > 1) {
        last_.stage_shared_s.assign(static_cast<size_t>(n_stages), 0.0);
        last_.stage_shared_j.assign(static_cast<size_t>(n_stages), 0.0);
    }
    // Apportion a layer-range charge across the stages it overlaps.
    const auto spread = [&](double dt, double de, int lo, int hi) {
        const int span = hi - lo;
        if (span <= 0)
            return;
        for (int s = 0; s < n_stages; ++s) {
            const double f =
                static_cast<double>(g.overlapLayers(s, lo, hi)) /
                static_cast<double>(span);
            last_.stage_shared_s[static_cast<size_t>(s)] += dt * f;
            last_.stage_shared_j[static_cast<size_t>(s)] += de * f;
        }
    };
    const auto onStage = [&](double dt, double de, int s) {
        last_.stage_shared_s[static_cast<size_t>(s)] += dt;
        last_.stage_shared_j[static_cast<size_t>(s)] += de;
    };
    for (int c = 0; c < hw::kNumOpClasses; ++c) {
        const auto cls = static_cast<hw::OpClass>(c);
        const auto &tot = out_->stats.oplog.totals(cls);
        const double dt =
            tot.time_s - before[static_cast<size_t>(c)].first;
        const double de =
            tot.energy_j - before[static_cast<size_t>(c)].second;
        if (dt != 0.0)
            last_.class_s.emplace_back(c, dt);
        if (!hw::isBatchAmortized(cls)) {
            last_.private_s += dt;
            last_.private_j += de;
            continue;
        }
        last_.shared_s += dt;
        last_.shared_j += de;
        if (n_stages <= 1 || (dt == 0.0 && de == 0.0))
            continue;
        switch (cls) {
        case hw::OpClass::DecoderLayer:
        case hw::OpClass::Sync:
            // Per-layer work of the traversed range.
            spread(dt, de, 0, lastDeepest_);
            break;
        case hw::OpClass::KvFill:
            // k/v projections of the skipped tail — the downstream
            // stages still stream these thin weights after an exit,
            // which is why occupancy (stages_used) tracks only the
            // full-weight decoder stream.
            spread(dt, de, lastFillLo_, L);
            break;
        case hw::OpClass::PrefillWeights:
            spread(dt, de, 0, L);
            break;
        case hw::OpClass::LmHeadFull:
            // The head applies where the pass stopped (EE-LLM
            // replicates it at exit points).
            onStage(dt, de,
                    g.stageOfLayer(std::max(lastDeepest_, 1) - 1));
            break;
        default:
            // Embed, Draft, Overhead: front-of-pipeline work.
            onStage(dt, de, 0);
            break;
        }
    }
}

double
DecodeSession::swapOut()
{
    specee_assert(canSwap(), "swapOut() needs a paged fleet-pool KV");
    specee_assert(!swapped_, "double swap-out");
    kvView_->swapOut();
    swapped_ = true;
    return eng_.chargeKvSwap(out_->stats.oplog, hw::OpClass::KvSwapOut,
                             modeledPositions());
}

double
DecodeSession::swapIn()
{
    specee_assert(swapped_, "swapIn() of a device-resident session");
    kvView_->swapIn();
    swapped_ = false;
    return eng_.chargeKvSwap(out_->stats.oplog, hw::OpClass::KvSwapIn,
                             modeledPositions());
}

int
DecodeSession::hostBlocks() const
{
    return kvView_ != nullptr ? kvView_->hostBlocks() : 0;
}

int
DecodeSession::kvSeqId() const
{
    specee_assert(kvView_ != nullptr,
                  "kvSeqId() needs a paged fleet-pool KV");
    return kvView_->seqId();
}

void
DecodeSession::beginTransfer()
{
    specee_assert(canSwap(),
                  "beginTransfer() needs a paged fleet-pool KV");
    kvView_->beginTransfer();
}

void
DecodeSession::endTransfer()
{
    specee_assert(canSwap(), "endTransfer() needs a paged fleet-pool KV");
    kvView_->endTransfer();
}

double
DecodeSession::handoffSeconds() const
{
    return eng_.kvHandoffSeconds(modeledPositions());
}

double
DecodeSession::chargeHandoff()
{
    specee_assert(prefilled_,
                  "KV handoff of a session that has not finished "
                  "prefill");
    return eng_.chargeKvHandoff(out_->stats.oplog, modeledPositions());
}

double
DecodeSession::swapRoundTripSeconds() const
{
    return 2.0 * eng_.kvSwapSeconds(modeledPositions());
}

double
DecodeSession::modeledCostSoFar() const
{
    // Exclude past swap transfers: a recompute replay re-prices the
    // decode/prefill work, not the host-link traffic of earlier
    // preemptions.
    const auto &log = out_->stats.oplog;
    return log.grand().time_s -
           log.totals(hw::OpClass::KvSwapOut).time_s -
           log.totals(hw::OpClass::KvSwapIn).time_s;
}

bool
DecodeSession::step()
{
    specee_assert(prefilled_, "step() before prefill()");
    specee_assert(!swapped_, "step() on a swapped-out session");
    specee_assert(!awaitingTransfer(),
                  "step() on a session with an in-flight KV transfer");
    if (finished())
        return false;

    const auto before = snapshotOplog();
    const auto tokens_before = em_.tokens.size();

    bool more;
    {
        BindGuard bind(*eng_.tm_, &seq_);
        more = eng_.ecfg_.spec_decode ? stepSpeculative()
                                      : stepAutoregressive();
    }

    captureCost(before,
                static_cast<int>(em_.tokens.size() - tokens_before));
    return more;
}

bool
DecodeSession::stepAutoregressive()
{
    const auto &inst = w_->instances[instance_];
    const int logical_pos =
        w_->true_prompt_len + static_cast<int>(stepIdx_);
    auto o = eng_.decodeToken(input_, inst.steps[stepIdx_], *dlm_, fx_,
                              eng_.ecfg_.online_sched ? &online_
                                                      : nullptr,
                              &out_->stats.oplog, logical_pos, *rng_,
                              out_->stats, exitThreshold_);
    em_.tokens.push_back(o.token);
    em_.exit_layers.push_back(o.layers_used);
    out_->stats.avg_forward_layers += o.layers_used;
    ++out_->stats.tokens;
    input_ = o.token;
    ++stepIdx_;
    // An exited token streams weights down to its exit layer only
    // and back-fills KV for the skipped tail.
    lastDeepest_ = o.layers_used;
    lastFillLo_ = o.layers_used;
    return !finished();
}

bool
DecodeSession::stepSpeculative()
{
    const auto &inst = w_->instances[instance_];
    const bool ee = eng_.ecfg_.early_exit && eng_.preds_ != nullptr;
    core::OnlineScheduler *onl =
        eng_.ecfg_.online_sched && ee ? &online_ : nullptr;
    const size_t n_steps = inst.steps.size();
    RunResult &out = *out_;

    // First token decodes normally (as in EAGLE).
    if (stepIdx_ == 0) {
        auto o = eng_.decodeToken(inst.prompt.back(), inst.steps[0],
                                  *dlm_, fx_, onl, &out.stats.oplog,
                                  w_->true_prompt_len, *rng_, out.stats,
                                  exitThreshold_);
        em_.tokens.push_back(o.token);
        em_.exit_layers.push_back(o.layers_used);
        out.stats.avg_forward_layers += o.layers_used;
        ++out.stats.tokens;
        ++stepIdx_;
        lastDeepest_ = o.layers_used;
        lastFillLo_ = o.layers_used;
        return !finished();
    }

    size_t step = stepIdx_;

    // Draft a token tree from the last committed token.
    const int root_tok = em_.tokens.back();
    std::vector<model::TokenScript> chain;
    for (size_t d = 0;
         d < eng_.ecfg_.tree.widths.size() && step + d < n_steps; ++d)
        chain.push_back(inst.steps[step + d]);
    std::vector<int> widths(
        eng_.ecfg_.tree.widths.begin(),
        eng_.ecfg_.tree.widths.begin() + static_cast<long>(chain.size()));
    auto tree =
        core::TokenTree::draft(*dlm_, root_tok, chain, widths, *rng_);
    eng_.chargeDraft(out.stats.oplog, static_cast<int>(widths.size()));

    out.stats.map_complexity_independent +=
        core::MergedMapping::independentMappingComplexity(tree);
    out.stats.map_complexity_merged +=
        core::MergedMapping::mergedMappingComplexity(tree);
    const long n_paths = core::MergedMapping::mergedMappingComplexity(tree);

    // Walk the tree: process the root's continuation, then follow
    // accepted children.
    int pass_layers = 0;
    int node_id = 0; // tree root
    int input = root_tok;
    int committed_this_pass = 0;
    size_t d = 0;
    int max_sched_layers = 0;
    int fill_nodes = 0;
    int min_exit_layers = eng_.mcfg_.n_layers;
    while (step < n_steps && d <= static_cast<size_t>(tree.depth())) {
        const int logical_pos =
            w_->true_prompt_len + static_cast<int>(step);
        auto o = eng_.decodeToken(input, inst.steps[step], *dlm_, fx_,
                                  onl, nullptr, logical_pos, *rng_,
                                  out.stats, exitThreshold_);
        if (o.exited) {
            ++fill_nodes;
            min_exit_layers = std::min(min_exit_layers, o.layers_used);
        }
        pass_layers = std::max(pass_layers, o.layers_used);
        max_sched_layers = std::max(max_sched_layers, o.predictors_used);
        em_.tokens.push_back(o.token);
        em_.exit_layers.push_back(o.layers_used);
        out.stats.avg_forward_layers += o.layers_used;
        ++out.stats.tokens;
        ++step;
        ++committed_this_pass;

        // Does a drafted child continue the chain?
        int next_node = -1;
        for (int kid : tree.children(node_id)) {
            if (tree.node(kid).token == o.token) {
                next_node = kid;
                break;
            }
        }
        if (next_node < 0)
            break;
        node_id = next_node;
        input = o.token;
        ++d;
    }

    // Pass-level cost: one batched TLM pass over the whole tree, cut
    // at the Cannikin exit depth; grouped predictor work scales with
    // the number of paths.
    const int batch = 1 + tree.draftCount();
    eng_.chargeLayers(out.stats.oplog, pass_layers, batch,
                      w_->true_prompt_len + static_cast<int>(step));
    // Batched KV fill: the k/v projection weights of each skipped
    // layer are read once for all exited nodes.
    if (fill_nodes > 0) {
        eng_.chargeKvFill(out.stats.oplog,
                          eng_.mcfg_.n_layers - min_exit_layers,
                          fill_nodes);
    }
    // One batched full-head application per pass: the token
    // verification of vanilla EAGLE, or — under T3 — the exit
    // verification at the Cannikin exit layer (the head is read once
    // either way).
    eng_.chargeLmHeadFull(out.stats.oplog, batch);
    if (ee && max_sched_layers > 0) {
        // T3: per activated layer the engine issues ONE grouped
        // sliced GEMV and ONE batched predictor MLP covering every
        // hyper-token lane (Fig. 13), instead of one launch pipeline
        // per tree node.
        eng_.chargeLmHeadSliced(out.stats.oplog,
                                max_sched_layers *
                                    static_cast<int>(n_paths),
                                eng_.mcfg_.num_spec_tokens,
                                max_sched_layers);
        eng_.chargePredictor(out.stats.oplog,
                             max_sched_layers * static_cast<int>(n_paths),
                             max_sched_layers);
    }
    eng_.chargeOverhead(out.stats.oplog);
    if (eng_.ecfg_.spec_pass_overhead_s > 0.0) {
        eng_.cost_->accountFixed(out.stats.oplog, hw::OpClass::Overhead,
                                 eng_.ecfg_.spec_pass_overhead_s);
    }
    ++out.stats.passes;
    committed_ += committed_this_pass;
    stepIdx_ = step;
    // The pass's weight stream runs to the Cannikin cut; KV back-fill
    // covers the layers below the shallowest exit (empty when no node
    // exited — min_exit_layers stays at full depth).
    lastDeepest_ = pass_layers;
    lastFillLo_ = min_exit_layers;
    return !finished();
}

int
DecodeSession::kvBlocks() const
{
    if (kvView_ != nullptr)
        return kvView_->blocks();
    // Contiguous store: block-equivalent occupancy so fleet KV
    // budgets apply uniformly across engine presets.
    const int len = seq_.kv->length(0);
    return eng_.mcfg_.n_layers *
           ((len + model::kKvBlockSize - 1) / model::kKvBlockSize);
}

long
DecodeSession::modeledPositions() const
{
    // Mid-prefill, only the ingested prefix occupies modeled KV.
    const long prompt = prefilled_
                            ? static_cast<long>(w_->true_prompt_len)
                            : static_cast<long>(prefillTrue_);
    return prompt + static_cast<long>(em_.tokens.size());
}

void
DecodeSession::finishEmission()
{
    specee_assert(!emissionDone_, "emission already finished");
    out_->emissions.push_back(std::move(em_));
    emissionDone_ = true;
}

RunResult
DecodeSession::finalize()
{
    specee_assert(ownedOut_.has_value(),
                  "finalize() is only for owning sessions");
    if (!emissionDone_)
        finishEmission();
    eng_.finalizeRun(*out_, *w_, committed_);
    return std::move(*ownedOut_);
}

} // namespace specee::engines
