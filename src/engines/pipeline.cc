#include "engines/pipeline.hh"

#include "core/offline_scheduler.hh"
#include "model/draft_model.hh"
#include "oracle/profiles.hh"
#include "util/logging.hh"

namespace specee::engines {

Pipeline::Pipeline(const PipelineOptions &opts)
    : opts_(opts), mcfg_(model::ModelConfig::byName(opts.model))
{
    corpus_ = std::make_unique<oracle::SyntheticCorpus>(
        mcfg_.sim.vocab, opts.seed ^ 0xc0de);

    // --- collect profiling data (§7.4.4) -------------------------------
    const auto &profile = oracle::profileByName(opts.train_dataset);
    workload::WorkloadGen gen(*corpus_);
    workload::GenOptions gopts;
    gopts.n_instances = opts.train_instances;
    gopts.gen_len = opts.train_gen_len;
    gopts.seed = opts.seed ^ 0x7a11;
    const workload::Workload train_w =
        gen.generate(profile, mcfg_, gopts);

    model::TargetModelOptions tm_opts;
    tm_opts.noise_seed = mcfg_.weight_seed ^ 0xa0153;
    model::TargetModel tm(mcfg_, tm_opts);
    model::DraftModel dlm(mcfg_, *corpus_, profile.draft_hit_rate);
    profile_ = core::PredictorTrainer::collect(train_w, tm, dlm,
                                               opts.seed ^ 0xc011);

    // --- train the predictor banks ----------------------------------------
    preds_ = std::make_unique<core::ExitPredictor>(
        mcfg_.n_layers - 1, 3 * mcfg_.num_spec_tokens, opts.mlp_hidden,
        opts.mlp_depth, opts.seed ^ 0xec5);
    core::TrainerOptions topts;
    topts.train = opts.train_cfg;
    topts.data_ratio = opts.data_ratio;
    report_ = core::PredictorTrainer::train(*preds_, profile_, topts);
    adaReport_ =
        core::PredictorTrainer::trainAdaInfer(ada_.svms, profile_, topts);

    // --- RAEE baseline database -------------------------------------------
    raee_ = std::make_unique<core::RaeeIndex>(mcfg_.sim.hidden,
                                              mcfg_.n_layers);
    for (size_t i = 0; i < profile_.raee_probes.size(); ++i)
        raee_->add(profile_.raee_probes[i], profile_.raee_exits[i]);

    // --- offline scheduling (T2) ----------------------------------------
    core::OfflineScheduler off(mcfg_.n_layers - 1);
    for (size_t l = 0; l < profile_.oracle_exit_hist.size(); ++l) {
        for (long c = 0; c < profile_.oracle_exit_hist[l]; ++c)
            off.recordExit(static_cast<int>(l));
    }
    hot_ = off.hotLayers(opts.offline_mass);
}

Pipeline::~Pipeline() = default;

workload::Workload
Pipeline::makeWorkload(const std::string &dataset,
                       const workload::GenOptions &gen_opts,
                       bool quantized_cal) const
{
    workload::WorkloadGen gen(*corpus_);
    return gen.generate(oracle::profileByName(dataset), mcfg_, gen_opts,
                        quantized_cal);
}

std::unique_ptr<Engine>
Pipeline::makeEngine(const EngineConfig &ecfg,
                     const hw::HardwareSpec &spec) const
{
    auto e = std::make_unique<Engine>(ecfg, mcfg_, spec, *corpus_);
    e->setPredictors(preds_.get());
    e->setAdaInferBank(&ada_);
    e->setRaeeIndex(raee_.get());
    e->setOfflineHotLayers(hot_);
    return e;
}

} // namespace specee::engines
