/**
 * @file
 * DecodeSession — one request's decode as a stepwise state machine.
 *
 * The session owns everything one in-flight request mutates: its
 * per-request KV store (optionally a view onto a shared fleet pool),
 * its rng stream, predictor / speculation state (feature extractor,
 * online scheduler, emission buffer) and per-step cost records. The
 * lifecycle is prefill() -> step()* -> finished(), where one step()
 * is exactly one scheduler iteration unit: one token autoregressively
 * or one speculative pass (>= 1 committed tokens).
 *
 * An iteration-level scheduler drives many sessions live: it calls
 * step() on every active session per iteration, prices the iteration
 * from lastStep()'s shared/private roofline split, and can destroy a
 * session mid-decode to preempt it (the KV blocks free on
 * destruction; re-decoding under the same seed reproduces the exact
 * emission, which is how recompute-style preemption stays lossless).
 *
 * Engine::run / runOne are thin loops over borrowed-mode sessions, so
 * single-request results are bit-identical to pre-session engines.
 */

#ifndef SPECEE_ENGINES_DECODE_SESSION_HH
#define SPECEE_ENGINES_DECODE_SESSION_HH

#include <array>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/features.hh"
#include "core/online_scheduler.hh"
#include "engines/engine.hh"
#include "model/draft_model.hh"
#include "model/paged_kv.hh"
#include "model/target_model.hh"
#include "workload/datasets.hh"
#include "workload/evaluator.hh"

namespace specee::engines {

/**
 * Cost record of one session step, split along the roofline: shared
 * traffic (weight-bound, read once per decode iteration and
 * amortized across the batch) vs private traffic (per-request KV
 * reads, predictors, sliced heads).
 */
struct StepCost
{
    double shared_s = 0.0;
    double private_s = 0.0;
    double shared_j = 0.0;
    double private_j = 0.0;
    int tokens = 0; ///< tokens committed by this step

    /**
     * Deepest decoder layer this step's full-weight stream reached
     * (the early-exit depth for decode, full depth for a prefill
     * chunk; 0 for an idle step).
     */
    int deepest_layer = 0;

    /**
     * Pipeline stages the weight stream occupied — stagesForDepth
     * (deepest_layer) on the engine's stage graph. An early exit at
     * layer k occupies only the stages up to k; the scheduler can
     * backfill the rest. 1 (or 0 when idle) on unsharded engines.
     */
    int stages_used = 0;

    /**
     * Per-stage split of the shared (weight-bound) roofline time and
     * energy, apportioned by each charge's layer range: decoder
     * stream over the traversed layers, KV fill over the skipped
     * tail, prefill weights over the full depth, embed/draft on
     * stage 0, the LM head on the exit stage. Sums to shared_s /
     * shared_j. Empty on single-stage engines — the scalar fields
     * are the legacy pricing inputs.
     */
    std::vector<double> stage_shared_s;
    std::vector<double> stage_shared_j;

    /**
     * Modeled seconds per op class this step charged, as
     * (hw::OpClass value, seconds) for every class with nonzero
     * time — the step-span breakdown the fleet trace records. Sums
     * to shared_s + private_s; pricing never reads it.
     */
    std::vector<std::pair<int, double>> class_s;
};

/** Stepwise decode of one workload instance on one Engine. */
class DecodeSession
{
  public:
    /**
     * Borrowed mode (Engine::run internals): draft model, result and
     * rng are shared run-level objects the caller owns; the session
     * decodes instance `instance_idx` of `w` into them.
     */
    DecodeSession(Engine &eng, const workload::Workload &w,
                  size_t instance_idx, const model::DraftModel &dlm,
                  RunResult &out, Rng &rng);

    /**
     * Owning mode (serving layer): a self-contained per-request
     * session over a single-instance workload. Owns its draft model,
     * rng stream (seeded exactly like Engine::runOne(w, 0, seed))
     * and RunResult. `kv` optionally supplies the KV store — a
     * SequenceKv view onto a shared fleet pool under continuous
     * batching; null for a private store of the engine's kind.
     */
    DecodeSession(Engine &eng, workload::Workload w, uint64_t seed,
                  std::unique_ptr<model::KvStore> kv = nullptr);

    DecodeSession(const DecodeSession &) = delete;
    DecodeSession &operator=(const DecodeSession &) = delete;

    /**
     * Ingest the prompt (fresh sequence state, or the part left
     * after adoptCachedPrefix()). Call exactly once.
     */
    void prefill();

    /**
     * Resume mid-prompt from a cached prefix: initialize the
     * sequence exactly like a cold prefill (same rng fork), map the
     * paged KV onto the shared block chains (`table[layer]`,
     * `sim_matched` rows, one reference retained per block) and
     * mark the first `true_matched` TRUE-dims prompt tokens as
     * already ingested — the cached span charges no PrefillWeights /
     * PrefillCompute. The cached rows hold exactly what this
     * session's own prefill would have written (prefill is a pure
     * function of the tokens), so subsequent chunks, decode and
     * emissions are bit-identical to a cold run. Call before
     * prefill() / prefillChunk(); requires a paged fleet-pool KV.
     */
    void adoptCachedPrefix(const std::vector<std::vector<int>> &table,
                           int true_matched, int sim_matched);

    /**
     * Chunked prefill: ingest up to `n_tokens` prompt tokens at the
     * TRUE dimensions, charging the chunk (weight stream + chunk-
     * scaled compute) into the session's oplog and recording it in
     * lastStep() so an iteration-level scheduler can price it like a
     * decode step. The first call initializes the sequence exactly
     * like prefill(); the sim-dims KV fills in proportion to the
     * modeled progress, and the call that consumes the final token
     * completes the functional prefill — after which the session
     * decodes bit-identically to an atomically prefilled one.
     * Mutually exclusive with prefill(). @return tokens consumed
     */
    int prefillChunk(int n_tokens);

    /** True once the whole prompt is ingested (decode may step). */
    bool prefillDone() const { return prefilled_; }

    /** Prompt tokens (true dims) still to ingest; 0 once done. */
    int prefillRemaining() const;

    /** Total prompt length (true dims) this session ingests. */
    int prefillTotal() const { return w_->true_prompt_len; }

    /**
     * Advance one iteration unit (one token, or one speculative
     * pass). @return true while more scripted steps remain.
     * @pre prefill() was called, !finished() and !swapped()
     */
    bool step();

    /** True when the session's KV can swap (paged fleet-pool view). */
    bool canSwap() const { return kvView_ != nullptr; }

    /** True while the session's KV lives in the host pool. */
    bool swapped() const { return swapped_; }

    /**
     * Swap-to-host preemption: move this session's KV blocks to the
     * pool's host side (device blocks free), charge the transfer
     * (OpClass::KvSwapOut at true dims) into the session's oplog and
     * freeze the session — everything else (rng stream, emission,
     * prefill progress, speculation state) stays intact, so after
     * swapIn() the session resumes bit-identically without
     * re-ingesting the prompt. @return modeled transfer seconds
     */
    double swapOut();

    /**
     * Restore the KV from the host pool into fresh device blocks and
     * charge OpClass::KvSwapIn. The caller must have reserved pool
     * capacity (hostBlocks() free blocks). @return modeled seconds
     */
    double swapIn();

    /** Device blocks a swapIn() must be able to allocate. */
    int hostBlocks() const;

    /**
     * Pin this session's KV blocks for an in-flight DMA (see
     * PagedKvCache::beginTransfer). The functional move (swap or
     * handoff adoption) happens eagerly before the pin; the transfer
     * engine prices when the bytes land, and the scheduler keeps the
     * session out of stepping until then. @pre canSwap()
     */
    void beginTransfer();

    /** The transfer landed (or settled at drop): unpin the blocks. */
    void endTransfer();

    /**
     * True while this session's KV rides a DMA channel. The session
     * must not step, prefill, swap or drop until the scheduler
     * settles the transfer.
     */
    bool awaitingTransfer() const
    {
        return kvView_ != nullptr && kvView_->inTransfer();
    }

    /**
     * Modeled peer-link time to stream this session's KV (at its
     * current length) from its prefill device to a decode device.
     * Pure pricing for handoff planning.
     */
    double handoffSeconds() const;

    /**
     * Charge the prefill->decode KV handoff of this session's cached
     * positions (OpClass::KvHandoff at true dims) into the session's
     * oplog. @return modeled transfer seconds @pre prefillDone()
     */
    double chargeHandoff();

    /**
     * Modeled host-link round trip (swap out + back in) of this
     * session's KV at its current length — the swap side of the
     * scheduler's swap-vs-recompute comparison. Pure pricing.
     */
    double swapRoundTripSeconds() const;

    /**
     * Sequential-equivalent modeled time this run has charged so far
     * (excluding past swap transfers) — exactly what a
     * recompute-style preemption would re-spend, since re-decoding
     * under the same seed re-prices the same ops. The recompute side
     * of the scheduler's policy comparison.
     */
    double modeledCostSoFar() const;

    /** True once every scripted step has been decoded. */
    bool finished() const;

    /** Cost record of the most recent step(). */
    const StepCost &lastStep() const { return last_; }

    /** Tokens emitted so far (live view, also valid mid-decode). */
    const workload::Emission &emission() const { return em_; }

    /** Spec-decode tokens committed by passes (avg_commit_per_pass). */
    long committed() const { return committed_; }

    /**
     * Physical KV blocks this session holds — real allocator blocks
     * when the KV store is paged, the block-equivalent of the
     * contiguous store's length otherwise, so fleet budgets apply
     * uniformly.
     */
    int kvBlocks() const;

    /** Pool sequence id of the paged KV view. @pre canSwap() */
    int kvSeqId() const;

    /** Modeled cached positions at TRUE dims (prompt + emitted). */
    long modeledPositions() const;

    /** Fold the emission into the result. Call exactly once at end. */
    void finishEmission();

    /**
     * Owning mode only: finish the emission, finalize the run stats
     * (identically to Engine::run) and move the result out. The
     * returned RunResult is bit-identical to Engine::runOne(w, 0,
     * seed) for the same workload and seed.
     */
    RunResult finalize();

    const workload::Workload &workload() const { return *w_; }

    /**
     * Override the SpecEE exit-confidence bar for this session's
     * remaining tokens (the adaptive controller's per-tier
     * speculation knob). Defaults to the engine's configured
     * EngineConfig::exit_threshold; already-decoded tokens are
     * unaffected, so a controller epoch boundary changes behavior
     * only forward in time.
     */
    void setExitThreshold(float t) { exitThreshold_ = t; }

    /** Exit-confidence bar this session decodes under. */
    float exitThreshold() const { return exitThreshold_; }

  private:
    bool stepAutoregressive();
    bool stepSpeculative();

    /** Snapshot per-class (time, energy) of the result oplog. */
    std::array<std::pair<double, double>, hw::kNumOpClasses>
    snapshotOplog() const;

    /**
     * Reduce the oplog delta since `before` into last_ along the
     * shared/private roofline split; `tokens` is the number of
     * emissions this unit committed.
     */
    void captureCost(
        const std::array<std::pair<double, double>, hw::kNumOpClasses>
            &before,
        int tokens);

    Engine &eng_;
    std::optional<workload::Workload> ownedW_;
    const workload::Workload *w_;
    size_t instance_;
    std::optional<model::DraftModel> ownedDlm_;
    const model::DraftModel *dlm_;
    std::optional<RunResult> ownedOut_;
    RunResult *out_;
    std::optional<Rng> ownedRng_;
    Rng *rng_;

    model::SequenceState seq_;
    model::SequenceKv *kvView_ = nullptr; ///< non-owning (seq_.kv)
    core::FeatureExtractor fx_;
    core::OnlineScheduler online_;
    workload::Emission em_;
    size_t stepIdx_ = 0; ///< scripted steps consumed
    int input_ = 0;      ///< next input token (autoregressive path)
    long committed_ = 0;
    bool prefilled_ = false;
    bool swapped_ = false;        ///< KV lives in the host pool
    bool prefillStarted_ = false; ///< sequence reset / first chunk ran
    int prefillTrue_ = 0;         ///< true-dims prompt tokens ingested
    int simFilled_ = 0;           ///< sim prefix tokens appended to KV
    bool emissionDone_ = false;
    /** Deepest layer the last step's weight stream traversed. */
    int lastDeepest_ = 0;
    /** First layer of the last step's KV-fill range ([lo, L)). */
    int lastFillLo_ = 0;
    /** SpecEE exit bar (EngineConfig default, controller override). */
    float exitThreshold_ = 0.0f;
    StepCost last_;
};

} // namespace specee::engines

#endif // SPECEE_ENGINES_DECODE_SESSION_HH
