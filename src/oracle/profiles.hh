/**
 * @file
 * Per-dataset workload profiles.
 *
 * Each profile stands in for one of the paper's evaluation datasets
 * (§7.1.3): MT-Bench, SUM, QA, Alpaca, GSM8K, HumanEval, MMLU,
 * CommonsenseQA, SST2. A profile carries the task shape (prompt /
 * generation lengths, multiple-choice option count) and per-model
 * calibration targets taken from Table 4 (dense accuracy or
 * perplexity, average forward layers) and Fig. 7 (AdaInfer's average
 * forward layers). Calibration values are inputs to the oracle; all
 * SpecEE-side numbers are measured from simulation.
 */

#ifndef SPECEE_ORACLE_PROFILES_HH
#define SPECEE_ORACLE_PROFILES_HH

#include <string>
#include <vector>

namespace specee::oracle {

/** Task family of a dataset profile. */
enum class TaskKind {
    MultipleChoice, ///< graded by one answer token (MMLU, CSQA, SST2)
    Math,           ///< graded by final answer token (GSM8K)
    Code,           ///< graded pass/fail on one completion (HumanEval)
    Generation,     ///< graded by perplexity (MT-Bench, Alpaca, QA)
    Summarization,  ///< graded by perplexity (SUM)
};

/** Per-model calibration targets for one dataset. */
struct ModelCal
{
    /** Model key: "llama2-7b", "llama2-13b", "llama2-70b", "vicuna-7b". */
    std::string model;

    /** Dense task accuracy in percent (MC/Math/Code; <0 if N/A). */
    double dense_accuracy = -1.0;

    /** Dense accuracy of the AWQ-quantized model (Table 4; <0 if N/A). */
    double awq_accuracy = -1.0;

    /** Dense perplexity target (generation tasks; <0 if N/A). */
    double dense_ppl = -1.0;

    /** SpecEE average forward layers reported in Table 4. */
    double avg_layers = 0.0;

    /** AdaInfer average forward layers (Table 4; <0 if unreported). */
    double adainfer_avg_layers = -1.0;
};

/** Workload profile standing in for one evaluation dataset. */
struct DatasetProfile
{
    std::string name;
    TaskKind kind = TaskKind::Generation;

    int prompt_len = 64;
    int gen_len = 64;

    /** Number of answer options for MultipleChoice tasks. */
    int n_options = 4;

    /** Probability the draft model's top-4 contains the true token. */
    double draft_hit_rate = 0.90;

    /** Per-model calibration rows. */
    std::vector<ModelCal> cal;

    /** Lookup calibration for a model key; falls back to llama2-7b. */
    const ModelCal &calFor(const std::string &model) const;

    /** True when the task is graded by accuracy (vs. perplexity). */
    bool gradedByAccuracy() const;
};

/** All nine evaluation-dataset profiles. */
const std::vector<DatasetProfile> &allProfiles();

/** Profile lookup by name; fatal on unknown name. */
const DatasetProfile &profileByName(const std::string &name);

/** The 8 throughput-evaluation datasets of Fig. 14 in paper order. */
std::vector<std::string> throughputDatasets();

/** The 7 accuracy/PPL datasets of Table 4 in paper order. */
std::vector<std::string> accuracyDatasets();

} // namespace specee::oracle

#endif // SPECEE_ORACLE_PROFILES_HH
