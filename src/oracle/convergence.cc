#include "oracle/convergence.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace specee::oracle {

std::vector<float>
ConvergenceProcess::makeSkewedDist(int n_exit_layers, double mean_layer,
                                   int hot_layers, uint64_t seed)
{
    specee_assert(n_exit_layers > 4, "too few exit layers");
    Rng rng(seed);
    std::vector<double> d(static_cast<size_t>(n_exit_layers), 0.0);

    // A small uniform floor so every layer has nonzero exit mass.
    const double floor_mass = 0.10;
    for (auto &v : d)
        v = floor_mass / n_exit_layers;

    // Hot bumps clustered around the target mean; widths small enough
    // that roughly half the layers stay below the average probability
    // (the skew of Fig. 10a/c).
    double bump_mass = 1.0 - floor_mass;
    std::vector<double> centers;
    for (int i = 0; i < hot_layers; ++i) {
        double jitter = rng.normal(0.0, 0.16 * n_exit_layers);
        double c = mean_layer + jitter;
        centers.push_back(std::clamp(c, 1.0, n_exit_layers - 1.5));
    }
    for (size_t b = 0; b < centers.size(); ++b) {
        const double w = bump_mass / centers.size();
        const double sigma = 1.0 + rng.uniform() * 1.2;
        double local = 0.0;
        std::vector<double> g(static_cast<size_t>(n_exit_layers));
        for (int l = 0; l < n_exit_layers; ++l) {
            double z = (l - centers[b]) / sigma;
            g[static_cast<size_t>(l)] = std::exp(-0.5 * z * z);
            local += g[static_cast<size_t>(l)];
        }
        for (int l = 0; l < n_exit_layers; ++l)
            d[static_cast<size_t>(l)] += w * g[static_cast<size_t>(l)] / local;
    }

    // Renormalize, then shift the mean to the target by mixing with a
    // point mass-like adjustment: iteratively nudge toward target mean.
    double total = 0.0;
    for (double v : d)
        total += v;
    for (auto &v : d)
        v /= total;

    double mean = 0.0;
    for (int l = 0; l < n_exit_layers; ++l)
        mean += l * d[static_cast<size_t>(l)];
    // One corrective pass: blend with a narrow bump at the reflected
    // position to move the mean close to the target.
    const double err = mean_layer - mean;
    if (std::fabs(err) > 0.5) {
        double c = std::clamp(mean + 2.5 * err, 0.0,
                              static_cast<double>(n_exit_layers - 1));
        std::vector<double> g(static_cast<size_t>(n_exit_layers));
        double local = 0.0;
        for (int l = 0; l < n_exit_layers; ++l) {
            double z = (l - c) / 1.5;
            g[static_cast<size_t>(l)] = std::exp(-0.5 * z * z);
            local += g[static_cast<size_t>(l)];
        }
        const double blend = std::min(0.4, std::fabs(err) /
                                               n_exit_layers * 4.0);
        for (int l = 0; l < n_exit_layers; ++l) {
            d[static_cast<size_t>(l)] =
                (1.0 - blend) * d[static_cast<size_t>(l)] +
                blend * g[static_cast<size_t>(l)] / local;
        }
    }

    std::vector<float> out(d.size());
    for (size_t i = 0; i < d.size(); ++i)
        out[i] = static_cast<float>(d[i]);
    return out;
}

ConvergenceProcess::ConvergenceProcess(const ConvergenceParams &params)
    : params_(params),
      base_(makeSkewedDist(params.n_layers - 1, params.mean_layer,
                           params.hot_layers, params.seed))
{
}

void
ConvergenceProcess::reset()
{
    history_.clear();
}

int
ConvergenceProcess::next(Rng &rng)
{
    const int max_exit = maxExitLayer();
    int c;

    // Hard tokens only converge at the very end (no early exit
    // possible); they also break the context chain.
    if (rng.bernoulli(params_.hard_token_rate)) {
        c = max_exit + 1; // == last layer, not exitable
    } else if (!history_.empty() &&
               rng.bernoulli(params_.context_strength)) {
        // Context-similar draw: near a random recent exit.
        const int pick = history_[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(history_.size()) - 1))];
        const int off = rng.uniformInt(-params_.radius, params_.radius);
        c = std::clamp(pick + off, 0, max_exit);
    } else {
        c = static_cast<int>(rng.categorical(base_));
        c = std::min(c, max_exit);
    }

    history_.push_back(std::min(c, max_exit));
    while (static_cast<int>(history_.size()) > params_.window)
        history_.pop_front();
    return c;
}

} // namespace specee::oracle
