/**
 * @file
 * Synthetic language corpus — the substitute for real NLP datasets.
 *
 * A procedural bigram language model over the simulation vocabulary:
 * p(next | prev) is a mixture of a peaked per-context candidate set
 * (derived by hashing `prev`, geometric weights) and a Zipfian
 * unigram background. The model is O(1) in memory, supports exact
 * probabilities (for perplexity), top-k continuation queries (for
 * draft-token distractors) and sampling (for prompt generation).
 */

#ifndef SPECEE_ORACLE_CORPUS_HH
#define SPECEE_ORACLE_CORPUS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hh"

namespace specee::oracle {

/**
 * Procedural bigram corpus model over token ids [0, vocab).
 */
class SyntheticCorpus
{
  public:
    /**
     * @param vocab      vocabulary size (simulation vocab)
     * @param seed       corpus identity; different seeds = different language
     * @param peak_mass  probability mass on the peaked bigram candidates
     * @param zipf_s     Zipf exponent of the unigram background
     */
    SyntheticCorpus(int vocab, uint64_t seed, double peak_mass = 0.85,
                    double zipf_s = 1.1);

    int vocab() const { return vocab_; }

    /** Number of peaked candidates per context. */
    static constexpr int kCandidates = 16;

    /** The peaked candidate token list for context `prev`. */
    std::vector<int> candidates(int prev) const;

    /** Exact bigram probability p(next | prev). */
    double prob(int prev, int next) const;

    /** Top-k most likely continuations of `prev` with probabilities. */
    std::vector<std::pair<int, double>> topNext(int prev, int k) const;

    /** Sample a continuation of `prev`. */
    int sampleNext(int prev, Rng &rng) const;

    /** Sample an unconditioned (unigram) token. */
    int sampleUnigram(Rng &rng) const;

    /** Sample a token sequence of length n starting from a random token. */
    std::vector<int> sampleSequence(int n, Rng &rng) const;

  private:
    /** i-th candidate for context prev (deterministic hash). */
    int candidateAt(int prev, int i) const;

    /** Geometric weight of candidate slot i (normalized to peak_mass). */
    double candidateWeight(int i) const;

    int vocab_;
    uint64_t seed_;
    double peakMass_;
    ZipfSampler zipf_;
    std::vector<double> weights_;   // normalized geometric slot weights
};

} // namespace specee::oracle

#endif // SPECEE_ORACLE_CORPUS_HH
