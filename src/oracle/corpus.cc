#include "oracle/corpus.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace specee::oracle {

namespace {

inline uint64_t
mix(uint64_t a, uint64_t b)
{
    uint64_t x = a * 0x9e3779b97f4a7c15ull + b;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

SyntheticCorpus::SyntheticCorpus(int vocab, uint64_t seed, double peak_mass,
                                 double zipf_s)
    : vocab_(vocab),
      seed_(seed),
      peakMass_(peak_mass),
      zipf_(static_cast<size_t>(vocab), zipf_s)
{
    specee_assert(vocab > kCandidates, "vocab too small: %d", vocab);
    specee_assert(peak_mass > 0.0 && peak_mass < 1.0, "bad peak mass");
    // Geometric slot weights w_i ~ r^i normalized to sum = peak_mass.
    const double r = 0.6;
    double total = 0.0;
    weights_.resize(kCandidates);
    for (int i = 0; i < kCandidates; ++i) {
        weights_[i] = std::pow(r, i);
        total += weights_[i];
    }
    for (auto &w : weights_)
        w *= peakMass_ / total;
}

std::vector<int>
SyntheticCorpus::candidates(int prev) const
{
    // One pass, linear probing on collisions: deterministic, distinct.
    std::vector<int> out;
    out.reserve(static_cast<size_t>(kCandidates));
    for (int i = 0; i < kCandidates; ++i) {
        uint64_t h = mix(seed_ ^ static_cast<uint64_t>(prev),
                         0xabcd0000ull + static_cast<uint64_t>(i));
        int c = static_cast<int>(h % static_cast<uint64_t>(vocab_));
        while (std::find(out.begin(), out.end(), c) != out.end())
            c = (c + 1) % vocab_;
        out.push_back(c);
    }
    return out;
}

int
SyntheticCorpus::candidateAt(int prev, int i) const
{
    return candidates(prev)[static_cast<size_t>(i)];
}

double
SyntheticCorpus::prob(int prev, int next) const
{
    specee_assert(next >= 0 && next < vocab_, "token out of range");
    double p = (1.0 - peakMass_) * zipf_.pmf(static_cast<size_t>(next));
    const auto cand = candidates(prev);
    for (int i = 0; i < kCandidates; ++i) {
        if (cand[static_cast<size_t>(i)] == next)
            p += weights_[static_cast<size_t>(i)];
    }
    return p;
}

std::vector<std::pair<int, double>>
SyntheticCorpus::topNext(int prev, int k) const
{
    // Peaked candidates dominate the background for small k; merge the
    // candidate list with the head of the Zipf distribution.
    const auto cand_list = candidates(prev);
    auto prob_of = [&](int t) {
        double p = (1.0 - peakMass_) * zipf_.pmf(static_cast<size_t>(t));
        for (int i = 0; i < kCandidates; ++i) {
            if (cand_list[static_cast<size_t>(i)] == t)
                p += weights_[static_cast<size_t>(i)];
        }
        return p;
    };

    std::vector<std::pair<int, double>> cand;
    for (int c : cand_list)
        cand.emplace_back(c, prob_of(c));
    const int zipf_head = std::min(vocab_, k + kCandidates);
    for (int t = 0; t < zipf_head; ++t)
        cand.emplace_back(t, prob_of(t));
    std::sort(cand.begin(), cand.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    cand.erase(std::unique(cand.begin(), cand.end(),
                           [](const auto &a, const auto &b) {
                               return a.first == b.first;
                           }),
               cand.end());
    if (static_cast<int>(cand.size()) > k)
        cand.resize(static_cast<size_t>(k));
    return cand;
}

int
SyntheticCorpus::sampleNext(int prev, Rng &rng) const
{
    double u = rng.uniform();
    if (u < peakMass_) {
        // Sample a candidate slot proportionally to its weight.
        double r = u / peakMass_; // uniform in [0,1)
        double acc = 0.0;
        double total = 0.0;
        for (double w : weights_)
            total += w;
        const auto cand = candidates(prev);
        for (int i = 0; i < kCandidates; ++i) {
            acc += weights_[static_cast<size_t>(i)] / total;
            if (r < acc)
                return cand[static_cast<size_t>(i)];
        }
        return cand[static_cast<size_t>(kCandidates - 1)];
    }
    return static_cast<int>(zipf_.sample(rng));
}

int
SyntheticCorpus::sampleUnigram(Rng &rng) const
{
    return static_cast<int>(zipf_.sample(rng));
}

std::vector<int>
SyntheticCorpus::sampleSequence(int n, Rng &rng) const
{
    std::vector<int> seq;
    seq.reserve(static_cast<size_t>(n));
    int prev = sampleUnigram(rng);
    seq.push_back(prev);
    for (int i = 1; i < n; ++i) {
        prev = sampleNext(prev, rng);
        seq.push_back(prev);
    }
    return seq;
}

} // namespace specee::oracle
