#include "oracle/profiles.hh"

#include "util/logging.hh"

namespace specee::oracle {

const ModelCal &
DatasetProfile::calFor(const std::string &model) const
{
    const ModelCal *fallback = nullptr;
    for (const auto &c : cal) {
        if (c.model == model)
            return c;
        if (c.model == "llama2-7b")
            fallback = &c;
    }
    specee_assert(fallback != nullptr, "no calibration for %s in %s",
                  model.c_str(), name.c_str());
    return *fallback;
}

bool
DatasetProfile::gradedByAccuracy() const
{
    return kind == TaskKind::MultipleChoice || kind == TaskKind::Math ||
           kind == TaskKind::Code;
}

namespace {

// Calibration values below are transcribed from Table 4 (accuracy /
// PPL / #Avg.L) and Fig. 7 (AdaInfer layers); datasets absent from
// Table 4 (QA, HumanEval, MT-Bench throughput-only rows) carry
// representative values consistent with the text.
std::vector<DatasetProfile>
buildProfiles()
{
    std::vector<DatasetProfile> p;

    {
        DatasetProfile d;
        d.name = "MMLU";
        d.kind = TaskKind::MultipleChoice;
        d.n_options = 4;
        d.prompt_len = 96;
        d.gen_len = 24;
        d.draft_hit_rate = 0.88;
        d.cal = {
            {"llama2-7b", 45.30, 44.61, -1.0, 23.16, 28.91},
            {"llama2-13b", 53.58, 49.70, -1.0, 24.93, 36.35},
            {"llama2-70b", 60.74, 59.53, -1.0, 53.25, -1.0},
            {"vicuna-7b", 47.10, 46.20, -1.0, 21.50, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "CommonsenseQA";
        d.kind = TaskKind::MultipleChoice;
        d.n_options = 5;
        d.prompt_len = 64;
        d.gen_len = 20;
        d.draft_hit_rate = 0.90;
        d.cal = {
            {"llama2-7b", 61.43, 58.31, -1.0, 22.90, 27.90},
            {"llama2-13b", 67.57, 64.95, -1.0, 24.59, 34.60},
            {"llama2-70b", 76.82, 71.72, -1.0, 52.14, -1.0},
            {"vicuna-7b", 62.80, 60.90, -1.0, 21.20, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "SST2";
        d.kind = TaskKind::MultipleChoice;
        d.n_options = 2;
        d.prompt_len = 48;
        d.gen_len = 12;
        d.draft_hit_rate = 0.93;
        d.cal = {
            {"llama2-7b", 86.24, 84.98, -1.0, 23.55, -1.0},
            {"llama2-13b", 93.00, 91.74, -1.0, 25.92, -1.0},
            {"llama2-70b", 94.27, 94.15, -1.0, 49.40, -1.0},
            {"vicuna-7b", 88.10, 86.50, -1.0, 22.00, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "GSM8K";
        d.kind = TaskKind::Math;
        d.n_options = 8; // answer digits bucketed into 8 candidate tokens
        d.prompt_len = 96;
        d.gen_len = 80;
        d.draft_hit_rate = 0.86;
        d.cal = {
            {"llama2-7b", 20.62, 23.16, -1.0, 23.13, -1.0},
            {"llama2-13b", 33.87, 28.42, -1.0, 26.34, -1.0},
            {"llama2-70b", 55.79, 55.05, -1.0, 56.51, -1.0},
            {"vicuna-7b", 22.00, 23.50, -1.0, 22.40, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "HumanEval";
        d.kind = TaskKind::Code;
        d.n_options = 2; // pass / fail
        d.prompt_len = 96;
        d.gen_len = 96;
        d.draft_hit_rate = 0.90;
        d.cal = {
            {"llama2-7b", 12.80, 12.20, -1.0, 23.90, -1.0},
            {"llama2-13b", 18.30, 17.10, -1.0, 26.10, -1.0},
            {"llama2-70b", 29.90, 29.30, -1.0, 55.00, -1.0},
            {"vicuna-7b", 15.20, 14.60, -1.0, 22.80, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "SUM";
        d.kind = TaskKind::Summarization;
        d.prompt_len = 192;
        d.gen_len = 96;
        d.draft_hit_rate = 0.92;
        d.cal = {
            {"llama2-7b", -1.0, -1.0, 10.09, 23.79, -1.0},
            {"llama2-13b", -1.0, -1.0, 8.76, 27.80, -1.0},
            {"llama2-70b", -1.0, -1.0, 5.88, 57.58, -1.0},
            {"vicuna-7b", -1.0, -1.0, 9.70, 22.60, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "MT-Bench";
        d.kind = TaskKind::Generation;
        d.prompt_len = 64;
        d.gen_len = 128;
        d.draft_hit_rate = 0.90;
        d.cal = {
            {"llama2-7b", -1.0, -1.0, 6.49, 23.22, -1.0},
            {"llama2-13b", -1.0, -1.0, 6.64, 26.02, -1.0},
            {"llama2-70b", -1.0, -1.0, 4.25, 55.31, -1.0},
            {"vicuna-7b", -1.0, -1.0, 6.30, 21.80, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "Alpaca";
        d.kind = TaskKind::Generation;
        d.prompt_len = 48;
        d.gen_len = 96;
        d.draft_hit_rate = 0.93;
        d.cal = {
            {"llama2-7b", -1.0, -1.0, 6.86, 21.96, -1.0},
            {"llama2-13b", -1.0, -1.0, 4.93, 24.96, -1.0},
            {"llama2-70b", -1.0, -1.0, 2.44, 52.88, -1.0},
            {"vicuna-7b", -1.0, -1.0, 6.50, 20.90, -1.0},
        };
        p.push_back(d);
    }
    {
        DatasetProfile d;
        d.name = "QA";
        d.kind = TaskKind::Generation;
        d.prompt_len = 48;
        d.gen_len = 48;
        d.draft_hit_rate = 0.91;
        d.cal = {
            {"llama2-7b", -1.0, -1.0, 7.40, 22.80, -1.0},
            {"llama2-13b", -1.0, -1.0, 6.20, 25.40, -1.0},
            {"llama2-70b", -1.0, -1.0, 4.10, 54.20, -1.0},
            {"vicuna-7b", -1.0, -1.0, 7.10, 21.50, -1.0},
        };
        p.push_back(d);
    }
    return p;
}

} // namespace

const std::vector<DatasetProfile> &
allProfiles()
{
    static const std::vector<DatasetProfile> profiles = buildProfiles();
    return profiles;
}

const DatasetProfile &
profileByName(const std::string &name)
{
    for (const auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    specee_fatal("unknown dataset profile: %s", name.c_str());
}

std::vector<std::string>
throughputDatasets()
{
    return {"MT-Bench", "SUM", "QA", "Alpaca", "GSM8K", "HumanEval",
            "MMLU", "CommonsenseQA"};
}

std::vector<std::string>
accuracyDatasets()
{
    return {"MMLU", "CommonsenseQA", "SST2", "GSM8K", "SUM", "MT-Bench",
            "Alpaca"};
}

} // namespace specee::oracle
