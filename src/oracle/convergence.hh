/**
 * @file
 * Convergence-layer process — the statistical heart of the oracle.
 *
 * For each generated token the target model's output distribution
 * "converges" (probability shift, §4.2) at some decoder layer c_t.
 * The paper reports three properties of c_t that SpecEE exploits:
 *
 *  1. Skewed stationary distribution over layers: ~50% of layers hold
 *     less than the average 3.2% exit mass, and the bottom-50% layers
 *     together hold <20% (Fig. 10a/c).
 *  2. Context similarity: c_t falls within ±2 layers of one of the
 *     previous 5 tokens' exits ~80% of the time, far above the ~32%
 *     baseline implied by the union-set size (Fig. 11).
 *  3. Dataset-dependent mean (Table 4 #Avg.L, Fig. 7).
 *
 * ConvergenceProcess reproduces all three with a mixture process:
 * with probability `context_strength` the next exit layer is drawn
 * near a randomly chosen recent exit; otherwise from the skewed base
 * distribution.
 */

#ifndef SPECEE_ORACLE_CONVERGENCE_HH
#define SPECEE_ORACLE_CONVERGENCE_HH

#include <deque>
#include <vector>

#include "util/rng.hh"

namespace specee::oracle {

/** Parameters of the convergence-layer process. */
struct ConvergenceParams
{
    /** Total decoder layers (exit layers range over [0, n_layers-2]). */
    int n_layers = 32;

    /** Mean exit layer the process should target (Table 4 calibration). */
    double mean_layer = 22.0;

    /** Probability of drawing near a recent token's exit layer. */
    double context_strength = 0.68;

    /** Context window (tokens) — the paper uses 5. */
    int window = 5;

    /** Neighbourhood radius for "near" — the paper uses +/-2. */
    int radius = 2;

    /** Number of hot bumps in the skewed base distribution. */
    int hot_layers = 5;

    /** Fraction of tokens that never converge before the last layer. */
    double hard_token_rate = 0.08;

    uint64_t seed = 7;
};

/**
 * Builds the skewed stationary distribution and samples correlated
 * per-token convergence layers.
 */
class ConvergenceProcess
{
  public:
    explicit ConvergenceProcess(const ConvergenceParams &params);

    /**
     * Sample the convergence layer for the next token, conditioned on
     * the recent history; advances the internal history window.
     */
    int next(Rng &rng);

    /** Clear the context history (new sequence). */
    void reset();

    /** The skewed base distribution over exit layers. */
    const std::vector<float> &baseDistribution() const { return base_; }

    /** Highest exitable layer (n_layers - 2; last layer has no predictor). */
    int maxExitLayer() const { return params_.n_layers - 2; }

    const ConvergenceParams &params() const { return params_; }

    /**
     * Build a skewed distribution over [0, n_exit_layers) with the
     * given mean; exposed for tests and Fig. 10 reproduction.
     */
    static std::vector<float> makeSkewedDist(int n_exit_layers,
                                             double mean_layer,
                                             int hot_layers,
                                             uint64_t seed);

  private:
    ConvergenceParams params_;
    std::vector<float> base_;
    std::deque<int> history_;
};

} // namespace specee::oracle

#endif // SPECEE_ORACLE_CONVERGENCE_HH
