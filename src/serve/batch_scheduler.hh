/**
 * @file
 * Continuous-batching scheduler for the serving layer.
 *
 * The functional simulator decodes each request independently (the
 * emitted tokens do not depend on batching — §6.3: SpecEE is
 * orthogonal to the serving stack), so serving splits into two
 * phases: workers produce per-request RunResults in parallel, then
 * the scheduler deterministically replays a continuous-batching
 * timeline over them. At every iteration boundary finished requests
 * retire and queued requests are admitted FIFO into free decode
 * slots (vllm-style continuous batching).
 *
 * Iteration cost follows the roofline split of the cost model:
 * weight-bound operator classes (decoder layers, LM head, draft
 * model) are read once per iteration and amortize across the batch
 * — their time is the max over active requests — while per-request
 * traffic (KV reads, predictor MLPs, sliced heads) accumulates.
 * With max_batch = 1 the timeline degenerates exactly to sequential
 * one-request-at-a-time serving.
 */

#ifndef SPECEE_SERVE_BATCH_SCHEDULER_HH
#define SPECEE_SERVE_BATCH_SCHEDULER_HH

#include <vector>

#include "hw/cost_model.hh"
#include "serve/request.hh"

namespace specee::serve {

/** Scheduler knobs. */
struct SchedulerOptions
{
    /** Decode-batch slots; 1 reproduces sequential serving. */
    int max_batch = 8;
};

/**
 * Per-step cost decomposition of one completed request: shared
 * (weight-bound, batch-amortized) and private (per-request) time and
 * energy per decode step.
 */
struct StepProfile
{
    std::vector<double> shared_s;
    std::vector<double> private_s;
    std::vector<double> shared_j;
    std::vector<double> private_j;

    size_t steps() const { return shared_s.size(); }
};

/** A completed functional run awaiting timeline placement. */
struct PendingRun
{
    Request request;
    engines::RunResult result;
    StepProfile profile;
};

/** Fleet-level serving metrics over one drained request stream. */
struct FleetStats
{
    long requests = 0;
    long tokens = 0;
    long iterations = 0;

    double makespan_s = 0.0; ///< first arrival -> last finish
    double tokens_per_s = 0.0;

    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p99_latency_s = 0.0;
    double mean_queue_s = 0.0;

    double energy_j = 0.0;
    double energy_per_token_j = 0.0;
    double avg_power_w = 0.0;

    /** Mean decode-batch occupancy over iterations. */
    double mean_batch_occupancy = 0.0;

    /**
     * Merged per-request operator census (flop/byte counts and
     * sequential-equivalent time); fleet time comes from the batched
     * timeline above, not from this log.
     */
    hw::OpLog oplog;
};

/**
 * True for operator classes whose traffic is read once per decode
 * iteration and amortizes across the batch (weight-bound: decoder
 * layers, KV fill, full LM head, draft model, embedding table) as
 * opposed to per-request private traffic (KV reads, predictors,
 * sliced heads).
 */
bool isSharedClass(hw::OpClass cls);

/** Split a run's operator log into a per-step cost profile. */
StepProfile buildStepProfile(const engines::RunResult &result);

/** Deterministic continuous-batching timeline simulator. */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const SchedulerOptions &opts);

    /**
     * Replay `runs` through the batched timeline. Outcomes are
     * returned in admission (FIFO by arrival, ties by id) order.
     */
    FleetStats schedule(std::vector<PendingRun> runs,
                        std::vector<RequestOutcome> &outcomes) const;

    const SchedulerOptions &options() const { return opts_; }

  private:
    SchedulerOptions opts_;
};

} // namespace specee::serve

#endif // SPECEE_SERVE_BATCH_SCHEDULER_HH
